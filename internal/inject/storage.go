package inject

import (
	"fmt"
	"math/rand"

	"repro/internal/avionics"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/stable"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// recoverRing flushes the system's telemetry and recovers the flight-recorder
// ring from the SCRAM host's committed stable storage — the same poll a
// post-mortem reader would perform after a fail-stop halt. A nil slice means
// telemetry was disabled or the SCRAM host (and any standby) was down.
func recoverRing(sys *core.System) []telemetry.Event {
	if err := sys.FlushTelemetry(); err != nil {
		return nil
	}
	snap, err := sys.Pool().PollStable(sys.SCRAMProc())
	if err != nil {
		return nil
	}
	ring, err := telemetry.RecoverRing(snap)
	if err != nil {
		return nil
	}
	return ring
}

// StorageCampaign runs the canonical three-configuration system on hardened
// stable storage backed by deliberately faulty media: torn writes, bit rot
// and stuck reads hit the application processor (p2) while alternator churn
// keeps reconfigurations — and therefore stable-storage traffic — flowing.
// The SCRAM's host (p1) gets fault-free media, matching the paper's
// dependable-SCRAM assumption.
//
// The campaign checks the fail-stop storage contract: every injected fault
// is either repaired transparently from a surviving replica or halts the
// owning processor, and the silent-wrong-data oracle count stays zero.
type StorageCampaign struct {
	// Seed drives all randomness; equal seeds give equal runs.
	Seed int64
	// Frames is the campaign length.
	Frames int
	// EnvEvents is the number of alternator state changes to script.
	EnvEvents int
	// Replicas is the number of backing media per store (0 defaults to 3).
	Replicas int
	// Faults is the per-medium fault model applied to p2's media.
	Faults stable.FaultProfile
}

// StorageMetrics extends the campaign metrics with the hardened store's
// fault accounting, summed over every processor.
type StorageMetrics struct {
	Metrics
	// Storage sums the stores' fault-handling counters. Its
	// SilentWrongData field must be zero on every run.
	Storage stable.ReplStats
	// Injected sums the faults the media actually injected.
	Injected stable.MediumStats
	// StorageHalts is the number of processors halted by an unrecoverable
	// storage fault.
	StorageHalts int
	// StagedHighWater is the largest per-frame commit batch any processor
	// staged.
	StagedHighWater int
	// Registry is the live telemetry registry's final snapshot: the
	// SCRAM protocol counters and the recovery-latency histograms
	// (reconfiguration window lengths, signal latencies).
	Registry telemetry.Snapshot
	// Ring is the flight-recorder journal recovered from the SCRAM host's
	// committed stable storage after the campaign — the black box a
	// post-mortem reader would poll.
	Ring []telemetry.Event `json:"-"`
}

// Options builds the core.Options the campaign would run, without building
// or running anything. Campaign drivers validate a whole run matrix up
// front by calling Options().Validate() per arm before spending frames.
func (c StorageCampaign) Options() core.Options {
	rng := rand.New(rand.NewSource(c.Seed))
	preset := mustPreset("threeconfig")
	rs := preset.New()

	var script []envmon.Event
	for i := 0; i < c.EnvEvents; i++ {
		f := int64(1 + rng.Intn(max(1, c.Frames-2)))
		alt := envmon.Factor("alt1")
		if rng.Intn(2) == 0 {
			alt = "alt2"
		}
		val := "ok"
		if rng.Intn(2) == 0 {
			val = "failed"
		}
		script = append(script, envmon.Event{Frame: f, Factor: alt, Value: val})
	}

	return core.Options{
		Spec:           rs,
		Apps:           basicApps(rs),
		Classifier:     preset.Classifier,
		InitialFactors: preset.Factors(),
		Script:         script,
		TraceSeed:      c.Seed,
		HardenedStorage: &stable.MediaProfile{
			Replicas: c.Replicas,
			Seed:     c.Seed,
			Faults:   c.Faults,
			Oracle:   true,
		},
	}
}

// Run executes the campaign and returns its metrics and trace.
func (c StorageCampaign) Run() (StorageMetrics, *trace.Trace, error) {
	opts := c.Options()
	rs := opts.Spec

	sys, err := core.NewSystem(opts)
	if err != nil {
		return StorageMetrics{}, nil, fmt.Errorf("inject: building system: %w", err)
	}
	defer sys.Close()
	if err := sys.Run(c.Frames); err != nil {
		return StorageMetrics{}, nil, fmt.Errorf("inject: running storage campaign: %w", err)
	}

	tr := sys.Trace()
	out := StorageMetrics{
		Metrics:         Collect(tr, rs, int64(rs.DwellFrames)+2),
		StagedHighWater: sys.StagedHighWater(),
		Ring:            recoverRing(sys),
	}
	if reg, _ := sys.Telemetry(); reg != nil {
		out.Registry = reg.Snapshot()
	}
	for _, p := range sys.Pool().Procs() {
		if rep := p.Stable().Hardened(); rep != nil {
			out.Storage.Add(rep.Stats())
			out.Injected.Add(rep.InjectedStats())
		}
		if p.StorageFault() != nil {
			out.StorageHalts++
		}
	}
	return out, tr, nil
}

// BusCampaign flies the section 7 avionics mission over a degraded bus: a
// seeded fault plan drops, duplicates and delays application traffic while
// an alternator failure forces a reconfiguration mid-flight. The campaign
// checks the architecture's separation of concerns under sustained (not just
// total) bus faults: reconfiguration coordination travels through stable
// storage and the direct signal path, so SP1-SP4 must hold at any message
// fault rate.
type BusCampaign struct {
	// Seed drives the fault plan; equal seeds give equal runs.
	Seed int64
	// Frames is the campaign length.
	Frames int
	// Rates is the per-message fault model applied to all topics.
	Rates bus.FaultRates
}

// BusMetrics extends the campaign metrics with the bus's fault accounting
// and the flight outcome.
type BusMetrics struct {
	Metrics
	// Faults counts the message faults the plan injected.
	Faults bus.FaultStats
	// Delivered and Dropped are the bus's totals.
	Delivered, Dropped int64
	// FinalAltFt is the aircraft's altitude when the campaign ends; the
	// flight starts (and holds) 5000 ft.
	FinalAltFt float64
	// Registry is the live telemetry registry's final snapshot, with the
	// recovery-latency histograms.
	Registry telemetry.Snapshot
	// Ring is the flight-recorder journal recovered from the SCRAM host's
	// committed stable storage after the campaign.
	Ring []telemetry.Event `json:"-"`
}

// Run executes the campaign and returns its metrics and trace.
func (c BusCampaign) Run() (BusMetrics, *trace.Trace, error) {
	failFrame := int64(max(2, c.Frames/4))
	sc, err := avionics.NewScenario(avionics.ScenarioOptions{
		Initial: avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
		Script: []envmon.Event{
			{Frame: failFrame, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
		},
		DwellFrames: -1,
		TraceSeed:   c.Seed,
	})
	if err != nil {
		return BusMetrics{}, nil, fmt.Errorf("inject: building scenario: %w", err)
	}
	defer sc.Close()

	plan := bus.NewFaultPlan(c.Seed)
	plan.SetDefault(c.Rates)
	sc.Sys.Bus().SetFaultPlan(plan)

	if err := sc.Sys.Run(c.Frames); err != nil {
		return BusMetrics{}, nil, fmt.Errorf("inject: running bus campaign: %w", err)
	}

	tr := sc.Sys.Trace()
	rs := avionics.Spec()
	out := BusMetrics{
		Metrics:    Collect(tr, rs, int64(rs.DwellFrames)+2),
		Faults:     plan.Stats(),
		FinalAltFt: sc.Dyn.State().AltFt,
	}
	out.Delivered, out.Dropped = sc.Sys.Bus().Stats()
	out.Ring = recoverRing(sc.Sys)
	if reg, _ := sc.Sys.Telemetry(); reg != nil {
		out.Registry = reg.Snapshot()
	}
	return out, tr, nil
}
