package inject

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/membership"
	"repro/internal/spectest"
	"repro/internal/telemetry"
)

// These tests attack the causal-trace layer with the failure it exists for:
// a fail-stop halt of the whole platform in the middle of the very activity
// the trace describes. The journal recovered from the SCRAM host's
// *committed* stable storage — no flush, exactly what a post-mortem reader
// gets after a crash — must match the live ring up to the one-frame staging
// lag, and the traces assembled from it must render byte-identically to the
// live ones over the covered frames, open spans and all.

// recoverCommitted polls the SCRAM host's committed stable storage without
// flushing: the post-crash view. recoverRing (the campaign helper) flushes
// first and so models an orderly shutdown; this models the disorderly one.
func recoverCommitted(t *testing.T, sys *core.System) []telemetry.Event {
	t.Helper()
	snap, err := sys.Pool().PollStable(sys.SCRAMProc())
	if err != nil {
		t.Fatalf("polling SCRAM host stable storage: %v", err)
	}
	ring, err := telemetry.RecoverRing(snap)
	if err != nil {
		t.Fatalf("recovering ring: %v", err)
	}
	return ring
}

// requireFreshPrefix checks the staleness contract: the recovered journal is
// a prefix of the live ring, and every event it is missing belongs to the
// final (uncommitted) frame — the recovered black box trails the live system
// by at most one frame.
func requireFreshPrefix(t *testing.T, live, recovered []telemetry.Event) {
	t.Helper()
	if len(recovered) == 0 {
		t.Fatal("no events recovered from committed stable storage")
	}
	if len(recovered) > len(live) {
		t.Fatalf("recovered %d events, live ring has only %d", len(recovered), len(live))
	}
	for i := range recovered {
		if !reflect.DeepEqual(recovered[i], live[i]) {
			t.Fatalf("recovered event %d diverges from live:\n  recovered %+v\n  live      %+v",
				i, recovered[i], live[i])
		}
	}
	last := live[len(live)-1].Frame
	for _, e := range live[len(recovered):] {
		if e.Frame < last {
			t.Fatalf("staleness contract broken: event at frame %d missing from the recovered journal, live head is frame %d",
				e.Frame, last)
		}
	}
}

// renderTraceReports renders every trace's waterfall the way flightrec
// -trace -json and the live plane's /trace/<id> do.
func renderTraceReports(t *testing.T, events []telemetry.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tv := range telemetry.AssembleTraces(events) {
		if tv.ID == 0 {
			continue
		}
		if err := cli.WriteJSON(&buf, telemetry.BuildTraceReport(tv)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestTraceSurvivesHaltMidWindow halts the platform in the middle of a
// transition window and checks the recovered journal still carries the
// in-flight reconfiguration as an open root span, rendering byte-identically
// to the live trace over the committed frames.
func TestTraceSurvivesHaltMidWindow(t *testing.T) {
	rs := spectest.ThreeConfig()
	sys, err := core.NewSystem(core.Options{
		Spec:           rs,
		Apps:           basicApps(rs),
		Classifier:     threeConfigClassifier,
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		Script:         []envmon.Event{{Frame: 10, Factor: "alt1", Value: "failed"}},
		TraceSeed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Drive frame by frame until the kernel is mid-window, then two frames
	// further so the window's opening spans have committed, then "crash".
	for i := 0; i < 40 && !sys.Kernel().Reconfiguring(); i++ {
		if err := sys.Run(1); err != nil {
			t.Fatal(err)
		}
	}
	if !sys.Kernel().Reconfiguring() {
		t.Fatal("no transition window opened within 40 frames")
	}
	if err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if !sys.Kernel().Reconfiguring() {
		t.Fatal("window already closed; halt is not mid-transition")
	}

	_, rec := sys.Telemetry()
	live := rec.Events()
	recovered := recoverCommitted(t, sys)
	requireFreshPrefix(t, live, recovered)

	// The in-flight reconfiguration must be on the recovered black box as
	// an open root span: start recorded, no end — a window cut short.
	var root telemetry.Span
	found := false
	for _, tv := range telemetry.AssembleTraces(recovered) {
		if r, ok := tv.Root(); ok && tv.ID != 0 {
			root, found = r, true
		}
	}
	if !found {
		t.Fatal("recovered journal has no reconfiguration root span")
	}
	if root.End != -1 {
		t.Fatalf("recovered root span is closed (end %d); expected an open in-flight window", root.End)
	}

	liveAtCut := renderTraceReports(t, live[:len(recovered)])
	fromRecovered := renderTraceReports(t, recovered)
	if !bytes.Equal(liveAtCut, fromRecovered) {
		t.Errorf("trace waterfalls diverge over the committed frames:\nlive:\n%s\nrecovered:\n%s",
			liveAtCut, fromRecovered)
	}
}

// TestTraceSurvivesHaltMidChainedWindow arranges the chained-urgent case —
// a processor loss mid-window chains a follow-up transition onto the
// completing one — then halts inside the chained window. The recovered
// journal must preserve the causal link: the chain span parents to the open
// root, and the follow-up's phase spans parent to the chain span.
func TestTraceSurvivesHaltMidChainedWindow(t *testing.T) {
	rs := spectest.ThreeConfigWithSpares(1)
	// The fused chain window (full -> reduced -> minimal sharing the
	// completion frame) needs 9 frames; the canonical 8-frame bounds are
	// deliberately tight, so widen them for the chained arm.
	for i := range rs.Transitions {
		if rs.Transitions[i].MaxFrames < 12 {
			rs.Transitions[i].MaxFrames = 12
		}
	}
	sys, err := core.NewSystem(core.Options{
		Spec:           rs,
		Apps:           basicApps(rs),
		Classifier:     threeConfigClassifier,
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		Script: []envmon.Event{
			{Frame: 10, Factor: "alt1", Value: "failed"},
			{Frame: 12, Factor: "alt2", Value: "failed"},
		},
		// The spare's loss mid-window is the urgent hardware-fault signal
		// that arms chaining; by completion the environment demands
		// minimal, so the follow-up fuses onto the closing window.
		ProcEvents: []core.ProcEvent{{Frame: 12, Proc: "p3", Kind: core.ProcFail}},
		TraceSeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	chained := func() bool {
		target, _, ok := sys.Kernel().PlanTarget()
		return ok && target == spectest.CfgMinimal
	}
	for i := 0; i < 40 && !chained(); i++ {
		if err := sys.Run(1); err != nil {
			t.Fatal(err)
		}
	}
	if !chained() {
		t.Fatal("no chained follow-up window opened within 40 frames")
	}
	if err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if !chained() {
		t.Fatal("chained window already closed; halt is not mid-chain")
	}

	_, rec := sys.Telemetry()
	live := rec.Events()
	recovered := recoverCommitted(t, sys)
	requireFreshPrefix(t, live, recovered)

	// Walk the recovered trace for the chained-urgent causal structure.
	var tv telemetry.TraceView
	found := false
	for _, cand := range telemetry.AssembleTraces(recovered) {
		if _, ok := cand.Root(); ok && cand.ID != 0 {
			tv, found = cand, true
		}
	}
	if !found {
		t.Fatal("recovered journal has no reconfiguration trace")
	}
	root, _ := tv.Root()
	if root.End != -1 {
		t.Fatalf("root span closed (end %d); the chain should have kept the fused window open", root.End)
	}
	var chain telemetry.Span
	for _, s := range tv.Spans {
		if s.Name == telemetry.SpanChain {
			chain = s
		}
	}
	if chain.ID == 0 {
		t.Fatal("recovered trace has no chain span")
	}
	if chain.Parent != root.ID {
		t.Errorf("chain span parents to %d, want the root span %d", chain.Parent, root.ID)
	}
	childPhases := 0
	for _, s := range tv.Spans {
		if s.Parent == chain.ID {
			childPhases++
		}
	}
	if childPhases == 0 {
		t.Error("no follow-up phase span parents to the chain span; the chained-urgent link is lost")
	}

	liveAtCut := renderTraceReports(t, live[:len(recovered)])
	fromRecovered := renderTraceReports(t, recovered)
	if !bytes.Equal(liveAtCut, fromRecovered) {
		t.Errorf("trace waterfalls diverge over the committed frames:\nlive:\n%s\nrecovered:\n%s",
			liveAtCut, fromRecovered)
	}
}

// TestTraceSurvivesHaltMidMembershipCatchup halts the platform while a
// joining processor is still catching up and checks the recovered journal
// carries the epoch marks up to the staleness bound: the join's epoch
// change is on the black box even though the member never finished.
func TestTraceSurvivesHaltMidMembershipCatchup(t *testing.T) {
	rs := spectest.ThreeConfigWithSpares(1)
	sys, err := core.NewSystem(core.Options{
		Spec:           rs,
		Apps:           basicApps(rs),
		Classifier:     threeConfigClassifier,
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		TraceSeed:      7,
		Membership: &core.MembershipOptions{
			Events:        []membership.Event{{Frame: 8, Proc: "p3", Op: membership.OpJoin}},
			CatchUpFrames: 6,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	joining := func() bool {
		for _, m := range sys.Membership().View().Members {
			if m.Proc == "p3" && m.Status == membership.StatusJoining {
				return true
			}
		}
		return false
	}
	for i := 0; i < 40 && !joining(); i++ {
		if err := sys.Run(1); err != nil {
			t.Fatal(err)
		}
	}
	if !joining() {
		t.Fatal("p3 never entered catch-up within 40 frames")
	}
	if err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if !joining() {
		t.Fatal("catch-up already finished; halt is not mid-catchup")
	}

	_, rec := sys.Telemetry()
	live := rec.Events()
	recovered := recoverCommitted(t, sys)
	requireFreshPrefix(t, live, recovered)

	epochMarks := func(events []telemetry.Event) int {
		n := 0
		for _, e := range events {
			if e.Kind == telemetry.KindSpanStart && e.Phase == telemetry.SpanEpoch {
				n++
			}
		}
		return n
	}
	if got := epochMarks(recovered); got == 0 {
		t.Error("join's epoch change missing from the recovered journal")
	} else if want := epochMarks(live[:len(recovered)]); got != want {
		t.Errorf("recovered journal has %d epoch marks, live has %d over the same frames", got, want)
	}
}
