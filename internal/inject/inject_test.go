package inject

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/statics"
	"repro/internal/trace"
)

// TestRandomSpecsDischargeObligations: the generator only produces
// specifications whose static obligations all discharge — the precondition
// for the property campaigns below.
func TestRandomSpecsDischargeObligations(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rs := spectest.Random(rng, 2+rng.Intn(4), 2+rng.Intn(3), 2+rng.Intn(3))
		report, err := statics.Check(rs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !report.AllDischarged() {
			t.Fatalf("seed %d: obligations failed: %v", seed, report.Failures())
		}
	}
}

// TestRandomCampaignsSatisfyProperties is the Table 2 reproduction workload:
// arbitrary valid systems under arbitrary environment flapping must satisfy
// SP1-SP4 on every completed reconfiguration.
func TestRandomCampaignsSatisfyProperties(t *testing.T) {
	reconfigsSeen := 0
	for seed := int64(0); seed < 25; seed++ {
		c := RandomCampaign{
			Seed:      seed,
			Frames:    250,
			Apps:      2 + int(seed%4),
			Configs:   2 + int(seed%3),
			Envs:      2 + int(seed%3),
			EnvEvents: 12,
		}
		m, _, err := c.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(m.Violations) != 0 {
			for _, v := range m.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d: properties violated", seed)
		}
		reconfigsSeen += m.Reconfigs
	}
	// The campaigns must actually exercise reconfiguration, not pass
	// vacuously.
	if reconfigsSeen < 10 {
		t.Fatalf("campaigns performed only %d reconfigurations; workload too weak", reconfigsSeen)
	}
}

// TestCanonicalCampaignsSatisfyProperties drives the avionics-shaped system
// through randomized alternator churn and processor failures, with and
// without the replicated SCRAM.
func TestCanonicalCampaignsSatisfyProperties(t *testing.T) {
	reconfigsSeen := 0
	for seed := int64(0); seed < 10; seed++ {
		c := CanonicalCampaign{
			Seed:         seed,
			Frames:       400,
			EnvEvents:    8,
			ProcFailures: 1,
			Standby:      seed%2 == 0,
			Dwell:        3,
		}
		m, _, err := c.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(m.Violations) != 0 {
			for _, v := range m.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d: properties violated", seed)
		}
		reconfigsSeen += m.Reconfigs
	}
	if reconfigsSeen == 0 {
		t.Fatal("no reconfigurations exercised")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	run := func() Metrics {
		m, _, err := CanonicalCampaign{Seed: 42, Frames: 200, EnvEvents: 6, Dwell: 2}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := run(), run()
	if m1.Reconfigs != m2.Reconfigs || m1.WindowTotal != m2.WindowTotal || m1.ChainMax != m2.ChainMax {
		t.Fatalf("same seed, different metrics: %+v vs %+v", m1, m2)
	}
}

func TestCollectMetrics(t *testing.T) {
	// Synthetic trace: two reconfiguration windows separated by a single
	// normal frame (one chain), then a long normal gap and a third
	// window (a new chain).
	tr := &trace.Trace{System: "m", FrameLen: time.Millisecond}
	state := func(c int64, status trace.ReconfStatus) trace.SysState {
		return trace.SysState{Cycle: c, Config: "full", Env: "env-ok",
			Apps: map[spec.AppID]trace.AppState{
				"a": {Status: status, Spec: "s", PreOK: true},
			}}
	}
	statuses := []trace.ReconfStatus{
		trace.StatusNormal,      // 0
		trace.StatusInterrupted, // 1  window 1: [1,4], 4 frames
		trace.StatusHalting,     // 2
		trace.StatusPreparing,   // 3
		trace.StatusNormal,      // 4  end of window 1
		trace.StatusInterrupted, // 5  window 2: [5,7], 3 frames (chain with 1)
		trace.StatusHalting,     // 6
		trace.StatusNormal,      // 7  end of window 2
		trace.StatusNormal,      // 8
		trace.StatusNormal,      // 9
		trace.StatusNormal,      // 10
		trace.StatusNormal,      // 11
		trace.StatusInterrupted, // 12 window 3: [12,14], 3 frames (new chain)
		trace.StatusHalting,     // 13
		trace.StatusNormal,      // 14 end of window 3
		trace.StatusNormal,      // 15
	}
	for c, st := range statuses {
		if err := tr.Append(state(int64(c), st)); err != nil {
			t.Fatal(err)
		}
	}
	rs := spectest.ThreeConfig()
	m := Collect(tr, rs, 1)
	if m.Frames != 16 {
		t.Errorf("Frames = %d", m.Frames)
	}
	if m.Reconfigs != 3 {
		t.Errorf("Reconfigs = %d, want 3", m.Reconfigs)
	}
	if m.WindowMax != 4 {
		t.Errorf("WindowMax = %d, want 4", m.WindowMax)
	}
	if m.WindowTotal != 10 {
		t.Errorf("WindowTotal = %d, want 10", m.WindowTotal)
	}
	// Windows 1 and 2 are separated by zero normal interior frames
	// (end 4, start 5): one chain of 7; window 3 stands alone.
	if m.ChainMax != 7 {
		t.Errorf("ChainMax = %d, want 7", m.ChainMax)
	}
	if m.OpenWindow {
		t.Error("unexpected open window")
	}
	// RestrictionFrames counts the non-normal cycles: 3 + 2 + 2.
	if m.RestrictionFrames != 7 {
		t.Errorf("RestrictionFrames = %d, want 7", m.RestrictionFrames)
	}
}

func TestCollectOpenWindow(t *testing.T) {
	tr := &trace.Trace{System: "m", FrameLen: time.Millisecond}
	states := []trace.ReconfStatus{trace.StatusNormal, trace.StatusInterrupted, trace.StatusHalting}
	for c, st := range states {
		err := tr.Append(trace.SysState{Cycle: int64(c), Config: "full", Env: "e",
			Apps: map[spec.AppID]trace.AppState{"a": {Status: st, Spec: "s", PreOK: true}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	m := Collect(tr, spectest.ThreeConfig(), 1)
	if !m.OpenWindow {
		t.Error("open window not reported")
	}
	if m.Reconfigs != 0 {
		t.Errorf("Reconfigs = %d, want 0", m.Reconfigs)
	}
}

// TestFailureInEveryProtocolFrame is experiment E5: a second failure lands
// in each frame of the first reconfiguration window in turn — trigger frame,
// halt frame, prepare frame, both init frames, and the completion frame —
// and the properties must hold in every case (the buffer policy defers the
// second transition to a fresh window).
func TestFailureInEveryProtocolFrame(t *testing.T) {
	// The first window for full -> reduced is [20, 24].
	for offset := int64(0); offset <= 5; offset++ {
		offset := offset
		t.Run(fmt.Sprintf("offset=%d", offset), func(t *testing.T) {
			rs := spectest.ThreeConfig()
			rs.DwellFrames = 1
			apps := basicAppsForTest(rs)
			sys, err := core.NewSystem(core.Options{
				Spec:       rs,
				Apps:       apps,
				Classifier: func(f map[envmon.Factor]string) spec.EnvState { return spec.EnvState(f["power"]) },
				InitialFactors: map[envmon.Factor]string{
					"power": string(spectest.EnvFull),
				},
				Script: []envmon.Event{
					{Frame: 20, Factor: "power", Value: string(spectest.EnvReduced)},
					{Frame: 20 + offset, Factor: "power", Value: string(spectest.EnvBattery)},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			if err := sys.Run(60); err != nil {
				t.Fatal(err)
			}
			if got := sys.Kernel().Current(); got != spectest.CfgMinimal {
				t.Fatalf("final configuration = %s, want minimal", got)
			}
			if vs := sys.CheckProperties(); len(vs) != 0 {
				for _, v := range vs {
					t.Errorf("%s", v)
				}
				t.Fatal("properties violated")
			}
			// The buffered second failure yields a second window (or,
			// when it lands in the trigger frame itself, a direct
			// full -> minimal transition).
			rcs := sys.Trace().Reconfigs()
			if offset == 0 {
				if len(rcs) != 1 || rcs[0].To != spectest.CfgMinimal {
					t.Fatalf("same-frame double failure: %v", rcs)
				}
			} else if len(rcs) != 2 || rcs[1].To != spectest.CfgMinimal {
				t.Fatalf("windows = %v, want chain ending in minimal", rcs)
			}
		})
	}
}

// basicAppsForTest builds reference implementations for every real app.
func basicAppsForTest(rs *spec.ReconfigSpec) map[spec.AppID]core.App {
	apps := make(map[spec.AppID]core.App)
	for _, decl := range rs.RealApps() {
		decl := decl
		apps[decl.ID] = core.NewBasicApp(&decl)
	}
	return apps
}

// TestLongSoak runs long mixed campaigns (environment churn plus processor
// fail/repair cycles) and checks properties over the whole trace. Skipped in
// -short mode.
func TestLongSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(0); seed < 5; seed++ {
		m, tr, err := CanonicalCampaign{
			Seed:         seed,
			Frames:       3000,
			EnvEvents:    40,
			ProcFailures: 3,
			Standby:      seed%2 == 0,
			Dwell:        4,
		}.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(m.Violations) != 0 {
			for _, v := range m.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d violated properties over %d frames", seed, tr.Len())
		}
		if m.Reconfigs == 0 {
			t.Errorf("seed %d: no reconfigurations in soak", seed)
		}
	}
}

// TestRandomCompressedCampaignsSatisfyProperties reruns the Table 2 workload
// with the section 6.3 compressed protocol: arbitrary valid systems under
// environment flapping must still satisfy SP1-SP4.
func TestRandomCompressedCampaignsSatisfyProperties(t *testing.T) {
	reconfigs := 0
	for seed := int64(100); seed < 115; seed++ {
		c := RandomCampaign{
			Seed:       seed,
			Frames:     250,
			Apps:       2 + int(seed%4),
			Configs:    2 + int(seed%3),
			Envs:       2 + int(seed%3),
			EnvEvents:  12,
			Compressed: true,
		}
		m, _, err := c.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(m.Violations) != 0 {
			for _, v := range m.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d: properties violated", seed)
		}
		reconfigs += m.Reconfigs
	}
	if reconfigs < 5 {
		t.Fatalf("only %d reconfigurations exercised", reconfigs)
	}
}

// TestExhaustiveBoundedVerification enumerates every environment sequence of
// length 4 over the canonical system's three states (81 complete system
// runs) and requires SP1-SP4 to hold in every single one — bounded
// exhaustive coverage rather than sampling.
func TestExhaustiveBoundedVerification(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.DwellFrames = 2
	res, err := Exhaustive(rs, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 81 {
		t.Fatalf("runs = %d, want 3^4 = 81", res.Runs)
	}
	if len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("%s", v)
		}
		t.Fatal("bounded-exhaustive verification found violations")
	}
	if res.Reconfigs == 0 {
		t.Fatal("no reconfigurations exercised")
	}
}

// TestExhaustiveCompressed repeats bounded-exhaustive verification under the
// compressed protocol at a slightly smaller bound.
func TestExhaustiveCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := spectest.ThreeConfig()
	rs.Compression = true
	rs.DwellFrames = 2
	if err := spectest.SizeTransitions(rs, rng); err != nil {
		t.Fatal(err)
	}
	res, err := Exhaustive(rs, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 27 {
		t.Fatalf("runs = %d", res.Runs)
	}
	if len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("%s", v)
		}
		t.Fatal("violations under compression")
	}
}
