package inject

import (
	"testing"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spectest"
	"repro/internal/stable"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestRecoveredRingRoundTrip is the black-box round trip: run the canonical
// system through an injected fail-stop halt of an application processor,
// poll the SCRAM host's committed stable storage — exactly what a
// post-mortem reader would do — recover the flight-recorder ring, and check
// that the trace reconstructed from it passes the same SP1-SP4 checkers as
// the live trace, frame for frame.
func TestRecoveredRingRoundTrip(t *testing.T) {
	rs := spectest.ThreeConfig()
	const frames = 60
	sys, err := core.NewSystem(core.Options{
		Spec:           rs,
		Apps:           basicApps(rs),
		Classifier:     threeConfigClassifier,
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		Script: []envmon.Event{
			{Frame: 10, Factor: "alt1", Value: "failed"},
			{Frame: 35, Factor: "alt1", Value: "ok"},
		},
		ProcEvents: []core.ProcEvent{{Frame: 22, Proc: "p2", Kind: core.ProcFail}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Run(frames); err != nil {
		t.Fatal(err)
	}

	ring := recoverRing(sys)
	if len(ring) == 0 {
		t.Fatal("no ring recovered from the SCRAM host's stable storage")
	}

	// The injected halt must be on the black box.
	var halts int
	for _, e := range ring {
		if e.Kind == telemetry.KindProcHalt && e.Host == "p2" {
			halts++
		}
	}
	if halts == 0 {
		t.Error("injected fail-stop halt of p2 not recorded in the ring")
	}

	live := sys.Trace()
	rec, base, err := telemetry.ReconstructTrace(live.System, live.FrameLen, ring)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 {
		t.Fatalf("ring evicted frames (base %d); test expects full coverage", base)
	}
	if rec.Len() != live.Len() {
		t.Fatalf("reconstructed trace has %d cycles, live has %d", rec.Len(), live.Len())
	}
	for i := range live.States {
		ls, rsx := live.States[i], rec.States[i]
		if ls.Config != rsx.Config || ls.Env != rsx.Env {
			t.Fatalf("cycle %d: live (%s,%s) != reconstructed (%s,%s)",
				i, ls.Config, ls.Env, rsx.Config, rsx.Env)
		}
		for id, la := range ls.Apps {
			if ra := rsx.Apps[id]; la != ra {
				t.Fatalf("cycle %d app %s: live %+v != reconstructed %+v", i, id, la, ra)
			}
		}
	}

	liveV := trace.CheckAll(live, rs)
	recV := trace.CheckAll(rec, rs)
	if len(liveV) != len(recV) {
		t.Fatalf("checker disagreement: live %d violation(s) %v, reconstructed %d violation(s) %v",
			len(liveV), liveV, len(recV), recV)
	}
	if len(liveV) != 0 {
		t.Errorf("live trace has violations: %v", liveV)
	}

	sum := telemetry.Summarize(ring)
	if len(sum.Reconfigs) == 0 {
		t.Error("summary found no reconfiguration windows")
	}
	for _, r := range sum.Reconfigs {
		if r.Complete() && r.BoundFrames > 0 && r.WindowFrames > r.BoundFrames {
			t.Errorf("window %s->%s took %d frames, over bound %d", r.Source, r.Target, r.WindowFrames, r.BoundFrames)
		}
	}
}

// TestDefeatModeRingSPRoundTrip runs the s1 defeat-mode campaign — storage
// corruption beats single-replica redundancy, the store converts the fault
// to a fail-stop halt — and re-certifies the run from the recovered ring.
func TestDefeatModeRingSPRoundTrip(t *testing.T) {
	m, live, err := StorageCampaign{
		Seed:      3,
		Frames:    150,
		EnvEvents: 5,
		Replicas:  1,
		Faults:    stable.FaultProfile{BitRotRate: 0.4},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.StorageHalts == 0 {
		t.Fatal("defeat-mode campaign produced no fail-stop halt; pick a different seed")
	}
	if len(m.Ring) == 0 {
		t.Fatal("campaign recovered no ring")
	}

	rs := spectest.ThreeConfig()
	rec, _, err := telemetry.ReconstructTrace(live.System, live.FrameLen, m.Ring)
	if err != nil {
		t.Fatal(err)
	}
	liveV := trace.CheckAll(live, rs)
	recV := trace.CheckAll(rec, rs)
	if len(liveV) != 0 || len(recV) != 0 {
		t.Errorf("SP violations: live %v, reconstructed %v", liveV, recV)
	}
}
