// Package inject drives fault-injection campaigns against reconfigurable
// systems and collects the metrics the experiments report: reconfiguration
// counts and window lengths, service-restriction totals, worst restriction
// chains (the measured counterpart of the section 5.3 bounds), and SP1-SP4
// property violations.
//
// Campaigns come in two flavors. CanonicalCampaign exercises the paper's
// avionics-shaped three-configuration system with randomized alternator and
// processor events. RandomCampaign generates an arbitrary valid
// specification (spectest.Random), instantiates it with reference
// applications, and flaps the environment randomly — the workload behind the
// Table 2 reproduction: whatever valid system and whatever failure sequence,
// the four properties must hold.
package inject

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/trace"
)

// Metrics summarizes one campaign run.
type Metrics struct {
	// Frames is the campaign length.
	Frames int64
	// Reconfigs is the number of completed reconfigurations.
	Reconfigs int
	// WindowMax is the longest single reconfiguration window, in frames.
	WindowMax int64
	// WindowTotal sums all reconfiguration windows.
	WindowTotal int64
	// RestrictionFrames counts frames with restricted service (identical
	// to WindowTotal for completed windows, plus any open window).
	RestrictionFrames int64
	// ChainMax is the worst restriction chain: the largest summed window
	// length over maximal runs of reconfigurations separated by at most
	// ChainGap frames of normal service. It is the measured counterpart
	// of the section 5.3 Σ T(i-1, i) bound.
	ChainMax int64
	// ChainGap is the gap threshold used for ChainMax.
	ChainGap int64
	// Violations holds every SP1-SP4 violation found in the trace.
	Violations []trace.Violation
	// OpenWindow reports that the trace ended mid-reconfiguration.
	OpenWindow bool
}

// Collect computes campaign metrics from a trace. chainGap is the maximum
// number of normal frames between two reconfigurations that still count as
// the same failure chain (the dwell time plus scheduling slack is the usual
// choice).
func Collect(tr *trace.Trace, rs *spec.ReconfigSpec, chainGap int64) Metrics {
	m := Metrics{
		Frames:   tr.Len(),
		ChainGap: chainGap,
	}
	rcs := tr.Reconfigs()
	m.Reconfigs = len(rcs)
	var chain int64
	var lastEnd int64 = -1 << 62
	for _, r := range rcs {
		w := r.Frames()
		m.WindowTotal += w
		if w > m.WindowMax {
			m.WindowMax = w
		}
		if r.StartC-lastEnd <= chainGap+1 {
			chain += w
		} else {
			chain = w
		}
		if chain > m.ChainMax {
			m.ChainMax = chain
		}
		lastEnd = r.EndC
	}
	m.RestrictionFrames = tr.RestrictionFrames()
	m.Violations = trace.CheckAll(tr, rs)
	_, m.OpenWindow = tr.OpenReconfig()
	return m
}

// CanonicalCampaign configures a randomized run of the canonical
// three-configuration avionics-shaped system.
type CanonicalCampaign struct {
	// Seed drives all randomness; equal seeds give equal runs.
	Seed int64
	// Frames is the campaign length.
	Frames int
	// EnvEvents is the number of alternator state changes to script.
	EnvEvents int
	// ProcFailures is the number of p2 fail/repair pairs to script (p2
	// hosts the FCS in full service; p1 hosts the SCRAM and is spared).
	ProcFailures int
	// Standby enables the replicated SCRAM on p2.
	Standby bool
	// Dwell overrides the specification's dwell frames (negative keeps
	// the default).
	Dwell int
}

// Run executes the campaign and returns its metrics and trace.
func (c CanonicalCampaign) Run() (Metrics, *trace.Trace, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	preset, err := spectest.Lookup("threeconfig")
	if err != nil {
		return Metrics{}, nil, err
	}
	rs := preset.New()
	if c.Dwell >= 0 {
		rs.DwellFrames = c.Dwell
		if rs.DwellFrames == 0 {
			rs.DwellFrames = 1 // the transition graph has cycles; keep the guard
		}
	}

	// Script: alternator flapping at random frames.
	var script []envmon.Event
	for i := 0; i < c.EnvEvents; i++ {
		f := int64(1 + rng.Intn(max(1, c.Frames-2)))
		alt := envmon.Factor("alt1")
		if rng.Intn(2) == 0 {
			alt = "alt2"
		}
		val := "ok"
		if rng.Intn(2) == 0 {
			val = "failed"
		}
		script = append(script, envmon.Event{Frame: f, Factor: alt, Value: val})
	}

	// Processor events: fail/repair pairs on p2.
	var procEvents []core.ProcEvent
	for i := 0; i < c.ProcFailures; i++ {
		f := int64(1 + rng.Intn(max(1, c.Frames-20)))
		procEvents = append(procEvents,
			core.ProcEvent{Frame: f, Proc: "p2", Kind: core.ProcFail},
			core.ProcEvent{Frame: f + int64(10+rng.Intn(10)), Proc: "p2", Kind: core.ProcRepair},
		)
	}

	opts := core.Options{
		Spec:           rs,
		Apps:           basicApps(rs),
		Classifier:     preset.Classifier,
		InitialFactors: preset.Factors(),
		Script:         script,
		ProcEvents:     procEvents,
	}
	if c.Standby {
		opts.StandbyProc = "p2"
	}
	return runCampaign(opts, c.Frames, int64(rs.DwellFrames))
}

// RandomCampaign configures a run of a randomly generated specification.
type RandomCampaign struct {
	// Seed drives both the specification generator and the environment
	// script.
	Seed int64
	// Frames is the campaign length.
	Frames int
	// Apps, Configs, Envs size the generated specification.
	Apps, Configs, Envs int
	// EnvEvents is the number of scripted environment changes.
	EnvEvents int
	// Compressed enables the section 6.3 relaxed protocol (per-app phase
	// chaining); transition bounds are resized for it.
	Compressed bool
}

// envFactor is the single factor random campaigns flap; the classifier maps
// it straight to the specification's environment state.
const envFactor envmon.Factor = "env"

// Run generates the specification, instantiates it with reference
// applications, and executes the campaign.
func (c RandomCampaign) Run() (Metrics, *trace.Trace, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	rs := spectest.Random(rng, c.Apps, c.Configs, c.Envs)
	if c.Compressed {
		rs.Compression = true
		if err := spectest.SizeTransitions(rs, rng); err != nil {
			return Metrics{}, nil, fmt.Errorf("inject: resizing for compression: %w", err)
		}
	}

	var script []envmon.Event
	for i := 0; i < c.EnvEvents; i++ {
		script = append(script, envmon.Event{
			Frame:  int64(1 + rng.Intn(max(1, c.Frames-2))),
			Factor: envFactor,
			Value:  string(rs.Envs[rng.Intn(len(rs.Envs))]),
		})
	}
	opts := core.Options{
		Spec:           rs,
		Apps:           basicApps(rs),
		Classifier:     func(f map[envmon.Factor]string) spec.EnvState { return spec.EnvState(f[envFactor]) },
		InitialFactors: map[envmon.Factor]string{envFactor: string(rs.StartEnv)},
		Script:         script,
	}
	return runCampaign(opts, c.Frames, int64(rs.DwellFrames))
}

// threeConfigClassifier is the canonical classifier, now owned by the preset
// registry (spectest.ThreeConfigClassifier).
func threeConfigClassifier(f map[envmon.Factor]string) spec.EnvState {
	return spectest.ThreeConfigClassifier(f)
}

// basicApps builds a reference implementation for every real application.
func basicApps(rs *spec.ReconfigSpec) map[spec.AppID]core.App {
	return core.BasicApps(rs)
}

// mustPreset resolves a registry preset that is known to exist; the registry
// is static, so a miss is a programming error.
func mustPreset(name string) spectest.Preset {
	p, err := spectest.Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// runCampaign builds the system, runs it, and collects metrics.
func runCampaign(opts core.Options, frames int, dwell int64) (Metrics, *trace.Trace, error) {
	sys, err := core.NewSystem(opts)
	if err != nil {
		return Metrics{}, nil, fmt.Errorf("inject: building system: %w", err)
	}
	defer sys.Close()
	if err := sys.Run(frames); err != nil {
		return Metrics{}, nil, fmt.Errorf("inject: running campaign: %w", err)
	}
	tr := sys.Trace()
	return Collect(tr, opts.Spec, dwell+2), tr, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ExhaustiveResult summarizes a bounded-exhaustive verification run.
type ExhaustiveResult struct {
	// Runs is the number of environment sequences executed: |Envs|^changes.
	Runs int
	// Reconfigs is the total reconfigurations across all runs.
	Reconfigs int
	// Violations holds every property violation found, annotated with the
	// offending sequence in the Detail field.
	Violations []trace.Violation
}

// Exhaustive performs bounded-exhaustive verification of a specification:
// it enumerates EVERY sequence of `changes` environment states (spaced
// `spacing` frames apart) and runs the full system against each, checking
// SP1-SP4 over every trace. Where the randomized campaigns sample the
// behaviour space, Exhaustive covers it completely up to the bound — the
// executable counterpart of proving the properties over all traces of the
// abstract model.
//
// The number of runs is |rs.Envs|^changes; keep changes small.
func Exhaustive(rs *spec.ReconfigSpec, changes, spacing int) (ExhaustiveResult, error) {
	var res ExhaustiveResult
	seq := make([]spec.EnvState, changes)
	frames := spacing * (changes + 2)

	var enumerate func(pos int) error
	enumerate = func(pos int) error {
		if pos == changes {
			res.Runs++
			var script []envmon.Event
			for i, e := range seq {
				script = append(script, envmon.Event{
					Frame:  int64(spacing * (i + 1)),
					Factor: envFactor,
					Value:  string(e),
				})
			}
			opts := core.Options{
				Spec:           rs,
				Apps:           basicApps(rs),
				Classifier:     func(f map[envmon.Factor]string) spec.EnvState { return spec.EnvState(f[envFactor]) },
				InitialFactors: map[envmon.Factor]string{envFactor: string(rs.StartEnv)},
				Script:         script,
			}
			m, _, err := runCampaign(opts, frames, int64(rs.DwellFrames)+2)
			if err != nil {
				return fmt.Errorf("inject: sequence %v: %w", seq, err)
			}
			res.Reconfigs += m.Reconfigs
			for _, v := range m.Violations {
				v.Detail = fmt.Sprintf("%s [sequence %v]", v.Detail, seq)
				res.Violations = append(res.Violations, v)
			}
			return nil
		}
		for _, e := range rs.Envs {
			seq[pos] = e
			if err := enumerate(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := enumerate(0); err != nil {
		return res, err
	}
	return res, nil
}
