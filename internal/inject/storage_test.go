package inject

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/stable"
)

func TestStorageCampaignShieldedRepairsTransparently(t *testing.T) {
	c := StorageCampaign{
		Seed:      1,
		Frames:    200,
		EnvEvents: 4,
		Replicas:  3,
		Faults:    stable.FaultProfile{TornWriteRate: 0.02, BitRotRate: 0.05, StuckReadRate: 0.02},
	}
	m, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Storage.SilentWrongData != 0 {
		t.Fatalf("silent wrong data = %d", m.Storage.SilentWrongData)
	}
	if len(m.Violations) != 0 {
		t.Fatalf("SP violations: %v", m.Violations)
	}
	if m.Injected == (stable.MediumStats{}) {
		t.Fatal("no faults injected; campaign is vacuous")
	}
	if m.Storage.CorruptionsDetected == 0 {
		t.Error("faults injected but none detected")
	}
	if m.StagedHighWater == 0 {
		t.Error("staged high-water mark never moved")
	}
}

// TestStorageCampaignDefeatHaltsNotLies: with one replica and heavy rot the
// store cannot repair, so processors must halt (fail-stop) and never serve
// wrong data silently.
func TestStorageCampaignDefeatHaltsNotLies(t *testing.T) {
	c := StorageCampaign{
		Seed:     2,
		Frames:   200,
		Replicas: 1,
		Faults:   stable.FaultProfile{BitRotRate: 0.5},
	}
	m, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Storage.SilentWrongData != 0 {
		t.Fatalf("silent wrong data = %d", m.Storage.SilentWrongData)
	}
	if m.StorageHalts == 0 {
		t.Fatal("single-replica store under heavy rot never halted a processor")
	}
	if len(m.Violations) != 0 {
		t.Fatalf("SP violations: %v", m.Violations)
	}
}

func TestStorageCampaignDeterminism(t *testing.T) {
	c := StorageCampaign{
		Seed:      7,
		Frames:    150,
		EnvEvents: 3,
		Replicas:  3,
		Faults:    stable.FaultProfile{TornWriteRate: 0.05, BitRotRate: 0.1, StuckReadRate: 0.05},
	}
	a, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Storage != b.Storage || a.Injected != b.Injected || a.StorageHalts != b.StorageHalts {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestBusCampaignHoldsPropertiesUnderLoss(t *testing.T) {
	c := BusCampaign{
		Seed:   1,
		Frames: 120,
		Rates:  bus.FaultRates{Drop: 0.1, Duplicate: 0.05, Delay: 0.05},
	}
	m, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Violations) != 0 {
		t.Fatalf("SP violations: %v", m.Violations)
	}
	if m.Reconfigs == 0 {
		t.Fatal("scripted alternator failure produced no reconfiguration")
	}
	if m.Faults.Dropped == 0 || m.Faults.Duplicated == 0 || m.Faults.Delayed == 0 {
		t.Errorf("fault plan idle: %+v", m.Faults)
	}
}

func TestBusCampaignDeterminism(t *testing.T) {
	c := BusCampaign{Seed: 5, Frames: 100, Rates: bus.FaultRates{Drop: 0.2, Duplicate: 0.1, Delay: 0.1}}
	a, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Faults != b.Faults || a.Delivered != b.Delivered || a.FinalAltFt != b.FinalAltFt {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
