package inject

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/frame"
	"repro/internal/membership"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// MembershipCampaign runs the canonical three-configuration system with two
// spare processors and dynamic membership enabled, then attacks the
// membership layer itself: spare join/leave churn, crash evictions of
// members mid-reconfiguration, and direct corruption of the committed
// membership record on the authoritative host's stable storage (the S3
// workload).
//
// The campaign checks the assured-reconfiguration contract extended to
// membership: every change re-verifies online before its epoch commits,
// rejected changes leave the prior epoch serving, a corrupted record drives
// bounded convergence instead of service from garbage, and the
// epoch-monotonicity, no-split-brain and safe-handoff invariants hold over
// the whole run alongside SP1-SP4.
type MembershipCampaign struct {
	// Seed drives all randomness; equal seeds give equal runs.
	Seed int64
	// Frames is the campaign length.
	Frames int
	// EnvEvents is the number of alternator state changes to script.
	EnvEvents int
	// Churn is the number of spare join/leave cycles to schedule on the
	// two spare processors. Any churn also schedules one unverifiable
	// leave of the FCS's host, which must be rejected with the prior
	// epoch still serving.
	Churn int
	// Evictions is the number of member fail/repair pairs to script; the
	// FCS's host and the first spare alternate as victims. The SCRAM's
	// host (p1) is never failed — the paper's dependable-SCRAM
	// assumption.
	Evictions int
	// CorruptRecords is the number of committed membership-record
	// corruptions to inject, cycling through undecodable garbage, a
	// valid-checksum record naming an undeclared processor under an
	// inflated epoch, and a torn (bit-flipped) record.
	CorruptRecords int
}

// plan derives the full deterministic schedule from the seed: the core
// options (environment script, processor events, membership events) plus the
// record-corruption frames, keyed by frame with the corruption variant as
// value.
func (c MembershipCampaign) plan() (core.Options, map[int64]int) {
	rng := rand.New(rand.NewSource(c.Seed))
	preset := mustPreset("threeconfig-spares")
	rs := preset.New()

	var script []envmon.Event
	for i := 0; i < c.EnvEvents; i++ {
		f := int64(1 + rng.Intn(max(1, c.Frames-2)))
		alt := envmon.Factor("alt1")
		if rng.Intn(2) == 0 {
			alt = "alt2"
		}
		val := "ok"
		if rng.Intn(2) == 0 {
			val = "failed"
		}
		script = append(script, envmon.Event{Frame: f, Factor: alt, Value: val})
	}

	spares := []spec.ProcID{"p3", "p4"}
	var memEvents []membership.Event
	for i := 0; i < c.Churn; i++ {
		sp := spares[i%len(spares)]
		join := int64(2 + rng.Intn(max(1, c.Frames-25)))
		memEvents = append(memEvents,
			membership.Event{Frame: join, Proc: sp, Op: membership.OpJoin},
			membership.Event{Frame: join + int64(8+rng.Intn(8)), Proc: sp, Op: membership.OpLeave},
		)
	}
	if c.Churn > 0 {
		// One deliberately unverifiable change per run: draining the
		// FCS's host, which every configuration still places the FCS on.
		memEvents = append(memEvents, membership.Event{
			Frame: int64(max(2, c.Frames/2)), Proc: "p2", Op: membership.OpLeave,
		})
	}

	victims := []spec.ProcID{"p2", "p3"}
	var procEvents []core.ProcEvent
	for i := 0; i < c.Evictions; i++ {
		v := victims[i%len(victims)]
		f := int64(2 + rng.Intn(max(1, c.Frames-30)))
		procEvents = append(procEvents,
			core.ProcEvent{Frame: f, Proc: v, Kind: core.ProcFail},
			core.ProcEvent{Frame: f + int64(10+rng.Intn(10)), Proc: v, Kind: core.ProcRepair},
		)
	}

	corrupt := make(map[int64]int, c.CorruptRecords)
	for i := 0; i < c.CorruptRecords; i++ {
		f := int64(2 + rng.Intn(max(1, c.Frames-4)))
		corrupt[f] = i % 3
	}

	opts := core.Options{
		Spec:           rs,
		Apps:           basicApps(rs),
		Classifier:     preset.Classifier,
		InitialFactors: preset.Factors(),
		Script:         script,
		ProcEvents:     procEvents,
		TraceSeed:      c.Seed,
		Membership:     &core.MembershipOptions{Events: memEvents},
	}
	return opts, corrupt
}

// Options builds the core.Options the campaign would run, without building
// or running anything, for up-front matrix validation.
func (c MembershipCampaign) Options() core.Options {
	opts, _ := c.plan()
	return opts
}

// MembershipMetrics extends the campaign metrics with the membership layer's
// accounting and invariant results.
type MembershipMetrics struct {
	Metrics
	// Epoch is the final membership epoch.
	Epoch int64
	// Membership is the manager's cumulative counters: joins, leaves,
	// rejections, evictions and convergences.
	Membership membership.Stats
	// Rejections are the membership changes that failed online
	// re-verification; the prior epoch kept serving through each.
	Rejections []membership.Rejection
	// MembershipViolations holds every epoch-monotonicity, split-brain or
	// unsafe-handoff violation found in the per-frame membership log. It
	// must be empty on every run.
	MembershipViolations []membership.Violation
	// Registry is the live telemetry registry's final snapshot.
	Registry telemetry.Snapshot
	// Ring is the flight-recorder journal recovered from the SCRAM host's
	// committed stable storage after the campaign.
	Ring []telemetry.Event `json:"-"`
}

// corruptRecordBytes renders one committed-record corruption. Variant 1 is
// the nastiest: a record with a valid checksum whose view names a processor
// the platform never declared, under an epoch far in the future — the
// convergence path must still move strictly past that epoch.
func corruptRecordBytes(variant int, mgr *membership.Manager) []byte {
	switch variant {
	case 1:
		v := mgr.View()
		v.Epoch += 97
		v.Members = append(v.Members, membership.Member{
			Proc: "zombie", Status: membership.StatusActive, CaughtUp: true,
		})
		if raw, err := membership.EncodeRecord(v); err == nil {
			return raw
		}
	case 2:
		if raw, err := membership.EncodeRecord(mgr.View()); err == nil && len(raw) > 4 {
			raw[len(raw)/2] ^= 0xFF // torn write: one flipped byte
			return raw
		}
	}
	return []byte("{{membership-record-garbage")
}

// Run executes the campaign and returns its metrics and trace.
func (c MembershipCampaign) Run() (MembershipMetrics, *trace.Trace, error) {
	opts, corrupt := c.plan()
	rs := opts.Spec

	sys, err := core.NewSystem(opts)
	if err != nil {
		return MembershipMetrics{}, nil, fmt.Errorf("inject: building system: %w", err)
	}
	defer sys.Close()

	if len(corrupt) > 0 {
		// User commit hooks run after every built-in, so the Put+Commit
		// pair overwrites the record the frame just committed: the
		// corruption is exactly what a reader polls at the next frame,
		// and the self-stabilization path must detect it there.
		sys.AddCommitHook(func(ctx frame.Context) error {
			variant, ok := corrupt[ctx.Frame]
			if !ok {
				return nil
			}
			mgr := sys.Membership()
			p, err := sys.Pool().Proc(mgr.View().Auth)
			if err != nil || !p.Alive() {
				return nil
			}
			st := p.Stable()
			st.Put(membership.RecordKey, corruptRecordBytes(variant, mgr))
			st.Commit()
			return nil
		})
	}

	if err := sys.Run(c.Frames); err != nil {
		return MembershipMetrics{}, nil, fmt.Errorf("inject: running membership campaign: %w", err)
	}

	tr := sys.Trace()
	mgr := sys.Membership()
	out := MembershipMetrics{
		Metrics:              Collect(tr, rs, int64(rs.DwellFrames)+2),
		Epoch:                mgr.Epoch(),
		Membership:           mgr.Stats(),
		Rejections:           mgr.Rejections(),
		MembershipViolations: sys.CheckMembership(),
		Ring:                 recoverRing(sys),
	}
	if reg, _ := sys.Telemetry(); reg != nil {
		out.Registry = reg.Snapshot()
	}
	return out, tr, nil
}
