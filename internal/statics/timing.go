package statics

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// RequiredWindow computes the worst-case reconfiguration window, in frames,
// for the transition from -> to: one trigger frame plus the critical paths
// of the halt, prepare, and initialize phases under the specification's
// dependency graph. Under the immediate retarget policy one worst-case
// retarget (an extra prepare of the most expensive possible intermediate
// target) is added, since the SCRAM permits at most one retarget per window
// and only before initialization begins.
func RequiredWindow(rs *spec.ReconfigSpec, from, to spec.ConfigID) (int, error) {
	cfgFrom, ok := rs.Config(from)
	if !ok {
		return 0, fmt.Errorf("statics: unknown configuration %q", from)
	}
	cfgTo, ok := rs.Config(to)
	if !ok {
		return 0, fmt.Errorf("statics: unknown configuration %q", to)
	}
	var window int
	if rs.Compression {
		// Section 6.3 relaxation: per-application phase chaining.
		_, length, err := CompressedSchedule(rs, cfgFrom, cfgTo)
		if err != nil {
			return 0, err
		}
		window = 1 + length
	} else {
		halt, err := phaseWindow(rs, cfgFrom, spec.PhaseHalt)
		if err != nil {
			return 0, err
		}
		prep, err := phaseWindow(rs, cfgTo, spec.PhasePrepare)
		if err != nil {
			return 0, err
		}
		ini, err := phaseWindow(rs, cfgTo, spec.PhaseInit)
		if err != nil {
			return 0, err
		}
		window = 1 + halt + prep + ini
	}
	if rs.Retarget == spec.RetargetImmediate {
		extra, err := worstPrepareWindow(rs)
		if err != nil {
			return 0, err
		}
		window += extra
	}
	return window, nil
}

// worstPrepareWindow is the most expensive prepare phase over all
// configurations: the cost of one abandoned mid-window target.
func worstPrepareWindow(rs *spec.ReconfigSpec) (int, error) {
	worst := 0
	for i := range rs.Configs {
		w, err := phaseWindow(rs, &rs.Configs[i], spec.PhasePrepare)
		if err != nil {
			return 0, err
		}
		if w > worst {
			worst = w
		}
	}
	return worst, nil
}

// PhasePlan computes the schedule of one protocol phase for a
// configuration: each participating application's start offset (0-based
// frames into the phase), its duration in frames, and the phase's
// critical-path length. Participants execute in parallel except where a
// dependency orders them; a dependent application starts only after every
// independent it waits on has completed the phase.
//
// Participants: for the halt phase, every application running in the source
// configuration (weighted by its source specification's HaltFrames); for
// prepare and initialize, every application running in the target
// configuration (weighted by the target specification's frames). A
// configuration with no participants yields an empty schedule of length 1
// (one frame to acknowledge the phase).
func PhasePlan(rs *spec.ReconfigSpec, cfg *spec.Configuration, phase spec.Phase) (starts, durations map[spec.AppID]int, length int, err error) {
	weights, err := phaseWeights(rs, cfg, phase)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(weights) == 0 {
		return map[spec.AppID]int{}, map[spec.AppID]int{}, 1, nil
	}
	dist, length, err := dagLongestPath(weights, rs.DepsForPhase(phase))
	if err != nil {
		return nil, nil, 0, err
	}
	starts = make(map[spec.AppID]int, len(weights))
	// Keyed inserts with pure values commute: no sort needed.
	for id, d := range dist {
		starts[id] = d - weights[id]
	}
	return starts, weights, length, nil
}

// phaseWindow computes the critical path of one protocol phase for a
// configuration.
func phaseWindow(rs *spec.ReconfigSpec, cfg *spec.Configuration, phase spec.Phase) (int, error) {
	_, _, length, err := PhasePlan(rs, cfg, phase)
	return length, err
}

// phaseWeights returns each participating application's duration for the
// phase.
func phaseWeights(rs *spec.ReconfigSpec, cfg *spec.Configuration, phase spec.Phase) (map[spec.AppID]int, error) {
	weights := make(map[spec.AppID]int)
	for _, appID := range cfg.RunningApps() {
		app, ok := rs.AppByID(appID)
		if !ok {
			return nil, fmt.Errorf("statics: configuration %q assigns unknown application %q", cfg.ID, appID)
		}
		sp, ok := app.Spec(cfg.Assignment[appID])
		if !ok {
			return nil, fmt.Errorf("statics: application %q lacks specification %q", appID, cfg.Assignment[appID])
		}
		switch phase {
		case spec.PhaseHalt:
			weights[appID] = sp.HaltFrames
		case spec.PhasePrepare:
			weights[appID] = sp.PrepareFrames
		case spec.PhaseInit:
			weights[appID] = sp.InitFrames
		default:
			return nil, fmt.Errorf("statics: phase %v has no window", phase)
		}
	}
	return weights, nil
}

// dagLongestPath computes, for every participating application, the longest
// node-weighted path through the dependency DAG ending at (and including)
// that application, plus the overall critical-path length. Dependencies
// naming non-participants are ignored (an app that is off in the relevant
// configuration gates nothing).
func dagLongestPath(weights map[spec.AppID]int, deps []spec.Dependency) (map[spec.AppID]int, int, error) {
	adj := make(map[spec.AppID][]spec.AppID)
	indeg := make(map[spec.AppID]int)
	// Constant inserts commute: no sort needed.
	for id := range weights {
		indeg[id] = 0
	}
	for _, d := range deps {
		if _, ok := weights[d.Independent]; !ok {
			continue
		}
		if _, ok := weights[d.Dependent]; !ok {
			continue
		}
		adj[d.Independent] = append(adj[d.Independent], d.Dependent)
		indeg[d.Dependent]++
	}
	// Kahn's algorithm with deterministic ordering.
	var queue []spec.AppID
	for id, deg := range indeg {
		if deg == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	dist := make(map[spec.AppID]int, len(weights))
	for _, id := range queue {
		dist[id] = weights[id]
	}
	processed := 0
	best := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		processed++
		if dist[cur] > best {
			best = dist[cur]
		}
		for _, next := range adj[cur] {
			if d := dist[cur] + weights[next]; d > dist[next] {
				dist[next] = d
			}
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if processed != len(weights) {
		return nil, 0, fmt.Errorf("statics: dependency graph is cyclic")
	}
	return dist, best, nil
}

// transitionTimings evaluates the timing obligation for every declared
// transition.
func transitionTimings(rs *spec.ReconfigSpec) []TransitionTiming {
	out := make([]TransitionTiming, 0, len(rs.Transitions))
	for _, t := range rs.Transitions {
		required, err := RequiredWindow(rs, t.From, t.To)
		tt := TransitionTiming{
			From:           t.From,
			To:             t.To,
			DeclaredFrames: t.MaxFrames,
		}
		if err != nil {
			// A cyclic dependency graph is reported by its own
			// obligation; mark the timing un-dischargeable.
			tt.RequiredFrames = -1
			tt.OK = false
		} else {
			tt.RequiredFrames = required
			tt.OK = required <= t.MaxFrames
		}
		out = append(out, tt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// restrictionAnalysis computes the section 5.3 worst-case restriction time:
// the longest simple transition chain (by summed declared bounds) ending at
// a safe configuration, and the reduced bound max{T(i, s)} obtained by
// interposing the best safe configuration.
func restrictionAnalysis(rs *spec.ReconfigSpec) RestrictionAnalysis {
	var ra RestrictionAnalysis
	adj := transitionAdjacency(rs)
	safe := make(map[spec.ConfigID]bool)
	for _, s := range rs.SafeConfigs() {
		safe[s] = true
	}

	// Longest simple path ending at a safe configuration. Transition
	// graphs are small (configurations are designed by hand), so simple
	// enumeration is appropriate.
	var best []spec.ConfigID
	bestCost := 0
	var path []spec.ConfigID
	onPath := make(map[spec.ConfigID]bool)
	var dfs func(cur spec.ConfigID, cost int)
	dfs = func(cur spec.ConfigID, cost int) {
		path = append(path, cur)
		onPath[cur] = true
		if safe[cur] && len(path) > 1 && cost > bestCost {
			bestCost = cost
			best = append([]spec.ConfigID{}, path...)
		}
		for _, next := range adj[cur] {
			if onPath[next] {
				continue
			}
			t, _ := rs.T(cur, next)
			dfs(next, cost+t)
		}
		onPath[cur] = false
		path = path[:len(path)-1]
	}
	var starts []spec.ConfigID
	for i := range rs.Configs {
		starts = append(starts, rs.Configs[i].ID)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		dfs(s, 0)
	}
	ra.LongestChain = best
	ra.LongestChainFrames = bestCost

	// Interposition: for each safe configuration s with T(i, s) declared
	// for every non-safe i, the bound is max{T(i, s)}; pick the best s.
	for _, s := range rs.SafeConfigs() {
		bound, ok := InterposedBound(rs, s)
		if !ok {
			continue
		}
		if ra.InterposedSafe == "" || bound < ra.InterposedBoundFrames {
			ra.InterposedSafe = s
			ra.InterposedBoundFrames = bound
		}
	}
	return ra
}

// InterposedBound computes the paper's max{T(i, s)} bound for interposing
// the safe configuration s: if every non-safe configuration i declares a
// transition to s, the worst-case restriction after any single failure is
// one hop, bounded by the largest such T. The second result is false if some
// configuration has no declared transition to s.
func InterposedBound(rs *spec.ReconfigSpec, s spec.ConfigID) (int, bool) {
	bound := 0
	for i := range rs.Configs {
		cfg := &rs.Configs[i]
		if cfg.ID == s {
			continue
		}
		t, ok := rs.T(cfg.ID, s)
		if !ok {
			return 0, false
		}
		if t > bound {
			bound = t
		}
	}
	return bound, true
}

// Interpose returns a copy of the specification in which every choice-table
// entry that would move directly between two non-safe configurations is
// redirected to the safe configuration s, realizing the section 5.3
// "interposing a safe configuration Cs in between any transition between two
// unsafe configurations". The caller remains responsible for declaring the
// transitions the redirected entries require (Check will verify coverage).
func Interpose(rs *spec.ReconfigSpec, s spec.ConfigID) (*spec.ReconfigSpec, error) {
	safeCfg, ok := rs.Config(s)
	if !ok {
		return nil, fmt.Errorf("statics: unknown configuration %q", s)
	}
	if !safeCfg.Safe {
		return nil, fmt.Errorf("statics: configuration %q is not safe", s)
	}
	isSafe := make(map[spec.ConfigID]bool)
	for _, id := range rs.SafeConfigs() {
		isSafe[id] = true
	}
	out := *rs
	out.Choice = make(spec.ChoiceTable, len(rs.Choice))
	// Keyed inserts with pure values commute at both levels: no sorts
	// needed to keep the rebuilt table replay-stable.
	for from, row := range rs.Choice {
		newRow := make(map[spec.EnvState]spec.ConfigID, len(row))
		for env, to := range row {
			if from != to && !isSafe[from] && !isSafe[to] {
				newRow[env] = s
			} else {
				newRow[env] = to
			}
		}
		out.Choice[from] = newRow
	}
	return &out, nil
}
