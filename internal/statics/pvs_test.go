package statics

import (
	"strings"
	"testing"
)

func TestExportPVSAvionicsShape(t *testing.T) {
	out := ExportPVS(threeConfigSpec())
	wants := []string{
		"statics_test: THEORY",
		"app: TYPE = {ap, fcs, power_monitor}",
		"svclvl: TYPE = {full, reduced, minimal}",
		"env_state: TYPE = {power_full, power_reduced, power_battery}",
		"assignment(c: svclvl, a: app)",
		"txn_valid(i, j: svclvl)",
		"choose(c: svclvl, e: env_state)",
		"SP1(tr, r)",
		"SP2(tr, r)",
		"SP3(tr, r)",
		"covering_txns: bool",
		"END statics_test",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("PVS export missing %q", w)
		}
	}
	// Off assignments render as the distinguished literal.
	if !strings.Contains(out, "ap: off") {
		t.Errorf("off assignment not rendered:\n%s", out)
	}
	// Transition bounds appear.
	if !strings.Contains(out, "i = full AND j = reduced -> 6") {
		t.Errorf("transition bound not rendered")
	}
}

func TestExportPVSDeterministic(t *testing.T) {
	a := ExportPVS(threeConfigSpec())
	b := ExportPVS(threeConfigSpec())
	if a != b {
		t.Fatal("PVS export is not deterministic")
	}
}

func TestPVSIdentSanitizes(t *testing.T) {
	tests := map[string]string{
		"power-monitor": "power_monitor",
		"3cfg":          "x_3cfg",
		"":              "x_",
		"ok":            "ok",
	}
	for in, want := range tests {
		if got := pvsIdent(in); got != want {
			t.Errorf("pvsIdent(%q) = %q, want %q", in, got, want)
		}
	}
}
