package statics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

// threeConfigSpec builds an avionics-shaped specification: two applications,
// three configurations (full, reduced, minimal), power-driven choice table,
// a repair path (hence transition-graph cycles), and one init-phase
// dependency.
func threeConfigSpec() *spec.ReconfigSpec {
	onePhase := func(id spec.SpecID, cpu int) spec.Specification {
		return spec.Specification{
			ID: id, Resources: spec.Resources{CPU: cpu, MemoryKB: cpu * 32, PowerMW: cpu * 100},
			HaltFrames: 1, PrepareFrames: 1, InitFrames: 1,
		}
	}
	return &spec.ReconfigSpec{
		Name: "statics-test",
		Apps: []spec.App{
			{ID: "ap", Specs: []spec.Specification{onePhase("full", 4), onePhase("alt-hold", 1)}},
			{ID: "fcs", Specs: []spec.Specification{onePhase("full", 3), onePhase("direct", 1)}},
			{ID: "power-monitor", Virtual: true, Specs: []spec.Specification{onePhase("monitor", 0)}},
		},
		Configs: []spec.Configuration{
			{ID: "full",
				Assignment: map[spec.AppID]spec.SpecID{"ap": "full", "fcs": "full"},
				Placement:  map[spec.AppID]spec.ProcID{"ap": "p1", "fcs": "p2"}},
			{ID: "reduced",
				Assignment: map[spec.AppID]spec.SpecID{"ap": "alt-hold", "fcs": "direct"},
				Placement:  map[spec.AppID]spec.ProcID{"ap": "p1", "fcs": "p1"}},
			{ID: "minimal", Safe: true,
				Assignment: map[spec.AppID]spec.SpecID{"ap": spec.SpecOff, "fcs": "direct"},
				Placement:  map[spec.AppID]spec.ProcID{"fcs": "p1"},
				LowPower:   []spec.ProcID{"p1"}},
		},
		Transitions: []spec.Transition{
			{From: "full", To: "reduced", MaxFrames: 6},
			{From: "reduced", To: "minimal", MaxFrames: 6},
			{From: "full", To: "minimal", MaxFrames: 8},
			{From: "minimal", To: "reduced", MaxFrames: 6},
			{From: "reduced", To: "full", MaxFrames: 6},
		},
		Choice: spec.ChoiceTable{
			"full":    {"power-full": "full", "power-reduced": "reduced", "power-battery": "minimal"},
			"reduced": {"power-full": "full", "power-reduced": "reduced", "power-battery": "minimal"},
			"minimal": {"power-full": "reduced", "power-reduced": "reduced", "power-battery": "minimal"},
		},
		Envs:        []spec.EnvState{"power-full", "power-reduced", "power-battery"},
		StartConfig: "full",
		StartEnv:    "power-full",
		Deps: []spec.Dependency{
			{Independent: "fcs", Dependent: "ap", Phase: spec.PhaseInit},
		},
		Platform: spec.Platform{Procs: []spec.Proc{
			{ID: "p1", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000},
				LowPowerCapacity: spec.Resources{CPU: 2, MemoryKB: 256, PowerMW: 250}},
			{ID: "p2", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}},
		}},
		FrameLen:    20 * time.Millisecond,
		DwellFrames: 5,
		Retarget:    spec.RetargetBuffer,
	}
}

func mustCheck(t *testing.T, rs *spec.ReconfigSpec) *Report {
	t.Helper()
	r, err := Check(rs)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return r
}

func obligation(t *testing.T, r *Report, id string) Obligation {
	t.Helper()
	for _, o := range r.Obligations {
		if o.ID == id {
			return o
		}
	}
	t.Fatalf("obligation %q not in report (have %v)", id, r.Failures())
	return Obligation{}
}

func TestValidSpecDischargesAllObligations(t *testing.T) {
	r := mustCheck(t, threeConfigSpec())
	if !r.AllDischarged() {
		t.Fatalf("failures: %v", r.Failures())
	}
	if len(r.Reachable) != 3 {
		t.Errorf("reachable = %v, want 3 configurations", r.Reachable)
	}
	if len(r.Timing) != 5 {
		t.Errorf("timing rows = %d, want 5", len(r.Timing))
	}
}

func TestCheckRejectsInvalidSpec(t *testing.T) {
	rs := threeConfigSpec()
	rs.Name = ""
	if _, err := Check(rs); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestCoveringTxnsMissingChoice(t *testing.T) {
	rs := threeConfigSpec()
	delete(rs.Choice["reduced"], "power-battery")
	r := mustCheck(t, rs)
	ob := obligation(t, r, "covering_txns")
	if ob.OK {
		t.Fatal("missing choice entry not detected")
	}
	if !strings.Contains(ob.Detail, "(reduced, power-battery)") {
		t.Errorf("detail = %q", ob.Detail)
	}
}

func TestCoveringTxnsIgnoresUnreachable(t *testing.T) {
	rs := threeConfigSpec()
	// Add an unreachable configuration with no choice row at all: the
	// obligation quantifies over reachable configurations only.
	rs.Configs = append(rs.Configs, spec.Configuration{
		ID:         "orphan",
		Assignment: map[spec.AppID]spec.SpecID{"ap": spec.SpecOff, "fcs": spec.SpecOff},
		Placement:  map[spec.AppID]spec.ProcID{},
	})
	r := mustCheck(t, rs)
	if ob := obligation(t, r, "covering_txns"); !ob.OK {
		t.Fatalf("unreachable configuration flagged: %s", ob.Detail)
	}
	for _, c := range r.Reachable {
		if c == "orphan" {
			t.Error("orphan reported reachable")
		}
	}
}

func TestDepAcyclicity(t *testing.T) {
	rs := threeConfigSpec()
	rs.Deps = append(rs.Deps, spec.Dependency{Independent: "ap", Dependent: "fcs", Phase: spec.PhaseInit})
	r := mustCheck(t, rs)
	if ob := obligation(t, r, "dep_acyclic:initialize"); ob.OK {
		t.Fatal("init-phase dependency cycle not detected")
	}
	// Other phases unaffected.
	if ob := obligation(t, r, "dep_acyclic:halt"); !ob.OK {
		t.Errorf("halt-phase obligation failed: %s", ob.Detail)
	}
	// A cyclic dependency graph also makes the timing obligation
	// un-dischargeable for transitions whose windows use that phase.
	foundBroken := false
	for _, tt := range r.Timing {
		if tt.RequiredFrames == -1 && !tt.OK {
			foundBroken = true
		}
	}
	if !foundBroken {
		t.Error("no timing row marked un-dischargeable under cyclic deps")
	}
}

func TestCrossPhaseDepsDoNotCycle(t *testing.T) {
	rs := threeConfigSpec()
	// a->b in init (existing fcs->ap) plus b->a in halt: no cycle within
	// any single phase.
	rs.Deps = append(rs.Deps, spec.Dependency{Independent: "ap", Dependent: "fcs", Phase: spec.PhaseHalt})
	r := mustCheck(t, rs)
	for _, phase := range []string{"halt", "prepare", "initialize"} {
		if ob := obligation(t, r, "dep_acyclic:"+phase); !ob.OK {
			t.Errorf("%s obligation failed: %s", phase, ob.Detail)
		}
	}
}

func TestResourceFeasibility(t *testing.T) {
	rs := threeConfigSpec()
	// Shrink p1 to CPU 3: the full configuration (ap/full = CPU 4 on p1)
	// no longer fits, while reduced (ap/alt-hold + fcs/direct = CPU 2)
	// still does.
	rs.Platform.Procs[0].Capacity = spec.Resources{CPU: 3, MemoryKB: 1024, PowerMW: 1000}
	r := mustCheck(t, rs)
	if ob := obligation(t, r, "resources:full"); ob.OK {
		t.Fatal("overloaded configuration not detected")
	}
	if ob := obligation(t, r, "resources:reduced"); !ob.OK {
		t.Errorf("reduced configuration flagged: %s", ob.Detail)
	}
}

func TestResourceFeasibilityLowPower(t *testing.T) {
	rs := threeConfigSpec()
	// Minimal runs fcs/direct (CPU 1) on p1 in low-power mode (CPU 2): it
	// fits. Shrinking the low-power capacity below the load must fail.
	rs.Platform.Procs[0].LowPowerCapacity = spec.Resources{}
	r := mustCheck(t, rs)
	if ob := obligation(t, r, "resources:minimal"); ob.OK {
		t.Fatal("low-power overload not detected")
	}
}

func TestTimingWindows(t *testing.T) {
	rs := threeConfigSpec()
	// full -> reduced: 1 trigger + halt 1 + prepare 1 + init chain
	// (fcs then ap) 2 = 5.
	w, err := RequiredWindow(rs, "full", "reduced")
	if err != nil {
		t.Fatal(err)
	}
	if w != 5 {
		t.Errorf("RequiredWindow(full, reduced) = %d, want 5", w)
	}
	// reduced -> minimal: ap is off in minimal, so the init dependency
	// drops out: 1 + 1 + 1 + 1 = 4.
	w, err = RequiredWindow(rs, "reduced", "minimal")
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Errorf("RequiredWindow(reduced, minimal) = %d, want 4", w)
	}
	if _, err := RequiredWindow(rs, "ghost", "full"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := RequiredWindow(rs, "full", "ghost"); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestTimingObligationFailure(t *testing.T) {
	rs := threeConfigSpec()
	rs.Transitions[0].MaxFrames = 4 // required is 5
	r := mustCheck(t, rs)
	if r.AllDischarged() {
		t.Fatal("undersized bound not detected")
	}
	var row TransitionTiming
	for _, tt := range r.Timing {
		if tt.From == "full" && tt.To == "reduced" {
			row = tt
		}
	}
	if row.OK || row.RequiredFrames != 5 || row.DeclaredFrames != 4 {
		t.Errorf("timing row = %+v", row)
	}
	if fails := r.Failures(); len(fails) != 1 || fails[0] != "timing:full->reduced" {
		t.Errorf("Failures = %v", fails)
	}
}

func TestImmediateRetargetAddsWorstPrepare(t *testing.T) {
	rs := threeConfigSpec()
	rs.Retarget = spec.RetargetImmediate
	// Worst prepare over all configurations is 1, so windows grow by 1.
	w, err := RequiredWindow(rs, "full", "reduced")
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 {
		t.Errorf("immediate RequiredWindow = %d, want 6", w)
	}
}

func TestSelfTransitionObligationUnderImmediate(t *testing.T) {
	rs := threeConfigSpec()
	rs.Retarget = spec.RetargetImmediate
	r := mustCheck(t, rs)
	ob := obligation(t, r, "self_transitions")
	if ob.OK {
		t.Fatal("missing self-transitions not detected under immediate policy")
	}
	// Declare them all; obligation discharges.
	for _, c := range []spec.ConfigID{"full", "reduced", "minimal"} {
		rs.Transitions = append(rs.Transitions, spec.Transition{From: c, To: c, MaxFrames: 10})
	}
	r = mustCheck(t, rs)
	if ob := obligation(t, r, "self_transitions"); !ob.OK {
		t.Errorf("self transitions still failing: %s", ob.Detail)
	}
	// Buffer policy does not emit the obligation at all.
	rs.Retarget = spec.RetargetBuffer
	r = mustCheck(t, rs)
	for _, o := range r.Obligations {
		if o.ID == "self_transitions" {
			t.Error("self_transitions emitted under buffer policy")
		}
	}
}

func TestCycleDetectionAndDwellGuard(t *testing.T) {
	rs := threeConfigSpec()
	r := mustCheck(t, rs)
	if len(r.Cycles) == 0 {
		t.Fatal("no cycles found in graph with full<->reduced loop")
	}
	// full->reduced->full is a cycle; canonical form starts at "full".
	found := false
	for _, c := range r.Cycles {
		if len(c) == 3 && c[0] == "full" && c[1] == "reduced" && c[2] == "full" {
			found = true
		}
	}
	if !found {
		t.Errorf("cycles = %v, want full->reduced->full among them", r.Cycles)
	}
	if ob := obligation(t, r, "dwell_guard"); !ob.OK {
		t.Errorf("dwell guard failed despite DwellFrames=5: %s", ob.Detail)
	}

	rs.DwellFrames = 0
	r = mustCheck(t, rs)
	if ob := obligation(t, r, "dwell_guard"); ob.OK {
		t.Error("cycles with zero dwell not detected")
	}
}

func TestNoCyclesNoDwellNeeded(t *testing.T) {
	rs := threeConfigSpec()
	// Remove the repair paths: graph becomes a DAG.
	rs.Transitions = []spec.Transition{
		{From: "full", To: "reduced", MaxFrames: 6},
		{From: "reduced", To: "minimal", MaxFrames: 6},
		{From: "full", To: "minimal", MaxFrames: 8},
	}
	rs.Choice = spec.ChoiceTable{
		"full":    {"power-full": "full", "power-reduced": "reduced", "power-battery": "minimal"},
		"reduced": {"power-full": "reduced", "power-reduced": "reduced", "power-battery": "minimal"},
		"minimal": {"power-full": "minimal", "power-reduced": "minimal", "power-battery": "minimal"},
	}
	rs.DwellFrames = 0
	r := mustCheck(t, rs)
	if len(r.Cycles) != 0 {
		t.Errorf("cycles = %v, want none", r.Cycles)
	}
	if ob := obligation(t, r, "dwell_guard"); !ob.OK {
		t.Errorf("dwell guard failed on acyclic graph: %s", ob.Detail)
	}
}

func TestSafeReachability(t *testing.T) {
	rs := threeConfigSpec()
	// Cut every path from full to a safe configuration.
	rs.Transitions = []spec.Transition{
		{From: "reduced", To: "minimal", MaxFrames: 6},
		{From: "minimal", To: "reduced", MaxFrames: 6},
	}
	rs.Choice = spec.ChoiceTable{
		"full":    {"power-full": "full", "power-reduced": "full", "power-battery": "full"},
		"reduced": {"power-full": "reduced", "power-reduced": "reduced", "power-battery": "minimal"},
		"minimal": {"power-full": "reduced", "power-reduced": "reduced", "power-battery": "minimal"},
	}
	rs.DwellFrames = 5
	r := mustCheck(t, rs)
	ob := obligation(t, r, "safe_reachable")
	if ob.OK {
		t.Fatal("stranded configuration not detected")
	}
	if !strings.Contains(ob.Detail, "full") {
		t.Errorf("detail = %q", ob.Detail)
	}
}

func TestRestrictionAnalysis(t *testing.T) {
	r := mustCheck(t, threeConfigSpec())
	ra := r.Restriction
	// Longest simple chain ending at the safe configuration (minimal):
	// reduced -> full -> minimal = 6 + 8 = 14. (Chains are simple: a
	// chain revisiting a configuration is the cyclic-reconfiguration case
	// handled by the dwell guard, not by this bound.)
	if ra.LongestChainFrames != 14 {
		t.Errorf("LongestChainFrames = %d, want 14 (chain %v)", ra.LongestChainFrames, ra.LongestChain)
	}
	wantChain := []spec.ConfigID{"reduced", "full", "minimal"}
	if len(ra.LongestChain) != len(wantChain) {
		t.Fatalf("LongestChain = %v, want %v", ra.LongestChain, wantChain)
	}
	for i := range wantChain {
		if ra.LongestChain[i] != wantChain[i] {
			t.Fatalf("LongestChain = %v, want %v", ra.LongestChain, wantChain)
		}
	}
	// Interposed: max{T(full, minimal), T(reduced, minimal)} = 8.
	if ra.InterposedSafe != "minimal" || ra.InterposedBoundFrames != 8 {
		t.Errorf("interposed = %s/%d, want minimal/8", ra.InterposedSafe, ra.InterposedBoundFrames)
	}
	if ra.InterposedBoundFrames >= ra.LongestChainFrames != false {
		t.Errorf("interposition did not reduce the bound: %d vs %d",
			ra.InterposedBoundFrames, ra.LongestChainFrames)
	}
}

func TestInterposedBoundMissingTransition(t *testing.T) {
	rs := threeConfigSpec()
	// Remove full -> minimal: the bound becomes unavailable.
	var kept []spec.Transition
	for _, tr := range rs.Transitions {
		if !(tr.From == "full" && tr.To == "minimal") {
			kept = append(kept, tr)
		}
	}
	rs.Transitions = kept
	if _, ok := InterposedBound(rs, "minimal"); ok {
		t.Fatal("InterposedBound available despite missing transition")
	}
}

func TestInterposeTransform(t *testing.T) {
	rs := threeConfigSpec()
	out, err := Interpose(rs, "minimal")
	if err != nil {
		t.Fatal(err)
	}
	// full -> reduced (unsafe -> unsafe) is redirected to minimal.
	if got, _ := out.Choice.Choose("full", "power-reduced"); got != "minimal" {
		t.Errorf("Choose(full, power-reduced) = %s, want minimal", got)
	}
	// Identity entries and safe-involving entries stay.
	if got, _ := out.Choice.Choose("full", "power-full"); got != "full" {
		t.Errorf("identity entry rewritten: %s", got)
	}
	if got, _ := out.Choice.Choose("minimal", "power-full"); got != "reduced" {
		t.Errorf("safe-source entry rewritten: %s", got)
	}
	// The original is untouched.
	if got, _ := rs.Choice.Choose("full", "power-reduced"); got != "reduced" {
		t.Errorf("Interpose mutated its input: %s", got)
	}
	// The transformed spec still discharges coverage (full->minimal is
	// declared in the fixture).
	r, err := Check(out)
	if err != nil {
		t.Fatal(err)
	}
	if ob := obligation(t, r, "covering_txns"); !ob.OK {
		t.Errorf("interposed spec loses coverage: %s", ob.Detail)
	}

	if _, err := Interpose(rs, "ghost"); err == nil {
		t.Error("unknown safe config accepted")
	}
	if _, err := Interpose(rs, "full"); err == nil {
		t.Error("non-safe config accepted")
	}
}

func TestPhaseWindowEmptyConfiguration(t *testing.T) {
	rs := threeConfigSpec()
	rs.Configs = append(rs.Configs, spec.Configuration{
		ID:         "all-off",
		Safe:       true,
		Assignment: map[spec.AppID]spec.SpecID{"ap": spec.SpecOff, "fcs": spec.SpecOff},
		Placement:  map[spec.AppID]spec.ProcID{},
	})
	rs.Transitions = append(rs.Transitions, spec.Transition{From: "minimal", To: "all-off", MaxFrames: 6})
	// Window: 1 + halt(minimal)=1 + prepare(all-off)=1 + init(all-off)=1.
	w, err := RequiredWindow(rs, "minimal", "all-off")
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Errorf("RequiredWindow(minimal, all-off) = %d, want 4", w)
	}
}
