package statics_test

import (
	"fmt"

	"repro/internal/avionics"
	"repro/internal/statics"
)

// Check discharges the proof obligations of the avionics instantiation —
// the executable analog of type checking the instantiation against the
// abstract PVS architecture.
func ExampleCheck() {
	report, err := statics.Check(avionics.Spec())
	if err != nil {
		panic(err)
	}
	fmt.Println("all discharged:", report.AllDischarged())
	fmt.Println("longest chain to safety:", report.Restriction.LongestChainFrames, "frames")
	fmt.Println("interposed bound:", report.Restriction.InterposedBoundFrames, "frames")
	// Output:
	// all discharged: true
	// longest chain to safety: 20 frames
	// interposed bound: 10 frames
}
