package statics

import (
	"testing"

	"repro/internal/spec"
)

// heterogeneousSpec builds two apps with complementary phase durations:
// ap = (halt 3, prep 1, init 1), fcs = (halt 1, prep 3, init 1), no deps.
func heterogeneousSpec() *spec.ReconfigSpec {
	rs := threeConfigSpec()
	rs.Deps = nil
	for i := range rs.Apps {
		for j := range rs.Apps[i].Specs {
			sp := &rs.Apps[i].Specs[j]
			switch rs.Apps[i].ID {
			case "ap":
				sp.HaltFrames, sp.PrepareFrames, sp.InitFrames = 3, 1, 1
			case "fcs":
				sp.HaltFrames, sp.PrepareFrames, sp.InitFrames = 1, 3, 1
			}
		}
	}
	for i := range rs.Transitions {
		rs.Transitions[i].MaxFrames = 12
	}
	return rs
}

func TestCompressedScheduleShortensHeterogeneousWindows(t *testing.T) {
	rs := heterogeneousSpec()
	from, _ := rs.Config("full")
	to, _ := rs.Config("reduced")

	// Staged: 1 + max(3,1) + max(1,3) + max(1,1) = 8 total window.
	staged, err := RequiredWindow(rs, "full", "reduced")
	if err != nil {
		t.Fatal(err)
	}
	if staged != 8 {
		t.Fatalf("staged window = %d, want 8", staged)
	}

	sched, length, err := CompressedSchedule(rs, from, to)
	if err != nil {
		t.Fatal(err)
	}
	// Compressed: each app chains independently; both chains are 5
	// frames, so the protocol portion is 5 and the window 6.
	if length != 5 {
		t.Fatalf("compressed length = %d, want 5 (schedule %+v)", length, sched)
	}
	ap := sched["ap"]
	if ap.HaltStart != 0 || ap.HaltEnd != 2 || ap.PrepStart != 3 || ap.InitStart != 4 {
		t.Errorf("ap schedule = %+v", ap)
	}
	fcs := sched["fcs"]
	if fcs.HaltEnd != 0 || fcs.PrepStart != 1 || fcs.PrepEnd != 3 || fcs.InitStart != 4 {
		t.Errorf("fcs schedule = %+v", fcs)
	}

	rs.Compression = true
	compressed, err := RequiredWindow(rs, "full", "reduced")
	if err != nil {
		t.Fatal(err)
	}
	if compressed != 6 {
		t.Fatalf("compressed window = %d, want 6", compressed)
	}
}

func TestCompressedScheduleCrossPhaseGuard(t *testing.T) {
	// fcs -> ap init dependency: under compression, ap's PREPARE must
	// still wait for fcs to HALT (the section 6.1 guard), and ap's INIT
	// must wait for fcs's init.
	rs := heterogeneousSpec()
	rs.Deps = []spec.Dependency{{Independent: "fcs", Dependent: "ap", Phase: spec.PhaseInit}}
	from, _ := rs.Config("full")
	to, _ := rs.Config("reduced")
	sched, _, err := CompressedSchedule(rs, from, to)
	if err != nil {
		t.Fatal(err)
	}
	ap, fcs := sched["ap"], sched["fcs"]
	if ap.PrepStart <= fcs.HaltEnd {
		t.Errorf("guard violated: ap prepare %d <= fcs halt end %d", ap.PrepStart, fcs.HaltEnd)
	}
	if ap.InitStart <= fcs.InitEnd {
		t.Errorf("init dependency violated: ap init %d <= fcs init end %d", ap.InitStart, fcs.InitEnd)
	}
}

func TestCompressedScheduleSamePhaseDeps(t *testing.T) {
	rs := heterogeneousSpec()
	rs.Deps = []spec.Dependency{{Independent: "ap", Dependent: "fcs", Phase: spec.PhaseHalt}}
	from, _ := rs.Config("full")
	to, _ := rs.Config("reduced")
	sched, _, err := CompressedSchedule(rs, from, to)
	if err != nil {
		t.Fatal(err)
	}
	ap, fcs := sched["ap"], sched["fcs"]
	if fcs.HaltStart <= ap.HaltEnd {
		t.Errorf("halt dependency violated: fcs halt %d <= ap halt end %d", fcs.HaltStart, ap.HaltEnd)
	}
}

func TestCompressedScheduleNeverLongerThanStaged(t *testing.T) {
	// For the canonical fixture and all transitions, compression never
	// lengthens the window.
	rs := threeConfigSpec()
	for _, tr := range rs.Transitions {
		stagedLen, err := RequiredWindow(rs, tr.From, tr.To)
		if err != nil {
			t.Fatal(err)
		}
		from, _ := rs.Config(tr.From)
		to, _ := rs.Config(tr.To)
		_, compLen, err := CompressedSchedule(rs, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if 1+compLen > stagedLen {
			t.Errorf("%s->%s: compressed %d > staged %d", tr.From, tr.To, 1+compLen, stagedLen)
		}
	}
}
