package statics

import (
	"fmt"
	"sort"

	"repro/internal/det"
	"repro/internal/spec"
)

// AppSchedule is one application's compressed protocol schedule: inclusive
// frame offsets within the reconfiguration window, where offset 0 is the
// first frame after the trigger. A start of -1 means the application does
// not participate in that phase.
type AppSchedule struct {
	HaltStart, HaltEnd int
	PrepStart, PrepEnd int
	InitStart, InitEnd int
}

// CompressedSchedule computes the section 6.3 relaxed protocol schedule for
// the transition from -> to: no global phase barriers; each application
// chains halt, prepare, and initialize as early as its constraints allow:
//
//   - same-phase dependencies order starts within each phase,
//   - an application's prepare follows its own halt, and
//   - the section 6.1 guard: every independent the application waits on (in
//     any phase) must have halted before the application's prepare begins.
//
// The returned length is the window's protocol portion in frames (the full
// window adds one trigger frame). Both configurations' dependency graphs
// must be acyclic per phase, which the dep_acyclic obligations guarantee.
func CompressedSchedule(rs *spec.ReconfigSpec, from, to *spec.Configuration) (map[spec.AppID]AppSchedule, int, error) {
	haltW, err := phaseWeights(rs, from, spec.PhaseHalt)
	if err != nil {
		return nil, 0, err
	}
	prepW, err := phaseWeights(rs, to, spec.PhasePrepare)
	if err != nil {
		return nil, 0, err
	}
	initW, err := phaseWeights(rs, to, spec.PhaseInit)
	if err != nil {
		return nil, 0, err
	}

	out := make(map[spec.AppID]AppSchedule)
	for _, a := range rs.Apps {
		out[a.ID] = AppSchedule{
			HaltStart: -1, HaltEnd: -1,
			PrepStart: -1, PrepEnd: -1,
			InitStart: -1, InitEnd: -1,
		}
	}

	// Halt phase: starts at offset 0 subject to halt-phase dependencies.
	haltOrder, err := topoOrder(haltW, rs.DepsForPhase(spec.PhaseHalt))
	if err != nil {
		return nil, 0, err
	}
	for _, id := range haltOrder {
		start := 0
		for _, d := range rs.DepsForPhase(spec.PhaseHalt) {
			if d.Dependent != id {
				continue
			}
			if indep := out[d.Independent]; indep.HaltEnd >= 0 && indep.HaltEnd+1 > start {
				start = indep.HaltEnd + 1
			}
		}
		s := out[id]
		s.HaltStart = start
		s.HaltEnd = start + haltW[id] - 1
		out[id] = s
	}

	// Prepare phase: after the app's own halt, after every same-phase
	// independent's prepare, and after every (any-phase) independent's
	// halt — the section 6.1 guard.
	prepOrder, err := topoOrder(prepW, rs.DepsForPhase(spec.PhasePrepare))
	if err != nil {
		return nil, 0, err
	}
	for _, id := range prepOrder {
		start := 0
		if own := out[id]; own.HaltEnd >= 0 {
			start = own.HaltEnd + 1
		}
		for _, d := range rs.Deps {
			if d.Dependent != id {
				continue
			}
			indep := out[d.Independent]
			if indep.HaltEnd >= 0 && indep.HaltEnd+1 > start {
				start = indep.HaltEnd + 1
			}
			if d.Phase == spec.PhasePrepare && indep.PrepEnd >= 0 && indep.PrepEnd+1 > start {
				start = indep.PrepEnd + 1
			}
		}
		s := out[id]
		s.PrepStart = start
		s.PrepEnd = start + prepW[id] - 1
		out[id] = s
	}

	// Initialize phase: after the app's own prepare and every init-phase
	// independent's initialize.
	initOrder, err := topoOrder(initW, rs.DepsForPhase(spec.PhaseInit))
	if err != nil {
		return nil, 0, err
	}
	for _, id := range initOrder {
		start := 0
		if own := out[id]; own.PrepEnd >= 0 {
			start = own.PrepEnd + 1
		}
		for _, d := range rs.DepsForPhase(spec.PhaseInit) {
			if d.Dependent != id {
				continue
			}
			if indep := out[d.Independent]; indep.InitEnd >= 0 && indep.InitEnd+1 > start {
				start = indep.InitEnd + 1
			}
		}
		s := out[id]
		s.InitStart = start
		s.InitEnd = start + initW[id] - 1
		out[id] = s
	}

	length := 1 // even an empty transition spends one acknowledgement frame
	for _, id := range det.SortedKeys(out) {
		s := out[id]
		for _, end := range []int{s.HaltEnd, s.PrepEnd, s.InitEnd} {
			if end+1 > length {
				length = end + 1
			}
		}
	}
	return out, length, nil
}

// topoOrder returns the participating applications in an order compatible
// with the given phase's dependencies.
func topoOrder(weights map[spec.AppID]int, deps []spec.Dependency) ([]spec.AppID, error) {
	indeg := make(map[spec.AppID]int, len(weights))
	adj := make(map[spec.AppID][]spec.AppID)
	// Constant inserts commute: no sort needed.
	for id := range weights {
		indeg[id] = 0
	}
	for _, d := range deps {
		if _, ok := weights[d.Independent]; !ok {
			continue
		}
		if _, ok := weights[d.Dependent]; !ok {
			continue
		}
		adj[d.Independent] = append(adj[d.Independent], d.Dependent)
		indeg[d.Dependent]++
	}
	var queue []spec.AppID
	for id, deg := range indeg {
		if deg == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	var order []spec.AppID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		for _, next := range adj[cur] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if len(order) != len(weights) {
		return nil, fmt.Errorf("statics: dependency graph is cyclic")
	}
	return order, nil
}
