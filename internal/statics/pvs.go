package statics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
)

// ExportPVS renders a reconfiguration specification as a PVS theory
// skeleton in the style of the paper's formal model (section 6): the
// application and specification-level types, the configuration table, the
// SCRAM table (valid transitions and the choose function), and the four
// reconfiguration properties as putative theorems over system traces.
//
// The output is a faithful, human-auditable rendering of the instantiation
// — the artifact the paper type checks against its abstract architecture —
// not a drop-in replacement for the authors' (unpublished) PVS sources; the
// executable obligations of Check are this repository's mechanical
// counterpart.
func ExportPVS(rs *spec.ReconfigSpec) string {
	var b strings.Builder
	name := pvsIdent(rs.Name)

	fmt.Fprintf(&b, "%% Generated from reconfiguration specification %q.\n", rs.Name)
	fmt.Fprintf(&b, "%% Frame length (cycle_time): %v; dwell: %d frames; retarget policy: %s.\n",
		rs.FrameLen, rs.DwellFrames, rs.Retarget)
	fmt.Fprintf(&b, "%s: THEORY\nBEGIN\n\n", name)

	// Application identifiers.
	var appNames []string
	for _, a := range rs.Apps {
		appNames = append(appNames, pvsIdent(string(a.ID)))
	}
	fmt.Fprintf(&b, "  app: TYPE = {%s}\n", strings.Join(appNames, ", "))

	// Specification levels, qualified per application.
	var specNames []string
	for _, a := range rs.Apps {
		for _, s := range a.Specs {
			specNames = append(specNames, pvsIdent(string(a.ID)+"_"+string(s.ID)))
		}
	}
	specNames = append(specNames, "off")
	fmt.Fprintf(&b, "  speclvl: TYPE = {%s}\n", strings.Join(specNames, ", "))

	// Service levels (configurations).
	var cfgNames []string
	for _, c := range rs.Configs {
		cfgNames = append(cfgNames, pvsIdent(string(c.ID)))
	}
	fmt.Fprintf(&b, "  svclvl: TYPE = {%s}\n", strings.Join(cfgNames, ", "))

	// Environment states.
	var envNames []string
	for _, e := range rs.Envs {
		envNames = append(envNames, pvsIdent(string(e)))
	}
	fmt.Fprintf(&b, "  env_state: TYPE = {%s}\n\n", strings.Join(envNames, ", "))

	fmt.Fprintf(&b, "  cycle: TYPE = nat\n")
	fmt.Fprintf(&b, "  reconf_status: TYPE = {normal, interrupted, halting, halted, preparing, prepared, initializing}\n\n")

	// The configuration table: f: Apps -> S per configuration.
	fmt.Fprintf(&b, "  %% Configuration table: the assignment f: Apps -> S of each configuration.\n")
	fmt.Fprintf(&b, "  assignment(c: svclvl, a: app): speclvl =\n")
	fmt.Fprintf(&b, "    CASES c OF\n")
	for i, c := range rs.Configs {
		fmt.Fprintf(&b, "      %s:\n        CASES a OF\n", pvsIdent(string(c.ID)))
		for _, a := range rs.Apps {
			val := "off"
			if a.Virtual {
				val = pvsIdent(string(a.ID) + "_" + string(a.Specs[0].ID))
			} else if s, ok := c.Assignment[a.ID]; ok && s != spec.SpecOff {
				val = pvsIdent(string(a.ID) + "_" + string(s))
			}
			fmt.Fprintf(&b, "          %s: %s,\n", pvsIdent(string(a.ID)), val)
		}
		trimTrailingComma(&b)
		fmt.Fprintf(&b, "\n        ENDCASES")
		if i < len(rs.Configs)-1 {
			fmt.Fprintf(&b, ",")
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "    ENDCASES\n\n")

	// Valid transitions and their bounds.
	fmt.Fprintf(&b, "  %% Statically permitted transitions with bounds T(i, j) in frames.\n")
	fmt.Fprintf(&b, "  txn_valid(i, j: svclvl): bool =\n")
	var txns []string
	for _, t := range rs.Transitions {
		txns = append(txns, fmt.Sprintf("(i = %s AND j = %s)", pvsIdent(string(t.From)), pvsIdent(string(t.To))))
	}
	sort.Strings(txns)
	fmt.Fprintf(&b, "    %s\n", strings.Join(txns, " OR\n    "))
	fmt.Fprintf(&b, "  T(i, j: svclvl): nat =\n    COND\n")
	for _, t := range rs.Transitions {
		fmt.Fprintf(&b, "      i = %s AND j = %s -> %d,\n",
			pvsIdent(string(t.From)), pvsIdent(string(t.To)), t.MaxFrames)
	}
	fmt.Fprintf(&b, "      ELSE -> 0\n    ENDCOND\n\n")

	// The choose function.
	fmt.Fprintf(&b, "  %% The SCRAM choice function: current configuration x environment -> target.\n")
	fmt.Fprintf(&b, "  choose(c: svclvl, e: env_state): svclvl =\n    COND\n")
	var rows []string
	for from, row := range rs.Choice {
		for env, to := range row {
			rows = append(rows, fmt.Sprintf("      c = %s AND e = %s -> %s,",
				pvsIdent(string(from)), pvsIdent(string(env)), pvsIdent(string(to))))
		}
	}
	sort.Strings(rows)
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\n", r)
	}
	fmt.Fprintf(&b, "      ELSE -> %s\n    ENDCOND\n\n", pvsIdent(string(rs.StartConfig)))

	// Trace model and the four properties, as stated in the paper.
	fmt.Fprintf(&b, `  %% Formal model of system traces (paper section 6.4).
  sys_state: TYPE = [# svclvl: svclvl, env: env_state,
                       reconf_st: [app -> reconf_status] #]
  sys_trace: TYPE = [cycle -> sys_state]
  reconfiguration: TYPE = [# start_c: cycle, end_c: cycle #]

  tr: VAR sys_trace
  r: VAR reconfiguration

  in_window(r)(c: cycle): bool = r`+"`"+`start_c <= c AND c <= r`+"`"+`end_c

  %% SP1: R begins when any application is no longer operating under Ci and
  %% ends when all applications are operating under Cj.
  SP1(tr, r): bool =
    (EXISTS (a: app): tr(r`+"`"+`start_c)`+"`"+`reconf_st(a) = interrupted) AND
    (FORALL (a: app): r`+"`"+`start_c > 0 IMPLIES tr(r`+"`"+`start_c - 1)`+"`"+`reconf_st(a) = normal) AND
    (FORALL (a: app): tr(r`+"`"+`end_c)`+"`"+`reconf_st(a) = normal) AND
    (FORALL (c: cycle, a: app):
       r`+"`"+`start_c < c AND c < r`+"`"+`end_c IMPLIES tr(c)`+"`"+`reconf_st(a) /= normal)

  %% SP2: Cj is the proper choice for the target at some point during R.
  SP2(tr, r): bool =
    EXISTS (c: cycle): in_window(r)(c) AND
      tr(r`+"`"+`end_c)`+"`"+`svclvl = choose(tr(r`+"`"+`start_c)`+"`"+`svclvl, tr(c)`+"`"+`env)

  %% SP3: R takes less than or equal to T(Ci, Cj) time units.
  SP3(tr, r): bool =
    r`+"`"+`end_c - r`+"`"+`start_c + 1 <= T(tr(r`+"`"+`start_c)`+"`"+`svclvl, tr(r`+"`"+`end_c)`+"`"+`svclvl)

  %% SP4: the precondition for Cj is true at the time R ends (discharged by
  %% the per-application precondition predicates of the instantiation).
  SP4(tr, r): bool = true  %% placeholder: see the executable checker

`)

	// The covering obligation (Figure 2).
	fmt.Fprintf(&b, "  %% covering_txns (Figure 2): a transition exists for every reachable\n")
	fmt.Fprintf(&b, "  %% (configuration, environment) pair.\n")
	fmt.Fprintf(&b, "  covering_txns: bool =\n")
	fmt.Fprintf(&b, "    FORALL (c: svclvl, e: env_state):\n")
	fmt.Fprintf(&b, "      choose(c, e) = c OR txn_valid(c, choose(c, e))\n\n")

	fmt.Fprintf(&b, "END %s\n", name)
	return b.String()
}

// pvsIdent converts an identifier into PVS-safe form.
func pvsIdent(s string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "x_" + out
	}
	return out
}

// trimTrailingComma removes a trailing ",\n" left by the last CASES arm.
func trimTrailingComma(b *strings.Builder) {
	s := b.String()
	s = strings.TrimSuffix(s, ",\n")
	b.Reset()
	b.WriteString(s)
}
