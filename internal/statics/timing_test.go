package statics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

func TestPhasePlanOffsets(t *testing.T) {
	rs := threeConfigSpec()
	// Multi-frame init for the fcs plus the existing init dependency
	// (fcs -> ap): fcs occupies offsets [0, 1], ap starts at 2.
	for i := range rs.Apps {
		if rs.Apps[i].ID != "fcs" {
			continue
		}
		for j := range rs.Apps[i].Specs {
			rs.Apps[i].Specs[j].InitFrames = 2
		}
	}
	cfg, _ := rs.Config("reduced")
	starts, durations, length, err := PhasePlan(rs, cfg, spec.PhaseInit)
	if err != nil {
		t.Fatal(err)
	}
	if length != 3 {
		t.Errorf("length = %d, want 3 (fcs 2 + ap 1)", length)
	}
	if starts["fcs"] != 0 || durations["fcs"] != 2 {
		t.Errorf("fcs start/dur = %d/%d, want 0/2", starts["fcs"], durations["fcs"])
	}
	if starts["ap"] != 2 || durations["ap"] != 1 {
		t.Errorf("ap start/dur = %d/%d, want 2/1", starts["ap"], durations["ap"])
	}
}

func TestPhasePlanParallelWithoutDeps(t *testing.T) {
	rs := threeConfigSpec()
	rs.Deps = nil
	cfg, _ := rs.Config("reduced")
	starts, _, length, err := PhasePlan(rs, cfg, spec.PhaseInit)
	if err != nil {
		t.Fatal(err)
	}
	if length != 1 {
		t.Errorf("length = %d, want 1 (parallel)", length)
	}
	for id, off := range starts {
		if off != 0 {
			t.Errorf("%s offset = %d, want 0", id, off)
		}
	}
}

func TestPhasePlanEmptyConfig(t *testing.T) {
	rs := threeConfigSpec()
	cfg := &spec.Configuration{
		ID:         "empty",
		Assignment: map[spec.AppID]spec.SpecID{"ap": spec.SpecOff, "fcs": spec.SpecOff},
	}
	starts, durations, length, err := PhasePlan(rs, cfg, spec.PhaseInit)
	if err != nil {
		t.Fatal(err)
	}
	if length != 1 || len(starts) != 0 || len(durations) != 0 {
		t.Errorf("empty plan = %v/%v/%d", starts, durations, length)
	}
}

func TestPhasePlanRejectsBadPhase(t *testing.T) {
	rs := threeConfigSpec()
	cfg, _ := rs.Config("full")
	if _, _, _, err := PhasePlan(rs, cfg, spec.PhaseNormal); err == nil {
		t.Error("normal phase accepted")
	}
}

func TestStartConsistentObligation(t *testing.T) {
	rs := threeConfigSpec()
	rs.Choice["full"]["power-full"] = "reduced" // boot would reconfigure
	r := mustCheck(t, rs)
	if ob := obligation(t, r, "start_consistent"); ob.OK {
		t.Fatal("inconsistent boot not detected")
	}
}

// TestInterposePreservesCoverageProperty: for random specifications, the
// interposition transform never removes choice-table coverage — every pair
// covered before is covered after (targets may change, entries never
// disappear), and safe-involving entries are untouched.
func TestInterposePreservesCoverageProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomInterposableSpec(rng)
		out, err := Interpose(rs, rs.SafeConfigs()[0])
		if err != nil {
			return false
		}
		for from, row := range rs.Choice {
			newRow, ok := out.Choice[from]
			if !ok || len(newRow) != len(row) {
				return false
			}
			for env := range row {
				if _, ok := newRow[env]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomInterposableSpec builds a small random spec with one safe config and
// a total choice table (validity beyond the choice structure is not needed
// for the Interpose property).
func randomInterposableSpec(rng *rand.Rand) *spec.ReconfigSpec {
	rs := threeConfigSpec()
	// Shuffle choice targets randomly while keeping the table total.
	configs := []spec.ConfigID{"full", "reduced", "minimal"}
	for _, from := range configs {
		for _, env := range rs.Envs {
			rs.Choice[from][env] = configs[rng.Intn(len(configs))]
		}
	}
	return rs
}

// TestRequiredWindowLowerBound: every window needs at least 4 frames —
// trigger, halt, prepare, initialize.
func TestRequiredWindowLowerBound(t *testing.T) {
	rs := threeConfigSpec()
	for _, from := range []spec.ConfigID{"full", "reduced", "minimal"} {
		for _, to := range []spec.ConfigID{"full", "reduced", "minimal"} {
			w, err := RequiredWindow(rs, from, to)
			if err != nil {
				t.Fatal(err)
			}
			if w < 4 {
				t.Errorf("RequiredWindow(%s, %s) = %d < 4", from, to, w)
			}
		}
	}
}
