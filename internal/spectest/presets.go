package spectest

import (
	"fmt"
	"sort"

	"repro/internal/envmon"
	"repro/internal/spec"
)

// Preset is a named, fully-wired specification configuration: everything a
// caller needs to construct a runnable system except the application
// implementations (which live a layer up, in internal/core). Campaigns, cmd
// tools, and the fleet spawn API resolve configurations by name through
// Lookup instead of re-importing constructors.
type Preset struct {
	// Name is the registry key, e.g. "threeconfig".
	Name string
	// Description is a one-line human summary.
	Description string
	// New constructs a fresh specification. Every call returns an
	// independent value: callers may mutate the result freely.
	New func() *spec.ReconfigSpec
	// Classifier abstracts raw environment factors into the
	// specification's environment states.
	Classifier envmon.Classifier

	// initialFactors seeds the environment; access through Factors so
	// every caller gets an independent copy.
	initialFactors map[envmon.Factor]string
}

// Factors returns a fresh copy of the preset's initial environment factors.
func (p Preset) Factors() map[envmon.Factor]string {
	out := make(map[envmon.Factor]string, len(p.initialFactors))
	for k, v := range p.initialFactors {
		out[k] = v
	}
	return out
}

// alternatorFactors is hoisted so the per-frame classifier allocates
// nothing.
var alternatorFactors = [...]envmon.Factor{"alt1", "alt2"}

// ThreeConfigClassifier maps alternator and processor health to the
// canonical specification's environment states: two healthy alternators give
// full service, one gives reduced, none leaves the battery. Loss of the
// FCS's processor (p2) forces at least reduced service — the applications
// must share p1.
func ThreeConfigClassifier(f map[envmon.Factor]string) spec.EnvState {
	ok := 0
	for _, alt := range alternatorFactors {
		if f[alt] == "ok" {
			ok++
		}
	}
	state := EnvBattery
	switch ok {
	case 2:
		state = EnvFull
	case 1:
		state = EnvReduced
	}
	if f[envmon.ProcHealth("p2")] == envmon.ProcFailed && state == EnvFull {
		state = EnvReduced
	}
	return state
}

// presets is the registry; keys match each Preset.Name.
var presets = map[string]Preset{
	"threeconfig": {
		Name:           "threeconfig",
		Description:    "canonical three-configuration avionics-shaped system (p1, p2)",
		New:            ThreeConfig,
		Classifier:     ThreeConfigClassifier,
		initialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
	},
	"threeconfig-spares": {
		Name:           "threeconfig-spares",
		Description:    "three-configuration system with two spare processors (p3, p4) for membership churn",
		New:            func() *spec.ReconfigSpec { return ThreeConfigWithSpares(2) },
		Classifier:     ThreeConfigClassifier,
		initialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
	},
	"threeconfig-spares4": {
		Name:           "threeconfig-spares4",
		Description:    "three-configuration system with four spare processors (p3..p6)",
		New:            func() *spec.ReconfigSpec { return ThreeConfigWithSpares(4) },
		Classifier:     ThreeConfigClassifier,
		initialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
	},
}

// Lookup resolves a preset by name. The error lists the registered names, so
// surfacing it verbatim gives CLI and API callers a usable message.
func Lookup(name string) (Preset, error) {
	p, ok := presets[name]
	if !ok {
		return Preset{}, fmt.Errorf("spectest: unknown preset %q (have %v)", name, Names())
	}
	return p, nil
}

// Names returns the registered preset names, sorted.
func Names() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
