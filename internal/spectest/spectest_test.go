package spectest

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
	"repro/internal/statics"
)

func TestThreeConfigDischargesObligations(t *testing.T) {
	report, err := statics.Check(ThreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.AllDischarged() {
		t.Fatalf("failures: %v", report.Failures())
	}
}

func TestThreeConfigFreshPerCall(t *testing.T) {
	a, b := ThreeConfig(), ThreeConfig()
	a.DwellFrames = 999
	if b.DwellFrames == 999 {
		t.Error("ThreeConfig shares state across calls")
	}
	a.Configs[0].Assignment[AppAP] = "mutated"
	if b.Configs[0].Assignment[AppAP] == "mutated" {
		t.Error("ThreeConfig shares assignment maps across calls")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	gen := func(seed int64) *spec.ReconfigSpec {
		return Random(rand.New(rand.NewSource(seed)), 4, 3, 3)
	}
	a, b := gen(7), gen(7)
	if a.Name != b.Name || len(a.Transitions) != len(b.Transitions) ||
		a.StartConfig != b.StartConfig || a.DwellFrames != b.DwellFrames {
		t.Fatalf("same seed differs: %+v vs %+v", a.Name, b.Name)
	}
	for i := range a.Transitions {
		if a.Transitions[i] != b.Transitions[i] {
			t.Fatalf("transition %d differs: %+v vs %+v", i, a.Transitions[i], b.Transitions[i])
		}
	}
	c := gen(8)
	same := len(a.Transitions) == len(c.Transitions) && a.StartConfig == c.StartConfig
	if same {
		for i := range a.Transitions {
			if a.Transitions[i] != c.Transitions[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical specifications")
	}
}

func TestRandomValidAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for apps := 1; apps <= 6; apps++ {
		for configs := 2; configs <= 5; configs++ {
			rs := Random(rng, apps, configs, 3)
			if err := rs.Validate(); err != nil {
				t.Fatalf("apps=%d configs=%d: %v", apps, configs, err)
			}
			report, err := statics.Check(rs)
			if err != nil {
				t.Fatalf("apps=%d configs=%d: %v", apps, configs, err)
			}
			if !report.AllDischarged() {
				t.Fatalf("apps=%d configs=%d: %v", apps, configs, report.Failures())
			}
		}
	}
}

func TestSizeTransitionsRespectsRequiredWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := Random(rng, 4, 4, 3)
	for _, tr := range rs.Transitions {
		required, err := statics.RequiredWindow(rs, tr.From, tr.To)
		if err != nil {
			t.Fatal(err)
		}
		if tr.MaxFrames < required {
			t.Errorf("T(%s,%s) = %d < required %d", tr.From, tr.To, tr.MaxFrames, required)
		}
		if tr.MaxFrames > required+3 {
			t.Errorf("T(%s,%s) = %d has more than 3 frames of slack over %d",
				tr.From, tr.To, tr.MaxFrames, required)
		}
	}
}

func TestRandomStartConsistent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rs := Random(rng, 3, 4, 3)
		got, ok := rs.Choice.Choose(rs.StartConfig, rs.StartEnv)
		if !ok || got != rs.StartConfig {
			t.Fatalf("seed %d: choose(start, startEnv) = %s, %v", seed, got, ok)
		}
	}
}
