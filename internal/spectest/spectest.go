// Package spectest provides canonical reconfiguration specifications used by
// tests and benchmarks across the repository: a small three-configuration
// system shaped like the paper's avionics example, plus generators for
// randomized specifications used in property-based campaigns.
package spectest

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/spec"
	"repro/internal/statics"
)

// Environment states of the canonical system: the three power states of the
// paper's electrical system model.
const (
	EnvFull    spec.EnvState = "power-full"
	EnvReduced spec.EnvState = "power-reduced"
	EnvBattery spec.EnvState = "power-battery"
)

// Canonical application and configuration identifiers.
const (
	AppAP      spec.AppID = "autopilot"
	AppFCS     spec.AppID = "fcs"
	AppMonitor spec.AppID = "power-monitor"

	CfgFull    spec.ConfigID = "full"
	CfgReduced spec.ConfigID = "reduced"
	CfgMinimal spec.ConfigID = "minimal"
)

// ThreeConfig returns the canonical specification: an autopilot and a flight
// control system across Full/Reduced/Minimal service configurations driven
// by electrical power state, with a repair path, an init-phase dependency
// (the autopilot cannot resume until the FCS has initialized), and generous
// transition bounds.
func ThreeConfig() *spec.ReconfigSpec {
	mk := func(id spec.SpecID, cpu, halt, prep, init int) spec.Specification {
		return spec.Specification{
			ID:            id,
			Resources:     spec.Resources{CPU: cpu, MemoryKB: cpu * 64, PowerMW: cpu * 100},
			HaltFrames:    halt,
			PrepareFrames: prep,
			InitFrames:    init,
		}
	}
	return &spec.ReconfigSpec{
		Name: "uav-test",
		Apps: []spec.App{
			{ID: AppAP, Description: "autopilot", Specs: []spec.Specification{
				mk("ap-full", 4, 1, 1, 1),
				mk("ap-alt-hold", 1, 1, 1, 1),
			}},
			{ID: AppFCS, Description: "flight control system", Specs: []spec.Specification{
				mk("fcs-full", 3, 1, 1, 1),
				mk("fcs-direct", 1, 1, 1, 1),
			}},
			{ID: AppMonitor, Description: "electrical power monitor", Virtual: true,
				Specs: []spec.Specification{mk("monitor", 0, 1, 1, 1)}},
		},
		Configs: []spec.Configuration{
			{ID: CfgFull, Description: "full service",
				Assignment: map[spec.AppID]spec.SpecID{AppAP: "ap-full", AppFCS: "fcs-full"},
				Placement:  map[spec.AppID]spec.ProcID{AppAP: "p1", AppFCS: "p2"}},
			{ID: CfgReduced, Description: "reduced service",
				Assignment: map[spec.AppID]spec.SpecID{AppAP: "ap-alt-hold", AppFCS: "fcs-direct"},
				Placement:  map[spec.AppID]spec.ProcID{AppAP: "p1", AppFCS: "p1"}},
			{ID: CfgMinimal, Description: "minimal service", Safe: true,
				Assignment: map[spec.AppID]spec.SpecID{AppAP: spec.SpecOff, AppFCS: "fcs-direct"},
				Placement:  map[spec.AppID]spec.ProcID{AppFCS: "p1"},
				LowPower:   []spec.ProcID{"p1"}},
		},
		Transitions: []spec.Transition{
			{From: CfgFull, To: CfgReduced, MaxFrames: 8},
			{From: CfgFull, To: CfgMinimal, MaxFrames: 8},
			{From: CfgReduced, To: CfgMinimal, MaxFrames: 8},
			{From: CfgReduced, To: CfgFull, MaxFrames: 8},
			{From: CfgMinimal, To: CfgReduced, MaxFrames: 8},
			// Self-transition bounds: never chosen in normal operation
			// (choice returning the current configuration triggers no
			// window), they bound windows that return to their own
			// source — an immediate retarget back to source, or a
			// mid-window processor loss chaining a follow-up transition
			// onto the completing one. Sized for two back-to-back
			// transitions sharing the trigger/completion frame.
			{From: CfgFull, To: CfgFull, MaxFrames: 16},
			{From: CfgReduced, To: CfgReduced, MaxFrames: 16},
			{From: CfgMinimal, To: CfgMinimal, MaxFrames: 16},
		},
		Choice: spec.ChoiceTable{
			CfgFull:    {EnvFull: CfgFull, EnvReduced: CfgReduced, EnvBattery: CfgMinimal},
			CfgReduced: {EnvFull: CfgFull, EnvReduced: CfgReduced, EnvBattery: CfgMinimal},
			CfgMinimal: {EnvFull: CfgReduced, EnvReduced: CfgReduced, EnvBattery: CfgMinimal},
		},
		Envs:        []spec.EnvState{EnvFull, EnvReduced, EnvBattery},
		StartConfig: CfgFull,
		StartEnv:    EnvFull,
		Deps: []spec.Dependency{
			{Independent: AppFCS, Dependent: AppAP, Phase: spec.PhaseInit},
		},
		Platform: spec.Platform{Procs: []spec.Proc{
			{ID: "p1", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000},
				LowPowerCapacity: spec.Resources{CPU: 2, MemoryKB: 256, PowerMW: 250}},
			{ID: "p2", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}},
		}},
		FrameLen:    20 * time.Millisecond,
		DwellFrames: 10,
		Retarget:    spec.RetargetBuffer,
	}
}

// ThreeConfigWithSpares returns ThreeConfig extended with n spare processors
// (p3, p4, ...) that no configuration places applications on: the standby
// pool the dynamic-membership layer grows into and drains from. Verification
// of the base obligations is unaffected — spares only add capacity.
func ThreeConfigWithSpares(n int) *spec.ReconfigSpec {
	rs := ThreeConfig()
	for i := 0; i < n; i++ {
		rs.Platform.Procs = append(rs.Platform.Procs, spec.Proc{
			ID:       spec.ProcID(fmt.Sprintf("p%d", 3+i)),
			Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000},
		})
	}
	return rs
}

// Random returns a randomized, structurally valid specification with
// nApps applications and nConfigs configurations driven by nEnvs environment
// states. The choice table is total by construction, every chosen transition
// is declared with a bound derived from the protocol's actual worst case
// plus random slack, and a random acyclic dependency set orders the phases —
// so a correct runtime must satisfy SP1-SP4 on any execution. The generator
// is deterministic for a given rng state.
func Random(rng *rand.Rand, nApps, nConfigs, nEnvs int) *spec.ReconfigSpec {
	rs := &spec.ReconfigSpec{
		Name:        fmt.Sprintf("random-%d-%d-%d", nApps, nConfigs, nEnvs),
		FrameLen:    10 * time.Millisecond,
		DwellFrames: 0,
		Retarget:    spec.RetargetBuffer,
	}
	// One generously-sized processor: randomized placements always fit.
	rs.Platform = spec.Platform{Procs: []spec.Proc{
		{ID: "p1", Capacity: spec.Resources{CPU: 1 << 20, MemoryKB: 1 << 20, PowerMW: 1 << 20}},
		{ID: "p2", Capacity: spec.Resources{CPU: 1 << 20, MemoryKB: 1 << 20, PowerMW: 1 << 20}},
	}}

	for e := 0; e < nEnvs; e++ {
		rs.Envs = append(rs.Envs, spec.EnvState(fmt.Sprintf("env-%d", e)))
	}

	for a := 0; a < nApps; a++ {
		app := spec.App{ID: spec.AppID(fmt.Sprintf("app-%d", a))}
		nSpecs := 1 + rng.Intn(3)
		for s := 0; s < nSpecs; s++ {
			app.Specs = append(app.Specs, spec.Specification{
				ID:            spec.SpecID(fmt.Sprintf("s%d", s)),
				Resources:     spec.Resources{CPU: 1 + rng.Intn(4)},
				HaltFrames:    1 + rng.Intn(2),
				PrepareFrames: 1 + rng.Intn(2),
				InitFrames:    1 + rng.Intn(2),
			})
		}
		rs.Apps = append(rs.Apps, app)
	}
	rs.Apps = append(rs.Apps, spec.App{
		ID: "monitor", Virtual: true,
		Specs: []spec.Specification{{ID: "monitor", HaltFrames: 1, PrepareFrames: 1, InitFrames: 1}},
	})

	// Random acyclic dependencies: only lower-index -> higher-index apps.
	for a := 0; a < nApps; a++ {
		for b := a + 1; b < nApps; b++ {
			if rng.Intn(4) == 0 {
				phase := []spec.Phase{spec.PhaseHalt, spec.PhasePrepare, spec.PhaseInit}[rng.Intn(3)]
				rs.Deps = append(rs.Deps, spec.Dependency{
					Independent: spec.AppID(fmt.Sprintf("app-%d", a)),
					Dependent:   spec.AppID(fmt.Sprintf("app-%d", b)),
					Phase:       phase,
				})
			}
		}
	}

	for c := 0; c < nConfigs; c++ {
		cfg := spec.Configuration{
			ID:         spec.ConfigID(fmt.Sprintf("cfg-%d", c)),
			Assignment: make(map[spec.AppID]spec.SpecID),
			Placement:  make(map[spec.AppID]spec.ProcID),
			Safe:       c == 0, // cfg-0 is the safe configuration
		}
		for a := 0; a < nApps; a++ {
			app := &rs.Apps[a]
			// Each app is off with probability 1/4, except in cfg-0
			// where at least app-0 runs, keeping the config
			// non-empty.
			if rng.Intn(4) == 0 && !(c == 0 && a == 0) {
				cfg.Assignment[app.ID] = spec.SpecOff
				continue
			}
			sp := app.Specs[rng.Intn(len(app.Specs))]
			cfg.Assignment[app.ID] = sp.ID
			cfg.Placement[app.ID] = rs.Platform.Procs[rng.Intn(len(rs.Platform.Procs))].ID
		}
		rs.Configs = append(rs.Configs, cfg)
	}
	rs.StartConfig = rs.Configs[rng.Intn(nConfigs)].ID
	rs.StartEnv = rs.Envs[0]

	// Total choice table; every non-identity choice becomes a declared
	// transition sized from the actual protocol worst case plus slack.
	rs.Choice = make(spec.ChoiceTable, nConfigs)
	declared := make(map[[2]spec.ConfigID]bool)
	for _, cfg := range rs.Configs {
		row := make(map[spec.EnvState]spec.ConfigID, nEnvs)
		for _, env := range rs.Envs {
			target := rs.Configs[rng.Intn(nConfigs)].ID
			row[env] = target
			if target != cfg.ID {
				declared[[2]spec.ConfigID{cfg.ID, target}] = true
			}
		}
		rs.Choice[cfg.ID] = row
	}
	// The system must boot consistently: the start configuration is the
	// choice for the start environment (the start_consistent obligation).
	rs.Choice[rs.StartConfig][rs.StartEnv] = rs.StartConfig
	// Ensure the safe configuration is reachable from everything.
	for _, cfg := range rs.Configs {
		if cfg.ID != rs.Configs[0].ID {
			declared[[2]spec.ConfigID{cfg.ID, rs.Configs[0].ID}] = true
		}
	}
	edges := make([][2]spec.ConfigID, 0, len(declared))
	for edge := range declared {
		edges = append(edges, edge)
	}
	// Map iteration order is random; sort so equal seeds give equal specs.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, edge := range edges {
		rs.Transitions = append(rs.Transitions, spec.Transition{
			From: edge[0], To: edge[1],
			// The bound is filled in by SizeTransitions below; use a
			// placeholder that always passes validation.
			MaxFrames: 1,
		})
	}
	// Cycles are almost certain in a random total table; a positive dwell
	// keeps the dwell_guard obligation discharged.
	rs.DwellFrames = 1 + rng.Intn(4)
	if err := SizeTransitions(rs, rng); err != nil {
		// The generator only produces acyclic dependency graphs, so
		// sizing cannot fail; a failure is a generator bug.
		panic(err)
	}
	return rs
}

// SizeTransitions sets every transition's bound to the protocol's computed
// worst-case window plus random slack in [0, 3], making the SP3 obligation
// dischargeable by construction.
func SizeTransitions(rs *spec.ReconfigSpec, rng *rand.Rand) error {
	for i := range rs.Transitions {
		t := &rs.Transitions[i]
		required, err := statics.RequiredWindow(rs, t.From, t.To)
		if err != nil {
			return fmt.Errorf("spectest: sizing %s->%s: %w", t.From, t.To, err)
		}
		t.MaxFrames = required + rng.Intn(4)
	}
	return nil
}
