package spectest

import (
	"testing"

	"repro/internal/envmon"
)

func TestLookupResolvesRegisteredPresets(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, p.Name)
		}
		rs := p.New()
		if rs == nil || len(rs.Configs) == 0 {
			t.Fatalf("preset %q: New returned an empty spec", name)
		}
		if p.Classifier == nil {
			t.Fatalf("preset %q: nil classifier", name)
		}
		if got := p.Classifier(p.Factors()); got != rs.StartEnv {
			t.Errorf("preset %q: initial factors classify to %q, want start env %q", name, got, rs.StartEnv)
		}
	}
}

func TestLookupUnknownPreset(t *testing.T) {
	if _, err := Lookup("no-such-preset"); err == nil {
		t.Fatal("Lookup of unknown preset succeeded")
	}
}

func TestPresetIsolation(t *testing.T) {
	p, err := Lookup("threeconfig")
	if err != nil {
		t.Fatal(err)
	}
	// Mutating one New() result must not leak into the next.
	a := p.New()
	a.Name = "mutated"
	a.Platform.Procs[0].ID = "zz"
	if b := p.New(); b.Name == "mutated" || b.Platform.Procs[0].ID == "zz" {
		t.Error("preset New shares state across calls")
	}
	// Same for the initial-factors map.
	f := p.Factors()
	f["alt1"] = "failed"
	if p.Factors()["alt1"] != "ok" {
		t.Error("preset Factors shares the map across calls")
	}
}

func TestThreeConfigClassifier(t *testing.T) {
	cases := []struct {
		alt1, alt2, p2 string
		want           string
	}{
		{"ok", "ok", envmon.ProcOK, string(EnvFull)},
		{"ok", "failed", envmon.ProcOK, string(EnvReduced)},
		{"failed", "failed", envmon.ProcOK, string(EnvBattery)},
		{"ok", "ok", envmon.ProcFailed, string(EnvReduced)},
	}
	for _, c := range cases {
		f := map[envmon.Factor]string{
			"alt1": c.alt1, "alt2": c.alt2,
			envmon.ProcHealth("p2"): c.p2,
		}
		if got := ThreeConfigClassifier(f); string(got) != c.want {
			t.Errorf("classify(alt1=%s alt2=%s p2=%s) = %s, want %s", c.alt1, c.alt2, c.p2, got, c.want)
		}
	}
}
