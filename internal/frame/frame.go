// Package frame implements the synchronous real-time frame structure the
// reconfiguration model assumes (section 6.1 of Strunk, Knight and Aiello,
// DSN 2005):
//
//   - every application operates with synchronous, cyclic processing and a
//     fixed real-time frame length,
//   - all applications share the same frame length and their frames start
//     together,
//   - each application completes one unit of work per frame, and
//   - results are committed to stable storage at the end of each frame.
//
// The Scheduler realizes this with one goroutine per task and a two-phase
// barrier per frame: a start broadcast, a completion join, then the commit
// hooks (the frame-end stable-storage commits) in deterministic order. In
// the paper's words, it is "an overarching function ... to coordinate and
// control application execution"; in a deployed system, timing analysis and
// synchronization primitives would take its place.
//
// A sequential mode (no per-task goroutines) exists for the scheduler
// ablation benchmark.
package frame

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrDuplicateTask reports an AddTask with an identifier already registered.
var ErrDuplicateTask = errors.New("frame: duplicate task")

// ErrUnknownTask reports a RemoveTask naming an unregistered task.
var ErrUnknownTask = errors.New("frame: unknown task")

// ErrClosed reports use of a scheduler after Close.
var ErrClosed = errors.New("frame: scheduler closed")

// Context carries per-frame timing information to each task.
type Context struct {
	// Frame is the frame number, starting at 0.
	Frame int64
	// Len is the fixed real-time frame length.
	Len time.Duration
}

// VirtualTime returns the virtual time at the start of the frame: frame
// number times frame length since the system epoch. All timing in the model
// is derived from frame counts, so simulations are deterministic regardless
// of wall-clock pacing.
func (c Context) VirtualTime() time.Duration {
	return time.Duration(c.Frame) * c.Len
}

// Task is one synchronized unit of cyclic work: an application runtime, the
// SCRAM kernel, an environment monitor, or the bus delivery step.
type Task interface {
	// TaskID returns a stable unique identifier.
	TaskID() string
	// Tick performs the task's single unit of work for the frame. An
	// error from Tick is a simulation-level fault (a bug or a deliberate
	// test probe), not a modeled component failure: modeled failures are
	// expressed through the failstop package, never as Tick errors.
	Tick(ctx Context) error
}

// CommitHook runs after every task has completed the frame; hooks run
// sequentially in registration order. The frame-end stable-storage commit
// is registered as a commit hook.
type CommitHook func(ctx Context) error

// Report is one frame's execution summary, passed to the observer after the
// commit hooks finish. All quantities are frame-synchronous counts — no
// wall-clock timings — so an observer feeding the telemetry layer stays
// deterministic.
type Report struct {
	// Frame is the frame number just executed.
	Frame int64
	// Tasks and TaskErrs count the tasks run and the tasks that returned
	// errors.
	Tasks, TaskErrs int
	// Hooks and HookErrs count the commit hooks run and the hooks that
	// returned errors.
	Hooks, HookErrs int
}

// Observer watches frame execution: BeginFrame before the start broadcast,
// EndFrame after the commit hooks. The telemetry layer registers one to
// stamp recorded events with the current frame and count barrier activity.
type Observer interface {
	BeginFrame(ctx Context)
	EndFrame(rep Report)
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithPacing makes Run sleep at the end of each frame until the frame's
// wall-clock deadline, turning the logical frame structure into (soft)
// real-time execution. Without pacing, frames run back to back as fast as
// the work allows.
func WithPacing() Option {
	return func(s *Scheduler) { s.pace = true }
}

// Sequential disables the per-task goroutines: tasks run one after another
// in registration order within the scheduler's goroutine. Used by the
// scheduler ablation benchmark.
func Sequential() Option {
	return func(s *Scheduler) { s.sequential = true }
}

// Stats summarizes scheduler execution.
type Stats struct {
	// Frames is the number of frames executed.
	Frames int64
	// Overruns counts paced frames whose work exceeded the frame length.
	Overruns int64
	// MaxFrameWork is the longest wall-clock time spent on any single
	// frame's tasks and hooks.
	MaxFrameWork time.Duration
}

// Scheduler drives a set of tasks through synchronized frames. Create one
// with NewScheduler; the zero value is not usable. Methods must be called
// from a single coordinating goroutine (the tasks themselves run
// concurrently inside Step).
type Scheduler struct {
	frameLen   time.Duration
	pace       bool
	sequential bool

	frame    int64
	epoch    time.Time // wall-clock epoch for pacing; set at first Step
	tasks    []*runner
	byID     map[string]*runner
	hooks    []CommitHook
	done     chan taskResult
	stats    Stats
	observer Observer
	closed   bool
	runners  sync.WaitGroup
}

// runner is the persistent goroutine wrapper around one task.
type runner struct {
	task  Task
	start chan Context
}

// taskResult is one task's per-frame completion report.
type taskResult struct {
	id  string
	err error
}

// NewScheduler returns a scheduler with the given frame length, which must
// be positive.
func NewScheduler(frameLen time.Duration, opts ...Option) (*Scheduler, error) {
	if frameLen <= 0 {
		return nil, fmt.Errorf("frame: frame length must be positive, got %v", frameLen)
	}
	s := &Scheduler{
		frameLen: frameLen,
		byID:     make(map[string]*runner),
		done:     make(chan taskResult),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// FrameLen returns the frame length.
func (s *Scheduler) FrameLen() time.Duration { return s.frameLen }

// Frame returns the number of the next frame to execute (equivalently, the
// count of frames executed so far).
func (s *Scheduler) Frame() int64 { return s.frame }

// Stats returns execution statistics.
func (s *Scheduler) Stats() Stats { return s.stats }

// AddTask registers a task. In concurrent mode the task's goroutine starts
// immediately and blocks until the next frame. Tasks may be added between
// frames but not during Step.
func (s *Scheduler) AddTask(t Task) error {
	if s.closed {
		return ErrClosed
	}
	id := t.TaskID()
	if _, dup := s.byID[id]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateTask, id)
	}
	r := &runner{task: t, start: make(chan Context)}
	s.tasks = append(s.tasks, r)
	s.byID[id] = r
	if !s.sequential {
		s.runners.Add(1)
		//lint:allow nofreegoroutine audited launch: one runner per task, lockstepped by start/done channels and joined via s.runners
		go func() {
			defer s.runners.Done()
			for ctx := range r.start {
				s.done <- taskResult{id: id, err: r.task.Tick(ctx)}
			}
		}()
	}
	return nil
}

// RemoveTask unregisters a task and stops its goroutine. Tasks may be
// removed between frames but not during Step.
func (s *Scheduler) RemoveTask(id string) error {
	if s.closed {
		return ErrClosed
	}
	r, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, id)
	}
	delete(s.byID, id)
	for i, t := range s.tasks {
		if t == r {
			s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
			break
		}
	}
	if !s.sequential {
		close(r.start)
	}
	return nil
}

// TaskIDs returns the registered task identifiers in registration order.
func (s *Scheduler) TaskIDs() []string {
	ids := make([]string, len(s.tasks))
	for i, r := range s.tasks {
		ids[i] = r.task.TaskID()
	}
	return ids
}

// AddCommitHook appends a frame-end hook. Hooks run sequentially in
// registration order after every task has completed the frame.
func (s *Scheduler) AddCommitHook(h CommitHook) {
	s.hooks = append(s.hooks, h)
}

// SetObserver installs the frame observer (nil removes it). Set it between
// frames, not during Step.
func (s *Scheduler) SetObserver(o Observer) {
	s.observer = o
}

// Step executes one frame: broadcast the frame context to every task, wait
// for all of them, then run the commit hooks. Task and hook errors are
// collected and joined; the frame counter advances regardless so that a
// failed probe does not desynchronize the system.
func (s *Scheduler) Step() error {
	if s.closed {
		return ErrClosed
	}
	if s.epoch.IsZero() {
		s.epoch = time.Now()
	}
	ctx := Context{Frame: s.frame, Len: s.frameLen}
	workStart := time.Now()
	if s.observer != nil {
		s.observer.BeginFrame(ctx)
	}
	rep := Report{Frame: ctx.Frame, Tasks: len(s.tasks), Hooks: len(s.hooks)}

	var errs []error
	if s.sequential {
		for _, r := range s.tasks {
			if err := r.task.Tick(ctx); err != nil {
				rep.TaskErrs++
				//lint:allow allocfree fail-stop halt path: a task error ends the mission, so this frame is outside the steady-state WCET budget
				errs = append(errs, fmt.Errorf("task %q frame %d: %w", r.task.TaskID(), ctx.Frame, err))
			}
		}
	} else {
		for _, r := range s.tasks {
			r.start <- ctx
		}
		for range s.tasks {
			res := <-s.done
			if res.err != nil {
				rep.TaskErrs++
				//lint:allow allocfree fail-stop halt path: a task error ends the mission, so this frame is outside the steady-state WCET budget
				errs = append(errs, fmt.Errorf("task %q frame %d: %w", res.id, ctx.Frame, res.err))
			}
		}
	}

	for _, h := range s.hooks {
		if err := h(ctx); err != nil {
			rep.HookErrs++
			//lint:allow allocfree fail-stop halt path: a hook error ends the mission, so this frame is outside the steady-state WCET budget
			errs = append(errs, fmt.Errorf("commit hook frame %d: %w", ctx.Frame, err))
		}
	}
	if s.observer != nil {
		s.observer.EndFrame(rep)
	}

	work := time.Since(workStart)
	if work > s.stats.MaxFrameWork {
		s.stats.MaxFrameWork = work
	}
	s.frame++
	s.stats.Frames++

	if s.pace {
		deadline := s.epoch.Add(time.Duration(s.frame) * s.frameLen)
		if now := time.Now(); now.Before(deadline) {
			time.Sleep(deadline.Sub(now))
		} else {
			s.stats.Overruns++
		}
	}
	return errors.Join(errs...)
}

// Run executes n consecutive frames, stopping at the first frame that
// reports an error.
func (s *Scheduler) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil executes frames until stop returns true (checked after each
// frame) or maxFrames have run. It reports whether stop fired.
func (s *Scheduler) RunUntil(maxFrames int, stop func() bool) (bool, error) {
	for i := 0; i < maxFrames; i++ {
		if err := s.Step(); err != nil {
			return false, err
		}
		if stop() {
			return true, nil
		}
	}
	return false, nil
}

// Close stops all task goroutines and marks the scheduler unusable. Close
// is idempotent.
func (s *Scheduler) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if !s.sequential {
		for _, r := range s.tasks {
			close(r.start)
		}
	}
	s.runners.Wait()
	s.tasks = nil
	s.byID = map[string]*runner{}
}
