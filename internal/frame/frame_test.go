package frame

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingTask records the frames it has seen.
type countingTask struct {
	id     string
	mu     sync.Mutex
	frames []int64
	err    error // returned from every Tick when non-nil
}

func (c *countingTask) TaskID() string { return c.id }

func (c *countingTask) Tick(ctx Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, ctx.Frame)
	return c.err
}

func (c *countingTask) seen() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, len(c.frames))
	copy(out, c.frames)
	return out
}

func newScheduler(t *testing.T, opts ...Option) *Scheduler {
	t.Helper()
	s, err := NewScheduler(time.Millisecond, opts...)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewSchedulerRejectsBadFrameLen(t *testing.T) {
	if _, err := NewScheduler(0); err == nil {
		t.Error("zero frame length accepted")
	}
	if _, err := NewScheduler(-time.Second); err == nil {
		t.Error("negative frame length accepted")
	}
}

func TestAllTasksSeeEveryFrameInOrder(t *testing.T) {
	s := newScheduler(t)
	tasks := make([]*countingTask, 4)
	for i := range tasks {
		tasks[i] = &countingTask{id: fmt.Sprintf("t%d", i)}
		if err := s.AddTask(tasks[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		got := task.seen()
		if len(got) != 10 {
			t.Fatalf("task %s saw %d frames, want 10", task.id, len(got))
		}
		for i, f := range got {
			if f != int64(i) {
				t.Fatalf("task %s frame %d out of order: got %d", task.id, i, f)
			}
		}
	}
	if s.Frame() != 10 {
		t.Errorf("Frame() = %d, want 10", s.Frame())
	}
	if s.Stats().Frames != 10 {
		t.Errorf("Stats().Frames = %d, want 10", s.Stats().Frames)
	}
}

func TestBarrierSynchrony(t *testing.T) {
	// No task may start frame k+1 before every task finished frame k.
	s := newScheduler(t)
	var inFrame atomic.Int64
	const tasks = 8
	for i := 0; i < tasks; i++ {
		id := fmt.Sprintf("t%d", i)
		if err := s.AddTask(taskFunc{id: id, fn: func(ctx Context) error {
			if n := inFrame.Add(1); n > tasks {
				return fmt.Errorf("%d concurrent ticks, want <= %d", n, tasks)
			}
			defer inFrame.Add(-1)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	barrierChecked := 0
	s.AddCommitHook(func(ctx Context) error {
		// At commit time every task must have finished the frame.
		if n := inFrame.Load(); n != 0 {
			return fmt.Errorf("commit hook ran with %d tasks still in frame", n)
		}
		barrierChecked++
		return nil
	})
	if err := s.Run(50); err != nil {
		t.Fatal(err)
	}
	if barrierChecked != 50 {
		t.Errorf("commit hook ran %d times, want 50", barrierChecked)
	}
}

// taskFunc adapts a function to Task.
type taskFunc struct {
	id string
	fn func(Context) error
}

func (t taskFunc) TaskID() string         { return t.id }
func (t taskFunc) Tick(ctx Context) error { return t.fn(ctx) }

func TestCommitHooksRunInOrder(t *testing.T) {
	s := newScheduler(t)
	var order []int
	for i := 0; i < 3; i++ {
		s.AddCommitHook(func(ctx Context) error {
			order = append(order, i)
			return nil
		})
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("hook order = %v, want [0 1 2]", order)
	}
}

func TestTaskErrorReportedAndFrameAdvances(t *testing.T) {
	s := newScheduler(t)
	boom := errors.New("boom")
	bad := &countingTask{id: "bad", err: boom}
	good := &countingTask{id: "good"}
	if err := s.AddTask(bad); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTask(good); err != nil {
		t.Fatal(err)
	}
	err := s.Step()
	if !errors.Is(err, boom) {
		t.Fatalf("Step err = %v, want wrapped boom", err)
	}
	if s.Frame() != 1 {
		t.Errorf("frame did not advance after task error: %d", s.Frame())
	}
	if len(good.seen()) != 1 {
		t.Error("good task was not ticked in the failing frame")
	}
	// Scheduler remains usable.
	bad.err = nil
	if err := s.Step(); err != nil {
		t.Fatalf("Step after recovery: %v", err)
	}
}

func TestCommitHookError(t *testing.T) {
	s := newScheduler(t)
	boom := errors.New("hook boom")
	s.AddCommitHook(func(ctx Context) error { return boom })
	if err := s.Step(); !errors.Is(err, boom) {
		t.Fatalf("Step err = %v, want hook boom", err)
	}
}

func TestDuplicateAndUnknownTask(t *testing.T) {
	s := newScheduler(t)
	if err := s.AddTask(&countingTask{id: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTask(&countingTask{id: "a"}); !errors.Is(err, ErrDuplicateTask) {
		t.Errorf("duplicate AddTask = %v, want ErrDuplicateTask", err)
	}
	if err := s.RemoveTask("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("RemoveTask(ghost) = %v, want ErrUnknownTask", err)
	}
}

func TestRemoveTaskStopsTicking(t *testing.T) {
	s := newScheduler(t)
	a := &countingTask{id: "a"}
	b := &countingTask{id: "b"}
	for _, task := range []*countingTask{a, b} {
		if err := s.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveTask("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if n := len(a.seen()); n != 3 {
		t.Errorf("removed task ticked %d times, want 3", n)
	}
	if n := len(b.seen()); n != 5 {
		t.Errorf("remaining task ticked %d times, want 5", n)
	}
	if ids := s.TaskIDs(); len(ids) != 1 || ids[0] != "b" {
		t.Errorf("TaskIDs = %v, want [b]", ids)
	}
}

func TestAddTaskMidRun(t *testing.T) {
	s := newScheduler(t)
	a := &countingTask{id: "a"}
	if err := s.AddTask(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	late := &countingTask{id: "late"}
	if err := s.AddTask(late); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	got := late.seen()
	if len(got) != 3 || got[0] != 2 {
		t.Errorf("late task saw frames %v, want [2 3 4]", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := newScheduler(t)
	fired, err := s.RunUntil(100, func() bool { return s.Frame() >= 7 })
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("RunUntil did not fire")
	}
	if s.Frame() != 7 {
		t.Errorf("Frame = %d, want 7", s.Frame())
	}
	fired, err = s.RunUntil(3, func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("RunUntil fired without condition")
	}
}

func TestSequentialModeMatchesConcurrent(t *testing.T) {
	for _, mode := range []string{"concurrent", "sequential"} {
		t.Run(mode, func(t *testing.T) {
			var opts []Option
			if mode == "sequential" {
				opts = append(opts, Sequential())
			}
			s := newScheduler(t, opts...)
			tasks := make([]*countingTask, 3)
			for i := range tasks {
				tasks[i] = &countingTask{id: fmt.Sprintf("t%d", i)}
				if err := s.AddTask(tasks[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Run(5); err != nil {
				t.Fatal(err)
			}
			for _, task := range tasks {
				if n := len(task.seen()); n != 5 {
					t.Errorf("%s: task %s ticked %d, want 5", mode, task.id, n)
				}
			}
		})
	}
}

func TestVirtualTime(t *testing.T) {
	ctx := Context{Frame: 50, Len: 20 * time.Millisecond}
	if got := ctx.VirtualTime(); got != time.Second {
		t.Errorf("VirtualTime = %v, want 1s", got)
	}
}

func TestPacedModeKeepsWallClock(t *testing.T) {
	s, err := NewScheduler(5*time.Millisecond, WithPacing())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	if err := s.Run(4); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("4 paced 5ms frames took %v, want >= ~20ms", elapsed)
	}
}

func TestPacedOverrunCounted(t *testing.T) {
	s, err := NewScheduler(time.Millisecond, WithPacing())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AddTask(taskFunc{id: "slow", fn: func(ctx Context) error {
		time.Sleep(3 * time.Millisecond)
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Overruns == 0 {
		t.Error("overruns not counted for slow task")
	}
	if s.Stats().MaxFrameWork < 3*time.Millisecond {
		t.Errorf("MaxFrameWork = %v, want >= 3ms", s.Stats().MaxFrameWork)
	}
}

func TestClosedSchedulerRefusesEverything(t *testing.T) {
	s := newScheduler(t)
	if err := s.AddTask(&countingTask{id: "a"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Step(); !errors.Is(err, ErrClosed) {
		t.Errorf("Step after close = %v", err)
	}
	if err := s.AddTask(&countingTask{id: "b"}); !errors.Is(err, ErrClosed) {
		t.Errorf("AddTask after close = %v", err)
	}
	if err := s.RemoveTask("a"); !errors.Is(err, ErrClosed) {
		t.Errorf("RemoveTask after close = %v", err)
	}
}
