package experiments

import (
	"fmt"
	"time"

	"repro/internal/avionics"
	"repro/internal/bus"
	"repro/internal/campaign"
	"repro/internal/spectest"
	"repro/internal/stable"
	"repro/internal/telemetry"
)

// flightRecorderLine renders a one-line digest of a recovered flight-recorder
// ring for an experiment's text report.
func flightRecorderLine(ring []telemetry.Event) string {
	if len(ring) == 0 {
		return "flight recorder: no ring recovered"
	}
	s := telemetry.Summarize(ring)
	complete := 0
	for _, r := range s.Reconfigs {
		if r.Complete() {
			complete++
		}
	}
	return fmt.Sprintf("flight recorder: %d events (frames %d-%d, %d evicted), %d reconfig windows (%d complete), %d signals, %d storage repairs, %d proc halts, %d takeovers",
		len(ring), s.FirstFrame, s.LastFrame, s.DroppedEvents,
		len(s.Reconfigs), complete, s.Signals, s.StorageRepairs, len(s.ProcHalts), s.Takeovers)
}

// CampaignOpts sizes a campaign-backed experiment: seeds per arm, frames
// per run, the base seed (run i of an arm uses BaseSeed+i), and the
// engine's worker pool. The result is identical for any Workers value.
type CampaignOpts struct {
	Seeds    int
	Frames   int
	BaseSeed int64
	Workers  int
}

// StorageFaultRow is one storage-fault campaign's outcome.
type StorageFaultRow struct {
	Seed            int64
	Mode            string
	Replicas        int
	Injected        stable.MediumStats
	Storage         stable.ReplStats
	StorageHalts    int
	Reconfigs       int
	Violations      int
	StagedHighWater int
	// Recorder is the flight-recorder summary assembled from the ring
	// recovered off the SCRAM host's stable storage after the campaign.
	Recorder telemetry.Summary
}

// StorageFaultResult is the S1 experiment output.
type StorageFaultResult struct {
	Rows            []StorageFaultRow
	TotalInjected   stable.MediumStats
	TotalRepairs    int64
	TotalHalts      int
	SilentWrongData int64
	TotalViolations int
	Text            string
	// LastRing is the black-box journal of the most interesting campaign:
	// the last defeat-mode run that halted a processor, or failing that the
	// last run with a ring at all. faultsim -ring-out exports it.
	LastRing []telemetry.Event `json:"-"`
	// LastRegistry is the same run's final metrics snapshot and
	// LastFrameLen the spec's frame length; faultsim -serve publishes
	// them alongside the ring as the live telemetry plane's snapshot.
	LastRegistry telemetry.Snapshot `json:"-"`
	LastFrameLen time.Duration      `json:"-"`
}

// StorageFaults runs the S1 experiment: the canonical system on hardened
// stable storage under sub-fail-stop media faults, in two modes per seed.
//
// "shielded" gives every store three replicas at the supplied fault rates:
// torn writes and bit rot must be absorbed by read repair and the scrub pass,
// with (almost) no processor halts. "defeat" strips the store to one replica
// and multiplies the bit-rot rate, so corruption eventually beats the
// redundancy: the store must then halt its processor — the fail-stop
// conversion — and the system must reconfigure around the loss.
//
// In both modes the silent-wrong-data oracle count and the SP1-SP4 violation
// count must be zero: faults may degrade service, never correctness.
//
// The runs fan out over the campaign engine's worker pool; Workers<=1 runs
// them sequentially. The result is identical for any worker count.
func StorageFaults(o CampaignOpts, faults stable.FaultProfile) (*StorageFaultResult, error) {
	res := &StorageFaultResult{}
	var w tableWriter
	w.row("Seed", "Mode", "Replicas", "Injected t/r/s", "Detected", "Repairs", "Halts", "SilentWrong", "Reconfigs", "SP violations")

	m := campaign.S1Matrix(o.Seeds, o.Frames, faults)
	m.BaseSeed = o.BaseSeed
	results := campaign.Engine{Workers: o.Workers}.Execute(m.Expand())

	for _, r := range results {
		if r.Err != "" {
			return nil, fmt.Errorf("seed %d %s: %s", r.Run.Seed, r.Run.Arm, r.Err)
		}
		m := r.Storage
		row := StorageFaultRow{
			Seed:            r.Run.Seed,
			Mode:            r.Run.Arm,
			Replicas:        r.Run.Replicas,
			Injected:        m.Injected,
			Storage:         m.Storage,
			StorageHalts:    m.StorageHalts,
			Reconfigs:       m.Reconfigs,
			Violations:      len(m.Violations),
			StagedHighWater: m.StagedHighWater,
			Recorder:        r.Recorder,
		}
		res.Rows = append(res.Rows, row)
		if len(m.Ring) > 0 && (res.LastRing == nil || (row.Mode == "defeat" && m.StorageHalts > 0)) {
			res.LastRing = m.Ring
			res.LastRegistry = m.Registry
			res.LastFrameLen = spectest.ThreeConfig().FrameLen
		}
		res.TotalInjected.Add(m.Injected)
		res.TotalRepairs += m.Storage.ReadRepairs + m.Storage.ScrubRepairs
		res.TotalHalts += m.StorageHalts
		res.SilentWrongData += m.Storage.SilentWrongData
		res.TotalViolations += len(m.Violations)
		w.row(fmt.Sprintf("%d", row.Seed), row.Mode, fmt.Sprintf("%d", row.Replicas),
			fmt.Sprintf("%d/%d/%d", m.Injected.TornWrites, m.Injected.BitFlips, m.Injected.StuckReads),
			fmt.Sprintf("%d", m.Storage.CorruptionsDetected),
			fmt.Sprintf("%d", m.Storage.ReadRepairs+m.Storage.ScrubRepairs),
			fmt.Sprintf("%d", m.StorageHalts),
			fmt.Sprintf("%d", m.Storage.SilentWrongData),
			fmt.Sprintf("%d", m.Reconfigs),
			fmt.Sprintf("%d", len(m.Violations)))
	}

	res.Text = fmt.Sprintf("S1: hardened stable storage under media faults (%d seeds x %d frames, rates torn=%.3f rot=%.3f stuck=%.3f)\n",
		o.Seeds, o.Frames, faults.TornWriteRate, faults.BitRotRate, faults.StuckReadRate) +
		w.String() +
		fmt.Sprintf("total: %d/%d/%d faults injected (torn/rot/stuck), %d repairs, %d fail-stop halts, %d silent wrong data, %d SP violations\n",
			res.TotalInjected.TornWrites, res.TotalInjected.BitFlips, res.TotalInjected.StuckReads,
			res.TotalRepairs, res.TotalHalts, res.SilentWrongData, res.TotalViolations) +
		flightRecorderLine(res.LastRing) + "\n"
	return res, nil
}

// BusFaultRow is one bus-fault campaign's outcome.
type BusFaultRow struct {
	Seed       int64
	Rates      bus.FaultRates
	Faults     bus.FaultStats
	Delivered  int64
	Reconfigs  int
	Violations int
	FinalAltFt float64
	// Recorder is the flight-recorder summary recovered after the campaign.
	Recorder telemetry.Summary
}

// BusFaultResult is the S2 experiment output.
type BusFaultResult struct {
	Rows            []BusFaultRow
	TotalViolations int
	Text            string
	// LastRing is the last campaign's recovered black-box journal;
	// faultsim -ring-out exports it.
	LastRing []telemetry.Event `json:"-"`
	// LastRegistry and LastFrameLen accompany LastRing for the live
	// telemetry plane, exactly as on StorageFaultResult.
	LastRegistry telemetry.Snapshot `json:"-"`
	LastFrameLen time.Duration      `json:"-"`
}

// BusFaults runs the S2 experiment: the section 7 avionics mission over a
// degraded bus, sweeping the supplied base rates from clean to 3x. The
// reconfiguration protocol travels through stable storage and the direct
// signal path, not the bus, so every sweep point must reconfigure on the
// scripted alternator failure with zero SP violations; what degrades is
// application data flow (and with it flight precision), not assurance.
// BusFaults fans its runs over the campaign engine's worker pool;
// Workers<=1 runs them sequentially. The result is identical for any
// worker count.
func BusFaults(o CampaignOpts, rates bus.FaultRates) (*BusFaultResult, error) {
	res := &BusFaultResult{}
	var w tableWriter
	w.row("Seed", "Drop", "Dup", "Delay", "Injected d/d/d", "Delivered", "Reconfigs", "SP violations", "Final alt (ft)")

	m := campaign.S2Matrix(o.Seeds, o.Frames, rates)
	m.BaseSeed = o.BaseSeed
	results := campaign.Engine{Workers: o.Workers}.Execute(m.Expand())

	for _, r := range results {
		if r.Err != "" {
			return nil, fmt.Errorf("seed %d %s: %s", r.Run.Seed, r.Run.Arm, r.Err)
		}
		m := r.Bus
		row := BusFaultRow{
			Seed:       r.Run.Seed,
			Rates:      r.Run.Rates,
			Faults:     m.Faults,
			Delivered:  m.Delivered,
			Reconfigs:  m.Reconfigs,
			Violations: len(m.Violations),
			FinalAltFt: m.FinalAltFt,
			Recorder:   r.Recorder,
		}
		res.Rows = append(res.Rows, row)
		if len(m.Ring) > 0 {
			res.LastRing = m.Ring
			res.LastRegistry = m.Registry
			res.LastFrameLen = avionics.FrameLength
		}
		res.TotalViolations += len(m.Violations)
		w.row(fmt.Sprintf("%d", row.Seed),
			fmt.Sprintf("%.2f", row.Rates.Drop), fmt.Sprintf("%.2f", row.Rates.Duplicate), fmt.Sprintf("%.2f", row.Rates.Delay),
			fmt.Sprintf("%d/%d/%d", m.Faults.Dropped, m.Faults.Duplicated, m.Faults.Delayed),
			fmt.Sprintf("%d", m.Delivered),
			fmt.Sprintf("%d", row.Reconfigs),
			fmt.Sprintf("%d", row.Violations),
			fmt.Sprintf("%.0f", row.FinalAltFt))
	}
	res.Text = fmt.Sprintf("S2: avionics mission over a degraded bus (%d seeds x %d frames, base rates drop=%.2f dup=%.2f delay=%.2f, multipliers 0-3)\n",
		o.Seeds, o.Frames, rates.Drop, rates.Duplicate, rates.Delay) +
		w.String() +
		fmt.Sprintf("total: %d SP violations\n", res.TotalViolations) +
		flightRecorderLine(res.LastRing) + "\n"
	return res, nil
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
