package experiments

import (
	"strings"
	"testing"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// The canonical protocol: 1 trigger + 1 halt + 1 prepare + 2 init
	// frames (FCS then autopilot) = 5-frame window.
	if res.Window.Frames() != 5 {
		t.Errorf("window = %d frames, want 5", res.Window.Frames())
	}
	for _, want := range []string{"signal", "trigger", "halt", "prepare", "initialize", "complete"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, res.Text)
		}
	}
}

func TestTable2NoViolations(t *testing.T) {
	res, err := Table2(6, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalViolations != 0 {
		t.Fatalf("violations reported:\n%s", res.Text)
	}
	if res.TotalReconfigs == 0 {
		t.Fatal("campaigns exercised no reconfigurations")
	}
	if len(res.Rows) != 6 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestFigure2MutantsFail(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDischarged() {
		t.Fatalf("published spec has failures: %v", res.Report.Failures())
	}
	if len(res.MutantReports) != 5 {
		t.Fatalf("mutants = %d, want 5", len(res.MutantReports))
	}
	for name, mr := range res.MutantReports {
		if mr.AllDischarged() {
			t.Errorf("mutant %q discharged all obligations", name)
		}
	}
}

func TestEquipmentShape(t *testing.T) {
	res, err := Equipment(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The paper's claim: reconfiguration always saves the
		// full/safe gap, and carries no excess while failures fit in
		// the gap.
		if r.Saved != 1 {
			t.Errorf("failures=%d: saved = %d, want 1", r.Params.MaxFailures, r.Saved)
		}
		if r.Params.MaxFailures <= 1 && r.ReconfigExcess != 0 {
			t.Errorf("failures=%d: reconfig excess = %d, want 0", r.Params.MaxFailures, r.ReconfigExcess)
		}
	}
}

func TestRestrictionBoundsHold(t *testing.T) {
	res, err := Restriction()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Shape from the paper: interposition lowers the bound whenever the
	// longest chain has >= 2 hops, and measurements never exceed bounds.
	if res.InterposedBoundFrames >= res.ChainBoundFrames {
		t.Errorf("interposed bound %d !< chain bound %d",
			res.InterposedBoundFrames, res.ChainBoundFrames)
	}
	if res.MeasuredChainMax > int64(res.ChainBoundFrames) {
		t.Errorf("measured chain %d exceeds bound %d", res.MeasuredChainMax, res.ChainBoundFrames)
	}
	if res.MeasuredWindowMax > int64(res.InterposedBoundFrames) {
		t.Errorf("measured window %d exceeds per-hop bound %d",
			res.MeasuredWindowMax, res.InterposedBoundFrames)
	}
	if res.MeasuredChainMax == 0 {
		t.Error("campaign produced no restriction at all")
	}
}

func TestCycleGuardBoundsRate(t *testing.T) {
	res, err := CycleGuard(1500, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Violations != 0 {
			t.Errorf("dwell=%d: %d violations", r.DwellFrames, r.Violations)
		}
	}
	// Monotone shape: more dwell, no more reconfigurations; and the
	// largest guard cuts the rate well below the no-guard rate.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Reconfigs > res.Rows[i-1].Reconfigs {
			t.Errorf("reconfigs not monotone: dwell=%d has %d > dwell=%d's %d",
				res.Rows[i].DwellFrames, res.Rows[i].Reconfigs,
				res.Rows[i-1].DwellFrames, res.Rows[i-1].Reconfigs)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Reconfigs == 0 {
		t.Fatal("churn produced no reconfigurations at minimal dwell")
	}
	if last.Reconfigs*2 >= first.Reconfigs {
		t.Errorf("dwell guard did not substantially bound the rate: %d -> %d",
			first.Reconfigs, last.Reconfigs)
	}
}

func TestScenarioMission(t *testing.T) {
	res, err := Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Full -> Reduced -> Minimal -> Reduced.
	if len(res.Reconfigs) != 3 {
		t.Fatalf("reconfigurations = %d, want 3:\n%s", len(res.Reconfigs), res.Text)
	}
	want := [][2]string{
		{"full-service", "reduced-service"},
		{"reduced-service", "minimal-service"},
		{"minimal-service", "reduced-service"},
	}
	for i, r := range res.Reconfigs {
		if string(r.From) != want[i][0] || string(r.To) != want[i][1] {
			t.Errorf("reconfig %d = %s -> %s, want %s -> %s", i, r.From, r.To, want[i][0], want[i][1])
		}
	}
	// The mission climbed toward 5300 ft before degradation.
	if res.FinalAlt < 5100 {
		t.Errorf("final altitude = %.0f ft, want climb progress", res.FinalAlt)
	}
}

func TestRestrictionInterpositionImprovesMeasurement(t *testing.T) {
	res, err := Restriction()
	if err != nil {
		t.Fatal(err)
	}
	if res.InterposedMeasuredChainMax >= res.MeasuredChainMax {
		t.Errorf("interposed chain %d !< direct chain %d",
			res.InterposedMeasuredChainMax, res.MeasuredChainMax)
	}
	if res.InterposedMeasuredChainMax > int64(res.InterposedBoundFrames) {
		t.Errorf("interposed measurement %d exceeds its bound %d",
			res.InterposedMeasuredChainMax, res.InterposedBoundFrames)
	}
}

func TestFailureSweepAllOffsetsAssured(t *testing.T) {
	res, err := FailureSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Final != "minimal-service" {
			t.Errorf("offset %d: final = %s", r.Offset, r.Final)
		}
		if r.Violations != 0 {
			t.Errorf("offset %d: %d violations", r.Offset, r.Violations)
		}
		if r.Offset == 0 && r.Windows != 1 {
			t.Errorf("same-frame failure: windows = %d, want 1 direct transition", r.Windows)
		}
		if r.Offset > 0 && r.Windows != 2 {
			t.Errorf("offset %d: windows = %d, want 2 chained", r.Offset, r.Windows)
		}
	}
}

func TestExhaustiveVerificationClean(t *testing.T) {
	res, err := ExhaustiveVerification(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Staged.Runs != 27 || res.Compressed.Runs != 27 {
		t.Fatalf("runs = %d/%d", res.Staged.Runs, res.Compressed.Runs)
	}
	if len(res.Staged.Violations)+len(res.Compressed.Violations) != 0 {
		t.Fatalf("violations:\n%s", res.Text)
	}
}
