// Package experiments regenerates the paper's tables and figures as
// executable artifacts. Each experiment returns structured results plus a
// formatted text table; cmd/faultsim prints them, the repository benchmarks
// measure them, and EXPERIMENTS.md records them against the paper.
//
// Index (see DESIGN.md for the full mapping):
//
//	T1  Table 1  — the SFTA phase protocol, rendered from a live run
//	T2  Table 2  — SP1-SP4 over randomized campaigns
//	T2x bounded-exhaustive verification of every env sequence to a depth
//	F2  Figure 2 — static proof obligations of the avionics instantiation
//	E1  §5.1     — equipment: masking vs reconfiguration
//	E2  §5.3     — restriction time: chain bound vs interposition vs measured
//	E3  §5.3     — cyclic reconfiguration and the dwell guard
//	E4  §7       — the avionics scenario end to end
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/avionics"
	"repro/internal/envmon"
	"repro/internal/inject"
	"repro/internal/masking"
	"repro/internal/scram"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/statics"
	"repro/internal/trace"
)

// tableWriter accumulates aligned text rows.
type tableWriter struct {
	b     strings.Builder
	width []int
	rows  [][]string
}

func (w *tableWriter) row(cells ...string) {
	for i, c := range cells {
		if i >= len(w.width) {
			w.width = append(w.width, 0)
		}
		if len(c) > w.width[i] {
			w.width[i] = len(c)
		}
	}
	w.rows = append(w.rows, cells)
}

func (w *tableWriter) String() string {
	for r, cells := range w.rows {
		for i, c := range cells {
			fmt.Fprintf(&w.b, "%-*s", w.width[i]+2, c)
		}
		w.b.WriteString("\n")
		if r == 0 {
			total := 0
			for _, wd := range w.width {
				total += wd + 2
			}
			w.b.WriteString(strings.Repeat("-", total) + "\n")
		}
	}
	return w.b.String()
}

// RenderTable1 renders a kernel's protocol event log in the shape of the
// paper's Table 1.
func RenderTable1(events []scram.Event) string {
	var w tableWriter
	w.row("Frame", "Event", "Configuration", "Detail")
	for _, e := range events {
		w.row(fmt.Sprintf("%d", e.Frame), string(e.Kind), string(e.Config), e.Detail)
	}
	return w.String()
}

// Table1Result is the T1 experiment output.
type Table1Result struct {
	// Events is the protocol log of the single reconfiguration.
	Events []scram.Event
	// Window is the reconfiguration found in the trace.
	Window trace.Reconfiguration
	// Violations are any SP violations (expected empty).
	Violations []trace.Violation
	// Text is the rendered table.
	Text string
}

// Table1 runs the canonical section 7.1 scenario — an alternator failure in
// full service — and renders the resulting protocol exchange.
func Table1() (*Table1Result, error) {
	sc, err := avionics.NewScenario(avionics.ScenarioOptions{
		Initial: avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
		Script: []envmon.Event{
			{Frame: 10, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
		},
		DwellFrames: -1,
	})
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	if err := sc.Sys.Run(30); err != nil {
		return nil, err
	}
	res := &Table1Result{
		Events:     sc.Sys.Kernel().Events(),
		Violations: sc.Sys.CheckProperties(),
	}
	if rcs := sc.Sys.Trace().Reconfigs(); len(rcs) == 1 {
		res.Window = rcs[0]
	} else {
		return nil, fmt.Errorf("experiments: expected exactly one reconfiguration, found %d", len(rcs))
	}
	res.Text = "T1: SFTA phases (paper Table 1) — alternator failure, Full -> Reduced\n" +
		RenderTable1(res.Events) +
		fmt.Sprintf("window [%d,%d] = %d frames (trigger + halt + prepare + init-chain)\n",
			res.Window.StartC, res.Window.EndC, res.Window.Frames())
	return res, nil
}

// Table2Row is one randomized campaign's property outcome.
type Table2Row struct {
	Seed       int64
	Apps       int
	Configs    int
	Reconfigs  int
	WindowMax  int64
	Violations int
}

// Table2Result is the T2 experiment output.
type Table2Result struct {
	Rows            []Table2Row
	TotalReconfigs  int
	TotalViolations int
	Text            string
}

// Table2 runs randomized-system campaigns and reports SP1-SP4 outcomes: the
// runtime-verification counterpart of the paper's mechanically checked
// proofs.
func Table2(seeds int, frames int) (*Table2Result, error) {
	res := &Table2Result{}
	var w tableWriter
	w.row("Seed", "Apps", "Configs", "Reconfigs", "MaxWindow", "SP violations")
	for seed := int64(0); seed < int64(seeds); seed++ {
		c := inject.RandomCampaign{
			Seed:      seed,
			Frames:    frames,
			Apps:      2 + int(seed%4),
			Configs:   2 + int(seed%3),
			Envs:      2 + int(seed%3),
			EnvEvents: frames / 20,
		}
		m, _, err := c.Run()
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Seed:       seed,
			Apps:       c.Apps,
			Configs:    c.Configs,
			Reconfigs:  m.Reconfigs,
			WindowMax:  m.WindowMax,
			Violations: len(m.Violations),
		}
		res.Rows = append(res.Rows, row)
		res.TotalReconfigs += m.Reconfigs
		res.TotalViolations += len(m.Violations)
		w.row(fmt.Sprintf("%d", seed), fmt.Sprintf("%d", row.Apps), fmt.Sprintf("%d", row.Configs),
			fmt.Sprintf("%d", row.Reconfigs), fmt.Sprintf("%d", row.WindowMax), fmt.Sprintf("%d", row.Violations))
	}
	res.Text = fmt.Sprintf("T2: SP1-SP4 over %d randomized systems x %d frames (paper Table 2)\n", seeds, frames) +
		w.String() +
		fmt.Sprintf("total: %d reconfigurations, %d violations\n", res.TotalReconfigs, res.TotalViolations)
	return res, nil
}

// Figure2Result is the F2 experiment output: the static obligations of the
// avionics instantiation, and the outcome for deliberately broken mutants.
type Figure2Result struct {
	Report        *statics.Report
	MutantReports map[string]*statics.Report
	Text          string
}

// Figure2 type checks the avionics instantiation against the architecture's
// obligations (the paper's generated TCCs) and shows that representative
// mutants fail.
func Figure2() (*Figure2Result, error) {
	res := &Figure2Result{MutantReports: make(map[string]*statics.Report)}
	report, err := statics.Check(avionics.Spec())
	if err != nil {
		return nil, err
	}
	res.Report = report

	mutants := map[string]func(*spec.ReconfigSpec){
		"missing-choice-entry (covering_txns)": func(rs *spec.ReconfigSpec) {
			delete(rs.Choice[avionics.CfgFull], avionics.EnvPowerBattery)
		},
		"cyclic-dependency (dep_acyclic)": func(rs *spec.ReconfigSpec) {
			rs.Deps = append(rs.Deps, spec.Dependency{
				Independent: avionics.AppAutopilot,
				Dependent:   avionics.AppFCS,
				Phase:       spec.PhaseInit,
			})
		},
		"undersized-bound (timing)": func(rs *spec.ReconfigSpec) {
			rs.Transitions[0].MaxFrames = 2
		},
		"overloaded-config (resources)": func(rs *spec.ReconfigSpec) {
			rs.Platform.Procs[0].Capacity = spec.Resources{CPU: 1, MemoryKB: 64, PowerMW: 50}
		},
		"no-dwell-with-cycles (dwell_guard)": func(rs *spec.ReconfigSpec) {
			rs.DwellFrames = 0
		},
	}
	var w tableWriter
	w.row("Specification", "Obligations", "Failures")
	w.row("avionics (as published)", fmt.Sprintf("%d", len(report.Obligations)+len(report.Timing)),
		strings.Join(report.Failures(), ", "))
	names := make([]string, 0, len(mutants))
	for name := range mutants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := avionics.Spec()
		mutants[name](rs)
		mr, err := statics.Check(rs)
		if err != nil {
			return nil, err
		}
		res.MutantReports[name] = mr
		w.row(name, fmt.Sprintf("%d", len(mr.Obligations)+len(mr.Timing)),
			strings.Join(mr.Failures(), ", "))
	}
	res.Text = "F2: static proof obligations (paper Figure 2 / section 7.2)\n" + w.String()
	return res, nil
}

// EquipmentResultSet is the E1 experiment output.
type EquipmentResultSet struct {
	Rows []masking.EquipmentResult
	Text string
}

// Equipment reproduces the section 5.1 resource argument for the avionics
// platform shape: full service needs 2 computers, safe (minimal) service
// needs 1.
func Equipment(maxFailures int) (*EquipmentResultSet, error) {
	rows, err := masking.EquipmentSweep(2, 1, maxFailures)
	if err != nil {
		return nil, err
	}
	var w tableWriter
	w.row("MaxFailures", "Masking total", "Reconfig total", "Saved", "Masking excess", "Reconfig excess")
	for _, r := range rows {
		w.row(
			fmt.Sprintf("%d", r.Params.MaxFailures),
			fmt.Sprintf("%d", r.MaskingTotal),
			fmt.Sprintf("%d", r.ReconfigTotal),
			fmt.Sprintf("%d", r.Saved),
			fmt.Sprintf("%d", r.MaskingExcess),
			fmt.Sprintf("%d", r.ReconfigExcess),
		)
	}
	return &EquipmentResultSet{
		Rows: rows,
		Text: "E1: equipment requirement, masking vs reconfiguration (section 5.1)\n" +
			"    full service = 2 processors, basic safe service = 1 processor\n" + w.String(),
	}, nil
}

// RestrictionResult is the E2 experiment output.
type RestrictionResult struct {
	// ChainBoundFrames is the analytic Σ T(i-1, i) over the longest chain.
	ChainBoundFrames int
	// Chain is the worst chain.
	Chain []spec.ConfigID
	// InterposedBoundFrames is the analytic max{T(i, s)} bound.
	InterposedBoundFrames int
	// MeasuredChainMax is the worst restriction chain observed in the
	// double-failure campaign.
	MeasuredChainMax int64
	// MeasuredWindowMax is the worst single window observed.
	MeasuredWindowMax int64
	// InterposedMeasuredChainMax is the worst chain with the
	// mechanically interposed choice table (statics.Interpose), where
	// the same double failure takes a single hop to safety.
	InterposedMeasuredChainMax int64
	// Violations from the measurement campaign (expected empty).
	Violations []trace.Violation
	Text       string
}

// Restriction reproduces the section 5.3 restriction-time analysis on the
// avionics specification: both analytic bounds, plus a measured worst case
// from a double-failure campaign (both alternators lost two frames apart,
// forcing the full -> reduced -> minimal chain).
func Restriction() (*RestrictionResult, error) {
	rs := avionics.Spec()
	rs.DwellFrames = 1
	report, err := statics.Check(rs)
	if err != nil {
		return nil, err
	}
	res := &RestrictionResult{
		ChainBoundFrames:      report.Restriction.LongestChainFrames,
		Chain:                 report.Restriction.LongestChain,
		InterposedBoundFrames: report.Restriction.InterposedBoundFrames,
	}

	script := []envmon.Event{
		{Frame: 10, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
		{Frame: 12, Factor: avionics.FactorAlt2, Value: avionics.AltFailed},
	}
	measure := func(sysSpec *spec.ReconfigSpec) (inject.Metrics, error) {
		sc, err := avionics.NewScenarioWithSpec(sysSpec, avionics.ScenarioOptions{
			Initial:     avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
			Script:      script,
			DwellFrames: 1,
		})
		if err != nil {
			return inject.Metrics{}, err
		}
		defer sc.Close()
		if err := sc.Sys.Run(120); err != nil {
			return inject.Metrics{}, err
		}
		return inject.Collect(sc.Sys.Trace(), sysSpec, int64(sysSpec.DwellFrames)+2), nil
	}

	m, err := measure(rs)
	if err != nil {
		return nil, err
	}
	res.MeasuredChainMax = m.ChainMax
	res.MeasuredWindowMax = m.WindowMax
	res.Violations = m.Violations

	interposed, err := statics.Interpose(avionics.Spec(), avionics.CfgMinimal)
	if err != nil {
		return nil, err
	}
	interposed.DwellFrames = 1
	mi, err := measure(interposed)
	if err != nil {
		return nil, err
	}
	res.InterposedMeasuredChainMax = mi.ChainMax
	res.Violations = append(res.Violations, mi.Violations...)

	var w tableWriter
	w.row("Quantity", "Frames", "Milliseconds")
	ms := func(frames int64) string {
		return fmt.Sprintf("%.0f", float64(frames)*rs.FrameLen.Seconds()*1000)
	}
	w.row("Longest-chain bound ΣT (analytic)", fmt.Sprintf("%d", res.ChainBoundFrames), ms(int64(res.ChainBoundFrames)))
	w.row("Interposed bound max{T(i,s)} (analytic)", fmt.Sprintf("%d", res.InterposedBoundFrames), ms(int64(res.InterposedBoundFrames)))
	w.row("Measured worst chain (double failure)", fmt.Sprintf("%d", res.MeasuredChainMax), ms(res.MeasuredChainMax))
	w.row("Measured worst single window", fmt.Sprintf("%d", res.MeasuredWindowMax), ms(res.MeasuredWindowMax))
	w.row("Measured worst chain, interposed table", fmt.Sprintf("%d", res.InterposedMeasuredChainMax), ms(res.InterposedMeasuredChainMax))
	res.Text = fmt.Sprintf("E2: worst-case service restriction (section 5.3); worst chain %v\n", res.Chain) + w.String()
	return res, nil
}

// CycleGuardRow is one churn campaign outcome.
type CycleGuardRow struct {
	DwellFrames int
	Reconfigs   int
	PerKFrames  float64
	Violations  int
}

// CycleGuardResult is the E3 experiment output.
type CycleGuardResult struct {
	Rows []CycleGuardRow
	Text string
}

// CycleGuard drives the avionics system through rapid alternator flapping
// under increasing dwell guards, showing the guard bounding the
// reconfiguration rate (section 5.3's cyclic-reconfiguration defense).
func CycleGuard(frames int, flapPeriod int) (*CycleGuardResult, error) {
	res := &CycleGuardResult{}
	var w tableWriter
	w.row("DwellFrames", "Reconfigs", "Reconfigs/1000 frames", "SP violations")
	for _, dwell := range []int{1, 5, 25, 100} {
		var script []envmon.Event
		val := avionics.AltFailed
		for f := 10; f < frames; f += flapPeriod {
			script = append(script, envmon.Event{Frame: int64(f), Factor: avionics.FactorAlt1, Value: val})
			if val == avionics.AltFailed {
				val = avionics.AltOK
			} else {
				val = avionics.AltFailed
			}
		}
		sc, err := avionics.NewScenario(avionics.ScenarioOptions{
			Initial:     avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
			Script:      script,
			DwellFrames: dwell,
		})
		if err != nil {
			return nil, err
		}
		if err := sc.Sys.Run(frames); err != nil {
			sc.Close()
			return nil, err
		}
		m := inject.Collect(sc.Sys.Trace(), avionics.Spec(), int64(dwell)+2)
		sc.Close()
		row := CycleGuardRow{
			DwellFrames: dwell,
			Reconfigs:   m.Reconfigs,
			PerKFrames:  float64(m.Reconfigs) * 1000 / float64(frames),
			Violations:  len(m.Violations),
		}
		res.Rows = append(res.Rows, row)
		w.row(fmt.Sprintf("%d", dwell), fmt.Sprintf("%d", row.Reconfigs),
			fmt.Sprintf("%.1f", row.PerKFrames), fmt.Sprintf("%d", row.Violations))
	}
	res.Text = fmt.Sprintf("E3: dwell guard vs environment churn (%d frames, flap every %d frames)\n",
		frames, flapPeriod) + w.String()
	return res, nil
}

// ScenarioResult is the E4 experiment output.
type ScenarioResult struct {
	Reconfigs  []trace.Reconfiguration
	Violations []trace.Violation
	FinalAlt   float64
	Text       string
}

// Scenario runs the full section 7 mission: climb, turn, first alternator
// loss (reduced service), second alternator loss (minimal service), repair
// (back to reduced).
func Scenario() (*ScenarioResult, error) {
	sc, err := avionics.NewScenario(avionics.ScenarioOptions{
		Initial:     avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
		Targets:     avionics.Targets{AltFt: 5300, HdgDeg: 45, Climb: true, Turn: true},
		DwellFrames: 10,
		Script: []envmon.Event{
			{Frame: 500, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
			{Frame: 1200, Factor: avionics.FactorAlt2, Value: avionics.AltFailed},
			{Frame: 1800, Factor: avionics.FactorAlt1, Value: avionics.AltOK},
		},
	})
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	if err := sc.Sys.Run(2400); err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		Reconfigs:  sc.Sys.Trace().Reconfigs(),
		Violations: sc.Sys.CheckProperties(),
		FinalAlt:   sc.Dyn.State().AltFt,
	}
	var w tableWriter
	w.row("Window", "From", "To", "Frames")
	for _, r := range res.Reconfigs {
		w.row(fmt.Sprintf("[%d,%d]", r.StartC, r.EndC), string(r.From), string(r.To),
			fmt.Sprintf("%d", r.Frames()))
	}
	res.Text = fmt.Sprintf("E4: section 7 mission (2400 frames = 48 s); final altitude %.0f ft; %d violations\n",
		res.FinalAlt, len(res.Violations)) + w.String()
	return res, nil
}

// FailureSweepRow is one offset's outcome in the E5 sweep.
type FailureSweepRow struct {
	// Offset is where the second failure lands relative to the first
	// window's trigger frame.
	Offset int64
	// Windows is the number of completed reconfigurations.
	Windows int
	// Final is the configuration reached.
	Final spec.ConfigID
	// TotalRestriction is the summed restriction frames.
	TotalRestriction int64
	// Violations counts SP violations (expected 0).
	Violations int
}

// FailureSweepResult is the E5 experiment output.
type FailureSweepResult struct {
	Rows []FailureSweepRow
	Text string
}

// FailureSweep is experiment E5 (section 7.1's "failures during
// reconfiguration"): the second alternator fails in each frame of the first
// reconfiguration window in turn — the trigger frame, the halt frame, the
// prepare frame, each initialize frame, and the completion frame. Under the
// buffer policy the second transition is deferred to a fresh window; in
// every case the system must end in minimal service with all properties
// intact.
func FailureSweep() (*FailureSweepResult, error) {
	res := &FailureSweepResult{}
	var w tableWriter
	w.row("2nd failure offset", "Windows", "Final configuration", "Restriction frames", "SP violations")
	for offset := int64(0); offset <= 5; offset++ {
		sc, err := avionics.NewScenario(avionics.ScenarioOptions{
			Initial: avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
			Script: []envmon.Event{
				{Frame: 20, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
				{Frame: 20 + offset, Factor: avionics.FactorAlt2, Value: avionics.AltFailed},
			},
			DwellFrames: 1,
		})
		if err != nil {
			return nil, err
		}
		if err := sc.Sys.Run(80); err != nil {
			sc.Close()
			return nil, err
		}
		tr := sc.Sys.Trace()
		row := FailureSweepRow{
			Offset:           offset,
			Windows:          len(tr.Reconfigs()),
			Final:            sc.Sys.Kernel().Current(),
			TotalRestriction: tr.RestrictionFrames(),
			Violations:       len(sc.Sys.CheckProperties()),
		}
		sc.Close()
		res.Rows = append(res.Rows, row)
		w.row(fmt.Sprintf("+%d", row.Offset), fmt.Sprintf("%d", row.Windows), string(row.Final),
			fmt.Sprintf("%d", row.TotalRestriction), fmt.Sprintf("%d", row.Violations))
	}
	res.Text = "E5: second failure in every protocol frame (section 7.1)\n" + w.String()
	return res, nil
}

// ExhaustiveResult is the bounded-exhaustive verification output.
type ExhaustiveResult struct {
	Staged     inject.ExhaustiveResult
	Compressed inject.ExhaustiveResult
	Text       string
}

// ExhaustiveVerification enumerates every environment sequence of the given
// depth over the canonical three-state system — under both the staged and
// the compressed protocol — and checks SP1-SP4 on every run: complete
// coverage of the behaviour space up to the bound, the executable
// counterpart of the paper's "proved over all traces".
func ExhaustiveVerification(depth int) (*ExhaustiveResult, error) {
	res := &ExhaustiveResult{}

	staged := spectest.ThreeConfig()
	staged.DwellFrames = 2
	var err error
	res.Staged, err = inject.Exhaustive(staged, depth, 12)
	if err != nil {
		return nil, err
	}

	compressed := spectest.ThreeConfig()
	compressed.Compression = true
	compressed.DwellFrames = 2
	if err := spectest.SizeTransitions(compressed, rand.New(rand.NewSource(1))); err != nil {
		return nil, err
	}
	res.Compressed, err = inject.Exhaustive(compressed, depth, 12)
	if err != nil {
		return nil, err
	}

	var w tableWriter
	w.row("Protocol", "Sequences", "System runs", "Reconfigurations", "SP violations")
	w.row("staged", fmt.Sprintf("3^%d", depth), fmt.Sprintf("%d", res.Staged.Runs),
		fmt.Sprintf("%d", res.Staged.Reconfigs), fmt.Sprintf("%d", len(res.Staged.Violations)))
	w.row("compressed", fmt.Sprintf("3^%d", depth), fmt.Sprintf("%d", res.Compressed.Runs),
		fmt.Sprintf("%d", res.Compressed.Reconfigs), fmt.Sprintf("%d", len(res.Compressed.Violations)))
	res.Text = fmt.Sprintf("T2x: bounded-exhaustive verification (every environment sequence of depth %d)\n", depth) +
		w.String()
	return res, nil
}
