// Package det provides determinism helpers for the frame-deterministic
// packages: map iteration in Go is deliberately randomized, so any loop
// whose effects can leak iteration order must walk keys in sorted order to
// keep system construction, planning, and validation replay-stable. The
// archlint framedet analyzer (internal/lint) enforces the discipline; this
// package makes complying one call.
package det

import "slices"

// Ordered matches the key types used across the specification: string-based
// identifiers and the numeric indexes of schedules.
type Ordered interface {
	~string | ~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64 | ~float64
}

// SortedKeys returns m's keys in ascending order, giving map iteration a
// deterministic, replay-stable sequence.
func SortedKeys[K Ordered, V any](m map[K]V) []K {
	return SortedKeysInto(nil, m)
}

// SortedKeysInto is SortedKeys with a caller-owned scratch buffer: keys is
// truncated and reused when its capacity suffices, so per-frame call sites
// can iterate maps in sorted order without a steady-state allocation. The
// returned slice must be assigned back over the scratch (append semantics).
func SortedKeysInto[K Ordered, V any](keys []K, m map[K]V) []K {
	keys = keys[:0]
	if cap(keys) < len(m) {
		//lint:allow allocfree amortized: grows to the map's high-water mark once, then every later frame reuses the scratch
		keys = make([]K, 0, len(m))
	}
	for k := range m {
		keys = append(keys, k)
	}
	// slices.Sort, unlike sort.Slice, allocates nothing: no closure, no
	// reflection-based swapper — it matters on the per-frame call sites.
	slices.Sort(keys)
	return keys
}
