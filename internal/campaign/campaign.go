// Package campaign fans independent fault-injection runs over a bounded
// worker pool and merges their results into a deterministic aggregate
// report.
//
// A campaign is a matrix: a set of arms (fault configurations) crossed with
// a set of seeds. Every run in the expanded matrix is an independent
// core.System execution — its randomness comes from a run-local RNG seeded
// by the run descriptor, never from the global math/rand state — so runs
// can execute in any order, on any number of workers, and the merged report
// is byte-identical regardless of scheduling. The engine writes each result
// into a slice slot indexed by the run's position in the expanded matrix;
// completion order never leaks into the report.
//
// The worker pool lives outside every frame-synchronous package: campaign
// goroutines each own a whole system (scheduler, pool, kernel) and never
// share one frame boundary, so the nofreegoroutine invariant of the
// fail-stop packages is untouched. The pool's launches carry audited
// //lint:allow annotations and the archlint nofreegoroutine analyzer is
// scoped to cover this package.
package campaign

import (
	"errors"
	"fmt"

	"repro/internal/bus"
	"repro/internal/inject"
	"repro/internal/stable"
)

// Kind selects the system a run drives.
type Kind string

const (
	// KindStorage runs the canonical three-configuration system on
	// hardened stable storage over faulty media (the S1 workload).
	KindStorage Kind = "storage"
	// KindBus flies the section 7 avionics mission over a degraded bus
	// (the S2 workload).
	KindBus Kind = "bus"
	// KindMembership runs the three-configuration system with spare
	// processors and dynamic membership under join/leave churn, member
	// evictions and membership-record corruption (the S3 workload).
	KindMembership Kind = "membership"
	// KindChaos runs a seeded fleet/chaos storm: a durable multi-tenant
	// host hit with crash-restart cycles, tenant panics, storage faults
	// and torn manifest writes, verified by the restart-equivalence
	// checker (the S4 workload). A chaos run is a real-time storm over a
	// whole fleet host: its equivalence verdict is deterministic per seed,
	// but its traffic tallies (injections landed, dedupe hits) depend on
	// how far tenants progressed when each strike fired, so they can vary
	// across machines — the report's invariant is Ok, not the counters.
	KindChaos Kind = "chaos"
)

// Order fixes how Matrix.Expand crosses seeds with arms. Both orders are
// deterministic; they only choose which axis varies fastest, i.e. how rows
// group in the report.
type Order string

const (
	// SeedMajor emits every arm for seed 0, then every arm for seed 1, ...
	// — paired comparison of arms under identical seeds (the S1 layout).
	SeedMajor Order = "seed-major"
	// ArmMajor emits every seed for arm 0, then every seed for arm 1, ...
	// — a sweep across arms (the S2 layout).
	ArmMajor Order = "arm-major"
)

// Arm is one fault configuration of the matrix. Exactly the fields for its
// Kind are meaningful: Replicas/EnvEvents/Faults for storage arms, Rates
// for bus arms, Churn/Evictions/CorruptRecords (plus EnvEvents) for
// membership arms.
type Arm struct {
	// Name labels the arm in reports; it must be unique within a matrix.
	Name string `json:"name"`
	// Kind selects the workload.
	Kind Kind `json:"kind"`
	// Replicas is the number of backing media per hardened store
	// (0 defaults to 3). Storage arms only.
	Replicas int `json:"replicas,omitempty"`
	// EnvEvents is the number of scripted alternator changes (0 defaults
	// to Frames/25). Storage and membership arms.
	EnvEvents int `json:"env_events,omitempty"`
	// Faults is the per-medium fault model. Storage arms only.
	Faults stable.FaultProfile `json:"faults,omitempty"`
	// Rates is the per-message bus fault model. Bus arms only.
	Rates bus.FaultRates `json:"rates,omitempty"`
	// Churn is the number of spare join/leave cycles. Membership arms
	// only.
	Churn int `json:"churn,omitempty"`
	// Evictions is the number of member fail/repair pairs. Membership
	// arms only.
	Evictions int `json:"evictions,omitempty"`
	// CorruptRecords is the number of committed membership-record
	// corruptions. Membership arms only.
	CorruptRecords int `json:"corrupt_records,omitempty"`
	// FleetTenants is the fleet size of a chaos storm (0 defaults to 8).
	// Chaos arms only.
	FleetTenants int `json:"fleet_tenants,omitempty"`
	// Crashes is the number of host crash-restart cycles per storm.
	// Chaos arms only.
	Crashes int `json:"crashes,omitempty"`
	// TenantPanics is the number of panic injections per storm (storage
	// faults are thrown at the same count). Chaos arms only.
	TenantPanics int `json:"tenant_panics,omitempty"`
	// TornWrites is the number of manifest records torn on one replica at
	// each crash point. Chaos arms only.
	TornWrites int `json:"torn_writes,omitempty"`
	// RetainFrames, when non-zero, runs the storm's tenants with a bounded
	// journal/trace retention window. Chaos arms only.
	RetainFrames int64 `json:"retain_frames,omitempty"`
}

// Matrix is a campaign configuration: arms crossed with seeds.
type Matrix struct {
	// Name labels the campaign in reports.
	Name string `json:"name,omitempty"`
	// Seeds is the number of seeds per arm.
	Seeds int `json:"seeds"`
	// BaseSeed offsets every run's seed: run i of an arm uses
	// BaseSeed+i. Arms share seeds, so arms compare under identical
	// randomness.
	BaseSeed int64 `json:"base_seed,omitempty"`
	// Frames is the length of every run.
	Frames int `json:"frames"`
	// Order fixes the expansion order (default SeedMajor).
	Order Order `json:"order,omitempty"`
	// Arms are the fault configurations.
	Arms []Arm `json:"arms"`
}

// Run is one cell of the expanded matrix: a fully resolved, independent
// system execution. The zero-based ID is the run's position in the
// expansion and its slot in the engine's result slice.
type Run struct {
	ID     int    `json:"id"`
	Arm    string `json:"arm"`
	Kind   Kind   `json:"kind"`
	Seed   int64  `json:"seed"`
	Frames int    `json:"frames"`

	Replicas  int                 `json:"replicas,omitempty"`
	EnvEvents int                 `json:"env_events,omitempty"`
	Faults    stable.FaultProfile `json:"faults,omitempty"`
	Rates     bus.FaultRates      `json:"rates,omitempty"`

	Churn          int `json:"churn,omitempty"`
	Evictions      int `json:"evictions,omitempty"`
	CorruptRecords int `json:"corrupt_records,omitempty"`

	FleetTenants int   `json:"fleet_tenants,omitempty"`
	Crashes      int   `json:"crashes,omitempty"`
	TenantPanics int   `json:"tenant_panics,omitempty"`
	TornWrites   int   `json:"torn_writes,omitempty"`
	RetainFrames int64 `json:"retain_frames,omitempty"`
}

// resolve turns an arm and a seed into a run descriptor (ID is assigned by
// Expand).
func (m Matrix) resolve(a Arm, seed int64) Run {
	r := Run{
		Arm:    a.Name,
		Kind:   a.Kind,
		Seed:   seed,
		Frames: m.Frames,
	}
	switch a.Kind {
	case KindStorage:
		r.Replicas = a.Replicas
		r.EnvEvents = a.EnvEvents
		if r.EnvEvents == 0 {
			r.EnvEvents = m.Frames / 25
		}
		r.Faults = a.Faults
	case KindMembership:
		r.EnvEvents = a.EnvEvents
		if r.EnvEvents == 0 {
			r.EnvEvents = m.Frames / 25
		}
		r.Churn = a.Churn
		r.Evictions = a.Evictions
		r.CorruptRecords = a.CorruptRecords
	case KindChaos:
		r.FleetTenants = a.FleetTenants
		if r.FleetTenants == 0 {
			r.FleetTenants = 8
		}
		r.Crashes = a.Crashes
		r.TenantPanics = a.TenantPanics
		r.TornWrites = a.TornWrites
		r.RetainFrames = a.RetainFrames
	default:
		r.Rates = a.Rates
	}
	return r
}

// Expand crosses arms with seeds in the matrix's order and returns the run
// list. Expansion is pure: the same matrix always yields the same runs in
// the same order, which is what pins the report layout independently of
// execution scheduling.
func (m Matrix) Expand() []Run {
	runs := make([]Run, 0, m.Seeds*len(m.Arms))
	add := func(a Arm, seed int64) {
		r := m.resolve(a, seed)
		r.ID = len(runs)
		runs = append(runs, r)
	}
	if m.Order == ArmMajor {
		for _, a := range m.Arms {
			for s := 0; s < m.Seeds; s++ {
				add(a, m.BaseSeed+int64(s))
			}
		}
		return runs
	}
	for s := 0; s < m.Seeds; s++ {
		for _, a := range m.Arms {
			add(a, m.BaseSeed+int64(s))
		}
	}
	return runs
}

// Validate rejects a defective matrix before any frames are spent. Beyond
// the matrix's own shape it builds each storage arm's core.Options and runs
// the typed Options.Validate, so a bad arm reports the same per-field error
// a NewSystem call would — but up front, for the whole matrix at once.
func (m Matrix) Validate() error {
	if m.Seeds < 1 {
		return fmt.Errorf("campaign: matrix needs at least one seed (got %d)", m.Seeds)
	}
	if m.Frames < 1 {
		return fmt.Errorf("campaign: matrix needs at least one frame (got %d)", m.Frames)
	}
	if len(m.Arms) == 0 {
		return errors.New("campaign: matrix has no arms")
	}
	if m.Order != "" && m.Order != SeedMajor && m.Order != ArmMajor {
		return fmt.Errorf("campaign: unknown order %q", m.Order)
	}
	seen := make(map[string]bool, len(m.Arms))
	for i, a := range m.Arms {
		if a.Name == "" {
			return fmt.Errorf("campaign: arm %d has no name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("campaign: duplicate arm name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case KindStorage:
			r := m.resolve(a, m.BaseSeed)
			opts := inject.StorageCampaign{
				Seed:      r.Seed,
				Frames:    r.Frames,
				EnvEvents: r.EnvEvents,
				Replicas:  r.Replicas,
				Faults:    r.Faults,
			}.Options()
			if err := opts.Validate(); err != nil {
				return fmt.Errorf("campaign: arm %q: %w", a.Name, err)
			}
			for _, rate := range []float64{a.Faults.TornWriteRate, a.Faults.BitRotRate, a.Faults.StuckReadRate} {
				if rate < 0 || rate > 1 {
					return fmt.Errorf("campaign: arm %q: fault rate %v outside [0,1]", a.Name, rate)
				}
			}
		case KindBus:
			for _, rate := range []float64{a.Rates.Drop, a.Rates.Duplicate, a.Rates.Delay} {
				if rate < 0 || rate > 1 {
					return fmt.Errorf("campaign: arm %q: bus fault rate %v outside [0,1]", a.Name, rate)
				}
			}
		case KindMembership:
			if a.Churn < 0 || a.Evictions < 0 || a.CorruptRecords < 0 {
				return fmt.Errorf("campaign: arm %q: negative membership event count", a.Name)
			}
			r := m.resolve(a, m.BaseSeed)
			opts := inject.MembershipCampaign{
				Seed:           r.Seed,
				Frames:         r.Frames,
				EnvEvents:      r.EnvEvents,
				Churn:          r.Churn,
				Evictions:      r.Evictions,
				CorruptRecords: r.CorruptRecords,
			}.Options()
			if err := opts.Validate(); err != nil {
				return fmt.Errorf("campaign: arm %q: %w", a.Name, err)
			}
		case KindChaos:
			if a.FleetTenants < 0 || a.Crashes < 0 || a.TenantPanics < 0 || a.TornWrites < 0 {
				return fmt.Errorf("campaign: arm %q: negative chaos event count", a.Name)
			}
			if m.Frames < 16 {
				return fmt.Errorf("campaign: arm %q: chaos storms need at least 16 frames (got %d)", a.Name, m.Frames)
			}
		default:
			return fmt.Errorf("campaign: arm %q has unknown kind %q", a.Name, a.Kind)
		}
	}
	return nil
}
