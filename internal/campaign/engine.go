package campaign

import (
	"fmt"
	"sync"

	"repro/internal/fleet/chaos"
	"repro/internal/inject"
	"repro/internal/telemetry"
)

// Result is one run's captured outcome. The common fields (violations,
// silent corruption, recovery-latency histograms, recovered flight-recorder
// ring) are populated for every kind; the kind-specific metrics ride along
// in Storage or Bus.
type Result struct {
	// Run echoes the descriptor that produced this result.
	Run Run `json:"run"`
	// Err is the run's failure, if the system could not be built or run.
	// A failed run contributes nothing else.
	Err string `json:"err,omitempty"`

	// Violations is the number of SP1-SP4 violations in the run's trace.
	Violations int `json:"sp_violations"`
	// SilentWrongData is the storage oracle's silent-corruption count;
	// it must be zero on every run.
	SilentWrongData int64 `json:"silent_wrong_data"`
	// StorageHalts counts processors halted by unrecoverable storage
	// faults (the fail-stop conversion firing).
	StorageHalts int `json:"storage_halts"`
	// Reconfigs is the number of completed reconfigurations.
	Reconfigs int `json:"reconfigs"`
	// WindowFrames is the recovery-latency histogram: completed
	// reconfiguration window lengths, from the run's telemetry registry.
	WindowFrames telemetry.HistogramSnapshot `json:"window_frames"`
	// SignalLatency is the trigger-to-start latency histogram from the
	// run's telemetry registry.
	SignalLatency telemetry.HistogramSnapshot `json:"signal_latency"`
	// Recorder summarizes the flight-recorder ring recovered from the
	// SCRAM host's committed stable storage after the run.
	Recorder telemetry.Summary `json:"recorder"`
	// SpanPhases is the run's causal-trace phase breakdown: closed span
	// frames summed by span name over every reconfiguration trace
	// assembled from the recovered ring.
	SpanPhases map[string]int64 `json:"span_phases,omitempty"`
	// Metrics is the run's full final registry snapshot. Like Ring it is
	// kept out of the JSON report (the histograms the report needs are
	// lifted into WindowFrames/SignalLatency); the live telemetry plane
	// publishes it whole.
	Metrics telemetry.Snapshot `json:"-"`
	// Traces holds the run's assembled reconfiguration waterfalls, in
	// ring order, for the aggregate report's slowest-trace digest. Kept
	// out of the per-run JSON like Ring.
	Traces []telemetry.TraceReport `json:"-"`
	// Ring is the recovered ring itself. It is kept out of the JSON
	// report (rings repeat what Recorder summarizes) but callers can
	// export the journal of an interesting run.
	Ring []telemetry.Event `json:"-"`

	// MembershipViolations is the number of membership-invariant
	// violations (epoch monotonicity, split brain, unsafe handoff) in the
	// run's membership log; it must be zero on every run.
	MembershipViolations int `json:"membership_violations,omitempty"`

	// Storage carries the full storage-campaign metrics (KindStorage).
	Storage *inject.StorageMetrics `json:"storage,omitempty"`
	// Bus carries the full bus-campaign metrics (KindBus).
	Bus *inject.BusMetrics `json:"bus,omitempty"`
	// Membership carries the full membership-campaign metrics
	// (KindMembership).
	Membership *inject.MembershipMetrics `json:"membership,omitempty"`
	// Chaos carries a chaos storm's outcome (KindChaos). A storm that is
	// not Ok — any equivalence mismatch, any unchecked tenant — also sets
	// Err, so a dirty storm fails the campaign like any failed run.
	Chaos *chaos.Outcome `json:"chaos,omitempty"`
}

// execute runs one cell of the matrix. It is pure with respect to the
// descriptor: equal runs give equal results, whatever goroutine calls it.
func (r Run) execute() Result {
	res := Result{Run: r}
	switch r.Kind {
	case KindStorage:
		m, _, err := inject.StorageCampaign{
			Seed:      r.Seed,
			Frames:    r.Frames,
			EnvEvents: r.EnvEvents,
			Replicas:  r.Replicas,
			Faults:    r.Faults,
		}.Run()
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Storage = &m
		res.Violations = len(m.Violations)
		res.SilentWrongData = m.Storage.SilentWrongData
		res.StorageHalts = m.StorageHalts
		res.Reconfigs = m.Reconfigs
		res.Ring = m.Ring
		res.fillTelemetry(m.Registry, m.Ring)
	case KindBus:
		m, _, err := inject.BusCampaign{
			Seed:   r.Seed,
			Frames: r.Frames,
			Rates:  r.Rates,
		}.Run()
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Bus = &m
		res.Violations = len(m.Violations)
		res.Reconfigs = m.Reconfigs
		res.Ring = m.Ring
		res.fillTelemetry(m.Registry, m.Ring)
	case KindMembership:
		m, _, err := inject.MembershipCampaign{
			Seed:           r.Seed,
			Frames:         r.Frames,
			EnvEvents:      r.EnvEvents,
			Churn:          r.Churn,
			Evictions:      r.Evictions,
			CorruptRecords: r.CorruptRecords,
		}.Run()
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Membership = &m
		res.Violations = len(m.Violations)
		res.MembershipViolations = len(m.MembershipViolations)
		res.Reconfigs = m.Reconfigs
		res.Ring = m.Ring
		res.fillTelemetry(m.Registry, m.Ring)
	case KindChaos:
		o := chaos.Run(chaos.Plan{
			Seed:          r.Seed,
			Tenants:       r.FleetTenants,
			Frames:        int64(r.Frames),
			Crashes:       r.Crashes,
			Panics:        r.TenantPanics,
			StorageFaults: r.TenantPanics,
			TornWrites:    r.TornWrites,
			RetainFrames:  r.RetainFrames,
		})
		res.Chaos = &o
		if !o.Ok() {
			msg := fmt.Sprintf("chaos storm not clean: %d/%d tenants checked", o.Checked, o.Tenants)
			if len(o.Mismatches) > 0 {
				msg += "; " + o.Mismatches[0]
			}
			if len(o.Errors) > 0 {
				msg += "; " + o.Errors[0]
			}
			res.Err = msg
		}
	default:
		res.Err = fmt.Sprintf("campaign: run %d has unknown kind %q", r.ID, r.Kind)
	}
	return res
}

// fillTelemetry lifts the recovery-latency histograms out of the run's
// registry snapshot, summarizes the recovered ring, and assembles the
// ring's causal traces into waterfalls and the per-phase breakdown. All
// of it is a pure function of the run's outputs, so it is identical for
// any worker count.
func (res *Result) fillTelemetry(reg telemetry.Snapshot, ring []telemetry.Event) {
	res.Metrics = reg
	res.WindowFrames = reg.Histograms["scram/window_frames"]
	res.SignalLatency = reg.Histograms["scram/signal_latency_frames"]
	res.Recorder = telemetry.Summarize(ring)
	for _, tv := range telemetry.AssembleTraces(ring) {
		if tv.ID == 0 {
			continue
		}
		res.Traces = append(res.Traces, telemetry.BuildTraceReport(tv))
		for name, frames := range tv.PhaseFrames() {
			if res.SpanPhases == nil {
				res.SpanPhases = make(map[string]int64)
			}
			res.SpanPhases[name] += frames
		}
	}
}

// Engine executes expanded runs over a bounded worker pool.
//
// Determinism: every run is independent and seeded by its descriptor, and
// each worker writes its result into the slot indexed by the run's ID. The
// returned slice is therefore identical — element for element — for any
// worker count and any completion order; only the Progress callback (a
// human-facing ticker) observes scheduling.
type Engine struct {
	// Workers bounds the number of concurrently executing runs. Values
	// below 1 (and 1 itself) execute sequentially on the caller's
	// goroutine, launching nothing.
	Workers int
	// Progress, when non-nil, is called after each run completes with
	// the number of finished runs, the total, and the finished result.
	// Calls are serialized but arrive in completion order, which is
	// scheduling-dependent; do not build reports from them.
	Progress func(done, total int, res Result)
}

// Execute runs every cell and returns the results indexed by run ID.
func (e Engine) Execute(runs []Run) []Result {
	results := make([]Result, len(runs))
	if e.Workers <= 1 {
		for i, r := range runs {
			results[i] = r.execute()
			if e.Progress != nil {
				e.Progress(i+1, len(runs), results[i])
			}
		}
		return results
	}

	workers := e.Workers
	if workers > len(runs) {
		workers = len(runs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes Progress and the done counter
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// The pool is the one sanctioned goroutine source in this
		// package: each worker owns entire systems (scheduler, pool,
		// kernel) end to end, shares no frame boundary with anything,
		// and is joined by wg.Wait before Execute returns.
		//lint:allow nofreegoroutine audited pool: workers run whole systems outside any frame boundary and are joined via wg.Wait before Execute returns
		go func() {
			defer wg.Done()
			for i := range jobs {
				res := runs[i].execute()
				results[i] = res
				if e.Progress != nil {
					mu.Lock()
					done++
					e.Progress(done, len(runs), res)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range runs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
