package campaign

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/bus"
	"repro/internal/stable"
)

// testProfile is a fault load heavy enough to exercise repair and (on the
// one-replica defeat arm) fail-stop conversion within a short run.
var testProfile = stable.FaultProfile{
	TornWriteRate: 0.025,
	BitRotRate:    0.05,
	StuckReadRate: 0.025,
}

func smallStorageMatrix() Matrix {
	return S1Matrix(2, 120, testProfile)
}

func TestExpandSeedMajor(t *testing.T) {
	runs := smallStorageMatrix().Expand()
	if len(runs) != 4 {
		t.Fatalf("expanded %d runs, want 4", len(runs))
	}
	want := []struct {
		arm  string
		seed int64
	}{{"shielded", 0}, {"defeat", 0}, {"shielded", 1}, {"defeat", 1}}
	for i, r := range runs {
		if r.ID != i {
			t.Errorf("run %d has ID %d", i, r.ID)
		}
		if r.Arm != want[i].arm || r.Seed != want[i].seed {
			t.Errorf("run %d = %s/%d, want %s/%d", i, r.Arm, r.Seed, want[i].arm, want[i].seed)
		}
		if r.EnvEvents != 120/25 {
			t.Errorf("run %d EnvEvents = %d, want default %d", i, r.EnvEvents, 120/25)
		}
	}
}

func TestExpandArmMajor(t *testing.T) {
	m := S2Matrix(2, 80, bus.FaultRates{Drop: 0.1})
	runs := m.Expand()
	if len(runs) != 8 {
		t.Fatalf("expanded %d runs, want 8", len(runs))
	}
	// Arm-major: both seeds of the clean sweep point come first.
	if runs[0].Arm != "x0" || runs[1].Arm != "x0" || runs[2].Arm != "x1" {
		t.Errorf("arm-major order broken: %s %s %s", runs[0].Arm, runs[1].Arm, runs[2].Arm)
	}
	if runs[0].Seed != 0 || runs[1].Seed != 1 {
		t.Errorf("seeds within arm = %d,%d, want 0,1", runs[0].Seed, runs[1].Seed)
	}
}

func TestMatrixValidate(t *testing.T) {
	ok := smallStorageMatrix()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Matrix)
		want   string
	}{
		{"no seeds", func(m *Matrix) { m.Seeds = 0 }, "at least one seed"},
		{"no frames", func(m *Matrix) { m.Frames = 0 }, "at least one frame"},
		{"no arms", func(m *Matrix) { m.Arms = nil }, "no arms"},
		{"bad order", func(m *Matrix) { m.Order = "zigzag" }, "unknown order"},
		{"unnamed arm", func(m *Matrix) { m.Arms[0].Name = "" }, "has no name"},
		{"duplicate arm", func(m *Matrix) { m.Arms[1].Name = m.Arms[0].Name }, "duplicate arm"},
		{"unknown kind", func(m *Matrix) { m.Arms[0].Kind = "quantum" }, "unknown kind"},
		{"storage rate out of range", func(m *Matrix) { m.Arms[0].Faults.BitRotRate = 1.5 }, "outside [0,1]"},
		{"bus rate out of range", func(m *Matrix) {
			m.Arms = []Arm{{Name: "hot", Kind: KindBus, Rates: bus.FaultRates{Drop: -0.1}}}
		}, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := smallStorageMatrix()
			tc.mutate(&m)
			err := m.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestEngineDeterminism is the engine's core contract: the aggregate JSON
// report is byte-identical for any worker count, because results land in
// run-ID slots and the report never reads completion order.
func TestEngineDeterminism(t *testing.T) {
	m := smallStorageMatrix()
	runs := m.Expand()
	var reports [][]byte
	for _, workers := range []int{1, 2, 8} {
		results := Engine{Workers: workers}.Execute(runs)
		rep := BuildReport(m, results)
		if err := rep.FirstError(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := rep.JSON()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reports = append(reports, raw)
	}
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("report for workers=%d differs from workers=1", []int{1, 2, 8}[i])
		}
	}
}

// TestReportCapture checks the per-run capture: zero SP violations and
// silent corruption, recovery-latency histograms lifted from the registry,
// and a recovered flight-recorder ring summarized per run.
func TestReportCapture(t *testing.T) {
	m := smallStorageMatrix()
	results := Engine{Workers: 2}.Execute(m.Expand())
	rep := BuildReport(m, results)
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals
	if tot.Runs != 4 || tot.Errors != 0 {
		t.Fatalf("totals runs/errors = %d/%d, want 4/0", tot.Runs, tot.Errors)
	}
	if tot.Violations != 0 || tot.SilentWrongData != 0 {
		t.Fatalf("correctness breached: %d violations, %d silent wrong data", tot.Violations, tot.SilentWrongData)
	}
	if tot.Injected.TornWrites+tot.Injected.BitFlips+tot.Injected.StuckReads == 0 {
		t.Error("no media faults injected")
	}
	if tot.Reconfigs == 0 {
		t.Error("no reconfigurations completed")
	}
	if tot.WindowFrames.Count != int64(tot.Reconfigs) {
		t.Errorf("merged window histogram has %d observations, want one per reconfig (%d)",
			tot.WindowFrames.Count, tot.Reconfigs)
	}
	for _, res := range rep.Results {
		if res.Recorder.LastFrame == 0 && len(res.Ring) == 0 && res.StorageHalts == 0 {
			t.Errorf("run %d recovered no ring without a halt", res.Run.ID)
		}
	}
	if rep.LastRing() == nil {
		t.Error("no exportable ring")
	}
	if tot.Reconfigs > 0 {
		if len(tot.SpanPhases) == 0 {
			t.Error("no span-phase aggregation despite completed reconfigurations")
		}
		if tot.WindowQuantiles == nil || tot.WindowQuantiles.P50 <= 0 {
			t.Errorf("window quantiles missing or degenerate: %+v", tot.WindowQuantiles)
		}
		if len(rep.SlowestTraces) == 0 {
			t.Error("no slowest traces retained")
		}
		for i, s := range rep.SlowestTraces {
			if !s.Trace.Complete || s.Trace.Window <= 0 {
				t.Errorf("slowest trace %d is not a completed window: %+v", i, s.Trace)
			}
			if i > 0 && s.Trace.Window > rep.SlowestTraces[i-1].Trace.Window {
				t.Errorf("slowest traces out of order at %d: %d frames after %d",
					i, s.Trace.Window, rep.SlowestTraces[i-1].Trace.Window)
			}
		}
	}
}

// TestBusRun drives one bus cell end to end through the engine.
func TestBusRun(t *testing.T) {
	m := S2Matrix(1, 60, bus.FaultRates{Drop: 0.1, Duplicate: 0.05, Delay: 0.05})
	m.Arms = m.Arms[1:2] // just the x1 sweep point
	results := Engine{Workers: 1}.Execute(m.Expand())
	rep := BuildReport(m, results)
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Bus == nil {
		t.Fatal("bus metrics missing")
	}
	if res.Violations != 0 {
		t.Errorf("%d SP violations", res.Violations)
	}
	if res.Bus.Delivered == 0 {
		t.Error("bus delivered nothing")
	}
}

// TestMembershipRun drives the s3 matrix end to end through the engine and
// checks the membership contract: zero SP and membership-invariant
// violations, the churn arm's unverifiable leave rejected on every run, the
// corrupt arm converging once per injected corruption, and a byte-identical
// aggregate report across worker counts.
func TestMembershipRun(t *testing.T) {
	m := S3Matrix(2, 120, 2)
	runs := m.Expand()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var reports [][]byte
	var rep Report
	for _, workers := range []int{1, 4} {
		results := Engine{Workers: workers}.Execute(runs)
		rep = BuildReport(m, results)
		if err := rep.FirstError(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := rep.JSON()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reports = append(reports, raw)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Fatal("membership report differs across worker counts")
	}
	tot := rep.Totals
	if tot.Violations != 0 || tot.MembershipViolations != 0 {
		t.Fatalf("%d SP violations, %d membership violations; want 0,0", tot.Violations, tot.MembershipViolations)
	}
	if tot.Membership == nil {
		t.Fatal("membership totals missing")
	}
	if tot.Membership.Joins == 0 || tot.Membership.Leaves == 0 {
		t.Errorf("no churn happened: %+v", tot.Membership)
	}
	if tot.Membership.Rejected != len(rep.Results) {
		t.Errorf("rejected = %d, want one unverifiable leave per run (%d)", tot.Membership.Rejected, len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.Membership == nil {
			t.Fatalf("run %d: membership metrics missing", res.Run.ID)
		}
		s := res.Membership.Membership
		switch res.Run.Arm {
		case "evict":
			if s.Evictions == 0 {
				t.Errorf("run %d (evict): no evictions", res.Run.ID)
			}
		case "corrupt":
			if s.Converges != res.Run.CorruptRecords {
				t.Errorf("run %d (corrupt): converges = %d, want one per corruption (%d)",
					res.Run.ID, s.Converges, res.Run.CorruptRecords)
			}
		case "churn":
			if s.Converges != 0 {
				t.Errorf("run %d (churn): %d spurious convergences", res.Run.ID, s.Converges)
			}
		}
	}
}

// TestChaosRun drives the S4 matrix: every storm — panics only, host
// crash-restart cycles with torn manifest writes, and the same storm under
// a bounded retention window — must end with every tenant passing the
// restart-equivalence check. Chaos outcomes carry real-time traffic
// tallies, so unlike the other kinds byte-identical reports across worker
// counts are not asserted; the invariant is that every storm is clean.
func TestChaosRun(t *testing.T) {
	m := S4Matrix(1, 100, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(m, Engine{Workers: 2}.Execute(m.Expand()))
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals.Chaos
	if tot == nil {
		t.Fatal("chaos totals missing")
	}
	if tot.Storms != 3 || tot.Mismatches != 0 || tot.Checked != tot.Tenants {
		t.Fatalf("chaos totals %+v: want 3 clean storms with all tenants checked", tot)
	}
	if tot.Crashes != 2 || tot.Recovered == 0 || tot.TornWrites == 0 {
		t.Fatalf("chaos totals %+v: the crash arms never crashed/tore (vacuous)", tot)
	}
	for _, res := range rep.Results {
		if res.Chaos == nil {
			t.Fatalf("run %d: chaos outcome missing", res.Run.ID)
		}
		if res.Run.Arm == "calm" && res.Chaos.Crashes != 0 {
			t.Fatalf("calm arm crashed %d times", res.Chaos.Crashes)
		}
	}
}

// TestProgress checks the ticker fires once per run, reaches the total,
// and is serialized (the race detector guards the lock discipline).
func TestProgress(t *testing.T) {
	m := smallStorageMatrix()
	var mu sync.Mutex
	calls := 0
	maxDone := 0
	e := Engine{Workers: 4, Progress: func(done, total int, res Result) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > maxDone {
			maxDone = done
		}
		if total != 4 {
			t.Errorf("total = %d, want 4", total)
		}
	}}
	e.Execute(m.Expand())
	if calls != 4 || maxDone != 4 {
		t.Errorf("progress calls/maxDone = %d/%d, want 4/4", calls, maxDone)
	}
}

// TestUnknownKindErr pins that a defective run surfaces as a result error,
// not a panic, and counts as an engine error in the totals.
func TestUnknownKindErr(t *testing.T) {
	results := Engine{}.Execute([]Run{{ID: 0, Kind: "quantum"}})
	if results[0].Err == "" {
		t.Fatal("unknown kind did not error")
	}
	rep := BuildReport(Matrix{}, results)
	if rep.Totals.Errors != 1 {
		t.Fatalf("totals errors = %d, want 1", rep.Totals.Errors)
	}
	if rep.FirstError() == nil {
		t.Fatal("FirstError = nil")
	}
}
