package campaign

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/stable"
	"repro/internal/telemetry"
)

// Totals aggregates every run of a campaign.
type Totals struct {
	// Runs is the number of cells executed; Errors the number that
	// failed to build or run.
	Runs   int `json:"runs"`
	Errors int `json:"errors"`
	// Violations sums SP1-SP4 violations; SilentWrongData sums the
	// storage oracle's silent-corruption counts. A fail-stop system
	// must hold both at zero under every fault plan.
	Violations      int   `json:"sp_violations"`
	SilentWrongData int64 `json:"silent_wrong_data"`
	// StorageHalts and Reconfigs sum the fail-stop conversions and the
	// completed reconfigurations.
	StorageHalts int `json:"storage_halts"`
	Reconfigs    int `json:"reconfigs"`
	// Injected and Storage sum the storage runs' media-fault injection
	// and fault-handling counters.
	Injected stable.MediumStats `json:"injected"`
	Storage  stable.ReplStats   `json:"storage"`
	// WindowFrames and SignalLatency merge every run's recovery-latency
	// histograms: reconfiguration window lengths and trigger-to-start
	// latencies, in frames.
	WindowFrames  telemetry.HistogramSnapshot `json:"window_frames"`
	SignalLatency telemetry.HistogramSnapshot `json:"signal_latency"`
	// WindowQuantiles and SignalQuantiles read the merged histograms at
	// the standard percentiles; nil while no run observed a sample.
	WindowQuantiles *LatencyQuantiles `json:"window_quantiles,omitempty"`
	SignalQuantiles *LatencyQuantiles `json:"signal_latency_quantiles,omitempty"`
	// SpanPhases merges the runs' causal-trace phase breakdowns: total
	// frames spent in each span phase (signal, halt, prepare, initialize,
	// ...) across every assembled reconfiguration trace.
	SpanPhases map[string]int64 `json:"span_phases,omitempty"`
	// MembershipViolations sums the membership-invariant violations; a
	// membership campaign must hold it at zero. Omitted (with the
	// Membership section) from campaigns without membership arms, so
	// storage- and bus-only reports are unchanged byte for byte.
	MembershipViolations int `json:"membership_violations,omitempty"`
	// Membership aggregates the membership runs' counters.
	Membership *MembershipTotals `json:"membership,omitempty"`
	// Chaos aggregates the chaos storms' counters. Omitted from campaigns
	// without chaos arms, so existing reports are unchanged byte for byte.
	Chaos *ChaosTotals `json:"chaos,omitempty"`
}

// ChaosTotals sums the chaos storms' accounting over every chaos run of a
// campaign. Mismatches stays zero on a passing campaign — any equivalence
// divergence also fails its run.
type ChaosTotals struct {
	Storms      int `json:"storms"`
	Tenants     int `json:"tenants"`
	Crashes     int `json:"crashes"`
	Recovered   int `json:"recovered"`
	TornWrites  int `json:"torn_writes"`
	Injected    int `json:"injected"`
	DedupeHits  int `json:"dedupe_hits"`
	Checked     int `json:"checked"`
	Quarantined int `json:"quarantined"`
	Mismatches  int `json:"mismatches"`
}

// MembershipTotals sums the membership layer's accounting over every
// membership run of a campaign.
type MembershipTotals struct {
	// Joins, Leaves, Rejected, Evictions and Converges sum the managers'
	// cumulative counters.
	Joins     int `json:"joins"`
	Leaves    int `json:"leaves"`
	Rejected  int `json:"rejected"`
	Evictions int `json:"evictions"`
	Converges int `json:"converges"`
	// MaxEpoch is the largest final epoch any run reached.
	MaxEpoch int64 `json:"max_epoch"`
}

// LatencyQuantiles summarizes a merged latency histogram at the standard
// percentiles, in frames.
type LatencyQuantiles struct {
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
}

// histQuantiles reads a histogram at p50/p95/p99, or nil when empty.
func histQuantiles(h telemetry.HistogramSnapshot) *LatencyQuantiles {
	if h.Count == 0 {
		return nil
	}
	return &LatencyQuantiles{
		P50: h.Quantile(0.50),
		P95: h.Quantile(0.95),
		P99: h.Quantile(0.99),
	}
}

// SlowTrace pairs a retained reconfiguration waterfall with the run that
// produced it.
type SlowTrace struct {
	Run   int                   `json:"run"`
	Trace telemetry.TraceReport `json:"trace"`
}

// slowestTraceK is how many of the slowest completed reconfiguration
// traces the aggregate report retains in full waterfall form.
const slowestTraceK = 3

// Report is the campaign's aggregate output. Building it only reads the
// result slice in run-ID order, so for a given matrix the marshaled report
// is byte-identical whatever worker count or completion order produced the
// results.
type Report struct {
	Matrix  Matrix   `json:"matrix"`
	Results []Result `json:"results"`
	Totals  Totals   `json:"totals"`
	// SlowestTraces retains the slowestTraceK slowest completed
	// reconfiguration traces across every run, ordered by realized
	// window descending (ties resolved by run ID, start frame and trace
	// ID, so the selection is deterministic for any worker count).
	SlowestTraces []SlowTrace `json:"slowest_traces,omitempty"`
}

// mergeHist folds src into dst. Histograms with equal bounds add bucket by
// bucket; an empty dst adopts src's bounds. Mismatched bounds cannot merge
// and are dropped (every kernel histogram uses the default frame buckets,
// so this does not arise in practice).
func mergeHist(dst *telemetry.HistogramSnapshot, src telemetry.HistogramSnapshot) {
	if src.Count == 0 && len(src.Bounds) == 0 {
		return
	}
	if len(dst.Bounds) == 0 {
		dst.Bounds = append([]int64(nil), src.Bounds...)
		dst.Counts = append([]int64(nil), src.Counts...)
		dst.Count = src.Count
		dst.Sum = src.Sum
		dst.Max = src.Max
		return
	}
	if len(dst.Bounds) != len(src.Bounds) {
		return
	}
	for i, b := range dst.Bounds {
		if src.Bounds[i] != b {
			return
		}
	}
	for i := range src.Counts {
		dst.Counts[i] += src.Counts[i]
	}
	dst.Count += src.Count
	dst.Sum += src.Sum
	if src.Max > dst.Max {
		dst.Max = src.Max
	}
}

// BuildReport merges the results (indexed by run ID, as Execute returns
// them) into the aggregate report.
func BuildReport(m Matrix, results []Result) Report {
	rep := Report{Matrix: m, Results: results}
	t := &rep.Totals
	t.Runs = len(results)
	for _, res := range results {
		if res.Chaos != nil {
			// Aggregated before the error gate: a dirty storm sets Err,
			// and its mismatch count belongs in the totals.
			if t.Chaos == nil {
				t.Chaos = &ChaosTotals{}
			}
			o := res.Chaos
			t.Chaos.Storms++
			t.Chaos.Tenants += o.Tenants
			t.Chaos.Crashes += o.Crashes
			t.Chaos.Recovered += o.Recovered
			t.Chaos.TornWrites += o.TornWrites
			t.Chaos.Injected += o.Injected
			t.Chaos.DedupeHits += o.DedupeHits
			t.Chaos.Checked += o.Checked
			t.Chaos.Quarantined += o.Quarantined
			t.Chaos.Mismatches += len(o.Mismatches)
		}
		if res.Err != "" {
			t.Errors++
			continue
		}
		t.Violations += res.Violations
		t.SilentWrongData += res.SilentWrongData
		t.StorageHalts += res.StorageHalts
		t.Reconfigs += res.Reconfigs
		mergeHist(&t.WindowFrames, res.WindowFrames)
		mergeHist(&t.SignalLatency, res.SignalLatency)
		for name, frames := range res.SpanPhases {
			if t.SpanPhases == nil {
				t.SpanPhases = make(map[string]int64)
			}
			t.SpanPhases[name] += frames
		}
		for _, tr := range res.Traces {
			if tr.Complete {
				rep.SlowestTraces = append(rep.SlowestTraces, SlowTrace{Run: res.Run.ID, Trace: tr})
			}
		}
		if res.Storage != nil {
			t.Injected.Add(res.Storage.Injected)
			t.Storage.Add(res.Storage.Storage)
		}
		if res.Membership != nil {
			if t.Membership == nil {
				t.Membership = &MembershipTotals{}
			}
			t.MembershipViolations += res.MembershipViolations
			s := res.Membership.Membership
			t.Membership.Joins += s.Joins
			t.Membership.Leaves += s.Leaves
			t.Membership.Rejected += s.Rejected
			t.Membership.Evictions += s.Evictions
			t.Membership.Converges += s.Converges
			if res.Membership.Epoch > t.Membership.MaxEpoch {
				t.Membership.MaxEpoch = res.Membership.Epoch
			}
		}
	}
	t.WindowQuantiles = histQuantiles(t.WindowFrames)
	t.SignalQuantiles = histQuantiles(t.SignalLatency)
	// Slowest first; every comparison key is a pure function of the
	// results, so the retained set is worker-count independent.
	sort.SliceStable(rep.SlowestTraces, func(i, j int) bool {
		a, b := rep.SlowestTraces[i], rep.SlowestTraces[j]
		if a.Trace.Window != b.Trace.Window {
			return a.Trace.Window > b.Trace.Window
		}
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Trace.Start != b.Trace.Start {
			return a.Trace.Start < b.Trace.Start
		}
		return a.Trace.ID < b.Trace.ID
	})
	if len(rep.SlowestTraces) > slowestTraceK {
		rep.SlowestTraces = rep.SlowestTraces[:slowestTraceK]
	}
	return rep
}

// JSON renders the report in its canonical byte-stable form: indented,
// map keys sorted by encoding/json, rings omitted.
func (r Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding report: %w", err)
	}
	return append(data, '\n'), nil
}

// FirstError returns the first failed run's error in run-ID order, or nil.
func (r Report) FirstError() error {
	for _, res := range r.Results {
		if res.Err != "" {
			return fmt.Errorf("campaign: run %d (%s seed %d): %s", res.Run.ID, res.Run.Arm, res.Run.Seed, res.Err)
		}
	}
	return nil
}

// LastRing picks the journal worth exporting: the last ring from a run
// that halted a processor, or failing that the last non-empty ring, in
// run-ID order. Deterministic for the same results.
func (r Report) LastRing() []telemetry.Event {
	var ring []telemetry.Event
	for _, res := range r.Results {
		if len(res.Ring) == 0 {
			continue
		}
		if ring == nil || res.StorageHalts > 0 {
			ring = res.Ring
		}
	}
	return ring
}
