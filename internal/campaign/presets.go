package campaign

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/stable"
)

// S1Matrix is the S1 experiment as a campaign matrix: the canonical system
// on hardened stable storage, every seed run twice — a "shielded" arm with
// three replicas at the base fault rates, and a "defeat" arm stripped to
// one replica with bit rot multiplied until it beats the redundancy and
// forces fail-stop conversions. Seed-major order pairs the two arms under
// identical seeds, the layout the faultsim s1 table prints.
func S1Matrix(seeds, frames int, faults stable.FaultProfile) Matrix {
	defeat := faults
	defeat.BitRotRate = minFloat(1, faults.BitRotRate*8)
	return Matrix{
		Name:   "s1-storage-faults",
		Seeds:  seeds,
		Frames: frames,
		Order:  SeedMajor,
		Arms: []Arm{
			{Name: "shielded", Kind: KindStorage, Replicas: 3, Faults: faults},
			{Name: "defeat", Kind: KindStorage, Replicas: 1, Faults: defeat},
		},
	}
}

// S2Matrix is the S2 experiment as a campaign matrix: the avionics mission
// over a degraded bus, sweeping the base rates through multipliers 0-3.
// Arm-major order groups rows by sweep point, the layout the faultsim s2
// table prints.
func S2Matrix(seeds, frames int, rates bus.FaultRates) Matrix {
	m := Matrix{
		Name:   "s2-bus-faults",
		Seeds:  seeds,
		Frames: frames,
		Order:  ArmMajor,
	}
	for _, mult := range []float64{0, 1, 2, 3} {
		m.Arms = append(m.Arms, Arm{
			Name: fmt.Sprintf("x%.0f", mult),
			Kind: KindBus,
			Rates: bus.FaultRates{
				Drop:      minFloat(1, rates.Drop*mult),
				Duplicate: minFloat(1, rates.Duplicate*mult),
				Delay:     minFloat(1, rates.Delay*mult),
			},
		})
	}
	return m
}

// S3Matrix is the S3 experiment as a campaign matrix: the canonical system
// with two spare processors and dynamic membership, attacked three ways —
// a "churn" arm of spare join/leave cycles (plus one unverifiable leave that
// must be rejected), an "evict" arm adding member crash/repair pairs on top
// of the churn, and a "corrupt" arm adding direct corruption of the
// committed membership record. Seed-major order pairs the arms under
// identical seeds. Every run must finish with zero SP and zero membership
// invariant violations.
func S3Matrix(seeds, frames, churn int) Matrix {
	return Matrix{
		Name:   "s3-membership-churn",
		Seeds:  seeds,
		Frames: frames,
		Order:  SeedMajor,
		Arms: []Arm{
			{Name: "churn", Kind: KindMembership, Churn: churn},
			{Name: "evict", Kind: KindMembership, Churn: churn, Evictions: 2},
			{Name: "corrupt", Kind: KindMembership, Churn: churn, CorruptRecords: 3},
		},
	}
}

// S4Matrix is the S4 experiment as a campaign matrix: the durable fleet
// host under seeded chaos storms, attacked three ways — a "calm" arm with
// panics but no host crashes (the quarantine-reproduction baseline), a
// "crashfault" arm adding host crash-restart cycles with torn manifest
// writes at each crash point, and a "retention" arm running the same storm
// with a bounded journal/trace window, proving recovery and retention
// compose. Every tenant of every storm must pass the restart-equivalence
// check.
func S4Matrix(seeds, frames, crashes int) Matrix {
	return Matrix{
		Name:   "s4-fleet-chaos",
		Seeds:  seeds,
		Frames: frames,
		Order:  SeedMajor,
		Arms: []Arm{
			{Name: "calm", Kind: KindChaos, FleetTenants: 4, TenantPanics: 1},
			{Name: "crashfault", Kind: KindChaos, FleetTenants: 4, Crashes: crashes, TenantPanics: 1, TornWrites: 3},
			{Name: "retention", Kind: KindChaos, FleetTenants: 4, Crashes: crashes, TenantPanics: 1, TornWrites: 3, RetainFrames: 48},
		},
	}
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
