package telemetry

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/spec"
	"repro/internal/trace"
)

// TestEventEncoderMatchesStdlib pins the hand-rolled persistence encoder to
// encoding/json byte for byte. If a field is added to Event, FrameState or
// AppSnap without teaching encode.go about it, the new field silently
// vanishes from persisted rings — this test is what catches that.
func TestEventEncoderMatchesStdlib(t *testing.T) {
	events := []Event{
		// Minimal: every omitempty field empty.
		{Seq: 0, Frame: 0, Kind: KindSignal},
		// All scalar fields set, including strings that exercise the
		// escaper: quotes, backslashes, control characters, and the
		// HTML-sensitive <, >, & that stdlib escapes as \u00XX.
		{
			Seq:    42,
			Frame:  -7,
			Kind:   KindTrigger,
			App:    `app"quoted"`,
			Host:   "h\\back\\slash",
			Config: "cfg\nnewline\ttab\rret",
			From:   "a<b>&c",
			Phase:  "init\x01ctl",
			Detail: "transition c1 -> c2 (λ uniçode ☃)",
		},
		// Attrs map: emitted in sorted key order like stdlib.
		{
			Seq:   7,
			Frame: 3,
			Kind:  KindComplete,
			Attrs: map[string]int64{"zz": -1, "aa": 9, "m<id>": 0, "frame": 1 << 40},
		},
		// Frame state with nil Apps map.
		{
			Seq:   8,
			Frame: 4,
			Kind:  KindFrameState,
			State: &FrameState{Config: "c1", Env: "nominal"},
		},
		// Frame state with several apps, sorted, all AppSnap fields.
		{
			Seq:   9,
			Frame: 5,
			Kind:  KindFrameState,
			App:   "only-app",
			State: &FrameState{
				Config: "c2",
				Env:    "deg<raded>",
				Apps: map[spec.AppID]AppSnap{
					"b": {Status: trace.StatusPreparing, Spec: "s2", PreOK: false},
					"a": {Status: trace.StatusNormal, Spec: `s"1`, PreOK: true},
					"c": {Status: trace.StatusHalted, Spec: "", PreOK: false},
				},
			},
		},
	}

	var enc eventEncoder
	for i := range events {
		e := &events[i]
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("stdlib marshal event %d: %v", i, err)
		}
		got := enc.appendEvent(e)
		if string(got) != string(want) {
			t.Errorf("event %d encoding diverges from stdlib:\n got  %s\n want %s", i, got, want)
		}
		// Round-trip: the persisted record must decode back to the event.
		var back Event
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("round-trip unmarshal event %d: %v", i, err)
		}
	}
}

// TestEventEncoderReusesBuffer checks that repeated encodes are
// allocation-free once the buffer has grown: Persist relies on it to stay
// off the frame-commit allocation budget.
func TestEventEncoderReusesBuffer(t *testing.T) {
	e := Event{
		Seq: 3, Frame: 9, Kind: KindHalt, App: "a1", Detail: "halt window open",
		Attrs: map[string]int64{"window": 4, "deadline": 12},
	}
	var enc eventEncoder
	enc.appendEvent(&e) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() { enc.appendEvent(&e) })
	if allocs != 0 {
		t.Errorf("warmed appendEvent allocates %.1f objects/op, want 0", allocs)
	}
}

// persistSink captures the last record staged under each key.
type persistSink map[string][]byte

func (s persistSink) Put(key string, val []byte) { s[key] = append([]byte(nil), val...) }
func (s persistSink) Delete(key string)          { delete(s, key) }

// TestRegistryPersistMatchesStdlib pins Registry.Persist's hand-rolled
// snapshot encoding to json.Marshal of Registry.Snapshot, so
// RecoverSnapshot keeps decoding persisted metrics with encoding/json.
func TestRegistryPersistMatchesStdlib(t *testing.T) {
	cases := []struct {
		name string
		fill func(r *Registry)
	}{
		{"empty", func(r *Registry) {}},
		{"counters-only", func(r *Registry) {
			r.Counter("scram/triggers").Add(3)
			r.Counter("a/first").Inc()
		}},
		{"all-kinds", func(r *Registry) {
			r.Counter("scram/triggers").Add(41)
			r.Gauge("stable/p1/staged").Set(-7)
			r.Gauge("bus/backlog").Set(12)
			h := r.Histogram("scram/window_frames")
			h.Observe(3)
			h.Observe(144)
			r.Histogram("custom/bounds", 10, 20).Observe(15)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			tc.fill(reg)
			want, err := json.Marshal(reg.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			sink := persistSink{}
			if err := reg.Persist(sink); err != nil {
				t.Fatal(err)
			}
			got := sink[metricsKey]
			if string(got) != string(want) {
				t.Errorf("Persist encoding diverges from stdlib:\n got  %s\n want %s", got, want)
			}
			back, ok, err := RecoverSnapshot(map[string][]byte(sink))
			if err != nil || !ok {
				t.Fatalf("RecoverSnapshot: ok=%v err=%v", ok, err)
			}
			if snap := reg.Snapshot(); len(back.Counters) != len(snap.Counters) ||
				len(back.Gauges) != len(snap.Gauges) || len(back.Histograms) != len(snap.Histograms) {
				t.Errorf("recovered snapshot shape differs: %+v vs %+v", back, snap)
			}
		})
	}
}

// TestEventKeyMatchesFmt pins the hand-rolled zero-padded hex key to the
// fmt formatting it replaced, including the recovery-critical property that
// lexicographic key order is sequence order.
func TestEventKeyMatchesFmt(t *testing.T) {
	seqs := []int64{0, 1, 15, 16, 255, 4096, 1<<32 + 7, 1<<62 + 3}
	var prev string
	for i, s := range seqs {
		want := fmt.Sprintf("%s%016x", eventKeyPrefix, s)
		got := eventKey(s)
		if got != want {
			t.Errorf("eventKey(%d) = %q, want %q", s, got, want)
		}
		if i > 0 && !(prev < got) {
			t.Errorf("key order broken: eventKey(%d)=%q not after %q", s, got, prev)
		}
		prev = got
	}
}
