package telemetry

import (
	"reflect"
	"testing"
)

func TestTraceIDDeterministicAndPositive(t *testing.T) {
	a := traceIDFor(42, 100, 1)
	b := traceIDFor(42, 100, 1)
	if a != b {
		t.Fatalf("trace ID not deterministic: %d vs %d", a, b)
	}
	if a <= 0 {
		t.Fatalf("trace ID not positive: %d", a)
	}
	if traceIDFor(42, 100, 2) == a || traceIDFor(43, 100, 1) == a || traceIDFor(42, 101, 1) == a {
		t.Fatalf("trace IDs collide across ordinal/seed/frame changes")
	}
}

func TestTraceIDRoundTripsThroughString(t *testing.T) {
	id := traceIDFor(7, 12, 3)
	s := TraceIDString(id)
	if len(s) != 16 {
		t.Fatalf("trace ID string %q not 16 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil || back != id {
		t.Fatalf("ParseTraceID(%q) = %d, %v; want %d", s, back, err, id)
	}
	if _, err := ParseTraceID("not-a-trace"); err == nil {
		t.Fatalf("ParseTraceID accepted garbage")
	}
}

func TestNilSpanBookIsInert(t *testing.T) {
	var b *SpanBook
	if b.Enabled() {
		t.Fatalf("nil book reports enabled")
	}
	if id := b.OpenPending(1, SpanSignal, Event{}); id != 0 {
		t.Fatalf("nil book allocated span %d", id)
	}
	b.ClosePending(2, 1, Event{})
	if tr, root := b.OpenTrace(3, 1, Event{}); tr != 0 || root != 0 {
		t.Fatalf("nil book opened trace %d/%d", tr, root)
	}
	b.CloseTrace(4, Event{})
	b.Mark(5, SpanEpoch, Event{})
}

// TestSpanBookLifecycleAssembles drives a full reconfiguration's worth of
// span traffic — pending signal adopted on trigger, phase children, a
// chained follow-up whose phases parent to the chain span, an epoch mark
// inside the trace — and checks the assembled view.
func TestSpanBookLifecycleAssembles(t *testing.T) {
	rec := NewRecorder(128)
	b := NewSpanBook(42, rec)

	sig := b.OpenPending(10, SpanSignal, Event{App: "envmon", Detail: "press"})
	if sig == 0 {
		t.Fatalf("pending span not allocated")
	}
	trace, root := b.OpenTrace(12, 10, Event{From: "cruise", Config: "descent", Attrs: map[string]int64{"seq": 1, "bound": 40}})
	if trace == 0 || root == 0 {
		t.Fatalf("trace not opened")
	}
	b.ClosePending(12, sig, Event{})
	halt := b.OpenSpan(13, SpanHalt, Event{})
	b.CloseSpan(14, halt, SpanHalt, Event{})
	b.Mark(14, SpanEpoch, Event{Attrs: map[string]int64{"epoch": 3}})
	chain := b.OpenChain(15, Event{Config: "landing"})
	if chain == 0 {
		t.Fatalf("chain span not opened")
	}
	init := b.OpenSpan(16, SpanInit, Event{})
	b.CloseSpan(18, init, SpanInit, Event{})
	b.CloseTrace(18, Event{Attrs: map[string]int64{"window": 7, "bound": 40, "margin": 33}})

	traces := AssembleTraces(rec.Events())
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1: %+v", len(traces), traces)
	}
	tv := traces[0]
	if tv.ID != trace {
		t.Fatalf("trace ID %d, want %d", tv.ID, trace)
	}
	byName := map[string]Span{}
	for _, s := range tv.Spans {
		byName[s.Name] = s
	}
	if len(tv.Spans) != 6 {
		t.Fatalf("got %d spans, want 6: %+v", len(tv.Spans), tv.Spans)
	}
	rootSpan, ok := tv.Root()
	if !ok || rootSpan.ID != root || rootSpan.Start != 12 || rootSpan.End != 18 {
		t.Fatalf("root span wrong: %+v", rootSpan)
	}
	if s := byName[SpanSignal]; s.Start != 10 || s.End != 12 || s.Trace != trace || s.Parent != root {
		t.Fatalf("signal span not adopted into trace: %+v", s)
	}
	if s := byName[SpanHalt]; s.Parent != root || s.Frames() != 2 {
		t.Fatalf("halt span wrong: %+v", s)
	}
	if s := byName[SpanEpoch]; s.Parent != root || s.Frames() != 1 || s.Attrs["epoch"] != 3 {
		t.Fatalf("epoch mark wrong: %+v", s)
	}
	if s := byName[SpanChain]; s.Parent != root || s.End != 18 {
		t.Fatalf("chain span wrong: %+v", s)
	}
	if s := byName[SpanInit]; s.Parent != byName[SpanChain].ID {
		t.Fatalf("chained phase does not parent to chain span: %+v", s)
	}
	if w := rootSpan.Attrs["window"]; w != 7 {
		t.Fatalf("root close attrs lost: %+v", rootSpan.Attrs)
	}
}

func TestPendingSpanClosesTracelessWithoutTrigger(t *testing.T) {
	rec := NewRecorder(16)
	b := NewSpanBook(1, rec)
	sig := b.OpenPending(5, SpanSignal, Event{App: "envmon"})
	b.ClosePending(5, sig, Event{Detail: "no-op"})
	traces := AssembleTraces(rec.Events())
	if len(traces) != 1 || traces[0].ID != 0 {
		t.Fatalf("traceless signal should land in the untraced bucket: %+v", traces)
	}
	if s := traces[0].Spans[0]; s.Trace != 0 || s.Parent != 0 || s.End != 5 {
		t.Fatalf("traceless span wrong: %+v", s)
	}
}

func TestMarkOutsideTraceIsStandalone(t *testing.T) {
	rec := NewRecorder(16)
	b := NewSpanBook(9, rec)
	b.Mark(20, SpanEpoch, Event{Attrs: map[string]int64{"epoch": 1}})
	b.Mark(30, SpanEpoch, Event{Attrs: map[string]int64{"epoch": 2}})
	traces := AssembleTraces(rec.Events())
	if len(traces) != 2 {
		t.Fatalf("each standalone mark should open its own trace: %+v", traces)
	}
	if traces[0].ID == traces[1].ID {
		t.Fatalf("standalone marks share a trace ID")
	}
	for _, tv := range traces {
		s := tv.Spans[0]
		if s.Parent != 0 || s.Frames() != 1 || s.Trace != tv.ID {
			t.Fatalf("standalone mark span wrong: %+v", s)
		}
	}
}

// TestAssembleOpenSpansAfterHalt is survival-by-construction at the unit
// level: a book whose trace never closes (the system fail-stopped) still
// assembles, with the open spans reporting End -1.
func TestAssembleOpenSpansAfterHalt(t *testing.T) {
	rec := NewRecorder(64)
	b := NewSpanBook(3, rec)
	b.OpenTrace(8, 7, Event{From: "a", Config: "b"})
	b.OpenSpan(9, SpanHalt, Event{})
	traces := AssembleTraces(rec.Events())
	if len(traces) != 1 || len(traces[0].Spans) != 2 {
		t.Fatalf("open trace did not assemble: %+v", traces)
	}
	for _, s := range traces[0].Spans {
		if s.End != -1 || s.Frames() != -1 {
			t.Fatalf("open span should report End -1: %+v", s)
		}
	}
	r := BuildTraceReport(traces[0])
	if r.Complete || r.End != -1 || r.Window != -1 || r.Margin != -1 {
		t.Fatalf("open-trace report should be incomplete: %+v", r)
	}
}

func TestBuildTraceReportWaterfall(t *testing.T) {
	rec := NewRecorder(64)
	b := NewSpanBook(11, rec)
	_, root := b.OpenTrace(100, 99, Event{From: "x", Config: "y", Attrs: map[string]int64{"seq": 4, "bound": 30}})
	h := b.OpenSpan(101, SpanHalt, Event{})
	b.CloseSpan(103, h, SpanHalt, Event{})
	b.CloseTrace(110, Event{Attrs: map[string]int64{"window": 11, "bound": 30, "margin": 19}})
	tv := AssembleTraces(rec.Events())[0]
	r := BuildTraceReport(tv)
	if !r.Complete || r.Start != 100 || r.End != 110 || r.Window != 11 || r.Bound != 30 || r.Margin != 19 {
		t.Fatalf("report header wrong: %+v", r)
	}
	if r.From != "x" || r.Config != "y" || r.Seq != 4 {
		t.Fatalf("report identity wrong: %+v", r)
	}
	if len(r.Spans) != 2 || r.Spans[0].Span != root || r.Spans[1].Frames != 3 {
		t.Fatalf("waterfall rows wrong: %+v", r.Spans)
	}
	if r.ID != TraceIDString(tv.ID) {
		t.Fatalf("report ID %q mismatches trace %d", r.ID, tv.ID)
	}
	pf := tv.PhaseFrames()
	if pf[SpanReconfig] != 11 || pf[SpanHalt] != 3 {
		t.Fatalf("phase frames wrong: %+v", pf)
	}
}

func TestAssembleIsPureFunctionOfEvents(t *testing.T) {
	rec := NewRecorder(64)
	b := NewSpanBook(5, rec)
	sig := b.OpenPending(1, SpanSignal, Event{})
	b.OpenTrace(3, 1, Event{})
	b.ClosePending(3, sig, Event{})
	b.CloseTrace(9, Event{})
	ev := rec.Events()
	a1 := AssembleTraces(ev)
	a2 := AssembleTraces(append([]Event(nil), ev...))
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("assembly not deterministic")
	}
}
