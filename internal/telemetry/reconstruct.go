package telemetry

import (
	"fmt"
	"time"

	"repro/internal/spec"
	"repro/internal/trace"
)

// AppSnap is one application's state within a frame-state sample.
type AppSnap struct {
	Status trace.ReconfStatus `json:"status"`
	Spec   spec.SpecID        `json:"spec"`
	PreOK  bool               `json:"pre_ok"`
}

// FrameState is the per-frame system-state sample carried by a
// KindFrameState event: the same information the live trace records, so a
// recovered ring reconstructs a sys_trace the SP1-SP4 checkers accept.
type FrameState struct {
	Config spec.ConfigID          `json:"config"`
	Env    spec.EnvState          `json:"env"`
	Apps   map[spec.AppID]AppSnap `json:"apps"`
}

// CaptureState converts a live trace state into a frame-state sample.
func CaptureState(st trace.SysState) *FrameState {
	fs := &FrameState{
		Config: st.Config,
		Env:    st.Env,
		Apps:   make(map[spec.AppID]AppSnap, len(st.Apps)),
	}
	// Plain map iteration: insertion order into a map is immaterial, and
	// every consumer that needs determinism sorts the keys when reading.
	for id, a := range st.Apps {
		fs.Apps[id] = AppSnap{Status: a.Status, Spec: a.Spec, PreOK: a.PreOK}
	}
	return fs
}

// Equal reports whether two frame-state samples are identical. The recorder
// uses it to run-length-encode the ring: a frame whose state matches the
// previous frame's records no sample at all.
func (f *FrameState) Equal(o *FrameState) bool {
	if o == nil || f.Config != o.Config || f.Env != o.Env || len(f.Apps) != len(o.Apps) {
		return false
	}
	for id, a := range f.Apps {
		if b, ok := o.Apps[id]; !ok || a != b {
			return false
		}
	}
	return true
}

// EqualState reports whether the sample matches a live trace state. The
// frame-commit hook uses it to decide whether a new sample is due without
// allocating a FrameState (and its map) every frame.
func (f *FrameState) EqualState(st trace.SysState) bool {
	if f == nil || f.Config != st.Config || f.Env != st.Env || len(f.Apps) != len(st.Apps) {
		return false
	}
	for id, a := range st.Apps {
		b, ok := f.Apps[id]
		if !ok || b.Status != a.Status || b.Spec != a.Spec || b.PreOK != a.PreOK {
			return false
		}
	}
	return true
}

// ReconstructTrace rebuilds a sys_trace from the frame-state events of a
// (possibly recovered) flight-recorder ring. The ring run-length-encodes
// system state: a sample is recorded only when the state differs from the
// previous frame's (plus one final sample closing the run), so frames
// between two samples repeat the earlier sample's state. Because the ring
// is bounded, the oldest frames may have been evicted: the reconstructed
// trace is rebased so its first surviving sample is cycle 0, and the
// original frame number of cycle 0 is returned as base.
func ReconstructTrace(system string, frameLen time.Duration, events []Event) (*trace.Trace, int64, error) {
	var samples []Event
	for _, e := range events {
		if e.Kind == KindFrameState {
			if e.State == nil {
				return nil, 0, fmt.Errorf("telemetry: frame-state event #%d has no state", e.Seq)
			}
			if n := len(samples); n > 0 && e.Frame <= samples[n-1].Frame {
				return nil, 0, fmt.Errorf("telemetry: frame-state events out of order: event #%d is frame %d after frame %d",
					e.Seq, e.Frame, samples[n-1].Frame)
			}
			samples = append(samples, e)
		}
	}
	if len(samples) == 0 {
		return nil, 0, fmt.Errorf("telemetry: no frame-state events in ring")
	}
	base := samples[0].Frame
	last := samples[len(samples)-1].Frame
	tr := &trace.Trace{System: system, FrameLen: frameLen}
	next := 0
	var cur *FrameState
	for f := base; f <= last; f++ {
		for next < len(samples) && samples[next].Frame == f {
			cur = samples[next].State
			next++
		}
		st := trace.SysState{
			Cycle:  f - base,
			Config: cur.Config,
			Env:    cur.Env,
			Apps:   make(map[spec.AppID]trace.AppState, len(cur.Apps)),
		}
		// Keyed inserts with pure values commute: no sort needed.
		for id, a := range cur.Apps {
			st.Apps[id] = trace.AppState{Status: a.Status, Spec: a.Spec, PreOK: a.PreOK}
		}
		if err := tr.Append(st); err != nil {
			return nil, 0, err
		}
	}
	return tr, base, nil
}

// PhaseSpan is one protocol phase's inclusive frame window within a
// reconfiguration. Start -1 means the phase does not occur.
type PhaseSpan struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// Frames returns the window length, 0 for an absent phase.
func (p PhaseSpan) Frames() int64 {
	if p.Start < 0 {
		return 0
	}
	return p.End - p.Start + 1
}

// Reconfig is one reconfiguration assembled from the ring's protocol and
// budget events: the Table 1 timeline with per-phase frame budgets.
type Reconfig struct {
	// Seq is the kernel's plan sequence number (the last one, after any
	// retargets or chained follow-ups).
	Seq int64 `json:"seq"`
	// Source and Target are the window's endpoint configurations (the
	// chain source for a fused chained window).
	Source string `json:"source"`
	Target string `json:"target"`
	// TriggerFrame is the frame the window's first plan was triggered in.
	TriggerFrame int64 `json:"trigger_frame"`
	// SignalLatency is the number of frames between the signal that
	// caused the trigger and the trigger itself; -1 when unknown.
	SignalLatency int64 `json:"signal_latency"`
	// Halt, Prepare and Init are the scheduled phase windows of the
	// window's final plan.
	Halt    PhaseSpan `json:"halt"`
	Prepare PhaseSpan `json:"prepare"`
	Init    PhaseSpan `json:"init"`
	// CompleteFrame is the frame the window completed in; -1 while open.
	CompleteFrame int64 `json:"complete_frame"`
	// WindowFrames is the completed window length in frames (trigger
	// through completion, inclusive).
	WindowFrames int64 `json:"window_frames"`
	// BoundFrames is the declared transition bound T(Source, Target) in
	// frames; 0 when undeclared.
	BoundFrames int64 `json:"bound_frames"`
	// MarginFrames is BoundFrames - WindowFrames when the bound is
	// declared.
	MarginFrames int64 `json:"margin_frames"`
	// Retargeted and Chained mark windows that changed target mid-flight
	// or fused with an urgent follow-up plan.
	Retargeted bool `json:"retargeted,omitempty"`
	Chained    bool `json:"chained,omitempty"`
}

// Complete reports whether the reconfiguration finished within the ring.
func (r Reconfig) Complete() bool { return r.CompleteFrame >= 0 }

// Summary aggregates a ring into the flight-recorder report: the
// reconfiguration timeline plus fault-handling tallies.
type Summary struct {
	// Reconfigs is the reconfiguration timeline in trigger order; a
	// final open window has CompleteFrame -1.
	Reconfigs []Reconfig `json:"reconfigs"`
	// Signals, Deferred and Retargets count the corresponding protocol
	// events.
	Signals   int64 `json:"signals"`
	Deferred  int64 `json:"deferred"`
	Retargets int64 `json:"retargets"`
	// StorageRepairs, StorageRescues and StorageUnrecoverable tally the
	// hardened-storage events.
	StorageRepairs       int64 `json:"storage_repairs"`
	StorageRescues       int64 `json:"storage_rescues"`
	StorageUnrecoverable int64 `json:"storage_unrecoverable"`
	// BusFaults counts injected bus-fault actions.
	BusFaults int64 `json:"bus_faults"`
	// ProcHalts lists the fail-stop processor halts observed.
	ProcHalts []Event `json:"proc_halts,omitempty"`
	// Takeovers counts standby SCRAM takeovers.
	Takeovers int64 `json:"takeovers"`
	// FirstFrame and LastFrame delimit the ring's coverage.
	FirstFrame int64 `json:"first_frame"`
	LastFrame  int64 `json:"last_frame"`
	// DroppedEvents is how many events the ring evicted before the
	// oldest surviving one.
	DroppedEvents int64 `json:"dropped_events"`
}

// attr returns a named attribute with a default for absence.
func attr(e Event, key string, def int64) int64 {
	if v, ok := e.Attrs[key]; ok {
		return v
	}
	return def
}

// Summarize assembles the flight-recorder report from a ring's events,
// which must be in sequence order (as RecoverRing and Recorder.Events
// return them).
func Summarize(events []Event) Summary {
	s := Summary{FirstFrame: -1, LastFrame: -1}
	var open *Reconfig
	var lastSignalFrame int64 = -1
	for _, e := range events {
		if s.FirstFrame < 0 || e.Frame < s.FirstFrame {
			s.FirstFrame = e.Frame
		}
		if e.Frame > s.LastFrame {
			s.LastFrame = e.Frame
		}
		switch e.Kind {
		case KindSignal:
			s.Signals++
			lastSignalFrame = e.Frame
		case KindDeferred:
			s.Deferred++
		case KindRetarget:
			s.Retargets++
		case KindStorageRepair, KindStorageScrub:
			s.StorageRepairs += attr(e, "repaired", 0)
			s.StorageRescues += attr(e, "rescues", 0)
		case KindStorageRescue:
			s.StorageRescues++
		case KindStorageUnrecoverable:
			s.StorageUnrecoverable++
		case KindBusFault:
			s.BusFaults++
		case KindProcHalt:
			s.ProcHalts = append(s.ProcHalts, e)
		case KindTakeover:
			s.Takeovers++
		case KindBudget:
			switch e.Phase {
			case "schedule":
				chained := attr(e, "chained", 0) != 0
				// A chained or retargeted schedule continues the open
				// window; only a fresh plan opens a new record.
				cont := chained || attr(e, "retargeted", 0) != 0
				if open == nil || !cont {
					if open != nil {
						// A schedule with no completion closes the
						// previous record as best known (ring gap).
						s.Reconfigs = append(s.Reconfigs, *open)
					}
					open = &Reconfig{
						Source:        e.From,
						TriggerFrame:  attr(e, "trigger_frame", e.Frame),
						SignalLatency: -1,
						CompleteFrame: -1,
					}
					if lastSignalFrame >= 0 {
						open.SignalLatency = open.TriggerFrame - lastSignalFrame
					}
				}
				open.Seq = attr(e, "seq", 0)
				open.Target = e.Config
				open.Chained = open.Chained || chained
				open.Retargeted = open.Retargeted || attr(e, "retargeted", 0) != 0
				open.Halt = PhaseSpan{attr(e, "halt_start", -1), attr(e, "halt_end", -1)}
				open.Prepare = PhaseSpan{attr(e, "prep_start", -1), attr(e, "prep_end", -1)}
				open.Init = PhaseSpan{attr(e, "init_start", -1), attr(e, "init_end", -1)}
				open.BoundFrames = attr(e, "bound", 0)
			case "window":
				if open == nil {
					open = &Reconfig{
						Source:        e.From,
						Target:        e.Config,
						TriggerFrame:  attr(e, "start", e.Frame),
						SignalLatency: -1,
						Halt:          PhaseSpan{-1, -1},
						Prepare:       PhaseSpan{-1, -1},
						Init:          PhaseSpan{-1, -1},
					}
				}
				open.Seq = attr(e, "seq", open.Seq)
				open.Target = e.Config
				open.CompleteFrame = e.Frame
				open.WindowFrames = attr(e, "window", e.Frame-open.TriggerFrame+1)
				open.BoundFrames = attr(e, "bound", open.BoundFrames)
				if open.BoundFrames > 0 {
					open.MarginFrames = open.BoundFrames - open.WindowFrames
				}
				if attr(e, "chained", 0) != 0 {
					open.Chained = true
				}
				if attr(e, "retargeted", 0) != 0 {
					open.Retargeted = true
				}
				s.Reconfigs = append(s.Reconfigs, *open)
				open = nil
			}
		}
	}
	if open != nil {
		s.Reconfigs = append(s.Reconfigs, *open)
	}
	if len(events) > 0 {
		s.DroppedEvents = events[0].Seq
	}
	return s
}
