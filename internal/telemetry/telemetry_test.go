package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/trace"
)

// memKV is an in-memory stable-storage stand-in for persistence tests.
type memKV map[string][]byte

func (m memKV) Put(key string, val []byte) { m[key] = append([]byte(nil), val...) }
func (m memKV) Delete(key string)          { delete(m, key) }

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a/b")
	c.Add(3)
	if got := reg.Counter("a/b").Value(); got != 3 {
		t.Errorf("Counter re-resolve = %d, want 3", got)
	}
	g := reg.Gauge("g")
	g.Set(7)
	if got := reg.Gauge("g").Value(); got != 7 {
		t.Errorf("Gauge re-resolve = %d, want 7", got)
	}
	h := reg.Histogram("h")
	h.Observe(4)
	if got := reg.Histogram("h").Snapshot().Count; got != 1 {
		t.Errorf("Histogram re-resolve count = %d, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", 1, 3, 10)
	for _, v := range []int64{0, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []int64{2, 2, 1, 1}; len(s.Counts) != len(want) {
		t.Fatalf("Counts = %v, want %v", s.Counts, want)
	} else {
		for i := range want {
			if s.Counts[i] != want[i] {
				t.Errorf("Counts[%d] = %d, want %d (all %v)", i, s.Counts[i], want[i], s.Counts)
			}
		}
	}
	if s.Count != 6 || s.Sum != 111 || s.Max != 100 {
		t.Errorf("Count/Sum/Max = %d/%d/%d, want 6/111/100", s.Count, s.Sum, s.Max)
	}
}

func TestMetricsPersistRecover(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scram/signals").Add(5)
	reg.Gauge("frame/tasks").Set(4)
	reg.Histogram("w", 2, 4).Observe(3)

	kv := memKV{}
	if err := reg.Persist(kv); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := RecoverSnapshot(map[string][]byte(kv))
	if err != nil || !ok {
		t.Fatalf("RecoverSnapshot: ok=%v err=%v", ok, err)
	}
	if snap.Counters["scram/signals"] != 5 {
		t.Errorf("recovered counter = %d, want 5", snap.Counters["scram/signals"])
	}
	if snap.Gauges["frame/tasks"] != 4 {
		t.Errorf("recovered gauge = %d, want 4", snap.Gauges["frame/tasks"])
	}
	if h := snap.Histograms["w"]; h.Count != 1 || h.Counts[1] != 1 {
		t.Errorf("recovered histogram = %+v", h)
	}

	if _, ok, _ := RecoverSnapshot(map[string][]byte{}); ok {
		t.Error("RecoverSnapshot on empty storage reported ok")
	}
}

func TestWritePromDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b").Inc()
	reg.Counter("a").Inc()
	reg.Gauge("scram/active").Set(1)
	reg.Histogram("lat", 1, 2).Observe(2)

	var first string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := reg.Snapshot().WriteProm(&buf, 10, time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatalf("WriteProm output differs between runs:\n%s\nvs\n%s", first, buf.String())
		}
	}
	for _, want := range []string{
		"# frame 10 virtual_time_ms 10",
		"a 1 10",
		"scram_active 1 10",
		`lat_bucket{le="2"} 1 10`,
		`lat_bucket{le="+Inf"} 1 10`,
		"lat_count 1 10",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, first)
		}
	}
	if strings.Index(first, "\na ") > strings.Index(first, "\nb ") {
		t.Errorf("WriteProm counters not sorted:\n%s", first)
	}
}

func TestRingEvictionAndDropped(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 5; i++ {
		rec.SetFrame(int64(i))
		rec.Record(Event{Kind: KindSignal})
	}
	if rec.Len() != 3 || rec.Dropped() != 2 {
		t.Fatalf("Len/Dropped = %d/%d, want 3/2", rec.Len(), rec.Dropped())
	}
	evs := rec.Events()
	if evs[0].Seq != 2 || evs[0].Frame != 2 || evs[2].Seq != 4 {
		t.Errorf("surviving events = %+v", evs)
	}
}

func TestRecordStampsCurrentFrame(t *testing.T) {
	rec := NewRecorder(0)
	rec.SetFrame(9)
	rec.Record(Event{Kind: KindSignal})
	rec.Record(Event{Kind: KindSignal, Frame: 4})
	evs := rec.Events()
	if evs[0].Frame != 9 {
		t.Errorf("unstamped event frame = %d, want 9", evs[0].Frame)
	}
	if evs[1].Frame != 4 {
		t.Errorf("explicit event frame = %d, want 4", evs[1].Frame)
	}
}

func TestRingPersistRecoverIncremental(t *testing.T) {
	rec := NewRecorder(4)
	kv := memKV{}
	for i := 0; i < 3; i++ {
		rec.SetFrame(int64(i))
		rec.Record(Event{Kind: KindSignal})
	}
	if err := rec.Persist(kv); err != nil {
		t.Fatal(err)
	}
	// Each Persist writes one chunk; a chunk is deleted once every event in
	// it has been evicted from the ring. After three batches of three with
	// capacity 4 the live window is seqs 5..8: the first chunk (seqs 0..2)
	// is fully dead and must be gone, while the second (3..5) still holds
	// seq 5 and stays — recovery may return up to one chunk of surplus
	// history before the live window, never less than the window itself.
	for i := 3; i < 6; i++ {
		rec.SetFrame(int64(i))
		rec.Record(Event{Kind: KindTrigger})
	}
	if err := rec.Persist(kv); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 9; i++ {
		rec.SetFrame(int64(i))
		rec.Record(Event{Kind: KindTrigger})
	}
	if err := rec.Persist(kv); err != nil {
		t.Fatal(err)
	}

	evs, err := RecoverRing(map[string][]byte(kv))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 {
		t.Fatalf("recovered %d events, want 6 (live window 5..8 plus chunk surplus 3..4)", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i+3) {
			t.Errorf("recovered[%d].Seq = %d, want %d", i, e.Seq, i+3)
		}
	}
	if evs[0].Kind != KindTrigger || evs[5].Kind != KindTrigger {
		t.Errorf("recovered kinds = %v...%v", evs[0].Kind, evs[5].Kind)
	}
}

func TestResetPersistenceRewritesRing(t *testing.T) {
	rec := NewRecorder(0)
	old := memKV{}
	rec.SetFrame(1)
	rec.Record(Event{Kind: KindSignal})
	if err := rec.Persist(old); err != nil {
		t.Fatal(err)
	}

	// A takeover moves persistence to a fresh store that has never seen
	// the journal: without a reset the incremental persist would skip the
	// already-persisted prefix.
	fresh := memKV{}
	rec.ResetPersistence()
	rec.SetFrame(2)
	rec.Record(Event{Kind: KindTakeover})
	if err := rec.Persist(fresh); err != nil {
		t.Fatal(err)
	}
	evs, err := RecoverRing(map[string][]byte(fresh))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("recovered %d events after reset, want full ring of 2", len(evs))
	}
}

func TestJournalRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 0, Frame: 1, Kind: KindSignal, App: "monitor", Detail: "power"},
		{Seq: 1, Frame: 2, Kind: KindBudget, Phase: "schedule", Config: "reduced",
			From: "full", Attrs: map[string]int64{"seq": 1, "bound": 8}},
		{Seq: 2, Frame: 3, Kind: KindFrameState, State: &FrameState{Config: "full", Env: "ok"}},
	}
	var buf bytes.Buffer
	if err := WriteJournal(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d events, want %d", len(out), len(in))
	}
	if out[1].Attrs["bound"] != 8 || out[1].Phase != "schedule" {
		t.Errorf("round-tripped event = %+v", out[1])
	}
	if out[2].State == nil || out[2].State.Config != "full" {
		t.Errorf("round-tripped frame state = %+v", out[2].State)
	}
}

func TestSummarizeTimeline(t *testing.T) {
	events := []Event{
		{Seq: 0, Frame: 2, Kind: KindSignal},
		{Seq: 1, Frame: 2, Kind: KindBudget, Phase: "schedule", From: "full", Config: "reduced",
			Attrs: map[string]int64{"seq": 1, "trigger_frame": 2, "halt_start": 3, "halt_end": 3,
				"prep_start": 4, "prep_end": 4, "init_start": 5, "init_end": 6, "bound": 8}},
		{Seq: 2, Frame: 6, Kind: KindBudget, Phase: "window", From: "full", Config: "reduced",
			Attrs: map[string]int64{"seq": 1, "start": 2, "end": 6, "window": 5, "bound": 8, "margin": 3}},
		{Seq: 3, Frame: 9, Kind: KindStorageRepair, Attrs: map[string]int64{"repaired": 2}},
		{Seq: 4, Frame: 10, Kind: KindProcHalt, Host: "p2"},
		{Seq: 5, Frame: 11, Kind: KindTakeover, Host: "p3"},
	}
	s := Summarize(events)
	if len(s.Reconfigs) != 1 {
		t.Fatalf("Reconfigs = %d, want 1", len(s.Reconfigs))
	}
	r := s.Reconfigs[0]
	if !r.Complete() || r.CompleteFrame != 6 || r.WindowFrames != 5 {
		t.Errorf("window = %+v", r)
	}
	if r.Halt.Frames() != 1 || r.Prepare.Frames() != 1 || r.Init.Frames() != 2 {
		t.Errorf("phase spans = halt %+v prepare %+v init %+v", r.Halt, r.Prepare, r.Init)
	}
	if r.BoundFrames != 8 || r.MarginFrames != 3 || r.SignalLatency != 0 {
		t.Errorf("bound/margin/latency = %d/%d/%d", r.BoundFrames, r.MarginFrames, r.SignalLatency)
	}
	if s.Signals != 1 || s.StorageRepairs != 2 || len(s.ProcHalts) != 1 || s.Takeovers != 1 {
		t.Errorf("tallies = %+v", s)
	}
}

func TestSummarizeRetargetContinuesWindow(t *testing.T) {
	events := []Event{
		{Seq: 0, Frame: 1, Kind: KindBudget, Phase: "schedule", From: "full", Config: "reduced",
			Attrs: map[string]int64{"seq": 1, "trigger_frame": 1}},
		{Seq: 1, Frame: 2, Kind: KindRetarget},
		{Seq: 2, Frame: 2, Kind: KindBudget, Phase: "schedule", From: "full", Config: "emergency",
			Attrs: map[string]int64{"seq": 1, "trigger_frame": 1, "retargeted": 1}},
		{Seq: 3, Frame: 5, Kind: KindBudget, Phase: "window", From: "full", Config: "emergency",
			Attrs: map[string]int64{"seq": 1, "start": 1, "end": 5, "window": 5, "retargeted": 1}},
	}
	s := Summarize(events)
	if len(s.Reconfigs) != 1 {
		t.Fatalf("retargeted reconfiguration split into %d records", len(s.Reconfigs))
	}
	r := s.Reconfigs[0]
	if !r.Retargeted || r.Target != "emergency" || r.TriggerFrame != 1 {
		t.Errorf("retargeted record = %+v", r)
	}
}

func TestSummarizeOpenWindow(t *testing.T) {
	events := []Event{
		{Seq: 0, Frame: 3, Kind: KindBudget, Phase: "schedule", From: "full", Config: "reduced",
			Attrs: map[string]int64{"seq": 1, "trigger_frame": 3}},
	}
	s := Summarize(events)
	if len(s.Reconfigs) != 1 || s.Reconfigs[0].Complete() {
		t.Fatalf("open window not reported: %+v", s.Reconfigs)
	}
}

func TestReconstructTrace(t *testing.T) {
	mkState := func(cfg string) *FrameState {
		return &FrameState{Config: "full", Env: "ok",
			Apps: map[spec.AppID]AppSnap{"fcs": {
				Status: trace.StatusNormal, Spec: spec.SpecID("fcs-" + cfg), PreOK: true}}}
	}
	events := []Event{
		{Seq: 0, Frame: 10, Kind: KindFrameState, State: mkState("a")},
		{Seq: 1, Frame: 10, Kind: KindSignal}, // interleaved non-state event
		{Seq: 2, Frame: 11, Kind: KindFrameState, State: mkState("b")},
	}
	tr, base, err := ReconstructTrace("t", time.Millisecond, events)
	if err != nil {
		t.Fatal(err)
	}
	if base != 10 || tr.Len() != 2 {
		t.Fatalf("base=%d len=%d, want 10/2", base, tr.Len())
	}
	if tr.States[0].Cycle != 0 || tr.States[1].Apps["fcs"].Spec != "fcs-b" {
		t.Errorf("reconstructed states = %+v", tr.States)
	}

	// Run-length encoding: frames between two samples repeat the earlier
	// sample's state.
	rle := []Event{
		{Seq: 0, Frame: 10, Kind: KindFrameState, State: mkState("a")},
		{Seq: 1, Frame: 13, Kind: KindFrameState, State: mkState("b")},
	}
	tr, base, err = ReconstructTrace("t", time.Millisecond, rle)
	if err != nil {
		t.Fatal(err)
	}
	if base != 10 || tr.Len() != 4 {
		t.Fatalf("RLE base=%d len=%d, want 10/4", base, tr.Len())
	}
	for cycle, want := range []spec.SpecID{"fcs-a", "fcs-a", "fcs-a", "fcs-b"} {
		if got := tr.States[cycle].Apps["fcs"].Spec; got != want {
			t.Errorf("RLE cycle %d spec = %s, want %s", cycle, got, want)
		}
	}

	ooo := []Event{
		{Seq: 0, Frame: 10, Kind: KindFrameState, State: mkState("a")},
		{Seq: 1, Frame: 9, Kind: KindFrameState, State: mkState("b")},
	}
	if _, _, err := ReconstructTrace("t", time.Millisecond, ooo); err == nil {
		t.Error("ReconstructTrace accepted out-of-order samples")
	}
	if _, _, err := ReconstructTrace("t", time.Millisecond, nil); err == nil {
		t.Error("ReconstructTrace accepted an empty ring")
	}
}
