package telemetry

// Sink is the event-recording surface instrumented components hold. It is
// selected once at construction — either the system's *Recorder or the
// shared NopSink — so the components' event paths carry no nil checks and a
// run with telemetry disabled (Options.TelemetryCapacity < 0) pays one
// dispatch to an empty method instead of a branch at every call site.
type Sink interface {
	// Record appends an event; the no-op sink drops it.
	Record(e Event)
	// SetFrame sets the frame number stamped on subsequent events.
	SetFrame(f int64)
	// Persist stages the recorded state into kv.
	Persist(kv KV) error
	// ResetPersistence forgets which events have been persisted, so the
	// next Persist rewrites everything.
	ResetPersistence()
	// Enabled reports whether events reach a real recorder. Callers that
	// would build an expensive event payload (attribute maps, formatted
	// details) may use it to skip the work when nothing records it.
	Enabled() bool
}

// Enabled implements Sink: a Recorder always records.
func (r *Recorder) Enabled() bool { return true }

// NopSink is the disabled telemetry sink: every method is a no-op. It is
// what components hold when the system runs with telemetry ablated.
type NopSink struct{}

// Record implements Sink.
func (NopSink) Record(Event) {}

// SetFrame implements Sink.
func (NopSink) SetFrame(int64) {}

// Persist implements Sink.
func (NopSink) Persist(KV) error { return nil }

// ResetPersistence implements Sink.
func (NopSink) ResetPersistence() {}

// Enabled implements Sink.
func (NopSink) Enabled() bool { return false }

// OrNop adapts a possibly-nil *Recorder into a Sink. It exists so callers
// holding a nil *Recorder never store it in a Sink interface directly (a
// typed nil would report Enabled and then panic on use).
func OrNop(rec *Recorder) Sink {
	if rec == nil {
		return NopSink{}
	}
	return rec
}
