package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a flight-recorder event.
type Kind string

// Flight-recorder event kinds. The reconfiguration-protocol kinds mirror the
// SCRAM kernel's Table 1 vocabulary; the storage, bus and processor kinds
// record the fault-handling activity of the hardened platform.
const (
	// KindSignal records a failure or environment-change signal reaching
	// the kernel.
	KindSignal Kind = "signal"
	// KindTrigger records the decision to reconfigure.
	KindTrigger Kind = "trigger"
	// KindHalt records the halt command being scheduled.
	KindHalt Kind = "halt"
	// KindPrepare records the prepare command being scheduled.
	KindPrepare Kind = "prepare"
	// KindInitialize records the initialize command being scheduled.
	KindInitialize Kind = "initialize"
	// KindComplete records the end of a reconfiguration.
	KindComplete Kind = "complete"
	// KindRetarget records a mid-window target change.
	KindRetarget Kind = "retarget"
	// KindDeferred records a trigger deferred by the dwell guard.
	KindDeferred Kind = "deferred"
	// KindBudget records a plan's phase windows against the Table 1
	// bounds: Phase "schedule" at plan start, Phase "window" at
	// completion with the consumed frames and remaining margin in Attrs.
	KindBudget Kind = "budget"
	// KindFrameState is the per-frame system-state sample the trace
	// reconstruction is built from.
	KindFrameState Kind = "frame-state"
	// KindStorageRepair records replica records rewritten by read repair
	// or a scrub pass.
	KindStorageRepair Kind = "storage-repair"
	// KindStorageRescue records a commit salvaged by promoting a replica.
	KindStorageRescue Kind = "storage-rescue"
	// KindStorageScrub records a scrub pass that found work to do.
	KindStorageScrub Kind = "storage-scrub"
	// KindStorageUnrecoverable records a storage fault that defeated
	// every replica — the event that halts the owning processor.
	KindStorageUnrecoverable Kind = "storage-unrecoverable"
	// KindBusFault records an injected bus fault acting on a message.
	KindBusFault Kind = "bus-fault"
	// KindProcHalt records a fail-stop processor halt.
	KindProcHalt Kind = "proc-halt"
	// KindTakeover records a standby SCRAM kernel assuming control.
	KindTakeover Kind = "takeover"
	// KindTakeoverRefused records a takeover candidate fail-stopping
	// because no restorable snapshot survived validation.
	KindTakeoverRefused Kind = "takeover-refused"
	// KindMemberJoin records a processor entering the membership view (or
	// being promoted to a takeover-eligible standby after catch-up).
	KindMemberJoin Kind = "member-join"
	// KindMemberLeave records a verified graceful leave.
	KindMemberLeave Kind = "member-leave"
	// KindMemberEvict records a crash-detected eviction from the view.
	KindMemberEvict Kind = "member-evict"
	// KindMembershipReject records a membership change refused by online
	// re-verification; the prior epoch kept serving.
	KindMembershipReject Kind = "membership-reject"
	// KindMembershipConverge records the self-stabilization path
	// re-committing a legal membership record over a corrupt or divergent
	// one.
	KindMembershipConverge Kind = "membership-converge"
	// KindSpanStart opens a causal-trace span (see span.go): Phase names
	// the span, and the trace/span/parent identities ride in Attrs. A
	// start event whose Attrs carry SpanAttrEnd is an instantaneous span
	// with no matching end event.
	KindSpanStart Kind = "span-start"
	// KindSpanEnd closes a span opened by a KindSpanStart with the same
	// span attribute. A fail-stop halt mid-span leaves the start event in
	// the recovered ring with no end — the open span is the evidence.
	KindSpanEnd Kind = "span-end"
	// KindTrim records the retention horizon advancing: events older than
	// the horizon were dropped from the ring (and their persisted chunks
	// deleted at the next Persist). Attrs carry the cumulative trimmed
	// count and the horizon frame, so a recovered journal states exactly
	// how much history retention discarded before the crash.
	KindTrim Kind = "journal-trim"
)

// Event is one flight-recorder entry. Frame is the only timestamp: the
// recorder never touches a wall clock.
type Event struct {
	// Seq is the recorder-assigned sequence number, monotone across the
	// whole execution (it keeps counting past ring evictions).
	Seq int64 `json:"seq"`
	// Frame is the frame the event was recorded in.
	Frame int64 `json:"frame"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// App names the application the event concerns, when any.
	App string `json:"app,omitempty"`
	// Host names the processor (or store) the event concerns, when any.
	Host string `json:"host,omitempty"`
	// Config names the (target) configuration the event concerns.
	Config string `json:"config,omitempty"`
	// From names the source configuration, for reconfiguration events.
	From string `json:"from,omitempty"`
	// Phase qualifies the event within its kind ("schedule", "window",
	// a protocol phase name, a bus fault action).
	Phase string `json:"phase,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
	// Attrs carries structured numeric attributes (frame windows, bounds,
	// counts).
	Attrs map[string]int64 `json:"attrs,omitempty"`
	// State is the per-frame system-state sample of a KindFrameState
	// event.
	State *FrameState `json:"state,omitempty"`
}

// String renders the event for the journal dump.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "f%-5d #%-5d %-21s", e.Frame, e.Seq, e.Kind)
	if e.Phase != "" {
		fmt.Fprintf(&b, " %s", e.Phase)
	}
	if e.From != "" && e.Config != "" {
		fmt.Fprintf(&b, " %s->%s", e.From, e.Config)
	} else if e.Config != "" {
		fmt.Fprintf(&b, " %s", e.Config)
	}
	if e.App != "" {
		fmt.Fprintf(&b, " app=%s", e.App)
	}
	if e.Host != "" {
		fmt.Fprintf(&b, " host=%s", e.Host)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	if len(e.Attrs) > 0 {
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" [")
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%d", k, e.Attrs[k])
		}
		b.WriteByte(']')
	}
	return b.String()
}

// DefaultCapacity is the default ring size. At one frame-state event plus a
// handful of protocol events per frame, it covers on the order of a
// thousand frames of history — enough for every campaign in the repository
// while keeping the per-frame persistence delta small.
const DefaultCapacity = 4096

// eventKeyPrefix namespaces the persisted event-chunk records. The chunks
// are self-describing — every event carries its sequence number — so no
// separate bookkeeping record is persisted alongside them.
const eventKeyPrefix = "telemetry/ev/"

// chunkRef locates one persisted chunk: the first sequence number it covers
// and its storage key.
type chunkRef struct {
	start int64
	key   string
}

// eventKey returns the stable-storage key for one event. Sequence numbers
// are zero-padded hex so lexicographic key order is recovery order. Built by
// hand (one allocation, no fmt state) because Persist derives a key per new
// and per evicted event on the frame-commit path.
func eventKey(seq int64) string {
	var b [len(eventKeyPrefix) + 16]byte
	copy(b[:], eventKeyPrefix)
	for i := 15; i >= 0; i-- {
		b[len(eventKeyPrefix)+i] = hexDigits[seq&0xf]
		seq >>= 4
	}
	return string(b[:])
}

// Recorder is the bounded flight-recorder ring. Record appends; when the
// ring is full the oldest event is evicted (and its stable-storage key
// deleted at the next Persist). A Recorder is safe for concurrent use
// within a frame; persistence happens from the frame-commit path only.
//
// The buffer is circular: buf[head] is the oldest surviving event and
// eviction overwrites in place, so Record stays O(1) once the ring fills.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	buf      []Event
	head     int   // index of the oldest event
	count    int   // number of live events
	seq      int64 // next sequence number
	frame    int64
	dropped  int64
	// persistLo/persistHi delimit the seq range currently staged or
	// committed in the backing KV: [persistLo, persistHi).
	persistLo int64
	persistHi int64
	// chunks lists every chunk record currently in the backing KV, oldest
	// first: the first sequence number it covers and its storage key
	// (allocated once at write, reused at delete). Persist writes each
	// frame's new events as one chunk and deletes a chunk only once every
	// event in it has been evicted, so the persisted journal may retain up
	// to one chunk of history beyond the live ring — harmless surplus for
	// recovery, and it keeps the store traffic at one record per
	// event-carrying frame instead of one per event.
	chunks []chunkRef
	// enc is the reused event encoder of the persistence path; guarded by
	// mu. Its buffer doubles as the open chunk's retained encoding (below).
	enc eventEncoder
	// openKey/openStart identify the open chunk: the most recent chunk,
	// still accepting appends. Each Persist splices the frame's new events
	// into the retained encoding (enc.buf) before its closing bracket and
	// re-puts the same key, so consecutive frames recycle one stable-store
	// buffer per chunk instead of staging a fresh key per frame. The chunk
	// seals once its encoding passes openChunkSealBytes; the next events
	// start a new one. Empty openKey means no chunk is open.
	openKey   string
	openStart int64
	// retain is the retention horizon in frames: at each SetFrame(f) with
	// retain > 0, events from frames before f-retain are evicted. Zero
	// keeps the original capacity-only eviction.
	retain int64
	// trimmed counts events evicted by the retention horizon (dropped
	// counts capacity evictions; the two are disjoint).
	trimmed int64
	// trimNoted is the trimmed total already announced by a KindTrim
	// event, so the note cadence stays one event per noteEvery frames no
	// matter how many events each trim evicts.
	trimNoted int64
}

// trimNoteEvery is the frame cadence of KindTrim announcements. Aligned
// with the metrics persistence cadence so a weeks-long run's journal
// carries a sparse, bounded record of its own trimming.
const trimNoteEvery = 512

// openChunkSealBytes is the encoded size past which the open chunk seals.
// Every Persist while the chunk is open re-copies and re-checksums the whole
// chunk through the store's commit path, so the threshold trades per-frame
// commit bandwidth against journal key count — small enough to keep the
// re-put no bigger than a typical fresh chunk, large enough that quiet
// frames' one-event deltas still coalesce into one record.
const openChunkSealBytes = 512

// NewRecorder returns a recorder with the given ring capacity;
// non-positive means DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{capacity: capacity}
}

// SetFrame sets the frame number stamped on subsequently recorded events.
// The scheduler's frame observer calls it at each frame start. With a
// retention horizon configured, SetFrame is also where the horizon
// advances: eviction is driven purely by the frame number, so a replayed
// run trims at exactly the frames the original did and the retained
// journal stays byte-identical.
func (r *Recorder) SetFrame(f int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frame = f
	if r.retain <= 0 || f <= r.retain {
		return
	}
	horizon := f - r.retain
	for r.count > 0 {
		old := &r.buf[r.head]
		if old.Frame >= horizon {
			break
		}
		if r.persistHi > 0 && old.Seq >= r.persistHi {
			// Never trim an event the journal has not staged yet: the
			// retained window must stay recoverable, and the horizon is
			// many frames behind the per-frame persistence anyway.
			break
		}
		r.head = (r.head + 1) % r.capacity
		r.count--
		r.trimmed++
	}
	if r.trimmed > r.trimNoted && f%trimNoteEvery == 0 {
		//lint:allow allocfree retention note: one map every trimNoteEvery frames, amortized far below the per-frame budget
		r.recordLocked(Event{Frame: f, Kind: KindTrim, Attrs: map[string]int64{
			"trimmed": r.trimmed,
			"horizon": horizon,
		}})
		r.trimNoted = r.trimmed
	}
}

// SetRetention sets the retention horizon in frames; 0 (the default)
// disables frame-based trimming. The horizon is configuration, not state:
// a recovered or replayed system must run with the same retention as the
// original for the journals to match.
func (r *Recorder) SetRetention(frames int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retain = frames
}

// Trimmed returns the number of events evicted by the retention horizon.
func (r *Recorder) Trimmed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trimmed
}

// FrameNum returns the current frame number.
func (r *Recorder) FrameNum() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frame
}

// Record appends an event, assigning its sequence number. A zero Frame is
// stamped with the recorder's current frame; an explicit non-zero Frame is
// kept.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordLocked(e)
}

// recordLocked is Record under the caller's lock; SetFrame uses it to emit
// retention notes from inside the trim path.
func (r *Recorder) recordLocked(e Event) {
	e.Seq = r.seq
	r.seq++
	if e.Frame == 0 {
		e.Frame = r.frame
	}
	if len(r.buf) < r.capacity {
		// Still growing: plain append, so a quiet system never pays for
		// the full ring allocation. head + count always equals len(buf)
		// in this phase (retention trims advance head without wrapping),
		// so the new event's slot is exactly the append position.
		r.buf = append(r.buf, e)
		r.count++
		return
	}
	if r.count < r.capacity {
		r.buf[(r.head+r.count)%r.capacity] = e
		r.count++
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % r.capacity
	r.dropped++
}

// Len returns the number of events currently in the ring.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Dropped returns the number of events evicted so far.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the ring contents in sequence order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	//lint:allow allocfree snapshot-copy surface: an immutable copy is the point; per-frame only under the opt-in live telemetry plane's publish hook
	out := make([]Event, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%r.capacity]
	}
	return out
}

// Persist stages the ring delta into kv: events recorded since the last
// Persist are written as one chunk record (a JSON array keyed by the
// chunk's first sequence number), chunks whose events have all been evicted
// are deleted, and the ring bookkeeping record is refreshed. The writes
// become durable at the owning processor's next frame-boundary commit, so
// after a fail-stop halt the recovered ring reflects the last committed
// frame — the black box trails the live ring by at most one frame, exactly
// the staged writes the halt destroys.
func (r *Recorder) Persist(kv KV) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	lo := r.seq - int64(r.count)
	if lo == r.persistLo && r.seq == r.persistHi && r.persistHi > 0 {
		// Nothing recorded or evicted since the last Persist: the staged
		// journal is already current, so frames without events cost no
		// stable-storage traffic at all.
		return nil
	}
	// Drop chunks that no longer hold any live event: a chunk's events end
	// where the next chunk begins, so chunk i is dead once chunk i+1 starts
	// at or below the ring's oldest surviving sequence number.
	for len(r.chunks) > 1 && r.chunks[1].start <= lo {
		kv.Delete(r.chunks[0].key)
		r.chunks = r.chunks[1:]
	}
	start := r.persistHi
	if start < lo {
		start = lo
	}
	if start < r.seq {
		// Hand-rolled encoding (see encode.go): byte-identical to
		// json.Marshal without the per-event reflection allocations. The
		// store copies what it keeps, so the reused buffer is safe to hand
		// over.
		var buf []byte
		if r.openKey == "" || len(r.enc.buf) >= openChunkSealBytes || r.openStart < lo {
			// A chunk also seals once the ring evicts past its first event
			// (openStart < lo): leaving it open would grow the persisted
			// surplus past the one-chunk bound and pin it against deletion.
			// Seal the previous chunk (if any) and open a new one.
			r.openKey = eventKey(start)
			r.openStart = start
			r.chunks = append(r.chunks, chunkRef{start: start, key: r.openKey})
			buf = append(r.enc.buf[:0], '[')
		} else {
			// Splice this frame's events into the open chunk before its
			// closing bracket and re-put the same key: the store retires
			// the displaced committed buffer into its pool, and the next
			// frame's slightly larger re-put takes it right back.
			buf = r.enc.buf[:len(r.enc.buf)-1]
		}
		for s := start; s < r.seq; s++ {
			if buf[len(buf)-1] != '[' {
				buf = append(buf, ',')
			}
			buf = r.enc.appendEventTo(buf, &r.buf[(r.head+int(s-lo))%r.capacity])
		}
		buf = append(buf, ']')
		r.enc.buf = buf
		kv.Put(r.openKey, buf)
	}
	r.persistLo = lo
	r.persistHi = r.seq
	return nil
}

// ResetPersistence forgets which events have been persisted, so the next
// Persist rewrites the whole ring. A standby processor taking over the
// SCRAM calls it: the standby's stable store holds none of the primary's
// journal, and the rewrite seeds it with the full surviving ring.
func (r *Recorder) ResetPersistence() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.persistLo = 0
	r.persistHi = 0
	r.chunks = r.chunks[:0]
	r.openKey = ""
	r.openStart = 0
	r.enc.buf = r.enc.buf[:0]
}

// RecoverRing reads the flight-recorder journal out of a stable-storage
// snapshot (as returned by polling a halted processor's stable storage) and
// returns the events in sequence order.
func RecoverRing(snap map[string][]byte) ([]Event, error) {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		if strings.HasPrefix(k, eventKeyPrefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	events := make([]Event, 0, len(keys))
	for _, k := range keys {
		raw := snap[k]
		if len(raw) > 0 && raw[0] == '[' {
			// A chunk record: all events one Persist call staged together.
			var chunk []Event
			if err := json.Unmarshal(raw, &chunk); err != nil {
				return nil, fmt.Errorf("telemetry: decoding recovered event chunk %q: %w", k, err)
			}
			events = append(events, chunk...)
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("telemetry: decoding recovered event %q: %w", k, err)
		}
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return events, nil
}

// WriteJournal writes events as a JSONL journal: one JSON-encoded event per
// line.
func WriteJournal(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("telemetry: writing journal: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJournal reads a JSONL journal written by WriteJournal.
func ReadJournal(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("telemetry: journal line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading journal: %w", err)
	}
	return events, nil
}
