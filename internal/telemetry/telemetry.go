// Package telemetry is the deterministic, frame-synchronous observability
// layer: a metrics registry (counters, gauges, frame-bucketed histograms)
// and a bounded flight-recorder ring of structured events. Everything is
// timestamped by frame number / virtual time only — the package never reads
// a wall clock and never starts a goroutine, so it lives inside the
// frame-determinism boundary enforced by archlint (framedet,
// nofreegoroutine) and its output is replay-stable across runs.
//
// The flight-recorder ring is persisted through the end-of-frame
// stable-storage commit of the SCRAM host processor. Under the fail-stop
// model of Schlichting and Schneider that the paper assumes, stable storage
// survives a processor halt and remains pollable, so the ring is a black
// box: after the processor dies, RecoverRing reads the journal back out of
// the stable-storage snapshot, and ReconstructTrace turns it into the same
// sys_trace the SP1-SP4 checkers verify on live executions.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/det"
)

// KV is the staged-write surface the telemetry layer persists through. It is
// the subset of *stable.Store the package needs; keeping it an interface
// here avoids an import cycle (stable itself is instrumented by telemetry).
// Writes land in the staged area and take effect at the owning processor's
// next frame-boundary commit, so persisted telemetry obeys the same
// stable/volatile split as every other frame-end commit.
type KV interface {
	Put(key string, val []byte)
	Delete(key string)
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that may move in either direction.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultFrameBuckets is the default histogram bucketing: frame counts, with
// Fibonacci-spaced upper bounds. Reconfiguration windows, phase lengths and
// signal latencies are all small frame counts, which these buckets resolve
// well.
var DefaultFrameBuckets = []int64{1, 2, 3, 5, 8, 13, 21, 34, 55}

// Histogram is a frame-bucketed distribution: observations are integer frame
// counts and each bucket counts observations less than or equal to its upper
// bound, with a final implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64
	counts []int64 // len(bounds)+1; last is +Inf
	count  int64
	sum    int64
	max    int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// HistogramSnapshot is a histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the inclusive bucket upper bounds; an implicit +Inf
	// bucket follows the last.
	Bounds []int64 `json:"bounds"`
	// Counts holds one entry per bucket, len(Bounds)+1.
	Counts []int64 `json:"counts"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
	// Max is the largest observed value.
	Max int64 `json:"max"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts:
// the winning bucket is found by cumulative rank, and the value is linearly
// interpolated across the bucket's inclusive integer range. Observations in
// the overflow bucket are attributed to Max (the only per-value fact the
// histogram retains past the last bound). An empty histogram reports 0. The
// estimate is a pure function of the snapshot, so replays and recovered
// journals reproduce it byte-identically.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if rank > cum+c {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			return s.Max
		}
		lo := int64(1)
		if i > 0 {
			lo = s.Bounds[i-1] + 1
		}
		hi := s.Bounds[i]
		if hi <= lo {
			return hi
		}
		// Position of the target rank within this bucket's count mass.
		frac := float64(rank-cum) / float64(c)
		v := lo + int64(math.Round(frac*float64(hi-lo)))
		if v > hi {
			v = hi
		}
		return v
	}
	return s.Max
}

// Snapshot freezes the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		//lint:allow allocfree snapshot-copy surface: the frozen copy is the point; per-frame only under the opt-in live telemetry plane's publish hook
		Bounds: append([]int64(nil), h.bounds...),
		//lint:allow allocfree snapshot-copy surface, as above
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Max:    h.max,
	}
	return s
}

// Registry holds the system's metrics, keyed by stable slash-separated names
// ("scram/triggers", "stable/p1/read_repairs"). Metric handles are resolved
// once and then updated lock-free on the hot path; all iteration is in
// sorted name order so exports are deterministic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// Sorted name lists, cached between snapshots: the metric name set is
	// static once a system has warmed up, while Snapshot runs on every
	// metrics-persist cadence and at campaign collection. Nil = rebuild.
	counterNames, gaugeNames, histNames []string
	// encBuf is the reused Persist encoding buffer; guarded by mu.
	encBuf []byte
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.counterNames = nil
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.gaugeNames = nil
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (DefaultFrameBuckets when none are supplied) on first use.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefaultFrameBuckets
		}
		bs := append([]int64(nil), bounds...)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.hists[name] = h
		r.histNames = nil
	}
	return h
}

// Snapshot is a frozen, JSON-serializable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		//lint:allow allocfree snapshot-copy surface: the frozen copy is the point; per-frame only under the opt-in live telemetry plane's publish hook
		Counters: make(map[string]int64, len(r.counters)),
		//lint:allow allocfree snapshot-copy surface, as above
		Gauges: make(map[string]int64, len(r.gauges)),
		//lint:allow allocfree snapshot-copy surface, as above
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	if r.counterNames == nil {
		r.counterNames = det.SortedKeys(r.counters)
	}
	if r.gaugeNames == nil {
		r.gaugeNames = det.SortedKeys(r.gauges)
	}
	if r.histNames == nil {
		r.histNames = det.SortedKeys(r.hists)
	}
	for _, name := range r.counterNames {
		s.Counters[name] = r.counters[name].Value()
	}
	for _, name := range r.gaugeNames {
		s.Gauges[name] = r.gauges[name].Value()
	}
	for _, name := range r.histNames {
		s.Histograms[name] = r.hists[name].Snapshot()
	}
	return s
}

// metricsKey is the stable-storage key the registry snapshot persists under.
// The "telemetry/" prefix keeps it outside the kernel-only "scram/"
// namespace the statusdiscipline analyzer guards.
const metricsKey = "telemetry/metrics"

// Persist stages the registry snapshot into kv; it becomes durable at the
// owning processor's next frame-boundary commit. The snapshot is encoded by
// hand into a reused buffer — byte-identical to json.Marshal of Snapshot,
// which TestRegistryPersistMatchesStdlib pins — because Persist runs on the
// metrics cadence of the frame loop and the reflection walk over three maps
// of metrics allocated kilobytes per call.
func (r *Registry) Persist(kv KV) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counterNames == nil {
		r.counterNames = det.SortedKeys(r.counters)
	}
	if r.gaugeNames == nil {
		r.gaugeNames = det.SortedKeys(r.gauges)
	}
	if r.histNames == nil {
		r.histNames = det.SortedKeys(r.hists)
	}
	buf := append(r.encBuf[:0], '{')
	if len(r.counterNames) > 0 {
		buf = append(buf, `"counters":{`...)
		for i, name := range r.counterNames {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, name)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, r.counters[name].Value(), 10)
		}
		buf = append(buf, '}')
	}
	if len(r.gaugeNames) > 0 {
		if len(buf) > 1 {
			buf = append(buf, ',')
		}
		buf = append(buf, `"gauges":{`...)
		for i, name := range r.gaugeNames {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, name)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, r.gauges[name].Value(), 10)
		}
		buf = append(buf, '}')
	}
	if len(r.histNames) > 0 {
		if len(buf) > 1 {
			buf = append(buf, ',')
		}
		buf = append(buf, `"histograms":{`...)
		for i, name := range r.histNames {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, name)
			buf = append(buf, ':')
			buf = appendHistogram(buf, r.hists[name])
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}')
	r.encBuf = buf
	kv.Put(metricsKey, buf)
	return nil
}

// appendHistogram appends h's state as the JSON encoding/json produces for
// HistogramSnapshot.
func appendHistogram(buf []byte, h *Histogram) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	buf = append(buf, `{"bounds":`...)
	buf = appendInt64s(buf, h.bounds)
	buf = append(buf, `,"counts":`...)
	buf = appendInt64s(buf, h.counts)
	buf = append(buf, `,"count":`...)
	buf = strconv.AppendInt(buf, h.count, 10)
	buf = append(buf, `,"sum":`...)
	buf = strconv.AppendInt(buf, h.sum, 10)
	buf = append(buf, `,"max":`...)
	buf = strconv.AppendInt(buf, h.max, 10)
	return append(buf, '}')
}

// appendInt64s appends vs as a JSON array (null when nil, matching
// encoding/json's treatment of nil slices).
func appendInt64s(buf []byte, vs []int64) []byte {
	if vs == nil {
		return append(buf, "null"...)
	}
	buf = append(buf, '[')
	for i, v := range vs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, v, 10)
	}
	return append(buf, ']')
}

// RecoverSnapshot reads the registry snapshot persisted by Persist back out
// of a stable-storage snapshot. ok is false when none was persisted.
func RecoverSnapshot(snap map[string][]byte) (Snapshot, bool, error) {
	raw, ok := snap[metricsKey]
	if !ok {
		return Snapshot{}, false, nil
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return Snapshot{}, true, fmt.Errorf("telemetry: decoding metrics snapshot: %w", err)
	}
	return s, true, nil
}

// promName maps a slash-separated metric name onto the Prometheus exposition
// charset.
func promName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm writes the snapshot in Prometheus text exposition format, keyed
// by virtual time: every sample carries the virtual-time timestamp in
// milliseconds derived from the frame number and frame length, never a wall
// clock. The output is byte-identical across replays of the same execution.
func (s Snapshot) WriteProm(w io.Writer, frameNum int64, frameLen time.Duration) error {
	vtMillis := (time.Duration(frameNum) * frameLen).Milliseconds()
	if _, err := fmt.Fprintf(w, "# frame %d virtual_time_ms %d\n", frameNum, vtMillis); err != nil {
		return err
	}
	names := det.SortedKeysInto(nil, s.Counters)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d %d\n", n, n, s.Counters[name], vtMillis); err != nil {
			return err
		}
	}
	names = det.SortedKeysInto(names, s.Gauges)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d %d\n", n, n, s.Gauges[name], vtMillis); err != nil {
			return err
		}
	}
	for _, name := range det.SortedKeysInto(names, s.Histograms) {
		n := promName(name)
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d %d\n", n, bound, cum, vtMillis); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d %d\n%s_sum %d %d\n%s_count %d %d\n",
			n, cum, vtMillis, n, h.Sum, vtMillis, n, h.Count, vtMillis); err != nil {
			return err
		}
	}
	return nil
}
