package telemetry

import "sync"

// Span attribute keys. Span identity rides in the ordinary Event attribute
// map, so span events need no new Event fields, no encoder changes, and —
// because they are plain ring events — they inherit the black box's
// persistence contract for free: a fail-stop halt mid-window leaves every
// already-opened span's start event in the recovered journal, with the
// close event missing, which is exactly the truth.
const (
	// SpanAttrTrace is the causal trace a span belongs to. A span-start
	// recorded before the kernel has decided whether the signal leads
	// anywhere carries no trace yet; the close event supplies it and the
	// assembler joins the two by span ID.
	SpanAttrTrace = "trace"
	// SpanAttrSpan is the span's own identifier, unique within a run.
	SpanAttrSpan = "span"
	// SpanAttrParent is the parent span's identifier; absent on roots.
	SpanAttrParent = "parent"
	// SpanAttrEnd marks an instantaneous span: a single span-start event
	// whose end frame is known at emission (decision, retarget, epoch
	// marks), so no separate span-end event is recorded.
	SpanAttrEnd = "end"
)

// Span names used by the instrumented subsystems. The vocabulary mirrors
// the paper's protocol: a signal is detected, the kernel decides, the
// halt/prepare/initialize phases elapse, the window completes (possibly
// chaining into an urgent follow-up), and membership epoch changes mark
// the view the whole exchange ran under.
const (
	SpanReconfig = "reconfig"
	SpanSignal   = "signal"
	SpanDecision = "decision"
	SpanHalt     = "halt"
	SpanPrepare  = "prepare"
	SpanInit     = "init"
	SpanRetarget = "retarget"
	SpanChain    = "chain"
	SpanEpoch    = "epoch"
)

// maxChainDepth bounds the book's preallocated stack of open chain spans.
// A chain deeper than the configuration count cannot occur (every chained
// plan moves to a configuration the choice function currently demands),
// so eight slots is comfortably past any declarable system.
const maxChainDepth = 8

// SpanBook allocates deterministic span and trace identities and records
// span events into the flight recorder. One book serves one system; all
// state is preallocated at construction (the open-trace slot, the chain
// stack, the ID counters), so steady frames — which open no spans — do no
// span work at all, and protocol frames allocate only the span events
// themselves, charged to the reconfiguration window like every other
// protocol event.
//
// Identity is deterministic: trace IDs hash the book's seed with the
// opening signal frame and a per-book trace ordinal, and span IDs are a
// plain ordinal sequence. Equal seeds and equal frame histories therefore
// yield byte-identical span events, which is what lets campaign reports
// aggregate traces across worker counts and lets a recovered ring
// reconstruct the live trace exactly.
//
// All methods are nil-receiver safe no-ops, so instrumented subsystems
// carry a possibly-nil *SpanBook without per-call checks. Methods must be
// called from frame-commit hooks (single-threaded); the mutex exists for
// the Enabled check from concurrent readers, not to make span opening from
// racing task goroutines deterministic — it cannot.
type SpanBook struct {
	mu   sync.Mutex
	sink Sink
	seed int64

	lastSpan   int64                // last allocated span ID
	traces     int64                // trace ordinal, feeds trace-ID derivation
	trace      int64                // open reconfiguration trace, 0 when none
	root       int64                // open trace's root span
	chain      [maxChainDepth]int64 // open chain spans, innermost last
	chainDepth int
}

// NewSpanBook returns a book recording into rec (nil rec yields a book
// whose every method is a no-op). The seed salts trace IDs so runs of
// different campaign seeds produce distinct trace identities; equal seeds
// reproduce them.
func NewSpanBook(seed int64, rec *Recorder) *SpanBook {
	return &SpanBook{seed: seed, sink: OrNop(rec)}
}

// Enabled reports whether span events reach a live recorder.
func (b *SpanBook) Enabled() bool {
	if b == nil {
		return false
	}
	return b.sink.Enabled()
}

// traceIDFor derives a trace identity from the book's seed, the signal
// frame that opened it, and the trace ordinal — FNV-1a over the three
// words, masked positive so the ID survives the int64 attribute encoding
// unambiguously and renders as a stable 16-hex-digit token.
func traceIDFor(seed, sigFrame, ordinal int64) int64 {
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range [3]uint64{uint64(seed), uint64(sigFrame), uint64(ordinal)} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	id := int64(h & 0x7fffffffffffffff)
	if id == 0 {
		id = 1 // 0 means "no trace"
	}
	return id
}

// nextSpan allocates the next span ID. Caller holds b.mu.
func (b *SpanBook) nextSpan() int64 {
	b.lastSpan++
	return b.lastSpan
}

// OpenPending records a span-start that belongs to no trace yet — the
// signal-detection span, opened when the monitor's report is delivered to
// the kernel, before the kernel has decided whether it triggers anything.
// The close supplies the trace. Returns the span ID to carry on the
// signal.
func (b *SpanBook) OpenPending(f int64, name string, e Event) int64 {
	if !b.Enabled() {
		return 0
	}
	b.mu.Lock()
	id := b.nextSpan()
	b.mu.Unlock()
	e.Frame = f
	e.Kind = KindSpanStart
	e.Phase = name
	e.Attrs = withSpanAttrs(e.Attrs, 0, id, 0)
	b.sink.Record(e)
	return id
}

// ClosePending closes a pending span, adopting it into the open trace as a
// child of the current parent when one is open (the signal that produced a
// trigger), or leaving it traceless (a signal the choice function decided
// needed nothing).
func (b *SpanBook) ClosePending(f int64, id int64, e Event) {
	if id == 0 || !b.Enabled() {
		return
	}
	b.mu.Lock()
	trace, parent := b.trace, b.parentLocked()
	b.mu.Unlock()
	e.Frame = f
	e.Kind = KindSpanEnd
	e.Attrs = withSpanAttrs(e.Attrs, trace, id, parent)
	b.sink.Record(e)
}

// OpenTrace opens a reconfiguration trace: a fresh trace ID derived from
// the signal frame, with a root span starting at f. At most one trace is
// open per book; opening while one is open closes the old root first
// (defensive — the kernel's window structure should never do it).
func (b *SpanBook) OpenTrace(f, sigFrame int64, e Event) (trace, root int64) {
	if !b.Enabled() {
		return 0, 0
	}
	b.mu.Lock()
	if b.trace != 0 {
		b.mu.Unlock()
		b.CloseTrace(f, Event{Detail: "superseded"})
		b.mu.Lock()
	}
	b.traces++
	b.trace = traceIDFor(b.seed, sigFrame, b.traces)
	b.root = b.nextSpan()
	trace, root = b.trace, b.root
	b.mu.Unlock()
	e.Frame = f
	e.Kind = KindSpanStart
	e.Phase = SpanReconfig
	e.Attrs = withSpanAttrs(e.Attrs, trace, root, 0)
	b.sink.Record(e)
	return trace, root
}

// CloseTrace closes the open trace's root span (and any chain spans still
// open above it) at frame f. The event's attributes carry the realized
// window against its declared bound.
func (b *SpanBook) CloseTrace(f int64, e Event) {
	if !b.Enabled() {
		return
	}
	b.mu.Lock()
	trace, root := b.trace, b.root
	depth := b.chainDepth
	chains := b.chain
	b.trace, b.root, b.chainDepth = 0, 0, 0
	b.mu.Unlock()
	if trace == 0 {
		return
	}
	for i := depth - 1; i >= 0; i-- {
		b.sink.Record(Event{
			Frame: f,
			Kind:  KindSpanEnd,
			Phase: SpanChain,
			Attrs: withSpanAttrs(nil, trace, chains[i], 0),
		})
	}
	e.Frame = f
	e.Kind = KindSpanEnd
	e.Phase = SpanReconfig
	e.Attrs = withSpanAttrs(e.Attrs, trace, root, 0)
	b.sink.Record(e)
}

// OpenChain opens a chained-urgent follow-up span under the current
// parent: the trace stays open, and subsequent child spans (the chained
// plan's phases) parent to the chain span, recording the causal link the
// paper's fused window semantics imply.
func (b *SpanBook) OpenChain(f int64, e Event) int64 {
	if !b.Enabled() {
		return 0
	}
	b.mu.Lock()
	if b.trace == 0 || b.chainDepth == maxChainDepth {
		b.mu.Unlock()
		return 0
	}
	parent := b.parentLocked()
	id := b.nextSpan()
	b.chain[b.chainDepth] = id
	b.chainDepth++
	trace := b.trace
	b.mu.Unlock()
	e.Frame = f
	e.Kind = KindSpanStart
	e.Phase = SpanChain
	e.Attrs = withSpanAttrs(e.Attrs, trace, id, parent)
	b.sink.Record(e)
	return id
}

// OpenSpan opens a named child span under the current parent (the chain
// span when one is open, the trace root otherwise).
func (b *SpanBook) OpenSpan(f int64, name string, e Event) int64 {
	if !b.Enabled() {
		return 0
	}
	b.mu.Lock()
	trace, parent := b.trace, b.parentLocked()
	id := b.nextSpan()
	b.mu.Unlock()
	e.Frame = f
	e.Kind = KindSpanStart
	e.Phase = name
	e.Attrs = withSpanAttrs(e.Attrs, trace, id, parent)
	b.sink.Record(e)
	return id
}

// CloseSpan closes a span opened with OpenSpan at frame f.
func (b *SpanBook) CloseSpan(f int64, id int64, name string, e Event) {
	if id == 0 || !b.Enabled() {
		return
	}
	b.mu.Lock()
	trace := b.trace
	b.mu.Unlock()
	e.Frame = f
	e.Kind = KindSpanEnd
	e.Phase = name
	e.Attrs = withSpanAttrs(e.Attrs, trace, id, 0)
	b.sink.Record(e)
}

// Mark records an instantaneous span (start == end == f) as a single
// event. Inside an open trace it becomes a child of the current parent;
// outside, it opens and closes its own single-span trace — a membership
// epoch bump in quiet operation is still a first-class observable.
func (b *SpanBook) Mark(f int64, name string, e Event) {
	if !b.Enabled() {
		return
	}
	b.mu.Lock()
	trace, parent := b.trace, b.parentLocked()
	if trace == 0 {
		b.traces++
		trace = traceIDFor(b.seed, f, b.traces)
	}
	id := b.nextSpan()
	b.mu.Unlock()
	e.Frame = f
	e.Kind = KindSpanStart
	e.Phase = name
	e.Attrs = withSpanAttrs(e.Attrs, trace, id, parent)
	e.Attrs[SpanAttrEnd] = f
	b.sink.Record(e)
}

// parentLocked returns the current parent span for new children: the
// innermost open chain span, else the trace root, else 0.
func (b *SpanBook) parentLocked() int64 {
	if b.chainDepth > 0 {
		return b.chain[b.chainDepth-1]
	}
	return b.root
}

// withSpanAttrs stamps the structural span attributes onto attrs,
// allocating the map when the caller supplied none. Zero values are
// omitted: 0 is "no trace" / "no parent".
func withSpanAttrs(attrs map[string]int64, trace, span, parent int64) map[string]int64 {
	if attrs == nil {
		attrs = make(map[string]int64, 4)
	}
	attrs[SpanAttrSpan] = span
	if trace != 0 {
		attrs[SpanAttrTrace] = trace
	}
	if parent != 0 {
		attrs[SpanAttrParent] = parent
	}
	return attrs
}
