package telemetry

import (
	"fmt"
	"sort"
	"strconv"
)

// Span is one assembled causal-trace span: the join of a span-start event
// with its span-end (when one was recorded). An End of -1 is an open span
// — either still running when the ring was read, or orphaned by a
// fail-stop halt mid-span, which is precisely the evidence the black box
// exists to preserve.
type Span struct {
	ID     int64            `json:"id"`
	Parent int64            `json:"parent,omitempty"`
	Trace  int64            `json:"trace,omitempty"`
	Name   string           `json:"name"`
	App    string           `json:"app,omitempty"`
	Config string           `json:"config,omitempty"`
	From   string           `json:"from,omitempty"`
	Detail string           `json:"detail,omitempty"`
	Start  int64            `json:"start"`
	End    int64            `json:"end"`
	Attrs  map[string]int64 `json:"attrs,omitempty"`
}

// Frames returns the span's inclusive frame count, or -1 while open.
func (s Span) Frames() int64 {
	if s.End < 0 {
		return -1
	}
	return s.End - s.Start + 1
}

// TraceView is one assembled causal trace: every span sharing a trace
// identity, in span-ID (creation) order. The view with ID 0 collects
// spans that never joined a trace — signals whose environment change the
// choice function decided needed no reconfiguration.
type TraceView struct {
	ID    int64
	Spans []Span
}

// Root returns the trace's reconfiguration root span, if assembled.
func (t TraceView) Root() (Span, bool) {
	for _, s := range t.Spans {
		if s.Name == SpanReconfig {
			return s, true
		}
	}
	return Span{}, false
}

// TraceIDString renders a trace identity the way every surface (flightrec,
// the live telemetry plane, campaign reports) spells it: 16 hex digits.
func TraceIDString(id int64) string {
	return fmt.Sprintf("%016x", uint64(id))
}

// ParseTraceID parses the 16-hex-digit form back; it also accepts plain
// decimal for hand-typed queries.
func ParseTraceID(s string) (int64, error) {
	if v, err := strconv.ParseUint(s, 16, 64); err == nil {
		return int64(v), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: malformed trace id %q", s)
	}
	return v, nil
}

// AssembleTraces joins the ring's span events into traces. Events must be
// in ring (sequence) order; the result is a pure function of the event
// bytes, so the assembly of a recovered journal is byte-identical to the
// live one over the frames the journal covers. Traces appear in order of
// first appearance; spans within a trace in creation order. A span whose
// start was evicted from the ring assembles from its end event alone with
// Start = -1.
func AssembleTraces(events []Event) []TraceView {
	spans := make(map[int64]*Span)
	var order []int64
	for _, e := range events {
		if e.Kind != KindSpanStart && e.Kind != KindSpanEnd {
			continue
		}
		id := e.Attrs[SpanAttrSpan]
		if id == 0 {
			continue
		}
		sp := spans[id]
		if sp == nil {
			sp = &Span{ID: id, Start: -1, End: -1}
			spans[id] = sp
			order = append(order, id)
		}
		if t := e.Attrs[SpanAttrTrace]; t != 0 {
			sp.Trace = t
		}
		if p := e.Attrs[SpanAttrParent]; p != 0 {
			sp.Parent = p
		}
		if e.Phase != "" {
			sp.Name = e.Phase
		}
		if e.App != "" {
			sp.App = e.App
		}
		if e.Config != "" {
			sp.Config = e.Config
		}
		if e.From != "" {
			sp.From = e.From
		}
		if e.Detail != "" {
			sp.Detail = e.Detail
		}
		if len(e.Attrs) > 0 && sp.Attrs == nil {
			sp.Attrs = make(map[string]int64, len(e.Attrs))
		}
		// Keyed copy: insertion order cannot shape the result, so ranging
		// the map directly stays deterministic.
		for k, v := range e.Attrs {
			switch k {
			case SpanAttrSpan, SpanAttrTrace, SpanAttrParent, SpanAttrEnd:
				continue
			}
			sp.Attrs[k] = v
		}
		if e.Kind == KindSpanStart {
			sp.Start = e.Frame
			if end, ok := e.Attrs[SpanAttrEnd]; ok {
				sp.End = end
			}
		} else {
			sp.End = e.Frame
		}
	}

	byTrace := make(map[int64]*TraceView)
	var traces []*TraceView
	for _, id := range order {
		sp := spans[id]
		tv := byTrace[sp.Trace]
		if tv == nil {
			tv = &TraceView{ID: sp.Trace}
			byTrace[sp.Trace] = tv
			traces = append(traces, tv)
		}
		tv.Spans = append(tv.Spans, *sp)
	}
	// Span creation order tracks event order, but a pending span adopted
	// into a trace late (the signal span) was created before the root;
	// creation order within the trace is already the causal order we want.
	// Trace order: first appearance of any member span, with the untraced
	// bucket (ID 0) last.
	sort.SliceStable(traces, func(i, j int) bool {
		if (traces[i].ID == 0) != (traces[j].ID == 0) {
			return traces[j].ID == 0
		}
		return false // stable: keep first-appearance order otherwise
	})
	out := make([]TraceView, len(traces))
	for i, tv := range traces {
		out[i] = *tv
	}
	return out
}

// FindTrace returns the assembled trace with the given identity.
func FindTrace(events []Event, id int64) (TraceView, bool) {
	for _, tv := range AssembleTraces(events) {
		if tv.ID == id {
			return tv, true
		}
	}
	return TraceView{}, false
}

// TraceSpanRow is one waterfall row of a trace report.
type TraceSpanRow struct {
	Span   int64            `json:"span"`
	Parent int64            `json:"parent,omitempty"`
	Name   string           `json:"name"`
	App    string           `json:"app,omitempty"`
	Config string           `json:"config,omitempty"`
	From   string           `json:"from,omitempty"`
	Start  int64            `json:"start"`
	End    int64            `json:"end"`
	Frames int64            `json:"frames"`
	Attrs  map[string]int64 `json:"attrs,omitempty"`
	Detail string           `json:"detail,omitempty"`
}

// TraceReport is the per-reconfiguration waterfall every surface renders:
// cmd/flightrec -trace, the live plane's /trace/<id>, and the campaign
// aggregate's slowest-trace digests. It is a pure function of a TraceView,
// so the same ring produces the same bytes everywhere — CI diffs the HTTP
// body against the flightrec rendering to hold that line.
type TraceReport struct {
	ID       string         `json:"id"`
	Seq      int64          `json:"seq,omitempty"`
	From     string         `json:"from,omitempty"`
	Config   string         `json:"config,omitempty"`
	Start    int64          `json:"start"`
	End      int64          `json:"end"`
	Window   int64          `json:"window"`
	Bound    int64          `json:"bound,omitempty"`
	Margin   int64          `json:"margin"`
	Complete bool           `json:"complete"`
	Spans    []TraceSpanRow `json:"spans"`
}

// BuildTraceReport renders a trace's waterfall. Window, bound and margin
// come from the root span (the kernel stamps the realized window and the
// declared transition bound on the root's close); an open root reports
// End, Window and Margin of -1 with Complete false — the shape of a trace
// cut short by a fail-stop halt.
func BuildTraceReport(tv TraceView) TraceReport {
	r := TraceReport{
		ID:     TraceIDString(tv.ID),
		Start:  -1,
		End:    -1,
		Window: -1,
		Margin: -1,
	}
	if root, ok := tv.Root(); ok {
		r.Start, r.End = root.Start, root.End
		r.From, r.Config = root.From, root.Config
		r.Seq = root.Attrs["seq"]
		r.Bound = root.Attrs["bound"]
		if root.End >= 0 {
			r.Complete = true
			r.Window = root.Frames()
			if w, ok := root.Attrs["window"]; ok {
				r.Window = w
			}
			if m, ok := root.Attrs["margin"]; ok {
				r.Margin = m
			} else if r.Bound > 0 {
				r.Margin = r.Bound - r.Window
			} else {
				r.Margin = 0
			}
		}
	}
	r.Spans = make([]TraceSpanRow, 0, len(tv.Spans))
	for _, s := range tv.Spans {
		r.Spans = append(r.Spans, TraceSpanRow{
			Span:   s.ID,
			Parent: s.Parent,
			Name:   s.Name,
			App:    s.App,
			Config: s.Config,
			From:   s.From,
			Start:  s.Start,
			End:    s.End,
			Frames: s.Frames(),
			Attrs:  s.Attrs,
			Detail: s.Detail,
		})
	}
	return r
}

// PhaseFrames sums the closed spans' frame counts by span name — the
// per-phase duration breakdown campaign aggregation merges across runs.
func (t TraceView) PhaseFrames() map[string]int64 {
	out := make(map[string]int64)
	for _, s := range t.Spans {
		if f := s.Frames(); f >= 0 {
			out[s.Name] += f
		}
	}
	return out
}
