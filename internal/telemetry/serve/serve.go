// Package serve is the live telemetry plane: it exposes the flight
// recorder's journal, the metrics registry, and the assembled causal traces
// over HTTP — the seam a fleet host queries (ROADMAP item 1) without ever
// touching the frame path.
//
// The design keeps the frame loop and the HTTP surface strictly decoupled:
// the system publishes an immutable frame-boundary Snapshot (copied
// synchronously in a frame-commit hook, where the events and metrics are
// quiescent), and request handlers only ever read the latest published
// snapshot. A slow or hostile client therefore cannot stall a frame, and
// every response is internally consistent — it describes exactly one frame
// boundary, never a torn mixture of two.
//
// The package splits into two layers. Source + NewMux are the handler
// surface: anything that can produce a Snapshot on demand (a Server holding
// a published copy, a fleet tenant snapshotting under its own lock) gets the
// four routes. Server is the standalone composition — a published-snapshot
// holder plus a listener — and AttachSystem/NewRing are the two shared
// constructions every cmd tool previously hand-rolled: a live system
// republishing per frame, and a static recovered/exported ring.
//
// serve is deliberately NOT a frame-deterministic package: it spawns the
// listener goroutine (audited below) and serves wall-clock HTTP traffic.
// What it serves, however, is deterministic — byte-identical rings produce
// byte-identical bodies, which CI exploits by diffing /trace/<id> against
// flightrec -trace on the same ring.
package serve

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/frame"
	"repro/internal/telemetry"
)

// Snapshot is one frame boundary's observable state: the frame number, the
// frame length (for virtual-time Prom timestamps), the frozen metrics, and
// the event journal. The publisher copies; the server only reads.
type Snapshot struct {
	// Frame is the frame number the snapshot was taken at.
	Frame int64
	// FrameLen converts frame numbers to virtual time in /metrics output;
	// zero is legal and yields virtual-time 0 timestamps.
	FrameLen time.Duration
	// Metrics is the registry snapshot (telemetry.Registry.Snapshot).
	Metrics telemetry.Snapshot
	// Events is the flight-recorder journal in ring order
	// (telemetry.Recorder.Events, or a recovered ring).
	Events []telemetry.Event
}

// Source produces the snapshot a mux serves. Implementations return the
// latest consistent frame-boundary state and true, or false when nothing is
// available yet (handlers answer 503). The returned snapshot must be
// immutable: handlers read it outside any lock.
type Source interface {
	TelemetrySnapshot() (Snapshot, bool)
}

// NewMux builds the serve-plane routes — /metrics, /journal, /traces,
// /trace/<id> — over a snapshot source. The fleet host mounts one per
// tenant; Server wraps one around its published snapshot.
func NewMux(src Source) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) { handleMetrics(src, w, r) })
	mux.HandleFunc("/journal", func(w http.ResponseWriter, r *http.Request) { handleJournal(src, w, r) })
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) { handleTraces(src, w, r) })
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) { handleTrace(src, w, r) })
	return mux
}

// Server serves published snapshots. The zero value is not usable; call
// New.
type Server struct {
	mu   sync.Mutex
	snap *Snapshot

	ln   net.Listener
	http *http.Server
}

// New returns an unstarted server with no snapshot published (requests
// answer 503 until the first Publish).
func New() *Server {
	s := &Server{}
	s.http = &http.Server{Handler: NewMux(s)}
	return s
}

// AttachSystem wires a live system into a new (unstarted) server: a
// frame-commit hook republishes a fresh snapshot — frame number, metrics,
// the full event ring — at every frame boundary. sys is the slice of
// core.System the plane needs; it errors when telemetry is disabled.
func AttachSystem(sys FrameSystem, frameLen time.Duration) (*Server, error) {
	reg, rec := sys.Telemetry()
	if reg == nil {
		return nil, errors.New("serve: the system's telemetry layer is disabled")
	}
	s := New()
	sys.AddCommitHook(func(ctx frame.Context) error {
		s.Publish(Snapshot{
			Frame:    ctx.Frame,
			FrameLen: frameLen,
			Metrics:  reg.Snapshot(),
			Events:   rec.Events(),
		})
		return nil
	})
	return s, nil
}

// FrameSystem is the part of core.System AttachSystem needs (declared here
// so serve does not import the runtime).
type FrameSystem interface {
	Telemetry() (*telemetry.Registry, *telemetry.Recorder)
	AddCommitHook(frame.CommitHook)
}

// NewRing returns a new (unstarted) server pre-published with a static ring
// — an exported or post-mortem-recovered journal — and its final metrics.
// The snapshot's frame is the last frame the ring witnessed.
func NewRing(events []telemetry.Event, metrics telemetry.Snapshot, frameLen time.Duration) *Server {
	var lastFrame int64
	for _, e := range events {
		if e.Frame > lastFrame {
			lastFrame = e.Frame
		}
	}
	s := New()
	s.Publish(Snapshot{
		Frame:    lastFrame,
		FrameLen: frameLen,
		Metrics:  metrics,
		Events:   events,
	})
	return s
}

// Publish installs a frame-boundary snapshot as the served state. The
// caller owns the copy discipline: Events and Metrics must not be mutated
// after publishing (telemetry.Recorder.Events and Registry.Snapshot both
// return fresh copies, so passing those straight through is safe).
func (s *Server) Publish(snap Snapshot) {
	s.mu.Lock()
	s.snap = &snap
	s.mu.Unlock()
}

// TelemetrySnapshot implements Source with the latest published snapshot.
func (s *Server) TelemetrySnapshot() (Snapshot, bool) {
	s.mu.Lock()
	snap := s.snap
	s.mu.Unlock()
	if snap == nil {
		return Snapshot{}, false
	}
	return *snap, true
}

// Start listens on addr and serves in the background, returning the bound
// address (useful with a ":0" port). Serving continues until Close.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	s.ln = ln
	// The HTTP listener lives outside every frame boundary: it serves
	// published copies only, is joined by Close, and never touches frame
	// state.
	//lint:allow nofreegoroutine audited listener: serves immutable frame-boundary snapshot copies off the frame path and is shut down via Close
	go s.http.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.http.Close()
}

// latest reads the source's snapshot, or answers 503 and false when nothing
// is available yet.
func latest(src Source, w http.ResponseWriter) (Snapshot, bool) {
	snap, ok := src.TelemetrySnapshot()
	if !ok {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return Snapshot{}, false
	}
	return snap, true
}

// handleMetrics serves the registry in Prometheus text exposition format,
// timestamped with virtual (frame-derived) time.
func handleMetrics(src Source, w http.ResponseWriter, r *http.Request) {
	snap, ok := latest(src, w)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.Metrics.WriteProm(w, snap.Frame, snap.FrameLen)
}

// handleJournal serves the event journal as JSONL, optionally filtered with
// ?since_frame=N (events of frame N and later).
func handleJournal(src Source, w http.ResponseWriter, r *http.Request) {
	snap, ok := latest(src, w)
	if !ok {
		return
	}
	events := snap.Events
	if raw := r.URL.Query().Get("since_frame"); raw != "" {
		since, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			http.Error(w, "malformed since_frame: "+err.Error(), http.StatusBadRequest)
			return
		}
		filtered := make([]telemetry.Event, 0, len(events))
		for _, e := range events {
			if e.Frame >= since {
				filtered = append(filtered, e)
			}
		}
		events = filtered
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = telemetry.WriteJournal(w, events)
}

// handleTraces serves the assembled trace index: every causal trace in the
// ring as a full waterfall report, in assembly order. Clients pick an ID
// here and fetch /trace/<id> for the single-trace body flightrec renders.
func handleTraces(src Source, w http.ResponseWriter, r *http.Request) {
	snap, ok := latest(src, w)
	if !ok {
		return
	}
	views := telemetry.AssembleTraces(snap.Events)
	reports := make([]telemetry.TraceReport, 0, len(views))
	for _, tv := range views {
		if tv.ID == 0 {
			continue // the untraced bucket is not a reconfiguration
		}
		reports = append(reports, telemetry.BuildTraceReport(tv))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = cli.WriteJSON(w, reports)
}

// handleTrace serves one trace's waterfall report. The body is produced by
// the same BuildTraceReport + cli.WriteJSON pair flightrec -trace -json
// uses, so the two renderings of the same ring are byte-identical — CI
// diffs them.
func handleTrace(src Source, w http.ResponseWriter, r *http.Request) {
	snap, ok := latest(src, w)
	if !ok {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/trace/")
	id, err := telemetry.ParseTraceID(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tv, found := telemetry.FindTrace(snap.Events, id)
	if !found {
		http.Error(w, "no trace "+raw+" in the published ring", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = cli.WriteJSON(w, telemetry.BuildTraceReport(tv))
}
