package serve

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/telemetry"
)

// testSnapshot builds a snapshot holding one complete reconfiguration
// trace plus an unrelated event.
func testSnapshot(t *testing.T) Snapshot {
	t.Helper()
	rec := telemetry.NewRecorder(64)
	book := telemetry.NewSpanBook(7, rec)
	sig := book.OpenPending(4, telemetry.SpanSignal, telemetry.Event{App: "mon"})
	book.OpenTrace(5, 4, telemetry.Event{From: "cruise", Config: "descent", Attrs: map[string]int64{"seq": 1, "bound": 20}})
	book.ClosePending(5, sig, telemetry.Event{})
	h := book.OpenSpan(6, telemetry.SpanHalt, telemetry.Event{})
	book.CloseSpan(7, h, telemetry.SpanHalt, telemetry.Event{})
	book.CloseTrace(9, telemetry.Event{Attrs: map[string]int64{"window": 5, "bound": 20, "margin": 15}})
	rec.Record(telemetry.Event{Frame: 2, Kind: telemetry.KindProcHalt, Host: "p9"})

	reg := telemetry.NewRegistry()
	reg.Counter("scram/triggers").Inc()
	reg.Histogram("scram/window_frames").Observe(5)

	return Snapshot{
		Frame:    10,
		FrameLen: 20 * time.Millisecond,
		Metrics:  reg.Snapshot(),
		Events:   rec.Events(),
	}
}

func startServer(t *testing.T, snap Snapshot) (*Server, string) {
	t.Helper()
	srv := New()
	srv.Publish(snap)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + addr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetrics(t *testing.T) {
	_, base := startServer(t, testSnapshot(t))
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", code, body)
	}
	if !strings.Contains(body, "scram_triggers 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# frame 10 virtual_time_ms 200") {
		t.Fatalf("/metrics missing virtual-time header:\n%s", body)
	}
}

func TestServeJournal(t *testing.T) {
	snap := testSnapshot(t)
	_, base := startServer(t, snap)
	code, body := get(t, base+"/journal")
	if code != http.StatusOK {
		t.Fatalf("/journal = %d", code)
	}
	events, err := telemetry.ReadJournal(strings.NewReader(body))
	if err != nil {
		t.Fatalf("journal does not parse: %v", err)
	}
	if len(events) != len(snap.Events) {
		t.Fatalf("journal has %d events, want %d", len(events), len(snap.Events))
	}

	code, body = get(t, base+"/journal?since_frame=5")
	if code != http.StatusOK {
		t.Fatalf("/journal?since_frame = %d", code)
	}
	filtered, err := telemetry.ReadJournal(strings.NewReader(body))
	if err != nil {
		t.Fatalf("filtered journal does not parse: %v", err)
	}
	for _, e := range filtered {
		if e.Frame < 5 {
			t.Fatalf("since_frame=5 returned frame %d", e.Frame)
		}
	}
	if len(filtered) >= len(events) {
		t.Fatalf("filter dropped nothing: %d of %d", len(filtered), len(events))
	}

	if code, _ := get(t, base+"/journal?since_frame=bogus"); code != http.StatusBadRequest {
		t.Fatalf("malformed since_frame = %d, want 400", code)
	}
}

// TestServeTraceMatchesReportRendering is the byte-identity contract CI
// leans on: the /trace/<id> body must equal BuildTraceReport rendered
// through cli.WriteJSON — the exact pair flightrec -trace -json uses.
func TestServeTraceMatchesReportRendering(t *testing.T) {
	snap := testSnapshot(t)
	_, base := startServer(t, snap)

	code, index := get(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	views := telemetry.AssembleTraces(snap.Events)
	var want []telemetry.TraceReport
	for _, tv := range views {
		if tv.ID != 0 {
			want = append(want, telemetry.BuildTraceReport(tv))
		}
	}
	if len(want) != 1 {
		t.Fatalf("fixture should hold exactly 1 trace, got %d", len(want))
	}
	var buf bytes.Buffer
	if err := cli.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if index != buf.String() {
		t.Fatalf("/traces body diverges from cli.WriteJSON rendering:\n%s\nvs\n%s", index, buf.String())
	}

	code, body := get(t, base+"/trace/"+want[0].ID)
	if code != http.StatusOK {
		t.Fatalf("/trace/%s = %d: %s", want[0].ID, code, body)
	}
	buf.Reset()
	if err := cli.WriteJSON(&buf, want[0]); err != nil {
		t.Fatal(err)
	}
	if body != buf.String() {
		t.Fatalf("/trace body diverges from the flightrec rendering:\n%s\nvs\n%s", body, buf.String())
	}

	if code, _ := get(t, base+"/trace/ffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", code)
	}
	if code, _ := get(t, base+"/trace/zz"); code != http.StatusBadRequest {
		t.Fatalf("malformed trace id = %d, want 400", code)
	}
}

func TestServeBeforeFirstPublish(t *testing.T) {
	srv := New()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+addr+"/metrics")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unpublished /metrics = %d, want 503", code)
	}
}
