package telemetry

import "testing"

// TestRingRetentionHorizon drives a quiet one-event-per-frame recorder far
// past its retention horizon and checks the frame-based trim: the live ring
// holds only the retained window (the capacity never fills, so without
// retention nothing would have been evicted), and the persisted journal
// still recovers at least that window.
func TestRingRetentionHorizon(t *testing.T) {
	rec := NewRecorder(0) // default capacity 4096: far above the event count
	rec.SetRetention(10)
	kv := memKV{}
	for f := int64(1); f <= 50; f++ {
		rec.SetFrame(f)
		rec.Record(Event{Kind: KindSignal})
		if err := rec.Persist(kv); err != nil {
			t.Fatal(err)
		}
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("ring empty")
	}
	for _, e := range evs {
		if e.Frame < 40 {
			t.Fatalf("event from frame %d survived a horizon of 10 at frame 50", e.Frame)
		}
	}
	if rec.Trimmed() == 0 {
		t.Fatal("Trimmed() = 0, want > 0")
	}
	if rec.Dropped() != 0 {
		t.Fatalf("Dropped() = %d; retention trims must not count as capacity drops", rec.Dropped())
	}
	// Sequence order must survive trimming through the growth-phase buffer.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}

	recovered, err := RecoverRing(map[string][]byte(kv))
	if err != nil {
		t.Fatal(err)
	}
	// Recovery returns the retained window plus at most the open/surplus
	// chunks' history — never less than the live ring.
	if len(recovered) < len(evs) {
		t.Fatalf("recovered %d events, live ring has %d", len(recovered), len(evs))
	}
	last := recovered[len(recovered)-1]
	if last.Seq != evs[len(evs)-1].Seq {
		t.Fatalf("recovered tail seq %d, want %d", last.Seq, evs[len(evs)-1].Seq)
	}
}

// TestRingRetentionNote checks the sparse KindTrim announcements: a long
// run emits them at the note cadence, carrying the cumulative trim count.
func TestRingRetentionNote(t *testing.T) {
	rec := NewRecorder(0)
	rec.SetRetention(16)
	for f := int64(1); f <= 2*trimNoteEvery; f++ {
		rec.SetFrame(f)
		rec.Record(Event{Kind: KindSignal})
	}
	var notes []Event
	for _, e := range rec.Events() {
		if e.Kind == KindTrim {
			notes = append(notes, e)
		}
	}
	if len(notes) == 0 {
		t.Fatal("no journal-trim note recorded")
	}
	n := notes[len(notes)-1]
	if n.Attrs["trimmed"] <= 0 || n.Attrs["horizon"] <= 0 {
		t.Fatalf("trim note attrs = %v", n.Attrs)
	}
}

// TestRingRetentionWithCapacityEviction mixes both eviction regimes: a tiny
// ring under a wide horizon keeps capacity semantics, and retention then
// tightens it without corrupting ring order.
func TestRingRetentionWithCapacityEviction(t *testing.T) {
	rec := NewRecorder(8)
	// Fill past capacity first (capacity eviction), then let the horizon
	// take over on quiet frames (retention eviction).
	for f := int64(1); f <= 6; f++ {
		rec.SetFrame(f)
		rec.Record(Event{Kind: KindSignal})
		rec.Record(Event{Kind: KindTrigger})
	}
	rec.SetRetention(3)
	for f := int64(7); f <= 40; f++ {
		rec.SetFrame(f)
		rec.Record(Event{Kind: KindSignal})
		rec.Record(Event{Kind: KindTrigger})
	}
	evs := rec.Events()
	for _, e := range evs {
		if e.Frame < 37 {
			t.Fatalf("event from frame %d survived horizon 3 at frame 40", e.Frame)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap after mixed eviction: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if rec.Dropped() == 0 || rec.Trimmed() == 0 {
		t.Fatalf("Dropped/Trimmed = %d/%d, want both > 0", rec.Dropped(), rec.Trimmed())
	}
}
