package telemetry

import (
	"strconv"

	"repro/internal/det"
	"repro/internal/spec"
)

// This file hand-rolls the JSON encoding of Event (and its FrameState
// payload) for the persistence path. Recorder.Persist runs on the
// frame-commit hot path: under reconfiguration churn it encodes several
// events per frame, and encoding/json's reflection walk allocates per field
// and per map entry. The hand encoder appends into a reused buffer instead —
// zero allocations per event once the buffer has grown — while producing
// exactly the bytes encoding/json would (struct field order, omitempty,
// sorted map keys, HTML-escaped strings), so readers keep using
// json.Unmarshal and journals stay byte-identical with re-encoded ones.
//
// The encoder must stay in lockstep with the Event / FrameState / AppSnap
// struct definitions; TestEventEncoderMatchesStdlib enforces that field by
// field.

// eventEncoder holds the reused buffers of one encoding stream. It is owned
// by the Recorder and used only under the recorder's mutex.
type eventEncoder struct {
	buf  []byte
	keys []string     // scratch for sorted Attrs keys
	apps []spec.AppID // scratch for sorted FrameState app IDs
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping exactly the
// characters encoding/json escapes (including the HTML-sensitive ones, for
// byte-compatibility with stdlib-encoded journals).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	// Copy maximal spans of bytes needing no escape in one append; almost
	// every string here (identifiers, config names) is one clean span.
	// Bytes ≥ 0x80 — UTF-8 continuations — pass through verbatim, as in
	// encoding/json (the inputs are our own identifiers and fmt-built
	// details, always valid UTF-8).
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"', '\\':
			buf = append(buf, '\\', c)
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// appendStringField appends `,"name":"value"` for a non-empty string field
// with omitempty semantics (the leading comma is always safe: seq is emitted
// first unconditionally).
func appendStringField(buf []byte, name, val string) []byte {
	if val == "" {
		return buf
	}
	buf = append(buf, ',')
	buf = appendJSONString(buf, name)
	buf = append(buf, ':')
	return appendJSONString(buf, val)
}

// appendEvent encodes e into the encoder's own buffer and returns the
// encoded record, which aliases that buffer and is valid until the next
// call.
func (enc *eventEncoder) appendEvent(e *Event) []byte {
	enc.buf = enc.appendEventTo(enc.buf[:0], e)
	return enc.buf
}

// appendEventTo appends e's JSON encoding to buf (which may alias enc.buf —
// Persist builds chunk records that way) and returns the extended slice.
func (enc *eventEncoder) appendEventTo(buf []byte, e *Event) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendInt(buf, e.Seq, 10)
	buf = append(buf, `,"frame":`...)
	buf = strconv.AppendInt(buf, e.Frame, 10)
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, string(e.Kind))
	buf = appendStringField(buf, "app", e.App)
	buf = appendStringField(buf, "host", e.Host)
	buf = appendStringField(buf, "config", e.Config)
	buf = appendStringField(buf, "from", e.From)
	buf = appendStringField(buf, "phase", e.Phase)
	buf = appendStringField(buf, "detail", e.Detail)
	if len(e.Attrs) > 0 {
		buf = append(buf, `,"attrs":{`...)
		enc.keys = det.SortedKeysInto(enc.keys, e.Attrs)
		for i, k := range enc.keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, k)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, e.Attrs[k], 10)
		}
		buf = append(buf, '}')
	}
	if e.State != nil {
		buf = append(buf, `,"state":`...)
		buf = enc.appendFrameState(buf, e.State)
	}
	return append(buf, '}')
}

// appendFrameState appends a FrameState object.
func (enc *eventEncoder) appendFrameState(buf []byte, fs *FrameState) []byte {
	buf = append(buf, `{"config":`...)
	buf = appendJSONString(buf, string(fs.Config))
	buf = append(buf, `,"env":`...)
	buf = appendJSONString(buf, string(fs.Env))
	buf = append(buf, `,"apps":`...)
	if fs.Apps == nil {
		buf = append(buf, "null}"...)
		return buf
	}
	buf = append(buf, '{')
	enc.apps = det.SortedKeysInto(enc.apps, fs.Apps)
	for i, id := range enc.apps {
		if i > 0 {
			buf = append(buf, ',')
		}
		a := fs.Apps[id]
		buf = appendJSONString(buf, string(id))
		buf = append(buf, `:{"status":`...)
		buf = appendJSONString(buf, a.Status.String())
		buf = append(buf, `,"spec":`...)
		buf = appendJSONString(buf, string(a.Spec))
		buf = append(buf, `,"pre_ok":`...)
		buf = strconv.AppendBool(buf, a.PreOK)
		buf = append(buf, '}')
	}
	return append(buf, "}}"...)
}
