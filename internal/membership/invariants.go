package membership

import (
	"fmt"

	"repro/internal/spec"
)

// Owner records which member processor hosts a placed application in a
// frame.
type Owner struct {
	App  spec.AppID  `json:"app"`
	Proc spec.ProcID `json:"proc"`
}

// FrameRecord is one frame's entry in the membership log: the view in force
// at the frame's commit plus the application-to-processor ownership the
// runtime actually exhibited.
type FrameRecord struct {
	Frame   int64       `json:"frame"`
	Epoch   int64       `json:"epoch"`
	Auth    spec.ProcID `json:"auth"`
	Members []Member    `json:"members"`
	Owners  []Owner     `json:"owners,omitempty"`
}

// Violation is one membership-invariant failure found by CheckLog.
type Violation struct {
	// Invariant is "epoch_monotonic", "no_split_brain" or "safe_handoff".
	Invariant string `json:"invariant"`
	Frame     int64  `json:"frame"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("frame %d: %s: %s", v.Frame, v.Invariant, v.Detail)
}

// CheckLog verifies the membership invariants over a per-frame log, the
// runtime counterparts of SP1-SP4:
//
//   - epoch_monotonic: the epoch never decreases frame over frame.
//   - no_split_brain: each epoch has exactly one authoritative kernel host;
//     a host change without an epoch change would mean two kernels could
//     both believe themselves authoritative under one epoch.
//   - safe_handoff: every placed application has an owner in every frame,
//     and the owner is a member of that frame's view — no frame exists in
//     which zero member processors own a placed application.
func CheckLog(log []FrameRecord) []Violation {
	var out []Violation
	authByEpoch := make(map[int64]spec.ProcID, 8)
	for i, rec := range log {
		if i > 0 && rec.Epoch < log[i-1].Epoch {
			out = append(out, Violation{
				Invariant: "epoch_monotonic",
				Frame:     rec.Frame,
				Detail:    fmt.Sprintf("epoch %d after epoch %d", rec.Epoch, log[i-1].Epoch),
			})
		}
		if prev, ok := authByEpoch[rec.Epoch]; ok {
			if prev != rec.Auth {
				out = append(out, Violation{
					Invariant: "no_split_brain",
					Frame:     rec.Frame,
					Detail:    fmt.Sprintf("epoch %d authoritative on %q and %q", rec.Epoch, prev, rec.Auth),
				})
			}
		} else {
			authByEpoch[rec.Epoch] = rec.Auth
		}
		for _, own := range rec.Owners {
			if own.Proc == "" {
				out = append(out, Violation{
					Invariant: "safe_handoff",
					Frame:     rec.Frame,
					Detail:    fmt.Sprintf("placed application %q has no owning processor", own.App),
				})
				continue
			}
			mem := findMember(rec.Members, own.Proc)
			if mem == nil {
				out = append(out, Violation{
					Invariant: "safe_handoff",
					Frame:     rec.Frame,
					Detail:    fmt.Sprintf("application %q owned by non-member %q", own.App, own.Proc),
				})
			}
		}
	}
	return out
}

func findMember(members []Member, proc spec.ProcID) *Member {
	for i := range members {
		if members[i].Proc == proc {
			return &members[i]
		}
	}
	return nil
}
