// Package membership adds dynamic processor membership to the fail-stop
// architecture: processors join and leave the platform at runtime under a
// frame-synchronous membership view with monotone epoch numbers persisted to
// stable storage.
//
// The paper assumes a static processor set verified once, offline. Following
// Dolev et al.'s self-stabilizing reconfiguration and Hufflen's
// re-verification view, this package relaxes that in two assured steps:
//
//   - Every membership change is re-verified online before its epoch
//     commits: the covering/acyclicity/timing/resource obligations of
//     package statics are discharged against the would-be processor set, and
//     an unverifiable change (for example draining a processor the
//     configuration set still places applications on) is rejected — the
//     prior epoch keeps serving.
//
//   - The committed membership record is validated every frame. A torn or
//     corrupted record, a record naming processors the platform never
//     declared, or a record that diverged from the authoritative
//     frame-synchronous view drives a bounded convergence: the manager
//     re-commits a legal view under a strictly larger epoch instead of
//     halting or serving from garbage. Corruption committed at frame k is
//     detected at k+1 and a legal record is committed again by the end of
//     k+1 — convergence within two frames of the corruption becoming
//     visible.
//
// A joining processor is not takeover-eligible until it has caught up: the
// manager copies the SCRAM's committed state onto the joiner's stable
// storage each frame (under a private prefix), and after CatchUpFrames
// copies the joiner is promoted to an active standby. Caught-up copies keep
// refreshing afterwards, so every standby holds a local snapshot at most one
// frame stale — the last-resort restore source when the failed primary's own
// snapshot turns out to be corrupt.
//
// Invariants checked over the per-frame membership log, alongside SP1-SP4:
// epoch monotonicity, no-split-brain (at most one authoritative kernel host
// per epoch), and safe handoff (no frame in which a placed application has
// no owning member processor).
package membership

import (
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/spec"
)

// Status is a member processor's lifecycle state within the view.
type Status string

const (
	// StatusActive members serve placements and, once caught up, are
	// takeover-eligible.
	StatusActive Status = "active"
	// StatusJoining members are catching up from the SCRAM's stable state
	// and are not yet takeover-eligible.
	StatusJoining Status = "joining"
	// StatusDown members have been crash-evicted: the processor failed and
	// the view records it as non-serving until it is repaired. Eviction
	// changes no placements, so it needs no re-verification; the member
	// re-enters through the joining state when repaired.
	StatusDown Status = "down"
)

// Member is one processor's entry in the membership view.
type Member struct {
	Proc   spec.ProcID `json:"proc"`
	Status Status      `json:"status"`
	// CatchUp counts completed catch-up copy frames while joining.
	CatchUp int `json:"catch_up,omitempty"`
	// CaughtUp marks the member takeover-eligible: it holds a usable copy
	// of the SCRAM's stable state.
	CaughtUp bool `json:"caught_up,omitempty"`
}

// View is the frame-synchronous membership view: the epoch number, the
// authoritative kernel host, and the member set sorted by processor ID.
type View struct {
	Epoch   int64       `json:"epoch"`
	Auth    spec.ProcID `json:"auth"`
	Members []Member    `json:"members"`
}

// Member returns the view's entry for proc, or nil. The pointer aliases the
// view's member slice.
func (v View) Member(proc spec.ProcID) *Member {
	for i := range v.Members {
		if v.Members[i].Proc == proc {
			return &v.Members[i]
		}
	}
	return nil
}

// Clone returns a deep copy of the view.
func (v View) Clone() View {
	out := v
	out.Members = append([]Member(nil), v.Members...)
	return out
}

// RecordKey is the stable-storage key of the committed membership record. It
// lives outside the "scram/" prefix: the status-discipline lint reserves
// that namespace for the kernel's own writes.
const RecordKey = "membership/view"

// catchUpPrefix prefixes the catch-up copy of the SCRAM's stable state on a
// joining or standby member's own store.
const catchUpPrefix = "membership/catchup/"

// record is the persisted form of a view: the view plus a checksum over its
// canonical encoding, so a torn or bit-flipped record is detected rather
// than decoded into garbage.
type record struct {
	View View   `json:"view"`
	CRC  uint32 `json:"crc"`
}

// EncodeRecord renders a view as a checksummed stable-storage record.
func EncodeRecord(v View) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("membership: encoding view: %w", err)
	}
	raw, err := json.Marshal(record{View: v, CRC: crc32.ChecksumIEEE(body)})
	if err != nil {
		return nil, fmt.Errorf("membership: encoding record: %w", err)
	}
	return raw, nil
}

// DecodeRecord parses and checks a committed membership record. It fails on
// malformed JSON and on checksum mismatch (a torn write), the two shapes of
// physical corruption a stable store can hand back.
func DecodeRecord(raw []byte) (View, error) {
	var rec record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return View{}, fmt.Errorf("membership: corrupt record: %w", err)
	}
	body, err := json.Marshal(rec.View)
	if err != nil {
		return View{}, fmt.Errorf("membership: re-encoding record view: %w", err)
	}
	if sum := crc32.ChecksumIEEE(body); sum != rec.CRC {
		return View{}, fmt.Errorf("membership: torn record: crc %08x, want %08x", rec.CRC, sum)
	}
	return rec.View, nil
}

// membersEqual reports whether two sorted member slices agree on membership:
// processor, status and takeover eligibility. The catch-up frame counter is
// bookkeeping that advances without an epoch change (the committed record is
// only rewritten when the view moves to a new epoch), so it is excluded —
// otherwise every catch-up frame would read as record divergence.
func membersEqual(a, b []Member) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Proc != b[i].Proc || a[i].Status != b[i].Status || a[i].CaughtUp != b[i].CaughtUp {
			return false
		}
	}
	return true
}
