package membership_test

import (
	"strings"
	"testing"

	"repro/internal/failstop"
	"repro/internal/membership"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/stable"
)

// harness drives a manager the way core does: Step, Finish, commit — one
// frame at a time against the auth processor's stable store.
type harness struct {
	t    *testing.T
	rs   *spec.ReconfigSpec
	pool *failstop.Pool
	mgr  *membership.Manager
	st   *stable.Store
}

func newHarness(t *testing.T, spares int, events []membership.Event) *harness {
	t.Helper()
	rs := spectest.ThreeConfigWithSpares(spares)
	pool := failstop.NewPool(rs.Platform)
	mgr, err := membership.NewManager(membership.Config{
		Spec:   rs,
		Pool:   pool,
		Auth:   "p1",
		Events: events,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	p1, err := pool.Proc("p1")
	if err != nil {
		t.Fatalf("pool.Proc(p1): %v", err)
	}
	return &harness{t: t, rs: rs, pool: pool, mgr: mgr, st: p1.Stable()}
}

// frame runs one full frame: membership step, finish, stable commit.
func (h *harness) frame(f int64) {
	h.t.Helper()
	h.mgr.Step(f, h.st)
	if err := h.mgr.Finish(f, h.st, nil); err != nil {
		h.t.Fatalf("Finish(%d): %v", f, err)
	}
	h.st.Commit()
}

// corruptRecord overwrites the committed membership record between frames,
// the way a storage fault (or a test of the self-stabilization path) would:
// stable storage survives fail-stop halts, so a corrupt committed record is
// exactly what a restored kernel could face.
func (h *harness) corruptRecord(raw []byte) {
	h.st.Put(membership.RecordKey, raw)
	h.st.Commit()
}

func TestEncodeDecodeRecord(t *testing.T) {
	v := membership.View{Epoch: 7, Auth: "p1", Members: []membership.Member{
		{Proc: "p1", Status: membership.StatusActive, CaughtUp: true},
		{Proc: "p2", Status: membership.StatusJoining, CatchUp: 2},
	}}
	raw, err := membership.EncodeRecord(v)
	if err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	got, err := membership.DecodeRecord(raw)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if got.Epoch != v.Epoch || got.Auth != v.Auth || len(got.Members) != 2 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}

	if _, err := membership.DecodeRecord([]byte("not json at all")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	// A torn record: valid JSON shape, checksum of different content.
	torn := []byte(strings.Replace(string(raw), `"epoch":7`, `"epoch":8`, 1))
	if _, err := membership.DecodeRecord(torn); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn record: got %v, want torn-record error", err)
	}
}

func TestVerifyRejectsRemovingPlacedProcessor(t *testing.T) {
	rs := spectest.ThreeConfigWithSpares(1)
	if err := membership.Verify(rs, []spec.ProcID{"p1", "p2"}); err != nil {
		t.Fatalf("base member set must verify: %v", err)
	}
	if err := membership.Verify(rs, []spec.ProcID{"p1", "p2", "p3"}); err != nil {
		t.Fatalf("superset must verify: %v", err)
	}
	// p2 hosts the FCS in CfgFull: the shrunken table cannot verify.
	if err := membership.Verify(rs, []spec.ProcID{"p1"}); err == nil {
		t.Fatal("removing a placed processor must fail verification")
	}
}

func TestJoinCatchUpPromoteAndLeave(t *testing.T) {
	h := newHarness(t, 1, []membership.Event{
		{Frame: 2, Proc: "p3", Op: membership.OpJoin},
		{Frame: 10, Proc: "p3", Op: membership.OpLeave},
	})
	if got := h.mgr.Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}
	for f := int64(0); f <= 12; f++ {
		h.frame(f)
		switch f {
		case 1:
			if cands := h.mgr.TakeoverCandidates(); len(cands) != 1 || cands[0] != "p2" {
				t.Fatalf("frame 1 candidates = %v, want [p2]", cands)
			}
		case 2:
			v := h.mgr.View()
			mem := v.Member("p3")
			if mem == nil || mem.Status != membership.StatusJoining {
				t.Fatalf("frame 2: p3 = %+v, want joining", mem)
			}
			if v.Epoch != 2 {
				t.Fatalf("frame 2 epoch = %d, want 2 (join bumps)", v.Epoch)
			}
		case 5:
			// Joined at 2 with the default 3 catch-up frames: promoted by
			// the end of frame 4.
			mem := h.mgr.View().Member("p3")
			if mem == nil || mem.Status != membership.StatusActive || !mem.CaughtUp {
				t.Fatalf("frame 5: p3 = %+v, want caught-up active", mem)
			}
			if cands := h.mgr.TakeoverCandidates(); len(cands) != 2 {
				t.Fatalf("frame 5 candidates = %v, want [p2 p3]", cands)
			}
		case 10:
			if mem := h.mgr.View().Member("p3"); mem != nil {
				t.Fatalf("frame 10: p3 still a member after verified leave: %+v", mem)
			}
		}
	}
	st := h.mgr.Stats()
	if st.Joins != 1 || st.Leaves != 1 || st.Rejected != 0 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if vs := membership.CheckLog(h.mgr.Log()); len(vs) != 0 {
		t.Fatalf("invariant violations: %v", vs)
	}
}

func TestUnverifiableLeaveRejectedPriorEpochServes(t *testing.T) {
	h := newHarness(t, 0, []membership.Event{
		{Frame: 3, Proc: "p2", Op: membership.OpLeave},
	})
	for f := int64(0); f <= 6; f++ {
		h.frame(f)
	}
	// The change was rejected: p2 hosts the FCS in CfgFull, so the shrunken
	// transition table fails its static obligations.
	rejs := h.mgr.Rejections()
	if len(rejs) != 1 || rejs[0].Proc != "p2" || rejs[0].Op != membership.OpLeave {
		t.Fatalf("rejections = %+v, want one leave(p2)", rejs)
	}
	if !strings.Contains(rejs[0].Reason, "fails") {
		t.Fatalf("rejection reason %q does not name the failed verification", rejs[0].Reason)
	}
	// The prior epoch keeps serving: no epoch moved, the member set is
	// intact, and the committed record still names p2.
	if got := h.mgr.Epoch(); got != 1 {
		t.Fatalf("epoch = %d after rejected change, want 1", got)
	}
	if h.mgr.View().Member("p2") == nil {
		t.Fatal("p2 dropped despite rejection")
	}
	raw, ok := h.st.Get(membership.RecordKey)
	if !ok {
		t.Fatal("no committed membership record")
	}
	v, err := membership.DecodeRecord(raw)
	if err != nil {
		t.Fatalf("committed record: %v", err)
	}
	if v.Epoch != 1 || v.Member("p2") == nil {
		t.Fatalf("committed record = %+v, want epoch 1 with p2", v)
	}
	if vs := membership.CheckLog(h.mgr.Log()); len(vs) != 0 {
		t.Fatalf("invariant violations: %v", vs)
	}
}

func TestRequiredHostMayNotLeave(t *testing.T) {
	h := newHarness(t, 0, []membership.Event{
		{Frame: 2, Proc: "p1", Op: membership.OpLeave},
	})
	for f := int64(0); f <= 3; f++ {
		h.frame(f)
	}
	rejs := h.mgr.Rejections()
	if len(rejs) != 1 || !strings.Contains(rejs[0].Reason, "required") {
		t.Fatalf("rejections = %+v, want required-host rejection", rejs)
	}
	if h.mgr.View().Member("p1") == nil {
		t.Fatal("required SCRAM host left the view")
	}
}

func TestCrashEvictionAndRepairRejoin(t *testing.T) {
	h := newHarness(t, 0, nil)
	h.frame(0)
	h.frame(1)
	if err := h.pool.Fail("p2", 2); err != nil {
		t.Fatalf("Fail(p2): %v", err)
	}
	h.frame(2)
	mem := h.mgr.View().Member("p2")
	if mem == nil || mem.Status != membership.StatusDown {
		t.Fatalf("after failure: p2 = %+v, want down", mem)
	}
	if cands := h.mgr.TakeoverCandidates(); len(cands) != 0 {
		t.Fatalf("candidates with p2 down = %v, want none", cands)
	}
	epochAtEvict := h.mgr.Epoch()
	if err := h.pool.Repair("p2"); err != nil {
		t.Fatalf("Repair(p2): %v", err)
	}
	for f := int64(3); f <= 6; f++ {
		h.frame(f)
	}
	mem = h.mgr.View().Member("p2")
	if mem == nil || mem.Status != membership.StatusActive || !mem.CaughtUp {
		t.Fatalf("after repair + catch-up: p2 = %+v, want caught-up active", mem)
	}
	if h.mgr.Epoch() <= epochAtEvict {
		t.Fatalf("epoch did not advance across rejoin: %d", h.mgr.Epoch())
	}
	st := h.mgr.Stats()
	if st.Evictions != 1 {
		t.Fatalf("stats = %+v, want one eviction", st)
	}
	if vs := membership.CheckLog(h.mgr.Log()); len(vs) != 0 {
		t.Fatalf("invariant violations: %v", vs)
	}
}

// TestConvergenceFromArbitraryCorruption is the self-stabilization
// acceptance test: from an arbitrarily corrupted committed membership
// record, the manager converges back to a legal configuration within a
// documented bound — corruption committed at the end of frame k is visible
// from frame k+1, detected in the first Step after visibility, and a legal
// record is re-committed at that same frame's boundary: at most 2 frames
// after the corrupting commit, the committed record is legal again.
func TestConvergenceFromArbitraryCorruption(t *testing.T) {
	ghost, err := membership.EncodeRecord(membership.View{
		Epoch: 999,
		Auth:  "p1",
		Members: []membership.Member{
			{Proc: "p1", Status: membership.StatusActive, CaughtUp: true},
			{Proc: "zombie", Status: membership.StatusActive, CaughtUp: true},
		},
	})
	if err != nil {
		t.Fatalf("encoding ghost record: %v", err)
	}
	divergent, err := membership.EncodeRecord(membership.View{
		Epoch: 1,
		Auth:  "p2",
		Members: []membership.Member{
			{Proc: "p1", Status: membership.StatusActive, CaughtUp: true},
			{Proc: "p2", Status: membership.StatusActive, CaughtUp: true},
		},
	})
	if err != nil {
		t.Fatalf("encoding divergent record: %v", err)
	}
	cases := []struct {
		name string
		raw  []byte
		// minEpoch is the epoch the converged view must strictly exceed.
		minEpoch int64
	}{
		{"garbage-bytes", []byte("\x00\xff not a record"), 0},
		{"torn-json", []byte(`{"view":{"epoch":3},"crc":12345}`), 0},
		{"ghost-member-valid-crc", ghost, 999},
		{"divergent-auth-valid-crc", divergent, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, 0, nil)
			for f := int64(0); f <= 3; f++ {
				h.frame(f)
			}
			before := h.mgr.Stats().Converges

			// Corruption commits at the end of frame 3 (between frames):
			// it becomes visible at frame 4.
			h.corruptRecord(tc.raw)

			h.frame(4) // detection and re-commit happen within this frame
			if got := h.mgr.Stats().Converges; got != before+1 {
				t.Fatalf("converges = %d after corrupt frame, want %d", got, before+1)
			}
			raw, ok := h.st.Get(membership.RecordKey)
			if !ok {
				t.Fatal("no committed record after convergence frame")
			}
			v, err := membership.DecodeRecord(raw)
			if err != nil {
				t.Fatalf("record still corrupt after convergence frame: %v", err)
			}
			if v.Epoch != h.mgr.Epoch() {
				t.Fatalf("committed epoch %d != view epoch %d", v.Epoch, h.mgr.Epoch())
			}
			if v.Epoch <= tc.minEpoch {
				t.Fatalf("converged epoch %d not past corrupt record's claimed %d", v.Epoch, tc.minEpoch)
			}
			for _, mem := range v.Members {
				if _, ok := h.rs.Platform.Proc(mem.Proc); !ok {
					t.Fatalf("converged record names undeclared processor %q", mem.Proc)
				}
			}

			// Stability: the converged record is accepted from the next
			// frame on — no oscillation.
			h.frame(5)
			h.frame(6)
			if got := h.mgr.Stats().Converges; got != before+1 {
				t.Fatalf("converges = %d after recovery, want %d (no oscillation)", got, before+1)
			}
			if vs := membership.CheckLog(h.mgr.Log()); len(vs) != 0 {
				t.Fatalf("invariant violations: %v", vs)
			}
		})
	}
}

func TestCheckLogViolations(t *testing.T) {
	members := []membership.Member{
		{Proc: "p1", Status: membership.StatusActive, CaughtUp: true},
		{Proc: "p2", Status: membership.StatusActive, CaughtUp: true},
	}
	base := func(f, epoch int64, auth spec.ProcID) membership.FrameRecord {
		return membership.FrameRecord{Frame: f, Epoch: epoch, Auth: auth, Members: members}
	}

	t.Run("clean", func(t *testing.T) {
		log := []membership.FrameRecord{base(0, 1, "p1"), base(1, 1, "p1"), base(2, 2, "p1")}
		if vs := membership.CheckLog(log); len(vs) != 0 {
			t.Fatalf("violations on clean log: %v", vs)
		}
	})
	t.Run("epoch-monotonic", func(t *testing.T) {
		log := []membership.FrameRecord{base(0, 5, "p1"), base(1, 3, "p1")}
		vs := membership.CheckLog(log)
		if len(vs) != 1 || vs[0].Invariant != "epoch_monotonic" {
			t.Fatalf("violations = %v, want one epoch_monotonic", vs)
		}
	})
	t.Run("no-split-brain", func(t *testing.T) {
		log := []membership.FrameRecord{base(0, 1, "p1"), base(1, 1, "p2")}
		vs := membership.CheckLog(log)
		if len(vs) != 1 || vs[0].Invariant != "no_split_brain" {
			t.Fatalf("violations = %v, want one no_split_brain", vs)
		}
	})
	t.Run("safe-handoff", func(t *testing.T) {
		rec := base(0, 1, "p1")
		rec.Owners = []membership.Owner{{App: "fcs", Proc: "p9"}, {App: "ap", Proc: ""}}
		vs := membership.CheckLog([]membership.FrameRecord{rec})
		if len(vs) != 2 {
			t.Fatalf("violations = %v, want two safe_handoff", vs)
		}
		for _, v := range vs {
			if v.Invariant != "safe_handoff" {
				t.Fatalf("violation %v, want safe_handoff", v)
			}
		}
	})
}
