package membership

import (
	"fmt"
	"sort"

	"repro/internal/det"
	"repro/internal/failstop"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/telemetry"
)

// scramPrefix is the stable-storage namespace of the SCRAM kernel: the state
// a joining processor must copy before it can take the kernel over.
const scramPrefix = "scram/"

// defaultCatchUpFrames is the catch-up duration when Config leaves it zero.
const defaultCatchUpFrames = 3

// Op selects a scheduled membership operation.
type Op string

const (
	// OpJoin adds a processor to the member set as a joining standby.
	OpJoin Op = "join"
	// OpLeave drains a processor gracefully: the removal is re-verified
	// against the extended transition table and rejected if the remaining
	// members cannot discharge the static obligations.
	OpLeave Op = "leave"
)

// Event schedules one membership operation.
type Event struct {
	Frame int64       `json:"frame"`
	Proc  spec.ProcID `json:"proc"`
	Op    Op          `json:"op"`
}

// Rejection records a membership change that failed online re-verification
// (or named an undeclared processor) and was refused; the prior epoch kept
// serving.
type Rejection struct {
	Frame  int64       `json:"frame"`
	Proc   spec.ProcID `json:"proc"`
	Op     Op          `json:"op"`
	Reason string      `json:"reason"`
}

// Stats are the manager's cumulative counters.
type Stats struct {
	Joins     int `json:"joins"`
	Leaves    int `json:"leaves"`
	Rejected  int `json:"rejected"`
	Evictions int `json:"evictions"`
	Converges int `json:"converges"`
}

// Config configures NewManager.
type Config struct {
	// Spec is the full reconfiguration specification; its platform declares
	// every processor that may ever be a member (spares included).
	Spec *spec.ReconfigSpec
	// Pool is the system's processor pool.
	Pool *failstop.Pool
	// Auth is the processor hosting the SCRAM kernel at boot.
	Auth spec.ProcID
	// Events schedules join and leave operations.
	Events []Event
	// CatchUpFrames is the number of catch-up copy frames before a joining
	// processor is promoted to a takeover-eligible standby (0 selects the
	// default of 3).
	CatchUpFrames int
	// Required lists processors that may never leave: the SCRAM's hosts.
	Required []spec.ProcID
}

// managerMetrics holds the manager's pre-resolved metric handles.
type managerMetrics struct {
	joins, leaves, rejected, evictions, converges *telemetry.Counter
	epoch, members                                *telemetry.Gauge
}

func resolveManagerMetrics(reg *telemetry.Registry) *managerMetrics {
	return &managerMetrics{
		joins:     reg.Counter("membership/joins"),
		leaves:    reg.Counter("membership/leaves"),
		rejected:  reg.Counter("membership/rejected"),
		evictions: reg.Counter("membership/evictions"),
		converges: reg.Counter("membership/converges"),
		epoch:     reg.Gauge("membership/epoch"),
		members:   reg.Gauge("membership/members"),
	}
}

// Manager maintains the frame-synchronous membership view. It is driven from
// the frame-commit hook chain: Step before the SCRAM manager's hook (so a
// takeover in the same frame sees the updated candidate set and the kernel
// stamps the frame's epoch into its commands), Finish after it and before
// the stable-storage commits (so the frame's record commits at the frame's
// own boundary).
type Manager struct {
	rs            *spec.ReconfigSpec
	pool          *failstop.Pool
	events        []Event
	catchUpFrames int
	required      map[spec.ProcID]bool

	view View
	// epochHint is the monotonicity floor: the largest epoch ever observed,
	// surviving convergence from records claiming arbitrary epochs. Bumps go
	// to max(view.Epoch, epochHint)+1, so the committed epoch sequence is
	// strictly increasing no matter what garbage a corrupt record carried.
	epochHint int64
	dirty     bool

	stats    Stats
	rejected []Rejection
	log      []FrameRecord
	tel      telemetry.Sink
	met      *managerMetrics
	// book marks epoch changes in the causal trace layer (nil-safe): an
	// epoch bump inside an open reconfiguration trace joins it as a child
	// span; one in quiet operation stands alone as a single-span trace.
	book       *telemetry.SpanBook
	keyScratch []string
	// ownerScratch is the sorted-key scratch for the per-frame Finish
	// record; reused so steady frames stage the membership log without a
	// sort allocation.
	ownerScratch []spec.AppID
}

// NewManager builds the manager with an epoch-1 view: every processor any
// configuration places applications on, plus the required SCRAM hosts. The
// initial member set must itself verify, like any later one.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Spec == nil || cfg.Pool == nil {
		return nil, fmt.Errorf("membership: Spec and Pool are required")
	}
	catchUp := cfg.CatchUpFrames
	if catchUp <= 0 {
		catchUp = defaultCatchUpFrames
	}
	m := &Manager{
		rs:            cfg.Spec,
		pool:          cfg.Pool,
		events:        append([]Event(nil), cfg.Events...),
		catchUpFrames: catchUp,
		required:      make(map[spec.ProcID]bool, len(cfg.Required)+1),
		tel:           telemetry.NopSink{},
		met:           resolveManagerMetrics(telemetry.NewRegistry()),
	}
	sort.SliceStable(m.events, func(i, j int) bool { return m.events[i].Frame < m.events[j].Frame })
	m.required[cfg.Auth] = true
	for _, id := range cfg.Required {
		m.required[id] = true
	}

	initial := make(map[spec.ProcID]bool, len(cfg.Spec.Platform.Procs))
	for _, c := range cfg.Spec.Configs {
		for _, p := range c.PlacedProcs() {
			initial[p] = true
		}
	}
	for _, id := range det.SortedKeys(m.required) {
		initial[id] = true
	}
	members := make([]Member, 0, len(initial))
	for _, id := range det.SortedKeys(initial) {
		if _, ok := cfg.Spec.Platform.Proc(id); !ok {
			return nil, fmt.Errorf("membership: initial member %q is not on the platform", id)
		}
		members = append(members, Member{Proc: id, Status: StatusActive, CaughtUp: true})
	}
	m.view = View{Epoch: 1, Auth: cfg.Auth, Members: members}
	if m.view.Member(cfg.Auth) == nil {
		return nil, fmt.Errorf("membership: authoritative host %q is not a member", cfg.Auth)
	}
	if err := Verify(m.rs, m.memberIDs(nil)); err != nil {
		return nil, err
	}
	m.epochHint = m.view.Epoch
	m.dirty = true
	return m, nil
}

// SetTelemetry attaches the manager to the system's metrics registry and
// flight recorder; nil arguments leave the no-op attachments in place.
func (m *Manager) SetTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	m.tel = telemetry.OrNop(rec)
	if reg != nil {
		m.met = resolveManagerMetrics(reg)
	}
	m.met.epoch.Set(m.view.Epoch)
	m.met.members.Set(int64(len(m.view.Members)))
}

// SetTracing attaches the system's span book; nil leaves tracing off.
func (m *Manager) SetTracing(book *telemetry.SpanBook) { m.book = book }

// Epoch returns the current membership epoch.
func (m *Manager) Epoch() int64 { return m.view.Epoch }

// View returns a copy of the current membership view.
func (m *Manager) View() View { return m.view.Clone() }

// Stats returns the cumulative membership counters.
func (m *Manager) Stats() Stats { return m.stats }

// Rejections returns the refused membership changes, in frame order.
func (m *Manager) Rejections() []Rejection {
	return append([]Rejection(nil), m.rejected...)
}

// Log returns the per-frame membership log the invariant checkers consume.
func (m *Manager) Log() []FrameRecord { return m.log }

// memberIDs appends the current member processors (plus extra) to a nil
// slice, sorted — the shape Verify consumes.
func (m *Manager) memberIDs(extra []spec.ProcID) []spec.ProcID {
	ids := make([]spec.ProcID, 0, len(m.view.Members)+len(extra))
	for _, mem := range m.view.Members {
		ids = append(ids, mem.Proc)
	}
	ids = append(ids, extra...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// memberIDsWithout returns the member processors minus one, sorted.
func (m *Manager) memberIDsWithout(drop spec.ProcID) []spec.ProcID {
	ids := make([]spec.ProcID, 0, len(m.view.Members))
	for _, mem := range m.view.Members {
		if mem.Proc != drop {
			ids = append(ids, mem.Proc)
		}
	}
	return ids
}

// Step advances the membership layer by one frame, before the SCRAM
// manager's own hook: it validates the committed membership record
// (self-stabilization), reconciles member statuses with the processor pool
// (crash eviction and repair re-join), applies the frame's scheduled join
// and leave events under online re-verification, runs the catch-up copies,
// and — if anything changed — moves the view to a strictly larger epoch.
// st is the active kernel's stable store (still the failed primary's during
// a takeover frame; stable storage survives fail-stop halts and stays
// readable).
func (m *Manager) Step(f int64, st *stable.Store) {
	changed := false
	authAlive := m.procAlive(m.view.Auth)

	// Self-stabilization: the committed record must decode, checksum, and
	// agree with the authoritative frame-synchronous view. Any defect —
	// torn bytes, an epoch from the future, members the platform never
	// declared, plain divergence — drives a re-commit of the legal view
	// under a strictly larger epoch at this frame's boundary.
	if authAlive {
		if raw, ok := st.Get(RecordKey); ok {
			if reason := m.recordDefect(raw); reason != "" {
				m.stats.Converges++
				m.met.converges.Inc()
				m.tel.Record(telemetry.Event{
					Frame:  f,
					Kind:   telemetry.KindMembershipConverge,
					Host:   string(m.view.Auth),
					Detail: reason,
				})
				changed = true
			}
		}
	}

	// Crash eviction and repair re-join, from the pool's actual state.
	for i := range m.view.Members {
		mem := &m.view.Members[i]
		p, err := m.pool.Proc(mem.Proc)
		if err != nil {
			continue
		}
		failed := p.State() == failstop.StateFailed
		switch {
		case failed && mem.Status != StatusDown:
			mem.Status, mem.CaughtUp, mem.CatchUp = StatusDown, false, 0
			m.stats.Evictions++
			m.met.evictions.Inc()
			m.tel.Record(telemetry.Event{
				Frame:  f,
				Kind:   telemetry.KindMemberEvict,
				Host:   string(mem.Proc),
				Detail: "crash-detected eviction",
			})
			changed = true
		case !failed && mem.Status == StatusDown:
			mem.Status, mem.CatchUp = StatusJoining, 0
			m.tel.Record(telemetry.Event{
				Frame:  f,
				Kind:   telemetry.KindMemberJoin,
				Host:   string(mem.Proc),
				Detail: "repaired; re-joining through catch-up",
			})
			changed = true
		}
	}

	// Scheduled joins and leaves.
	for _, ev := range m.events {
		if ev.Frame != f {
			continue
		}
		switch ev.Op {
		case OpJoin:
			changed = m.join(f, ev.Proc) || changed
		case OpLeave:
			changed = m.leave(f, ev.Proc) || changed
		}
	}

	// Catch-up: refresh every live non-auth member's copy of the SCRAM's
	// committed state. Joining members count copy frames toward promotion;
	// caught-up standbys keep refreshing, so their local copy is at most
	// one frame stale — the fallback restore source if the primary's own
	// snapshot is found corrupt during a takeover.
	if authAlive {
		var snap map[string][]byte
		for i := range m.view.Members {
			mem := &m.view.Members[i]
			if mem.Proc == m.view.Auth || mem.Status == StatusDown {
				continue
			}
			p, err := m.pool.Proc(mem.Proc)
			if err != nil || !p.Alive() {
				continue
			}
			if snap == nil {
				snap = st.SnapshotPrefix(scramPrefix)
			}
			m.keyScratch = det.SortedKeysInto(m.keyScratch, snap)
			dst := p.Stable()
			for _, k := range m.keyScratch {
				dst.Put(catchUpPrefix+k, snap[k])
			}
			if mem.Status == StatusJoining {
				mem.CatchUp++
				if mem.CatchUp >= m.catchUpFrames {
					mem.Status, mem.CaughtUp = StatusActive, true
					m.tel.Record(telemetry.Event{
						Frame:  f,
						Kind:   telemetry.KindMemberJoin,
						Host:   string(mem.Proc),
						Detail: fmt.Sprintf("caught up after %d frames; takeover-eligible", mem.CatchUp),
					})
					changed = true
				}
			}
		}
	}

	if changed {
		m.bumpEpoch()
		m.markEpoch(f)
	}
}

// markEpoch records the epoch change as an instantaneous span.
func (m *Manager) markEpoch(f int64) {
	if !m.book.Enabled() {
		return
	}
	m.book.Mark(f, telemetry.SpanEpoch, telemetry.Event{
		Host: string(m.view.Auth),
		Attrs: map[string]int64{
			"epoch":   m.view.Epoch,
			"members": int64(len(m.view.Members)),
		},
	})
}

// recordDefect classifies a committed membership record against the
// authoritative view; an empty string means the record is sound.
func (m *Manager) recordDefect(raw []byte) string {
	v, err := DecodeRecord(raw)
	if err != nil {
		return err.Error()
	}
	if v.Epoch > m.epochHint {
		// Whatever epoch the record claims becomes the monotonicity
		// floor, so convergence always moves strictly past it.
		m.epochHint = v.Epoch
	}
	if v.Epoch < 1 {
		return fmt.Sprintf("record epoch %d is illegal", v.Epoch)
	}
	for _, mem := range v.Members {
		if _, ok := m.rs.Platform.Proc(mem.Proc); !ok {
			return fmt.Sprintf("record names departed or undeclared processor %q", mem.Proc)
		}
	}
	if v.Member(v.Auth) == nil {
		return fmt.Sprintf("record's authoritative host %q is not a member", v.Auth)
	}
	if v.Epoch != m.view.Epoch || v.Auth != m.view.Auth || !membersEqual(v.Members, m.view.Members) {
		return fmt.Sprintf("record diverged from the frame-synchronous view (epoch %d, want %d)", v.Epoch, m.view.Epoch)
	}
	return ""
}

// join admits a processor as a joining standby. Joins extend the platform,
// so re-verification can only fail for a processor the specification never
// declared.
func (m *Manager) join(f int64, proc spec.ProcID) bool {
	if m.view.Member(proc) != nil {
		return false // already a member; repair re-join is handled by Step
	}
	p, err := m.pool.Proc(proc)
	if err != nil {
		m.reject(f, proc, OpJoin, fmt.Sprintf("undeclared processor: %v", err))
		return false
	}
	if err := Verify(m.rs, m.memberIDs([]spec.ProcID{proc})); err != nil {
		m.reject(f, proc, OpJoin, err.Error())
		return false
	}
	if p.State() == failstop.StateOff {
		p.Repair() // spares boot powered off; a joiner must run to catch up
	}
	m.view.Members = append(m.view.Members, Member{Proc: proc, Status: StatusJoining})
	sort.Slice(m.view.Members, func(i, j int) bool { return m.view.Members[i].Proc < m.view.Members[j].Proc })
	m.stats.Joins++
	m.met.joins.Inc()
	m.met.members.Set(int64(len(m.view.Members)))
	m.tel.Record(telemetry.Event{
		Frame:  f,
		Kind:   telemetry.KindMemberJoin,
		Host:   string(proc),
		Detail: fmt.Sprintf("joining; catch-up %d frames", m.catchUpFrames),
	})
	return true
}

// leave drains a processor gracefully. The removal must re-verify: if any
// configuration still places applications on the processor (or the shrunken
// platform fails any other static obligation), the change is rejected and
// the prior epoch keeps serving.
func (m *Manager) leave(f int64, proc spec.ProcID) bool {
	if m.view.Member(proc) == nil {
		return false
	}
	if m.required[proc] {
		m.reject(f, proc, OpLeave, "required SCRAM host may not leave")
		return false
	}
	if err := Verify(m.rs, m.memberIDsWithout(proc)); err != nil {
		m.reject(f, proc, OpLeave, err.Error())
		return false
	}
	kept := m.view.Members[:0]
	for _, mem := range m.view.Members {
		if mem.Proc != proc {
			kept = append(kept, mem)
		}
	}
	m.view.Members = kept
	m.stats.Leaves++
	m.met.leaves.Inc()
	m.met.members.Set(int64(len(m.view.Members)))
	m.tel.Record(telemetry.Event{
		Frame:  f,
		Kind:   telemetry.KindMemberLeave,
		Host:   string(proc),
		Detail: "graceful leave verified",
	})
	return true
}

func (m *Manager) reject(f int64, proc spec.ProcID, op Op, reason string) {
	m.rejected = append(m.rejected, Rejection{Frame: f, Proc: proc, Op: op, Reason: reason})
	m.stats.Rejected++
	m.met.rejected.Inc()
	m.tel.Record(telemetry.Event{
		Frame:  f,
		Kind:   telemetry.KindMembershipReject,
		Host:   string(proc),
		Detail: fmt.Sprintf("%s rejected: %s", op, reason),
	})
}

// bumpEpoch moves the view to a strictly larger epoch than both the current
// view and every epoch ever observed in a committed record.
func (m *Manager) bumpEpoch() {
	next := m.view.Epoch
	if m.epochHint > next {
		next = m.epochHint
	}
	next++
	m.view.Epoch = next
	m.epochHint = next
	m.dirty = true
	m.met.epoch.Set(next)
}

// OnTakeover is called by the SCRAM manager, within the takeover frame,
// after a standby restored the kernel: the authoritative host changes, which
// always opens a new epoch — the committed (epoch, auth) pairs therefore
// never show two authoritative kernels for one epoch.
func (m *Manager) OnTakeover(f int64, newAuth spec.ProcID) {
	m.view.Auth = newAuth
	if mem := m.view.Member(newAuth); mem != nil {
		mem.Status, mem.CaughtUp = StatusActive, true
	}
	m.bumpEpoch()
	m.markEpoch(f)
}

// Finish closes the frame, after the SCRAM manager's hook and before the
// stable-storage commits: a changed view is staged onto the (possibly new)
// active kernel's store so the epoch commits at this frame's boundary, and
// the frame's membership state is appended to the invariant log. owners maps
// each placed application to the processor actually hosting it this frame.
func (m *Manager) Finish(f int64, st *stable.Store, owners map[spec.AppID]spec.ProcID) error {
	if m.dirty && m.procAlive(m.view.Auth) {
		raw, err := EncodeRecord(m.view)
		if err != nil {
			return err
		}
		st.Put(RecordKey, raw)
		m.dirty = false
	}
	rec := FrameRecord{
		Frame:   f,
		Epoch:   m.view.Epoch,
		Auth:    m.view.Auth,
		Members: append([]Member(nil), m.view.Members...),
	}
	m.ownerScratch = det.SortedKeysInto(m.ownerScratch, owners)
	for _, id := range m.ownerScratch {
		rec.Owners = append(rec.Owners, Owner{App: id, Proc: owners[id]})
	}
	m.log = append(m.log, rec)
	return nil
}

// TakeoverCandidates returns the processors eligible to restore the kernel,
// sorted by ID: caught-up, live, active members other than the current
// authoritative host.
func (m *Manager) TakeoverCandidates() []spec.ProcID {
	var out []spec.ProcID
	for _, mem := range m.view.Members {
		if mem.Proc == m.view.Auth || mem.Status != StatusActive || !mem.CaughtUp {
			continue
		}
		if m.procAlive(mem.Proc) {
			out = append(out, mem.Proc)
		}
	}
	return out
}

// StandbyProcs returns the member processors that must stay powered: every
// non-down member (joining processors need frames to catch up; caught-up
// standbys must stay warm to be takeover-eligible).
func (m *Manager) StandbyProcs() []spec.ProcID {
	var out []spec.ProcID
	for _, mem := range m.view.Members {
		if mem.Status != StatusDown {
			out = append(out, mem.Proc)
		}
	}
	return out
}

// CatchUpSnapshot returns proc's committed catch-up copy of the SCRAM's
// stable state, with keys mapped back to their original names — the shape
// scram.Restore consumes. It returns nil if proc holds no copy. The copy
// trails the primary's own committed state by at most one frame, which a
// restored kernel tolerates: it re-plans from the restored state exactly as
// it would after losing the takeover frame itself.
func (m *Manager) CatchUpSnapshot(proc spec.ProcID) map[string][]byte {
	p, err := m.pool.Proc(proc)
	if err != nil {
		return nil
	}
	snap := p.Stable().SnapshotPrefix(catchUpPrefix)
	if len(snap) == 0 {
		return nil
	}
	out := make(map[string][]byte, len(snap))
	m.keyScratch = det.SortedKeysInto(m.keyScratch, snap)
	for _, k := range m.keyScratch {
		out[k[len(catchUpPrefix):]] = snap[k]
	}
	return out
}

func (m *Manager) procAlive(id spec.ProcID) bool {
	p, err := m.pool.Proc(id)
	return err == nil && p.Alive()
}
