package membership

import (
	"fmt"

	"repro/internal/spec"
	"repro/internal/statics"
)

// Verify discharges the static proof obligations of the extended transition
// table against a candidate member set: the full reconfiguration
// specification is re-checked with the platform restricted to the members,
// exactly as if the reduced system had been verified offline. A change that
// cannot be verified — most importantly removing a processor some
// configuration still places applications on — returns an error naming the
// failed obligation, and the caller must keep serving under the prior epoch.
//
// The shadow specification shares the immutable declaration data with the
// original; only the platform differs, so a verification costs one statics
// pass and allocates nothing persistent.
func Verify(rs *spec.ReconfigSpec, members []spec.ProcID) error {
	keep := make(map[spec.ProcID]bool, len(members))
	for _, id := range members {
		keep[id] = true
	}
	shadow := *rs
	shadow.Platform = spec.Platform{Procs: make([]spec.Proc, 0, len(members))}
	for _, p := range rs.Platform.Procs {
		if keep[p.ID] {
			shadow.Platform.Procs = append(shadow.Platform.Procs, p)
		}
	}
	report, err := statics.Check(&shadow)
	if err != nil {
		return fmt.Errorf("membership: member set %v fails validation: %w", members, err)
	}
	if !report.AllDischarged() {
		return fmt.Errorf("membership: member set %v fails obligations: %v", members, report.Failures())
	}
	return nil
}
