// The fleet manifest is the host's own black box: a CRC-checksummed,
// replicated stable store journaling everything needed to rebuild the fleet
// after the *process* dies — every SpawnSpec, every acked injection (the
// applied_frame ack is exactly the replay recipe), and a periodic per-tenant
// checkpoint of the frame reached. Tenants themselves are deterministic, so
// the manifest never stores tenant state: recovery re-spawns each tenant
// from its spec and replays its acked injections at their applied frames,
// reproducing the pre-crash execution byte-identically.
//
// Storage layout (all values JSON, all records CRC-framed by the stable
// layer underneath):
//
//	manifest/t/<id>/spawn          spawnRecord{Seq, Spec}
//	manifest/t/<id>/inj/<ord hex>  injRecord{Ord, Injection, Applied, RequestID}
//	manifest/t/<id>/ckpt           ckptRecord{Frame, State, Reason}
//
// Killing a tenant deletes its whole key range in one commit, so the
// manifest's footprint is bounded by the live fleet, not its history.
//
// Failure handling is self-stabilizing, not halting: a record torn on one
// replica is healed by read repair; a record lost on every replica is
// converged past — the tenant that record belonged to is quarantined (lost
// spawn or injection) or merely loses checkpoint progress (lost ckpt), and
// every other tenant recovers untouched.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/stable"
)

const (
	manifestPrefix   = "manifest/t/"
	spawnSuffix      = "/spawn"
	ckptSuffix       = "/ckpt"
	injSuffixPrefix  = "/inj/"
	maxTenantIDBytes = 128
)

// ValidateTenantID rejects identifiers that cannot live in manifest keys or
// URL paths. The host enforces it for every spawn, durable or not, so specs
// stay portable between the two modes.
func ValidateTenantID(id string) error {
	if id == "" {
		return errors.New("fleet: empty tenant id")
	}
	if len(id) > maxTenantIDBytes {
		return fmt.Errorf("fleet: tenant id longer than %d bytes", maxTenantIDBytes)
	}
	for i := 0; i < len(id); i++ {
		if id[i] == '/' || id[i] < 0x20 {
			return fmt.Errorf("fleet: tenant id %q contains %q", id, id[i])
		}
	}
	return nil
}

// spawnRecord journals one tenant's creation. Seq is the spawn sequence
// number, preserved so a recovered fleet lists tenants in their original
// spawn order.
type spawnRecord struct {
	Seq  int64     `json:"seq"`
	Spec SpawnSpec `json:"spec"`
}

// injRecord journals one acked injection: the ord fixes the apply order
// within the tenant (assigned under the tenant lock at apply time), Applied
// is the acked frame, and RequestID carries the client's idempotency key so
// the dedupe cache survives a restart.
type injRecord struct {
	Ord       int64     `json:"ord"`
	Inj       Injection `json:"inj"`
	Applied   int64     `json:"applied"`
	RequestID string    `json:"request_id,omitempty"`
}

// ckptRecord journals a tenant's progress: the highest frame boundary known
// committed, plus the lifecycle state so completed and quarantined tenants
// restore without guessing. Recovery replays the tenant to Frame; anything
// the tenant ran past its last checkpoint is progress lost to the crash,
// bounded by Config.CheckpointEvery.
type ckptRecord struct {
	Frame  int64  `json:"frame"`
	State  State  `json:"state"`
	Reason string `json:"reason,omitempty"`
}

func spawnKey(id string) string { return manifestPrefix + id + spawnSuffix }
func ckptKey(id string) string  { return manifestPrefix + id + ckptSuffix }
func injKey(id string, ord int64) string {
	return fmt.Sprintf("%s%s%s%016x", manifestPrefix, id, injSuffixPrefix, ord)
}

// manifest serializes all commits to the fleet's durable store. A nil
// manifest (host without a Config.Manifest store) turns every method into a
// no-op, which is the pre-durability in-memory behavior.
type manifest struct {
	mu  sync.Mutex
	st  *stable.Store
	err error // first commit/storage fault; latched, fails later mutations
}

func newManifest(st *stable.Store) *manifest {
	if st == nil {
		return nil
	}
	m := &manifest{st: st}
	st.SetFaultSink(func(err error) {
		m.mu.Lock()
		if m.err == nil {
			m.err = err
		}
		m.mu.Unlock()
	})
	return m
}

// commitLocked commits the staged batch and surfaces a latched fault.
func (m *manifest) commitLocked() error {
	m.st.Commit()
	return m.err
}

// recordSpawn durably journals a tenant before it becomes visible.
func (m *manifest) recordSpawn(seq int64, ss SpawnSpec) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if err := m.st.PutJSON(spawnKey(ss.ID), spawnRecord{Seq: seq, Spec: ss}); err != nil {
		return err
	}
	return m.commitLocked()
}

// recordInjection durably journals an acked injection. It runs after the
// injection's frame barrier and before the ack leaves the control plane:
// an acked injection is always replayable, an unacked one may be lost with
// the crash — at-most-once, never silently divergent.
func (m *manifest) recordInjection(tenantID string, rec injRecord) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if err := m.st.PutJSON(injKey(tenantID, rec.Ord), rec); err != nil {
		return err
	}
	return m.commitLocked()
}

// recordCheckpoints journals a batch of tenant checkpoints in one commit —
// the sweep loop's periodic progress barrier and the drain path's final one.
func (m *manifest) recordCheckpoints(cks map[string]ckptRecord) error {
	if m == nil || len(cks) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	for id, ck := range cks {
		if err := m.st.PutJSON(ckptKey(id), ck); err != nil {
			return err
		}
	}
	return m.commitLocked()
}

// removeTenant deletes a killed tenant's whole manifest range in one
// commit, keeping the manifest bounded by the live fleet.
func (m *manifest) removeTenant(tenantID string) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	for _, k := range m.st.Keys(manifestPrefix + tenantID + "/") {
		m.st.Delete(k)
	}
	return m.commitLocked()
}

// tenantManifest is one tenant's parsed manifest: the replay recipe.
type tenantManifest struct {
	Seq        int64
	Spec       SpawnSpec
	Injections []injRecord // ord order; gaps are legal (barrier-failed ords)
	Ckpt       ckptRecord  // zero value when no checkpoint was committed
	HasCkpt    bool
	// Damaged, when non-empty, names why this tenant cannot be replayed
	// faithfully (a lost injection record); recovery quarantines it.
	Damaged string
}

// loadManifest parses the manifest out of the store, converging past
// unrecoverable records. It returns the per-tenant recipes plus the ids of
// tenants whose spawn record is lost entirely (nothing to respawn from —
// reported, then dropped).
func loadManifest(st *stable.Store) (map[string]*tenantManifest, []string, error) {
	rep := st.Hardened()
	if rep == nil {
		return nil, nil, errors.New("fleet: manifest store is not hardened")
	}
	snap, err := rep.SnapshotPrefix(manifestPrefix)
	var lost []string
	if err != nil {
		if !errors.Is(err, stable.ErrUnrecoverable) {
			return nil, nil, fmt.Errorf("fleet: loading manifest: %w", err)
		}
		// Converge past: structured list of the dead keys, damage scoped
		// to the tenants that owned them.
		lost = rep.LostKeys(manifestPrefix)
	}

	tenants := make(map[string]*tenantManifest)
	get := func(id string) *tenantManifest {
		tm := tenants[id]
		if tm == nil {
			tm = &tenantManifest{}
			tenants[id] = tm
		}
		return tm
	}
	var parseErrs []string
	for key, raw := range snap {
		id, kind, ord, ok := parseManifestKey(key)
		if !ok {
			parseErrs = append(parseErrs, fmt.Sprintf("unparseable key %q", key))
			continue
		}
		tm := get(id)
		switch kind {
		case "spawn":
			var sr spawnRecord
			if err := json.Unmarshal(raw, &sr); err != nil {
				tm.Damaged = "spawn record undecodable: " + err.Error()
				continue
			}
			sr.Spec.ID = id
			tm.Seq, tm.Spec = sr.Seq, sr.Spec
		case "inj":
			var ir injRecord
			if err := json.Unmarshal(raw, &ir); err != nil {
				tm.Damaged = fmt.Sprintf("injection record %d undecodable: %v", ord, err)
				continue
			}
			tm.Injections = append(tm.Injections, ir)
		case "ckpt":
			var ck ckptRecord
			if err := json.Unmarshal(raw, &ck); err != nil {
				// A bad checkpoint only costs progress, never correctness.
				continue
			}
			tm.Ckpt, tm.HasCkpt = ck, true
		}
	}
	for _, key := range lost {
		id, kind, ord, ok := parseManifestKey(key)
		if !ok {
			continue
		}
		tm := get(id)
		switch kind {
		case "spawn":
			tm.Damaged = "spawn record lost on all replicas"
		case "inj":
			tm.Damaged = fmt.Sprintf("injection record %d lost on all replicas", ord)
		case "ckpt":
			// Progress loss only: replay falls back to the injection
			// barrier frames.
		}
	}

	var unrecoverable []string
	for id, tm := range tenants {
		if tm.Spec.Preset == "" && tm.Damaged == "" {
			tm.Damaged = "spawn record missing"
		}
		if tm.Spec.Preset == "" {
			// Nothing to respawn from: drop the tenant, report it.
			unrecoverable = append(unrecoverable, id)
			delete(tenants, id)
			continue
		}
		sort.Slice(tm.Injections, func(i, j int) bool { return tm.Injections[i].Ord < tm.Injections[j].Ord })
	}
	sort.Strings(unrecoverable)
	if len(parseErrs) > 0 {
		// Foreign keys under the manifest prefix are converged past too,
		// but deserve a surfaced note rather than silence.
		unrecoverable = append(unrecoverable, parseErrs...)
	}
	return tenants, unrecoverable, nil
}

// parseManifestKey splits manifest/t/<id>/spawn|ckpt|inj/<ord>.
func parseManifestKey(key string) (id, kind string, ord int64, ok bool) {
	rest, found := strings.CutPrefix(key, manifestPrefix)
	if !found {
		return "", "", 0, false
	}
	// Tenant ids cannot contain '/', so the first slash ends the id.
	i := strings.IndexByte(rest, '/')
	if i <= 0 {
		return "", "", 0, false
	}
	id, rest = rest[:i], rest[i:]
	switch {
	case rest == spawnSuffix:
		return id, "spawn", 0, true
	case rest == ckptSuffix:
		return id, "ckpt", 0, true
	case strings.HasPrefix(rest, injSuffixPrefix):
		n, err := strconv.ParseInt(rest[len(injSuffixPrefix):], 16, 64)
		if err != nil {
			return "", "", 0, false
		}
		return id, "inj", n, true
	}
	return "", "", 0, false
}
