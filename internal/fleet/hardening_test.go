package fleet

// Control-plane hardening tests: the applied_frame ack barrier (the ack-race
// regression), the quarantine-snapshot LRU, bounded tenant state under
// retention, and the HTTP plane's admission/drain gates.

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// manualHost builds a host with no scheduler loop: frames advance only when
// the test calls stepBatch, which makes barrier timing deterministic. The
// returned cleanup closes tenant systems (Close would block with no loop).
func manualHost(t *testing.T, cfg Config) *Host {
	t.Helper()
	h := newHostNoLoop(cfg)
	t.Cleanup(func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		for _, ten := range h.tenants {
			ten.mu.Lock()
			if !ten.closed {
				ten.closed = true
				ten.sys.Close()
			}
			ten.mu.Unlock()
		}
	})
	return h
}

// TestInjectAcksOnlyCommittedFrames is the ack-race regression test: the
// applied_frame ack must not be issued until the injected frame's commit
// barrier. Before the fix, Inject returned as soon as the injection was
// staged — a crash between the ack and the frame's execution produced an
// acked injection the recovered fleet had never run, breaking replay.
func TestInjectAcksOnlyCommittedFrames(t *testing.T) {
	h := manualHost(t, Config{})
	ten, err := h.Spawn(SpawnSpec{ID: "b", Preset: "threeconfig", Seed: 17})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}

	type ack struct {
		applied int64
		err     error
	}
	acked := make(chan ack, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		applied, err := h.Inject("b", Injection{Kind: "env", Factor: "alt1", Value: "failed"})
		acked <- ack{applied, err}
	}()

	// No frames are advancing, so the ack must not arrive.
	select {
	case a := <-acked:
		t.Fatalf("ack (%d, %v) issued before the injected frame committed", a.applied, a.err)
	case <-time.After(50 * time.Millisecond):
	}

	// Advance past the injected frame: the barrier releases the ack, and
	// the acked frame is now strictly behind the committed frontier.
	ten.stepBatch(4)
	wg.Wait()
	a := <-acked
	if a.err != nil {
		t.Fatalf("inject: %v", a.err)
	}
	if frame := ten.Status().Frame; frame <= a.applied {
		t.Fatalf("acked frame %d but tenant is only at %d: ack outran the commit barrier", a.applied, frame)
	}
}

// TestInjectBarrierFailsOnQuarantine: an injection whose frame dies with a
// quarantine must error, never ack — an acked-but-unexecuted frame is a
// corrupt replay recipe.
func TestInjectBarrierFailsOnQuarantine(t *testing.T) {
	h := manualHost(t, Config{})
	ten, err := h.Spawn(SpawnSpec{ID: "q", Preset: "threeconfig", Seed: 18})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	ten.stepBatch(3)
	next := ten.Status().Frame

	// Arm a panic at the next frame, then inject env at the same frame: the
	// frame can never commit, so the env ack must fail.
	if _, err := ten.Inject(Injection{Kind: "panic", Frame: next}); err != nil {
		t.Fatalf("arm panic: %v", err)
	}
	acked := make(chan error, 1)
	go func() {
		_, err := h.Inject("q", Injection{Kind: "env", Factor: "alt1", Value: "failed"})
		acked <- err
	}()
	select {
	case err := <-acked:
		t.Fatalf("premature ack outcome before stepping: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	ten.stepBatch(2) // fires the panic at frame `next`
	if err := <-acked; err == nil {
		t.Fatal("env injection acked although its frame died with the quarantine")
	}
	if st := ten.Status(); st.State != StateQuarantined {
		t.Fatalf("tenant = %+v, want quarantined", st)
	}
}

// TestQuarantineSnapshotLRU: the host caps cached post-mortem snapshots;
// evicted tenants re-recover theirs from committed stable storage on demand
// and re-enter the cache, evicting the now-least-recent victim.
func TestQuarantineSnapshotLRU(t *testing.T) {
	h := manualHost(t, Config{QuarantineCache: 2})
	tens := make([]*Tenant, 3)
	for i, id := range []string{"l-0", "l-1", "l-2"} {
		ten, err := h.Spawn(SpawnSpec{ID: id, Preset: "threeconfig", Seed: int64(40 + i)})
		if err != nil {
			t.Fatalf("spawn %s: %v", id, err)
		}
		tens[i] = ten
		ten.stepBatch(8) // real work first, so the black box is non-trivial
		if _, err := ten.Inject(Injection{Kind: "panic"}); err != nil {
			t.Fatalf("arm %s: %v", id, err)
		}
		ten.stepBatch(2) // fire: quarantines in deterministic order 0,1,2
	}

	cached := func(ten *Tenant) bool {
		ten.mu.Lock()
		defer ten.mu.Unlock()
		return ten.final != nil
	}
	if cached(tens[0]) {
		t.Fatal("l-0 still cached: LRU did not evict past the cap")
	}
	if !cached(tens[1]) || !cached(tens[2]) {
		t.Fatal("recently quarantined tenants evicted within the cap")
	}
	if n := h.quarantineCached(); n != 2 {
		t.Fatalf("cache occupancy %d, want 2", n)
	}

	// Serving the evicted tenant re-recovers its post-mortem from stable
	// storage and re-caches it, evicting the least recently served.
	snap, ok := tens[0].TelemetrySnapshot()
	if !ok || len(snap.Events) == 0 {
		t.Fatalf("evicted tenant re-recovery failed (ok=%v, %d events)", ok, len(snap.Events))
	}
	if !cached(tens[0]) {
		t.Fatal("re-recovered snapshot not re-cached")
	}
	if cached(tens[1]) {
		t.Fatal("LRU did not evict the least recently served tenant")
	}
}

// TestRetentionBoundsTenantFootprint: with RetainFrames set, a tenant's
// trace — the one per-frame grower — stays within twice the window over a
// 10k-frame run, while the unbounded spec grows linearly. The journal ring
// trims behind the same horizon.
func TestRetentionBoundsTenantFootprint(t *testing.T) {
	run := func(retain int64) *core.System {
		t.Helper()
		opts, err := SpawnOptions(SpawnSpec{Preset: "threeconfig", Seed: 77, RetainFrames: retain})
		if err != nil {
			t.Fatalf("SpawnOptions: %v", err)
		}
		sys, err := core.NewSystem(opts)
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		t.Cleanup(sys.Close)
		if err := sys.StepTo(10_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		return sys
	}

	bounded := run(64)
	if n := bounded.Trace().Len(); n > 128 {
		t.Fatalf("retained trace holds %d states, want <= 2*64: footprint is not flat", n)
	}
	if end := bounded.Trace().End(); end != 10_000 {
		t.Fatalf("trace end %d, want 10000 (absolute cycles must survive trimming)", end)
	}
	_, rec := bounded.Telemetry()
	if rec.Trimmed() == 0 {
		t.Fatal("journal ring never trimmed behind the retention horizon")
	}

	unbounded := run(-1)
	if n := unbounded.Trace().Len(); n != 10_000 {
		t.Fatalf("unbounded trace holds %d states, want 10000", n)
	}
}

// TestAdmissionControlShedsLoad: past the admission limit the control plane
// answers 429 with Retry-After instead of queueing, and a draining host
// refuses mutations with 503 while reads still serve.
func TestAdmissionControlShedsLoad(t *testing.T) {
	h := NewHost(Config{Shards: 1, Batch: 1})
	defer h.Close()
	api := NewAPILimited(h, 1)
	handler := api.Handler()

	// Occupy the single admission slot, then hit the plane again.
	api.sem <- struct{}{}
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("DELETE", "/systems/none", nil))
	if rr.Code != 429 {
		t.Fatalf("status %d at admission limit, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-api.sem
	rr = httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("DELETE", "/systems/none", nil))
	if rr.Code != 404 {
		t.Fatalf("status %d with a free slot, want 404 (semaphore not released)", rr.Code)
	}

	h.Drain()
	rr = httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("DELETE", "/systems/none", nil))
	if rr.Code != 503 {
		t.Fatalf("status %d while draining, want 503", rr.Code)
	}
	rr = httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("GET", "/systems", nil))
	if rr.Code != 200 {
		t.Fatalf("read path status %d while draining, want 200", rr.Code)
	}
}
