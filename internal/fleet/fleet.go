// Package fleet hosts many concurrent reconfigurable systems — one
// core.System per tenant — behind a single long-running service: the
// production shape of the ROADMAP's "millions of users" claim, where every
// connected vehicle or tenant is its own frame-synchronous system.
//
// The host multiplexes tenants over a shared batched scheduler: a fixed pool
// of shard workers sweeps the running tenants each tick, stepping every
// tenant a batch of frames. Tenants are spawned in the frame scheduler's
// sequential mode, so a tenant's entire frame executes inside the shard
// worker's goroutine — which is what makes the isolation boundary work: a
// panicking application is caught by the worker's recover, the tenant is
// quarantined with its black box recoverable from committed stable storage,
// and the sweep moves on. A fail-stopped or panicked tenant never stalls the
// scheduler and never touches another tenant's state.
//
// Determinism survives multiplexing because tenants share nothing: each
// system owns its environment, pool, telemetry and trace RNG (seeded from
// SpawnSpec.Seed), and control-plane injections are serialized with stepping
// by the per-tenant lock, applying between frames exactly like the scripted
// constructs they are defined to mirror (see internal/core/drive.go). A
// tenant stepped by the fleet therefore produces the byte-identical trace of
// the same-seed standalone run — the property the determinism test and the
// CI smoke job hold.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/spectest"
	"repro/internal/telemetry"
	"repro/internal/telemetry/serve"
)

// SpawnSpec names everything needed to construct a tenant: a spec preset
// from the spectest registry, the determinism seed, and an optional frame
// budget. Equal SpawnSpecs produce byte-identically-traced tenants.
type SpawnSpec struct {
	// ID is the tenant identifier; empty lets the host assign one.
	ID string `json:"id,omitempty"`
	// Preset is the named specification preset (spectest.Lookup).
	Preset string `json:"preset"`
	// Seed drives the tenant's trace RNG; equal seeds give equal runs.
	Seed int64 `json:"seed"`
	// Frames caps the tenant's run: after this many frames it completes
	// and stops stepping (still queryable). Zero runs until killed.
	Frames int64 `json:"frames,omitempty"`
	// Script is an optional deterministic environment schedule, applied
	// exactly like a standalone run's scripted events. Runtime injections
	// land on top of (and interleave with) the script.
	Script []envmon.Event `json:"script,omitempty"`
	// RetainFrames bounds the tenant's journal and trace to a sliding
	// window of frames (core.Options.RetainFrames): the weeks-long-run
	// mode, flat memory and stable-store footprint per tenant. Zero
	// inherits the host's Config.RetainFrames default; negative forces
	// unbounded retention on a host with a default. The resolved value is
	// part of the spec (and of the durable manifest): trimming is
	// deterministic, so replays must trim identically.
	RetainFrames int64 `json:"retain_frames,omitempty"`
}

// retainFrames resolves the spec's retention against the host default.
func (ss SpawnSpec) retainFrames() int64 {
	if ss.RetainFrames < 0 {
		return 0
	}
	return ss.RetainFrames
}

// SpawnOptions resolves a SpawnSpec into the core.Options the fleet host
// runs it under. It is exported so a standalone re-execution (the
// determinism test, a post-incident replay) constructs the identical system
// the host did.
func SpawnOptions(ss SpawnSpec) (core.Options, error) {
	preset, err := spectest.Lookup(ss.Preset)
	if err != nil {
		return core.Options{}, err
	}
	rs := preset.New()
	return core.Options{
		Spec:           rs,
		Apps:           core.BasicApps(rs),
		Classifier:     preset.Classifier,
		InitialFactors: preset.Factors(),
		Script:         ss.Script,
		TraceSeed:      ss.Seed,
		RetainFrames:   ss.retainFrames(),
		// Sequential mode runs the tenant's whole frame inside the
		// caller's goroutine: no per-task goroutines (thousands of
		// tenants would multiply them), and application panics surface
		// in the shard worker where recover quarantines the tenant.
		Sequential: true,
	}, nil
}

// State is a tenant's lifecycle state.
type State string

const (
	// StateRunning tenants are stepped by the shard sweep.
	StateRunning State = "running"
	// StateCompleted tenants reached their frame budget; they are no
	// longer stepped but stay fully queryable.
	StateCompleted State = "completed"
	// StateQuarantined tenants panicked or failed a step; they are
	// isolated from the sweep and serve their post-mortem black box.
	StateQuarantined State = "quarantined"
)

// Tenant is one hosted system. All access to the underlying System is
// serialized by mu: the shard worker holds it while stepping, the control
// plane holds it while injecting or snapshotting, so injections always land
// between frames.
type Tenant struct {
	id   string
	spec SpawnSpec
	// host backlinks to the owning Host for the quarantine-snapshot LRU;
	// nil for hand-built test tenants (then snapshots cache unbounded,
	// the pre-LRU behavior).
	host *Host

	mu     sync.Mutex
	sys    *core.System
	state  State
	reason string
	// cond (on mu) is the frame barrier: stepBatch broadcasts after every
	// batch and every lifecycle transition, and Inject waits on it until
	// the injected frame has committed — the applied_frame ack is never
	// issued for a frame the tenant did not execute. Lazily created so
	// hand-built test tenants work.
	cond *sync.Cond
	// injSeq orders injections within the tenant: assigned under mu at
	// apply time, it is the replay order journaled in the manifest.
	injSeq int64
	// panicAt arms a chaos panic: stepBatch panics before executing this
	// frame (0 disarms). Deterministic, so a recovered tenant re-armed
	// with the same frame re-quarantines identically.
	panicAt int64
	// final is the cached post-mortem snapshot of a quarantined tenant,
	// recovered from committed stable storage (the black box), so the
	// serve plane never touches a possibly-torn live system again. The
	// host's LRU may evict it (nil again); it is then re-recovered from
	// the same stable storage on demand.
	final *serve.Snapshot
	// lastCkptFrame/lastCkptState track what the manifest already has, so
	// the checkpoint sweep only stages tenants that moved.
	lastCkptFrame int64
	lastCkptState State
	// closed marks the underlying system torn down (killed tenant, closed
	// host): no snapshot re-recovery, no frame reads.
	closed bool

	frameLen time.Duration
}

// condLocked returns the tenant's frame-barrier cond, creating it on first
// use. Callers hold mu.
func (t *Tenant) condLocked() *sync.Cond {
	if t.cond == nil {
		t.cond = sync.NewCond(&t.mu)
	}
	return t.cond
}

// broadcastLocked wakes injection barriers after progress or a lifecycle
// transition. Callers hold mu.
func (t *Tenant) broadcastLocked() {
	if t.cond != nil {
		t.cond.Broadcast()
	}
}

// Status is a tenant's control-plane view.
type Status struct {
	ID     string `json:"id"`
	Preset string `json:"preset"`
	Seed   int64  `json:"seed"`
	State  State  `json:"state"`
	Frame  int64  `json:"frame"`
	// Frames is the frame budget (0 = unbounded).
	Frames int64 `json:"frames,omitempty"`
	// Reason is why the tenant was quarantined, when it was.
	Reason string `json:"reason,omitempty"`
}

// ID returns the tenant identifier.
func (t *Tenant) ID() string { return t.id }

// Status returns the tenant's current control-plane view.
func (t *Tenant) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Status{
		ID:     t.id,
		Preset: t.spec.Preset,
		Seed:   t.spec.Seed,
		State:  t.state,
		Frame:  t.sys.Frame(),
		Frames: t.spec.Frames,
		Reason: t.reason,
	}
}

// TelemetrySnapshot implements serve.Source: the per-tenant telemetry plane
// (metrics, journal, traces) reads through here. Running and completed
// tenants snapshot the live system under the tenant lock — consistent
// because stepping holds the same lock; quarantined tenants serve the
// cached post-mortem snapshot.
func (t *Tenant) TelemetrySnapshot() (serve.Snapshot, bool) {
	t.mu.Lock()
	if t.state == StateQuarantined {
		if t.final == nil {
			// The host's LRU evicted the cached copy: re-recover the
			// post-mortem on demand from the same committed stable storage
			// quarantine originally read it from.
			t.final = t.postMortemLocked()
		}
		snap := *t.final
		host := t.host
		t.mu.Unlock()
		if host != nil {
			host.noteQuarantine(t)
		}
		return snap, true
	}
	defer t.mu.Unlock()
	if t.final != nil {
		return *t.final, true
	}
	reg, rec := t.sys.Telemetry()
	if reg == nil {
		return serve.Snapshot{}, false
	}
	return serve.Snapshot{
		Frame:    t.sys.Frame(),
		FrameLen: t.frameLen,
		Metrics:  reg.Snapshot(),
		Events:   rec.Events(),
	}, true
}

// Injection is one control-plane fault injection. Kind selects the variant:
//
//   - "env": set environment factor Factor to Value (visible next frame,
//     like a scripted event at the applied frame);
//   - "procfail"/"procrepair": schedule a processor event at Frame
//     (defaulting to the earliest frame that can still apply);
//   - "storage": halt processor Proc with an unrecoverable storage fault;
//   - "panic": arm a deterministic tenant panic at Frame (default: the next
//     frame) — the shard worker's recover quarantines the tenant exactly as
//     a real application panic would. The chaos harness's tenant-level
//     fault.
type Injection struct {
	Kind   string `json:"kind"`
	Factor string `json:"factor,omitempty"`
	Value  string `json:"value,omitempty"`
	Proc   string `json:"proc,omitempty"`
	Frame  int64  `json:"frame,omitempty"`
	// RequestID is the client's idempotency key: the host dedupes repeated
	// requests with the same (tenant, RequestID), replaying the first
	// outcome instead of applying twice. It is journaled with the ack, so
	// dedupe survives a host restart.
	RequestID string `json:"request_id,omitempty"`
}

// Inject applies an injection between frames, waits for the applied frame's
// commit barrier, and returns the frame at which the injection took effect —
// the frame a scripted standalone replay would use to reproduce the run. By
// the time Inject returns nil, that frame has committed (or provably never
// will), so the ack is a faithful replay recipe.
func (t *Tenant) Inject(inj Injection) (int64, error) {
	_, applied, err := t.inject(inj)
	return applied, err
}

// inject is Inject plus the tenant-local ord — the apply order the host
// journals so recovery replays injections in the order they landed.
func (t *Tenant) inject(inj Injection) (ord, applied int64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ord, applied, err = t.applyLocked(inj)
	if err != nil {
		return 0, 0, err
	}
	if inj.Kind == "panic" {
		// The armed frame never commits — a frame barrier would deadlock.
		// The ack means "armed"; replay re-arms the same frame and the
		// tenant re-quarantines identically.
		return ord, applied, nil
	}
	if err := t.awaitAppliedLocked(applied); err != nil {
		return 0, 0, err
	}
	return ord, applied, nil
}

// applyLocked applies one injection between frames and assigns its ord.
// Callers hold mu.
func (t *Tenant) applyLocked(inj Injection) (ord, applied int64, err error) {
	if t.state != StateRunning {
		return 0, 0, fmt.Errorf("fleet: tenant %s is %s, not running", t.id, t.state)
	}
	next := t.sys.Frame()
	switch inj.Kind {
	case "env":
		if inj.Factor == "" {
			return 0, 0, errors.New("fleet: env injection needs a factor")
		}
		t.sys.InjectFactor(envmon.Factor(inj.Factor), inj.Value)
		applied = next
	case "procfail", "procrepair":
		kind := core.ProcFail
		frame := inj.Frame
		if inj.Kind == "procrepair" {
			kind = core.ProcRepair
			if frame == 0 {
				frame = next + 1
			}
		} else if frame == 0 {
			frame = next
		}
		ev := core.ProcEvent{Frame: frame, Proc: spec.ProcID(inj.Proc), Kind: kind}
		if err := t.sys.ScheduleProcEvent(ev); err != nil {
			return 0, 0, err
		}
		applied = ev.Frame
	case "storage":
		if err := t.sys.InjectStorageFault(spec.ProcID(inj.Proc)); err != nil {
			return 0, 0, err
		}
		applied = next
	case "panic":
		frame := inj.Frame
		if frame == 0 {
			frame = next
		}
		if frame < next {
			return 0, 0, fmt.Errorf("fleet: panic at frame %d is in the past (next frame %d)", frame, next)
		}
		t.panicAt = frame
		applied = frame
	default:
		return 0, 0, fmt.Errorf("fleet: unknown injection kind %q (want env, procfail, procrepair, storage or panic)", inj.Kind)
	}
	ord = t.injSeq
	t.injSeq++
	return ord, applied, nil
}

// awaitAppliedLocked is the commit barrier behind every applied_frame ack: it
// blocks (releasing mu via the cond) until the tenant has stepped past the
// applied frame or left the running state. A tenant that completed at or
// before the applied frame acks fine — the injection is a no-op there and in
// any replay, which is still equivalence. A tenant quarantined before the
// frame committed fails the barrier: the frame's effects died with the
// panic, so acking it would hand the client a replay recipe the real run
// never executed. Callers hold mu.
func (t *Tenant) awaitAppliedLocked(applied int64) error {
	cond := t.condLocked()
	for t.state == StateRunning && t.sys.Frame() <= applied {
		cond.Wait()
	}
	if t.state == StateQuarantined && (t.closed || t.sys.Frame() <= applied) {
		return fmt.Errorf("fleet: tenant %s quarantined before frame %d committed: %s", t.id, applied, t.reason)
	}
	return nil
}

// stepBatch advances a running tenant up to n frames, enforcing the frame
// budget and converting panics and step errors into quarantine. It returns
// the number of frames actually stepped.
func (t *Tenant) stepBatch(n int) (stepped int64) {
	var quarantined bool
	t.mu.Lock()
	// The isolation boundary: a panic anywhere under Step — an application
	// bug, a hook, the kernel, an armed chaos panic — quarantines this
	// tenant and returns the shard worker to the sweep. Sequential mode
	// guarantees the panic surfaces here and not in some unrecoverable
	// scheduler goroutine. The broadcast wakes injection barriers after
	// every batch; the LRU registration runs outside the tenant lock so it
	// can take other tenants' locks to evict.
	defer func() {
		if r := recover(); r != nil {
			t.quarantineLocked(fmt.Sprintf("panic: %v", r))
			quarantined = true
		}
		t.broadcastLocked()
		host := t.host
		t.mu.Unlock()
		if quarantined && host != nil {
			host.noteQuarantine(t)
		}
	}()
	if t.state != StateRunning {
		return 0
	}
	for i := 0; i < n; i++ {
		if t.spec.Frames > 0 && t.sys.Frame() >= t.spec.Frames {
			t.state = StateCompleted
			return stepped
		}
		if t.panicAt > 0 && t.sys.Frame() >= t.panicAt {
			// Injected chaos panic: deterministic (fires at a fixed frame
			// boundary), so a recovered tenant re-armed with the same frame
			// quarantines byte-identically.
			panic(fmt.Sprintf("injected chaos panic at frame %d", t.sys.Frame()))
		}
		if err := t.sys.Step(); err != nil {
			t.quarantineLocked("step error: " + err.Error())
			quarantined = true
			return stepped
		}
		stepped++
	}
	if t.spec.Frames > 0 && t.sys.Frame() >= t.spec.Frames {
		t.state = StateCompleted
	}
	return stepped
}

// postMortemLocked builds a quarantined tenant's snapshot. The events come
// from the black box — the journal recovered from the SCRAM host's committed
// stable storage, trailing the halt by at most one frame — not from the live
// ring, whose in-memory state a panic may have torn. Deterministic: the same
// committed storage yields the same snapshot, which is what makes LRU
// eviction of the cached copy safe. Callers hold mu.
func (t *Tenant) postMortemLocked() *serve.Snapshot {
	if t.closed {
		return &serve.Snapshot{}
	}
	snap := &serve.Snapshot{Frame: t.sys.Frame(), FrameLen: t.frameLen}
	if reg, _ := t.sys.Telemetry(); reg != nil {
		snap.Metrics = reg.Snapshot()
	}
	if stable, err := t.sys.Pool().PollStable(t.sys.SCRAMProc()); err == nil {
		if ring, err := telemetry.RecoverRing(stable); err == nil {
			snap.Events = ring
		}
	}
	return snap
}

// quarantineLocked isolates the tenant and caches its post-mortem snapshot
// so the serve plane never touches the possibly-torn live system again.
func (t *Tenant) quarantineLocked(reason string) {
	t.state = StateQuarantined
	t.reason = reason
	t.final = t.postMortemLocked()
}

// Config sizes the host's shared scheduler and, when Manifest is set, makes
// the host durable.
type Config struct {
	// Shards is the number of worker goroutines sweeping the fleet
	// (default: GOMAXPROCS).
	Shards int
	// Batch is the number of frames each tenant is stepped per sweep
	// (default 8). Larger batches amortize sweep overhead; smaller ones
	// bound control-plane injection latency in frames.
	Batch int
	// Manifest, when set, journals every spawn, acked injection and kill to
	// this store — the host's own black box. Recover rebuilds the fleet
	// from it after a crash, replaying every tenant to its pre-crash frame.
	// Nil keeps the host purely in-memory (the pre-durability behavior).
	Manifest *stable.Store
	// CheckpointEvery is the per-tenant checkpoint cadence in frames
	// (default 64): once a tenant advances this far past its last
	// checkpoint, the next sweep journals its progress. Checkpoints bound
	// the progress a crash loses, not the replay cost — recovery replays
	// from frame zero either way, because the journal is deterministic.
	CheckpointEvery int64
	// RetainFrames is the retention horizon inherited by tenants whose spec
	// leaves RetainFrames zero. See SpawnSpec.RetainFrames.
	RetainFrames int64
	// QuarantineCache caps how many quarantined tenants keep their
	// post-mortem snapshot cached in memory (default 64). Evicted
	// snapshots are re-recovered from committed stable storage on demand.
	QuarantineCache int
}

// dedupeEntry is one idempotency-cache slot: duplicates of an in-flight
// request wait on done, then replay the recorded outcome.
type dedupeEntry struct {
	done    chan struct{}
	applied int64
	err     error
}

// dedupeCap bounds the idempotency cache; oldest entries evict first. A
// request replayed after falling out of the window re-executes, which is
// safe: equal injections at equal frames are idempotent, and the manifest
// holds the authoritative record.
const dedupeCap = 4096

// Host runs the fleet: a tenant registry plus the shared batched scheduler.
type Host struct {
	cfg Config
	man *manifest // nil when the host is not durable

	mu       sync.Mutex
	tenants  map[string]*Tenant
	order    []string // spawn order, for deterministic listings
	nextID   int64
	spawnSeq int64 // next spawn sequence number (manifest ordering)

	frames   atomic.Int64 // total frames stepped across all tenants
	draining atomic.Bool  // set by Drain/Close: control plane refuses mutations

	// dmu guards the injection idempotency cache. Never held together with
	// h.mu or a tenant lock.
	dmu    sync.Mutex
	dedupe map[string]*dedupeEntry
	dorder []string // insertion order, for bounded eviction

	// qmu guards the quarantine-snapshot LRU. Eviction drops victims'
	// cached snapshots after releasing qmu — never hold qmu and a tenant
	// lock at once.
	qmu  sync.Mutex
	qlru []*Tenant // front = least recently served, back = most

	stopOnce sync.Once
	wake     chan struct{}
	stop     chan struct{}
	done     chan struct{}
}

// NewHost starts a fleet host and its scheduler loop. Close shuts it down.
// A Config with a Manifest store makes the host durable; use Recover instead
// of NewHost to also rebuild a pre-crash fleet from that store.
func NewHost(cfg Config) *Host {
	h := newHostNoLoop(cfg)
	h.startLoop()
	return h
}

// newHostNoLoop builds the host without starting the scheduler, so Recover
// can replay tenants before the sweep begins stepping them.
func newHostNoLoop(cfg Config) *Host {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 64
	}
	if cfg.QuarantineCache <= 0 {
		cfg.QuarantineCache = 64
	}
	return &Host{
		cfg:     cfg,
		man:     newManifest(cfg.Manifest),
		tenants: make(map[string]*Tenant),
		dedupe:  make(map[string]*dedupeEntry),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

func (h *Host) startLoop() {
	//lint:allow nofreegoroutine audited scheduler loop: sweeps tenants in shard workers and is joined by Close
	go h.run()
}

// stopLoop halts the scheduler exactly once and waits for it to exit.
func (h *Host) stopLoop() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// Close stops the scheduler and closes every tenant's system. Unlike Drain
// it journals nothing extra: recovery falls back to the last periodic
// checkpoint, exactly as after a crash.
func (h *Host) Close() {
	h.draining.Store(true)
	h.stopLoop()
	h.closeTenants()
}

// Drain is the graceful shutdown of a durable host: it halts the scheduler,
// journals a final checkpoint for every tenant — the manifest-commit barrier
// a SIGTERM'd fleetd waits on before exiting — then closes tenant systems. A
// recovered fleet resumes from exactly the drained frames, losing nothing.
func (h *Host) Drain() {
	h.draining.Store(true)
	h.stopLoop()
	h.checkpoint(true)
	h.closeTenants()
}

func (h *Host) closeTenants() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.tenants {
		t.mu.Lock()
		if !t.closed {
			t.closed = true
			t.sys.Close()
		}
		t.broadcastLocked()
		t.mu.Unlock()
	}
}

// Draining reports whether the host is shutting down (control-plane
// mutations are refused).
func (h *Host) Draining() bool { return h.draining.Load() }

// Spawn constructs a tenant from a SpawnSpec and registers it with the
// scheduler. The system is built synchronously (including the static
// obligations check), so a Spawn that returns nil error is a live tenant —
// and, on a durable host, a journaled one: the manifest records the spawn
// before the tenant becomes visible, so no acked spawn is ever lost.
func (h *Host) Spawn(ss SpawnSpec) (*Tenant, error) {
	if ss.ID != "" {
		if err := ValidateTenantID(ss.ID); err != nil {
			return nil, err
		}
	}
	if ss.RetainFrames == 0 {
		// Resolve the host default into the spec before journaling: replay
		// must trim identically to the live run, so the manifest records
		// the resolved retention, not the host it happened to run on.
		ss.RetainFrames = h.cfg.RetainFrames
	}
	opts, err := SpawnOptions(ss)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		return nil, fmt.Errorf("fleet: spawning tenant: %w", err)
	}

	h.mu.Lock()
	id := ss.ID
	if id == "" {
		for {
			h.nextID++
			id = fmt.Sprintf("t-%d", h.nextID)
			if _, taken := h.tenants[id]; !taken {
				break
			}
		}
	} else if _, taken := h.tenants[id]; taken {
		h.mu.Unlock()
		sys.Close()
		return nil, fmt.Errorf("fleet: tenant %q: %w", id, errTenantExists)
	}
	ss.ID = id
	seq := h.spawnSeq
	if err := h.man.recordSpawn(seq, ss); err != nil {
		h.mu.Unlock()
		sys.Close()
		return nil, fmt.Errorf("fleet: journaling spawn: %w", err)
	}
	h.spawnSeq++
	t := &Tenant{
		id:       id,
		spec:     ss,
		host:     h,
		sys:      sys,
		state:    StateRunning,
		frameLen: opts.Spec.FrameLen,
	}
	h.tenants[id] = t
	h.order = append(h.order, id)
	h.mu.Unlock()

	select {
	case h.wake <- struct{}{}:
	default:
	}
	return t, nil
}

// Get returns a tenant by id.
func (h *Host) Get(id string) (*Tenant, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.tenants[id]
	return t, ok
}

// Kill removes a tenant and closes its system. Its telemetry is gone with
// it: killing is the explicit discard, quarantine the recoverable one. On a
// durable host the tenant's whole manifest range is deleted in one commit —
// a recovered fleet never resurrects a killed tenant, and the manifest's
// footprint stays bounded by the live fleet.
func (h *Host) Kill(id string) error {
	h.mu.Lock()
	t, ok := h.tenants[id]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("fleet: no tenant %q", id)
	}
	delete(h.tenants, id)
	for i, oid := range h.order {
		if oid == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	h.mu.Unlock()

	// Take the tenant lock so a shard worker mid-batch finishes its frame
	// before the system is closed under it.
	t.mu.Lock()
	t.state = StateQuarantined
	t.reason = "killed"
	t.closed = true
	t.final = &serve.Snapshot{}
	t.sys.Close()
	t.broadcastLocked()
	t.mu.Unlock()

	if err := h.man.removeTenant(id); err != nil {
		return fmt.Errorf("fleet: journaling kill: %w", err)
	}
	return nil
}

// Inject routes an injection to a tenant with the full control-plane
// contract: request-ID idempotency, the applied-frame commit barrier, and —
// on a durable host — journaling before the ack, so every acked injection is
// in the replay recipe. Unacked injections may be lost with a crash:
// at-most-once, never silently divergent.
func (h *Host) Inject(id string, inj Injection) (int64, error) {
	t, ok := h.Get(id)
	if !ok {
		return 0, fmt.Errorf("fleet: no tenant %q", id)
	}
	var entry *dedupeEntry
	if inj.RequestID != "" {
		var primary bool
		entry, primary = h.claimRequest(id, inj.RequestID)
		if !primary {
			// Duplicate request: wait out the primary and replay its
			// outcome — same applied frame or same error, never a second
			// application.
			<-entry.done
			return entry.applied, entry.err
		}
	}
	applied, err := h.injectPrimary(t, inj)
	if entry != nil {
		entry.applied, entry.err = applied, err
		close(entry.done)
	}
	return applied, err
}

func (h *Host) injectPrimary(t *Tenant, inj Injection) (int64, error) {
	ord, applied, err := t.inject(inj)
	if err != nil {
		return 0, err
	}
	// The frame committed; journal before acking. A manifest failure fails
	// the ack — the client sees the error instead of holding a replay
	// recipe the recovered fleet would not honor.
	rec := injRecord{Ord: ord, Inj: inj, Applied: applied, RequestID: inj.RequestID}
	if err := h.man.recordInjection(t.id, rec); err != nil {
		return 0, fmt.Errorf("fleet: journaling injection: %w", err)
	}
	return applied, nil
}

// claimRequest registers an idempotency key, returning the cache entry and
// whether the caller is the primary (first claimant, responsible for filling
// the entry and closing done). The cache is bounded; see dedupeCap.
func (h *Host) claimRequest(tenantID, requestID string) (*dedupeEntry, bool) {
	key := tenantID + "\x00" + requestID
	h.dmu.Lock()
	defer h.dmu.Unlock()
	if e, ok := h.dedupe[key]; ok {
		return e, false
	}
	e := &dedupeEntry{done: make(chan struct{})}
	h.dedupe[key] = e
	h.dorder = append(h.dorder, key)
	for len(h.dorder) > dedupeCap {
		delete(h.dedupe, h.dorder[0])
		h.dorder = h.dorder[1:]
	}
	return e, true
}

// primeDedupe seeds the idempotency cache with a recovered injection's
// outcome, so a client retrying across the crash gets its pre-crash ack
// replayed instead of a double application.
func (h *Host) primeDedupe(tenantID, requestID string, applied int64) {
	if requestID == "" {
		return
	}
	e := &dedupeEntry{done: make(chan struct{}), applied: applied}
	close(e.done)
	h.dmu.Lock()
	key := tenantID + "\x00" + requestID
	if _, ok := h.dedupe[key]; !ok {
		h.dedupe[key] = e
		h.dorder = append(h.dorder, key)
		for len(h.dorder) > dedupeCap {
			delete(h.dedupe, h.dorder[0])
			h.dorder = h.dorder[1:]
		}
	}
	h.dmu.Unlock()
}

// noteQuarantine registers (or refreshes) a quarantined tenant in the
// post-mortem snapshot LRU and evicts beyond the cap. Eviction only drops
// the cached snapshot — the black box stays in committed stable storage, and
// TelemetrySnapshot re-recovers it on demand. Callers must not hold any
// tenant lock: eviction takes victims' locks one at a time.
func (h *Host) noteQuarantine(t *Tenant) {
	h.qmu.Lock()
	for i, q := range h.qlru {
		if q == t {
			h.qlru = append(append(h.qlru[:i], h.qlru[i+1:]...), t)
			h.qmu.Unlock()
			return
		}
	}
	h.qlru = append(h.qlru, t)
	var evict []*Tenant
	for len(h.qlru) > h.cfg.QuarantineCache {
		evict = append(evict, h.qlru[0])
		h.qlru = h.qlru[1:]
	}
	h.qmu.Unlock()
	for _, q := range evict {
		q.mu.Lock()
		if q.state == StateQuarantined {
			q.final = nil
		}
		q.mu.Unlock()
	}
}

// quarantineCached counts tenants currently holding a cached post-mortem
// snapshot — the LRU's occupancy, surfaced in Stats.
func (h *Host) quarantineCached() int {
	h.qmu.Lock()
	defer h.qmu.Unlock()
	return len(h.qlru)
}

// checkpoint journals the progress of every tenant that moved since its last
// checkpoint; force (the drain path) stages all of them regardless of
// cadence. One batched commit per sweep keeps the stable-store traffic
// bounded by the live fleet, not the frame rate.
func (h *Host) checkpoint(force bool) {
	if h.man == nil {
		return
	}
	h.mu.Lock()
	tenants := make([]*Tenant, 0, len(h.order))
	for _, id := range h.order {
		tenants = append(tenants, h.tenants[id])
	}
	h.mu.Unlock()

	cks := make(map[string]ckptRecord)
	for _, t := range tenants {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			continue
		}
		frame := t.sys.Frame()
		moved := frame != t.lastCkptFrame || t.state != t.lastCkptState
		due := force || t.state != t.lastCkptState || frame-t.lastCkptFrame >= h.cfg.CheckpointEvery
		if moved && due {
			cks[t.id] = ckptRecord{Frame: frame, State: t.state, Reason: t.reason}
			t.lastCkptFrame, t.lastCkptState = frame, t.state
		}
		t.mu.Unlock()
	}
	// Best-effort: a failed checkpoint commit costs recovery progress, not
	// correctness, and the manifest latches the fault for the next mutation.
	_ = h.man.recordCheckpoints(cks)
}

// List returns every tenant's status in spawn order.
func (h *Host) List() []Status {
	h.mu.Lock()
	ids := append([]string(nil), h.order...)
	tenants := make([]*Tenant, 0, len(ids))
	for _, id := range ids {
		tenants = append(tenants, h.tenants[id])
	}
	h.mu.Unlock()
	out := make([]Status, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, t.Status())
	}
	return out
}

// Stats is the host's aggregate accounting.
type Stats struct {
	// Tenants counts registered tenants by state.
	Tenants map[State]int `json:"tenants"`
	// FramesStepped is the total frames executed across all tenants.
	FramesStepped int64 `json:"frames_stepped"`
	// Shards and Batch echo the scheduler configuration.
	Shards int `json:"shards"`
	Batch  int `json:"batch"`
	// Durable reports whether the host journals to a manifest store.
	Durable bool `json:"durable"`
	// QuarantineCached is the post-mortem snapshot LRU's occupancy.
	QuarantineCached int `json:"quarantine_cached"`
	// Draining reports a host refusing control-plane mutations on its way
	// down.
	Draining bool `json:"draining,omitempty"`
}

// Stats returns the host's aggregate counters.
func (h *Host) Stats() Stats {
	st := Stats{
		Tenants:          make(map[State]int),
		Shards:           h.cfg.Shards,
		Batch:            h.cfg.Batch,
		Durable:          h.man != nil,
		QuarantineCached: h.quarantineCached(),
		Draining:         h.draining.Load(),
	}
	for _, s := range h.List() {
		st.Tenants[s.State]++
	}
	st.FramesStepped = h.frames.Load()
	return st
}

// FramesStepped returns the total frames executed across all tenants.
func (h *Host) FramesStepped() int64 { return h.frames.Load() }

// run is the scheduler loop: each tick snapshots the running tenants and
// sweeps them with the shard workers, every tenant advancing Batch frames.
// The barrier between ticks keeps the sweep fair — a tenant can't hog a
// shard for more than one batch while others wait.
func (h *Host) run() {
	defer close(h.done)
	for {
		select {
		case <-h.stop:
			return
		default:
		}
		batch := h.running()
		if len(batch) == 0 {
			// Idle: wait for a spawn (wake), shutdown, or a short poll
			// tick (a tenant un-idles only via spawn, so the poll is
			// just a safety net).
			select {
			case <-h.stop:
				return
			case <-h.wake:
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		shards := h.cfg.Shards
		if shards > len(batch) {
			shards = len(batch)
		}
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			w := w
			wg.Add(1)
			//lint:allow nofreegoroutine audited shard worker: steps disjoint tenants for one sweep and is joined by the WaitGroup barrier
			go func() {
				defer wg.Done()
				var stepped int64
				for i := w; i < len(batch); i += shards {
					stepped += batch[i].stepBatch(h.cfg.Batch)
				}
				h.frames.Add(stepped)
			}()
		}
		wg.Wait()
		// The sweep barrier is also the checkpoint barrier: no tenant is
		// mid-frame here, so every journaled frame is a committed boundary.
		h.checkpoint(false)
	}
}

// running snapshots the currently running tenants in spawn order.
func (h *Host) running() []*Tenant {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Tenant, 0, len(h.order))
	for _, id := range h.order {
		t := h.tenants[id]
		t.mu.Lock()
		run := t.state == StateRunning
		t.mu.Unlock()
		if run {
			out = append(out, t)
		}
	}
	return out
}

// Presets returns the spawnable preset names, sorted — the control plane's
// discovery surface.
func Presets() []string {
	names := spectest.Names()
	sort.Strings(names)
	return names
}
