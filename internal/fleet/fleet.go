// Package fleet hosts many concurrent reconfigurable systems — one
// core.System per tenant — behind a single long-running service: the
// production shape of the ROADMAP's "millions of users" claim, where every
// connected vehicle or tenant is its own frame-synchronous system.
//
// The host multiplexes tenants over a shared batched scheduler: a fixed pool
// of shard workers sweeps the running tenants each tick, stepping every
// tenant a batch of frames. Tenants are spawned in the frame scheduler's
// sequential mode, so a tenant's entire frame executes inside the shard
// worker's goroutine — which is what makes the isolation boundary work: a
// panicking application is caught by the worker's recover, the tenant is
// quarantined with its black box recoverable from committed stable storage,
// and the sweep moves on. A fail-stopped or panicked tenant never stalls the
// scheduler and never touches another tenant's state.
//
// Determinism survives multiplexing because tenants share nothing: each
// system owns its environment, pool, telemetry and trace RNG (seeded from
// SpawnSpec.Seed), and control-plane injections are serialized with stepping
// by the per-tenant lock, applying between frames exactly like the scripted
// constructs they are defined to mirror (see internal/core/drive.go). A
// tenant stepped by the fleet therefore produces the byte-identical trace of
// the same-seed standalone run — the property the determinism test and the
// CI smoke job hold.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/telemetry"
	"repro/internal/telemetry/serve"
)

// SpawnSpec names everything needed to construct a tenant: a spec preset
// from the spectest registry, the determinism seed, and an optional frame
// budget. Equal SpawnSpecs produce byte-identically-traced tenants.
type SpawnSpec struct {
	// ID is the tenant identifier; empty lets the host assign one.
	ID string `json:"id,omitempty"`
	// Preset is the named specification preset (spectest.Lookup).
	Preset string `json:"preset"`
	// Seed drives the tenant's trace RNG; equal seeds give equal runs.
	Seed int64 `json:"seed"`
	// Frames caps the tenant's run: after this many frames it completes
	// and stops stepping (still queryable). Zero runs until killed.
	Frames int64 `json:"frames,omitempty"`
	// Script is an optional deterministic environment schedule, applied
	// exactly like a standalone run's scripted events. Runtime injections
	// land on top of (and interleave with) the script.
	Script []envmon.Event `json:"script,omitempty"`
}

// SpawnOptions resolves a SpawnSpec into the core.Options the fleet host
// runs it under. It is exported so a standalone re-execution (the
// determinism test, a post-incident replay) constructs the identical system
// the host did.
func SpawnOptions(ss SpawnSpec) (core.Options, error) {
	preset, err := spectest.Lookup(ss.Preset)
	if err != nil {
		return core.Options{}, err
	}
	rs := preset.New()
	return core.Options{
		Spec:           rs,
		Apps:           core.BasicApps(rs),
		Classifier:     preset.Classifier,
		InitialFactors: preset.Factors(),
		Script:         ss.Script,
		TraceSeed:      ss.Seed,
		// Sequential mode runs the tenant's whole frame inside the
		// caller's goroutine: no per-task goroutines (thousands of
		// tenants would multiply them), and application panics surface
		// in the shard worker where recover quarantines the tenant.
		Sequential: true,
	}, nil
}

// State is a tenant's lifecycle state.
type State string

const (
	// StateRunning tenants are stepped by the shard sweep.
	StateRunning State = "running"
	// StateCompleted tenants reached their frame budget; they are no
	// longer stepped but stay fully queryable.
	StateCompleted State = "completed"
	// StateQuarantined tenants panicked or failed a step; they are
	// isolated from the sweep and serve their post-mortem black box.
	StateQuarantined State = "quarantined"
)

// Tenant is one hosted system. All access to the underlying System is
// serialized by mu: the shard worker holds it while stepping, the control
// plane holds it while injecting or snapshotting, so injections always land
// between frames.
type Tenant struct {
	id   string
	spec SpawnSpec

	mu     sync.Mutex
	sys    *core.System
	state  State
	reason string
	// final is the cached post-mortem snapshot of a quarantined tenant,
	// recovered from committed stable storage (the black box), so the
	// serve plane never touches a possibly-torn live system again.
	final *serve.Snapshot

	frameLen time.Duration
}

// Status is a tenant's control-plane view.
type Status struct {
	ID     string `json:"id"`
	Preset string `json:"preset"`
	Seed   int64  `json:"seed"`
	State  State  `json:"state"`
	Frame  int64  `json:"frame"`
	// Frames is the frame budget (0 = unbounded).
	Frames int64 `json:"frames,omitempty"`
	// Reason is why the tenant was quarantined, when it was.
	Reason string `json:"reason,omitempty"`
}

// ID returns the tenant identifier.
func (t *Tenant) ID() string { return t.id }

// Status returns the tenant's current control-plane view.
func (t *Tenant) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Status{
		ID:     t.id,
		Preset: t.spec.Preset,
		Seed:   t.spec.Seed,
		State:  t.state,
		Frame:  t.sys.Frame(),
		Frames: t.spec.Frames,
		Reason: t.reason,
	}
}

// TelemetrySnapshot implements serve.Source: the per-tenant telemetry plane
// (metrics, journal, traces) reads through here. Running and completed
// tenants snapshot the live system under the tenant lock — consistent
// because stepping holds the same lock; quarantined tenants serve the
// cached post-mortem snapshot.
func (t *Tenant) TelemetrySnapshot() (serve.Snapshot, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.final != nil {
		return *t.final, true
	}
	reg, rec := t.sys.Telemetry()
	if reg == nil {
		return serve.Snapshot{}, false
	}
	return serve.Snapshot{
		Frame:    t.sys.Frame(),
		FrameLen: t.frameLen,
		Metrics:  reg.Snapshot(),
		Events:   rec.Events(),
	}, true
}

// Injection is one control-plane fault injection. Kind selects the variant:
//
//   - "env": set environment factor Factor to Value (visible next frame,
//     like a scripted event at the applied frame);
//   - "procfail"/"procrepair": schedule a processor event at Frame
//     (defaulting to the earliest frame that can still apply);
//   - "storage": halt processor Proc with an unrecoverable storage fault.
type Injection struct {
	Kind   string `json:"kind"`
	Factor string `json:"factor,omitempty"`
	Value  string `json:"value,omitempty"`
	Proc   string `json:"proc,omitempty"`
	Frame  int64  `json:"frame,omitempty"`
}

// Inject applies an injection between frames and returns the frame at which
// it takes effect — the frame a scripted standalone replay would use to
// reproduce the run.
func (t *Tenant) Inject(inj Injection) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateRunning {
		return 0, fmt.Errorf("fleet: tenant %s is %s, not running", t.id, t.state)
	}
	next := t.sys.Frame()
	switch inj.Kind {
	case "env":
		if inj.Factor == "" {
			return 0, errors.New("fleet: env injection needs a factor")
		}
		t.sys.InjectFactor(envmon.Factor(inj.Factor), inj.Value)
		return next, nil
	case "procfail", "procrepair":
		kind := core.ProcFail
		frame := inj.Frame
		if inj.Kind == "procrepair" {
			kind = core.ProcRepair
			if frame == 0 {
				frame = next + 1
			}
		} else if frame == 0 {
			frame = next
		}
		ev := core.ProcEvent{Frame: frame, Proc: spec.ProcID(inj.Proc), Kind: kind}
		if err := t.sys.ScheduleProcEvent(ev); err != nil {
			return 0, err
		}
		return ev.Frame, nil
	case "storage":
		if err := t.sys.InjectStorageFault(spec.ProcID(inj.Proc)); err != nil {
			return 0, err
		}
		return next, nil
	default:
		return 0, fmt.Errorf("fleet: unknown injection kind %q (want env, procfail, procrepair or storage)", inj.Kind)
	}
}

// stepBatch advances a running tenant up to n frames, enforcing the frame
// budget and converting panics and step errors into quarantine. It returns
// the number of frames actually stepped.
func (t *Tenant) stepBatch(n int) (stepped int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateRunning {
		return 0
	}
	// The isolation boundary: a panic anywhere under Step — an application
	// bug, a hook, the kernel — quarantines this tenant and returns the
	// shard worker to the sweep. Sequential mode guarantees the panic
	// surfaces here and not in some unrecoverable scheduler goroutine.
	defer func() {
		if r := recover(); r != nil {
			t.quarantineLocked(fmt.Sprintf("panic: %v", r))
		}
	}()
	for i := 0; i < n; i++ {
		if t.spec.Frames > 0 && t.sys.Frame() >= t.spec.Frames {
			t.state = StateCompleted
			return stepped
		}
		if err := t.sys.Step(); err != nil {
			t.quarantineLocked("step error: " + err.Error())
			return stepped
		}
		stepped++
	}
	if t.spec.Frames > 0 && t.sys.Frame() >= t.spec.Frames {
		t.state = StateCompleted
	}
	return stepped
}

// quarantineLocked isolates the tenant and caches its post-mortem snapshot.
// The events come from the black box — the journal recovered from the SCRAM
// host's committed stable storage, trailing the halt by at most one frame —
// not from the live ring, whose in-memory state a panic may have torn.
func (t *Tenant) quarantineLocked(reason string) {
	t.state = StateQuarantined
	t.reason = reason
	snap := &serve.Snapshot{Frame: t.sys.Frame(), FrameLen: t.frameLen}
	if reg, _ := t.sys.Telemetry(); reg != nil {
		snap.Metrics = reg.Snapshot()
	}
	if stable, err := t.sys.Pool().PollStable(t.sys.SCRAMProc()); err == nil {
		if ring, err := telemetry.RecoverRing(stable); err == nil {
			snap.Events = ring
		}
	}
	t.final = snap
}

// Config sizes the host's shared scheduler.
type Config struct {
	// Shards is the number of worker goroutines sweeping the fleet
	// (default: GOMAXPROCS).
	Shards int
	// Batch is the number of frames each tenant is stepped per sweep
	// (default 8). Larger batches amortize sweep overhead; smaller ones
	// bound control-plane injection latency in frames.
	Batch int
}

// Host runs the fleet: a tenant registry plus the shared batched scheduler.
type Host struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*Tenant
	order   []string // spawn order, for deterministic listings
	nextID  int64

	frames atomic.Int64 // total frames stepped across all tenants

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewHost starts a fleet host and its scheduler loop. Close shuts it down.
func NewHost(cfg Config) *Host {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	h := &Host{
		cfg:     cfg,
		tenants: make(map[string]*Tenant),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	//lint:allow nofreegoroutine audited scheduler loop: sweeps tenants in shard workers and is joined by Close
	go h.run()
	return h
}

// Close stops the scheduler and closes every tenant's system.
func (h *Host) Close() {
	select {
	case <-h.stop:
		return // already closed
	default:
	}
	close(h.stop)
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.tenants {
		t.mu.Lock()
		t.sys.Close()
		t.mu.Unlock()
	}
}

// Spawn constructs a tenant from a SpawnSpec and registers it with the
// scheduler. The system is built synchronously (including the static
// obligations check), so a Spawn that returns nil error is a live tenant.
func (h *Host) Spawn(ss SpawnSpec) (*Tenant, error) {
	opts, err := SpawnOptions(ss)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		return nil, fmt.Errorf("fleet: spawning tenant: %w", err)
	}

	h.mu.Lock()
	id := ss.ID
	if id == "" {
		for {
			h.nextID++
			id = fmt.Sprintf("t-%d", h.nextID)
			if _, taken := h.tenants[id]; !taken {
				break
			}
		}
	} else if _, taken := h.tenants[id]; taken {
		h.mu.Unlock()
		sys.Close()
		return nil, fmt.Errorf("fleet: tenant %q: %w", id, errTenantExists)
	}
	ss.ID = id
	t := &Tenant{
		id:       id,
		spec:     ss,
		sys:      sys,
		state:    StateRunning,
		frameLen: opts.Spec.FrameLen,
	}
	h.tenants[id] = t
	h.order = append(h.order, id)
	h.mu.Unlock()

	select {
	case h.wake <- struct{}{}:
	default:
	}
	return t, nil
}

// Get returns a tenant by id.
func (h *Host) Get(id string) (*Tenant, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.tenants[id]
	return t, ok
}

// Kill removes a tenant and closes its system. Its telemetry is gone with
// it: killing is the explicit discard, quarantine the recoverable one.
func (h *Host) Kill(id string) error {
	h.mu.Lock()
	t, ok := h.tenants[id]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("fleet: no tenant %q", id)
	}
	delete(h.tenants, id)
	for i, oid := range h.order {
		if oid == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	h.mu.Unlock()

	// Take the tenant lock so a shard worker mid-batch finishes its frame
	// before the system is closed under it.
	t.mu.Lock()
	t.state = StateQuarantined
	t.reason = "killed"
	t.final = &serve.Snapshot{}
	t.sys.Close()
	t.mu.Unlock()
	return nil
}

// List returns every tenant's status in spawn order.
func (h *Host) List() []Status {
	h.mu.Lock()
	ids := append([]string(nil), h.order...)
	tenants := make([]*Tenant, 0, len(ids))
	for _, id := range ids {
		tenants = append(tenants, h.tenants[id])
	}
	h.mu.Unlock()
	out := make([]Status, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, t.Status())
	}
	return out
}

// Stats is the host's aggregate accounting.
type Stats struct {
	// Tenants counts registered tenants by state.
	Tenants map[State]int `json:"tenants"`
	// FramesStepped is the total frames executed across all tenants.
	FramesStepped int64 `json:"frames_stepped"`
	// Shards and Batch echo the scheduler configuration.
	Shards int `json:"shards"`
	Batch  int `json:"batch"`
}

// Stats returns the host's aggregate counters.
func (h *Host) Stats() Stats {
	st := Stats{
		Tenants: make(map[State]int),
		Shards:  h.cfg.Shards,
		Batch:   h.cfg.Batch,
	}
	for _, s := range h.List() {
		st.Tenants[s.State]++
	}
	st.FramesStepped = h.frames.Load()
	return st
}

// FramesStepped returns the total frames executed across all tenants.
func (h *Host) FramesStepped() int64 { return h.frames.Load() }

// run is the scheduler loop: each tick snapshots the running tenants and
// sweeps them with the shard workers, every tenant advancing Batch frames.
// The barrier between ticks keeps the sweep fair — a tenant can't hog a
// shard for more than one batch while others wait.
func (h *Host) run() {
	defer close(h.done)
	for {
		select {
		case <-h.stop:
			return
		default:
		}
		batch := h.running()
		if len(batch) == 0 {
			// Idle: wait for a spawn (wake), shutdown, or a short poll
			// tick (a tenant un-idles only via spawn, so the poll is
			// just a safety net).
			select {
			case <-h.stop:
				return
			case <-h.wake:
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		shards := h.cfg.Shards
		if shards > len(batch) {
			shards = len(batch)
		}
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			w := w
			wg.Add(1)
			//lint:allow nofreegoroutine audited shard worker: steps disjoint tenants for one sweep and is joined by the WaitGroup barrier
			go func() {
				defer wg.Done()
				var stepped int64
				for i := w; i < len(batch); i += shards {
					stepped += batch[i].stepBatch(h.cfg.Batch)
				}
				h.frames.Add(stepped)
			}()
		}
		wg.Wait()
	}
}

// running snapshots the currently running tenants in spawn order.
func (h *Host) running() []*Tenant {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Tenant, 0, len(h.order))
	for _, id := range h.order {
		t := h.tenants[id]
		t.mu.Lock()
		run := t.state == StateRunning
		t.mu.Unlock()
		if run {
			out = append(out, t)
		}
	}
	return out
}

// Presets returns the spawnable preset names, sorted — the control plane's
// discovery surface.
func Presets() []string {
	names := spectest.Names()
	sort.Strings(names)
	return names
}
