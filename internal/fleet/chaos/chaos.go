// Package chaos is the fleet-level fault harness: a seeded storm of host
// crashes, tenant panics, storage faults and manifest torn-writes thrown at
// a durable fleet host, verified afterwards by the restart-equivalence
// checker (fleet.CheckEquivalence).
//
// The harness runs entirely in-process. A "crash" abandons the running host
// without draining — the scheduler is hard-stopped mid-campaign, no final
// checkpoint is journaled — and remounts a new host over the surviving
// manifest media, which is observably the same event as kill -9 on a real
// fleetd: a fail-stop halt loses everything staged in memory, keeps
// everything committed to stable media (the OS page cache survives process
// death, so even unsynced committed records are readable; a FileMedium's
// temp-and-rename staging keeps half-written records from masquerading as
// committed ones, and the stable layer's CRCs catch any that tear anyway).
// Torn-writes are injected on top, corrupting committed manifest records on
// one replica at the crash point — the mid-commit-crash shape read repair
// must heal without the recovered fleet noticing.
//
// Everything is driven from one seed, so a failing storm replays with the
// same strike plan and the same final fleet shape. Traffic tallies (how many
// strikes found their victim still running) depend on real scheduling — a
// strike racing a tenant's completion is legally skipped.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fleet"
	"repro/internal/stable"
)

// Plan is one seeded chaos storm.
type Plan struct {
	// Seed drives every random choice in the storm (tenant seeds,
	// injection timing, crash victims, torn-write targets).
	Seed int64 `json:"seed"`
	// Tenants is the fleet size.
	Tenants int `json:"tenants"`
	// Frames is each tenant's frame budget; the storm ends when every
	// tenant is at rest (completed or quarantined).
	Frames int64 `json:"frames"`
	// Crashes is how many times the host is hard-stopped and recovered
	// mid-storm.
	Crashes int `json:"crashes"`
	// Panics is how many tenants get a "panic" injection — a deterministic
	// in-frame panic the shard worker's recover must quarantine, and
	// recovery must reproduce.
	Panics int `json:"panics"`
	// StorageFaults is how many tenants get a "storage" injection during
	// live traffic — a processor halted by an unrecoverable storage fault,
	// driving a reconfiguration under the storm.
	StorageFaults int `json:"storage_faults"`
	// TornWrites is how many committed manifest records are corrupted on a
	// single replica at each crash point. Read repair must heal all of
	// them; equivalence is still required to hold.
	TornWrites int `json:"torn_writes"`
	// RetainFrames, when non-zero, runs every tenant with a bounded
	// journal/trace window — proving recovery and retention compose.
	RetainFrames int64 `json:"retain_frames,omitempty"`
	// CheckpointEvery overrides the host checkpoint cadence (0: default).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	// Timeout bounds the whole storm (default 60s).
	Timeout time.Duration `json:"-"`
}

// Outcome reports what the storm did and what the checker found. A clean
// storm has Mismatches and Errors empty and Checked == Tenants.
type Outcome struct {
	Tenants  int `json:"tenants"`
	Crashes  int `json:"crashes"`
	Injected int `json:"injected"`
	// DedupeHits counts duplicate-request replays that returned the
	// primary's ack (idempotency verified on every injection).
	DedupeHits int `json:"dedupe_hits"`
	// TornWrites counts manifest records corrupted on one replica.
	TornWrites int `json:"torn_writes"`
	// Recovered sums tenants restored across all recoveries.
	Recovered int `json:"recovered"`
	// Completed/Quarantined are the fleet's final states.
	Completed   int `json:"completed"`
	Quarantined int `json:"quarantined"`
	// Checked counts tenants that went through the restart-equivalence
	// checker; Mismatches holds every divergence it found.
	Checked    int      `json:"checked"`
	Mismatches []string `json:"mismatches,omitempty"`
	// Errors holds storm-level failures (timeouts, recovery errors).
	Errors []string `json:"errors,omitempty"`
}

// Ok reports a clean storm: every tenant checked, nothing diverged.
func (o Outcome) Ok() bool {
	return len(o.Mismatches) == 0 && len(o.Errors) == 0 && o.Checked == o.Tenants
}

// presets cycled across the storm's tenants.
var presets = []string{"threeconfig", "threeconfig-spares", "threeconfig-spares4"}

// Run executes a plan and returns its outcome.
func Run(plan Plan) Outcome {
	if plan.Tenants <= 0 {
		plan.Tenants = 8
	}
	if plan.Frames < 16 {
		plan.Frames = 120
	}
	if plan.Timeout <= 0 {
		plan.Timeout = 60 * time.Second
	}
	rng := rand.New(rand.NewSource(plan.Seed))
	deadline := time.Now().Add(plan.Timeout)
	var out Outcome
	out.Tenants = plan.Tenants

	// The manifest media survive every crash: they are the disk.
	media := []stable.Medium{stable.NewMemMedium(), stable.NewMemMedium()}
	mount := func() (*fleet.Host, *fleet.Recovery, error) {
		st := stable.NewHardened(stable.MountReplicatedStore(media...))
		return fleet.Recover(fleet.Config{
			Shards:          2,
			Batch:           4,
			Manifest:        st,
			CheckpointEvery: plan.CheckpointEvery,
			RetainFrames:    plan.RetainFrames,
		})
	}

	host, _, err := mount()
	if err != nil {
		out.Errors = append(out.Errors, "initial mount: "+err.Error())
		return out
	}

	// Spawn the fleet and pre-plan the storm's injections.
	acks := make(map[string][]fleet.AckedInjection)
	ids := make([]string, 0, plan.Tenants)
	for i := 0; i < plan.Tenants; i++ {
		id := fmt.Sprintf("c-%d", i)
		ss := fleet.SpawnSpec{
			ID:     id,
			Preset: presets[i%len(presets)],
			Seed:   rng.Int63(),
			Frames: plan.Frames,
		}
		if _, err := host.Spawn(ss); err != nil {
			out.Errors = append(out.Errors, "spawn "+id+": "+err.Error())
			continue
		}
		ids = append(ids, id)
	}
	type strike struct {
		id  string
		inj fleet.Injection
	}
	// Panics arm up front, before the fleet makes progress: the armed frame
	// is in the back half of the budget (the victims do real work, and
	// usually survive at least one crash, before dying), and arming early
	// makes the storm's quarantine set a pure function of the seed — a
	// panic ack needs no commit barrier, so arming always lands.
	for i := 0; i < plan.Panics && len(ids) > 0; i++ {
		frame := plan.Frames/2 + rng.Int63n(plan.Frames/2-1) + 1
		id := ids[rng.Intn(len(ids))]
		inj := fleet.Injection{Kind: "panic", Frame: frame, RequestID: fmt.Sprintf("storm-panic-%d", i)}
		applied, err := host.Inject(id, inj)
		if err != nil {
			// Legal under extreme scheduling: the victim raced past the armed
			// frame before the arm landed. Not acked, so not in the recipe.
			continue
		}
		out.Injected++
		acks[id] = append(acks[id], fleet.AckedInjection{Inj: inj, Applied: applied})
		if again, err := host.Inject(id, inj); err != nil || again != applied {
			out.Mismatches = append(out.Mismatches,
				fmt.Sprintf("tenant %s: duplicate panic request acked (%d,%v), primary acked %d", id, again, err, applied))
		} else {
			out.DedupeHits++
		}
	}
	var strikes []strike
	for i := 0; i < plan.StorageFaults && len(ids) > 0; i++ {
		strikes = append(strikes, strike{ids[rng.Intn(len(ids))], fleet.Injection{Kind: "storage", Proc: "p2"}})
	}
	for _, id := range ids {
		// Every tenant gets a degrade/repair pair: live traffic under the
		// storm, so every recovery replays a non-trivial injection history.
		strikes = append(strikes, strike{id, fleet.Injection{Kind: "env", Factor: "alt1", Value: "failed"}})
		strikes = append(strikes, strike{id, fleet.Injection{Kind: "env", Factor: "alt1", Value: "ok"}})
	}
	rng.Shuffle(len(strikes), func(i, j int) { strikes[i], strikes[j] = strikes[j], strikes[i] })

	// The storm proper: Crashes+1 generations. Each generation fires a
	// slice of the strikes, lets the fleet run, then hard-stops the host
	// and recovers a new one over the surviving media.
	gens := plan.Crashes + 1
	for gen := 0; gen < gens; gen++ {
		lo, hi := len(strikes)*gen/gens, len(strikes)*(gen+1)/gens
		for k, s := range strikes[lo:hi] {
			reqID := fmt.Sprintf("storm-%d-%d", gen, lo+k)
			inj := s.inj
			inj.RequestID = reqID
			applied, err := host.Inject(s.id, inj)
			if err != nil {
				// Legal under chaos: the victim quarantined or completed
				// before the strike landed. Not acked, so not in the
				// recipe — exactly the at-most-once contract.
				continue
			}
			out.Injected++
			acks[s.id] = append(acks[s.id], fleet.AckedInjection{Inj: inj, Applied: applied})
			// Idempotency probe: replay the same request id and demand the
			// identical ack without a second application.
			if again, err := host.Inject(s.id, inj); err != nil || again != applied {
				out.Mismatches = append(out.Mismatches,
					fmt.Sprintf("tenant %s: duplicate request %s acked (%d,%v), primary acked %d", s.id, reqID, again, err, applied))
			} else {
				out.DedupeHits++
			}
		}

		if gen < gens-1 {
			// Let the fleet make progress into this generation's window,
			// then crash it.
			waitFrames := plan.Frames * int64(gen+1) / int64(gens)
			if !waitUntil(deadline, func() bool { return atRestOrPast(host, waitFrames) }) {
				out.Errors = append(out.Errors, fmt.Sprintf("generation %d: timeout waiting for frame %d", gen, waitFrames))
			}
			host.Close() // hard stop: no drain, no final checkpoint
			out.Crashes++
			out.TornWrites += tearRecords(rng, media[rng.Intn(len(media))], plan.TornWrites)
			var rec *fleet.Recovery
			host, rec, err = mount()
			if err != nil {
				out.Errors = append(out.Errors, fmt.Sprintf("recovery %d: %v", gen, err))
				return out
			}
			out.Recovered += rec.Tenants
			if len(rec.Dropped) > 0 {
				out.Errors = append(out.Errors, fmt.Sprintf("recovery %d dropped tenants: %v", gen, rec.Dropped))
			}
		}
	}

	// Let the fleet run to rest, then verify every tenant against its
	// recipe's uninterrupted standalone run.
	if !waitUntil(deadline, func() bool { return atRestOrPast(host, plan.Frames+1) }) {
		out.Errors = append(out.Errors, "timeout waiting for fleet to come to rest")
	}
	defer host.Drain()
	for _, st := range host.List() {
		switch st.State {
		case fleet.StateCompleted:
			out.Completed++
		case fleet.StateQuarantined:
			out.Quarantined++
		}
		t, ok := host.Get(st.ID)
		if !ok {
			out.Errors = append(out.Errors, "tenant "+st.ID+" vanished")
			continue
		}
		if err := fleet.CheckEquivalence(t, acks[st.ID]); err != nil {
			out.Mismatches = append(out.Mismatches, err.Error())
			continue
		}
		out.Checked++
	}
	return out
}

// atRestOrPast reports whether every tenant is completed/quarantined or has
// passed the given frame.
func atRestOrPast(h *fleet.Host, frame int64) bool {
	for _, st := range h.List() {
		if st.State == fleet.StateRunning && st.Frame < frame {
			return false
		}
	}
	return true
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(deadline time.Time, cond func() bool) bool {
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// tearRecords corrupts up to n committed records on one replica — the torn
// mid-commit write a crash can leave behind. The stable layer's CRC rejects
// the torn copy and read repair heals it from the survivor.
func tearRecords(rng *rand.Rand, m stable.Medium, n int) int {
	keys := m.Keys()
	if len(keys) == 0 {
		return 0
	}
	torn := 0
	for i := 0; i < n; i++ {
		key := keys[rng.Intn(len(keys))]
		raw, ok := m.Read(key)
		if !ok || len(raw) == 0 {
			continue
		}
		if rng.Intn(2) == 0 {
			raw = raw[:rng.Intn(len(raw))] // truncate: a write cut short
		} else {
			raw[rng.Intn(len(raw))] ^= 0x40 // flip: a scribbled sector
		}
		if err := m.Write(key, raw); err == nil {
			torn++
		}
	}
	return torn
}
