package chaos

import (
	"testing"
	"time"
)

// TestStormCleanRun is the harness's core assertion: a storm of host
// crashes, tenant panics, storage faults and torn manifest writes ends with
// every tenant byte-identical to its recipe's uninterrupted standalone run.
func TestStormCleanRun(t *testing.T) {
	out := Run(Plan{
		Seed:          7,
		Tenants:       6,
		Frames:        120,
		Crashes:       2,
		Panics:        2,
		StorageFaults: 2,
		TornWrites:    3,
		Timeout:       90 * time.Second,
	})
	if !out.Ok() {
		t.Fatalf("storm not clean: %+v", out)
	}
	if out.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", out.Crashes)
	}
	if out.Recovered == 0 {
		t.Fatal("no tenants recovered across crashes (vacuous storm)")
	}
	if out.Quarantined == 0 {
		t.Fatal("no tenants quarantined: the panic strikes never landed (vacuous storm)")
	}
	if out.DedupeHits == 0 {
		t.Fatal("no dedupe hits: idempotency never exercised")
	}
	if out.TornWrites == 0 {
		t.Fatal("no torn writes landed (vacuous storm)")
	}
}

// TestStormWithRetention composes the storm with bounded tenant state: the
// sliding retention window trims journals and traces identically in the
// live run, every recovery replay, and the standalone reference — so
// equivalence must still hold byte-for-byte.
func TestStormWithRetention(t *testing.T) {
	out := Run(Plan{
		Seed:         11,
		Tenants:      4,
		Frames:       150,
		Crashes:      1,
		Panics:       1,
		TornWrites:   2,
		RetainFrames: 48,
		Timeout:      90 * time.Second,
	})
	if !out.Ok() {
		t.Fatalf("retention storm not clean: %+v", out)
	}
}

// TestStormSeededReplay pins the determinism of the harness itself: the same
// plan yields the same final fleet shape (same completed/quarantined split),
// which is what makes a failing seed reproducible. Traffic tallies
// (Injected, DedupeHits) are deliberately not compared: a strike that finds
// its victim already at rest is legally skipped, and which strikes race
// tenant completion depends on real scheduling, not the seed.
func TestStormSeededReplay(t *testing.T) {
	plan := Plan{Seed: 3, Tenants: 3, Frames: 80, Crashes: 1, Panics: 1, Timeout: 60 * time.Second}
	a, b := Run(plan), Run(plan)
	if !a.Ok() || !b.Ok() {
		t.Fatalf("storms not clean: %+v / %+v", a, b)
	}
	if a.Completed != b.Completed || a.Quarantined != b.Quarantined {
		t.Fatalf("same seed, different storms: %+v vs %+v", a, b)
	}
}
