package fleet

// The multiplexing-determinism contract (ISSUE 9, DESIGN.md section 15): a
// tenant stepped by the fleet's shared shard scheduler produces the
// byte-identical journal and trace of the same SpawnSpec run standalone.
// Tenants share nothing — environment, pool, telemetry, trace RNG are all
// per-system — and control-plane injections land between frames under the
// tenant lock, so the only schedule that matters is the tenant's own.

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/telemetry"
	"repro/internal/telemetry/serve"
)

// journalBytes renders events the way /journal and flightrec do.
func journalBytes(t *testing.T, events []telemetry.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.WriteJournal(&buf, events); err != nil {
		t.Fatalf("WriteJournal: %v", err)
	}
	return buf.Bytes()
}

// renderTrace renders one trace's report the way /trace/<id> and
// flightrec -trace -json do.
func renderTrace(t *testing.T, events []telemetry.Event, id int64) []byte {
	t.Helper()
	tv, ok := telemetry.FindTrace(events, id)
	if !ok {
		t.Fatalf("trace %x not found", id)
	}
	var buf bytes.Buffer
	if err := cli.WriteJSON(&buf, telemetry.BuildTraceReport(tv)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// firstTraceID picks the first real (non-zero) assembled trace.
func firstTraceID(events []telemetry.Event) int64 {
	for _, tv := range telemetry.AssembleTraces(events) {
		if tv.ID != 0 {
			return tv.ID
		}
	}
	return 0
}

// standaloneRun re-executes a SpawnSpec outside the fleet: the same
// SpawnOptions, stepped to exactly `frames` in the caller's goroutine, with
// an optional runtime env injection at frame injectAt (-1 for none). Returns
// the journal.
func standaloneRun(t *testing.T, ss SpawnSpec, frames, injectAt int64, factor, value string) []telemetry.Event {
	t.Helper()
	opts, err := SpawnOptions(ss)
	if err != nil {
		t.Fatalf("SpawnOptions: %v", err)
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	for sys.Frame() < frames {
		if injectAt >= 0 && sys.Frame() == injectAt {
			sys.InjectFactor(envmon.Factor(factor), value)
		}
		if err := sys.Step(); err != nil {
			t.Fatalf("standalone step at frame %d: %v", sys.Frame(), err)
		}
	}
	_, rec := sys.Telemetry()
	return rec.Events()
}

// TestMultiplexedTraceMatchesStandalone spawns a scripted fleet, lets every
// tenant run to its frame budget under the shared scheduler, and asserts
// each tenant's journal — and the HTTP bodies the fleet serves for it — is
// byte-identical to a standalone run of the same SpawnSpec.
func TestMultiplexedTraceMatchesStandalone(t *testing.T) {
	h := NewHost(Config{Shards: 4, Batch: 8})
	defer h.Close()

	presets := []string{"threeconfig", "threeconfig-spares", "threeconfig-spares4"}
	specs := make([]SpawnSpec, 0, 12)
	for i := 0; i < 12; i++ {
		specs = append(specs, SpawnSpec{
			ID:     fmt.Sprintf("d-%d", i),
			Preset: presets[i%len(presets)],
			Seed:   int64(1000 + 17*i),
			Frames: 300,
			// A degrade + repair schedule, staggered per tenant so the
			// shard sweep interleaves tenants at different phases.
			Script: []envmon.Event{
				{Frame: int64(20 + i), Factor: "alt1", Value: "failed"},
				{Frame: int64(150 + i), Factor: "alt1", Value: "ok"},
			},
		})
	}
	for _, ss := range specs {
		if _, err := h.Spawn(ss); err != nil {
			t.Fatalf("spawn %s: %v", ss.ID, err)
		}
	}
	waitFor(t, "all tenants completed", func() bool {
		for _, st := range h.List() {
			if st.State != StateCompleted {
				return false
			}
		}
		return true
	})

	for _, ss := range specs {
		ten, ok := h.Get(ss.ID)
		if !ok {
			t.Fatalf("tenant %s vanished", ss.ID)
		}
		snap, ok := ten.TelemetrySnapshot()
		if !ok {
			t.Fatalf("tenant %s: no snapshot", ss.ID)
		}
		if snap.Frame != ss.Frames {
			t.Fatalf("tenant %s completed at frame %d, want %d", ss.ID, snap.Frame, ss.Frames)
		}
		want := standaloneRun(t, ss, ss.Frames, -1, "", "")
		if tid := firstTraceID(want); tid == 0 {
			t.Fatalf("tenant %s: standalone run produced no reconfiguration trace (vacuous test)", ss.ID)
		}
		if !bytes.Equal(journalBytes(t, snap.Events), journalBytes(t, want)) {
			t.Errorf("tenant %s: multiplexed journal differs from standalone run", ss.ID)
		}
	}

	// HTTP byte-identity for one tenant: the fleet's serve plane renders the
	// journal and the trace report exactly as a standalone flightrec would.
	ss := specs[0]
	ten, _ := h.Get(ss.ID)
	want := standaloneRun(t, ss, ss.Frames, -1, "", "")
	mux := serve.NewMux(ten)

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/journal", nil))
	if rr.Code != 200 {
		t.Fatalf("/journal: status %d", rr.Code)
	}
	if !bytes.Equal(rr.Body.Bytes(), journalBytes(t, want)) {
		t.Errorf("tenant %s: /journal body differs from standalone journal", ss.ID)
	}

	tid := firstTraceID(want)
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/trace/"+strconv.FormatInt(tid, 16), nil))
	if rr.Code != 200 {
		t.Fatalf("/trace/%x: status %d", tid, rr.Code)
	}
	if !bytes.Equal(rr.Body.Bytes(), renderTrace(t, want, tid)) {
		t.Errorf("tenant %s: /trace/%x body differs from standalone trace report", ss.ID, tid)
	}
}

// TestRuntimeInjectionReplaysAsScript proves the control-plane half of the
// contract: a live injection acked with applied_frame f replays standalone
// as InjectFactor at frame f — the recorded schedule reproduces the
// multiplexed run byte-for-byte.
func TestRuntimeInjectionReplaysAsScript(t *testing.T) {
	h := NewHost(Config{Shards: 2, Batch: 4})
	defer h.Close()

	ss := SpawnSpec{ID: "replay", Preset: "threeconfig", Seed: 4242}
	ten, err := h.Spawn(ss)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	// Inject after boot has settled so the factor change is a real
	// environment transition (frame-0 changes fold into the boot
	// classification and never reconfigure).
	waitFor(t, "tenant past frame 5", func() bool { return ten.Status().Frame > 5 })
	applied, err := ten.Inject(Injection{Kind: "env", Factor: "alt1", Value: "failed"})
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	waitFor(t, "reconfiguration settled", func() bool { return ten.Status().Frame > applied+100 })

	snap, ok := ten.TelemetrySnapshot()
	if !ok {
		t.Fatal("no snapshot")
	}
	want := standaloneRun(t, SpawnSpec{Preset: ss.Preset, Seed: ss.Seed}, snap.Frame, applied, "alt1", "failed")
	tid := firstTraceID(want)
	if tid == 0 {
		t.Fatal("standalone replay produced no reconfiguration trace (vacuous test)")
	}
	if !bytes.Equal(journalBytes(t, snap.Events), journalBytes(t, want)) {
		t.Errorf("journal after runtime injection differs from scripted standalone replay (applied frame %d, snapshot frame %d)", applied, snap.Frame)
	}
	if !bytes.Equal(renderTrace(t, snap.Events, tid), renderTrace(t, want, tid)) {
		t.Errorf("trace %x differs between multiplexed run and scripted replay", tid)
	}
}
