package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/envmon"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHostLifecycle(t *testing.T) {
	h := NewHost(Config{Shards: 2, Batch: 4})
	defer h.Close()

	ta, err := h.Spawn(SpawnSpec{Preset: "threeconfig", Seed: 1, Frames: 40})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := h.Spawn(SpawnSpec{ID: "custom", Preset: "threeconfig-spares", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID() != "custom" {
		t.Errorf("explicit id ignored: %q", tb.ID())
	}
	if _, err := h.Spawn(SpawnSpec{ID: "custom", Preset: "threeconfig", Seed: 3}); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := h.Spawn(SpawnSpec{Preset: "no-such"}); err == nil {
		t.Error("unknown preset accepted")
	}

	// The frame budget completes tenant a; tenant b keeps running.
	waitFor(t, "tenant a completion", func() bool { return ta.Status().State == StateCompleted })
	if got := ta.Status().Frame; got != 40 {
		t.Errorf("completed at frame %d, want exactly 40", got)
	}
	waitFor(t, "tenant b progress", func() bool { return tb.Status().Frame > 40 })

	if err := h.Kill("custom"); err != nil {
		t.Fatal(err)
	}
	if err := h.Kill("custom"); err == nil {
		t.Error("double kill succeeded")
	}
	if got := len(h.List()); got != 1 {
		t.Errorf("%d tenants after kill, want 1", got)
	}
	if st := h.Stats(); st.FramesStepped < 40 {
		t.Errorf("FramesStepped = %d, want >= 40", st.FramesStepped)
	}
}

// TestStorageFaultIsolation is the smoke scenario: a storage fault halts one
// tenant's application processor while every other tenant keeps ticking,
// and the victim itself reconfigures around the loss rather than stalling.
func TestStorageFaultIsolation(t *testing.T) {
	h := NewHost(Config{Shards: 4, Batch: 4})
	defer h.Close()

	const n = 8
	tenants := make([]*Tenant, n)
	for i := range tenants {
		tn, err := h.Spawn(SpawnSpec{Preset: "threeconfig", Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = tn
	}
	waitFor(t, "fleet progress", func() bool { return tenants[0].Status().Frame > 10 })

	victim := tenants[3]
	if _, err := victim.Inject(Injection{Kind: "storage", Proc: "p2"}); err != nil {
		t.Fatal(err)
	}
	mark := make([]int64, n)
	for i, tn := range tenants {
		mark[i] = tn.Status().Frame
	}
	waitFor(t, "post-fault progress", func() bool {
		for i, tn := range tenants {
			if tn.Status().Frame <= mark[i]+20 {
				return false
			}
		}
		return true
	})
	// Everyone is still running — a fail-stopped processor inside one
	// tenant is that tenant's problem, handled by its own reconfiguration
	// protocol, not a scheduler event.
	for i, tn := range tenants {
		if st := tn.Status(); st.State != StateRunning {
			t.Errorf("tenant %d is %s after the fault", i, st.State)
		}
	}
}

// panicApp delegates to a real app until a step threshold, then panics —
// the misbehaving-tenant stand-in.
type panicApp struct {
	core.App
	steps   int
	panicAt int
}

func (p *panicApp) Step(env *core.FrameEnv) error {
	p.steps++
	if p.steps >= p.panicAt {
		panic("tenant application bug")
	}
	return p.App.Step(env)
}

// spawnPanicking registers a hand-built tenant whose autopilot panics after
// k steps, with an alternator failure scripted at frame 5 so the black box
// has a committed reconfiguration to recover. Same-package surgery: the
// control plane offers no way to spawn a broken app, which is the point —
// this simulates one slipping through.
func spawnPanicking(t *testing.T, h *Host, id string, k int) *Tenant {
	t.Helper()
	opts, err := SpawnOptions(SpawnSpec{Preset: "threeconfig", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	opts.Script = []envmon.Event{{Frame: 5, Factor: "alt1", Value: "failed"}}
	for appID, app := range opts.Apps {
		if appID == "autopilot" {
			opts.Apps[appID] = &panicApp{App: app, panicAt: k}
		}
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	tn := &Tenant{id: id, spec: SpawnSpec{ID: id, Preset: "threeconfig", Seed: 99}, sys: sys, state: StateRunning, frameLen: opts.Spec.FrameLen}
	h.mu.Lock()
	h.tenants[id] = tn
	h.order = append(h.order, id)
	h.mu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
	return tn
}

// TestPanicQuarantine is the isolation boundary: a panicking tenant is
// quarantined with a reason, its black box (committed ring) stays
// queryable, and the other tenants never notice.
func TestPanicQuarantine(t *testing.T) {
	h := NewHost(Config{Shards: 2, Batch: 4})
	defer h.Close()

	good, err := h.Spawn(SpawnSpec{Preset: "threeconfig", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bad := spawnPanicking(t, h, "bad", 40)

	waitFor(t, "quarantine", func() bool { return bad.Status().State == StateQuarantined })
	st := bad.Status()
	if !strings.Contains(st.Reason, "panic") {
		t.Errorf("quarantine reason = %q, want a panic", st.Reason)
	}

	// The healthy tenant keeps ticking well past the panic.
	mark := good.Status().Frame
	waitFor(t, "healthy progress", func() bool { return good.Status().Frame > mark+40 })
	if got := good.Status().State; got != StateRunning {
		t.Fatalf("healthy tenant is %s", got)
	}

	// The quarantined tenant's black box is recoverable: the post-mortem
	// snapshot serves the ring recovered from committed stable storage,
	// trailing the halt by at most one frame.
	snap, ok := bad.TelemetrySnapshot()
	if !ok {
		t.Fatal("no post-mortem snapshot")
	}
	if len(snap.Events) == 0 {
		t.Fatal("post-mortem snapshot has no recovered events")
	}
	// The injected alternator failure's reconfiguration must be in the
	// committed ring — the black box witnessed life after frame 0.
	var last int64
	for _, e := range snap.Events {
		if e.Frame > last {
			last = e.Frame
		}
	}
	if last == 0 {
		t.Error("recovered ring holds only boot events; the reconfiguration never committed")
	}

	// Injections against a quarantined tenant are rejected.
	if _, err := bad.Inject(Injection{Kind: "env", Factor: "alt1", Value: "failed"}); err == nil {
		t.Error("injection into a quarantined tenant accepted")
	}
}

// apiClient wraps the httptest server for terse test calls.
type apiClient struct {
	t    *testing.T
	base string
}

func (c *apiClient) do(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestAPISurface(t *testing.T) {
	h := NewHost(Config{Shards: 2, Batch: 4})
	defer h.Close()
	srv := httptest.NewServer(NewAPI(h).Handler())
	defer srv.Close()
	c := &apiClient{t: t, base: srv.URL}

	// Spawn (unbounded: the test injects while the tenant runs).
	code, body := c.do("POST", "/systems", SpawnSpec{ID: "a", Preset: "threeconfig", Seed: 4})
	if code != http.StatusCreated {
		t.Fatalf("spawn: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "a" || st.State != StateRunning {
		t.Fatalf("spawn status = %+v", st)
	}
	if code, _ := c.do("POST", "/systems", SpawnSpec{ID: "a", Preset: "threeconfig"}); code != http.StatusConflict {
		t.Errorf("duplicate spawn = %d, want 409", code)
	}
	if code, body := c.do("POST", "/systems", SpawnSpec{Preset: "nope"}); code != http.StatusBadRequest {
		t.Errorf("bad preset spawn = %d %s", code, body)
	}

	// List + status + stats + presets.
	if code, body := c.do("GET", "/systems", nil); code != http.StatusOK || !bytes.Contains(body, []byte(`"systems"`)) {
		t.Errorf("list = %d %s", code, body)
	}
	if code, _ := c.do("GET", "/systems/a", nil); code != http.StatusOK {
		t.Errorf("status = %d", code)
	}
	if code, _ := c.do("GET", "/systems/zz", nil); code != http.StatusNotFound {
		t.Errorf("missing tenant status = %d, want 404", code)
	}
	if code, body := c.do("GET", "/presets", nil); code != http.StatusOK || !bytes.Contains(body, []byte("threeconfig")) {
		t.Errorf("presets = %d %s", code, body)
	}
	if code, body := c.do("GET", "/stats", nil); code != http.StatusOK || !bytes.Contains(body, []byte("frames_stepped")) {
		t.Errorf("stats = %d %s", code, body)
	}

	// Inject an alternator failure; the ack names the applied frame.
	code, body = c.do("POST", "/systems/a/inject", Injection{Kind: "env", Factor: "alt1", Value: "failed"})
	if code != http.StatusOK {
		t.Fatalf("inject: %d %s", code, body)
	}
	var ack struct {
		AppliedFrame int64 `json:"applied_frame"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if code, body := c.do("POST", "/systems/a/inject", Injection{Kind: "bogus"}); code != http.StatusBadRequest {
		t.Errorf("bogus inject = %d %s", code, body)
	}

	// The per-tenant telemetry plane, live while the tenant runs.
	if code, body := c.do("GET", "/systems/a/metrics", nil); code != http.StatusOK || !bytes.Contains(body, []byte("frame")) {
		t.Errorf("metrics = %d %.120s", code, body)
	}
	if code, body := c.do("GET", "/systems/a/journal", nil); code != http.StatusOK || !bytes.Contains(body, []byte(`"seq"`)) {
		t.Errorf("journal = %d %.120s", code, body)
	}
	var reports []struct {
		ID string `json:"id"`
	}
	waitFor(t, "the injected failure's trace to assemble", func() bool {
		code, body = c.do("GET", "/systems/a/traces", nil)
		if code != http.StatusOK {
			t.Fatalf("traces = %d %.120s", code, body)
		}
		reports = reports[:0]
		if err := json.Unmarshal(body, &reports); err != nil {
			t.Fatal(err)
		}
		return len(reports) > 0
	})
	if code, _ := c.do("GET", "/systems/a/trace/"+reports[0].ID, nil); code != http.StatusOK {
		t.Errorf("trace/%s = %d", reports[0].ID, code)
	}

	// Kill.
	if code, _ := c.do("DELETE", "/systems/a", nil); code != http.StatusOK {
		t.Errorf("kill = %d", code)
	}
	if code, _ := c.do("GET", "/systems/a", nil); code != http.StatusNotFound {
		t.Errorf("killed tenant still resolves")
	}
}

// TestConcurrentControlPlane is the -race test: concurrent spawn, kill,
// inject and query traffic against a live fleet registry while the shard
// sweep steps tenants underneath.
func TestConcurrentControlPlane(t *testing.T) {
	h := NewHost(Config{Shards: 4, Batch: 4})
	defer h.Close()
	srv := httptest.NewServer(NewAPI(h).Handler())
	defer srv.Close()

	const (
		workers = 8
		rounds  = 12
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &apiClient{t: t, base: srv.URL}
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("w%d-r%d", w, i)
				if code, body := c.do("POST", "/systems", SpawnSpec{ID: id, Preset: "threeconfig", Seed: int64(w*1000 + i)}); code != http.StatusCreated {
					t.Errorf("spawn %s: %d %s", id, code, body)
					return
				}
				c.do("POST", "/systems/"+id+"/inject", Injection{Kind: "env", Factor: "alt1", Value: "failed"})
				c.do("GET", "/systems/"+id, nil)
				c.do("GET", "/systems/"+id+"/metrics", nil)
				c.do("GET", "/systems", nil)
				if i%2 == 0 {
					if code, _ := c.do("DELETE", "/systems/"+id, nil); code != http.StatusOK {
						t.Errorf("kill %s failed", id)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Half of each worker's tenants survive; they are all running (or
	// legitimately still catching up) and the listing is consistent.
	want := workers * rounds / 2
	if got := len(h.List()); got != want {
		t.Errorf("%d tenants after churn, want %d", got, want)
	}
	for _, st := range h.List() {
		if st.State != StateRunning {
			t.Errorf("tenant %s is %s after churn", st.ID, st.State)
		}
	}
}
