package fleet

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/telemetry/serve"
)

// This file is the host's crash-restart path. A fleet host is itself a
// fail-stop system: kill -9 loses everything staged in memory, but the
// manifest — committed to the CRC-checksummed replicated store — survives.
// Recover rebuilds the fleet from that manifest alone: each tenant is
// re-spawned from its journaled SpawnSpec and replayed through its acked
// injections to its last checkpointed frame. Tenants are deterministic, so
// the replay reproduces the pre-crash execution byte-identically — journal,
// trace chunks, metrics, post-mortem snapshots — which is exactly what the
// restart-equivalence checker (and the CI smoke job) asserts.
//
// Failure handling is self-stabilizing: a tenant whose replay recipe is
// damaged (a record lost on every replica, an undecodable record, a replay
// that errors) is quarantined with the damage as its reason; a tenant whose
// spawn record is gone entirely is dropped and reported. No single tenant's
// damage stops any other tenant from recovering.

// Recovery reports what a Recover call rebuilt.
type Recovery struct {
	// Tenants is the number of tenants restored into the fleet, any state.
	Tenants int `json:"tenants"`
	// Running/Completed count tenants restored into those states.
	Running   int `json:"running"`
	Completed int `json:"completed"`
	// Quarantined lists tenants restored quarantined — either replayed
	// into their pre-crash quarantine, or damaged beyond faithful replay.
	Quarantined []string `json:"quarantined,omitempty"`
	// Dropped lists tenants (or foreign manifest keys) that could not be
	// restored at all: nothing to respawn from. Converged past, reported.
	Dropped []string `json:"dropped,omitempty"`
}

// Recover builds a host from a durable Config and rebuilds the pre-crash
// fleet out of cfg.Manifest before starting the scheduler. It is NewHost for
// a store that already has history; on a fresh store it degenerates to an
// empty durable host.
func Recover(cfg Config) (*Host, *Recovery, error) {
	if cfg.Manifest == nil {
		return nil, nil, errors.New("fleet: Recover needs Config.Manifest")
	}
	manifests, dropped, err := loadManifest(cfg.Manifest)
	if err != nil {
		return nil, nil, err
	}
	h := newHostNoLoop(cfg)
	rec := &Recovery{Dropped: dropped}

	// Seq order is spawn order: listings and the scheduler sweep see the
	// fleet in the same order the original host did.
	ids := make([]string, 0, len(manifests))
	for id := range manifests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := manifests[ids[i]], manifests[ids[j]]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return ids[i] < ids[j]
	})

	maxSeq := int64(-1)
	for _, id := range ids {
		tm := manifests[id]
		if tm.Seq > maxSeq {
			maxSeq = tm.Seq
		}
		t := h.recoverTenant(id, tm)
		h.tenants[id] = t
		h.order = append(h.order, id)
		rec.Tenants++
		switch t.state {
		case StateRunning:
			rec.Running++
		case StateCompleted:
			rec.Completed++
		case StateQuarantined:
			rec.Quarantined = append(rec.Quarantined, id)
		}
		for _, ir := range tm.Injections {
			h.primeDedupe(id, ir.RequestID, ir.Applied)
		}
	}
	sort.Strings(rec.Quarantined)
	h.spawnSeq = maxSeq + 1

	h.startLoop()
	return h, rec, nil
}

// recoverTenant rebuilds one tenant from its manifest recipe. It never
// fails: damage becomes quarantine, so the rest of the fleet recovers
// regardless. The returned tenant is not yet registered or stepped.
func (h *Host) recoverTenant(id string, tm *tenantManifest) *Tenant {
	t := &Tenant{
		id:   id,
		spec: tm.Spec,
		host: h,
	}
	if tm.Damaged != "" {
		return quarantineForRecovery(h, t, tm, "recovery: "+tm.Damaged)
	}
	if err := t.replay(tm); err != nil {
		return quarantineForRecovery(h, t, tm, "recovery: "+err.Error())
	}
	// Replay landed; the checkpoint's lifecycle state (or the frame budget)
	// decides how the tenant rejoins the fleet.
	t.lastCkptFrame, t.lastCkptState = tm.Ckpt.Frame, tm.Ckpt.State
	switch {
	case tm.HasCkpt && tm.Ckpt.State == StateQuarantined:
		// The pre-crash quarantine, reproduced: same frame boundary, same
		// reason, and a post-mortem polled from the byte-identical
		// committed stable storage the replay rebuilt.
		t.quarantineLocked(tm.Ckpt.Reason)
	case tm.Spec.Frames > 0 && t.sys.Frame() >= tm.Spec.Frames:
		t.state = StateCompleted
	default:
		t.state = StateRunning
	}
	return t
}

// quarantineForRecovery parks an unreplayable tenant: quarantined, with a
// fresh (unstepped) system if the spec still builds, so the control plane
// can report it without tripping over a nil system.
func quarantineForRecovery(h *Host, t *Tenant, tm *tenantManifest, reason string) *Tenant {
	if t.sys == nil {
		if opts, err := SpawnOptions(tm.Spec); err == nil {
			if sys, err := core.NewSystem(opts); err == nil {
				t.sys = sys
				t.frameLen = opts.Spec.FrameLen
			}
		}
	}
	t.state = StateQuarantined
	t.reason = reason
	t.final = &serve.Snapshot{}
	return t
}

// replay re-executes the tenant's pre-crash run: spawn from the spec,
// schedule the acked processor events up front (scheduling early is
// observably identical to scripting them), then walk the remaining acked
// injections in ord order, stepping to each one's applied frame before
// applying it. The final StepTo lands on the last checkpointed boundary (or
// the last injection barrier, whichever is later) — every frame up to there
// re-executes with the same deterministic inputs as the first time.
func (t *Tenant) replay(tm *tenantManifest) (err error) {
	opts, err := SpawnOptions(tm.Spec)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		return err
	}
	t.sys = sys
	t.frameLen = opts.Spec.FrameLen
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("replay panicked: %v", r)
		}
	}()

	for _, ir := range tm.Injections {
		if ir.Inj.Kind != "procfail" && ir.Inj.Kind != "procrepair" {
			continue
		}
		kind := core.ProcFail
		if ir.Inj.Kind == "procrepair" {
			kind = core.ProcRepair
		}
		ev := core.ProcEvent{Frame: ir.Applied, Proc: spec.ProcID(ir.Inj.Proc), Kind: kind}
		if err := sys.ScheduleProcEvent(ev); err != nil {
			return fmt.Errorf("replaying injection %d: %w", ir.Ord, err)
		}
	}

	// Env and storage injections applied in ord order; their applied frames
	// are non-decreasing in ord (apply order is time order on a monotonic
	// frame counter), so StepTo never runs backward.
	target := int64(0)
	if tm.HasCkpt {
		target = tm.Ckpt.Frame
	}
	for _, ir := range tm.Injections {
		switch ir.Inj.Kind {
		case "env":
			if err := sys.StepTo(ir.Applied); err != nil {
				return fmt.Errorf("replaying injection %d: %w", ir.Ord, err)
			}
			sys.InjectFactor(envmon.Factor(ir.Inj.Factor), ir.Inj.Value)
		case "storage":
			if err := sys.StepTo(ir.Applied); err != nil {
				return fmt.Errorf("replaying injection %d: %w", ir.Ord, err)
			}
			if err := sys.InjectStorageFault(spec.ProcID(ir.Inj.Proc)); err != nil {
				return fmt.Errorf("replaying injection %d: %w", ir.Ord, err)
			}
		case "panic":
			// Re-arm; the sweep re-fires it at the same frame. An acked
			// panic has no frame barrier, so it does not raise the target.
			t.panicAt = ir.Applied
			continue
		default:
			continue
		}
		// A non-panic ack means the applied frame committed pre-crash: the
		// replay must cross it even if no checkpoint recorded it.
		if ir.Applied+1 > target {
			target = ir.Applied + 1
		}
	}
	if tm.Spec.Frames > 0 && target > tm.Spec.Frames {
		target = tm.Spec.Frames
	}
	if err := sys.StepTo(target); err != nil {
		return fmt.Errorf("replaying to frame %d: %w", target, err)
	}
	// The ord counter resumes past everything journaled, keeping manifest
	// keys unique across the restart.
	if n := len(tm.Injections); n > 0 {
		t.injSeq = tm.Injections[n-1].Ord + 1
	}
	return err
}
