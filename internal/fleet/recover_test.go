package fleet

// Host crash-restart tests: the durability half of ISSUE 10. A durable host
// journals its fleet manifest to replicated stable media; these tests kill
// the host the hard way (abandon without drain — what kill -9 leaves
// behind), remount the surviving media, and demand the recovered fleet be
// byte-identical to an uninterrupted run.

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/stable"
	"repro/internal/telemetry/serve"
)

// mountFileManifest mounts a manifest store over two file media rooted in
// dir — the same layout fleetd -data uses, recovered the same way.
func mountFileManifest(t *testing.T, dir string) *stable.Store {
	t.Helper()
	var media []stable.Medium
	for _, rep := range []string{"r0", "r1"} {
		m, err := stable.NewFileMedium(filepath.Join(dir, rep))
		if err != nil {
			t.Fatalf("NewFileMedium: %v", err)
		}
		media = append(media, m)
	}
	return stable.NewHardened(stable.MountReplicatedStore(media...))
}

func durableConfig(st *stable.Store) Config {
	return Config{Shards: 2, Batch: 4, Manifest: st, CheckpointEvery: 16}
}

// TestRestartEquivalence is the tentpole property: spawn a fleet on a
// durable host, inject live faults, hard-stop the host mid-run (no drain, no
// final checkpoint — the kill -9 shape), recover from the on-disk manifest,
// run to completion, and assert each tenant's journal and /trace/<tid> HTTP
// bodies are byte-identical to an uninterrupted standalone run of the same
// recipe.
func TestRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	h := NewHost(durableConfig(mountFileManifest(t, dir)))

	specs := []SpawnSpec{
		{ID: "r-0", Preset: "threeconfig", Seed: 101, Frames: 200},
		{ID: "r-1", Preset: "threeconfig-spares", Seed: 202, Frames: 200},
		{ID: "r-2", Preset: "threeconfig-spares4", Seed: 303, Frames: 200},
	}
	for _, ss := range specs {
		if _, err := h.Spawn(ss); err != nil {
			t.Fatalf("spawn %s: %v", ss.ID, err)
		}
	}

	// Live injections mid-run: these acks are the replay recipe the crash
	// must not lose.
	acks := make(map[string][]AckedInjection)
	for _, id := range []string{"r-0", "r-1", "r-2"} {
		ten, _ := h.Get(id)
		waitFor(t, id+" past frame 5", func() bool { return ten.Status().Frame > 5 })
		inj := Injection{Kind: "env", Factor: "alt1", Value: "failed", RequestID: "fail-" + id}
		applied, err := h.Inject(id, inj)
		if err != nil {
			t.Fatalf("inject %s: %v", id, err)
		}
		acks[id] = append(acks[id], AckedInjection{Inj: inj, Applied: applied})
	}

	// Wait until the fleet is mid-flight, then kill it the hard way.
	waitFor(t, "fleet mid-run", func() bool {
		for _, st := range h.List() {
			if st.Frame < 60 {
				return false
			}
		}
		return true
	})
	h.Close() // no drain: everything since the last checkpoint is lost

	h2, rec, err := Recover(durableConfig(mountFileManifest(t, dir)))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer h2.Close()
	if rec.Tenants != len(specs) || len(rec.Dropped) > 0 {
		t.Fatalf("recovery = %+v, want %d tenants, none dropped", rec, len(specs))
	}

	// Post-crash injections land on the recovered fleet like nothing
	// happened.
	for _, id := range []string{"r-0", "r-1", "r-2"} {
		inj := Injection{Kind: "env", Factor: "alt1", Value: "ok", RequestID: "repair-" + id}
		applied, err := h2.Inject(id, inj)
		if err != nil {
			t.Fatalf("post-recovery inject %s: %v", id, err)
		}
		acks[id] = append(acks[id], AckedInjection{Inj: inj, Applied: applied})
	}
	waitFor(t, "recovered fleet completed", func() bool {
		for _, st := range h2.List() {
			if st.State != StateCompleted {
				return false
			}
		}
		return true
	})

	for _, ss := range specs {
		ten, ok := h2.Get(ss.ID)
		if !ok {
			t.Fatalf("tenant %s vanished after recovery", ss.ID)
		}
		if err := CheckEquivalence(ten, acks[ss.ID]); err != nil {
			t.Errorf("restart equivalence: %v", err)
		}
	}

	// HTTP byte-identity for one victim: the recovered fleet's serve plane
	// renders /journal and /trace/<tid> exactly as the uninterrupted run.
	ten, _ := h2.Get("r-0")
	ref, err := StandaloneSnapshot(ten.Spec(), acks["r-0"], 200, false)
	if err != nil {
		t.Fatalf("standalone: %v", err)
	}
	wantJournal, err := renderJournal(ref.Events)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	mux := serve.NewMux(ten)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/journal", nil))
	if rr.Code != 200 || !bytes.Equal(rr.Body.Bytes(), wantJournal) {
		t.Errorf("/journal after crash-restart differs from uninterrupted run (status %d)", rr.Code)
	}
	tid := firstTraceID(ref.Events)
	if tid == 0 {
		t.Fatal("no reconfiguration trace in reference run (vacuous test)")
	}
	wantTrace, err := renderTraceReport(ref.Events, tid)
	if err != nil {
		t.Fatalf("render trace: %v", err)
	}
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/trace/"+strconv.FormatInt(tid, 16), nil))
	if rr.Code != 200 || !bytes.Equal(rr.Body.Bytes(), wantTrace) {
		t.Errorf("/trace/%x after crash-restart differs from uninterrupted run (status %d)", tid, rr.Code)
	}
}

// TestRecoverDedupeSurvivesRestart: a request id acked before the crash
// replays its pre-crash ack after recovery instead of re-applying.
func TestRecoverDedupeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	h := NewHost(durableConfig(mountFileManifest(t, dir)))
	if _, err := h.Spawn(SpawnSpec{ID: "d", Preset: "threeconfig", Seed: 9}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	ten, _ := h.Get("d")
	waitFor(t, "tenant past frame 5", func() bool { return ten.Status().Frame > 5 })
	inj := Injection{Kind: "env", Factor: "alt1", Value: "failed", RequestID: "once"}
	applied, err := h.Inject("d", inj)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	h.Close()

	h2, _, err := Recover(durableConfig(mountFileManifest(t, dir)))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer h2.Close()
	again, err := h2.Inject("d", inj)
	if err != nil {
		t.Fatalf("replayed inject: %v", err)
	}
	if again != applied {
		t.Fatalf("request %q acked %d after restart, %d before", inj.RequestID, again, applied)
	}
}

// TestRecoverConvergesPastDamage: records torn on every replica quarantine
// only the tenant that owned them; a spawn record missing entirely drops
// only that tenant. Everyone else recovers untouched — self-stabilization,
// not halt-on-corruption.
func TestRecoverConvergesPastDamage(t *testing.T) {
	dir := t.TempDir()
	h := NewHost(durableConfig(mountFileManifest(t, dir)))
	for _, ss := range []SpawnSpec{
		{ID: "ok", Preset: "threeconfig", Seed: 1, Frames: 60},
		{ID: "hurt", Preset: "threeconfig", Seed: 2, Frames: 60},
		{ID: "gone", Preset: "threeconfig", Seed: 3, Frames: 60},
	} {
		if _, err := h.Spawn(ss); err != nil {
			t.Fatalf("spawn %s: %v", ss.ID, err)
		}
	}
	ten, _ := h.Get("hurt")
	waitFor(t, "hurt past frame 5", func() bool { return ten.Status().Frame > 5 })
	if _, err := h.Inject("hurt", Injection{Kind: "env", Factor: "alt1", Value: "failed"}); err != nil {
		t.Fatalf("inject: %v", err)
	}
	h.Close()

	// Corrupt hurt's injection record on BOTH replicas (unrecoverable) and
	// delete gone's spawn record from both (nothing to respawn from).
	for _, rep := range []string{"r0", "r1"} {
		m, err := stable.NewFileMedium(filepath.Join(dir, rep))
		if err != nil {
			t.Fatalf("reopen medium: %v", err)
		}
		for _, key := range m.Keys() {
			if raw, ok := m.Read(key); ok && len(raw) > 4 {
				switch {
				case key == injKey("hurt", 0):
					raw[len(raw)-3] ^= 0xFF
					if err := m.Write(key, raw); err != nil {
						t.Fatalf("corrupt: %v", err)
					}
				case key == spawnKey("gone"):
					m.Delete(key)
				}
			}
		}
	}

	h2, rec, err := Recover(durableConfig(mountFileManifest(t, dir)))
	if err != nil {
		t.Fatalf("Recover must converge past damage, got: %v", err)
	}
	defer h2.Close()

	if len(rec.Dropped) != 1 || rec.Dropped[0] != "gone" {
		t.Fatalf("dropped = %v, want [gone]", rec.Dropped)
	}
	if len(rec.Quarantined) != 1 || rec.Quarantined[0] != "hurt" {
		t.Fatalf("quarantined = %v, want [hurt]", rec.Quarantined)
	}
	hurt, ok := h2.Get("hurt")
	if !ok {
		t.Fatal("hurt vanished")
	}
	if st := hurt.Status(); st.State != StateQuarantined || st.Reason == "" {
		t.Fatalf("hurt = %+v, want quarantined with a recovery reason", st)
	}
	waitFor(t, "ok completed", func() bool {
		st, _ := h2.Get("ok")
		return st.Status().State == StateCompleted
	})
}

// TestRecoverReproducesQuarantine: a tenant that panicked pre-crash is
// restored quarantined at the same frame with the same reason, and its
// post-mortem snapshot re-recovers from the replayed stable storage.
func TestRecoverReproducesQuarantine(t *testing.T) {
	dir := t.TempDir()
	h := NewHost(durableConfig(mountFileManifest(t, dir)))
	defer h.Close()
	if _, err := h.Spawn(SpawnSpec{ID: "v", Preset: "threeconfig", Seed: 21}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	ten, _ := h.Get("v")
	waitFor(t, "tenant past frame 10", func() bool { return ten.Status().Frame > 10 })
	// Default frame: the panic arms at whatever frame is next — frame-exact
	// aims would race the live sweep.
	if _, err := h.Inject("v", Injection{Kind: "panic"}); err != nil {
		t.Fatalf("arm panic: %v", err)
	}
	waitFor(t, "tenant quarantined", func() bool { return ten.Status().State == StateQuarantined })
	pre := ten.Status()
	preSnap, ok := ten.TelemetrySnapshot()
	if !ok {
		t.Fatal("no pre-crash snapshot")
	}
	// The quarantine checkpoint is journaled by the sweep that observed it.
	waitFor(t, "quarantine checkpointed", func() bool {
		ten.mu.Lock()
		defer ten.mu.Unlock()
		return ten.lastCkptState == StateQuarantined
	})
	h.Close()

	h2, rec, err := Recover(durableConfig(mountFileManifest(t, dir)))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer h2.Close()
	if len(rec.Quarantined) != 1 {
		t.Fatalf("recovery = %+v, want one quarantined tenant", rec)
	}
	ten2, _ := h2.Get("v")
	post := ten2.Status()
	if post.State != StateQuarantined || post.Frame != pre.Frame || post.Reason != pre.Reason {
		t.Fatalf("recovered quarantine %+v differs from pre-crash %+v", post, pre)
	}
	postSnap, ok := ten2.TelemetrySnapshot()
	if !ok {
		t.Fatal("no post-recovery snapshot")
	}
	a, _ := renderJournal(preSnap.Events)
	b, _ := renderJournal(postSnap.Events)
	if !bytes.Equal(a, b) {
		t.Fatal("post-mortem journal differs across crash-restart")
	}
}

// TestKilledTenantStaysDead: a kill is durable — the recovered fleet does
// not resurrect a tenant whose manifest range was deleted.
func TestKilledTenantStaysDead(t *testing.T) {
	dir := t.TempDir()
	h := NewHost(durableConfig(mountFileManifest(t, dir)))
	for _, id := range []string{"keep", "dead"} {
		if _, err := h.Spawn(SpawnSpec{ID: id, Preset: "threeconfig", Seed: 5}); err != nil {
			t.Fatalf("spawn %s: %v", id, err)
		}
	}
	if err := h.Kill("dead"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	h.Close()

	h2, rec, err := Recover(durableConfig(mountFileManifest(t, dir)))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer h2.Close()
	if rec.Tenants != 1 {
		t.Fatalf("recovered %d tenants, want 1", rec.Tenants)
	}
	if _, ok := h2.Get("dead"); ok {
		t.Fatal("killed tenant resurrected by recovery")
	}
	if _, ok := h2.Get("keep"); !ok {
		t.Fatal("surviving tenant not recovered")
	}
}

// TestDrainBeatsCrash: Drain checkpoints every tenant before exit, so a
// recovered fleet resumes from the exact drained frames (no progress loss),
// unlike a hard stop which falls back to the last periodic checkpoint.
func TestDrainBeatsCrash(t *testing.T) {
	dir := t.TempDir()
	// A huge cadence so periodic checkpoints never fire after the first
	// sweep: only Drain's final barrier can record late progress.
	cfg := durableConfig(mountFileManifest(t, dir))
	cfg.CheckpointEvery = 1 << 40
	h := NewHost(cfg)
	if _, err := h.Spawn(SpawnSpec{ID: "d", Preset: "threeconfig", Seed: 31}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	ten, _ := h.Get("d")
	waitFor(t, "tenant past frame 50", func() bool { return ten.Status().Frame > 50 })
	h.Drain()
	drained := ten.Status().Frame

	h2, _, err := Recover(durableConfig(mountFileManifest(t, dir)))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer h2.Close()
	ten2, _ := h2.Get("d")
	if got := ten2.Status().Frame; got < drained {
		t.Fatalf("recovered at frame %d, drained at %d: Drain lost progress", got, drained)
	}
}
