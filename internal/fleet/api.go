package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/cli"
	"repro/internal/telemetry/serve"
)

// API is the fleet's HTTP/JSON control plane:
//
//	POST   /systems              spawn a tenant from a SpawnSpec body
//	GET    /systems              list tenant statuses
//	GET    /systems/{id}         one tenant's status
//	DELETE /systems/{id}         kill a tenant
//	POST   /systems/{id}/inject  apply an Injection body
//	GET    /systems/{id}/metrics | /journal | /traces | /trace/{tid}
//	                             the per-tenant telemetry plane (serve.NewMux)
//	GET    /presets              spawnable preset names
//	GET    /stats                host aggregate counters
//
// JSON bodies are rendered through cli.WriteJSON, so every object body
// carries the schema_version field and byte-compatibility follows the cmd
// tools' rule (cmd/README.md).
//
// Mutating routes (spawn, kill, inject) pass through two gates:
//
//   - admission control: a bounded concurrency semaphore; a full host sheds
//     load with 429 and a Retry-After hint instead of queueing unboundedly;
//   - the drain gate: a host on its way down (SIGTERM) answers 503, so
//     clients fail over instead of racing the manifest's final checkpoint.
//
// Injections carry an optional request_id; repeats with the same id replay
// the first outcome (see Host.Inject), making retries across timeouts — and
// across a host crash — safe.
type API struct {
	host *Host
	// sem is the admission-control semaphore for mutating requests.
	sem chan struct{}
}

// DefaultAdmissionLimit bounds concurrently-admitted mutating requests.
const DefaultAdmissionLimit = 256

// NewAPI returns the control-plane handler for a host.
func NewAPI(h *Host) *API { return NewAPILimited(h, DefaultAdmissionLimit) }

// NewAPILimited is NewAPI with an explicit admission limit (<=0 uses the
// default).
func NewAPILimited(h *Host, limit int) *API {
	if limit <= 0 {
		limit = DefaultAdmissionLimit
	}
	return &API{host: h, sem: make(chan struct{}, limit)}
}

// Handler builds the route table.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /systems", a.mutating(a.handleSpawn))
	mux.HandleFunc("GET /systems", a.handleList)
	mux.HandleFunc("GET /systems/{id}", a.handleStatus)
	mux.HandleFunc("DELETE /systems/{id}", a.mutating(a.handleKill))
	mux.HandleFunc("POST /systems/{id}/inject", a.mutating(a.handleInject))
	mux.HandleFunc("GET /systems/{id}/metrics", a.handleTelemetry)
	mux.HandleFunc("GET /systems/{id}/journal", a.handleTelemetry)
	mux.HandleFunc("GET /systems/{id}/traces", a.handleTelemetry)
	mux.HandleFunc("GET /systems/{id}/trace/{tid}", a.handleTelemetry)
	mux.HandleFunc("GET /presets", a.handlePresets)
	mux.HandleFunc("GET /stats", a.handleStats)
	return mux
}

// mutating wraps a handler in the drain gate and the admission semaphore.
// The acquire is non-blocking: past the limit the host is overloaded and the
// honest answer is "come back", not an unbounded queue of goroutines each
// waiting on a tenant lock.
func (a *API) mutating(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if a.host.Draining() {
			http.Error(w, "host is draining", http.StatusServiceUnavailable)
			return
		}
		select {
		case a.sem <- struct{}{}:
			defer func() { <-a.sem }()
		default:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "control plane at admission limit", http.StatusTooManyRequests)
			return
		}
		next(w, r)
	}
}

// maxBodyBytes bounds control-plane request bodies.
const maxBodyBytes = 1 << 20

// readBody decodes a JSON request body into v.
func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, "malformed body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON renders a response body through the versioned JSON writer.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = cli.WriteJSON(w, v)
}

// tenant resolves the {id} path segment, answering 404 on a miss.
func (a *API) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	id := r.PathValue("id")
	t, ok := a.host.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no tenant %q", id), http.StatusNotFound)
		return nil, false
	}
	return t, true
}

func (a *API) handleSpawn(w http.ResponseWriter, r *http.Request) {
	var ss SpawnSpec
	if !readBody(w, r, &ss) {
		return
	}
	t, err := a.host.Spawn(ss)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errTenantExists) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, http.StatusCreated, t.Status())
}

// listBody wraps the tenant list so the top-level JSON body is an object
// (and therefore carries schema_version).
type listBody struct {
	Systems []Status `json:"systems"`
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, listBody{Systems: a.host.List()})
}

func (a *API) handleStatus(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, t.Status())
}

// killBody acknowledges a kill.
type killBody struct {
	ID     string `json:"id"`
	Killed bool   `json:"killed"`
}

func (a *API) handleKill(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.host.Kill(id); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, killBody{ID: id, Killed: true})
}

// injectBody acknowledges an injection with the frame it applies at — the
// frame a scripted standalone replay uses to reproduce the run.
type injectBody struct {
	ID           string `json:"id"`
	Kind         string `json:"kind"`
	AppliedFrame int64  `json:"applied_frame"`
}

func (a *API) handleInject(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	var inj Injection
	if !readBody(w, r, &inj) {
		return
	}
	// Route through the host: idempotency (request_id), the commit barrier,
	// and durable journaling before the ack.
	frame, err := a.host.Inject(t.ID(), inj)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, injectBody{ID: t.ID(), Kind: inj.Kind, AppliedFrame: frame})
}

// handleTelemetry re-mounts the shared serve-plane mux (PR 8's routes) under
// the tenant's prefix: /systems/{id}/metrics|journal|traces|trace/{tid}
// serve exactly what a standalone -serve tool would, byte-identically.
func (a *API) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	t, ok := a.tenant(w, r)
	if !ok {
		return
	}
	http.StripPrefix("/systems/"+t.ID(), serve.NewMux(t)).ServeHTTP(w, r)
}

// presetsBody lists the spawnable presets.
type presetsBody struct {
	Presets []string `json:"presets"`
}

func (a *API) handlePresets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, presetsBody{Presets: Presets()})
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.host.Stats())
}

// errTenantExists tags Spawn's duplicate-id error for the 409 mapping.
var errTenantExists = errors.New("tenant id already exists")
