package fleet

import (
	"bytes"
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/telemetry/serve"
)

// This file is the restart-equivalence checker: the executable form of the
// durability contract. A tenant's replay recipe — its SpawnSpec plus every
// acked injection at its applied frame — re-executed as an uninterrupted
// standalone run must produce the byte-identical journal and trace reports
// the (possibly crash-restarted, possibly many-times-recovered) fleet tenant
// serves. The chaos harness (fleet/chaos) runs this check after every storm;
// the CI smoke job runs the same comparison over HTTP.

// AckedInjection is one entry of the public replay recipe: an injection plus
// the applied_frame the host acked it at.
type AckedInjection struct {
	Inj     Injection `json:"inj"`
	Applied int64     `json:"applied"`
}

// Spec returns the tenant's resolved SpawnSpec — the first half of its
// replay recipe.
func (t *Tenant) Spec() SpawnSpec {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spec
}

// StandaloneSnapshot re-executes a SpawnSpec with its acked injections as an
// uninterrupted straight-line run — NewSystem and Step in the caller's
// goroutine, no fleet, no recovery machinery — up to the given frame
// boundary, and returns the telemetry snapshot that run presents. With
// quarantined set it takes the post-mortem path a quarantined tenant serves:
// the journal recovered from committed stable storage rather than the live
// ring. Injections of kind "panic" shape the target frame, not the
// execution, so callers pass the quarantine frame as frames.
func StandaloneSnapshot(ss SpawnSpec, acks []AckedInjection, frames int64, quarantined bool) (serve.Snapshot, error) {
	opts, err := SpawnOptions(ss)
	if err != nil {
		return serve.Snapshot{}, err
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		return serve.Snapshot{}, err
	}
	defer sys.Close()
	for _, a := range acks {
		if a.Inj.Kind != "procfail" && a.Inj.Kind != "procrepair" {
			continue
		}
		kind := core.ProcFail
		if a.Inj.Kind == "procrepair" {
			kind = core.ProcRepair
		}
		ev := core.ProcEvent{Frame: a.Applied, Proc: spec.ProcID(a.Inj.Proc), Kind: kind}
		if err := sys.ScheduleProcEvent(ev); err != nil {
			return serve.Snapshot{}, fmt.Errorf("standalone proc event at frame %d: %w", a.Applied, err)
		}
	}
	for _, a := range acks {
		switch a.Inj.Kind {
		case "env":
			if err := sys.StepTo(a.Applied); err != nil {
				return serve.Snapshot{}, err
			}
			sys.InjectFactor(envmon.Factor(a.Inj.Factor), a.Inj.Value)
		case "storage":
			if err := sys.StepTo(a.Applied); err != nil {
				return serve.Snapshot{}, err
			}
			if err := sys.InjectStorageFault(spec.ProcID(a.Inj.Proc)); err != nil {
				return serve.Snapshot{}, fmt.Errorf("standalone storage fault at frame %d: %w", a.Applied, err)
			}
		}
	}
	if err := sys.StepTo(frames); err != nil {
		return serve.Snapshot{}, err
	}
	snap := serve.Snapshot{Frame: sys.Frame(), FrameLen: opts.Spec.FrameLen}
	reg, rec := sys.Telemetry()
	if reg != nil {
		snap.Metrics = reg.Snapshot()
	}
	if quarantined {
		if st, err := sys.Pool().PollStable(sys.SCRAMProc()); err == nil {
			if ring, err := telemetry.RecoverRing(st); err == nil {
				snap.Events = ring
			}
		}
	} else if rec != nil {
		snap.Events = rec.Events()
	}
	return snap, nil
}

// CheckEquivalence asserts a tenant at rest (completed or quarantined)
// serves the byte-identical journal — and, trace by trace, the identical
// rendered trace reports — of its recipe's uninterrupted standalone run.
// This is the property host recovery must preserve across any number of
// crash-restart cycles.
func CheckEquivalence(t *Tenant, acks []AckedInjection) error {
	st := t.Status()
	if st.State == StateRunning {
		return fmt.Errorf("fleet: tenant %s still running; equivalence is checked at rest", st.ID)
	}
	snap, ok := t.TelemetrySnapshot()
	if !ok {
		return fmt.Errorf("fleet: tenant %s has no telemetry snapshot", st.ID)
	}
	ref, err := StandaloneSnapshot(t.Spec(), acks, snap.Frame, st.State == StateQuarantined)
	if err != nil {
		return fmt.Errorf("fleet: tenant %s standalone re-execution: %w", st.ID, err)
	}
	if snap.Frame != ref.Frame {
		return fmt.Errorf("fleet: tenant %s at frame %d, standalone at %d", st.ID, snap.Frame, ref.Frame)
	}
	got, err := renderJournal(snap.Events)
	if err != nil {
		return fmt.Errorf("fleet: tenant %s journal render: %w", st.ID, err)
	}
	want, err := renderJournal(ref.Events)
	if err != nil {
		return fmt.Errorf("fleet: tenant %s standalone journal render: %w", st.ID, err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("fleet: tenant %s journal diverges from standalone run (%d vs %d bytes)", st.ID, len(got), len(want))
	}
	// The journal matched byte-for-byte; check the derived trace reports
	// too, since /trace/<tid> is its own serialized surface.
	for _, tv := range telemetry.AssembleTraces(ref.Events) {
		if tv.ID == 0 {
			continue
		}
		a, err := renderTraceReport(snap.Events, tv.ID)
		if err != nil {
			return fmt.Errorf("fleet: tenant %s trace %x: %w", st.ID, tv.ID, err)
		}
		b, err := renderTraceReport(ref.Events, tv.ID)
		if err != nil {
			return fmt.Errorf("fleet: tenant %s standalone trace %x: %w", st.ID, tv.ID, err)
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("fleet: tenant %s trace %x diverges from standalone run", st.ID, tv.ID)
		}
	}
	return nil
}

// renderJournal renders events the way /journal and flightrec do.
func renderJournal(events []telemetry.Event) ([]byte, error) {
	var buf bytes.Buffer
	if err := telemetry.WriteJournal(&buf, events); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// renderTraceReport renders one trace report the way /trace/<tid> and
// flightrec -trace -json do.
func renderTraceReport(events []telemetry.Event, id int64) ([]byte, error) {
	tv, ok := telemetry.FindTrace(events, id)
	if !ok {
		return nil, fmt.Errorf("trace %x not found", id)
	}
	var buf bytes.Buffer
	if err := cli.WriteJSON(&buf, telemetry.BuildTraceReport(tv)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
