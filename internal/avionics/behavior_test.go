package avionics

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/frame"
	"repro/internal/spec"
	"repro/internal/stable"
)

// fcsHarness drives an FCS in isolation over a private bus.
type fcsHarness struct {
	fcs   *FCS
	b     *bus.Bus
	fcsEP *bus.Endpoint
	cmdEP *bus.Endpoint
	store *stable.Store
	f     int64
}

func newFCSHarness(t *testing.T) *fcsHarness {
	t.Helper()
	b := bus.New(bus.Schedule{
		{Owner: "fcs", MaxMessages: 2},
		{Owner: "cmd", MaxMessages: 2},
	})
	fcsEP, err := b.Attach("fcs")
	if err != nil {
		t.Fatal(err)
	}
	fcsEP.Subscribe(TopicAPCmd)
	fcsEP.Subscribe(TopicSensors)
	cmdEP, err := b.Attach("cmd")
	if err != nil {
		t.Fatal(err)
	}
	return &fcsHarness{fcs: NewFCS(), b: b, fcsEP: fcsEP, cmdEP: cmdEP, store: stable.NewStore()}
}

// step sends cmd to the FCS, runs one Step under sp, and returns the
// surfaces the FCS commanded.
func (h *fcsHarness) step(t *testing.T, sp string, cmd APCommand) Surfaces {
	t.Helper()
	payload, _ := json.Marshal(cmd)
	if err := h.cmdEP.Publish(TopicAPCmd, payload); err != nil {
		t.Fatal(err)
	}
	h.b.DeliverFrame(h.f)
	env := &core.FrameEnv{
		Frame:    h.f,
		FrameLen: FrameLength,
		Spec:     spec.SpecID(sp),
		Store:    h.store.Region("fcs"),
		Bus:      h.fcsEP,
	}
	if err := h.fcs.Step(env); err != nil {
		t.Fatal(err)
	}
	h.store.Commit()
	h.f++
	return h.fcs.Surfaces()
}

func TestFCSDirectIsPassthrough(t *testing.T) {
	h := newFCSHarness(t)
	out := h.step(t, string(SpecFCSDirect), APCommand{Pitch: 0.7, Roll: -0.4, Engaged: true})
	if out.Elevator != 0.7 || out.Aileron != -0.4 {
		t.Errorf("direct output = %+v, want passthrough", out)
	}
	// Commands clamp to [-1, 1].
	out = h.step(t, string(SpecFCSDirect), APCommand{Pitch: 5, Roll: -5, Engaged: true})
	if out.Elevator != 1 || out.Aileron != -1 {
		t.Errorf("clamped output = %+v", out)
	}
	// Disengaged input means neutral commands.
	out = h.step(t, string(SpecFCSDirect), APCommand{Pitch: 0.7, Engaged: false})
	if out.Elevator != 0 || out.Aileron != 0 {
		t.Errorf("disengaged output = %+v, want neutral", out)
	}
}

func TestFCSAugmentationSmoothsSteps(t *testing.T) {
	h := newFCSHarness(t)
	// A unit step command: the augmented FCS must NOT pass it through at
	// full amplitude on the first frame (low-pass smoothing), while the
	// direct FCS does.
	out := h.step(t, string(SpecFCSFull), APCommand{Pitch: 1, Engaged: true})
	if out.Elevator >= 0.9 {
		t.Errorf("augmented first-frame response = %.2f, want smoothed (< 0.9)", out.Elevator)
	}
	// The response converges toward the command over repeated frames.
	var last Surfaces
	for i := 0; i < 40; i++ {
		last = h.step(t, string(SpecFCSFull), APCommand{Pitch: 1, Engaged: true})
	}
	if last.Elevator < 0.9 {
		t.Errorf("augmented steady-state response = %.2f, want near 1", last.Elevator)
	}
}

func TestFCSInitCentersSurfaces(t *testing.T) {
	h := newFCSHarness(t)
	h.step(t, string(SpecFCSDirect), APCommand{Pitch: 0.9, Roll: 0.9, Engaged: true})
	if h.fcs.Precondition(SpecFCSDirect) {
		t.Fatal("precondition holds with deflected surfaces")
	}
	env := &core.FrameEnv{Frame: h.f, FrameLen: FrameLength, Store: h.store.Region("fcs"), Bus: h.fcsEP}
	done, err := h.fcs.Init(env, SpecFCSDirect)
	if err != nil || !done {
		t.Fatalf("Init = %v, %v", done, err)
	}
	if !h.fcs.Precondition(SpecFCSDirect) {
		t.Error("precondition does not hold after Init")
	}
	if !h.fcs.Surfaces().Centered(1e-9) {
		t.Error("surfaces not centered after Init")
	}
}

func TestFCSRejectsUnknownSpec(t *testing.T) {
	h := newFCSHarness(t)
	env := &core.FrameEnv{Frame: 0, FrameLen: FrameLength, Spec: "bogus", Store: h.store.Region("fcs"), Bus: h.fcsEP}
	if err := h.fcs.Step(env); err == nil {
		t.Error("unknown specification accepted")
	}
}

func TestAutopilotAltHoldOnlyIgnoresLateral(t *testing.T) {
	// Under ap-alt-hold the autopilot must not command roll even with a
	// large heading error.
	sc, err := NewScenario(ScenarioOptions{
		Initial: AircraftState{AltFt: 5000, HeadingDeg: 0, AirspeedKts: 100},
		Targets: Targets{AltFt: 5000, HdgDeg: 180},
		Script: []envmon.Event{
			{Frame: 5, Factor: FactorAlt1, Value: AltFailed}, // force reduced service
		},
		DwellFrames: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Sys.Run(600); err != nil {
		t.Fatal(err)
	}
	if got := sc.Sys.Kernel().Current(); got != CfgReduced {
		t.Fatalf("configuration = %s", got)
	}
	st := sc.Dyn.State()
	// Heading drifts at most marginally: no lateral control authority is
	// exercised in altitude-hold-only service.
	if math.Abs(wrapDeg180(st.HeadingDeg-0)) > 2 {
		t.Errorf("heading = %.1f, want ~0 (no turn commanded in reduced service)", st.HeadingDeg)
	}
	// Altitude is still held.
	if math.Abs(st.AltFt-5000) > 100 {
		t.Errorf("altitude = %.1f", st.AltFt)
	}
}

func TestAutopilotTargetsSurviveProcessorLoss(t *testing.T) {
	// The autopilot flies toward 5200 ft; its processor fails mid-climb;
	// after migration the recovered targets (from stable storage) keep
	// the climb going on the new processor.
	classifier := func(f map[envmon.Factor]string) spec.EnvState {
		state := Classifier(f)
		if f[core.ProcHealthFactor(Proc1)] == core.ProcFailed && state == EnvPowerFull {
			state = EnvPowerReduced
		}
		return state
	}
	rs := Spec()
	// In reduced service both apps run on proc-1 — but proc-1 is the
	// failed one here, so move reduced service to proc-2 for this test.
	for i := range rs.Configs {
		cfg := &rs.Configs[i]
		if cfg.ID != CfgReduced && cfg.ID != CfgMinimal {
			continue
		}
		for app := range cfg.Placement {
			cfg.Placement[app] = Proc2
		}
		for j, lp := range cfg.LowPower {
			if lp == Proc1 {
				cfg.LowPower[j] = Proc2
			}
		}
	}
	ap := NewAutopilot(Targets{AltFt: 5200, HdgDeg: 0, Climb: true})
	fcs := NewFCS()
	sys, err := core.NewSystem(core.Options{
		Spec:       rs,
		Apps:       map[spec.AppID]core.App{AppAutopilot: ap, AppFCS: fcs},
		Classifier: classifier,
		InitialFactors: map[envmon.Factor]string{
			FactorAlt1: AltOK, FactorAlt2: AltOK, FactorBattery: "ok",
		},
		SCRAMProc:   Proc2, // keep the kernel off the failing processor
		ProcEvents:  []core.ProcEvent{{Frame: 100, Proc: Proc1, Kind: core.ProcFail}},
		BusSchedule: BusSchedule(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	dyn, err := NewDynamics(sys.Bus(), AircraftState{AltFt: 5000, AirspeedKts: 100})
	if err != nil {
		t.Fatal(err)
	}
	sensors, err := NewSensorSuite(sys.Bus(), dyn)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTask(sensors); err != nil {
		t.Fatal(err)
	}
	apEP, _ := sys.Bus().Endpoint(bus.EndpointID(AppAutopilot))
	apEP.Subscribe(TopicSensors)
	fcsEP, _ := sys.Bus().Endpoint(bus.EndpointID(AppFCS))
	fcsEP.Subscribe(TopicSensors)
	fcsEP.Subscribe(TopicAPCmd)
	sys.AddCommitHook(dyn.Hook)

	if err := sys.Run(1200); err != nil {
		t.Fatal(err)
	}
	if got := sys.Kernel().Current(); got != CfgReduced {
		t.Fatalf("configuration = %s", got)
	}
	if vs := sys.CheckProperties(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// The recovered autopilot kept (or re-acquired) the climb target.
	if tg := ap.Targets(); tg.AltFt != 5200 {
		t.Errorf("recovered target = %.0f, want 5200", tg.AltFt)
	}
	if alt := dyn.State().AltFt; alt < 5100 {
		t.Errorf("altitude = %.0f, want climb progress toward 5200 after recovery", alt)
	}
}

func TestDynamicsTurnPhysics(t *testing.T) {
	b := bus.New(bus.Schedule{{Owner: "ctl", MaxMessages: 1}})
	dyn, err := NewDynamics(b, AircraftState{AltFt: 5000, AirspeedKts: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := b.Attach("ctl")
	if err != nil {
		t.Fatal(err)
	}
	ctx := frame.Context{Len: 20 * time.Millisecond}

	// Constant right aileron: bank builds toward the equilibrium
	// aileron*maxRollRate/rollDamp = 0.4*20/0.8 = 10 degrees, and the
	// heading increases.
	for i := 0; i < 500; i++ {
		payload, _ := json.Marshal(Surfaces{Aileron: 0.4})
		if err := ctl.Publish(TopicSurfaces, payload); err != nil {
			t.Fatal(err)
		}
		b.DeliverFrame(int64(i))
		ctx.Frame = int64(i)
		if err := dyn.Hook(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := dyn.State()
	if math.Abs(st.BankDeg-10) > 1 {
		t.Errorf("bank = %.2f, want ~10 (equilibrium)", st.BankDeg)
	}
	if st.HeadingDeg < 5 {
		t.Errorf("heading = %.2f, want a right turn in progress", st.HeadingDeg)
	}
	if got := dyn.LastSurfaces(); got.Aileron != 0.4 {
		t.Errorf("LastSurfaces = %+v", got)
	}
}

func TestDynamicsClimbPhysics(t *testing.T) {
	b := bus.New(bus.Schedule{{Owner: "ctl", MaxMessages: 1}})
	dyn, err := NewDynamics(b, AircraftState{AltFt: 5000, AirspeedKts: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctl, _ := b.Attach("ctl")
	ctx := frame.Context{Len: 20 * time.Millisecond}
	for i := 0; i < 500; i++ { // 10 s at 1/3 elevator
		payload, _ := json.Marshal(Surfaces{Elevator: 1.0 / 3})
		if err := ctl.Publish(TopicSurfaces, payload); err != nil {
			t.Fatal(err)
		}
		b.DeliverFrame(int64(i))
		ctx.Frame = int64(i)
		if err := dyn.Hook(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := dyn.State()
	// Commanded vs = 1000 fpm; the lag leaves it just below.
	if st.VSFpm < 900 || st.VSFpm > 1050 {
		t.Errorf("vs = %.1f, want ~1000 fpm", st.VSFpm)
	}
	if st.AltFt < 5100 {
		t.Errorf("altitude = %.1f, want climb from 5000", st.AltFt)
	}
}

// TestReconfigurationSurvivesLossyBus drops every bus message mid-flight:
// application data flow (sensors, commands) dies, but reconfiguration
// coordination travels through stable storage and the direct signal path,
// so the alternator failure still drives an assured transition. This checks
// the architecture's separation of concerns: the bus carries application
// traffic; the SCRAM protocol does not depend on it.
func TestReconfigurationSurvivesLossyBus(t *testing.T) {
	sc, err := NewScenario(ScenarioOptions{
		Initial:     cruise(),
		Script:      []envmon.Event{{Frame: 60, Factor: FactorAlt1, Value: AltFailed}},
		DwellFrames: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Sys.Run(40); err != nil {
		t.Fatal(err)
	}
	// The bus fails totally at frame 40.
	plan := bus.NewFaultPlan(1)
	plan.SetDefault(bus.FaultRates{Drop: 1})
	sc.Sys.Bus().SetFaultPlan(plan)
	if err := sc.Sys.Run(160); err != nil {
		t.Fatal(err)
	}
	if got := sc.Sys.Kernel().Current(); got != CfgReduced {
		t.Fatalf("configuration = %s, want reduced despite dead bus", got)
	}
	if vs := sc.Sys.CheckProperties(); len(vs) != 0 {
		t.Fatalf("violations with dead bus: %v", vs)
	}
	_, dropped := sc.Sys.Bus().Stats()
	if dropped == 0 {
		t.Fatal("fault hook dropped nothing; test is vacuous")
	}
}

func TestAppIdentitiesAndLifecyclePredicates(t *testing.T) {
	ap := NewAutopilot(Targets{AltFt: 5000})
	fcs := NewFCS()
	if ap.ID() != AppAutopilot || fcs.ID() != AppFCS {
		t.Errorf("IDs = %s, %s", ap.ID(), fcs.ID())
	}
	if ap.Postcondition() || fcs.Postcondition() {
		t.Error("postconditions hold before any halt")
	}
	st := stable.NewStore()
	env := &core.FrameEnv{Frame: 0, FrameLen: FrameLength, Store: st.Region("x")}
	if done, err := ap.Halt(env); err != nil || !done {
		t.Fatalf("ap halt = %v, %v", done, err)
	}
	if done, err := fcs.Halt(env); err != nil || !done {
		t.Fatalf("fcs halt = %v, %v", done, err)
	}
	if !ap.Postcondition() || !fcs.Postcondition() {
		t.Error("postconditions do not hold after halt")
	}
	// SetTargets feeds the autopilot's mode-control panel.
	ap.SetTargets(Targets{AltFt: 7000, HdgDeg: 270, Turn: true})
	if got := ap.Targets(); got.AltFt != 7000 || !got.Turn {
		t.Errorf("SetTargets lost: %+v", got)
	}
}

func TestAppsRunWithoutBus(t *testing.T) {
	// Both applications tolerate a nil bus endpoint (systems built
	// without a bus schedule): they compute but exchange nothing.
	ap := NewAutopilot(Targets{AltFt: 5000})
	fcs := NewFCS()
	st := stable.NewStore()
	env := &core.FrameEnv{Frame: 0, FrameLen: FrameLength, Spec: SpecAPFull, Store: st.Region("ap")}
	if err := ap.Step(env); err != nil {
		t.Fatalf("autopilot Step without bus: %v", err)
	}
	env.Spec = SpecFCSFull
	env.Store = st.Region("fcs")
	if err := fcs.Step(env); err != nil {
		t.Fatalf("fcs Step without bus: %v", err)
	}
	if done, err := fcs.Init(env, SpecFCSDirect); err != nil || !done {
		t.Fatalf("fcs Init without bus: %v, %v", done, err)
	}
	if done, err := ap.Init(env, SpecAPAltHold); err != nil || !done {
		t.Fatalf("ap Init without bus: %v, %v", done, err)
	}
}

func TestDynamicsRejectsMalformedSurfaces(t *testing.T) {
	b := bus.New(bus.Schedule{{Owner: "ctl", MaxMessages: 1}})
	dyn, err := NewDynamics(b, AircraftState{AirspeedKts: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctl, _ := b.Attach("ctl")
	if err := ctl.Publish(TopicSurfaces, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(0)
	if err := dyn.Hook(frame.Context{Len: FrameLength}); err == nil {
		t.Error("malformed surface command accepted")
	}
}

func TestScenarioWithSpecRejectsBrokenSpec(t *testing.T) {
	rs := Spec()
	rs.DwellFrames = 0 // cycles without a guard: obligations fail
	if _, err := NewScenarioWithSpec(rs, ScenarioOptions{
		Initial:     cruise(),
		DwellFrames: -1,
	}); err == nil {
		t.Error("broken spec accepted")
	}
}

func TestDuplicateEndpointRejected(t *testing.T) {
	b := bus.New(bus.Schedule{})
	if _, err := NewDynamics(b, AircraftState{}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDynamics(b, AircraftState{}); err == nil {
		t.Error("duplicate dynamics endpoint accepted")
	}
	if _, err := NewSensorSuite(b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSensorSuite(b, nil); err == nil {
		t.Error("duplicate sensor endpoint accepted")
	}
}

func TestPacedScenarioTracksWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	sc, err := NewScenario(ScenarioOptions{
		Initial:     cruise(),
		DwellFrames: -1,
		Paced:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	start := time.Now()
	if err := sc.Sys.Run(15); err != nil { // 15 frames x 20 ms = 300 ms
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 280*time.Millisecond {
		t.Errorf("15 paced frames took %v, want >= ~300ms", elapsed)
	}
}
