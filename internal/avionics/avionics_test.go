package avionics

import (
	"math"
	"testing"
	"time"

	"repro/internal/frame"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/failstop"
	"repro/internal/spec"
	"repro/internal/statics"
	"repro/internal/trace"
)

func TestSpecDischargesAllObligations(t *testing.T) {
	report, err := statics.Check(Spec())
	if err != nil {
		t.Fatal(err)
	}
	if !report.AllDischarged() {
		t.Fatalf("obligations failed: %v", report.Failures())
	}
	// The three-configuration structure of section 7.
	if len(report.Reachable) != 3 {
		t.Errorf("reachable = %v", report.Reachable)
	}
}

func newScenario(t *testing.T, opts ScenarioOptions) *Scenario {
	t.Helper()
	sc, err := NewScenario(opts)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	t.Cleanup(sc.Close)
	return sc
}

func cruise() AircraftState {
	return AircraftState{AltFt: 5000, HeadingDeg: 0, AirspeedKts: 100}
}

func TestAltitudeHoldSteadyState(t *testing.T) {
	sc := newScenario(t, ScenarioOptions{Initial: cruise(), DwellFrames: -1})
	if err := sc.Sys.Run(500); err != nil { // 10 s
		t.Fatal(err)
	}
	st := sc.Dyn.State()
	if math.Abs(st.AltFt-5000) > 50 {
		t.Errorf("altitude drifted to %.1f ft", st.AltFt)
	}
	if math.Abs(st.VSFpm) > 150 {
		t.Errorf("vertical speed = %.1f fpm, want near level", st.VSFpm)
	}
	if !sc.AP.Engaged() {
		t.Error("autopilot not engaged in steady state")
	}
	if vs := sc.Sys.CheckProperties(); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestClimbToAltitudeCapturesAndReverts(t *testing.T) {
	sc := newScenario(t, ScenarioOptions{
		Initial:     cruise(),
		Targets:     Targets{AltFt: 5300, HdgDeg: 0, Climb: true},
		DwellFrames: -1,
	})
	if err := sc.Sys.Run(1500); err != nil { // 30 s
		t.Fatal(err)
	}
	st := sc.Dyn.State()
	if math.Abs(st.AltFt-5300) > 120 {
		t.Errorf("altitude = %.1f ft, want near 5300", st.AltFt)
	}
	if sc.AP.Targets().Climb {
		t.Error("climb mode did not revert to hold after capture")
	}
}

func TestTurnToHeadingCapturesAndReverts(t *testing.T) {
	sc := newScenario(t, ScenarioOptions{
		Initial:     cruise(),
		Targets:     Targets{AltFt: 5000, HdgDeg: 90, Turn: true},
		DwellFrames: -1,
	})
	if err := sc.Sys.Run(2000); err != nil { // 40 s
		t.Fatal(err)
	}
	st := sc.Dyn.State()
	if math.Abs(wrapDeg180(90-st.HeadingDeg)) > 10 {
		t.Errorf("heading = %.1f deg, want near 90", st.HeadingDeg)
	}
	if sc.AP.Targets().Turn {
		t.Error("turn mode did not revert to hold after capture")
	}
	// Altitude held through the turn.
	if math.Abs(st.AltFt-5000) > 120 {
		t.Errorf("altitude = %.1f ft during turn, want near 5000", st.AltFt)
	}
}

// TestSection71Scenario reproduces the paper's walkthrough: operating in
// Full Service, an alternator fails; the SCRAM commands Reduced Service; the
// preconditions (surfaces centered, autopilot disengaged) hold on entry; and
// all four properties are satisfied.
func TestSection71Scenario(t *testing.T) {
	sc := newScenario(t, ScenarioOptions{
		Initial:     cruise(),
		Script:      []envmon.Event{{Frame: 100, Factor: FactorAlt1, Value: AltFailed}},
		DwellFrames: -1,
	})
	if err := sc.Sys.Run(400); err != nil {
		t.Fatal(err)
	}
	if got := sc.Sys.Kernel().Current(); got != CfgReduced {
		t.Fatalf("configuration = %s, want reduced", got)
	}
	rcs := sc.Sys.Trace().Reconfigs()
	if len(rcs) != 1 {
		t.Fatalf("reconfigurations = %v", rcs)
	}
	r := rcs[0]
	if r.StartC != 100 || r.From != CfgFull || r.To != CfgReduced {
		t.Errorf("reconfiguration = %+v", r)
	}
	// Table 1 shape: trigger + halt + prepare + init(fcs, then autopilot)
	// = 5 frames.
	if r.Frames() != 5 {
		t.Errorf("window = %d frames, want 5", r.Frames())
	}
	if vs := sc.Sys.CheckProperties(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// Proc2 hosts nothing in Reduced Service: shut down.
	p2, _ := sc.Sys.Pool().Proc(Proc2)
	if p2.State() != failstop.StateOff {
		t.Errorf("proc-2 state = %v, want off", p2.State())
	}
	// The autopilot still holds altitude under reduced service.
	if st := sc.Dyn.State(); math.Abs(st.AltFt-5000) > 100 {
		t.Errorf("altitude after reconfiguration = %.1f ft", st.AltFt)
	}
	if !sc.AP.Engaged() {
		t.Error("autopilot did not re-engage after reduced-service entry")
	}
}

func TestDoubleAlternatorFailureReachesMinimal(t *testing.T) {
	sc := newScenario(t, ScenarioOptions{
		Initial: cruise(),
		Script: []envmon.Event{
			{Frame: 50, Factor: FactorAlt1, Value: AltFailed},
			{Frame: 150, Factor: FactorAlt2, Value: AltFailed},
		},
		DwellFrames: 5,
	})
	if err := sc.Sys.Run(600); err != nil {
		t.Fatal(err)
	}
	if got := sc.Sys.Kernel().Current(); got != CfgMinimal {
		t.Fatalf("configuration = %s, want minimal", got)
	}
	if vs := sc.Sys.CheckProperties(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// In minimal service the autopilot is off and proc-1 runs low-power.
	st, _ := sc.Sys.Trace().At(sc.Sys.Trace().Len() - 1)
	if ap := st.Apps[AppAutopilot]; ap.Spec != spec.SpecOff || ap.Status != trace.StatusNormal {
		t.Errorf("autopilot state in minimal = %+v", ap)
	}
	p1, _ := sc.Sys.Pool().Proc(Proc1)
	if p1.State() != failstop.StateLowPower {
		t.Errorf("proc-1 state = %v, want low-power", p1.State())
	}
	// On battery power the battery discharges.
	if sc.Elec.Charge() >= 100 {
		t.Errorf("battery charge = %.1f%%, want < 100 after running on battery", sc.Elec.Charge())
	}
	// The FCS keeps flying the aircraft (direct control) — altitude is no
	// longer actively held, but commands stop and surfaces were centered,
	// so the aircraft remains roughly level.
	if bank := sc.Dyn.State().BankDeg; math.Abs(bank) > 5 {
		t.Errorf("bank in minimal service = %.1f deg", bank)
	}
}

func TestRepairRestoresFullService(t *testing.T) {
	sc := newScenario(t, ScenarioOptions{
		Initial: cruise(),
		Script: []envmon.Event{
			{Frame: 50, Factor: FactorAlt1, Value: AltFailed},
			{Frame: 300, Factor: FactorAlt1, Value: AltOK},
		},
		DwellFrames: 5,
	})
	if err := sc.Sys.Run(600); err != nil {
		t.Fatal(err)
	}
	if got := sc.Sys.Kernel().Current(); got != CfgFull {
		t.Fatalf("configuration = %s, want full after repair", got)
	}
	if vs := sc.Sys.CheckProperties(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// The FCS migrated back to proc-2, which was powered off during
	// reduced service and must be running again.
	p2, _ := sc.Sys.Pool().Proc(Proc2)
	if p2.State() != failstop.StateRunning {
		t.Errorf("proc-2 state = %v, want running", p2.State())
	}
}

func TestProcessorFailureDuringFlight(t *testing.T) {
	// proc-2 (hosting the FCS) fails; the electrical state is unchanged
	// but the platform can no longer support full service. The avionics
	// classifier is power-based, so wire the health factor in explicitly
	// for this test.
	classifier := func(f map[envmon.Factor]string) spec.EnvState {
		state := Classifier(f)
		if f[core.ProcHealthFactor(Proc2)] == core.ProcFailed && state == EnvPowerFull {
			state = EnvPowerReduced
		}
		return state
	}
	rs := Spec()
	ap := NewAutopilot(Targets{AltFt: 5000})
	fcs := NewFCS()
	sys, err := core.NewSystem(core.Options{
		Spec:       rs,
		Apps:       map[spec.AppID]core.App{AppAutopilot: ap, AppFCS: fcs},
		Classifier: classifier,
		InitialFactors: map[envmon.Factor]string{
			FactorAlt1: AltOK, FactorAlt2: AltOK, FactorBattery: "ok",
		},
		ProcEvents:  []core.ProcEvent{{Frame: 60, Proc: Proc2, Kind: core.ProcFail}},
		BusSchedule: BusSchedule(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Run(300); err != nil {
		t.Fatal(err)
	}
	if got := sys.Kernel().Current(); got != CfgReduced {
		t.Fatalf("configuration = %s, want reduced", got)
	}
	if vs := sys.CheckProperties(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestElectricalModel(t *testing.T) {
	env := envmon.NewEnvironment(map[envmon.Factor]string{
		FactorAlt1: AltOK, FactorAlt2: AltOK,
	})
	e := NewElectrical(env)
	ctx := frameCtx(FrameLength)
	// Healthy: stays charged.
	for i := 0; i < 100; i++ {
		if err := e.Hook(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if e.Charge() != 100 {
		t.Errorf("charge = %.2f, want 100", e.Charge())
	}
	if band, _ := env.Get(FactorBattery); band != "ok" {
		t.Errorf("battery band = %q", band)
	}
	// Both alternators out: discharging toward low.
	env.Set(FactorAlt1, AltFailed)
	env.Set(FactorAlt2, AltFailed)
	for i := 0; i < 40000; i++ { // 800 s of battery time
		if err := e.Hook(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if e.Charge() >= batteryLowPC {
		t.Errorf("charge = %.2f, want below low threshold", e.Charge())
	}
	if band, _ := env.Get(FactorBattery); band != "low" {
		t.Errorf("battery band = %q, want low", band)
	}
	// One alternator back: recharging.
	env.Set(FactorAlt1, AltOK)
	before := e.Charge()
	for i := 0; i < 100; i++ {
		if err := e.Hook(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if e.Charge() <= before {
		t.Error("battery not recharging with an alternator available")
	}
	if e.String() == "" {
		t.Error("empty String()")
	}
}

func TestClassifier(t *testing.T) {
	tests := []struct {
		alt1, alt2 string
		want       spec.EnvState
	}{
		{AltOK, AltOK, EnvPowerFull},
		{AltFailed, AltOK, EnvPowerReduced},
		{AltOK, AltFailed, EnvPowerReduced},
		{AltFailed, AltFailed, EnvPowerBattery},
	}
	for _, tt := range tests {
		got := Classifier(map[envmon.Factor]string{FactorAlt1: tt.alt1, FactorAlt2: tt.alt2})
		if got != tt.want {
			t.Errorf("Classifier(%s, %s) = %s, want %s", tt.alt1, tt.alt2, got, tt.want)
		}
	}
}

func TestPIDAntiWindupAndClamp(t *testing.T) {
	p := newPID(1, 10, 0, 1)
	// Large persistent error: output clamps at 1 and the integral must
	// not run away.
	for i := 0; i < 1000; i++ {
		if out := p.Update(100, 0.02); out != 1 {
			t.Fatalf("clamped output = %v", out)
		}
	}
	integral, _ := p.State()
	if integral > 10 {
		t.Errorf("integral wound up to %v", integral)
	}
	p.Reset()
	if i, e := p.State(); i != 0 || e != 0 {
		t.Error("reset did not clear state")
	}
	p.Restore(0.5, 0.1)
	if i, e := p.State(); i != 0.5 || e != 0.1 {
		t.Error("restore did not reinstate state")
	}
	// Derivative path.
	d := newPID(0, 0, 1, 10)
	d.Update(0, 0.1)
	if out := d.Update(1, 0.1); math.Abs(out-10) > 1e-9 {
		t.Errorf("derivative output = %v, want 10", out)
	}
}

func TestAngleHelpers(t *testing.T) {
	if got := wrapDeg180(270); got != -90 {
		t.Errorf("wrapDeg180(270) = %v", got)
	}
	if got := wrapDeg180(-270); got != 90 {
		t.Errorf("wrapDeg180(-270) = %v", got)
	}
	if got := wrapDeg360(-10); got != 350 {
		t.Errorf("wrapDeg360(-10) = %v", got)
	}
	if got := wrapDeg360(370); got != 10 {
		t.Errorf("wrapDeg360(370) = %v", got)
	}
	if got := clamp(5, -1, 1); got != 1 {
		t.Errorf("clamp = %v", got)
	}
}

func TestSurfacesCentered(t *testing.T) {
	if !(Surfaces{}).Centered(1e-9) {
		t.Error("zero surfaces not centered")
	}
	if (Surfaces{Elevator: 0.1}).Centered(1e-3) {
		t.Error("deflected surfaces reported centered")
	}
}

// frameCtx builds a frame context with the given length.
func frameCtx(len_ time.Duration) frame.Context {
	return frame.Context{Frame: 0, Len: len_}
}
