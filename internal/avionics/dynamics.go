// Package avionics implements the paper's section 7 example instantiation:
// a hypothetical avionics system representative of a modern UAV or
// general-aviation aircraft. It provides an autopilot application (altitude
// hold, heading hold, climb-to-altitude, and turn-to-heading in its primary
// specification; altitude hold only in its reduced specification), a flight
// control system (augmented control / direct control), an electrical system
// model (two alternators and a battery) whose state is the environment that
// drives reconfiguration, a point-mass aircraft dynamics model, sensor and
// actuator traffic over the time-triggered bus, and the three system
// configurations of the paper: Full Service, Reduced Service, and Minimal
// Service.
package avionics

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro/internal/bus"
	"repro/internal/frame"
)

// Bus topics of the avionics system.
const (
	// TopicSensors carries AircraftState samples from the sensor suite.
	TopicSensors = "sensors/state"
	// TopicAPCmd carries APCommand messages from the autopilot to the
	// FCS.
	TopicAPCmd = "ap/cmd"
	// TopicSurfaces carries Surfaces commands from the FCS to the
	// control-surface actuators.
	TopicSurfaces = "fcs/surfaces"
)

// AircraftState is the point-mass aircraft state.
type AircraftState struct {
	// AltFt is the altitude in feet.
	AltFt float64 `json:"alt_ft"`
	// VSFpm is the vertical speed in feet per minute.
	VSFpm float64 `json:"vs_fpm"`
	// HeadingDeg is the heading in degrees [0, 360).
	HeadingDeg float64 `json:"heading_deg"`
	// BankDeg is the bank angle in degrees (positive right).
	BankDeg float64 `json:"bank_deg"`
	// AirspeedKts is the true airspeed in knots.
	AirspeedKts float64 `json:"airspeed_kts"`
}

// Surfaces is a control-surface command: normalized deflections in [-1, 1].
type Surfaces struct {
	Elevator float64 `json:"elevator"`
	Aileron  float64 `json:"aileron"`
}

// Centered reports whether both surfaces are within eps of neutral —
// the FCS precondition for entering a new configuration (section 7.1).
func (s Surfaces) Centered(eps float64) bool {
	return math.Abs(s.Elevator) <= eps && math.Abs(s.Aileron) <= eps
}

// Dynamics integrates the aircraft model. It consumes Surfaces commands from
// the bus and advances the state once per frame from a commit hook, so every
// task within a frame observes a consistent state.
type Dynamics struct {
	ep *bus.Endpoint

	mu       sync.Mutex
	state    AircraftState
	surfaces Surfaces
}

// Aircraft model constants: deliberately simple, stable, and representative.
const (
	// maxRollRateDps is the roll rate at full aileron, degrees/second.
	maxRollRateDps = 20.0
	// rollDampPerS pulls the bank back toward level.
	rollDampPerS = 0.8
	// maxBankDeg limits the achievable bank angle.
	maxBankDeg = 45.0
	// pitchAuthorityFpm is the commanded vertical speed at full elevator.
	pitchAuthorityFpm = 3000.0
	// vsLagPerS is the first-order lag of vertical speed toward command.
	vsLagPerS = 1.2
)

// NewDynamics attaches the dynamics model to the bus (subscribing to surface
// commands) with the given initial state.
func NewDynamics(b *bus.Bus, initial AircraftState) (*Dynamics, error) {
	ep, err := b.Attach("dynamics")
	if err != nil {
		return nil, fmt.Errorf("avionics: attaching dynamics: %w", err)
	}
	ep.Subscribe(TopicSurfaces)
	return &Dynamics{ep: ep, state: initial}, nil
}

// State returns the current aircraft state.
func (d *Dynamics) State() AircraftState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// LastSurfaces returns the most recently applied surface command.
func (d *Dynamics) LastSurfaces() Surfaces {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.surfaces
}

// Hook advances the model by one frame: it applies the latest surface
// command delivered over the bus, then integrates the equations of motion.
// Register it as a system commit hook.
func (d *Dynamics) Hook(ctx frame.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, msg := range d.ep.Receive() {
		var s Surfaces
		if err := json.Unmarshal(msg.Payload, &s); err != nil {
			return fmt.Errorf("avionics: decoding surfaces: %w", err)
		}
		d.surfaces = s
	}
	dt := ctx.Len.Seconds()
	st := &d.state

	// Roll axis: aileron drives bank; damping pulls toward level.
	bankRate := d.surfaces.Aileron*maxRollRateDps - st.BankDeg*rollDampPerS
	st.BankDeg = clamp(st.BankDeg+bankRate*dt, -maxBankDeg, maxBankDeg)

	// Heading: the standard coordinated-turn relation,
	// rate(deg/s) = 1091 * tan(bank) / TAS(kts).
	if st.AirspeedKts > 1 {
		turnRate := 1091 * math.Tan(st.BankDeg*math.Pi/180) / st.AirspeedKts
		st.HeadingDeg = wrapDeg360(st.HeadingDeg + turnRate*dt)
	}

	// Pitch axis: elevator commands vertical speed with first-order lag.
	cmdVS := d.surfaces.Elevator * pitchAuthorityFpm
	st.VSFpm += (cmdVS - st.VSFpm) * vsLagPerS * dt
	st.AltFt += st.VSFpm * dt / 60

	return nil
}

// SensorSuite samples the aircraft state each frame and publishes it on the
// bus — the sensor interface units of the architecture. It implements
// frame.Task.
type SensorSuite struct {
	ep  *bus.Endpoint
	dyn *Dynamics
}

// NewSensorSuite attaches the sensor suite to the bus.
func NewSensorSuite(b *bus.Bus, dyn *Dynamics) (*SensorSuite, error) {
	ep, err := b.Attach("sensors")
	if err != nil {
		return nil, fmt.Errorf("avionics: attaching sensors: %w", err)
	}
	return &SensorSuite{ep: ep, dyn: dyn}, nil
}

// TaskID implements frame.Task.
func (s *SensorSuite) TaskID() string { return "avionics:sensors" }

// Tick publishes the current aircraft state.
func (s *SensorSuite) Tick(frame.Context) error {
	payload, err := json.Marshal(s.dyn.State())
	if err != nil {
		return fmt.Errorf("avionics: encoding sensor sample: %w", err)
	}
	if err := s.ep.Publish(TopicSensors, payload); err != nil {
		return fmt.Errorf("avionics: publishing sensor sample: %w", err)
	}
	return nil
}
