package avionics

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/spec"
)

// Application and specification identifiers of the autopilot.
const (
	// AppAutopilot is the autopilot application.
	AppAutopilot spec.AppID = "autopilot"
	// SpecAPFull is the primary specification: altitude hold, heading
	// hold, climb to altitude, and turn to heading.
	SpecAPFull spec.SpecID = "ap-full"
	// SpecAPAltHold is the reduced specification: altitude hold only,
	// with substantially lower processing and memory needs.
	SpecAPAltHold spec.SpecID = "ap-alt-hold"
)

// Targets are the autopilot's commanded objectives. Climb and Turn select
// the capture services (climb to altitude, turn to heading); once captured,
// the autopilot reverts to the corresponding hold service.
type Targets struct {
	AltFt  float64 `json:"alt_ft"`
	HdgDeg float64 `json:"hdg_deg"`
	Climb  bool    `json:"climb"`
	Turn   bool    `json:"turn"`
}

// Autopilot control constants.
const (
	// apMaxVSFpm limits commanded vertical speed in hold mode.
	apMaxVSFpm = 800.0
	// apClimbVSFpm is the commanded rate for climb-to-altitude.
	apClimbVSFpm = 1200.0
	// apCaptureAltFt is the altitude-capture band ending a climb.
	apCaptureAltFt = 100.0
	// apCaptureHdgDeg is the heading-capture band ending a turn.
	apCaptureHdgDeg = 3.0
	// apMaxBankDeg limits commanded bank.
	apMaxBankDeg = 25.0
)

// Autopilot is the autopilot application. Under SpecAPFull it serves both
// axes; under SpecAPAltHold it serves the vertical axis only. Targets are
// persisted to stable storage every frame, so a processor failure or a
// migration preserves the commanded objectives.
type Autopilot struct {
	mu      sync.Mutex
	targets Targets

	engaged bool
	halted  bool
	sensors AircraftState
	haveSns bool

	pidVS   *pid
	pidBank *pid
}

// NewAutopilot returns an autopilot with the given initial targets,
// disengaged until its first normal frame.
func NewAutopilot(initial Targets) *Autopilot {
	return &Autopilot{
		targets: initial,
		pidVS:   newPID(0.0003, 0.0001, 0, 1),
		pidBank: newPID(0.8, 0.2, 0, 1),
	}
}

// ID implements core.App.
func (a *Autopilot) ID() spec.AppID { return AppAutopilot }

// Engaged reports whether the autopilot is currently engaged.
func (a *Autopilot) Engaged() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.engaged
}

// Targets returns the current objectives.
func (a *Autopilot) Targets() Targets {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.targets
}

// SetTargets updates the objectives (the pilot's mode-control panel). Safe
// to call between frames.
func (a *Autopilot) SetTargets(t Targets) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.targets = t
}

// Step implements core.App: one control cycle.
func (a *Autopilot) Step(env *core.FrameEnv) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.halted = false
	a.engaged = true // the autopilot re-engages when normal service resumes

	if env.Bus != nil {
		for _, msg := range env.Bus.Receive() {
			if msg.Topic != TopicSensors {
				continue
			}
			if err := json.Unmarshal(msg.Payload, &a.sensors); err != nil {
				return fmt.Errorf("avionics: autopilot decoding sensors: %w", err)
			}
			a.haveSns = true
		}
	}
	if !a.haveSns {
		// No sensor sample yet (boot frame): command neutral.
		return a.publish(env, APCommand{Engaged: true})
	}

	dt := env.FrameLen.Seconds()
	cmd := APCommand{Engaged: true}

	// Vertical axis: altitude hold or climb to altitude.
	altErr := a.targets.AltFt - a.sensors.AltFt
	if a.targets.Climb && math.Abs(altErr) <= apCaptureAltFt {
		a.targets.Climb = false // altitude captured: revert to hold
	}
	var desiredVS float64
	if a.targets.Climb {
		desiredVS = math.Copysign(apClimbVSFpm, altErr)
	} else {
		desiredVS = clamp(altErr*4, -apMaxVSFpm, apMaxVSFpm)
	}
	// Feedforward the steady-state elevator for the desired rate; the PID
	// trims the residual.
	cmd.Pitch = clamp(desiredVS/pitchAuthorityFpm+a.pidVS.Update(desiredVS-a.sensors.VSFpm, dt), -1, 1)

	// Lateral axis: heading hold / turn to heading, full service only.
	if env.Spec == SpecAPFull {
		hdgErr := wrapDeg180(a.targets.HdgDeg - a.sensors.HeadingDeg)
		if a.targets.Turn && math.Abs(hdgErr) <= apCaptureHdgDeg {
			a.targets.Turn = false // heading captured: revert to hold
		}
		desiredBank := clamp(hdgErr*1.5, -apMaxBankDeg, apMaxBankDeg)
		// Feedforward the aileron that holds the desired bank against
		// roll damping; the PID trims the residual.
		ff := desiredBank * rollDampPerS / maxRollRateDps
		cmd.Roll = clamp(ff+a.pidBank.Update((desiredBank-a.sensors.BankDeg)/apMaxBankDeg, dt), -1, 1)
	}

	if err := a.persist(env); err != nil {
		return err
	}
	return a.publish(env, cmd)
}

// persist checkpoints targets and controller state to stable storage.
func (a *Autopilot) persist(env *core.FrameEnv) error {
	if err := env.Store.PutJSON("targets", a.targets); err != nil {
		return err
	}
	vsI, vsE := a.pidVS.State()
	bkI, bkE := a.pidBank.State()
	return env.Store.PutJSON("pids", [4]float64{vsI, vsE, bkI, bkE})
}

func (a *Autopilot) publish(env *core.FrameEnv, cmd APCommand) error {
	if env.Bus == nil {
		return nil
	}
	payload, err := json.Marshal(cmd)
	if err != nil {
		return fmt.Errorf("avionics: autopilot encoding command: %w", err)
	}
	if err := env.Bus.Publish(TopicAPCmd, payload); err != nil {
		return fmt.Errorf("avionics: autopilot publishing command: %w", err)
	}
	return nil
}

// Halt implements core.App: cease operation (the postcondition of section
// 7.1). The last committed targets remain in stable storage.
func (a *Autopilot) Halt(env *core.FrameEnv) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.halted = true
	a.engaged = false
	return true, nil
}

// Prepare implements core.App: recover the commanded targets from stable
// storage (which migration carries across processors) and reset the
// controllers for the target specification.
func (a *Autopilot) Prepare(env *core.FrameEnv, target spec.SpecID) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var saved Targets
	if ok, err := env.Store.GetJSON("targets", &saved); err != nil {
		return false, err
	} else if ok {
		a.targets = saved
	}
	a.pidVS.Reset()
	a.pidBank.Reset()
	return true, nil
}

// Init implements core.App: establish the precondition — the autopilot is
// disengaged when a new configuration is entered (section 7.1).
func (a *Autopilot) Init(env *core.FrameEnv, target spec.SpecID) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.engaged = false
	a.haveSns = false
	return true, a.publish(env, APCommand{Engaged: false})
}

// Postcondition implements core.App.
func (a *Autopilot) Postcondition() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.halted
}

// Precondition implements core.App: disengaged on entry.
func (a *Autopilot) Precondition(spec.SpecID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return !a.engaged
}
