package avionics

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/spec"
)

// Application and specification identifiers of the flight control system.
const (
	// AppFCS is the flight control system application.
	AppFCS spec.AppID = "fcs"
	// SpecFCSFull is the primary specification: the FCS accepts input
	// from the pilot or autopilot and generates actuator commands with
	// stability augmentation.
	SpecFCSFull spec.SpecID = "fcs-full"
	// SpecFCSDirect is the reduced specification: commands are applied
	// directly to the control surfaces without augmentation.
	SpecFCSDirect spec.SpecID = "fcs-direct"
)

// surfaceCenterEps is the tolerance for "control surfaces centered", the
// FCS precondition for entering a new configuration.
const surfaceCenterEps = 1e-6

// APCommand is the autopilot's (or pilot's) control request to the FCS:
// normalized pitch and roll commands.
type APCommand struct {
	Pitch   float64 `json:"pitch"`
	Roll    float64 `json:"roll"`
	Engaged bool    `json:"engaged"`
}

// FCS is the flight control system application. Under SpecFCSFull it smooths
// commands and adds rate damping from sensor feedback (simulated stability
// augmentation); under SpecFCSDirect it passes commands straight through.
type FCS struct {
	cmd      APCommand
	sensors  AircraftState
	surfaces Surfaces
	smoothed Surfaces
	halted   bool
}

// Augmentation constants for the full specification.
const (
	// fcsSmoothAlpha is the low-pass constant applied to incoming
	// commands.
	fcsSmoothAlpha = 0.35
	// fcsBankDamp is the roll-rate damping gain (per degree of bank).
	fcsBankDamp = 0.01
	// fcsVSDamp is the pitch damping gain (per fpm of vertical speed
	// error from zero at neutral command).
	fcsVSDamp = 0.00002
)

// NewFCS returns a flight control system in its boot state (surfaces
// centered).
func NewFCS() *FCS { return &FCS{} }

// ID implements core.App.
func (f *FCS) ID() spec.AppID { return AppFCS }

// Surfaces returns the last commanded surfaces.
func (f *FCS) Surfaces() Surfaces { return f.surfaces }

// drainBus updates the latest command and sensor sample from the inbox.
func (f *FCS) drainBus(env *core.FrameEnv) error {
	if env.Bus == nil {
		return nil
	}
	for _, msg := range env.Bus.Receive() {
		switch msg.Topic {
		case TopicAPCmd:
			if err := json.Unmarshal(msg.Payload, &f.cmd); err != nil {
				return fmt.Errorf("avionics: fcs decoding command: %w", err)
			}
		case TopicSensors:
			if err := json.Unmarshal(msg.Payload, &f.sensors); err != nil {
				return fmt.Errorf("avionics: fcs decoding sensors: %w", err)
			}
		}
	}
	return nil
}

// Step implements core.App: compute and publish one surface command.
func (f *FCS) Step(env *core.FrameEnv) error {
	f.halted = false
	if err := f.drainBus(env); err != nil {
		return err
	}

	in := Surfaces{Elevator: clamp(f.cmd.Pitch, -1, 1), Aileron: clamp(f.cmd.Roll, -1, 1)}
	if !f.cmd.Engaged {
		in = Surfaces{}
	}

	var out Surfaces
	switch env.Spec {
	case SpecFCSFull:
		// Stability augmentation: low-pass the command and damp
		// aircraft rates.
		f.smoothed.Elevator += (in.Elevator - f.smoothed.Elevator) * fcsSmoothAlpha
		f.smoothed.Aileron += (in.Aileron - f.smoothed.Aileron) * fcsSmoothAlpha
		out = Surfaces{
			Elevator: clamp(f.smoothed.Elevator-f.sensors.VSFpm*fcsVSDamp*(1-math.Abs(in.Elevator)), -1, 1),
			Aileron:  clamp(f.smoothed.Aileron-f.sensors.BankDeg*fcsBankDamp*(1-math.Abs(in.Aileron)), -1, 1),
		}
	case SpecFCSDirect:
		out = in
	default:
		return fmt.Errorf("avionics: fcs has no specification %q", env.Spec)
	}

	f.surfaces = out
	if err := f.publish(env, out); err != nil {
		return err
	}
	return env.Store.PutJSON("surfaces", out)
}

func (f *FCS) publish(env *core.FrameEnv, s Surfaces) error {
	if env.Bus == nil {
		return nil
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("avionics: fcs encoding surfaces: %w", err)
	}
	if err := env.Bus.Publish(TopicSurfaces, payload); err != nil {
		return fmt.Errorf("avionics: fcs publishing surfaces: %w", err)
	}
	return nil
}

// Halt implements core.App: the FCS's postcondition is merely to cease
// operation (section 7.1).
func (f *FCS) Halt(env *core.FrameEnv) (bool, error) {
	f.halted = true
	return true, nil
}

// Prepare implements core.App: reset the augmentation filters for the
// target specification.
func (f *FCS) Prepare(env *core.FrameEnv, target spec.SpecID) (bool, error) {
	f.smoothed = Surfaces{}
	return true, nil
}

// Init implements core.App: establish the precondition — control surfaces
// centered — by commanding neutral surfaces.
func (f *FCS) Init(env *core.FrameEnv, target spec.SpecID) (bool, error) {
	f.surfaces = Surfaces{}
	f.smoothed = Surfaces{}
	f.cmd = APCommand{}
	if err := f.publish(env, Surfaces{}); err != nil {
		return false, err
	}
	if err := env.Store.PutJSON("surfaces", Surfaces{}); err != nil {
		return false, err
	}
	return true, nil
}

// Postcondition implements core.App.
func (f *FCS) Postcondition() bool { return f.halted }

// Precondition implements core.App: the control surfaces are centered.
func (f *FCS) Precondition(spec.SpecID) bool {
	return f.surfaces.Centered(surfaceCenterEps)
}
