package avionics

import (
	"fmt"
	"sync"

	"repro/internal/envmon"
	"repro/internal/frame"
	"repro/internal/spec"
)

// Environment factors and states of the electrical system model.
const (
	// FactorAlt1 and FactorAlt2 are the two alternators' health factors.
	FactorAlt1 envmon.Factor = "alt1"
	FactorAlt2 envmon.Factor = "alt2"
	// FactorBattery carries the battery's charge band: "ok" or "low".
	FactorBattery envmon.Factor = "battery"

	// AltOK and AltFailed are the alternator factor values.
	AltOK     = "ok"
	AltFailed = "failed"
)

// Power environment states (the discrete states the choice table is defined
// over).
const (
	// EnvPowerFull: both alternators operating; full platform power.
	EnvPowerFull spec.EnvState = "power-full"
	// EnvPowerReduced: one alternator lost; below the full-operation
	// threshold.
	EnvPowerReduced spec.EnvState = "power-reduced"
	// EnvPowerBattery: both alternators lost; battery is the only source.
	EnvPowerBattery spec.EnvState = "power-battery"
)

// Classifier abstracts the electrical factors into the power environment
// state, exactly as section 7 describes: loss of one alternator reduces
// available power below the full-operation threshold; loss of both leaves
// the battery as the only source.
func Classifier(f map[envmon.Factor]string) spec.EnvState {
	ok := 0
	for _, alt := range []envmon.Factor{FactorAlt1, FactorAlt2} {
		if f[alt] == AltOK {
			ok++
		}
	}
	switch ok {
	case 2:
		return EnvPowerFull
	case 1:
		return EnvPowerReduced
	default:
		return EnvPowerBattery
	}
}

// Electrical models the electrical power generation system: two alternators
// and a battery. One alternator provides primary vehicle power; the second
// is a spare that normally charges the battery, the emergency source. The
// electrical system "operates independently of the reconfigurable system; it
// merely provides the system details of its state" — here by maintaining
// environment factors from a commit hook, once per frame.
type Electrical struct {
	env *envmon.Environment

	mu       sync.Mutex
	chargePC float64 // battery charge, percent
}

// Battery model constants.
const (
	// batteryDrainPCPerS is the discharge rate on battery power.
	batteryDrainPCPerS = 0.5
	// batteryChargePCPerS is the recharge rate with an alternator
	// available.
	batteryChargePCPerS = 0.2
	// batteryLowPC is the threshold below which the battery reports low.
	batteryLowPC = 25.0
)

// NewElectrical returns a fully charged electrical system publishing into
// env. Both alternator factors must already exist in the environment (they
// are failure-injection inputs, not outputs of this model).
func NewElectrical(env *envmon.Environment) *Electrical {
	return &Electrical{env: env, chargePC: 100}
}

// Charge returns the battery charge in percent.
func (e *Electrical) Charge() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.chargePC
}

// Hook advances the battery model one frame and refreshes the battery
// factor. Register it as a system commit hook so factor updates land
// deterministically between frames.
func (e *Electrical) Hook(ctx frame.Context) error {
	alt1, _ := e.env.Get(FactorAlt1)
	alt2, _ := e.env.Get(FactorAlt2)
	dt := ctx.Len.Seconds()

	e.mu.Lock()
	if alt1 != AltOK && alt2 != AltOK {
		e.chargePC -= batteryDrainPCPerS * dt
	} else {
		e.chargePC += batteryChargePCPerS * dt
	}
	e.chargePC = clamp(e.chargePC, 0, 100)
	band := "ok"
	if e.chargePC < batteryLowPC {
		band = "low"
	}
	e.mu.Unlock()

	e.env.Set(FactorBattery, band)
	return nil
}

// String describes the electrical state for logs.
func (e *Electrical) String() string {
	alt1, _ := e.env.Get(FactorAlt1)
	alt2, _ := e.env.Get(FactorAlt2)
	return fmt.Sprintf("electrical{alt1=%s alt2=%s battery=%.1f%%}", alt1, alt2, e.Charge())
}
