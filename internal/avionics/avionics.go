package avionics

import (
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
)

// AppPowerMonitor is the virtual application monitoring the electrical
// system (section 6.3's environment-monitor pattern).
const AppPowerMonitor spec.AppID = "power-monitor"

// Configuration identifiers: the three acceptable configurations of
// section 7.
const (
	// CfgFull: full power, autopilot and FCS at full service on separate
	// computers.
	CfgFull spec.ConfigID = "full-service"
	// CfgReduced: one alternator (or battery) only; both applications
	// share one computer, the autopilot provides altitude hold only and
	// the FCS provides direct control.
	CfgReduced spec.ConfigID = "reduced-service"
	// CfgMinimal: battery only; the remaining computer runs in low-power
	// mode, the autopilot is off and the FCS provides direct control.
	CfgMinimal spec.ConfigID = "minimal-service"
)

// Platform processor identifiers.
const (
	Proc1 spec.ProcID = "proc-1"
	Proc2 spec.ProcID = "proc-2"
)

// FrameLength is the real-time frame length of the avionics system: 20 ms
// (a 50 Hz control loop).
const FrameLength = 20 * time.Millisecond

// Spec returns the reconfiguration specification of the section 7 avionics
// system. The returned value is fresh on every call and safe to mutate for
// experiments.
func Spec() *spec.ReconfigSpec {
	return &spec.ReconfigSpec{
		Name: "uav-avionics",
		Apps: []spec.App{
			{
				ID:          AppAutopilot,
				Description: "autopilot: altitude/heading hold, climb, turn (full); altitude hold (reduced)",
				Specs: []spec.Specification{
					{
						ID:          SpecAPFull,
						Description: "altitude hold, heading hold, climb to altitude, turn to heading",
						Resources:   spec.Resources{CPU: 4, MemoryKB: 512, PowerMW: 400},
						HaltFrames:  1, PrepareFrames: 1, InitFrames: 1,
					},
					{
						ID:          SpecAPAltHold,
						Description: "altitude hold only",
						Resources:   spec.Resources{CPU: 1, MemoryKB: 128, PowerMW: 100},
						HaltFrames:  1, PrepareFrames: 1, InitFrames: 1,
					},
				},
			},
			{
				ID:          AppFCS,
				Description: "flight control system: augmented control (full); direct control (reduced)",
				Specs: []spec.Specification{
					{
						ID:          SpecFCSFull,
						Description: "command augmentation and stability facilities",
						Resources:   spec.Resources{CPU: 3, MemoryKB: 384, PowerMW: 300},
						HaltFrames:  1, PrepareFrames: 1, InitFrames: 1,
					},
					{
						ID:          SpecFCSDirect,
						Description: "direct control: commands applied without augmentation",
						Resources:   spec.Resources{CPU: 1, MemoryKB: 128, PowerMW: 100},
						HaltFrames:  1, PrepareFrames: 1, InitFrames: 1,
					},
				},
			},
			{
				ID:          AppPowerMonitor,
				Description: "electrical power generation monitoring (virtual)",
				Virtual:     true,
				Specs: []spec.Specification{
					{ID: "monitor", HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
				},
			},
		},
		Configs: []spec.Configuration{
			{
				ID:          CfgFull,
				Description: "full power; autopilot and FCS at full service on separate computers",
				Assignment: map[spec.AppID]spec.SpecID{
					AppAutopilot: SpecAPFull,
					AppFCS:       SpecFCSFull,
				},
				Placement: map[spec.AppID]spec.ProcID{
					AppAutopilot: Proc1,
					AppFCS:       Proc2,
				},
			},
			{
				ID:          CfgReduced,
				Description: "single alternator or battery; applications share one computer",
				Assignment: map[spec.AppID]spec.SpecID{
					AppAutopilot: SpecAPAltHold,
					AppFCS:       SpecFCSDirect,
				},
				Placement: map[spec.AppID]spec.ProcID{
					AppAutopilot: Proc1,
					AppFCS:       Proc1,
				},
			},
			{
				ID:          CfgMinimal,
				Description: "battery only; low-power computer, autopilot off, direct control",
				Safe:        true,
				Assignment: map[spec.AppID]spec.SpecID{
					AppAutopilot: spec.SpecOff,
					AppFCS:       SpecFCSDirect,
				},
				Placement: map[spec.AppID]spec.ProcID{
					AppFCS: Proc1,
				},
				LowPower: []spec.ProcID{Proc1},
			},
		},
		Transitions: []spec.Transition{
			{From: CfgFull, To: CfgReduced, MaxFrames: 10},
			{From: CfgFull, To: CfgMinimal, MaxFrames: 10},
			{From: CfgReduced, To: CfgMinimal, MaxFrames: 10},
			{From: CfgReduced, To: CfgFull, MaxFrames: 10},
			{From: CfgMinimal, To: CfgReduced, MaxFrames: 10},
		},
		Choice: spec.ChoiceTable{
			CfgFull: {
				EnvPowerFull:    CfgFull,
				EnvPowerReduced: CfgReduced,
				EnvPowerBattery: CfgMinimal,
			},
			CfgReduced: {
				EnvPowerFull:    CfgFull,
				EnvPowerReduced: CfgReduced,
				EnvPowerBattery: CfgMinimal,
			},
			CfgMinimal: {
				EnvPowerFull:    CfgReduced,
				EnvPowerReduced: CfgReduced,
				EnvPowerBattery: CfgMinimal,
			},
		},
		Envs:        []spec.EnvState{EnvPowerFull, EnvPowerReduced, EnvPowerBattery},
		StartConfig: CfgFull,
		StartEnv:    EnvPowerFull,
		Deps: []spec.Dependency{
			// The autopilot cannot resume until the FCS has completed
			// its reconfiguration — it cannot effect control without
			// the other application (section 7.1).
			{Independent: AppFCS, Dependent: AppAutopilot, Phase: spec.PhaseInit},
		},
		Platform: spec.Platform{Procs: []spec.Proc{
			{
				ID:               Proc1,
				Capacity:         spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000},
				LowPowerCapacity: spec.Resources{CPU: 2, MemoryKB: 256, PowerMW: 250},
			},
			{
				ID:               Proc2,
				Capacity:         spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000},
				LowPowerCapacity: spec.Resources{CPU: 2, MemoryKB: 256, PowerMW: 250},
			},
		}},
		FrameLen:    FrameLength,
		DwellFrames: 25, // 0.5 s of stable operation before the next reconfiguration
		Retarget:    spec.RetargetBuffer,
	}
}

// BusSchedule returns the TDMA schedule of the avionics bus.
func BusSchedule() bus.Schedule {
	return bus.Schedule{
		{Owner: bus.EndpointID(AppAutopilot), MaxMessages: 2},
		{Owner: bus.EndpointID(AppFCS), MaxMessages: 2},
		{Owner: "sensors", MaxMessages: 2},
	}
}

// ScenarioOptions configures NewScenario.
type ScenarioOptions struct {
	// Initial is the aircraft's initial state.
	Initial AircraftState
	// Targets are the autopilot's initial objectives; zero values default
	// to holding the initial altitude and heading.
	Targets Targets
	// Script drives alternator (and other factor) events.
	Script []envmon.Event
	// ProcEvents schedules processor failures and repairs.
	ProcEvents []core.ProcEvent
	// StandbyProc enables the replicated SCRAM on the given processor.
	StandbyProc spec.ProcID
	// DwellFrames overrides the specification's dwell guard when >= 0.
	DwellFrames int
	// TraceSeed salts the causal-trace identities (core.Options.TraceSeed).
	TraceSeed int64
	// Paced runs the scenario in soft real time (20 ms frames).
	Paced bool
}

// Scenario is a fully wired avionics system: the reconfigurable system plus
// the simulated world around it.
type Scenario struct {
	// Sys is the reconfigurable system.
	Sys *core.System
	// Dyn is the aircraft dynamics model.
	Dyn *Dynamics
	// Elec is the electrical system model.
	Elec *Electrical
	// AP and FCS are the application implementations.
	AP  *Autopilot
	FCS *FCS
}

// NewScenario wires the complete section 7 example with the published
// specification.
func NewScenario(opts ScenarioOptions) (*Scenario, error) {
	return NewScenarioWithSpec(Spec(), opts)
}

// NewScenarioWithSpec wires the section 7 example against a caller-supplied
// (possibly transformed) specification — for instance one produced by
// statics.Interpose. The specification must keep the avionics application
// and configuration identifiers.
func NewScenarioWithSpec(rs *spec.ReconfigSpec, opts ScenarioOptions) (*Scenario, error) {
	if opts.DwellFrames >= 0 {
		rs.DwellFrames = opts.DwellFrames
		if rs.DwellFrames == 0 {
			rs.DwellFrames = 1 // the transition graph has repair cycles
		}
	}
	if opts.Targets == (Targets{}) {
		opts.Targets = Targets{AltFt: opts.Initial.AltFt, HdgDeg: opts.Initial.HeadingDeg}
	}

	ap := NewAutopilot(opts.Targets)
	fcs := NewFCS()

	sys, err := core.NewSystem(core.Options{
		Spec: rs,
		Apps: map[spec.AppID]core.App{
			AppAutopilot: ap,
			AppFCS:       fcs,
		},
		Classifier: Classifier,
		InitialFactors: map[envmon.Factor]string{
			FactorAlt1:    AltOK,
			FactorAlt2:    AltOK,
			FactorBattery: "ok",
		},
		Script:      opts.Script,
		ProcEvents:  opts.ProcEvents,
		BusSchedule: BusSchedule(),
		StandbyProc: opts.StandbyProc,
		TraceSeed:   opts.TraceSeed,
		Paced:       opts.Paced,
	})
	if err != nil {
		return nil, fmt.Errorf("avionics: building system: %w", err)
	}

	dyn, err := NewDynamics(sys.Bus(), opts.Initial)
	if err != nil {
		sys.Close()
		return nil, err
	}
	sensors, err := NewSensorSuite(sys.Bus(), dyn)
	if err != nil {
		sys.Close()
		return nil, err
	}
	if err := sys.AddTask(sensors); err != nil {
		sys.Close()
		return nil, err
	}

	// Application subscriptions.
	apEP, err := sys.Bus().Endpoint(bus.EndpointID(AppAutopilot))
	if err != nil {
		sys.Close()
		return nil, err
	}
	apEP.Subscribe(TopicSensors)
	fcsEP, err := sys.Bus().Endpoint(bus.EndpointID(AppFCS))
	if err != nil {
		sys.Close()
		return nil, err
	}
	fcsEP.Subscribe(TopicSensors)
	fcsEP.Subscribe(TopicAPCmd)

	elec := NewElectrical(sys.Env())
	sys.AddCommitHook(dyn.Hook)
	sys.AddCommitHook(elec.Hook)

	return &Scenario{Sys: sys, Dyn: dyn, Elec: elec, AP: ap, FCS: fcs}, nil
}

// Close releases the scenario's resources.
func (s *Scenario) Close() { s.Sys.Close() }
