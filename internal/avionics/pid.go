package avionics

// pid is a discrete proportional-integral-derivative controller with output
// clamping and integrator anti-windup. Gains are per-second; Update scales
// by the frame time step.
type pid struct {
	kp, ki, kd float64
	outMin     float64
	outMax     float64

	integral  float64
	lastErr   float64
	havePrior bool
}

// newPID returns a controller with symmetric output clamp [-limit, limit].
func newPID(kp, ki, kd, limit float64) *pid {
	return &pid{kp: kp, ki: ki, kd: kd, outMin: -limit, outMax: limit}
}

// Update advances the controller by dt seconds for the given error and
// returns the clamped output.
func (p *pid) Update(err, dt float64) float64 {
	p.integral += err * dt
	var deriv float64
	if p.havePrior && dt > 0 {
		deriv = (err - p.lastErr) / dt
	}
	p.lastErr = err
	p.havePrior = true

	out := p.kp*err + p.ki*p.integral + p.kd*deriv
	// Anti-windup: when the output saturates, stop accumulating in the
	// saturating direction.
	if out > p.outMax {
		if p.ki != 0 {
			p.integral -= err * dt
		}
		return p.outMax
	}
	if out < p.outMin {
		if p.ki != 0 {
			p.integral -= err * dt
		}
		return p.outMin
	}
	return out
}

// Reset clears the controller's accumulated state.
func (p *pid) Reset() {
	p.integral = 0
	p.lastErr = 0
	p.havePrior = false
}

// State returns the integrator and last error for stable-storage
// checkpointing.
func (p *pid) State() (integral, lastErr float64) { return p.integral, p.lastErr }

// Restore reinstates checkpointed controller state.
func (p *pid) Restore(integral, lastErr float64) {
	p.integral = integral
	p.lastErr = lastErr
	p.havePrior = true
}

// clamp limits v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// wrapDeg180 wraps an angle difference into (-180, 180].
func wrapDeg180(d float64) float64 {
	for d > 180 {
		d -= 360
	}
	for d <= -180 {
		d += 360
	}
	return d
}

// wrapDeg360 wraps a heading into [0, 360).
func wrapDeg360(h float64) float64 {
	for h < 0 {
		h += 360
	}
	for h >= 360 {
		h -= 360
	}
	return h
}
