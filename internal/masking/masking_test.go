package masking

import (
	"testing"
	"testing/quick"
)

func TestEquipmentAnalysisPaperCase(t *testing.T) {
	// Full service needs 4 processors, basic safe service needs 2, and
	// up to 2 failures are anticipated: masking carries 6, the
	// reconfigurable design carries 4 — exactly the full-service count,
	// so routine operation has no excess equipment.
	r, err := EquipmentAnalysis(EquipmentParams{
		FullServiceProcs: 4,
		SafeServiceProcs: 2,
		MaxFailures:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaskingTotal != 6 || r.ReconfigTotal != 4 {
		t.Errorf("totals = %d/%d, want 6/4", r.MaskingTotal, r.ReconfigTotal)
	}
	if r.Saved != 2 {
		t.Errorf("saved = %d, want 2", r.Saved)
	}
	if r.MaskingExcess != 2 || r.ReconfigExcess != 0 {
		t.Errorf("excess = %d/%d, want 2/0", r.MaskingExcess, r.ReconfigExcess)
	}
}

func TestEquipmentAnalysisValidation(t *testing.T) {
	bad := []EquipmentParams{
		{FullServiceProcs: 0, SafeServiceProcs: 1},
		{FullServiceProcs: 1, SafeServiceProcs: 0},
		{FullServiceProcs: 1, SafeServiceProcs: 2},
		{FullServiceProcs: 2, SafeServiceProcs: 1, MaxFailures: -1},
	}
	for _, p := range bad {
		if _, err := EquipmentAnalysis(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

// TestEquipmentSavingProperty: the reconfigurable design never needs more
// components than masking, and the saving is exactly the full/safe service
// gap, independent of the failure budget.
func TestEquipmentSavingProperty(t *testing.T) {
	prop := func(full, gap, fail uint8) bool {
		fullProcs := int(full%8) + 1
		safeProcs := fullProcs - int(gap)%fullProcs
		r, err := EquipmentAnalysis(EquipmentParams{
			FullServiceProcs: fullProcs,
			SafeServiceProcs: safeProcs,
			MaxFailures:      int(fail % 16),
		})
		if err != nil {
			return false
		}
		return r.Saved == fullProcs-safeProcs && r.ReconfigTotal <= r.MaskingTotal
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEquipmentSweep(t *testing.T) {
	rows, err := EquipmentSweep(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for f, r := range rows {
		if r.Params.MaxFailures != f {
			t.Errorf("row %d has MaxFailures %d", f, r.Params.MaxFailures)
		}
		if r.Saved != 2 {
			t.Errorf("row %d saved = %d, want 2", f, r.Saved)
		}
	}
}

func TestMaskedFTAWorkAndRecovery(t *testing.T) {
	m, err := NewMaskedFTASystem(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 10; f++ {
		m.Tick()
	}
	if m.Work() != 10 {
		t.Fatalf("work = %d, want 10", m.Work())
	}

	// Failure loses the in-flight frame's progress but nothing committed.
	m.InjectFailure(10)
	if m.SparesLeft() != 1 {
		t.Errorf("spares = %d, want 1", m.SparesLeft())
	}
	if m.Work() != 10 {
		t.Errorf("work after failure = %d, want 10 (restored)", m.Work())
	}
	// Two recovery frames, then work resumes.
	m.Tick()
	m.Tick()
	st := m.Stats()
	if st.LostFrames != 2 || st.Recoveries != 1 {
		t.Errorf("stats = %+v", st)
	}
	m.Tick()
	if m.Work() != 11 {
		t.Errorf("work after recovery = %d, want 11", m.Work())
	}
}

func TestMaskedFTAExhaustion(t *testing.T) {
	m, err := NewMaskedFTASystem(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Tick()
	m.InjectFailure(1)
	m.Tick() // recovery
	m.Tick() // work on spare
	m.InjectFailure(3)
	if !m.Stats().Exhausted {
		t.Fatal("second failure with no spare did not exhaust the system")
	}
	before := m.Work()
	m.Tick()
	m.InjectFailure(5)
	if m.Work() != before {
		t.Error("exhausted system still made progress")
	}
	if m.Stats().Failures != 2 {
		t.Errorf("failures = %d, want 2 (post-exhaustion injects ignored)", m.Stats().Failures)
	}
}

func TestNewMaskedFTAValidation(t *testing.T) {
	if _, err := NewMaskedFTASystem(0, 1); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := NewMaskedFTASystem(1, 0); err == nil {
		t.Error("zero recovery frames accepted")
	}
}

func TestRunMaskedMission(t *testing.T) {
	st, err := RunMaskedMission(3, 1, 100, []int64{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failures != 2 || st.Exhausted {
		t.Fatalf("stats = %+v", st)
	}
	// 100 frames - 2 recovery frames = 98 units of work.
	if st.WorkDone != 98 {
		t.Errorf("work = %d, want 98", st.WorkDone)
	}
	// A mission with more failures than spares exhausts.
	st, err = RunMaskedMission(2, 1, 100, []int64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exhausted {
		t.Error("mission with failures > spares did not exhaust")
	}
}

// TestMaskedMissionWorkConservation: for any failure schedule that does not
// exhaust the spares, committed work equals mission frames minus recovery
// frames minus frames lost to in-flight discards.
func TestMaskedMissionWorkConservation(t *testing.T) {
	prop := func(seed uint8) bool {
		// Two failures at deterministic, distinct frames derived from
		// the seed; 4 processors tolerate them.
		f1 := int64(seed%40) + 1
		f2 := f1 + int64(seed%20) + 2
		const frames = 100
		st, err := RunMaskedMission(4, 1, frames, []int64{f1, f2})
		if err != nil || st.Exhausted {
			return false
		}
		return st.WorkDone == frames-st.LostFrames
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
