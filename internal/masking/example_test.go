package masking_test

import (
	"fmt"

	"repro/internal/masking"
)

// The section 5.1 comparison: full service needs 4 processors, the most
// basic safe service needs 2, and two failures are anticipated over the
// longest mission.
func ExampleEquipmentAnalysis() {
	r, err := masking.EquipmentAnalysis(masking.EquipmentParams{
		FullServiceProcs: 4,
		SafeServiceProcs: 2,
		MaxFailures:      2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("masking needs %d processors, reconfiguration needs %d (saves %d)\n",
		r.MaskingTotal, r.ReconfigTotal, r.Saved)
	fmt.Printf("routine-operation excess: masking %d, reconfiguration %d\n",
		r.MaskingExcess, r.ReconfigExcess)
	// Output:
	// masking needs 6 processors, reconfiguration needs 4 (saves 2)
	// routine-operation excess: masking 2, reconfiguration 0
}
