// Package masking implements the baseline the paper argues against
// extending: Schlichting and Schneider's original masking-only use of
// fail-stop processors, in which every anticipated failure is masked by
// restarting the interrupted fault-tolerant action on a spare processor and
// full service is always provided.
//
// Two artifacts live here. EquipmentAnalysis reproduces the section 5.1
// resource argument: a masking design needs (max anticipated failures +
// processors for full service) components, while a reconfigurable design
// needs (max anticipated failures + processors for the most basic safe
// service) — which can equal the full-service count, eliminating excess
// equipment in routine operation. MaskedFTASystem is an executable model of
// the masking baseline used by the comparison experiments: a fault-tolerant
// action stream over a pool of fail-stop processors with spare restart.
package masking

import (
	"errors"
	"fmt"

	"repro/internal/spec"
	"repro/internal/stable"
)

// EquipmentParams are the inputs to the section 5.1 analysis.
type EquipmentParams struct {
	// FullServiceProcs is the minimum number of processors needed to
	// provide full service.
	FullServiceProcs int
	// SafeServiceProcs is the minimum number of processors needed to
	// provide the most basic form of safe service.
	SafeServiceProcs int
	// MaxFailures is the maximum number of processor failures anticipated
	// during the longest planned mission.
	MaxFailures int
}

// Validate checks the parameters for sanity.
func (p EquipmentParams) Validate() error {
	switch {
	case p.FullServiceProcs < 1:
		return errors.New("masking: full-service processor count must be >= 1")
	case p.SafeServiceProcs < 1:
		return errors.New("masking: safe-service processor count must be >= 1")
	case p.SafeServiceProcs > p.FullServiceProcs:
		return errors.New("masking: safe service cannot need more processors than full service")
	case p.MaxFailures < 0:
		return errors.New("masking: anticipated failures must be >= 0")
	}
	return nil
}

// EquipmentResult is the section 5.1 comparison for one parameter set.
type EquipmentResult struct {
	Params EquipmentParams
	// MaskingTotal is the component count a masking design requires:
	// MaxFailures + FullServiceProcs.
	MaskingTotal int
	// ReconfigTotal is the component count a reconfigurable design
	// requires: MaxFailures + SafeServiceProcs.
	ReconfigTotal int
	// Saved is MaskingTotal - ReconfigTotal.
	Saved int
	// MaskingExcess is the routine-operation excess of the masking
	// design: processors carried beyond what full service needs.
	MaskingExcess int
	// ReconfigExcess is the routine-operation excess of the
	// reconfigurable design: max(0, ReconfigTotal - FullServiceProcs).
	// It is zero exactly when MaxFailures <= FullServiceProcs -
	// SafeServiceProcs — the paper's "no excess equipment" case.
	ReconfigExcess int
}

// EquipmentAnalysis evaluates the section 5.1 equipment requirement for one
// parameter set.
func EquipmentAnalysis(p EquipmentParams) (EquipmentResult, error) {
	if err := p.Validate(); err != nil {
		return EquipmentResult{}, err
	}
	r := EquipmentResult{
		Params:        p,
		MaskingTotal:  p.MaxFailures + p.FullServiceProcs,
		ReconfigTotal: p.MaxFailures + p.SafeServiceProcs,
	}
	r.Saved = r.MaskingTotal - r.ReconfigTotal
	r.MaskingExcess = r.MaskingTotal - p.FullServiceProcs
	if excess := r.ReconfigTotal - p.FullServiceProcs; excess > 0 {
		r.ReconfigExcess = excess
	}
	return r, nil
}

// EquipmentSweep evaluates the analysis across failure budgets 0..maxFail,
// producing the rows of the equipment experiment table.
func EquipmentSweep(fullProcs, safeProcs, maxFail int) ([]EquipmentResult, error) {
	out := make([]EquipmentResult, 0, maxFail+1)
	for f := 0; f <= maxFail; f++ {
		r, err := EquipmentAnalysis(EquipmentParams{
			FullServiceProcs: fullProcs,
			SafeServiceProcs: safeProcs,
			MaxFailures:      f,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MaskedFTASystem is the executable masking baseline: a stream of
// fault-tolerant actions over one logical task, executed on an active
// fail-stop processor with cold spares. On a failure, the interrupted
// action's recovery protocol restarts the task on the next spare from the
// failed processor's stable storage — the original fail-stop recovery, in
// which R completes the same function A would have.
type MaskedFTASystem struct {
	procs          []*proc
	active         int
	recoveryFrames int
	recoveryLeft   int
	stats          Stats
}

// proc is one processor of the baseline: the stable store stands in for the
// processor's stable storage, alive tracks fail-stop state.
type proc struct {
	id    spec.ProcID
	store *stable.Store
	alive bool
}

// Stats summarizes a masking-baseline run.
type Stats struct {
	// WorkDone is the number of completed work units (actions).
	WorkDone int64
	// Recoveries is the number of spare restarts performed.
	Recoveries int64
	// LostFrames counts frames in which no work completed because a
	// recovery was in progress.
	LostFrames int64
	// Failures is the number of processor failures injected.
	Failures int64
	// Exhausted reports that a failure found no spare: total system
	// failure, the outcome masking designs size MaxFailures to avoid.
	Exhausted bool
}

// NewMaskedFTASystem builds a baseline with n processors (1 active, n-1
// spares). recoveryFrames is the cost of one spare restart (polling the
// failed processor's stable storage and re-establishing the action's state);
// it must be at least 1.
func NewMaskedFTASystem(n, recoveryFrames int) (*MaskedFTASystem, error) {
	if n < 1 {
		return nil, errors.New("masking: need at least one processor")
	}
	if recoveryFrames < 1 {
		return nil, errors.New("masking: recovery must cost at least one frame")
	}
	m := &MaskedFTASystem{recoveryFrames: recoveryFrames}
	for i := 0; i < n; i++ {
		m.procs = append(m.procs, &proc{
			id:    spec.ProcID(fmt.Sprintf("m%d", i)),
			store: stable.NewStore(),
			alive: true,
		})
	}
	return m, nil
}

// Tick executes one frame: one unit of the action if healthy, one step of
// recovery otherwise. The work counter lives in stable storage and is
// committed every frame, so a failure loses at most the in-flight frame.
func (m *MaskedFTASystem) Tick() {
	if m.stats.Exhausted {
		return
	}
	if m.recoveryLeft > 0 {
		m.recoveryLeft--
		m.stats.LostFrames++
		if m.recoveryLeft == 0 {
			m.stats.Recoveries++
		}
		return
	}
	p := m.procs[m.active]
	//lint:allow stableerr the masking baseline tolerates a lost counter (reads as zero) by construction
	n, _ := p.store.GetInt64("work")
	p.store.PutInt64("work", n+1)
	p.store.Commit()
	m.stats.WorkDone = n + 1
}

// InjectFailure fails the active processor mid-frame (its staged writes are
// lost) and begins recovery on the next spare, restoring the action's state
// from the failed processor's stable storage.
func (m *MaskedFTASystem) InjectFailure(frameNum int64) {
	if m.stats.Exhausted {
		return
	}
	m.stats.Failures++
	failed := m.procs[m.active]
	failed.alive = false
	failed.store.Discard()

	next := -1
	for i, p := range m.procs {
		if p.alive {
			next = i
			break
		}
	}
	if next == -1 {
		m.stats.Exhausted = true
		return
	}
	// The spare polls the failed processor's stable storage — readable
	// after the failure — and restores the last committed action state.
	snapshot := failed.store.Snapshot()
	m.procs[next].store.Restore(snapshot)
	m.procs[next].store.Commit()
	m.active = next
	m.recoveryLeft = m.recoveryFrames
	_ = frameNum
}

// Stats returns the run summary.
func (m *MaskedFTASystem) Stats() Stats { return m.stats }

// SparesLeft returns the number of alive processors beyond the active one.
func (m *MaskedFTASystem) SparesLeft() int {
	n := 0
	for i, p := range m.procs {
		if p.alive && i != m.active {
			n++
		}
	}
	return n
}

// Work returns the committed work counter.
func (m *MaskedFTASystem) Work() int64 {
	if m.stats.Exhausted {
		return m.stats.WorkDone
	}
	//lint:allow stableerr the masking baseline tolerates a lost counter (reads as zero) by construction
	n, _ := m.procs[m.active].store.GetInt64("work")
	return n
}

// RunMaskedMission drives a masking baseline through a mission of `frames`
// frames with failures at the given frame numbers (sorted ascending).
func RunMaskedMission(nProcs, recoveryFrames int, frames int64, failures []int64) (Stats, error) {
	m, err := NewMaskedFTASystem(nProcs, recoveryFrames)
	if err != nil {
		return Stats{}, err
	}
	fi := 0
	for f := int64(0); f < frames; f++ {
		for fi < len(failures) && failures[fi] == f {
			m.InjectFailure(f)
			fi++
		}
		m.Tick()
	}
	return m.Stats(), nil
}
