package fta

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/trace"
)

// mkTrace builds the canonical test trace: 2 normal cycles, a 4-frame
// recovery window [2,5], then 2 normal cycles.
func mkTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{System: "fta-test", FrameLen: time.Millisecond}
	add := func(c int64, cfg spec.ConfigID, a, b trace.ReconfStatus) {
		t.Helper()
		err := tr.Append(trace.SysState{
			Cycle: c, Config: cfg, Env: "e",
			Apps: map[spec.AppID]trace.AppState{
				"a": {Status: a, Spec: "s1", PreOK: true},
				"b": {Status: b, Spec: "s2", PreOK: true},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add(0, "full", trace.StatusNormal, trace.StatusNormal)
	add(1, "full", trace.StatusNormal, trace.StatusNormal)
	add(2, "full", trace.StatusInterrupted, trace.StatusNormal)
	add(3, "full", trace.StatusHalted, trace.StatusHalted)
	add(4, "full", trace.StatusPreparing, trace.StatusPrepared)
	add(5, "degraded", trace.StatusNormal, trace.StatusNormal)
	add(6, "degraded", trace.StatusNormal, trace.StatusNormal)
	return tr
}

func TestDeriveStructure(t *testing.T) {
	sftas := Derive(mkTrace(t))
	if len(sftas) != 3 {
		t.Fatalf("SFTAs = %d, want 3 (action, recovery, action)", len(sftas))
	}

	action1 := sftas[0]
	if action1.Kind != KindAction || action1.StartC != 0 || action1.EndC != 1 {
		t.Errorf("first SFTA = %s", action1.String())
	}
	if action1.From != "full" || action1.To != "full" {
		t.Errorf("action config = %s -> %s", action1.From, action1.To)
	}

	rec := sftas[1]
	if rec.Kind != KindRecovery || rec.StartC != 2 || rec.EndC != 5 {
		t.Fatalf("recovery SFTA = %s", rec.String())
	}
	if rec.From != "full" || rec.To != "degraded" {
		t.Errorf("recovery config = %s -> %s", rec.From, rec.To)
	}
	if rec.Frames() != 4 {
		t.Errorf("recovery frames = %d", rec.Frames())
	}
	if len(rec.AFTAs) != 2 {
		t.Fatalf("recovery AFTAs = %d", len(rec.AFTAs))
	}
	// Sorted by app ID; app "a" was the interrupted one.
	a := rec.AFTAs[0]
	if a.App != "a" || !a.Interrupted {
		t.Errorf("AFTA[0] = %+v", a)
	}
	// a's phases: interrupted@2, halted@3, preparing@4, normal@5.
	if len(a.Phases) != 4 {
		t.Fatalf("a phases = %+v", a.Phases)
	}
	if a.Phases[0].Status != trace.StatusInterrupted || a.Phases[0].StartC != 2 {
		t.Errorf("a phase 0 = %+v", a.Phases[0])
	}
	if a.Phases[3].Status != trace.StatusNormal || a.Phases[3].StartC != 5 {
		t.Errorf("a phase 3 = %+v", a.Phases[3])
	}
	b := rec.AFTAs[1]
	if b.App != "b" || b.Interrupted {
		t.Errorf("AFTA[1] = %+v", b)
	}
	// b: normal@2, halted@3, prepared@4, normal@5.
	if len(b.Phases) != 4 || b.Phases[0].Status != trace.StatusNormal {
		t.Errorf("b phases = %+v", b.Phases)
	}

	action2 := sftas[2]
	if action2.Kind != KindAction || action2.StartC != 6 || action2.EndC != 6 {
		t.Errorf("final SFTA = %s", action2.String())
	}
}

func TestDeriveMergesContiguousSpans(t *testing.T) {
	tr := &trace.Trace{System: "merge", FrameLen: time.Millisecond}
	statuses := []trace.ReconfStatus{
		trace.StatusNormal,
		trace.StatusInterrupted,
		trace.StatusHalting, trace.StatusHalting, trace.StatusHalting,
		trace.StatusNormal,
	}
	for c, st := range statuses {
		err := tr.Append(trace.SysState{
			Cycle: int64(c), Config: "full", Env: "e",
			Apps: map[spec.AppID]trace.AppState{"a": {Status: st, Spec: "s", PreOK: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sftas := Derive(tr)
	if len(sftas) != 2 {
		t.Fatalf("SFTAs = %d", len(sftas))
	}
	rec := sftas[1]
	a := rec.AFTAs[0]
	// interrupted@1, halting@[2,4], normal@5 — the three halting cycles
	// merge into one span.
	if len(a.Phases) != 3 {
		t.Fatalf("phases = %+v", a.Phases)
	}
	if a.Phases[1].Status != trace.StatusHalting || a.Phases[1].StartC != 2 || a.Phases[1].EndC != 4 {
		t.Errorf("halting span = %+v", a.Phases[1])
	}
}

func TestDeriveOpenWindow(t *testing.T) {
	tr := &trace.Trace{System: "open", FrameLen: time.Millisecond}
	statuses := []trace.ReconfStatus{trace.StatusNormal, trace.StatusInterrupted, trace.StatusHalting}
	for c, st := range statuses {
		err := tr.Append(trace.SysState{
			Cycle: int64(c), Config: "full", Env: "e",
			Apps: map[spec.AppID]trace.AppState{"a": {Status: st, Spec: "s", PreOK: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sftas := Derive(tr)
	if len(sftas) != 2 {
		t.Fatalf("SFTAs = %d", len(sftas))
	}
	open := sftas[1]
	if open.Kind != KindRecovery || open.EndC != 2 {
		t.Errorf("open recovery = %s", open.String())
	}
}

func TestDeriveEmpty(t *testing.T) {
	if sftas := Derive(&trace.Trace{}); sftas != nil {
		t.Errorf("Derive(empty) = %v", sftas)
	}
}

func TestSummarize(t *testing.T) {
	sftas := Derive(mkTrace(t))
	sum := Summarize(sftas)
	if sum.Actions != 2 || sum.Recoveries != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.ActionFrames != 3 || sum.RecoveryFrames != 4 || sum.LongestRecovery != 4 {
		t.Errorf("summary frames = %+v", sum)
	}
}

func TestRender(t *testing.T) {
	text := Render(Derive(mkTrace(t)))
	for _, want := range []string{"SFTA action", "SFTA recovery", "full -> degraded", "! a", "interrupted@2"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindAction.String() != "action" || KindRecovery.String() != "recovery" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind rendering wrong")
	}
}

// TestDeriveFromLiveSystem closes the loop: derive the SFTA structure from
// a real execution of the canonical system and check it is consistent with
// the trace's reconfigurations.
func TestDeriveFromLiveSystem(t *testing.T) {
	rs := spectest.ThreeConfig()
	apps := map[spec.AppID]core.App{}
	for _, decl := range rs.RealApps() {
		decl := decl
		apps[decl.ID] = core.NewBasicApp(&decl)
	}
	sys, err := core.NewSystem(core.Options{
		Spec: rs,
		Apps: apps,
		Classifier: func(f map[envmon.Factor]string) spec.EnvState {
			return spec.EnvState(f["power"])
		},
		InitialFactors: map[envmon.Factor]string{"power": string(spectest.EnvFull)},
		Script: []envmon.Event{
			{Frame: 10, Factor: "power", Value: string(spectest.EnvReduced)},
			{Frame: 40, Factor: "power", Value: string(spectest.EnvBattery)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Run(80); err != nil {
		t.Fatal(err)
	}

	sftas := Derive(sys.Trace())
	sum := Summarize(sftas)
	rcs := sys.Trace().Reconfigs()
	if sum.Recoveries != len(rcs) {
		t.Fatalf("recoveries = %d, trace reconfigurations = %d", sum.Recoveries, len(rcs))
	}
	// Every recovery SFTA matches a reconfiguration window exactly.
	ri := 0
	for i := range sftas {
		if sftas[i].Kind != KindRecovery {
			continue
		}
		r := rcs[ri]
		if sftas[i].StartC != r.StartC || sftas[i].EndC != r.EndC ||
			sftas[i].From != r.From || sftas[i].To != r.To {
			t.Errorf("recovery %d = %s, reconfiguration = %+v", ri, sftas[i].String(), r)
		}
		ri++
	}
	// Action and recovery frames partition the trace.
	if total := sum.ActionFrames + sum.RecoveryFrames; total != sys.Trace().Len() {
		t.Errorf("frames partition: %d + %d != %d", sum.ActionFrames, sum.RecoveryFrames, sys.Trace().Len())
	}
}
