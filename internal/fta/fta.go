// Package fta provides the fault-tolerant-action view of an execution
// (section 5.2 of Strunk, Knight and Aiello, DSN 2005).
//
// In Schlichting and Schneider's framework an FTA either completes its
// action A or, after a failure, completes a recovery R. The paper
// distinguishes application FTAs (AFTAs — a single unit of work for one
// application) from system FTAs (SFTAs — the AFTAs all applications execute
// over a common frame span), and generalizes R to system reconfiguration:
// an SFTA leaves the system either having carried out the function
// requested, or having put itself into a state where the next action can
// carry out some suitable but possibly different function.
//
// Derive reconstructs this structure from a recorded trace: maximal runs of
// normal operation become normal SFTAs (one action AFTA per application),
// and every reconfiguration window becomes a recovery SFTA whose AFTAs carry
// the per-application phase spans (interrupted/halt/prepare/initialize) the
// recovery protocol executed.
package fta

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
	"repro/internal/trace"
)

// Kind classifies an SFTA (and its AFTAs).
type Kind int

const (
	// KindAction is normal operation: every AFTA completed its action A.
	KindAction Kind = iota + 1
	// KindRecovery is a reconfiguration: the SFTA completed the
	// generalized recovery R, leaving the system operating under a
	// (possibly different) configuration.
	KindRecovery
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindAction:
		return "action"
	case KindRecovery:
		return "recovery"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// PhaseSpan is a contiguous run of one reconfiguration status within an
// AFTA.
type PhaseSpan struct {
	// Status is the recorded reconfiguration status.
	Status trace.ReconfStatus `json:"status"`
	// StartC and EndC delimit the span, inclusive.
	StartC int64 `json:"start_c"`
	EndC   int64 `json:"end_c"`
}

// AFTA is one application's fault-tolerant action over an SFTA's span.
type AFTA struct {
	// App is the application.
	App spec.AppID `json:"app"`
	// Kind says whether this AFTA was normal work or recovery.
	Kind Kind `json:"kind"`
	// Spec is the functional specification at the span's end (the target
	// specification for recoveries).
	Spec spec.SpecID `json:"spec"`
	// Interrupted reports whether this application was the interrupted
	// one (the failure carrier) of a recovery SFTA.
	Interrupted bool `json:"interrupted,omitempty"`
	// Phases are the status spans the application moved through.
	Phases []PhaseSpan `json:"phases"`
}

// SFTA is a system fault-tolerant action: the composition of every
// application's AFTA over a common frame span.
type SFTA struct {
	// Kind distinguishes normal operation from recovery.
	Kind Kind `json:"kind"`
	// StartC and EndC delimit the span, inclusive.
	StartC int64 `json:"start_c"`
	EndC   int64 `json:"end_c"`
	// From and To are the configurations at the span boundaries (equal
	// for action SFTAs).
	From spec.ConfigID `json:"from"`
	To   spec.ConfigID `json:"to"`
	// AFTAs holds one entry per application, sorted by application ID.
	AFTAs []AFTA `json:"aftas"`
}

// Frames returns the span length in frames.
func (s *SFTA) Frames() int64 { return s.EndC - s.StartC + 1 }

// String renders a one-line summary.
func (s *SFTA) String() string {
	if s.Kind == KindAction {
		return fmt.Sprintf("SFTA action [%d,%d] under %s (%d frames, %d apps)",
			s.StartC, s.EndC, s.From, s.Frames(), len(s.AFTAs))
	}
	return fmt.Sprintf("SFTA recovery [%d,%d] %s -> %s (%d frames, %d apps)",
		s.StartC, s.EndC, s.From, s.To, s.Frames(), len(s.AFTAs))
}

// Derive reconstructs the SFTA sequence from a trace. A trailing open
// reconfiguration window (the trace ends mid-recovery) is returned as a
// final recovery SFTA whose To is the tentative target.
func Derive(tr *trace.Trace) []SFTA {
	n := tr.Len()
	if n == 0 {
		return nil
	}
	var out []SFTA
	var c int64
	for c < n {
		st, _ := tr.At(c)
		start := c
		normal := allNormal(st)
		for c < n {
			cur, _ := tr.At(c)
			if allNormal(cur) != normal {
				break
			}
			c++
		}
		end := c - 1
		if !normal {
			// A recovery window per get_reconfigs ends at the first
			// all-normal cycle; include it when present.
			if c < n {
				end = c
				c++
			}
			out = append(out, buildSFTA(tr, KindRecovery, start, end))
		} else {
			// Do not emit an action SFTA for the single all-normal
			// cycle a recovery claimed as its end; starts only.
			out = append(out, buildSFTA(tr, KindAction, start, end))
		}
	}
	return out
}

func allNormal(st trace.SysState) bool {
	for _, a := range st.Apps {
		if !a.Status.Normal() {
			return false
		}
	}
	return true
}

func buildSFTA(tr *trace.Trace, kind Kind, start, end int64) SFTA {
	first, _ := tr.At(start)
	last, _ := tr.At(end)
	s := SFTA{
		Kind:   kind,
		StartC: start,
		EndC:   end,
		From:   first.Config,
		To:     last.Config,
	}
	ids := make([]spec.AppID, 0, len(first.Apps))
	for id := range first.Apps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := AFTA{App: id, Kind: kind}
		endState := last.Apps[id]
		a.Spec = endState.Spec
		for c := start; c <= end; c++ {
			st, _ := tr.At(c)
			app := st.Apps[id]
			if app.Status == trace.StatusInterrupted {
				a.Interrupted = true
			}
			if k := len(a.Phases); k > 0 && a.Phases[k-1].Status == app.Status {
				a.Phases[k-1].EndC = c
			} else {
				a.Phases = append(a.Phases, PhaseSpan{Status: app.Status, StartC: c, EndC: c})
			}
		}
		s.AFTAs = append(s.AFTAs, a)
	}
	return s
}

// Summary aggregates an SFTA sequence.
type Summary struct {
	// Actions and Recoveries count the SFTAs by kind.
	Actions    int `json:"actions"`
	Recoveries int `json:"recoveries"`
	// ActionFrames and RecoveryFrames sum the span lengths.
	ActionFrames   int64 `json:"action_frames"`
	RecoveryFrames int64 `json:"recovery_frames"`
	// LongestRecovery is the longest recovery span.
	LongestRecovery int64 `json:"longest_recovery"`
}

// Summarize computes aggregate statistics over an SFTA sequence.
func Summarize(sftas []SFTA) Summary {
	var sum Summary
	for i := range sftas {
		s := &sftas[i]
		switch s.Kind {
		case KindAction:
			sum.Actions++
			sum.ActionFrames += s.Frames()
		case KindRecovery:
			sum.Recoveries++
			sum.RecoveryFrames += s.Frames()
			if f := s.Frames(); f > sum.LongestRecovery {
				sum.LongestRecovery = f
			}
		}
	}
	return sum
}

// Render writes a human-readable report of the SFTA structure.
func Render(sftas []SFTA) string {
	var b strings.Builder
	for i := range sftas {
		s := &sftas[i]
		fmt.Fprintf(&b, "%s\n", s.String())
		if s.Kind != KindRecovery {
			continue
		}
		for _, a := range s.AFTAs {
			marker := " "
			if a.Interrupted {
				marker = "!"
			}
			fmt.Fprintf(&b, "  %s %-14s -> %-12s ", marker, a.App, a.Spec)
			for i, ph := range a.Phases {
				if i > 0 {
					b.WriteString(", ")
				}
				if ph.StartC == ph.EndC {
					fmt.Fprintf(&b, "%s@%d", ph.Status, ph.StartC)
				} else {
					fmt.Fprintf(&b, "%s@[%d,%d]", ph.Status, ph.StartC, ph.EndC)
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
