// Package cli carries the shared command-line conventions of the cmd
// tools. Every tool exposes the same canonical flag names where the
// concept applies — -json for structured output, -out for the report
// destination, -seed for the base seed, -frames for run length — and keeps
// any older spelling alive as a deprecated alias, so scripts written
// against one tool transfer to the others.
package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// SchemaVersion stamps every top-level JSON object WriteJSON emits — campaign
// reports, flightrec output, the fleet control plane's bodies. The
// compatibility rule (documented in cmd/README.md): adding fields keeps the
// version; renaming, removing or re-typing an existing field bumps it, and
// consumers reject versions newer than they know.
const SchemaVersion = 1

// Alias registers old as a deprecated alias for an already-registered
// canonical flag. The alias shares the canonical flag's value: setting
// either name sets both.
func Alias(fs *flag.FlagSet, canonical, old string) {
	f := fs.Lookup(canonical)
	if f == nil {
		panic("cli: alias for unregistered flag -" + canonical)
	}
	fs.Var(f.Value, old, "deprecated alias for -"+canonical)
}

// nopClose is the close function for the fallback writer.
func nopClose() error { return nil }

// Output resolves the canonical -out flag. An empty path (or "-") keeps
// the fallback writer — the command's stdout; anything else creates the
// file. The returned close function must be called when the report is
// written; it closes the file (and is a no-op for the fallback).
func Output(path string, fallback io.Writer) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return fallback, nopClose, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("creating -out %s: %w", path, err)
	}
	return f, f.Close, nil
}

// WriteJSON writes v as indented JSON with a trailing newline — the byte
// layout every tool's -json mode shares. Top-level objects are stamped with
// schema_version as their first key; arrays and scalars pass through
// unversioned (report-shaped bodies are objects by convention — the fleet
// API wraps its lists for exactly this reason).
func WriteJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = spliceSchemaVersion(data)
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// spliceSchemaVersion inserts the schema_version stamp as the first key of a
// top-level JSON object, preserving MarshalIndent's byte layout. A value
// that already carries a top-level schema_version key passes through
// untouched (the match is anchored to the two-space top-level indent, and a
// raw newline cannot occur inside a JSON string, so nested keys never
// collide).
func spliceSchemaVersion(data []byte) []byte {
	if len(data) == 0 || data[0] != '{' {
		return data
	}
	if bytes.Contains(data, []byte("\n  \"schema_version\":")) {
		return data
	}
	stamp := fmt.Sprintf("  \"schema_version\": %d", SchemaVersion)
	if bytes.Equal(data, []byte("{}")) {
		return []byte("{\n" + stamp + "\n}")
	}
	out := make([]byte, 0, len(data)+len(stamp)+3)
	out = append(out, "{\n"...)
	out = append(out, stamp...)
	out = append(out, ',')
	out = append(out, data[1:]...) // starts with "\n  \"first-key\"..."
	return out
}
