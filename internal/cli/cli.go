// Package cli carries the shared command-line conventions of the cmd
// tools. Every tool exposes the same canonical flag names where the
// concept applies — -json for structured output, -out for the report
// destination, -seed for the base seed, -frames for run length — and keeps
// any older spelling alive as a deprecated alias, so scripts written
// against one tool transfer to the others.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// Alias registers old as a deprecated alias for an already-registered
// canonical flag. The alias shares the canonical flag's value: setting
// either name sets both.
func Alias(fs *flag.FlagSet, canonical, old string) {
	f := fs.Lookup(canonical)
	if f == nil {
		panic("cli: alias for unregistered flag -" + canonical)
	}
	fs.Var(f.Value, old, "deprecated alias for -"+canonical)
}

// nopClose is the close function for the fallback writer.
func nopClose() error { return nil }

// Output resolves the canonical -out flag. An empty path (or "-") keeps
// the fallback writer — the command's stdout; anything else creates the
// file. The returned close function must be called when the report is
// written; it closes the file (and is a no-op for the fallback).
func Output(path string, fallback io.Writer) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return fallback, nopClose, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("creating -out %s: %w", path, err)
	}
	return f, f.Close, nil
}

// WriteJSON writes v as indented JSON with a trailing newline — the byte
// layout every tool's -json mode shares.
func WriteJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
