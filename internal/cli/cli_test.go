package cli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAliasSharesValue(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	n := fs.Int("runs", 5, "campaigns per arm")
	Alias(fs, "runs", "seeds")
	if err := fs.Parse([]string{"-seeds", "9"}); err != nil {
		t.Fatal(err)
	}
	if *n != 9 {
		t.Fatalf("alias did not set canonical flag: runs = %d", *n)
	}
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	fs.PrintDefaults()
	if !strings.Contains(usage.String(), "deprecated alias for -runs") {
		t.Errorf("alias usage missing deprecation note:\n%s", usage.String())
	}
}

func TestAliasUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unregistered canonical flag")
		}
	}()
	Alias(flag.NewFlagSet("t", flag.ContinueOnError), "nope", "old")
}

func TestOutputFallback(t *testing.T) {
	var buf bytes.Buffer
	for _, path := range []string{"", "-"} {
		w, close, err := Output(path, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if w != &buf {
			t.Fatalf("Output(%q) did not return fallback", path)
		}
		if err := close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	w, close, err := Output(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(w, map[string]int{"runs": 4}); err != nil {
		t.Fatal(err)
	}
	if err := close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "{\n  \"schema_version\": 1,\n  \"runs\": 4\n}\n"; string(data) != want {
		t.Errorf("file = %q, want %q", data, want)
	}
}

func TestWriteJSONSchemaVersion(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want string
	}{
		{"object gains the stamp as first key",
			map[string]int{"runs": 4},
			"{\n  \"schema_version\": 1,\n  \"runs\": 4\n}\n"},
		{"empty object is stamped",
			map[string]int{},
			"{\n  \"schema_version\": 1\n}\n"},
		{"array passes through unversioned",
			[]int{1, 2},
			"[\n  1,\n  2\n]\n"},
		{"scalar passes through unversioned",
			7,
			"7\n"},
		{"existing top-level stamp is not duplicated",
			map[string]int{"schema_version": 3},
			"{\n  \"schema_version\": 3\n}\n"},
		{"nested schema_version keys do not suppress the stamp",
			map[string]any{"inner": map[string]int{"schema_version": 2}},
			"{\n  \"schema_version\": 1,\n  \"inner\": {\n    \"schema_version\": 2\n  }\n}\n"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, tc.v); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if buf.String() != tc.want {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, buf.String(), tc.want)
		}
	}
}
