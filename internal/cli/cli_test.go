package cli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAliasSharesValue(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	n := fs.Int("runs", 5, "campaigns per arm")
	Alias(fs, "runs", "seeds")
	if err := fs.Parse([]string{"-seeds", "9"}); err != nil {
		t.Fatal(err)
	}
	if *n != 9 {
		t.Fatalf("alias did not set canonical flag: runs = %d", *n)
	}
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	fs.PrintDefaults()
	if !strings.Contains(usage.String(), "deprecated alias for -runs") {
		t.Errorf("alias usage missing deprecation note:\n%s", usage.String())
	}
}

func TestAliasUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unregistered canonical flag")
		}
	}()
	Alias(flag.NewFlagSet("t", flag.ContinueOnError), "nope", "old")
}

func TestOutputFallback(t *testing.T) {
	var buf bytes.Buffer
	for _, path := range []string{"", "-"} {
		w, close, err := Output(path, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if w != &buf {
			t.Fatalf("Output(%q) did not return fallback", path)
		}
		if err := close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	w, close, err := Output(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(w, map[string]int{"runs": 4}); err != nil {
		t.Fatal(err)
	}
	if err := close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "{\n  \"runs\": 4\n}\n"; string(data) != want {
		t.Errorf("file = %q, want %q", data, want)
	}
}
