package bus

import (
	"fmt"

	"repro/internal/frame"
)

// SensorFunc samples a sensor, returning the encoded reading for the frame.
type SensorFunc func(frameNum int64) []byte

// ActuatorFunc applies a command received from the bus.
type ActuatorFunc func(frameNum int64, payload []byte)

// SensorUnit is an interface unit (section 3) connecting a sensor to the
// data bus: each frame it samples the sensor and publishes the reading on
// its topic. It implements frame.Task.
type SensorUnit struct {
	ep     *Endpoint
	topic  string
	sample SensorFunc
}

// NewSensorUnit attaches a sensor interface unit to the bus.
func NewSensorUnit(b *Bus, id EndpointID, topic string, sample SensorFunc) (*SensorUnit, error) {
	ep, err := b.Attach(id)
	if err != nil {
		return nil, err
	}
	return &SensorUnit{ep: ep, topic: topic, sample: sample}, nil
}

// TaskID implements frame.Task.
func (u *SensorUnit) TaskID() string { return "sensor:" + string(u.ep.ID()) }

// Tick samples the sensor and publishes the reading.
func (u *SensorUnit) Tick(ctx frame.Context) error {
	reading := u.sample(ctx.Frame)
	if err := u.ep.Publish(u.topic, reading); err != nil {
		return fmt.Errorf("sensor %q: %w", u.ep.ID(), err)
	}
	return nil
}

// ActuatorUnit is an interface unit connecting an actuator to the data bus:
// each frame it drains its inbox and applies every command received. It
// implements frame.Task.
type ActuatorUnit struct {
	ep    *Endpoint
	apply ActuatorFunc
}

// NewActuatorUnit attaches an actuator interface unit to the bus,
// subscribing it to the given command topic.
func NewActuatorUnit(b *Bus, id EndpointID, topic string, apply ActuatorFunc) (*ActuatorUnit, error) {
	ep, err := b.Attach(id)
	if err != nil {
		return nil, err
	}
	ep.Subscribe(topic)
	return &ActuatorUnit{ep: ep, apply: apply}, nil
}

// TaskID implements frame.Task.
func (u *ActuatorUnit) TaskID() string { return "actuator:" + string(u.ep.ID()) }

// Tick applies every command delivered at earlier frame boundaries.
func (u *ActuatorUnit) Tick(ctx frame.Context) error {
	for _, msg := range u.ep.Receive() {
		u.apply(ctx.Frame, msg.Payload)
	}
	return nil
}
