// Package bus simulates the ultra-dependable, real-time data bus the
// reconfiguration architecture assumes (section 3 of Strunk, Knight and
// Aiello, DSN 2005): a time-triggered bus in the style of the Time-Triggered
// Architecture, carrying application traffic and sensor/actuator traffic in
// statically scheduled TDMA slots.
//
// The simulation is frame-synchronous: endpoints stage messages during a
// frame (bounded by their slot's capacity), and the bus delivers all staged
// messages to subscriber inboxes at the frame boundary, in slot order. The
// paper assumes the bus itself is ultra-dependable, so no loss or
// reordering occurs by default; a fault hook exists for robustness
// experiments beyond the paper's assumptions.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// Errors reported by this package.
var (
	// ErrUnknownEndpoint reports an operation naming an unattached
	// endpoint.
	ErrUnknownEndpoint = errors.New("bus: unknown endpoint")
	// ErrDuplicateEndpoint reports an Attach with an identifier already
	// in use.
	ErrDuplicateEndpoint = errors.New("bus: duplicate endpoint")
	// ErrNoSlot reports a Publish from an endpoint that owns no TDMA
	// slot.
	ErrNoSlot = errors.New("bus: endpoint owns no slot")
	// ErrSlotOverflow reports a Publish exceeding the endpoint's slot
	// capacity for the current frame.
	ErrSlotOverflow = errors.New("bus: slot capacity exceeded")
)

// EndpointID identifies a bus endpoint (an application, the SCRAM, or a
// sensor/actuator interface unit).
type EndpointID string

// Message is one bus transfer.
type Message struct {
	// From is the publishing endpoint.
	From EndpointID
	// Topic is the publish/subscribe channel.
	Topic string
	// Payload is the message body.
	Payload []byte
	// SentFrame is the frame in which the message was staged; it is
	// delivered at that frame's boundary and readable in the next frame,
	// mirroring the one-frame latency of a TDMA round.
	SentFrame int64
}

// Slot is one entry of the static TDMA schedule: which endpoint owns it and
// how many messages the endpoint may stage per frame.
type Slot struct {
	Owner EndpointID
	// MaxMessages bounds the owner's traffic per frame. Zero means an
	// unconstrained simulation slot.
	MaxMessages int
}

// Schedule is the static TDMA schedule for one frame. Delivery order
// follows schedule order, making the simulation deterministic.
type Schedule []Slot

// Bus is a simulated time-triggered bus. Create one with New. A Bus is safe
// for concurrent use by its endpoints within a frame.
type Bus struct {
	mu        sync.Mutex
	schedule  Schedule
	slotOf    map[EndpointID]Slot
	endpoints map[EndpointID]*Endpoint
	order     []EndpointID
	fault     *FaultPlan
	delayed   []Message
	// Delivery and fault accounting lives in a telemetry registry (a
	// private one until Instrument attaches the system's); per-topic
	// fault counters are resolved lazily as topics appear.
	reg                *telemetry.Registry
	tel                telemetry.Sink
	delivered, dropped *telemetry.Counter
	topicFaults        map[string]*topicFaultCounters
}

// topicFaultCounters are one topic's injected-fault counters.
type topicFaultCounters struct {
	drop, duplicate, delay *telemetry.Counter
}

// New returns a bus with the given static schedule. Multiple slots per owner
// are allowed; their capacities add.
func New(schedule Schedule) *Bus {
	slotOf := make(map[EndpointID]Slot)
	for _, s := range schedule {
		cur, ok := slotOf[s.Owner]
		if !ok {
			slotOf[s.Owner] = s
			continue
		}
		cur.MaxMessages += s.MaxMessages
		slotOf[s.Owner] = cur
	}
	b := &Bus{
		schedule:  schedule,
		slotOf:    slotOf,
		endpoints: make(map[EndpointID]*Endpoint),
		tel:       telemetry.NopSink{},
	}
	b.bindMetrics(telemetry.NewRegistry())
	return b
}

// bindMetrics (re)resolves the bus counters in reg. Callers hold b.mu or
// own the bus exclusively.
func (b *Bus) bindMetrics(reg *telemetry.Registry) {
	prevDelivered, prevDropped := int64(0), int64(0)
	if b.delivered != nil {
		prevDelivered, prevDropped = b.delivered.Value(), b.dropped.Value()
	}
	b.reg = reg
	b.delivered = reg.Counter("bus/delivered")
	b.dropped = reg.Counter("bus/dropped")
	b.delivered.Add(prevDelivered)
	b.dropped.Add(prevDropped)
	b.topicFaults = make(map[string]*topicFaultCounters)
}

// Instrument re-points the bus counters at the shared registry (carrying
// over counts accumulated so far) and attaches the flight recorder, which
// subsequently receives one event per injected fault action.
func (b *Bus) Instrument(reg *telemetry.Registry, rec *telemetry.Recorder) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bindMetrics(reg)
	b.tel = telemetry.OrNop(rec)
}

// topicFault returns the per-topic fault counters, resolving them on first
// use. Callers hold b.mu.
func (b *Bus) topicFault(topic string) *topicFaultCounters {
	tc, ok := b.topicFaults[topic]
	if !ok {
		tc = &topicFaultCounters{
			drop:      b.reg.Counter("bus/fault/" + topic + "/drop"),
			duplicate: b.reg.Counter("bus/fault/" + topic + "/duplicate"),
			delay:     b.reg.Counter("bus/fault/" + topic + "/delay"),
		}
		b.topicFaults[topic] = tc
	}
	return tc
}

// recordFault mirrors one injected fault action into the flight recorder.
// Callers hold b.mu.
func (b *Bus) recordFault(action string, msg Message, frameNum int64) {
	if !b.tel.Enabled() {
		return
	}
	b.tel.Record(telemetry.Event{
		Frame:  frameNum,
		Kind:   telemetry.KindBusFault,
		Phase:  action,
		Host:   string(msg.From),
		Detail: "topic " + msg.Topic,
	})
}

// Attach creates and registers an endpoint.
func (b *Bus) Attach(id EndpointID) (*Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.endpoints[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateEndpoint, id)
	}
	ep := &Endpoint{id: id, bus: b, topics: make(map[string]bool)}
	b.endpoints[id] = ep
	b.order = append(b.order, id)
	sort.Slice(b.order, func(i, j int) bool { return b.order[i] < b.order[j] })
	return ep, nil
}

// Detach removes an endpoint (for example when its hosting processor is
// powered off permanently). Pending inbox contents are dropped.
func (b *Bus) Detach(id EndpointID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.endpoints[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, id)
	}
	delete(b.endpoints, id)
	for i, e := range b.order {
		if e == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	return nil
}

// Endpoint returns a previously attached endpoint.
func (b *Bus) Endpoint(id EndpointID) (*Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ep, ok := b.endpoints[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEndpoint, id)
	}
	return ep, nil
}

// SetFaultPlan installs a seeded fault plan consulted once per staged
// message at delivery time. The paper assumes an ultra-dependable bus, so a
// plan exists only for experiments beyond the paper's fault model. Passing
// nil removes the plan.
func (b *Bus) SetFaultPlan(plan *FaultPlan) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fault = plan
}

// SetFaultHook installs a hook consulted once per staged message at delivery
// time; returning true drops the message. Passing nil removes the hook.
//
// Deprecated: SetFaultHook only models message loss. Use SetFaultPlan, which
// adds seeded drop/duplicate/delay rates with per-topic overrides.
func (b *Bus) SetFaultHook(hook func(Message) bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if hook == nil {
		b.fault = nil
		return
	}
	plan := NewFaultPlan(0)
	plan.hook = hook
	b.fault = plan
}

// Stats returns the counts of delivered and dropped messages, read from the
// telemetry registry backing the bus.
func (b *Bus) Stats() (delivered, dropped int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delivered.Value(), b.dropped.Value()
}

// DeliverFrame moves every message staged during the given frame into the
// inboxes of subscribing endpoints. Delivery follows TDMA slot order, then
// staging order within an endpoint, so results are deterministic. The frame
// runtime calls DeliverFrame from a frame-end hook.
func (b *Bus) DeliverFrame(frameNum int64) {
	b.mu.Lock()
	defer b.mu.Unlock()

	// Messages delayed at the previous frame boundary go out first, before
	// this frame's traffic, restamped with the frame that finally carried
	// them. A message is delayed at most once: delayed traffic is not run
	// through the fault plan again.
	carried := b.delayed
	b.delayed = nil
	for _, msg := range carried {
		msg.SentFrame = frameNum
		b.broadcast(msg)
	}

	// Collect sending endpoints in slot order, without duplicates.
	var senders []*Endpoint
	seen := make(map[EndpointID]bool)
	for _, slot := range b.schedule {
		if seen[slot.Owner] {
			continue
		}
		seen[slot.Owner] = true
		if ep, ok := b.endpoints[slot.Owner]; ok {
			senders = append(senders, ep)
		}
	}
	// Endpoints without slots may still have staged nothing; include any
	// stragglers (endpoints attached but scheduled under a wildcard
	// simulation setup) in ID order for determinism.
	for _, id := range b.order {
		if !seen[id] {
			senders = append(senders, b.endpoints[id])
		}
	}

	for _, sender := range senders {
		staged := sender.takeStaged()
		for _, msg := range staged {
			msg.SentFrame = frameNum
			action := actDeliver
			if b.fault != nil {
				action = b.fault.decide(msg)
			}
			switch action {
			case actDrop:
				b.dropped.Inc()
				b.topicFault(msg.Topic).drop.Inc()
				b.recordFault("drop", msg, frameNum)
			case actDelay:
				b.delayed = append(b.delayed, msg)
				b.topicFault(msg.Topic).delay.Inc()
				b.recordFault("delay", msg, frameNum)
			case actDuplicate:
				b.broadcast(msg)
				b.broadcast(msg)
				b.topicFault(msg.Topic).duplicate.Inc()
				b.recordFault("duplicate", msg, frameNum)
			default:
				b.broadcast(msg)
			}
		}
	}
}

// broadcast delivers one message to every subscriber. Callers hold b.mu.
func (b *Bus) broadcast(msg Message) {
	for _, id := range b.order {
		rcpt := b.endpoints[id]
		if rcpt.subscribed(msg.Topic) {
			rcpt.deliver(msg)
			b.delivered.Inc()
		}
	}
}

// Endpoint is one attachment point on the bus.
type Endpoint struct {
	id  EndpointID
	bus *Bus

	mu     sync.Mutex
	topics map[string]bool
	staged []Message
	inbox  []Message
}

// ID returns the endpoint identifier.
func (e *Endpoint) ID() EndpointID { return e.id }

// Publish stages a message on topic for delivery at the frame boundary. It
// fails if the endpoint owns no TDMA slot or the slot's per-frame capacity
// is exhausted. The payload is copied.
func (e *Endpoint) Publish(topic string, payload []byte) error {
	slot, ok := e.bus.slotOf[e.id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSlot, e.id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if slot.MaxMessages > 0 && len(e.staged) >= slot.MaxMessages {
		return fmt.Errorf("%w: %q staged %d, slot capacity %d", ErrSlotOverflow, e.id, len(e.staged), slot.MaxMessages)
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	e.staged = append(e.staged, Message{From: e.id, Topic: topic, Payload: cp})
	return nil
}

// Subscribe adds a topic subscription. Subscribing twice is a no-op.
func (e *Endpoint) Subscribe(topic string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.topics[topic] = true
}

// Unsubscribe removes a topic subscription.
func (e *Endpoint) Unsubscribe(topic string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.topics, topic)
}

// Receive drains and returns the endpoint's inbox: every message delivered
// at earlier frame boundaries and not yet read.
func (e *Endpoint) Receive() []Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.inbox
	e.inbox = nil
	return out
}

func (e *Endpoint) takeStaged() []Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.staged
	e.staged = nil
	return out
}

func (e *Endpoint) subscribed(topic string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.topics[topic]
}

func (e *Endpoint) deliver(msg Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.inbox = append(e.inbox, msg)
}
