package bus

import (
	"math/rand"
	"sync"
)

// FaultRates are per-message fault probabilities applied at delivery time.
// The rates are mutually exclusive outcomes of a single draw, so their sum
// must not exceed 1; the remainder is the probability of clean delivery.
type FaultRates struct {
	// Drop is the probability the message is lost.
	Drop float64 `json:"drop"`
	// Duplicate is the probability the message is delivered twice in the
	// same frame (a retransmission artefact).
	Duplicate float64 `json:"duplicate"`
	// Delay is the probability the message slips one frame: it is withheld
	// and delivered at the next frame boundary instead.
	Delay float64 `json:"delay"`
}

// Zero reports whether the rates inject no faults.
func (r FaultRates) Zero() bool {
	return r.Drop == 0 && r.Duplicate == 0 && r.Delay == 0
}

// FaultStats counts the faults a FaultPlan injected.
type FaultStats struct {
	// Dropped counts messages lost (including those dropped by a legacy
	// boolean fault hook).
	Dropped int64 `json:"dropped"`
	// Duplicated counts messages delivered twice.
	Duplicated int64 `json:"duplicated"`
	// Delayed counts messages slipped by one frame.
	Delayed int64 `json:"delayed"`
}

// faultAction is the outcome of one delivery-time draw.
type faultAction int

const (
	actDeliver faultAction = iota
	actDrop
	actDuplicate
	actDelay
)

// FaultPlan is a seeded, per-topic message fault injector for the bus. The
// paper assumes an ultra-dependable bus, so a plan exists only for robustness
// experiments beyond the paper's fault model: equal seeds and equal traffic
// give equal fault sequences, making campaign runs reproducible.
type FaultPlan struct {
	mu       sync.Mutex
	rng      *rand.Rand
	def      FaultRates
	perTopic map[string]FaultRates
	hook     func(Message) bool // legacy boolean hook; true means drop
	stats    FaultStats
}

// NewFaultPlan returns an empty plan (no faults) with a seeded generator.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		rng:      rand.New(rand.NewSource(seed)),
		perTopic: make(map[string]FaultRates),
	}
}

// SetDefault installs the rates applied to topics without an explicit entry.
func (p *FaultPlan) SetDefault(r FaultRates) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.def = r
}

// SetTopic overrides the rates for one topic.
func (p *FaultPlan) SetTopic(topic string, r FaultRates) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.perTopic[topic] = r
}

// Stats returns the injected-fault counts so far.
func (p *FaultPlan) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// decide draws the fate of one message. A legacy hook, if present, is
// consulted first and can only drop.
func (p *FaultPlan) decide(msg Message) faultAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hook != nil && p.hook(msg) {
		p.stats.Dropped++
		return actDrop
	}
	rates, ok := p.perTopic[msg.Topic]
	if !ok {
		rates = p.def
	}
	if rates.Zero() {
		return actDeliver
	}
	u := p.rng.Float64()
	switch {
	case u < rates.Drop:
		p.stats.Dropped++
		return actDrop
	case u < rates.Drop+rates.Duplicate:
		p.stats.Duplicated++
		return actDuplicate
	case u < rates.Drop+rates.Duplicate+rates.Delay:
		p.stats.Delayed++
		return actDelay
	default:
		return actDeliver
	}
}
