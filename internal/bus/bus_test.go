package bus

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/frame"
)

func twoEndpointBus(t *testing.T) (*Bus, *Endpoint, *Endpoint) {
	t.Helper()
	b := New(Schedule{
		{Owner: "a", MaxMessages: 4},
		{Owner: "b", MaxMessages: 4},
	})
	a, err := b.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	return b, a, bb
}

func TestPublishDeliverReceive(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	bb.Subscribe("telemetry")

	if err := a.Publish("telemetry", []byte("alt=1000")); err != nil {
		t.Fatal(err)
	}
	// Not yet delivered: delivery happens at the frame boundary.
	if msgs := bb.Receive(); len(msgs) != 0 {
		t.Fatalf("received %d messages before delivery", len(msgs))
	}
	b.DeliverFrame(0)
	msgs := bb.Receive()
	if len(msgs) != 1 {
		t.Fatalf("received %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	if m.From != "a" || m.Topic != "telemetry" || string(m.Payload) != "alt=1000" || m.SentFrame != 0 {
		t.Errorf("message = %+v", m)
	}
	// Inbox drained.
	if msgs := bb.Receive(); len(msgs) != 0 {
		t.Errorf("inbox not drained: %d", len(msgs))
	}
	delivered, dropped := b.Stats()
	if delivered != 1 || dropped != 0 {
		t.Errorf("stats = %d, %d; want 1, 0", delivered, dropped)
	}
}

func TestNoSubscriberNoDelivery(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	if err := a.Publish("lonely", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(0)
	if msgs := bb.Receive(); len(msgs) != 0 {
		t.Errorf("unsubscribed endpoint received %d messages", len(msgs))
	}
}

func TestUnsubscribe(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	bb.Subscribe("t")
	bb.Unsubscribe("t")
	if err := a.Publish("t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(0)
	if msgs := bb.Receive(); len(msgs) != 0 {
		t.Errorf("unsubscribed endpoint received %d messages", len(msgs))
	}
}

func TestSelfDelivery(t *testing.T) {
	b, a, _ := twoEndpointBus(t)
	a.Subscribe("loop")
	if err := a.Publish("loop", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(0)
	if msgs := a.Receive(); len(msgs) != 1 {
		t.Errorf("self delivery got %d messages, want 1", len(msgs))
	}
}

func TestSlotCapacity(t *testing.T) {
	b := New(Schedule{{Owner: "a", MaxMessages: 2}})
	a, err := b.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := a.Publish("t", nil); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := a.Publish("t", nil); !errors.Is(err, ErrSlotOverflow) {
		t.Fatalf("overflow publish = %v, want ErrSlotOverflow", err)
	}
	// Capacity resets after delivery.
	b.DeliverFrame(0)
	if err := a.Publish("t", nil); err != nil {
		t.Fatalf("publish after delivery: %v", err)
	}
}

func TestMultipleSlotsAddCapacity(t *testing.T) {
	b := New(Schedule{
		{Owner: "a", MaxMessages: 1},
		{Owner: "a", MaxMessages: 1},
	})
	a, err := b.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := a.Publish("t", nil); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := a.Publish("t", nil); !errors.Is(err, ErrSlotOverflow) {
		t.Fatalf("third publish = %v, want ErrSlotOverflow", err)
	}
}

func TestPublishWithoutSlot(t *testing.T) {
	b := New(Schedule{{Owner: "a", MaxMessages: 1}})
	noSlot, err := b.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := noSlot.Publish("t", nil); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("slotless publish = %v, want ErrNoSlot", err)
	}
}

func TestAttachDetachErrors(t *testing.T) {
	b := New(Schedule{})
	if _, err := b.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Attach("a"); !errors.Is(err, ErrDuplicateEndpoint) {
		t.Errorf("duplicate attach = %v", err)
	}
	if _, err := b.Endpoint("a"); err != nil {
		t.Errorf("Endpoint(a) = %v", err)
	}
	if _, err := b.Endpoint("ghost"); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("Endpoint(ghost) = %v", err)
	}
	if err := b.Detach("a"); err != nil {
		t.Errorf("Detach(a) = %v", err)
	}
	if err := b.Detach("a"); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("double detach = %v", err)
	}
}

func TestDeterministicSlotOrderDelivery(t *testing.T) {
	// Schedule order, not attach order, determines delivery order.
	b := New(Schedule{
		{Owner: "second", MaxMessages: 1},
		{Owner: "first", MaxMessages: 1},
	})
	first, _ := b.Attach("first")
	second, _ := b.Attach("second")
	sink, err := b.Attach("sink")
	if err != nil {
		t.Fatal(err)
	}
	sink.Subscribe("t")

	if err := first.Publish("t", []byte("from-first")); err != nil {
		t.Fatal(err)
	}
	if err := second.Publish("t", []byte("from-second")); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(0)
	msgs := sink.Receive()
	if len(msgs) != 2 {
		t.Fatalf("got %d messages, want 2", len(msgs))
	}
	if string(msgs[0].Payload) != "from-second" || string(msgs[1].Payload) != "from-first" {
		t.Errorf("delivery order = [%s, %s], want slot order [from-second, from-first]",
			msgs[0].Payload, msgs[1].Payload)
	}
}

func TestPayloadCopied(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	bb.Subscribe("t")
	payload := []byte("orig")
	if err := a.Publish("t", payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X'
	b.DeliverFrame(0)
	msgs := bb.Receive()
	if string(msgs[0].Payload) != "orig" {
		t.Errorf("payload aliased: %q", msgs[0].Payload)
	}
}

// TestFaultHookDrops covers the deprecated boolean-hook wrapper, which now
// routes through a FaultPlan.
func TestFaultHookDrops(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	bb.Subscribe("t")
	b.SetFaultHook(func(m Message) bool { return m.Topic == "t" })
	if err := a.Publish("t", nil); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(0)
	if msgs := bb.Receive(); len(msgs) != 0 {
		t.Errorf("dropped message delivered")
	}
	_, dropped := b.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	b.SetFaultHook(nil)
	if err := a.Publish("t", nil); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(1)
	if msgs := bb.Receive(); len(msgs) != 1 {
		t.Errorf("message dropped after hook removed")
	}
}

func TestFaultPlanDropAll(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	bb.Subscribe("t")
	plan := NewFaultPlan(7)
	plan.SetDefault(FaultRates{Drop: 1})
	b.SetFaultPlan(plan)
	for i := 0; i < 5; i++ {
		if err := a.Publish("t", nil); err != nil {
			t.Fatal(err)
		}
		b.DeliverFrame(int64(i))
	}
	if msgs := bb.Receive(); len(msgs) != 0 {
		t.Errorf("dropped messages delivered: %d", len(msgs))
	}
	if st := plan.Stats(); st.Dropped != 5 {
		t.Errorf("plan dropped = %d, want 5", st.Dropped)
	}
	if _, dropped := b.Stats(); dropped != 5 {
		t.Errorf("bus dropped = %d, want 5", dropped)
	}
}

func TestFaultPlanDuplicateAll(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	bb.Subscribe("t")
	plan := NewFaultPlan(7)
	plan.SetDefault(FaultRates{Duplicate: 1})
	b.SetFaultPlan(plan)
	if err := a.Publish("t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(0)
	if msgs := bb.Receive(); len(msgs) != 2 {
		t.Fatalf("duplicated message delivered %d times, want 2", len(msgs))
	}
	if st := plan.Stats(); st.Duplicated != 1 {
		t.Errorf("plan duplicated = %d, want 1", st.Duplicated)
	}
}

func TestFaultPlanDelaySlipsOneFrame(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	bb.Subscribe("t")
	plan := NewFaultPlan(7)
	plan.SetDefault(FaultRates{Delay: 1})
	b.SetFaultPlan(plan)
	if err := a.Publish("t", []byte("late")); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(3)
	if msgs := bb.Receive(); len(msgs) != 0 {
		t.Fatalf("delayed message delivered in its own frame")
	}
	// The delayed message goes out at the next boundary even with a
	// delay-everything plan: a message slips at most one frame.
	b.DeliverFrame(4)
	msgs := bb.Receive()
	if len(msgs) != 1 {
		t.Fatalf("delayed message delivered %d times at next frame, want 1", len(msgs))
	}
	if msgs[0].SentFrame != 4 {
		t.Errorf("delayed message SentFrame = %d, want restamped 4", msgs[0].SentFrame)
	}
	if st := plan.Stats(); st.Delayed != 1 {
		t.Errorf("plan delayed = %d, want 1", st.Delayed)
	}
}

func TestFaultPlanPerTopicOverride(t *testing.T) {
	b, a, bb := twoEndpointBus(t)
	bb.Subscribe("lossy")
	bb.Subscribe("clean")
	plan := NewFaultPlan(7)
	plan.SetDefault(FaultRates{Drop: 1})
	plan.SetTopic("clean", FaultRates{})
	b.SetFaultPlan(plan)
	if err := a.Publish("lossy", nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Publish("clean", nil); err != nil {
		t.Fatal(err)
	}
	b.DeliverFrame(0)
	msgs := bb.Receive()
	if len(msgs) != 1 || msgs[0].Topic != "clean" {
		t.Fatalf("messages = %v, want only the clean topic", msgs)
	}
}

// TestFaultPlanDeterministic checks that equal seeds and equal traffic give
// equal fault decisions — the reproducibility contract campaigns rely on.
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() FaultStats {
		b, a, bb := twoEndpointBus(t)
		bb.Subscribe("t")
		plan := NewFaultPlan(42)
		plan.SetDefault(FaultRates{Drop: 0.3, Duplicate: 0.2, Delay: 0.2})
		b.SetFaultPlan(plan)
		for i := 0; i < 50; i++ {
			if err := a.Publish("t", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			b.DeliverFrame(int64(i))
		}
		return plan.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Errorf("same seed diverged: %+v vs %+v", s1, s2)
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Delayed == 0 {
		t.Errorf("expected all fault kinds at these rates, got %+v", s1)
	}
}

func TestSensorActuatorUnits(t *testing.T) {
	b := New(Schedule{{Owner: "alt-sensor", MaxMessages: 1}})
	var applied []string
	sensor, err := NewSensorUnit(b, "alt-sensor", "sensors/alt", func(frameNum int64) []byte {
		return []byte(strconv.FormatInt(1000+frameNum, 10))
	})
	if err != nil {
		t.Fatal(err)
	}
	actuator, err := NewActuatorUnit(b, "elevator", "sensors/alt", func(frameNum int64, p []byte) {
		applied = append(applied, fmt.Sprintf("f%d:%s", frameNum, p))
	})
	if err != nil {
		t.Fatal(err)
	}

	sched, err := frame.NewScheduler(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	if err := sched.AddTask(sensor); err != nil {
		t.Fatal(err)
	}
	if err := sched.AddTask(actuator); err != nil {
		t.Fatal(err)
	}
	sched.AddCommitHook(func(ctx frame.Context) error {
		b.DeliverFrame(ctx.Frame)
		return nil
	})
	if err := sched.Run(3); err != nil {
		t.Fatal(err)
	}
	// Frame 0's sample arrives in frame 1, etc.
	want := []string{"f1:1000", "f2:1001"}
	if len(applied) != len(want) {
		t.Fatalf("applied = %v, want %v", applied, want)
	}
	for i := range want {
		if applied[i] != want[i] {
			t.Errorf("applied[%d] = %q, want %q", i, applied[i], want[i])
		}
	}
	if sensor.TaskID() != "sensor:alt-sensor" || actuator.TaskID() != "actuator:elevator" {
		t.Errorf("task IDs = %q, %q", sensor.TaskID(), actuator.TaskID())
	}
}

func TestSensorUnitSlotOverflowSurfaces(t *testing.T) {
	b := New(Schedule{}) // sensor owns no slot
	sensor, err := NewSensorUnit(b, "s", "t", func(int64) []byte { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := sensor.Tick(frame.Context{}); !errors.Is(err, ErrNoSlot) {
		t.Errorf("Tick = %v, want ErrNoSlot", err)
	}
}

func TestUnitAttachErrors(t *testing.T) {
	b := New(Schedule{})
	if _, err := b.Attach("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSensorUnit(b, "dup", "t", nil); !errors.Is(err, ErrDuplicateEndpoint) {
		t.Errorf("NewSensorUnit dup = %v", err)
	}
	if _, err := NewActuatorUnit(b, "dup", "t", nil); !errors.Is(err, ErrDuplicateEndpoint) {
		t.Errorf("NewActuatorUnit dup = %v", err)
	}
}
