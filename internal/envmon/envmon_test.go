package envmon

import (
	"sync"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/spec"
)

// powerClassifier maps two alternator factors to the avionics-style power
// states used throughout the tests.
func powerClassifier(f map[Factor]string) spec.EnvState {
	ok := 0
	for _, alt := range []Factor{"alt1", "alt2"} {
		if f[alt] == "ok" {
			ok++
		}
	}
	switch ok {
	case 2:
		return "power-full"
	case 1:
		return "power-reduced"
	default:
		return "power-battery"
	}
}

func TestEnvironmentSetGetSnapshot(t *testing.T) {
	env := NewEnvironment(map[Factor]string{"alt1": "ok"})
	if v, ok := env.Get("alt1"); !ok || v != "ok" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := env.Get("missing"); ok {
		t.Fatal("missing factor found")
	}
	env.Set("alt1", "failed")
	if v, _ := env.Get("alt1"); v != "failed" {
		t.Fatalf("Set did not take: %q", v)
	}
	snap := env.Snapshot()
	snap["alt1"] = "mutated"
	if v, _ := env.Get("alt1"); v != "failed" {
		t.Fatal("Snapshot aliased the environment")
	}
}

func TestNewEnvironmentCopiesInitial(t *testing.T) {
	initial := map[Factor]string{"k": "v"}
	env := NewEnvironment(initial)
	initial["k"] = "mutated"
	if v, _ := env.Get("k"); v != "v" {
		t.Fatalf("initial map aliased: %q", v)
	}
}

func TestMonitorSignalsOnChangeOnly(t *testing.T) {
	env := NewEnvironment(map[Factor]string{"alt1": "ok", "alt2": "ok"})
	var mu sync.Mutex
	var got []Signal
	m := NewMonitor("power-monitor", env, powerClassifier, func(s Signal) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, s)
	})

	// Frames 0-2: stable environment, no signals (priming included).
	for f := int64(0); f < 3; f++ {
		if err := m.Tick(frame.Context{Frame: f}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 0 {
		t.Fatalf("signals on stable environment: %v", got)
	}
	if m.Current() != "power-full" {
		t.Fatalf("Current = %q", m.Current())
	}

	// Alternator fails; next tick signals exactly once.
	env.Set("alt1", "failed")
	for f := int64(3); f < 6; f++ {
		if err := m.Tick(frame.Context{Frame: f}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 1 {
		t.Fatalf("got %d signals, want 1: %v", len(got), got)
	}
	if got[0].Source != "power-monitor" || got[0].State != "power-reduced" || got[0].Frame != 3 {
		t.Errorf("signal = %+v", got[0])
	}
	if m.SignalCount() != 1 {
		t.Errorf("SignalCount = %d", m.SignalCount())
	}

	// Second alternator fails.
	env.Set("alt2", "failed")
	if err := m.Tick(frame.Context{Frame: 6}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].State != "power-battery" {
		t.Fatalf("second signal = %v", got)
	}
}

func TestMonitorTaskID(t *testing.T) {
	m := NewMonitor("pm", nil, nil, nil)
	if m.TaskID() != "monitor:pm" {
		t.Errorf("TaskID = %q", m.TaskID())
	}
	if m.ID() != "pm" {
		t.Errorf("ID = %q", m.ID())
	}
}

func TestScriptAppliesEventsAtFrameBoundaries(t *testing.T) {
	env := NewEnvironment(map[Factor]string{"alt1": "ok"})
	script := NewScript(env, []Event{
		{Frame: 3, Factor: "alt1", Value: "failed"},
		{Frame: 0, Factor: "alt2", Value: "ok"},
		{Frame: 5, Factor: "alt2", Value: "failed"},
	})
	script.Init()
	if v, _ := env.Get("alt2"); v != "ok" {
		t.Fatalf("frame-0 event not applied by Init: %q", v)
	}
	if script.Done() {
		t.Fatal("script done too early")
	}

	// End of frame 1 applies events for frame 2: none.
	if err := script.Hook(frame.Context{Frame: 1}); err != nil {
		t.Fatal(err)
	}
	if v, _ := env.Get("alt1"); v != "ok" {
		t.Fatal("frame-3 event applied too early")
	}
	// End of frame 2 applies events for frame 3.
	if err := script.Hook(frame.Context{Frame: 2}); err != nil {
		t.Fatal(err)
	}
	if v, _ := env.Get("alt1"); v != "failed" {
		t.Fatal("frame-3 event not applied at end of frame 2")
	}
	// End of frame 4 applies events for frame 5.
	if err := script.Hook(frame.Context{Frame: 4}); err != nil {
		t.Fatal(err)
	}
	if v, _ := env.Get("alt2"); v != "failed" {
		t.Fatal("frame-5 event not applied")
	}
	if !script.Done() {
		t.Fatal("script not done")
	}
}

func TestScriptWithSchedulerEndToEnd(t *testing.T) {
	// A monitor driven by a scheduler sees a scripted frame-4 event
	// exactly in frame 4.
	env := NewEnvironment(map[Factor]string{"alt1": "ok", "alt2": "ok"})
	script := NewScript(env, []Event{{Frame: 4, Factor: "alt1", Value: "failed"}})
	script.Init()

	var mu sync.Mutex
	var got []Signal
	m := NewMonitor("pm", env, powerClassifier, func(s Signal) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, s)
	})

	sched, err := frame.NewScheduler(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	if err := sched.AddTask(m); err != nil {
		t.Fatal(err)
	}
	sched.AddCommitHook(script.Hook)
	if err := sched.Run(8); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("signals = %v, want exactly 1", got)
	}
	if got[0].Frame != 4 || got[0].State != "power-reduced" {
		t.Errorf("signal = %+v, want frame 4 power-reduced", got[0])
	}
}

func TestSignalString(t *testing.T) {
	s := Signal{Source: "pm", State: "power-full", Frame: 7}
	if got := s.String(); got != "signal{pm -> power-full @f7}" {
		t.Errorf("String = %q", got)
	}
}
