// Package envmon models the system's operating environment and the monitor
// applications that observe it.
//
// Section 6.3 of Strunk, Knight and Aiello (DSN 2005) folds component
// failures into the environment: "the status of a component is modeled as an
// element of the environment, and a failure is simply a change in the
// environment. Any environmental factor whose change could necessitate a
// reconfiguration can have a virtual application to monitor its status and
// generate a signal if the value changes."
//
// Environment is the evolving set of raw factors (alternator status, battery
// charge, weather, processor health). A Classifier abstracts the raw factors
// into one of the discrete spec.EnvState values the choice table is defined
// over. Monitor is the virtual application: each frame it classifies the
// environment and signals the SCRAM when the classification changes. Script
// drives deterministic environment evolution from a frame-indexed event
// list.
package envmon

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/frame"
	"repro/internal/spec"
)

// Factor names one environmental characteristic, e.g. "alternator-1".
type Factor string

// ProcHealth returns the factor name carrying a processor's health. The
// runtime (internal/core) maintains one such factor per declared processor;
// classifiers consult them to fold component failures into the environment.
func ProcHealth(id spec.ProcID) Factor {
	//lint:allow allocfree construction-time naming: frame-path callers cache the factor per processor (core precomputes its procHealth list)
	return Factor("proc/" + string(id))
}

// Processor health factor values.
const (
	ProcOK     = "ok"
	ProcFailed = "failed"
)

// Environment is the authoritative current value of every environmental
// factor. It is safe for concurrent use.
type Environment struct {
	mu      sync.Mutex
	factors map[Factor]string
	// version counts effective changes: Set bumps it only when a factor's
	// value actually changes. Frame-loop consumers (monitors, processor-health
	// sync) cache their classification keyed on the version, so the quiet
	// steady state re-snapshots and re-classifies nothing.
	version uint64
}

// NewEnvironment returns an environment holding the given initial factor
// values (copied).
func NewEnvironment(initial map[Factor]string) *Environment {
	f := make(map[Factor]string, len(initial))
	for k, v := range initial {
		f[k] = v
	}
	return &Environment{factors: f}
}

// Set changes a factor's value. In the model this is the moment a component
// fails, is repaired, or an external condition shifts.
func (e *Environment) Set(f Factor, v string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.factors[f]; !ok || old != v {
		e.factors[f] = v
		e.version++
	}
}

// Version returns the change counter: it advances exactly when some factor's
// value changes. Observers may skip reclassification while it is unchanged.
func (e *Environment) Version() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.version
}

// Get returns a factor's current value.
func (e *Environment) Get(f Factor) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.factors[f]
	return v, ok
}

// Snapshot returns a copy of all factor values.
func (e *Environment) Snapshot() map[Factor]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[Factor]string, len(e.factors))
	for k, v := range e.factors {
		out[k] = v
	}
	return out
}

// Classifier abstracts raw factor values into the discrete environment
// state the reconfiguration specification is defined over.
type Classifier func(map[Factor]string) spec.EnvState

// Signal is a monitor's report to the SCRAM that the effective environment
// state changed. Per Figure 1 of the paper, failure signals travel on a
// direct signal path to the SCRAM (not through stable storage, which is
// reserved for reconfiguration coordination).
type Signal struct {
	// Source is the monitor that generated the signal.
	Source spec.AppID
	// State is the new effective environment state.
	State spec.EnvState
	// Frame is the frame in which the change was observed.
	Frame int64
	// Urgent marks a hardware fault signal (a processor loss detected by
	// the platform's failure detectors, Figure 1's direct path) as opposed
	// to an environment observation. Urgent signals report that the
	// current configuration is already broken, so anti-thrash damping
	// (the dwell guard) must not delay the response.
	Urgent bool
	// Span is the signal-detection span opened for this signal, stamped by
	// the SCRAM manager at the frame-commit delivery point — not by the
	// monitor task, which may run concurrently with other tasks and must
	// not touch the deterministic span counters. Zero when tracing is off.
	Span int64
}

// Monitor is a virtual application that classifies the environment every
// frame and emits a Signal when the classification changes. It implements
// frame.Task.
type Monitor struct {
	id       spec.AppID
	env      *Environment
	classify Classifier
	emit     func(Signal)

	mu      sync.Mutex
	last    spec.EnvState
	primed  bool
	signals int64
	// seenVersion is the environment version last classified; while the
	// environment reports the same version the classification cannot have
	// changed, so Tick skips the snapshot-and-classify entirely.
	seenVersion uint64
}

// NewMonitor returns a monitor that reports changes through emit. The
// initial state is primed on the first Tick without emitting, matching the
// paper's assumption that the SCRAM knows the start environment statically.
func NewMonitor(id spec.AppID, env *Environment, classify Classifier, emit func(Signal)) *Monitor {
	return &Monitor{id: id, env: env, classify: classify, emit: emit}
}

// ID returns the monitor's application identifier.
func (m *Monitor) ID() spec.AppID { return m.id }

// TaskID implements frame.Task.
func (m *Monitor) TaskID() string { return "monitor:" + string(m.id) }

// Current returns the monitor's latest classification (the start state
// before the first Tick).
func (m *Monitor) Current() spec.EnvState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// SignalCount returns the number of signals emitted.
func (m *Monitor) SignalCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.signals
}

// Tick classifies the environment and signals on change. Classification is
// skipped while the environment version is unchanged: the classifier is a
// pure function of the factor map, so an unchanged map yields an unchanged
// classification.
func (m *Monitor) Tick(ctx frame.Context) error {
	ver := m.env.Version()
	m.mu.Lock()
	if m.primed && ver == m.seenVersion {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	state := m.classify(m.env.Snapshot())
	m.mu.Lock()
	changed := m.primed && state != m.last
	m.last = state
	m.primed = true
	m.seenVersion = ver
	if changed {
		m.signals++
	}
	m.mu.Unlock()
	if changed {
		m.emit(Signal{Source: m.id, State: state, Frame: ctx.Frame})
	}
	return nil
}

// Event is one scripted environment change, applied so that it is visible to
// every task during the given frame.
type Event struct {
	Frame  int64  `json:"frame"`
	Factor Factor `json:"factor"`
	Value  string `json:"value"`
}

// Script applies a deterministic sequence of environment events. Events for
// frame f are applied at the end of frame f-1 (via the commit hook), so all
// tasks of frame f observe them; events for frame 0 are applied by Init.
type Script struct {
	env    *Environment
	events []Event
	next   int
}

// NewScript returns a script over env. Events are sorted by frame (stable
// for equal frames).
func NewScript(env *Environment, events []Event) *Script {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Frame < sorted[j].Frame })
	return &Script{env: env, events: sorted}
}

// Init applies every event scheduled at or before frame 0. Call it once
// before the first frame.
func (s *Script) Init() {
	s.applyThrough(0)
}

// Hook is the frame-end hook: at the end of frame k it applies every event
// scheduled for frame k+1.
func (s *Script) Hook(ctx frame.Context) error {
	s.applyThrough(ctx.Frame + 1)
	return nil
}

// Done reports whether every scripted event has been applied.
func (s *Script) Done() bool { return s.next >= len(s.events) }

func (s *Script) applyThrough(frameNum int64) {
	for s.next < len(s.events) && s.events[s.next].Frame <= frameNum {
		ev := s.events[s.next]
		s.env.Set(ev.Factor, ev.Value)
		s.next++
	}
}

// String renders the signal for logs.
func (s Signal) String() string {
	return fmt.Sprintf("signal{%s -> %s @f%d}", s.Source, s.State, s.Frame)
}
