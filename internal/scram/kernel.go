package scram

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/envmon"
	"repro/internal/frame"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// EventKind classifies a protocol log entry.
type EventKind string

// Protocol event kinds, in the vocabulary of the paper's Table 1.
const (
	// EventSignal records a component-failure or environment-change
	// signal reaching the kernel.
	EventSignal EventKind = "signal"
	// EventTrigger records the decision to reconfigure (Table 1 frame 0).
	EventTrigger EventKind = "trigger"
	// EventHalt records the halt command taking effect (frame 1).
	EventHalt EventKind = "halt"
	// EventPrepare records the prepare(Ct) command (frame 2).
	EventPrepare EventKind = "prepare"
	// EventInitialize records the initialize command (frame 3).
	EventInitialize EventKind = "initialize"
	// EventComplete records the end of the reconfiguration.
	EventComplete EventKind = "complete"
	// EventRetarget records a mid-window target change (immediate
	// policy).
	EventRetarget EventKind = "retarget"
	// EventDeferred records a trigger deferred by the dwell guard.
	EventDeferred EventKind = "deferred"
)

// Event is one protocol log entry; the sequence of events for a single
// reconfiguration renders the paper's Table 1.
type Event struct {
	Frame  int64         `json:"frame"`
	Kind   EventKind     `json:"kind"`
	Config spec.ConfigID `json:"config,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("f%-4d %-10s", e.Frame, e.Kind)
	if e.Config != "" {
		s += " " + string(e.Config)
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// kernelState is the kernel's persistent state, committed to stable storage
// every frame so a standby kernel can take over after a fail-stop failure of
// the primary's processor.
type kernelState struct {
	Current    spec.ConfigID `json:"current"`
	Env        spec.EnvState `json:"env"`
	Seq        int64         `json:"seq"`
	LastEnd    int64         `json:"last_end"`
	LastSource spec.AppID    `json:"last_source,omitempty"`
	TriggerApp spec.AppID    `json:"trigger_app,omitempty"`
	Urgent     bool          `json:"urgent,omitempty"`
	Plan       *plan         `json:"plan,omitempty"`
	// Epoch is the membership epoch the kernel serves under; zero when the
	// system runs with the static processor set. It rides in the persisted
	// state so a takeover restores the last committed epoch, and it stamps
	// every command so applications can discard stale pre-takeover ones.
	Epoch int64 `json:"epoch,omitempty"`
}

// Kernel is the SCRAM kernel. Create one with NewKernel; drive it by calling
// EndOfFrame from a frame-commit hook that runs before the stable-storage
// commits (so commands written during frame k are committed at k's boundary
// and visible to applications in frame k+1).
type Kernel struct {
	rs    *spec.ReconfigSpec
	store *stable.Store

	mu      sync.Mutex
	signals []envmon.Signal

	st     kernelState
	events []Event
	// dirty marks that st changed since the last persist. The kernel's state
	// is a pure function of signals and plan progress, both rare; on quiet
	// frames the committed record is already current and persist skips the
	// re-encode. Set at every st mutation site; true at construction so the
	// first frame (and the first frame after a takeover onto a fresh store)
	// always persists.
	dirty bool
	// lastCmds caches the command most recently staged (and, by the frame
	// structure, committed) per application on this kernel's store, so an
	// unchanged command — every frame of normal operation — is not re-encoded
	// and re-staged. A fresh kernel (boot or takeover) starts empty and
	// writes everything once.
	lastCmds map[spec.AppID]Command

	// tel and met mirror the protocol log into the flight recorder and
	// the metrics registry. Both are always non-nil: until SetTelemetry
	// attaches the system's, tel is the no-op sink and met counts into a
	// private registry nobody reads — selected once at construction, so
	// the protocol paths carry no per-event nil checks.
	tel telemetry.Sink
	met *kernelMetrics
	// lastSignal is the frame of the most recent signal, feeding the
	// signal-to-trigger latency histogram; -1 before any signal.
	lastSignal int64
	// book allocates the causal-trace spans; nil-receiver safe, so the
	// untraced kernel pays only a nil check per protocol decision (and
	// nothing at all on quiet frames). pendSpans holds the signal spans
	// awaiting the kernel's decision — preallocated so the steady path
	// never grows it; spans stay pending across dwell deferrals.
	book      *telemetry.SpanBook
	pendSpans []int64
}

// kernelMetrics holds the kernel's pre-resolved metric handles.
type kernelMetrics struct {
	signals, triggers, deferred, retargets, completes, chained *telemetry.Counter
	windowFrames, signalLatency                                *telemetry.Histogram
}

// resolveKernelMetrics binds the kernel's metric handles in reg.
func resolveKernelMetrics(reg *telemetry.Registry) *kernelMetrics {
	return &kernelMetrics{
		signals:       reg.Counter("scram/signals"),
		triggers:      reg.Counter("scram/triggers"),
		deferred:      reg.Counter("scram/deferred"),
		retargets:     reg.Counter("scram/retargets"),
		completes:     reg.Counter("scram/completes"),
		chained:       reg.Counter("scram/chained"),
		windowFrames:  reg.Histogram("scram/window_frames"),
		signalLatency: reg.Histogram("scram/signal_latency_frames"),
	}
}

// SetTelemetry attaches the kernel to a metrics registry and flight
// recorder: every protocol log entry is mirrored as a flight-recorder
// event, and plan starts/completions additionally record their Table 1
// phase windows and budget margins. A nil recorder or registry leaves the
// corresponding no-op attachment in place.
func (k *Kernel) SetTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	k.tel = telemetry.OrNop(rec)
	if reg != nil {
		k.met = resolveKernelMetrics(reg)
	}
}

// SetTracing attaches the system's span book. The kernel opens the
// reconfiguration trace at trigger, tracks one span per protocol phase,
// records chain/retarget causality, and closes the trace when the fused
// window completes. A nil book leaves tracing off.
func (k *Kernel) SetTracing(book *telemetry.SpanBook) {
	k.book = book
	if book != nil && k.pendSpans == nil {
		k.pendSpans = make([]int64, 0, 8)
	}
}

// NewKernel returns a kernel for the given specification, persisting its
// state and the application command variables in store (the stable storage
// of the processor hosting the SCRAM).
func NewKernel(rs *spec.ReconfigSpec, store *stable.Store) (*Kernel, error) {
	if _, ok := rs.Config(rs.StartConfig); !ok {
		return nil, fmt.Errorf("scram: start configuration %q not declared", rs.StartConfig)
	}
	return &Kernel{
		rs:         rs,
		store:      store,
		lastSignal: -1,
		tel:        telemetry.NopSink{},
		met:        resolveKernelMetrics(telemetry.NewRegistry()),
		dirty:      true,
		lastCmds:   make(map[spec.AppID]Command, len(rs.Apps)),
		st: kernelState{
			Current: rs.StartConfig,
			Env:     rs.StartEnv,
			LastEnd: math.MinInt64 / 2,
		},
	}, nil
}

// Restore returns a kernel whose state is loaded from a stable-storage
// snapshot of a (possibly failed) kernel's processor — the takeover path of
// a replicated SCRAM. The snapshot must contain a persisted kernel state.
func Restore(rs *spec.ReconfigSpec, store *stable.Store, snapshot map[string][]byte) (*Kernel, error) {
	k, err := NewKernel(rs, store)
	if err != nil {
		return nil, err
	}
	raw, ok := snapshot[stateKey]
	if !ok {
		return nil, fmt.Errorf("scram: snapshot holds no kernel state under %q", stateKey)
	}
	if err := unmarshalState(raw, &k.st); err != nil {
		return nil, err
	}
	// Every configuration_status record present in the snapshot must decode:
	// commanding applications from a corrupt record would violate fail-stop
	// semantics, so the takeover is refused instead.
	for _, a := range rs.Apps {
		if raw, ok := snapshot[commandKey(a.ID)]; ok {
			if err := validateCommandRecord(a.ID, raw); err != nil {
				return nil, err
			}
		}
	}
	return k, nil
}

// Store returns the stable store the kernel writes commands to.
func (k *Kernel) Store() *stable.Store { return k.store }

// Epoch returns the membership epoch the kernel is serving under; zero with
// the static processor set.
func (k *Kernel) Epoch() int64 { return k.st.Epoch }

// SetEpoch moves the kernel to a membership epoch. The membership layer
// calls it before EndOfFrame, so the frame's commands and persisted state
// both carry the frame's epoch. Epochs are monotone: a smaller value is
// ignored (a restored kernel may briefly hold a newer epoch than a lagging
// caller).
func (k *Kernel) SetEpoch(epoch int64) {
	if epoch > k.st.Epoch {
		k.st.Epoch = epoch
		k.dirty = true
	}
}

// Current returns the configuration in effect (the target configuration is
// not "current" until the reconfiguration completes).
func (k *Kernel) Current() spec.ConfigID { return k.st.Current }

// Env returns the kernel's latest view of the environment state.
func (k *Kernel) Env() spec.EnvState { return k.st.Env }

// Reconfiguring reports whether a reconfiguration plan is in progress.
func (k *Kernel) Reconfiguring() bool { return k.st.Plan != nil }

// PlanTarget returns the in-progress plan's target configuration and its
// sequence number; ok is false when no plan is active.
func (k *Kernel) PlanTarget() (target spec.ConfigID, seq int64, ok bool) {
	if k.st.Plan == nil {
		return "", 0, false
	}
	return k.st.Plan.Target, k.st.Plan.Seq, true
}

// Events returns a copy of the protocol event log.
func (k *Kernel) Events() []Event {
	out := make([]Event, len(k.events))
	copy(out, k.events)
	return out
}

// Signal delivers a component-failure or environment-change signal to the
// kernel. Per Figure 1 of the paper, signals travel on a direct path (not
// through stable storage). Signal is safe to call from monitor tasks running
// concurrently within a frame; the kernel processes all signals of frame k
// during k's commit step.
func (k *Kernel) Signal(sig envmon.Signal) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.signals = append(k.signals, sig)
}

// EndOfFrame advances the kernel by one frame: it drains the frame's
// signals, starts, advances, retargets, or completes the reconfiguration
// plan, and writes every application's command for the next frame.
func (k *Kernel) EndOfFrame(ctx frame.Context) error {
	f := ctx.Frame
	for _, sig := range k.drainSignals() {
		k.st.Env = sig.State
		k.st.LastSource = sig.Source
		if sig.Urgent {
			k.st.Urgent = true
		}
		k.lastSignal = f
		k.dirty = true
		k.logf(f, EventSignal, "", "%s reports %s", sig.Source, sig.State)
		if sig.Span != 0 {
			k.pendSpans = append(k.pendSpans, sig.Span)
		}
	}

	if k.st.Plan == nil {
		if err := k.maybeTrigger(f); err != nil {
			return err
		}
	} else {
		if err := k.advancePlan(f); err != nil {
			return err
		}
	}
	if err := k.writeCommands(f); err != nil {
		return err
	}
	return k.persist()
}

// maybeTrigger starts a reconfiguration if the choice table demands one for
// the current environment and the dwell guard allows it. An urgent
// (hardware-fault) signal bypasses the dwell guard: dwell damps environment
// churn, but a processor loss has already broken the current configuration
// and deferring the response would extend the outage unboundedly.
func (k *Kernel) maybeTrigger(f int64) error {
	target, ok := k.rs.Choice.Choose(k.st.Current, k.st.Env)
	if !ok || target == k.st.Current {
		if k.st.Urgent {
			k.st.Urgent = false
			k.dirty = true
		}
		// The choice function demands nothing: the pending signal spans
		// close traceless — observed, judged, no reconfiguration.
		k.closePendingSpans(f, "no reconfiguration required")
		return nil
	}
	if dwell := int64(k.rs.DwellFrames); f-k.st.LastEnd < dwell && !k.st.Urgent {
		k.logf(f, EventDeferred, target, "dwell guard: %d of %d frames since last reconfiguration",
			f-k.st.LastEnd, dwell)
		return nil
	}
	k.st.Urgent = false
	k.st.Seq++
	k.dirty = true
	p, err := buildPlan(k.rs, k.st.Seq, k.st.Current, target, f)
	if err != nil {
		return err
	}
	return k.startPlan(f, p)
}

// startPlan installs a built plan and logs its Table 1 schedule.
func (k *Kernel) startPlan(f int64, p *plan) error {
	target := p.Target
	k.st.Plan = p
	k.st.TriggerApp = k.st.LastSource
	k.dirty = true
	k.logf(f, EventTrigger, target, "%s -> %s, window [%d,%d]", p.Source, p.Target, p.TriggerFrame, p.InitEnd)
	k.logf(f, EventHalt, target, "halt commanded for frames [%d,%d]", p.HaltStart, p.HaltEnd)
	k.logf(f, EventPrepare, target, "prepare(%s) scheduled for frames [%d,%d]", target, p.PrepStart, p.PrepEnd)
	k.logf(f, EventInitialize, target, "initialize scheduled for frames [%d,%d]", p.InitStart, p.InitEnd)
	k.recordSchedule(f, p)
	k.openTraceSpans(f, p)
	if !p.Chained && k.lastSignal >= 0 {
		k.met.signalLatency.Observe(p.TriggerFrame - k.lastSignal)
	}
	return nil
}

// openTraceSpans records the causal-trace structure of a plan start: an
// unchained plan opens the reconfiguration trace (rooted at the trigger,
// derived from the opening signal's frame); a chained plan pushes a chain
// span instead, keeping the fused window's trace open so the follow-up's
// phases parent to the chain — the chained-urgent causal link. Either way
// the pending signal spans close into the trace, and an instantaneous
// decision span records the choice the kernel just made.
func (k *Kernel) openTraceSpans(f int64, p *plan) {
	if !k.book.Enabled() {
		return
	}
	if p.Chained {
		k.book.OpenChain(f, telemetry.Event{
			From:   string(p.Source),
			Config: string(p.Target),
			Attrs:  map[string]int64{"seq": p.Seq},
		})
	} else {
		sigFrame := k.lastSignal
		if sigFrame < 0 {
			sigFrame = f
		}
		attrs := map[string]int64{"seq": p.Seq}
		if bound, ok := k.rs.T(p.ChainSource, p.Target); ok {
			attrs["bound"] = int64(bound)
		}
		k.book.OpenTrace(f, sigFrame, telemetry.Event{
			From:   string(p.ChainSource),
			Config: string(p.Target),
			Attrs:  attrs,
		})
	}
	k.closePendingSpans(f, "")
	k.book.Mark(f, telemetry.SpanDecision, telemetry.Event{
		From:   string(p.Source),
		Config: string(p.Target),
		Attrs:  map[string]int64{"seq": p.Seq},
	})
}

// closePendingSpans closes every signal span awaiting a decision. Inside an
// open trace they are adopted as children of the current parent; outside
// they close traceless. No-op (and allocation-free) when nothing pends.
func (k *Kernel) closePendingSpans(f int64, detail string) {
	if len(k.pendSpans) == 0 {
		return
	}
	for _, id := range k.pendSpans {
		k.book.ClosePending(f, id, telemetry.Event{Detail: detail})
	}
	k.pendSpans = k.pendSpans[:0]
}

// advancePlan handles retargeting and completion of the in-progress plan.
func (k *Kernel) advancePlan(f int64) error {
	p := k.st.Plan
	// Immediate retargeting: permitted once per window, and only while
	// initialization has not begun (after that, new triggers buffer).
	// Retargeting back to the plan's source is allowed and yields a
	// self-transition window, which is why the immediate policy carries
	// the self-transition-bound static obligation.
	if k.rs.Retarget == spec.RetargetImmediate && !p.Retargeted && f+1 <= p.InitStart {
		if newTarget, ok := k.rs.Choice.Choose(p.Source, k.st.Env); ok && newTarget != p.Target {
			k.st.Seq++
			k.dirty = true
			if err := p.retarget(k.rs, newTarget, k.st.Seq, f); err != nil {
				return err
			}
			k.logf(f, EventRetarget, newTarget, "window extended to [%d,%d]", p.TriggerFrame, p.InitEnd)
			k.recordSchedule(f, p)
			if k.book.Enabled() {
				k.book.Mark(f, telemetry.SpanRetarget, telemetry.Event{
					From:   string(p.Source),
					Config: string(p.Target),
					Attrs:  map[string]int64{"seq": p.Seq},
				})
			}
		}
	}
	k.advanceSpans(f, p)
	if f == p.InitEnd {
		k.st.Current = p.Target
		k.st.LastEnd = f
		k.st.Plan = nil
		k.st.TriggerApp = ""
		k.dirty = true
		k.logf(f, EventComplete, p.Target, "window [%d,%d], %d frames",
			p.TriggerFrame, p.InitEnd, p.InitEnd-p.TriggerFrame+1)
		err := k.maybeChain(f, p)
		// The budget-window event closes the fused chain window, so it is
		// recorded only when no chained follow-up plan kept it open.
		if k.st.Plan == nil {
			k.recordWindow(f, p)
		}
		return err
	}
	return nil
}

// advanceSpans maintains the causal trace's per-phase span: one span per
// protocol phase of the plan, opened at the phase's first frame and closed
// at its last (a retarget that moves a boundary under the open span closes
// it at the last frame it was accurate for and reopens). All state lives in
// the plan itself, so a takeover's restored plan resumes exactly where the
// snapshot's span bookkeeping left off.
func (k *Kernel) advanceSpans(f int64, p *plan) {
	if !k.book.Enabled() {
		return
	}
	cur := p.phaseAt(f)
	if cur == spec.PhaseNormal {
		return
	}
	name := spanPhaseName(cur)
	if p.SpanPhase != 0 && p.SpanPhaseName != name {
		k.book.CloseSpan(f-1, p.SpanPhase, p.SpanPhaseName, telemetry.Event{Config: string(p.Target)})
		p.SpanPhase = 0
	}
	if p.SpanPhase == 0 {
		p.SpanPhase = k.book.OpenSpan(f, name, telemetry.Event{Config: string(p.Target)})
		p.SpanPhaseName = name
	}
	if f == p.InitEnd || p.phaseAt(f+1) != cur {
		k.book.CloseSpan(f, p.SpanPhase, name, telemetry.Event{Config: string(p.Target)})
		p.SpanPhase, p.SpanPhaseName = 0, ""
	}
}

// spanPhaseName maps a protocol phase to its span name.
func spanPhaseName(ph spec.Phase) string {
	switch ph {
	case spec.PhaseHalt:
		return telemetry.SpanHalt
	case spec.PhasePrepare:
		return telemetry.SpanPrepare
	default:
		return telemetry.SpanInit
	}
}

// maybeChain handles an urgent (hardware-fault) signal that arrived too
// late in the window for retargeting: the plan just completed into a
// configuration the choice function already rejects — typically because a
// processor the target places applications on failed mid-window. Resting
// there is impossible (the lost applications can never report normal), so
// the kernel chains straight into the follow-up transition in the same
// frame, with no intervening cycle of normal operation. In the trace the
// two transitions fuse into one reconfiguration window running from the
// original source to the final target; chaining therefore requires that
// composite pair to be declared with a bound the fused window fits — for a
// window that returns to its own source, that is the self-transition bound
// the retargeting machinery also relies on. An undeclared or overrun
// composite falls back to completing normally (the follow-up then runs as
// an ordinary buffered trigger next frame).
func (k *Kernel) maybeChain(f int64, p *plan) error {
	if !k.st.Urgent {
		return nil
	}
	newTarget, ok := k.rs.Choice.Choose(p.Target, k.st.Env)
	if !ok || newTarget == p.Target {
		return nil
	}
	np, err := buildPlan(k.rs, k.st.Seq+1, p.Target, newTarget, f)
	if err != nil {
		return nil // undeclared follow-up transition: buffer instead
	}
	bound, declared := k.rs.T(p.ChainSource, newTarget)
	if !declared || np.InitEnd-p.ChainStart+1 > int64(bound) {
		return nil
	}
	k.st.Urgent = false
	k.st.Seq++
	k.dirty = true
	np.Chained = true
	np.ChainStart = p.ChainStart
	np.ChainSource = p.ChainSource
	k.met.chained.Inc()
	return k.startPlan(f, np)
}

// writeCommands stages every application's command for frame f+1.
func (k *Kernel) writeCommands(f int64) error {
	p := k.st.Plan
	for _, app := range k.rs.Apps {
		if app.Virtual {
			continue // monitors are not commanded
		}
		var cmd Command
		if p == nil {
			cfg, _ := k.rs.Config(k.st.Current)
			target, _ := cfg.SpecOf(app.ID)
			cmd = Command{Seq: k.st.Seq, Phase: spec.PhaseNormal, Target: target, Config: k.st.Current, Epoch: k.st.Epoch}
		} else {
			// Per-application phase selection: the command names the
			// phase the application is in (or awaiting) at f+1, with
			// its own action window. Outside the window the runtime
			// holds, so a command naming a future phase is inert
			// until the window opens. This covers both the staged
			// protocol and the compressed (section 6.3) one.
			aw := p.Apps[app.ID]
			cmd = Command{Seq: p.Seq, Config: p.Target, Target: aw.Target, Epoch: k.st.Epoch}
			g := f + 1
			switch {
			case aw.HaltStart >= 0 && g <= aw.HaltEnd:
				cmd.Phase = spec.PhaseHalt
				cmd.WinStart, cmd.WinEnd = aw.HaltStart, aw.HaltEnd
			case aw.PrepStart >= 0 && g <= aw.PrepEnd:
				cmd.Phase = spec.PhasePrepare
				cmd.WinStart, cmd.WinEnd = aw.PrepStart, aw.PrepEnd
			case g <= p.InitEnd:
				cmd.Phase = spec.PhaseInit
				cmd.WinStart, cmd.WinEnd = aw.InitStart, aw.InitEnd
			default:
				// f+1 is past the plan window only when the plan
				// completed this frame, which clears Plan before
				// writeCommands runs; a plan still present here
				// is a scheduling bug.
				return fmt.Errorf("scram: plan %d has no phase for frame %d", p.Seq, f+1)
			}
		}
		// An unchanged command is already the committed value of the
		// application's configuration_status variable — re-staging the
		// identical bytes would only burn an encode per application per
		// frame. A change in any field (phase, window, seq, epoch) forces
		// the write through.
		if prev, ok := k.lastCmds[app.ID]; ok && prev == cmd {
			continue
		}
		if err := WriteCommand(k.store, app.ID, cmd); err != nil {
			return err
		}
		k.lastCmds[app.ID] = cmd
	}
	return nil
}

// StatusOf returns the reconfiguration status (reconf_st) the kernel
// attributes to app at the given frame. The trace recorder calls it after
// EndOfFrame for the same frame.
func (k *Kernel) StatusOf(app spec.AppID, frameNum int64) trace.ReconfStatus {
	p := k.st.Plan
	if p == nil {
		return trace.StatusNormal
	}
	// The trigger frame of an ordinary window is the last frame of normal
	// operation: only the application attributed with the failure shows
	// interrupted. A chained plan's trigger frame is mid-window (the frame
	// its predecessor completed in), so every application is already in
	// the protocol and reports its phase status instead.
	if frameNum == p.TriggerFrame && !p.Chained {
		if app == k.st.TriggerApp {
			return trace.StatusInterrupted
		}
		return trace.StatusNormal
	}
	aw, ok := p.Apps[app]
	if !ok {
		return trace.StatusHalted
	}
	// Per-application status: an application is halting until its own halt
	// window completes, halted while awaiting its prepare, preparing and
	// prepared around its prepare window, and initializing from its init
	// window until the plan's global completion (the release barrier).
	switch {
	case aw.HaltStart >= 0 && frameNum < aw.HaltEnd:
		return trace.StatusHalting
	case aw.HaltStart >= 0 && frameNum == aw.HaltEnd:
		return trace.StatusHalted
	case aw.PrepStart >= 0 && frameNum < aw.PrepStart:
		return trace.StatusHalted
	case aw.PrepStart >= 0 && frameNum < aw.PrepEnd:
		return trace.StatusPreparing
	case aw.PrepStart >= 0 && frameNum == aw.PrepEnd:
		return trace.StatusPrepared
	case aw.InitStart >= 0 && frameNum < aw.InitStart:
		return trace.StatusPrepared
	case aw.InitStart >= 0:
		return trace.StatusInitializing
	default:
		return trace.StatusHalted // off in the target configuration
	}
}

// SpecOf returns the functional specification attributed to app at the
// current point: its target during a reconfiguration, its current
// assignment otherwise.
func (k *Kernel) SpecOf(app spec.AppID) spec.SpecID {
	if p := k.st.Plan; p != nil {
		if aw, ok := p.Apps[app]; ok {
			return aw.Target
		}
	}
	if cfg, ok := k.rs.Config(k.st.Current); ok {
		if s, ok := cfg.SpecOf(app); ok {
			return s
		}
	}
	return spec.SpecOff
}

func (k *Kernel) drainSignals() []envmon.Signal {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := k.signals
	k.signals = nil
	return out
}

func (k *Kernel) logf(f int64, kind EventKind, cfg spec.ConfigID, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	k.events = append(k.events, Event{
		Frame:  f,
		Kind:   kind,
		Config: cfg,
		Detail: detail,
	})
	k.tel.Record(telemetry.Event{
		Frame:  f,
		Kind:   telemetry.Kind(kind),
		Config: string(cfg),
		Detail: detail,
	})
	switch kind {
	case EventSignal:
		k.met.signals.Inc()
	case EventTrigger:
		k.met.triggers.Inc()
	case EventDeferred:
		k.met.deferred.Inc()
	case EventRetarget:
		k.met.retargets.Inc()
	case EventComplete:
		k.met.completes.Inc()
	}
}

// recordSchedule emits the plan's Table 1 phase windows as a budget event:
// the scheduled halt/prepare/initialize frame ranges plus the declared
// transition bound the window must fit, keyed to the fused chain window so
// a summary reassembles chained plans into one reconfiguration.
func (k *Kernel) recordSchedule(f int64, p *plan) {
	if !k.tel.Enabled() {
		return
	}
	attrs := map[string]int64{
		"seq":           p.Seq,
		"trigger_frame": p.ChainStart,
		"halt_start":    p.HaltStart,
		"halt_end":      p.HaltEnd,
		"prep_start":    p.PrepStart,
		"prep_end":      p.PrepEnd,
		"init_start":    p.InitStart,
		"init_end":      p.InitEnd,
	}
	if p.Chained {
		attrs["chained"] = 1
	}
	if p.Retargeted {
		attrs["retargeted"] = 1
	}
	if bound, ok := k.rs.T(p.ChainSource, p.Target); ok {
		attrs["bound"] = int64(bound)
	}
	k.tel.Record(telemetry.Event{
		Frame:  f,
		Kind:   telemetry.KindBudget,
		Phase:  "schedule",
		Config: string(p.Target),
		From:   string(p.ChainSource),
		Attrs:  attrs,
	})
}

// recordWindow emits the completed reconfiguration's budget consumption:
// the realized window length against the declared bound, with the margin
// left over. It also feeds the window and signal-latency histograms.
func (k *Kernel) recordWindow(f int64, p *plan) {
	window := f - p.ChainStart + 1
	k.met.windowFrames.Observe(window)
	if !k.tel.Enabled() {
		return
	}
	attrs := map[string]int64{
		"seq":    p.Seq,
		"start":  p.ChainStart,
		"end":    f,
		"window": window,
	}
	if bound, ok := k.rs.T(p.ChainSource, p.Target); ok {
		attrs["bound"] = int64(bound)
		attrs["margin"] = int64(bound) - window
	}
	if p.Chained {
		attrs["chained"] = 1
	}
	if p.Retargeted {
		attrs["retargeted"] = 1
	}
	k.tel.Record(telemetry.Event{
		Frame:  f,
		Kind:   telemetry.KindBudget,
		Phase:  "window",
		Config: string(p.Target),
		From:   string(p.ChainSource),
		Attrs:  attrs,
	})
	if k.book.Enabled() {
		// The fused window is over: close the reconfiguration trace. The
		// root's end event carries the realized window against its bound
		// (a fresh attribute map — recorded events keep theirs).
		closeAttrs := make(map[string]int64, len(attrs))
		for key, v := range attrs {
			closeAttrs[key] = v
		}
		k.book.CloseTrace(f, telemetry.Event{
			From:   string(p.ChainSource),
			Config: string(p.Target),
			Attrs:  closeAttrs,
		})
	}
}

func (k *Kernel) persist() error {
	if !k.dirty {
		return nil
	}
	if err := k.store.PutJSON(stateKey, k.st); err != nil {
		return fmt.Errorf("scram: persisting kernel state: %w", err)
	}
	k.dirty = false
	return nil
}
