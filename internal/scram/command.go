// Package scram implements the System Control Reconfiguration Analysis and
// Management kernel of Strunk, Knight and Aiello (DSN 2005, section 3 and
// section 6.3).
//
// The SCRAM receives component-failure and environment-change signals,
// determines the configuration the system must move to from a
// statically-defined choice table, and effects the reconfiguration by
// driving every application through the three-phase protocol of the paper's
// Table 1 — halt, prepare(Ct), initialize — via configuration-status
// variables in stable storage. Applications read their command at the start
// of each frame (stable storage is read-committed at frame granularity, so
// a command written during frame k governs frame k+1) and acknowledge by
// executing the commanded phase.
//
// The kernel runs at the frame-commit boundary (it is kernel infrastructure,
// not an application): monitors emit signals during frame k, the kernel
// plans during frame k's commit step, and the first protocol frame is k+1 —
// reproducing Table 1's frame numbering exactly.
package scram

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/spec"
	"repro/internal/stable"
)

// Command is the configuration_status variable of section 6.2: what one
// application must do in a frame, as most recently committed by the SCRAM.
type Command struct {
	// Seq identifies the reconfiguration plan the command belongs to;
	// it increments on every trigger and retarget, letting applications
	// detect a changed target mid-window.
	Seq int64 `json:"seq"`
	// Phase is the commanded protocol phase (normal, halt, prepare,
	// initialize).
	Phase spec.Phase `json:"phase"`
	// Target is the functional specification the application is assigned
	// in the configuration being entered (SpecOff if the application is
	// off). During normal operation it is the current assignment.
	Target spec.SpecID `json:"target"`
	// Config is the configuration context: the current configuration
	// during normal operation, the target configuration during a
	// reconfiguration.
	Config spec.ConfigID `json:"config"`
	// WinStart and WinEnd delimit (inclusive, in frames) when the
	// application actively executes the commanded phase; outside the
	// window the application holds (it has ceased normal execution and
	// either awaits its turn or has finished its phase work). Both are
	// zero for normal operation.
	WinStart int64 `json:"win_start,omitempty"`
	WinEnd   int64 `json:"win_end,omitempty"`
	// Epoch is the membership epoch the command was issued under; zero
	// when the system runs without dynamic membership. Applications
	// ignore commands stamped with an epoch older than one they have
	// already obeyed — a stale pre-takeover command cannot roll an
	// application back.
	Epoch int64 `json:"epoch,omitempty"`
}

// Active reports whether the command's action window covers the frame.
func (c Command) Active(frameNum int64) bool {
	return c.Phase != spec.PhaseNormal && c.WinStart <= frameNum && frameNum <= c.WinEnd
}

// commandKey is the stable-storage key of an application's
// configuration_status variable.
func commandKey(app spec.AppID) string { return "scram/cmd/" + string(app) }

// stateKey is the stable-storage key of the kernel's persisted state.
const stateKey = "scram/state"

// WriteCommand stages app's command in the SCRAM's stable storage; it
// becomes visible to the application after the frame's commit.
func WriteCommand(st *stable.Store, app spec.AppID, cmd Command) error {
	if err := st.PutJSON(commandKey(app), cmd); err != nil {
		return fmt.Errorf("scram: writing command for %q: %w", app, err)
	}
	return nil
}

// validateCommandRecord checks that a snapshotted configuration_status
// record decodes as a command. Restore uses it to reject snapshots carrying
// corrupt command variables: a standby taking over from such a snapshot
// would command applications from garbage, so takeover must fail instead.
func validateCommandRecord(app spec.AppID, raw []byte) error {
	var cmd Command
	if err := json.Unmarshal(raw, &cmd); err != nil {
		return fmt.Errorf("scram: snapshot holds corrupt command record for %q: %w", app, err)
	}
	return nil
}

// unmarshalState decodes a persisted kernel state.
func unmarshalState(raw []byte, st *kernelState) error {
	if err := json.Unmarshal(raw, st); err != nil {
		return fmt.Errorf("scram: decoding persisted kernel state: %w", err)
	}
	return nil
}

// ReadCommand reads app's most recently committed command. The second
// result is false if no command has ever been committed (the boot frames
// before the kernel's first commit).
func ReadCommand(st *stable.Store, app spec.AppID) (Command, bool, error) {
	var cmd Command
	ok, err := st.GetJSON(commandKey(app), &cmd)
	if err != nil {
		return Command{}, false, fmt.Errorf("scram: reading command for %q: %w", app, err)
	}
	return cmd, ok, nil
}

// CommandReader reads one application's configuration_status variable each
// frame. It caches the raw committed record and its decoded form, so the
// steady state — where the command does not change for millions of frames —
// costs a byte comparison instead of a JSON decode per frame. The cache is
// keyed on the record bytes, not the store: a takeover that moves the record
// to a new store re-decodes only if the bytes differ.
type CommandReader struct {
	app spec.AppID
	key string
	buf []byte // scratch for the committed read
	raw []byte // record bytes backing the cached decode
	cmd Command
	ok  bool
}

// NewCommandReader returns a reader for app's command variable.
func NewCommandReader(app spec.AppID) *CommandReader {
	return &CommandReader{app: app, key: commandKey(app)}
}

// Read returns app's most recently committed command, with the same contract
// as ReadCommand.
func (cr *CommandReader) Read(st *stable.Store) (Command, bool, error) {
	var present bool
	cr.buf, present = st.GetInto(cr.buf, cr.key)
	if !present {
		return Command{}, false, nil
	}
	if cr.ok && bytes.Equal(cr.buf, cr.raw) {
		return cr.cmd, true, nil
	}
	var cmd Command
	if err := json.Unmarshal(cr.buf, &cmd); err != nil {
		return Command{}, false, fmt.Errorf("scram: reading command for %q: %w", cr.app, err)
	}
	cr.cmd = cmd
	cr.raw = append(cr.raw[:0], cr.buf...)
	cr.ok = true
	return cmd, true, nil
}
