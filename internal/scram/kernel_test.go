package scram

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/envmon"
	"repro/internal/frame"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/stable"
	"repro/internal/trace"
)

// newTestKernel builds a kernel over a fresh store.
func newTestKernel(t *testing.T, rs *spec.ReconfigSpec) (*Kernel, *stable.Store) {
	t.Helper()
	st := stable.NewStore()
	k, err := NewKernel(rs, st)
	if err != nil {
		t.Fatal(err)
	}
	return k, st
}

// step runs one frame's commit sequence: kernel end-of-frame, then the
// stable-storage commit.
func step(t *testing.T, k *Kernel, st *stable.Store, f int64) {
	t.Helper()
	if err := k.EndOfFrame(frame.Context{Frame: f}); err != nil {
		t.Fatalf("EndOfFrame(%d): %v", f, err)
	}
	st.Commit()
}

// mustCmd reads app's committed command.
func mustCmd(t *testing.T, st *stable.Store, app spec.AppID) Command {
	t.Helper()
	cmd, ok, err := ReadCommand(st, app)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no command committed for %q", app)
	}
	return cmd
}

func TestIdleKernelCommandsNormal(t *testing.T) {
	rs := spectest.ThreeConfig()
	k, st := newTestKernel(t, rs)

	if _, ok, err := ReadCommand(st, spectest.AppAP); err != nil || ok {
		t.Fatalf("command before first commit: ok=%v err=%v", ok, err)
	}
	for f := int64(0); f < 3; f++ {
		step(t, k, st, f)
	}
	cmd := mustCmd(t, st, spectest.AppAP)
	if cmd.Phase != spec.PhaseNormal || cmd.Target != "ap-full" || cmd.Config != spectest.CfgFull {
		t.Errorf("idle command = %+v", cmd)
	}
	if k.Current() != spectest.CfgFull || k.Reconfiguring() {
		t.Errorf("kernel state: current=%s reconfiguring=%v", k.Current(), k.Reconfiguring())
	}
	if got := k.StatusOf(spectest.AppAP, 2); got != trace.StatusNormal {
		t.Errorf("idle status = %v", got)
	}
}

// TestTable1Protocol drives the canonical reconfiguration and asserts the
// exact frame-by-frame structure of the paper's Table 1: frame f trigger
// (failure signal), f+1 halt, f+2 prepare(Ct), then initialize, with the
// dependency-extended init phase.
func TestTable1Protocol(t *testing.T) {
	rs := spectest.ThreeConfig()
	k, st := newTestKernel(t, rs)
	for f := int64(0); f < 3; f++ {
		step(t, k, st, f)
	}

	// Frame 3: the power monitor reports an alternator loss.
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 3})
	step(t, k, st, 3)

	if !k.Reconfiguring() {
		t.Fatal("no plan after trigger")
	}
	// Trigger-frame statuses: the signal source is interrupted, others
	// still normal (SP1's start_c shape).
	if got := k.StatusOf(spectest.AppMonitor, 3); got != trace.StatusInterrupted {
		t.Errorf("monitor status at trigger = %v", got)
	}
	if got := k.StatusOf(spectest.AppAP, 3); got != trace.StatusNormal {
		t.Errorf("ap status at trigger = %v", got)
	}

	// Frame 4 command: halt, both apps in window [4,4].
	for _, app := range []spec.AppID{spectest.AppAP, spectest.AppFCS} {
		cmd := mustCmd(t, st, app)
		if cmd.Phase != spec.PhaseHalt || cmd.WinStart != 4 || cmd.WinEnd != 4 {
			t.Errorf("%s frame-4 command = %+v, want halt [4,4]", app, cmd)
		}
		if !cmd.Active(4) || cmd.Active(5) {
			t.Errorf("%s Active() wrong: %+v", app, cmd)
		}
	}
	step(t, k, st, 4)
	if got := k.StatusOf(spectest.AppAP, 4); got != trace.StatusHalted {
		t.Errorf("ap status after halt frame = %v", got)
	}

	// Frame 5 command: prepare toward the reduced-service specs.
	cmd := mustCmd(t, st, spectest.AppAP)
	if cmd.Phase != spec.PhasePrepare || cmd.Target != "ap-alt-hold" || cmd.WinStart != 5 || cmd.WinEnd != 5 {
		t.Errorf("ap frame-5 command = %+v, want prepare(ap-alt-hold) [5,5]", cmd)
	}
	step(t, k, st, 5)
	if got := k.StatusOf(spectest.AppFCS, 5); got != trace.StatusPrepared {
		t.Errorf("fcs status after prepare frame = %v", got)
	}

	// Frame 6: initialize. The init dependency (fcs before autopilot)
	// gives fcs window [6,6] and the autopilot [7,7].
	fcsCmd := mustCmd(t, st, spectest.AppFCS)
	apCmd := mustCmd(t, st, spectest.AppAP)
	if fcsCmd.Phase != spec.PhaseInit || fcsCmd.WinStart != 6 || fcsCmd.WinEnd != 6 {
		t.Errorf("fcs init command = %+v, want init [6,6]", fcsCmd)
	}
	if apCmd.Phase != spec.PhaseInit || apCmd.WinStart != 7 || apCmd.WinEnd != 7 {
		t.Errorf("ap init command = %+v, want init [7,7]", apCmd)
	}
	step(t, k, st, 6)
	// The autopilot's own init window is [7,7]: at frame 6 it holds
	// prepared while the FCS initializes.
	if got := k.StatusOf(spectest.AppAP, 6); got != trace.StatusPrepared {
		t.Errorf("ap status awaiting its init window = %v", got)
	}
	if got := k.StatusOf(spectest.AppFCS, 6); got != trace.StatusInitializing {
		t.Errorf("fcs status during its init window = %v", got)
	}
	step(t, k, st, 7)

	// Frame 7 completes the window: current configuration switches and
	// frame-8 commands are normal under reduced service.
	if k.Reconfiguring() {
		t.Fatal("plan still active after InitEnd")
	}
	if k.Current() != spectest.CfgReduced {
		t.Fatalf("current = %s, want reduced", k.Current())
	}
	if got := k.StatusOf(spectest.AppAP, 7); got != trace.StatusNormal {
		t.Errorf("ap status at end_c = %v", got)
	}
	cmd = mustCmd(t, st, spectest.AppAP)
	if cmd.Phase != spec.PhaseNormal || cmd.Target != "ap-alt-hold" || cmd.Config != spectest.CfgReduced {
		t.Errorf("post-window command = %+v", cmd)
	}

	// Window length: [3,7] = 5 frames = 1 trigger + 1 halt + 1 prepare +
	// 2 init (dependency chain), within T(full, reduced) = 8.
	kinds := map[EventKind]int{}
	for _, e := range k.Events() {
		kinds[e.Kind]++
	}
	for _, want := range []EventKind{EventSignal, EventTrigger, EventHalt, EventPrepare, EventInitialize, EventComplete} {
		if kinds[want] == 0 {
			t.Errorf("missing %s event; events: %v", want, k.Events())
		}
	}
}

func TestSpecOfDuringPlan(t *testing.T) {
	rs := spectest.ThreeConfig()
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)
	if got := k.SpecOf(spectest.AppAP); got != "ap-full" {
		t.Errorf("SpecOf idle = %s", got)
	}
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvBattery, Frame: 1})
	step(t, k, st, 1)
	if got := k.SpecOf(spectest.AppAP); got != spec.SpecOff {
		t.Errorf("SpecOf(ap) during plan to minimal = %s, want off", got)
	}
	if got := k.SpecOf(spectest.AppFCS); got != "fcs-direct" {
		t.Errorf("SpecOf(fcs) during plan to minimal = %s", got)
	}
}

func TestOffInTargetStaysHalted(t *testing.T) {
	rs := spectest.ThreeConfig()
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvBattery, Frame: 1})
	step(t, k, st, 1)

	// Plan: halt [2,2], prep [3,3], init [4,4] (minimal has only fcs).
	step(t, k, st, 2)
	// The autopilot is off in minimal: during prepare and init phases it
	// holds in halted.
	if got := k.StatusOf(spectest.AppAP, 3); got != trace.StatusHalted {
		t.Errorf("ap status during prepare = %v, want halted", got)
	}
	apCmd := mustCmd(t, st, spectest.AppAP)
	if apCmd.Target != spec.SpecOff || apCmd.WinStart != -1 {
		t.Errorf("ap prepare command = %+v, want off target with no window", apCmd)
	}
	step(t, k, st, 3)
	if got := k.StatusOf(spectest.AppAP, 4); got != trace.StatusHalted {
		t.Errorf("ap status during init = %v, want halted", got)
	}
	step(t, k, st, 4)
	if k.Current() != spectest.CfgMinimal {
		t.Fatalf("current = %s", k.Current())
	}
	if got := k.StatusOf(spectest.AppAP, 4); got != trace.StatusNormal {
		t.Errorf("ap status at end = %v, want normal (operating under off)", got)
	}
}

func TestDwellGuardDefersTrigger(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.DwellFrames = 10
	k, st := newTestKernel(t, rs)

	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 0})
	step(t, k, st, 0)
	if !k.Reconfiguring() {
		t.Fatal("first trigger should not be deferred")
	}
	// Complete the first window: [0,4] (init has the 2-frame chain).
	for f := int64(1); f <= 4; f++ {
		step(t, k, st, f)
	}
	if k.Current() != spectest.CfgReduced {
		t.Fatalf("current = %s", k.Current())
	}

	// Power restored at frame 6: repair wants reduced -> full, but only
	// 2 frames have passed since the window ended at 4.
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvFull, Frame: 6})
	deferredSeen := false
	for f := int64(5); f < 14; f++ {
		step(t, k, st, f)
		if k.Reconfiguring() {
			t.Fatalf("trigger at frame %d despite dwell guard", f)
		}
	}
	for _, e := range k.Events() {
		if e.Kind == EventDeferred {
			deferredSeen = true
		}
	}
	if !deferredSeen {
		t.Error("no deferred event logged")
	}
	// Frame 14: 14 - 4 = 10 >= dwell, trigger fires.
	step(t, k, st, 14)
	if !k.Reconfiguring() {
		t.Fatal("trigger did not fire after dwell elapsed")
	}
}

func TestBufferPolicyChainsReconfigurations(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.DwellFrames = 0
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)

	// First failure at frame 1: full -> reduced, window [1,5].
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 1})
	step(t, k, st, 1)
	// Second failure mid-window (frame 3): buffered under the buffer
	// policy; the plan's target must not change.
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvBattery, Frame: 3})
	for f := int64(2); f <= 5; f++ {
		step(t, k, st, f)
	}
	if k.Current() != spectest.CfgReduced {
		t.Fatalf("first window ended in %s, want reduced", k.Current())
	}
	// Frame 6: the buffered environment state triggers the second
	// reconfiguration reduced -> minimal.
	step(t, k, st, 6)
	if !k.Reconfiguring() {
		t.Fatal("buffered trigger did not fire after completion")
	}
	// Window [6,9]: halt 1, prep 1, init 1 (minimal has no dependency).
	for f := int64(7); f <= 9; f++ {
		step(t, k, st, f)
	}
	if k.Current() != spectest.CfgMinimal {
		t.Fatalf("second window ended in %s, want minimal", k.Current())
	}
}

func TestImmediateRetarget(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.DwellFrames = 0
	rs.Retarget = spec.RetargetImmediate
	for _, c := range []spec.ConfigID{spectest.CfgFull, spectest.CfgReduced, spectest.CfgMinimal} {
		rs.Transitions = append(rs.Transitions, spec.Transition{From: c, To: c, MaxFrames: 12})
	}
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)

	// Trigger at 1 toward reduced: halt [2,2], prep [3,3], init [4,5].
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 1})
	step(t, k, st, 1)
	// Second failure during the halt frame (frame 2): immediate policy
	// re-chooses from the source configuration: choose(full, battery) =
	// minimal. Prepare restarts at frame 3.
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvBattery, Frame: 2})
	step(t, k, st, 2)

	retargetSeen := false
	for _, e := range k.Events() {
		if e.Kind == EventRetarget && e.Config == spectest.CfgMinimal {
			retargetSeen = true
		}
	}
	if !retargetSeen {
		t.Fatalf("no retarget event; events: %v", k.Events())
	}
	// New schedule: prep [3,3], init [4,4]; complete at 4 in minimal.
	fcsCmd := mustCmd(t, st, spectest.AppFCS)
	if fcsCmd.Phase != spec.PhasePrepare || fcsCmd.Target != "fcs-direct" {
		t.Errorf("fcs command after retarget = %+v", fcsCmd)
	}
	// A third signal mid-window is buffered (one retarget per window).
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvFull, Frame: 3})
	step(t, k, st, 3)
	step(t, k, st, 4)
	if k.Current() != spectest.CfgMinimal {
		t.Fatalf("current = %s, want minimal", k.Current())
	}
	// The buffered full-power state now triggers a repair reconfiguration.
	step(t, k, st, 5)
	if !k.Reconfiguring() {
		t.Fatal("buffered signal did not trigger after retargeted window")
	}
}

// TestRetargetToSource: when the environment returns to the plan's source
// state mid-window, the immediate policy retargets back to the source — a
// self-transition window, legal because the policy's static obligations
// require every reachable configuration to declare T(c, c).
func TestRetargetToSource(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.DwellFrames = 0
	rs.Retarget = spec.RetargetImmediate
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)

	// Trigger at 1 toward reduced: halt [2,2], prep [3,3], init [4,5].
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 1})
	step(t, k, st, 1)
	// The environment recovers during the halt frame: choose(full, full)
	// is the plan's source, so the window retargets back to full.
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvFull, Frame: 2})
	step(t, k, st, 2)
	retargeted := false
	for _, e := range k.Events() {
		if e.Kind == EventRetarget {
			retargeted = true
			if e.Config != spectest.CfgFull {
				t.Fatalf("retargeted to %s, want full", e.Config)
			}
		}
	}
	if !retargeted {
		t.Fatalf("no retarget back to source; events: %v", k.Events())
	}
	target, _, ok := k.PlanTarget()
	if !ok || target != spectest.CfgFull {
		t.Fatalf("plan target = %s (ok=%v), want full", target, ok)
	}
	bound, _ := rs.T(spectest.CfgFull, spectest.CfgFull)
	for f := int64(3); f <= int64(bound); f++ {
		step(t, k, st, f)
		if !k.Reconfiguring() {
			break
		}
	}
	if k.Reconfiguring() {
		t.Fatalf("self-transition window still open past its declared bound %d", bound)
	}
	if k.Current() != spectest.CfgFull {
		t.Fatalf("window ended in %s, want full (the source)", k.Current())
	}
}

func TestPersistAndRestoreMidPlan(t *testing.T) {
	rs := spectest.ThreeConfig()
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 1})
	step(t, k, st, 1)
	step(t, k, st, 2) // halt frame done

	// The primary's processor fails; the standby polls its stable
	// storage and takes over.
	snapshot := st.Snapshot()
	standbyStore := stable.NewStore()
	standby, err := Restore(rs, standbyStore, snapshot)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !standby.Reconfiguring() || standby.Current() != spectest.CfgFull {
		t.Fatalf("restored kernel state: current=%s reconfiguring=%v",
			standby.Current(), standby.Reconfiguring())
	}
	// The standby finishes the window on its own store.
	for f := int64(3); f <= 5; f++ {
		step(t, standby, standbyStore, f)
	}
	if standby.Current() != spectest.CfgReduced {
		t.Fatalf("restored kernel completed in %s, want reduced", standby.Current())
	}
	cmd := mustCmd(t, standbyStore, spectest.AppAP)
	if cmd.Phase != spec.PhaseNormal || cmd.Config != spectest.CfgReduced {
		t.Errorf("standby post-window command = %+v", cmd)
	}
}

func TestRestoreWithoutState(t *testing.T) {
	rs := spectest.ThreeConfig()
	if _, err := Restore(rs, stable.NewStore(), map[string][]byte{}); err == nil {
		t.Fatal("Restore succeeded with empty snapshot")
	}
}

func TestNewKernelRejectsBadStart(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.StartConfig = "ghost"
	if _, err := NewKernel(rs, stable.NewStore()); err == nil {
		t.Fatal("bad start configuration accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Frame: 3, Kind: EventTrigger, Config: "reduced", Detail: "x"}
	if got := e.String(); got == "" {
		t.Error("empty event string")
	}
}

// TestMultiFramePhases stretches every phase of the reduced-service specs to
// 2 frames and checks the schedule: halt [2,3], prepare [4,5], init fcs
// [6,7] then autopilot [8,9] via the dependency.
func TestMultiFramePhases(t *testing.T) {
	rs := spectest.ThreeConfig()
	for i := range rs.Apps {
		for j := range rs.Apps[i].Specs {
			s := &rs.Apps[i].Specs[j]
			s.HaltFrames, s.PrepareFrames, s.InitFrames = 2, 2, 2
		}
	}
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 1})
	step(t, k, st, 1)

	// Halt window [2,3] for both apps.
	cmd := mustCmd(t, st, spectest.AppAP)
	if cmd.Phase != spec.PhaseHalt || cmd.WinStart != 2 || cmd.WinEnd != 3 {
		t.Fatalf("halt command = %+v", cmd)
	}
	if got := k.StatusOf(spectest.AppAP, 2); got != trace.StatusHalting {
		t.Errorf("status mid-halt = %v, want halting", got)
	}
	step(t, k, st, 2)
	step(t, k, st, 3)
	if got := k.StatusOf(spectest.AppAP, 3); got != trace.StatusHalted {
		t.Errorf("status after halt window = %v, want halted", got)
	}

	// Prepare [4,5].
	cmd = mustCmd(t, st, spectest.AppFCS)
	if cmd.Phase != spec.PhasePrepare || cmd.WinStart != 4 || cmd.WinEnd != 5 {
		t.Fatalf("prepare command = %+v", cmd)
	}
	step(t, k, st, 4)
	step(t, k, st, 5)

	// Init: fcs [6,7], autopilot [8,9].
	fcsCmd := mustCmd(t, st, spectest.AppFCS)
	apCmd := mustCmd(t, st, spectest.AppAP)
	if fcsCmd.WinStart != 6 || fcsCmd.WinEnd != 7 {
		t.Errorf("fcs init window = [%d,%d], want [6,7]", fcsCmd.WinStart, fcsCmd.WinEnd)
	}
	if apCmd.WinStart != 8 || apCmd.WinEnd != 9 {
		t.Errorf("ap init window = [%d,%d], want [8,9]", apCmd.WinStart, apCmd.WinEnd)
	}
	for f := int64(6); f <= 9; f++ {
		step(t, k, st, f)
	}
	if k.Current() != spectest.CfgReduced || k.Reconfiguring() {
		t.Fatalf("window did not complete: current=%s", k.Current())
	}
	// Window [1,9] = 9 frames = 1 + 2 + 2 + 4 (chained 2-frame inits).
}

// TestHaltPhaseDependency orders the halt phase: the autopilot must halt
// before the FCS (e.g. it must stop commanding before the FCS quiesces).
func TestHaltPhaseDependency(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.Deps = append(rs.Deps, spec.Dependency{
		Independent: spectest.AppAP, Dependent: spectest.AppFCS, Phase: spec.PhaseHalt,
	})
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 1})
	step(t, k, st, 1)

	apCmd := mustCmd(t, st, spectest.AppAP)
	fcsCmd := mustCmd(t, st, spectest.AppFCS)
	if apCmd.WinStart != 2 || apCmd.WinEnd != 2 {
		t.Errorf("ap halt window = [%d,%d], want [2,2]", apCmd.WinStart, apCmd.WinEnd)
	}
	if fcsCmd.WinStart != 3 || fcsCmd.WinEnd != 3 {
		t.Errorf("fcs halt window = [%d,%d], want [3,3] (gated)", fcsCmd.WinStart, fcsCmd.WinEnd)
	}
}

// TestRandomSpecKernelProtocol drives the kernel directly on random
// specifications: after a trigger, every plan must complete exactly at its
// scheduled InitEnd and land on the chosen configuration.
func TestRandomSpecKernelProtocol(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rs := spectest.Random(rng, 1+rng.Intn(5), 2+rng.Intn(3), 2+rng.Intn(3))
		rs.DwellFrames = 0
		k, err := NewKernel(rs, stable.NewStore())
		if err != nil {
			t.Fatal(err)
		}
		st := k.Store()

		// Find an environment that forces a move from the start config.
		var target spec.ConfigID
		var env spec.EnvState
		for _, e := range rs.Envs {
			if to, ok := rs.Choice.Choose(rs.StartConfig, e); ok && to != rs.StartConfig {
				target, env = to, e
				break
			}
		}
		if target == "" {
			continue // this random table never leaves the start config
		}
		if err := k.EndOfFrame(frame.Context{Frame: 0}); err != nil {
			t.Fatal(err)
		}
		st.Commit()
		k.Signal(envmon.Signal{Source: "monitor", State: env, Frame: 1})
		for f := int64(1); f < 100; f++ {
			if err := k.EndOfFrame(frame.Context{Frame: f}); err != nil {
				t.Fatalf("seed %d frame %d: %v", seed, f, err)
			}
			st.Commit()
			if !k.Reconfiguring() && k.Current() == target {
				break
			}
		}
		if k.Current() != target {
			t.Fatalf("seed %d: kernel ended in %s, want %s", seed, k.Current(), target)
		}
		// The completed window must fit the declared bound.
		bound, _ := rs.T(rs.StartConfig, target)
		for _, e := range k.Events() {
			if e.Kind == EventComplete {
				var start, end int64
				if _, err := fmt.Sscanf(e.Detail, "window [%d,%d]", &start, &end); err != nil {
					t.Fatalf("seed %d: unparseable complete event %q", seed, e.Detail)
				}
				if end-start+1 > int64(bound) {
					t.Fatalf("seed %d: window %d frames exceeds bound %d", seed, end-start+1, bound)
				}
			}
		}
	}
}

func TestKernelAccessors(t *testing.T) {
	rs := spectest.ThreeConfig()
	k, st := newTestKernel(t, rs)
	if k.Env() != spectest.EnvFull {
		t.Errorf("Env = %s", k.Env())
	}
	if _, _, ok := k.PlanTarget(); ok {
		t.Error("PlanTarget reports a plan while idle")
	}
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 0})
	step(t, k, st, 0)
	if k.Env() != spectest.EnvReduced {
		t.Errorf("Env after signal = %s", k.Env())
	}
	target, seq, ok := k.PlanTarget()
	if !ok || target != spectest.CfgReduced || seq != 1 {
		t.Errorf("PlanTarget = %s, %d, %v", target, seq, ok)
	}
}

func TestReadCommandErrors(t *testing.T) {
	st := stable.NewStore()
	st.PutString("scram/cmd/broken", "{not json")
	st.Commit()
	if _, _, err := ReadCommand(st, "broken"); err == nil {
		t.Error("malformed command decoded")
	}
	if err := unmarshalState([]byte("{"), &kernelState{}); err == nil {
		t.Error("malformed state decoded")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	rs := spectest.ThreeConfig()
	if _, err := Restore(rs, stable.NewStore(), map[string][]byte{
		stateKey: []byte("{corrupt"),
	}); err == nil {
		t.Error("corrupt snapshot restored")
	}
	rs.StartConfig = "ghost"
	if _, err := Restore(rs, stable.NewStore(), map[string][]byte{}); err == nil {
		t.Error("bad spec restored")
	}
}

// TestRestoreRejectsCorruptCommandRecord: a standby taking over must refuse
// a snapshot whose configuration_status records do not decode — commanding
// applications from corrupt records would break fail-stop semantics.
func TestRestoreRejectsCorruptCommandRecord(t *testing.T) {
	rs := spectest.ThreeConfig()
	k, st := newTestKernel(t, rs)
	step(t, k, st, 0)
	k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 1})
	step(t, k, st, 1) // plan written: command records present

	snapshot := st.Snapshot()
	var corrupted string
	for _, a := range rs.Apps {
		if _, ok := snapshot[commandKey(a.ID)]; ok {
			snapshot[commandKey(a.ID)] = []byte("{torn mid-write")
			corrupted = string(a.ID)
			break
		}
	}
	if corrupted == "" {
		t.Fatal("no command record in snapshot; test setup wrong")
	}
	if _, err := Restore(rs, stable.NewStore(), snapshot); err == nil {
		t.Fatalf("Restore accepted corrupt command record for %q", corrupted)
	}

	// The intact snapshot still restores.
	if _, err := Restore(rs, stable.NewStore(), st.Snapshot()); err != nil {
		t.Fatalf("Restore of intact snapshot: %v", err)
	}
}
