package scram

import (
	"fmt"

	"repro/internal/det"
	"repro/internal/spec"
	"repro/internal/statics"
)

// appWindows is one application's schedule within a reconfiguration plan:
// the inclusive frame ranges in which it actively executes each phase. A
// start of -1 means the application does not participate in that phase (it
// is off in the relevant configuration) and merely holds.
type appWindows struct {
	HaltStart int64       `json:"halt_start"`
	HaltEnd   int64       `json:"halt_end"`
	PrepStart int64       `json:"prep_start"`
	PrepEnd   int64       `json:"prep_end"`
	InitStart int64       `json:"init_start"`
	InitEnd   int64       `json:"init_end"`
	Target    spec.SpecID `json:"target"`
}

// plan is one scheduled reconfiguration: the realization of Table 1 for a
// specific (source, target) pair, with per-application phase windows derived
// from the same dependency-aware critical-path analysis the static timing
// obligation uses.
type plan struct {
	Seq          int64                      `json:"seq"`
	Source       spec.ConfigID              `json:"source"`
	Target       spec.ConfigID              `json:"target"`
	TriggerFrame int64                      `json:"trigger_frame"`
	HaltStart    int64                      `json:"halt_start"`
	HaltEnd      int64                      `json:"halt_end"`
	PrepStart    int64                      `json:"prep_start"`
	PrepEnd      int64                      `json:"prep_end"`
	InitStart    int64                      `json:"init_start"`
	InitEnd      int64                      `json:"init_end"`
	Apps         map[spec.AppID]*appWindows `json:"apps"`
	Retargeted   bool                       `json:"retargeted"`
	// Chained marks a plan started in the same frame its predecessor
	// completed in (the urgent chain-through path): its trigger frame is
	// mid-window, not a frame of normal operation.
	Chained bool `json:"chained,omitempty"`
	// ChainStart and ChainSource identify the fused trace window a chain
	// of plans forms: the trigger frame and source configuration of the
	// first plan in the chain. For an unchained plan they equal
	// TriggerFrame and Source.
	ChainStart  int64         `json:"chain_start"`
	ChainSource spec.ConfigID `json:"chain_source"`
	// SpanPhase and SpanPhaseName track the open phase span of the causal
	// trace layer. They ride in the plan JSON so a takeover's restored
	// plan keeps closing the phase span its snapshot captured open; both
	// are zero outside an active phase span.
	SpanPhase     int64  `json:"span_phase,omitempty"`
	SpanPhaseName string `json:"span_phase_name,omitempty"`
}

// buildPlan schedules a reconfiguration triggered at triggerFrame from
// source to target. Frame triggerFrame+1 begins the halt phase, matching
// Table 1's frame numbering (frame 0 carries only the failure signal).
func buildPlan(rs *spec.ReconfigSpec, seq int64, source, target spec.ConfigID, triggerFrame int64) (*plan, error) {
	srcCfg, ok := rs.Config(source)
	if !ok {
		return nil, fmt.Errorf("scram: unknown source configuration %q", source)
	}
	tgtCfg, ok := rs.Config(target)
	if !ok {
		return nil, fmt.Errorf("scram: unknown target configuration %q", target)
	}

	p := &plan{
		Seq:          seq,
		Source:       source,
		Target:       target,
		TriggerFrame: triggerFrame,
		HaltStart:    triggerFrame + 1,
		Apps:         make(map[spec.AppID]*appWindows),
		ChainStart:   triggerFrame,
		ChainSource:  source,
	}
	for _, app := range rs.Apps {
		aw := &appWindows{
			HaltStart: -1, HaltEnd: -1,
			PrepStart: -1, PrepEnd: -1,
			InitStart: -1, InitEnd: -1,
			Target: spec.SpecOff,
		}
		if app.Virtual {
			// Virtual applications are not reconfigured (section
			// 6.3); they follow the protocol only in recorded
			// status.
			aw.Target = app.Specs[0].ID
		}
		p.Apps[app.ID] = aw
	}

	if rs.Compression {
		if err := p.scheduleCompressed(rs, srcCfg, tgtCfg); err != nil {
			return nil, err
		}
		return p, nil
	}

	haltStarts, haltDur, haltLen, err := statics.PhasePlan(rs, srcCfg, spec.PhaseHalt)
	if err != nil {
		return nil, fmt.Errorf("scram: halt plan: %w", err)
	}
	p.HaltEnd = triggerFrame + int64(haltLen)
	for id, off := range haltStarts {
		aw := p.Apps[id]
		aw.HaltStart = p.HaltStart + int64(off)
		aw.HaltEnd = aw.HaltStart + int64(haltDur[id]) - 1
	}
	if err := p.scheduleEntry(rs, tgtCfg, p.HaltEnd+1); err != nil {
		return nil, err
	}
	return p, nil
}

// scheduleCompressed fills the plan from the section 6.3 relaxed schedule:
// per-application phase chaining with no global barriers. The global
// boundary fields are set to the envelope of the per-application windows
// (InitStart is the earliest initialize start, which gates retargeting).
func (p *plan) scheduleCompressed(rs *spec.ReconfigSpec, srcCfg, tgtCfg *spec.Configuration) error {
	sched, length, err := statics.CompressedSchedule(rs, srcCfg, tgtCfg)
	if err != nil {
		return fmt.Errorf("scram: compressed plan: %w", err)
	}
	base := p.TriggerFrame + 1
	p.HaltEnd, p.PrepEnd = p.TriggerFrame, p.TriggerFrame
	p.InitStart = base + int64(length) // lowered below by participants
	p.InitEnd = p.TriggerFrame + int64(length)
	p.PrepStart = p.InitEnd // informational only under compression
	// Sorted iteration keeps plan construction replay-stable (framedet:
	// map order must not shape the envelope computation below).
	for _, id := range det.SortedKeys(sched) {
		s := sched[id]
		aw, ok := p.Apps[id]
		if !ok {
			continue
		}
		if app, ok2 := rs.AppByID(id); ok2 && !app.Virtual {
			if t, ok3 := tgtCfg.SpecOf(id); ok3 {
				aw.Target = t
			} else {
				aw.Target = spec.SpecOff
			}
		}
		set := func(start, end int) (int64, int64) {
			if start < 0 {
				return -1, -1
			}
			return base + int64(start), base + int64(end)
		}
		aw.HaltStart, aw.HaltEnd = set(s.HaltStart, s.HaltEnd)
		aw.PrepStart, aw.PrepEnd = set(s.PrepStart, s.PrepEnd)
		aw.InitStart, aw.InitEnd = set(s.InitStart, s.InitEnd)
		if aw.HaltEnd > p.HaltEnd {
			p.HaltEnd = aw.HaltEnd
		}
		if aw.PrepEnd > p.PrepEnd {
			p.PrepEnd = aw.PrepEnd
		}
		if aw.InitStart >= 0 && aw.InitStart < p.InitStart {
			p.InitStart = aw.InitStart
		}
	}
	if p.PrepStart < p.InitStart {
		p.PrepStart = p.HaltEnd + 1
	}
	return nil
}

// scheduleEntry (re)schedules the prepare and initialize phases for the
// plan's target configuration, with the prepare phase starting at
// prepStart. It is used both at plan construction and at retargeting.
func (p *plan) scheduleEntry(rs *spec.ReconfigSpec, tgtCfg *spec.Configuration, prepStart int64) error {
	prepStarts, prepDur, prepLen, err := statics.PhasePlan(rs, tgtCfg, spec.PhasePrepare)
	if err != nil {
		return fmt.Errorf("scram: prepare plan: %w", err)
	}
	initStarts, initDur, initLen, err := statics.PhasePlan(rs, tgtCfg, spec.PhaseInit)
	if err != nil {
		return fmt.Errorf("scram: init plan: %w", err)
	}
	p.PrepStart = prepStart
	p.PrepEnd = prepStart + int64(prepLen) - 1
	p.InitStart = p.PrepEnd + 1
	p.InitEnd = p.PrepEnd + int64(initLen)

	for id, aw := range p.Apps {
		aw.PrepStart, aw.PrepEnd = -1, -1
		aw.InitStart, aw.InitEnd = -1, -1
		if app, ok := rs.AppByID(id); ok && !app.Virtual {
			if t, ok := tgtCfg.SpecOf(id); ok {
				aw.Target = t
			} else {
				aw.Target = spec.SpecOff
			}
		}
	}
	for id, off := range prepStarts {
		aw := p.Apps[id]
		aw.PrepStart = p.PrepStart + int64(off)
		aw.PrepEnd = aw.PrepStart + int64(prepDur[id]) - 1
	}
	for id, off := range initStarts {
		aw := p.Apps[id]
		aw.InitStart = p.InitStart + int64(off)
		aw.InitEnd = aw.InitStart + int64(initDur[id]) - 1
	}
	return nil
}

// retarget reschedules the plan toward a new target configuration. It may
// only be called while initialization has not begun; the prepare phase
// restarts at frameNow+1 (or after the halt phase completes, whichever is
// later). Under compression the whole relaxed entry schedule is rebuilt and
// shifted so no prepare begins before frameNow+1.
func (p *plan) retarget(rs *spec.ReconfigSpec, newTarget spec.ConfigID, seq, frameNow int64) error {
	tgtCfg, ok := rs.Config(newTarget)
	if !ok {
		return fmt.Errorf("scram: unknown retarget configuration %q", newTarget)
	}
	p.Target = newTarget
	p.Seq = seq
	p.Retargeted = true
	if rs.Compression {
		srcCfg, ok := rs.Config(p.Source)
		if !ok {
			return fmt.Errorf("scram: unknown source configuration %q", p.Source)
		}
		// Rebuild the relaxed schedule for the new target, keep the
		// already-executed halt windows, and uniformly shift the entry
		// windows so none starts before frameNow+1.
		halts := make(map[spec.AppID]*appWindows, len(p.Apps))
		for id, aw := range p.Apps {
			cp := *aw
			halts[id] = &cp
		}
		if err := p.scheduleCompressed(rs, srcCfg, tgtCfg); err != nil {
			return err
		}
		var shift int64
		for _, id := range det.SortedKeys(p.Apps) {
			if aw := p.Apps[id]; aw.PrepStart >= 0 && frameNow+1-aw.PrepStart > shift {
				shift = frameNow + 1 - aw.PrepStart
			}
		}
		for id, aw := range p.Apps {
			if prev, ok := halts[id]; ok {
				aw.HaltStart, aw.HaltEnd = prev.HaltStart, prev.HaltEnd
			}
			if aw.PrepStart >= 0 {
				aw.PrepStart += shift
				aw.PrepEnd += shift
			}
			if aw.InitStart >= 0 {
				aw.InitStart += shift
				aw.InitEnd += shift
			}
		}
		p.PrepEnd += shift
		p.InitStart += shift
		p.InitEnd += shift
		return nil
	}
	prepStart := frameNow + 1
	if min := p.HaltEnd + 1; prepStart < min {
		prepStart = min
	}
	return p.scheduleEntry(rs, tgtCfg, prepStart)
}

// phaseAt returns the protocol phase in effect at the given frame.
func (p *plan) phaseAt(frameNum int64) spec.Phase {
	switch {
	case frameNum <= p.TriggerFrame:
		return spec.PhaseNormal
	case frameNum <= p.HaltEnd:
		return spec.PhaseHalt
	case frameNum <= p.PrepEnd:
		return spec.PhasePrepare
	default:
		return spec.PhaseInit
	}
}
