package scram

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
	"repro/internal/spectest"
)

// TestPlanInvariantsProperty checks, over random specifications and all
// their transition pairs, the structural invariants every plan must have:
// phases abut with no gaps, every participating application's window lies
// inside its phase, windows respect the declared durations, and the total
// window matches the static RequiredWindow computation.
func TestPlanInvariantsProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rs := spectest.Random(rng, 1+rng.Intn(5), 2+rng.Intn(3), 2+rng.Intn(3))
		trigger := int64(rng.Intn(100))
		for _, tr := range rs.Transitions {
			p, err := buildPlan(rs, 1, tr.From, tr.To, trigger)
			if err != nil {
				t.Fatalf("seed %d %s->%s: %v", seed, tr.From, tr.To, err)
			}
			// Phases abut.
			if p.HaltStart != trigger+1 {
				t.Fatalf("halt starts at %d, want %d", p.HaltStart, trigger+1)
			}
			if p.PrepStart != p.HaltEnd+1 || p.InitStart != p.PrepEnd+1 {
				t.Fatalf("phases do not abut: %+v", p)
			}
			if p.HaltEnd < p.HaltStart || p.PrepEnd < p.PrepStart || p.InitEnd < p.InitStart {
				t.Fatalf("negative phase length: %+v", p)
			}
			// The full window matches the static analysis (buffer
			// policy: no retarget allowance).
			window := p.InitEnd - p.TriggerFrame + 1
			if tr.MaxFrames < int(window) {
				t.Fatalf("seed %d %s->%s: plan window %d exceeds declared bound %d",
					seed, tr.From, tr.To, window, tr.MaxFrames)
			}
			// Per-app windows stay inside their phases and respect
			// declared durations.
			srcCfg, _ := rs.Config(tr.From)
			tgtCfg, _ := rs.Config(tr.To)
			for id, aw := range p.Apps {
				app, ok := rs.AppByID(id)
				if !ok || app.Virtual {
					continue
				}
				if aw.HaltStart >= 0 {
					if aw.HaltStart < p.HaltStart || aw.HaltEnd > p.HaltEnd {
						t.Fatalf("%s halt window [%d,%d] outside phase [%d,%d]",
							id, aw.HaltStart, aw.HaltEnd, p.HaltStart, p.HaltEnd)
					}
					srcSpec, _ := app.Spec(srcCfg.Assignment[id])
					if got := aw.HaltEnd - aw.HaltStart + 1; got != int64(srcSpec.HaltFrames) {
						t.Fatalf("%s halt duration %d, declared %d", id, got, srcSpec.HaltFrames)
					}
				}
				if aw.InitStart >= 0 {
					if aw.InitStart < p.InitStart || aw.InitEnd > p.InitEnd {
						t.Fatalf("%s init window [%d,%d] outside phase [%d,%d]",
							id, aw.InitStart, aw.InitEnd, p.InitStart, p.InitEnd)
					}
					tgtSpec, _ := app.Spec(tgtCfg.Assignment[id])
					if got := aw.InitEnd - aw.InitStart + 1; got != int64(tgtSpec.InitFrames) {
						t.Fatalf("%s init duration %d, declared %d", id, got, tgtSpec.InitFrames)
					}
				}
				// Dependency ordering within the init phase.
				for _, d := range rs.DepsForPhase(spec.PhaseInit) {
					if d.Dependent != id || aw.InitStart < 0 {
						continue
					}
					indep, ok := p.Apps[d.Independent]
					if !ok || indep.InitStart < 0 {
						continue
					}
					if aw.InitStart <= indep.InitEnd {
						t.Fatalf("dependency violated: %s init [%d,%d] overlaps %s init end %d",
							id, aw.InitStart, aw.InitEnd, d.Independent, indep.InitEnd)
					}
				}
			}
		}
	}
}
