package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// frameDetPkgs names the frame-deterministic packages: code in them
// executes inside the frame-synchronous abstraction (or computes the static
// schedules that abstraction replays), so its behaviour must be a pure
// function of committed state and frame inputs.
var frameDetPkgs = map[string]bool{
	"core":       true,
	"scram":      true,
	"fta":        true,
	"spec":       true,
	"statics":    true,
	"avionics":   true,
	"masking":    true,
	"telemetry":  true,
	"membership": true,
}

// FrameDet flags nondeterminism inside frame-deterministic packages: wall
// clock reads, the global math/rand generator, and map iteration whose
// order leaks into state, stable storage, or an output.
var FrameDet = &Analyzer{
	Name: "framedet",
	Doc: "In frame-deterministic packages (core, scram, fta, spec, statics, " +
		"avionics, masking, telemetry, membership) flag time.Now/time.Since, global math/rand use, and " +
		"range over a map whose body writes state, calls a mutator, or returns — " +
		"iteration-order nondeterminism breaks replay and replica agreement.",
	Run: runFrameDet,
}

// mutatorPrefixes classify method names that (by repository convention)
// mutate their receiver or an external resource. A call to one of these on
// a variable declared outside a map-range loop makes the loop's effect
// order-dependent.
var mutatorPrefixes = []string{
	"put", "set", "add", "append", "delete", "remove", "write", "publish",
	"signal", "commit", "restore", "discard", "stage", "push", "insert",
	"emit", "record", "fail", "halt",
}

func isMutatorName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range mutatorPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func runFrameDet(pass *Pass) error {
	if !frameDetPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallClock(pass, n)
			case *ast.SelectorExpr:
				checkGlobalRand(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, file)
			}
			return true
		})
	}
	return nil
}

// checkWallClock flags calls to time.Now and time.Since: frame-deterministic
// code must take time from the frame counter, never the wall clock.
func checkWallClock(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	if fn.Name() == "Now" || fn.Name() == "Since" {
		pass.Reportf(call.Pos(), "call to time.%s in frame-deterministic package %q: take time from the frame counter, not the wall clock", fn.Name(), pass.Pkg.Name())
	}
}

// checkGlobalRand flags package-level math/rand functions (the implicitly
// seeded global generator). Explicitly seeded generators via rand.New /
// rand.NewSource stay legal: they are how campaigns get reproducible
// randomness.
func checkGlobalRand(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil || strings.HasPrefix(fn.Name(), "New") {
		return
	}
	pass.Reportf(sel.Pos(), "use of global math/rand generator %s.%s in frame-deterministic package %q: use an explicitly seeded rand.New(rand.NewSource(seed))", path, fn.Name(), pass.Pkg.Name())
}

// checkMapRange flags a range over a map whose body makes the iteration
// order observable: writing through a variable declared outside the loop,
// calling a mutator method on one, appending to an output slice that is
// not sorted afterwards, or returning out of the loop.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, file *ast.File) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	constReturns := onlyConstantReturns(pass, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if !constReturns {
				pass.Reportf(n.Pos(), "return inside range over map %s: which iteration returns first is nondeterministic; iterate sorted keys", exprString(pass, rng.X))
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				id := rootIdent(lhs)
				v := outerVar(pass, id, rng)
				if v == nil {
					continue
				}
				if isAppendTo(n, lhs) && sortedAfter(pass, file, v, rng) {
					continue
				}
				if constMapInsert(pass, n, lhs) {
					continue
				}
				if keyedMapInsert(pass, n, lhs, rng) {
					continue
				}
				pass.Reportf(n.Pos(), "range over map %s writes %s declared outside the loop: iteration order is nondeterministic; iterate sorted keys", exprString(pass, rng.X), v.Name())
			}
		case *ast.IncDecStmt:
			if v := outerVar(pass, rootIdent(n.X), rng); v != nil {
				pass.Reportf(n.Pos(), "range over map %s writes %s declared outside the loop: iteration order is nondeterministic; iterate sorted keys", exprString(pass, rng.X), v.Name())
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !isMutatorName(sel.Sel.Name) {
				return true
			}
			if v := outerVar(pass, rootIdent(sel.X), rng); v != nil {
				pass.Reportf(n.Pos(), "range over map %s calls mutator %s.%s: effect order is nondeterministic; iterate sorted keys", exprString(pass, rng.X), v.Name(), sel.Sel.Name)
			}
		}
		return true
	})
}

// onlyConstantReturns reports whether every return statement directly inside
// the range body returns the same tuple of compile-time constants (or nil).
// Such loops implement any/all-style predicates: the early exit yields an
// identical result no matter which iteration triggers it, so iteration
// order never becomes observable through the return value.
func onlyConstantReturns(pass *Pass, rng *ast.RangeStmt) bool {
	ok := true
	seen := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			sig := ""
			for _, res := range n.Results {
				tv, found := pass.TypesInfo.Types[res]
				switch {
				case found && tv.Value != nil:
					sig += tv.Value.ExactString() + ";"
				case found && tv.IsNil():
					sig += "nil;"
				default:
					ok = false
					return false
				}
			}
			if seen == "" {
				seen = sig
			} else if seen != sig {
				ok = false
			}
		}
		return true
	})
	return ok
}

// isAppendTo reports whether the assignment writes `lhs = append(lhs-ish,
// ...)` — the collecting half of the collect-then-sort idiom.
func isAppendTo(assign *ast.AssignStmt, lhs ast.Expr) bool {
	if len(assign.Rhs) != len(assign.Lhs) {
		return false
	}
	var rhs ast.Expr
	for i, l := range assign.Lhs {
		if l == lhs {
			rhs = assign.Rhs[i]
		}
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	return ok && fn.Name == "append"
}

// constMapInsert reports whether the assignment stores a compile-time
// constant into a map element (`seen[k] = true`). Constant inserts commute:
// the map's final contents are the same whatever order the loop visits keys
// in, so iteration order never becomes observable.
func constMapInsert(pass *Pass, assign *ast.AssignStmt, lhs ast.Expr) bool {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return false
	}
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(idx.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	for i, l := range assign.Lhs {
		if l == lhs {
			tv, found := pass.TypesInfo.Types[assign.Rhs[i]]
			return found && tv.Value != nil
		}
	}
	return false
}

// keyedMapInsert reports whether the assignment stores into a map element
// indexed by the loop's own key variable (`out[k] = f(v)` inside
// `for k, v := range m`). Each iteration writes a distinct key, so the
// inserts commute and the map's final contents are iteration-order
// independent — provided the stored value cannot observe order, which we
// require conservatively: the right-hand side contains no function calls
// and the body never reassigns the key variable.
func keyedMapInsert(pass *Pass, assign *ast.AssignStmt, lhs ast.Expr, rng *ast.RangeStmt) bool {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return false
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyVar, ok := pass.TypesInfo.ObjectOf(keyID).(*types.Var)
	if !ok {
		return false
	}
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(idx.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	id, ok := idx.Index.(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(id) != keyVar {
		return false
	}
	// The stored value must be order-blind: reject any call (it could
	// mutate state the next iteration reads) but allow pure expressions
	// over the loop variables and pre-loop state.
	pure := true
	for i, l := range assign.Lhs {
		if l != lhs {
			continue
		}
		ast.Inspect(assign.Rhs[i], func(n ast.Node) bool {
			if _, isCall := n.(*ast.CallExpr); isCall {
				pure = false
			}
			return pure
		})
	}
	if !pure {
		return false
	}
	// Distinctness of keys relies on the key variable keeping the value
	// the range gave it; a body that reassigns it forfeits the exemption.
	reassigned := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == keyVar {
					reassigned = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == keyVar {
				reassigned = true
			}
		}
		return !reassigned
	})
	return !reassigned
}

// sortedAfter reports whether a sort.* or slices.* call with v as first
// argument appears after the range statement ends — the sorting half of the
// collect-then-sort idiom, which re-establishes determinism no matter what
// order the loop appended in. The search is positional within the file:
// loop variables are function-scoped, so a later sort of the same variable
// object can only be in the same function, after the loop completes.
func sortedAfter(pass *Pass, file *ast.File, v *types.Var, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, isPkg := pass.TypesInfo.Uses[pkg].(*types.PkgName); !isPkg ||
			(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
			return true
		}
		if arg := rootIdent(call.Args[0]); arg != nil && pass.TypesInfo.Uses[arg] == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootIdent returns the identifier at the base of an lvalue-ish expression
// (s.f, m[k], *p, (x)), or nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// outerVar returns the variable id refers to when it is declared outside
// the range statement (an enclosing local, parameter, receiver, or package
// variable), or nil for loop-local variables and non-variables.
func outerVar(pass *Pass, id *ast.Ident, rng *ast.RangeStmt) *types.Var {
	if id == nil {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
		return nil
	}
	return v
}

// calleeFunc resolves the function or method a call invokes, when it is a
// direct call through an identifier or selector.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// exprString renders a short source form of an expression for diagnostics.
func exprString(pass *Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(pass, x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(pass, x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(pass, x.Fun) + "()"
	case *ast.ParenExpr:
		return exprString(pass, x.X)
	case *ast.StarExpr:
		return "*" + exprString(pass, x.X)
	default:
		return "expression"
	}
}

// constString returns the compile-time string value of an expression, if it
// has one.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
