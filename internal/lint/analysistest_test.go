package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation comment from a fixture line and quotedRe
// the quoted (or backquoted) regular expressions inside it. The convention
// follows golang.org/x/tools/go/analysis/analysistest: a comment
//
//	// want "regexp" `regexp`
//
// on a line declares that each regexp must match the message of exactly one
// diagnostic reported on that line, and that the line reports no other
// diagnostics.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")
)

// expectation is one unsatisfied want: a regexp awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans every fixture file for want comments.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRe.FindAllStringSubmatch(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted regexp", e.Name(), i+1)
			}
			for _, q := range quoted {
				src := q[1]
				if src == "" {
					src = q[2]
				}
				re, err := regexp.Compile(src)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, src, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// runFixture type-checks testdata/src/<fixture> with the real module's
// packages importable, runs the given analyzers together, and checks the
// diagnostics against the fixture's want comments — every want matched,
// nothing unexpected.
func runFixture(t *testing.T, as []*Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	wants := parseWants(t, dir)

	loader := NewLoader(".")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := Run(as, []*Package{pkg})
	if err != nil {
		t.Fatalf("running analyzers on fixture %s: %v", fixture, err)
	}

	var problems []string
	for _, d := range diags {
		base := filepath.Base(d.File)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s:%d: %s", base, d.Line, d.Message))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("no diagnostic at %s:%d matched %q", w.file, w.line, w.re))
		}
	}
	if len(problems) > 0 {
		t.Errorf("fixture %s:\n  %s", fixture, strings.Join(problems, "\n  "))
	}
}

func TestFrameDetFixture(t *testing.T)  { runFixture(t, []*Analyzer{FrameDet}, "framedet") }
func TestStableErrFixture(t *testing.T) { runFixture(t, []*Analyzer{StableErr}, "stableerr") }
func TestNoFreeGoroutineFixture(t *testing.T) {
	runFixture(t, []*Analyzer{NoFreeGoroutine}, "nofreegoroutine")
}
func TestNoFreeGoroutineServeFixture(t *testing.T) {
	runFixture(t, []*Analyzer{NoFreeGoroutine}, "serve")
}
func TestStatusDisciplineFixture(t *testing.T) {
	runFixture(t, []*Analyzer{StatusDiscipline}, "statusdiscipline")
}

// TestAllocFreeFixture pins the interprocedural layer end to end: the
// callgraph must reach a hook through func-value dispatch on a registered
// method value and a task through interface dispatch, every allocation
// class must be flagged there, and the parameter/field-backed append
// exemption, pointer-shaped boxing exemption, allow hatch, and
// unreachable-code silence must all hold.
func TestAllocFreeFixture(t *testing.T) { runFixture(t, []*Analyzer{AllocFree}, "allocfree") }

// TestEpochGuardFixture pins the epoch discipline against the real
// scram.Command type imported from the module.
func TestEpochGuardFixture(t *testing.T) { runFixture(t, []*Analyzer{EpochGuard}, "epochguard") }

// TestTelemetryFixture pins the telemetry package's membership in both the
// frame-deterministic and the frame-synchronous scopes: an event-recording
// helper that ranges over an attribute map, reads the wall clock, or spawns
// a goroutine must be flagged exactly as in the kernel packages.
func TestTelemetryFixture(t *testing.T) {
	runFixture(t, []*Analyzer{FrameDet, NoFreeGoroutine}, "telemetry")
}

// TestMembershipFixture pins the membership package's lint scope: it is
// frame-deterministic and frame-synchronous like the kernel packages, and
// its record codec and manager errors are fail-stop boundaries the stableerr
// analyzer guards.
func TestMembershipFixture(t *testing.T) {
	runFixture(t, []*Analyzer{FrameDet, NoFreeGoroutine, StableErr}, "membership")
}

// TestFrameDetSkipsOtherPackages pins the package-name gate: the same
// nondeterminism that fires inside a frame-deterministic package is legal in
// packages outside the frame abstraction (campaign drivers, tooling).
func TestFrameDetSkipsOtherPackages(t *testing.T) {
	loader := NewLoader(".")
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "freepkg"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Analyzer{FrameDet, NoFreeGoroutine}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("packages outside the frame model must not be flagged, got %d diagnostics: %v", len(diags), diags)
	}
}
