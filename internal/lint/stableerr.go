package lint

import (
	"go/ast"
	"go/types"
)

// StableErr flags dropped errors from the stable-storage and bus APIs. The
// fail-stop guarantee of the architecture depends on every storage or bus
// fault propagating to a halt path (or to the caller, which owns one): an
// error assigned to _ or discarded in an expression statement silently
// converts a detectable fault into wrong behaviour, exactly what the
// fail-stop abstraction exists to prevent.
var StableErr = &Analyzer{
	Name: "stableerr",
	Doc: "Errors returned by stable.Store/Region/ReplicatedStore/Medium, " +
		"bus.Bus/Endpoint, scram command helpers, and the membership manager and " +
		"record codecs must be used — returned, inspected, or fed to a halt " +
		"path — never assigned to _ or dropped.",
	Run: runStableErr,
}

// stableErrRecvTypes lists, per defining package, the receiver types whose
// error-returning methods are in scope.
var stableErrRecvTypes = map[string]map[string]bool{
	"repro/internal/stable": {
		"Store":           true,
		"Region":          true,
		"ReplicatedStore": true,
		"Medium":          true,
		"MemMedium":       true,
		"FaultyMedium":    true,
	},
	"repro/internal/bus": {
		"Bus":      true,
		"Endpoint": true,
	},
	"repro/internal/membership": {
		"Manager": true,
	},
}

// stableErrFuncs lists in-scope package-level functions.
var stableErrFuncs = map[string]map[string]bool{
	"repro/internal/scram": {
		"WriteCommand": true,
		"ReadCommand":  true,
	},
	"repro/internal/membership": {
		"EncodeRecord": true,
		"DecodeRecord": true,
		"Verify":       true,
	},
}

func runStableErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, idx := stableErrCallee(pass, call); idx >= 0 {
						pass.Reportf(call.Pos(), "error from %s is dropped: stable-storage and bus errors must reach a halt path or the caller (fail-stop boundary)", name)
					}
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlankErrAssign flags assignments whose right side is a single
// in-scope call and whose identifier at the call's error position is blank.
func checkBlankErrAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, idx := stableErrCallee(pass, call)
	if idx < 0 || idx >= len(assign.Lhs) {
		return
	}
	if id, ok := assign.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(assign.Pos(), "error from %s is assigned to _: stable-storage and bus errors must reach a halt path or the caller (fail-stop boundary)", name)
	}
}

// stableErrCallee reports whether the call targets an in-scope API; it
// returns a printable callee name and the index of the error result, or -1
// when the call is out of scope or returns no error.
func stableErrCallee(pass *Pass, call *ast.CallExpr) (string, int) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", -1
	}
	sig := fn.Type().(*types.Signature)
	errIdx := errorResultIndex(sig)
	if errIdx < 0 {
		return "", -1
	}
	pkgPath := fn.Pkg().Path()
	if recv := sig.Recv(); recv != nil {
		recvName := receiverTypeName(recv.Type())
		if types, ok := stableErrRecvTypes[pkgPath]; ok && types[recvName] {
			return "(" + pkgPath + "." + recvName + ")." + fn.Name(), errIdx
		}
		return "", -1
	}
	if funcs, ok := stableErrFuncs[pkgPath]; ok && funcs[fn.Name()] {
		return pkgPath + "." + fn.Name(), errIdx
	}
	return "", -1
}

// errorResultIndex returns the index of the last result of type error, or
// -1 when the signature returns none.
func errorResultIndex(sig *types.Signature) int {
	results := sig.Results()
	for i := results.Len() - 1; i >= 0; i-- {
		if named, ok := results.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}

// receiverTypeName returns the name of a method receiver's base type,
// through a pointer if present.
func receiverTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
