package lint

import "go/ast"

// frameSyncPkgs names the packages implementing the frame-synchronous
// model. The model has no free-running concurrency: everything executes in
// lock step with the frame, so a `go` statement in these packages is either
// a bug or an audited exception (the frame scheduler's worker launches, the
// fail-stop pool's monitored goroutines) that must carry a //lint:allow
// annotation naming its justification.
var frameSyncPkgs = map[string]bool{
	"scram":      true,
	"core":       true,
	"fta":        true,
	"frame":      true,
	"failstop":   true,
	"telemetry":  true,
	"membership": true,
	// campaign is not frame-synchronous, but its worker pool is the one
	// place the simulator deliberately multiplies goroutines; scoping the
	// analyzer over it forces every launch to carry an audited allow.
	"campaign": true,
	// serve (the live telemetry plane) is likewise off-path by design, but
	// it sits right next to the frame loop's publish hook; scoping it keeps
	// its listener launch — and any future one — audited.
	"serve": true,
	// fleet multiplexes many frame-synchronous systems over shard workers;
	// scoping it forces every launch (the scheduler loop, the shard
	// workers) to carry an audited allow.
	"fleet": true,
	// chaos drives whole hosts through crash-restart storms; it must stay
	// synchronous itself (the hosts own all concurrency), so any launch
	// added here needs an audited allow.
	"chaos": true,
}

// NoFreeGoroutine forbids goroutine launches in the frame-synchronous
// packages.
var NoFreeGoroutine = &Analyzer{
	Name: "nofreegoroutine",
	Doc: "Forbid go statements in the frame-synchronous packages (scram, core, " +
		"fta, frame, failstop, telemetry, membership): the model has no free-running concurrency; " +
		"audited launches carry a //lint:allow nofreegoroutine annotation.",
	Run: runNoFreeGoroutine,
}

func runNoFreeGoroutine(pass *Pass) error {
	if !frameSyncPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "go statement in frame-synchronous package %q: the fail-stop frame model has no free-running concurrency", pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
