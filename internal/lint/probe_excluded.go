//go:build archlint_probe

// This file is a loader test probe, never part of a real build: the tag
// above excludes it, and TestLoadHonorsBuildConstraints asserts the loader
// (which takes its file list from `go list`) leaves it out. If the loader
// ever parsed it, the test would see its filename among the package files.
package lint

// probeExcluded exists only so the file has a declaration to load.
func probeExcluded() string { return "never built" }
