package lint

import (
	"go/ast"
	"go/types"
)

// commandTypePkg and commandTypeName identify the configuration_status
// record whose construction the analyzer polices.
const (
	commandTypePkg  = "repro/internal/scram"
	commandTypeName = "Command"
)

// EpochGuard enforces the epoch discipline on scram.Command construction:
// the Epoch field must be sourced from the live membership view (a
// variable, field, or call that carries the view's epoch), never written as
// a literal or recomputed with arithmetic, and never left implicitly zero
// while other fields are set. A command stamped with a stale or fabricated
// epoch is exactly how a deposed kernel instance would roll applications
// back after a takeover — the no-split-brain argument (DESIGN.md §11)
// depends on every command carrying the epoch of the view it was planned
// under.
var EpochGuard = &Analyzer{
	Name: "epochguard",
	Doc: "Every scram.Command composite literal that sets any field must " +
		"source Epoch from the membership view: a missing Epoch is an implicit " +
		"zero that pre-membership replicas would obey, a literal or arithmetic " +
		"epoch fabricates membership history. The empty Command{} zero value " +
		"(error returns, variable initialization) stays legal.",
	Run: runEpochGuard,
}

func runEpochGuard(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isCommandLit(pass, lit) {
				return true
			}
			checkCommandEpoch(pass, lit)
			return true
		})
	}
	return nil
}

// isCommandLit reports whether the composite literal builds a
// scram.Command (including through an alias or a fixture package that
// imports the real type).
func isCommandLit(pass *Pass, lit *ast.CompositeLit) bool {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == commandTypeName &&
		obj.Pkg() != nil && obj.Pkg().Path() == commandTypePkg
}

// checkCommandEpoch applies the discipline to one Command literal.
func checkCommandEpoch(pass *Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return // the zero value: error returns, not a command anyone obeys
	}
	var epoch ast.Expr
	keyed := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyed = true
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Epoch" {
			epoch = kv.Value
		}
	}
	if !keyed {
		pass.Reportf(lit.Pos(), "scram.Command built with positional fields: use keyed fields so the Epoch source stays auditable")
		return
	}
	if epoch == nil {
		pass.Reportf(lit.Pos(), "scram.Command sets fields but not Epoch: the implicit zero epoch predates every membership view; stamp the command with the view's epoch")
		return
	}
	if tv, ok := pass.TypesInfo.Types[epoch]; ok && tv.Value != nil {
		pass.Reportf(epoch.Pos(), "scram.Command.Epoch is the literal %s: fabricated membership history; stamp the command with the view's epoch", tv.Value)
		return
	}
	if arith := findArith(epoch); arith != nil {
		pass.Reportf(arith.Pos(), "scram.Command.Epoch is computed with arithmetic: epochs advance only through the membership view; stamp the command with the view's epoch unmodified")
	}
}

// findArith returns the first binary or unary arithmetic node inside the
// expression, or nil when it is a plain variable, selector, index, or call
// chain.
func findArith(e ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			found = n
			return false
		case *ast.UnaryExpr:
			found = n
			return false
		case *ast.CallExpr:
			// A call's internals are its own business; the value it
			// returns is presumed to be a view epoch.
			return false
		}
		return true
	})
	return found
}
