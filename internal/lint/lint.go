// Package lint implements archlint, a suite of static analyzers that
// enforce the repository's fail-stop and frame-determinism invariants on
// the Go source itself.
//
// The assurance argument of Strunk, Knight and Aiello rests on statically
// discharged proof obligations over the *specification* (internal/statics
// reproduces those), but nothing in that layer checks that the Go
// *implementation* respects the model it was proved against: code executed
// inside the frame-synchronous abstraction must not consult wall clocks or
// unseeded randomness, stable-storage errors must propagate to a fail-stop
// halt rather than be dropped, the kernel packages must not spawn
// free-running goroutines, and configuration_status variables may only be
// written through the kernel's own helpers. Each analyzer in this package
// turns one of those implementation-level obligations into checkable
// linguistic structure, in the spirit of De Florio and Deconinck's REL.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate to the real framework when the
// dependency is available; it is self-contained on the standard library so
// the module builds offline.
//
// # Suppression
//
// A diagnostic may be suppressed per site with a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or on the line immediately above it. The
// reason is mandatory: a directive without one does not suppress anything.
// Suppressions are how audited exceptions (the frame scheduler's pacing
// clock, the fail-stop pool's monitored goroutine launches) stay legal
// while remaining greppable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one archlint analysis and its checking function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -analyzers selection,
	// and //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// Interprocedural marks analyzers that consult the frame-reachable
	// callgraph; Run computes it once per invocation when any selected
	// analyzer needs it.
	Interprocedural bool
}

// A Pass provides one analyzer with the parsed, type-checked source of a
// single package and collects the diagnostics the analyzer reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Reach is the frame-reachable set computed over the whole Run's
	// package set; nil for runs with no interprocedural analyzer.
	Reach *Reach

	allow map[allowKey]bool
	diags *[]Diagnostic
}

// A Diagnostic is one analyzer finding at one source position.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// allowKey locates one //lint:allow directive: the analyzer it names and
// the file line it governs.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// Reportf records a diagnostic at pos unless an allow directive for this
// analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow[allowKey{position.Filename, position.Line, p.Analyzer.Name}] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirectives scans a file's comments for //lint:allow directives and
// records, for each, the pair of lines it suppresses: its own line (for
// trailing comments) and the line below it (for directives placed above the
// offending statement).
func allowDirectives(fset *token.FileSet, file *ast.File, into map[allowKey]bool) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) < 2 {
				// No reason given: the directive is inert by design, so
				// every exception carries its justification in-tree.
				continue
			}
			pos := fset.Position(c.Pos())
			into[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			into[allowKey{pos.Filename, pos.Line + 1, fields[0]}] = true
		}
	}
}

// Run applies each analyzer to each package and returns the combined
// diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var reach *Reach
	for _, a := range analyzers {
		if a.Interprocedural {
			reach = NewReach(pkgs)
			break
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := make(map[allowKey]bool)
		for _, f := range pkg.Files {
			allowDirectives(pkg.Fset, f, allow)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Reach:     reach,
				allow:     allow,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Analyzers returns the full archlint suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FrameDet,
		StableErr,
		NoFreeGoroutine,
		StatusDiscipline,
		AllocFree,
		EpochGuard,
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// list, or the full suite for an empty list.
func Select(list string) ([]*Analyzer, error) {
	if list == "" {
		return Analyzers(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no analyzers selected from %q", list)
	}
	return out, nil
}
