package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoaderLoadsModule checks the source-based loader end to end: every
// package in the module resolves, parses, and type-checks, with syntax and
// type information recorded for analysis.
func TestLoaderLoadsModule(t *testing.T) {
	l := NewLoader("")
	pkgs, err := l.Load("repro/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages for repro/...")
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		if p.TypesInfo == nil || p.Types == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded without syntax or type information", p.PkgPath)
		}
		byPath[p.PkgPath] = p
	}
	for _, want := range []string{
		"repro/internal/core",
		"repro/internal/scram",
		"repro/internal/stable",
	} {
		if byPath[want] == nil {
			t.Errorf("package %s missing from repro/... load", want)
		}
	}
}

// TestModuleClean is the self-application gate: the archlint suite must
// report nothing on the repository's own production code beyond the
// committed alloc-discipline baseline (lint/allocfree.baseline). Every
// audited exception carries a //lint:allow annotation and every tolerated
// backlog finding a baseline entry, so a regression here means new
// nondeterminism, a new frame-path allocation, or a missing justification.
func TestModuleClean(t *testing.T) {
	l := NewLoader("")
	pkgs, err := l.Load("repro/...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(Analyzers(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	root, err := l.ModuleDir()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "lint", "allocfree.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range base.Filter(diags, root) {
		t.Errorf("module is not archlint-clean (and not in the baseline): %s", d)
	}
}

// TestSelect covers analyzer selection for the -analyzers flag.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := Select("framedet, stableerr")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "framedet" || two[1].Name != "stableerr" {
		t.Errorf("Select(\"framedet, stableerr\") = %v", two)
	}
	if _, err := Select("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Errorf("Select(\"nosuch\") error = %v; want unknown analyzer", err)
	}
}

// TestAllowRequiresReason pins the design rule that a bare //lint:allow
// directive with no justification suppresses nothing.
func TestAllowRequiresReason(t *testing.T) {
	l := NewLoader(".")
	pkg, err := l.LoadDir("testdata/src/allowbare")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Analyzer{NoFreeGoroutine}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (a reason-less allow directive must not suppress)", len(diags))
	}
	if !strings.Contains(diags[0].Message, "go statement") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}
