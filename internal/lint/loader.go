package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// A Loader resolves and type-checks packages from Go source alone. It
// shells out to `go list` for build-constraint and module resolution but
// performs all type checking itself with go/types, so it needs no
// pre-compiled export data and works in offline environments where
// golang.org/x/tools is unavailable.
type Loader struct {
	// Dir is the working directory for `go list` invocations (any
	// directory inside the module). Empty means the process directory.
	Dir string

	fset     *token.FileSet
	checked  map[string]*checkedPackage
	listed   map[string]*listedPackage
	wantInfo map[string]*types.Info
}

// checkedPackage records one completed type check. Every package is
// checked exactly once per loader, so importers always observe a single
// types.Package identity for each path.
type checkedPackage struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:      dir,
		fset:     token.NewFileSet(),
		checked:  make(map[string]*checkedPackage),
		listed:   make(map[string]*listedPackage),
		wantInfo: make(map[string]*types.Info),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleDir returns the module root directory, the base baseline entries
// and allowance reports relativize file paths against.
func (l *Loader) ModuleDir() (string, error) {
	out, err := l.goList("-m", "-f", "{{.Dir}}")
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(out)), nil
}

// goList runs `go list` with the given arguments and returns its stdout.
func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	// The loader type-checks from source with pure Go tooling: resolve
	// build constraints with cgo off, so packages like net select their
	// pure-Go implementation instead of cgo files referencing generated
	// _C_ declarations no go/types checker can see.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.Bytes(), nil
}

// listDeps resolves the given patterns and records every package in their
// dependency closure. `go list -deps` emits dependencies before dependents,
// so recording preserves a valid type-checking order.
func (l *Loader) listDeps(patterns []string) error {
	out, err := l.goList(append([]string{"-deps", "-json=ImportPath,Name,Dir,GoFiles,Standard,Error"}, patterns...)...)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, dup := l.listed[p.ImportPath]; !dup {
			l.listed[p.ImportPath] = &p
		}
	}
}

// Import makes the loader a types.Importer, so fixture packages and
// dependents can resolve their imports against it.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if cp, ok := l.checked[path]; ok {
		return cp.pkg, nil
	}
	if _, ok := l.listed[path]; !ok {
		// Standard-library packages import their vendored dependencies by
		// source path ("golang.org/x/net/..."), but go list names those
		// packages "vendor/golang.org/x/net/...": map the source path onto
		// the vendored listing first (net and net/http pull several in).
		if _, ok := l.listed["vendor/"+path]; ok {
			path = "vendor/" + path
			if cp, ok := l.checked[path]; ok {
				return cp.pkg, nil
			}
		} else if err := l.listDeps([]string{path}); err != nil {
			// A path outside every closure listed so far (a fixture
			// importing a package no target depends on) resolves its
			// closure on demand.
			return nil, err
		}
	}
	cp, err := l.check(path)
	if err != nil {
		return nil, err
	}
	return cp.pkg, nil
}

// parseFiles parses the named files with comments.
func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// check type-checks the listed package at path exactly once (dependencies
// first, via the loader acting as its own importer). Packages registered in
// wantInfo — analysis targets and fixtures' module imports — get their
// syntax recorded for later inspection.
func (l *Loader) check(path string) (*checkedPackage, error) {
	if cp, ok := l.checked[path]; ok {
		return cp, nil
	}
	p, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %q not listed", path)
	}
	files, err := l.parseFiles(p.Dir, p.GoFiles)
	if err != nil {
		return nil, err
	}
	info := l.wantInfo[path]
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	cp := &checkedPackage{pkg: pkg, files: files, info: info}
	l.checked[path] = cp
	return cp, nil
}

// Load resolves the patterns, type-checks every matching package (and,
// transitively, everything it imports), and returns the matching packages
// ready for analysis. Test files are never included: the invariants govern
// production code, and test-only nondeterminism is legal.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	out, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var targets []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			targets = append(targets, line)
		}
	}
	if err := l.listDeps(patterns); err != nil {
		return nil, err
	}
	sort.Strings(targets)
	// Register every target's info request before checking anything, so a
	// target reached first as another target's dependency is still checked
	// with syntax recording — each package is checked exactly once.
	for _, path := range targets {
		if _, done := l.checked[path]; !done && l.wantInfo[path] == nil {
			l.wantInfo[path] = newInfo()
		}
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, path := range targets {
		p, ok := l.listed[path]
		if !ok {
			return nil, fmt.Errorf("lint: target %q missing from dependency listing", path)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		cp, err := l.check(path)
		if err != nil {
			return nil, err
		}
		if cp.info == nil {
			return nil, fmt.Errorf("lint: target %q was checked without syntax recording", path)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   path,
			Name:      cp.pkg.Name(),
			Fset:      l.fset,
			Files:     cp.files,
			Types:     cp.pkg,
			TypesInfo: cp.info,
		})
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files that `go
// list` cannot see (an analysistest fixture under testdata). Imports
// resolve against the loader, so fixtures may import the real module
// packages whose APIs the analyzers recognize.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	name := files[0].Name.Name
	tpkg, err := conf.Check(name, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %w", dir, err)
	}
	return &Package{
		PkgPath:   name,
		Name:      name,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
