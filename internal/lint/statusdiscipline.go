package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// StatusDiscipline restricts writes of the kernel's stable-storage
// namespace to the kernel itself. The configuration_status variables
// (scram/cmd/<app>) and the persisted kernel state (scram/state) drive the
// three-phase reconfiguration protocol; a raw Put from any other package
// would let an application forge or corrupt a command outside the kernel's
// phase-transition helpers, defeating the protocol's single-writer
// assumption. Reads stay unrestricted: surviving processors legitimately
// poll a failed processor's storage.
var StatusDiscipline = &Analyzer{
	Name: "statusdiscipline",
	Doc: "Keys under scram/ in stable storage may only be written through the " +
		"scram package's helpers (WriteCommand, the kernel's persist path), " +
		"never by raw Put/Delete calls from other packages.",
	Run: runStatusDiscipline,
}

// storeWriteMethods are the staging mutators of stable.Store and
// stable.Region.
var storeWriteMethods = map[string]bool{
	"Put":       true,
	"PutString": true,
	"PutInt64":  true,
	"PutJSON":   true,
	"Delete":    true,
}

func runStatusDiscipline(pass *Pass) error {
	if pass.Pkg.Name() == "scram" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/stable" {
				return true
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				return true
			}
			recvName := receiverTypeName(recv.Type())
			if recvName != "Store" && recvName != "Region" {
				return true
			}
			key, isConst := constString(pass, call.Args[0])
			if !isConst {
				return true
			}
			switch {
			case storeWriteMethods[fn.Name()] && strings.HasPrefix(key, "scram/"):
				pass.Reportf(call.Pos(), "raw %s of kernel key %q from package %q: configuration_status variables may only be written through the scram package's helpers", fn.Name(), key, pass.Pkg.Name())
			case fn.Name() == "Region" && (key == "scram" || strings.HasPrefix(key, "scram/")):
				pass.Reportf(call.Pos(), "Region(%q) from package %q grants write access to the kernel namespace: configuration_status variables may only be written through the scram package's helpers", key, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
