package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadHonorsBuildConstraints pins the loader's file selection: the file
// list comes from `go list`, so a build-tag-excluded file
// (probe_excluded.go, tagged archlint_probe) and _test.go files must never
// reach the analyzers — the invariants govern production code only.
func TestLoadHonorsBuildConstraints(t *testing.T) {
	loader := NewLoader(".")
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading . returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	sawLoader := false
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		switch {
		case name == "probe_excluded.go":
			t.Errorf("build-tag-excluded %s was loaded", name)
		case strings.HasSuffix(name, "_test.go"):
			t.Errorf("test file %s was loaded", name)
		case name == "loader.go":
			sawLoader = true
		}
	}
	if !sawLoader {
		t.Error("loader.go missing from the loaded package; file selection is broken")
	}
}
