package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A baseline carries the findings a tree is allowed to keep while they are
// being worked off: CI fails only on findings not covered by it, so a new
// analyzer can land with teeth without demanding the whole backlog be fixed
// in one change. Entries match on (analyzer, file, message) with a count —
// never on line numbers, which churn with every edit — so a baseline
// survives unrelated refactors but any new site of a known message in a
// known file still trips the gate once the count is exceeded.
//
// The format is line-oriented and diff-friendly, sorted, one finding class
// per line:
//
//	analyzer<TAB>relative/file.go<TAB>count<TAB>message
//
// with '#' comments. Paths are slash-separated and relative to the module
// root. Regenerate with archlint -write-baseline; a shrinking baseline is
// the analyzer's progress meter.

// baselineKey identifies one class of tolerated findings.
type baselineKey struct {
	analyzer string
	file     string
	message  string
}

// Baseline is a parsed baseline file.
type Baseline struct {
	entries map[baselineKey]int
}

// Size returns the total tolerated finding count.
func (b *Baseline) Size() int {
	n := 0
	for _, c := range b.entries {
		n += c
	}
	return n
}

// ParseBaseline parses the line-oriented baseline format.
func ParseBaseline(data []byte) (*Baseline, error) {
	b := &Baseline{entries: make(map[baselineKey]int)}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("lint: baseline line %d: want analyzer\\tfile\\tcount\\tmessage, got %q", lineNo, line)
		}
		count, err := strconv.Atoi(parts[2])
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("lint: baseline line %d: bad count %q", lineNo, parts[2])
		}
		b.entries[baselineKey{parts[0], parts[1], parts[3]}] += count
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	return b, nil
}

// baselineFile renders a diagnostic's file as it appears in baseline
// entries: slash-separated, relative to root when possible.
func baselineFile(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

// FormatBaseline renders the diagnostics as a baseline file, with paths
// relative to root.
func FormatBaseline(diags []Diagnostic, root string) []byte {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[baselineKey{d.Analyzer, baselineFile(root, d.File), d.Message}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		if a.file != b.file {
			return a.file < b.file
		}
		return a.message < b.message
	})
	var buf bytes.Buffer
	buf.WriteString("# archlint baseline: findings tolerated while they are worked off.\n")
	buf.WriteString("# CI fails only on findings not covered here; shrink, never grow.\n")
	buf.WriteString("# Regenerate: go run ./cmd/archlint -write-baseline lint/allocfree.baseline ./...\n")
	for _, k := range keys {
		fmt.Fprintf(&buf, "%s\t%s\t%d\t%s\n", k.analyzer, k.file, counts[k], k.message)
	}
	return buf.Bytes()
}

// Filter returns the diagnostics not covered by the baseline — the new
// findings a gated run must fail on. Within one finding class the first
// (positionally lowest) occurrences are the tolerated ones, so the
// remainder is deterministic for sorted input.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	remaining := make(map[baselineKey]int, len(b.entries))
	for k, c := range b.entries {
		remaining[k] = c
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKey{d.Analyzer, baselineFile(root, d.File), d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// An Allowance is one //lint:allow directive found in source: the audited
// exceptions the suite tolerates, enumerated so reviews can check each
// reason still holds. A directive without a reason is inert (it suppresses
// nothing) and is reported with Inert true so it can be cleaned up.
type Allowance struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Inert    bool   `json:"inert,omitempty"`
}

// Allowances scans the packages for every //lint:allow directive.
func Allowances(pkgs []*Package, root string) []Allowance {
	var out []Allowance
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					out = append(out, Allowance{
						File:     baselineFile(root, pos.Filename),
						Line:     pos.Line,
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
						Inert:    len(fields) < 2,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out
}
