// Fixture for the membership package's lint scope. The package is named
// membership so the framedet and nofreegoroutine gates admit it, and it
// imports the real module package so stableerr matches the same
// (package, symbol) pairs it matches in production code. The patterns
// mirror the membership manager: a frame-synchronous view, a checksummed
// record on stable storage, and per-frame catch-up copies — all of which
// must stay deterministic, frame-synchronous, and fail-stop on record
// errors.
package membership

import (
	"sort"
	"time"

	mem "repro/internal/membership"
	"repro/internal/stable"
)

// view mirrors the manager's member bookkeeping: a map whose iteration
// order must never reach stable storage or a return value.
type view struct {
	epoch   int64
	members map[string]bool
}

// stampEpochNow is the tempting bug the framedet scope exists to catch:
// wall-clock epochs. Epochs are logical, bumped only at frame boundaries.
func stampEpochNow() int64 {
	return time.Now().UnixNano() // want `call to time.Now`
}

// stageMembers writes each member under its own key by ranging over the
// map: the staged write order would depend on map iteration order.
func stageMembers(v view, st *stable.Store) {
	for id := range v.members {
		st.Put("membership/member/"+id, nil) // want `calls mutator st.Put`
	}
}

// memberList returns the members by appending through an outer variable
// inside a map range: the returned order is nondeterministic.
func memberList(v view) []string {
	var out []string
	for id := range v.members {
		out = append(out, id) // want `writes out declared outside the loop`
	}
	return out
}

// asyncCatchUp is the concurrency bug the nofreegoroutine scope catches: a
// background copier would race the frame barrier, and a joiner could be
// promoted on a copy no frame boundary ever observed.
func asyncCatchUp(v view) {
	go func() { // want `go statement in frame-synchronous package "membership"`
		v.epoch++
	}()
}

// dropRecordErrors drops the record codec's and the manager's errors: an
// unencodable view or a failed record staging must halt the frame, not
// silently keep the stale epoch serving.
func dropRecordErrors(m *mem.Manager, st *stable.Store, v mem.View) {
	mem.EncodeRecord(v)             // want `error from repro/internal/membership.EncodeRecord is dropped`
	m.Finish(1, st, nil)            // want `error from \(repro/internal/membership.Manager\).Finish is dropped`
	got, _ := mem.DecodeRecord(nil) // want `error from repro/internal/membership.DecodeRecord is assigned to _`
	_ = got
}

// sortedMembers is the required idiom: collect, sort, then emit.
func sortedMembers(v view) []string {
	ids := make([]string, 0, len(v.members))
	for id := range v.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// finishFrame shows the legal forms: the record error returned to the
// caller, which owns the halt path.
func finishFrame(m *mem.Manager, st *stable.Store) error {
	if _, err := mem.DecodeRecord(nil); err != nil {
		return err
	}
	return m.Finish(1, st, nil)
}
