// Fixture for the stableerr analyzer: dropped and blanked errors from the
// stable-storage, bus, and kernel command APIs. The fixture imports the real
// module packages, so the analyzer matches the same (package, receiver)
// pairs it matches in production code.
package stableerr

import (
	"repro/internal/bus"
	"repro/internal/scram"
	"repro/internal/stable"
)

func dropped(st *stable.Store, ep *bus.Endpoint) {
	st.PutJSON("telemetry", 1) // want `error from \(repro/internal/stable.Store\).PutJSON is dropped`
	ep.Publish("topic", nil)   // want `error from \(repro/internal/bus.Endpoint\).Publish is dropped`
}

func blanked(st *stable.Store) int64 {
	n, _ := st.GetInt64("work")                        // want `error from \(repro/internal/stable.Store\).GetInt64 is assigned to _`
	_ = scram.WriteCommand(st, "nav", scram.Command{}) // want `error from repro/internal/scram.WriteCommand is assigned to _`
	return n
}

// handled shows the legal forms: returned, inspected, or forwarded errors.
func handled(st *stable.Store, ep *bus.Endpoint) error {
	if err := ep.Publish("topic", nil); err != nil {
		return err
	}
	n, err := st.GetInt64("work")
	if err != nil {
		return err
	}
	st.PutInt64("work", n+1)
	return st.PutJSON("telemetry", n)
}

// audited exercises the escape hatch: a blank assignment with an in-tree
// justification is legal.
func audited(st *stable.Store) {
	//lint:allow stableerr a missing counter reads as zero by design in this fixture
	_, _ = st.GetInt64("work")
}
