// Fixture for the nofreegoroutine analyzer. The package is named scram so
// the frame-synchronous gate admits it.
package scram

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want `go statement in frame-synchronous package .scram.`
	}
}

func launch(f func()) {
	go f() // want `go statement in frame-synchronous package .scram.`
}

// audited exercises the escape hatch: a launch that is joined before return
// and carries its justification in-tree is legal.
func audited(done chan struct{}) {
	//lint:allow nofreegoroutine audited launch: joined on done before return
	go func() { close(done) }()
	<-done
}
