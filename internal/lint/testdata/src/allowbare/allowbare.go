// Fixture: an allow directive without a reason is inert, so the launch
// below is still flagged.
package core

func launch(f func()) {
	//lint:allow nofreegoroutine
	go f()
}
