// Fixture proving the package gates: a package outside the frame model may
// use wall clocks, global randomness, goroutines, and raw map iteration —
// none of the frame-determinism analyzers apply to it.
package tooling

import (
	"math/rand"
	"time"
)

type campaign struct {
	seeds map[string]int64
}

func (c *campaign) sample() []int64 {
	var out []int64
	for _, s := range c.seeds {
		out = append(out, s+rand.Int63()+time.Now().UnixNano())
	}
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	return out
}
