// Fixture for the framedet analyzer. The package is named core so the
// analyzer's frame-deterministic gate admits it; it never builds as part of
// the module (testdata is invisible to go list).
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Options mirrors the shape that motivated the analyzer: per-application
// settings keyed by identifier, whose iteration order must never become
// observable.
type Options struct {
	Apps map[string]int
}

// System accumulates state outside the loops below.
type System struct {
	apps  map[string]int
	log   []string
	total int
}

func (s *System) record(id string) { s.log = append(s.log, id) }

// build reproduces the opts.Apps pattern from internal/core/system.go before
// it was fixed: which bad entry gets reported depends on map iteration
// order. The insert itself is keyed by the loop's own key variable, so it
// commutes and is exempt.
func (s *System) build(opts Options) error {
	for id, n := range opts.Apps {
		if n < 0 {
			return fmt.Errorf("bad app %q", id) // want `return inside range over map`
		}
		s.apps[id] = n // keyed insert with a pure value: order-independent
	}
	return nil
}

// rekeyed shows the limits of the keyed-insert exemption: an insert under a
// different key, a value built by a call, or a reassigned key variable all
// make iteration order observable again.
func (s *System) rekeyed(opts Options, alias map[string]string) {
	for id, n := range opts.Apps {
		s.apps[alias[id]] = n // want `writes s declared outside the loop`
	}
	for id := range opts.Apps {
		s.apps[id] = len(s.log) // want `writes s declared outside the loop`
	}
	for id, n := range opts.Apps {
		id = id + "!"
		s.apps[id] = n // want `writes s declared outside the loop`
	}
}

func (s *System) observe(opts Options) {
	for id := range opts.Apps {
		s.record(id) // want `calls mutator s.record`
	}
	for _, n := range opts.Apps {
		s.total += n // want `writes s declared outside the loop`
	}
}

// countBad shows the analyzer's conservatism: the count itself is
// order-independent, but increments through an outer variable are flagged
// uniformly — iterate sorted keys or annotate.
func countBad(opts Options) int {
	bad := 0
	for _, n := range opts.Apps {
		if n < 0 {
			bad++ // want `writes bad declared outside the loop`
		}
	}
	return bad
}

func stamp() int64 {
	return time.Now().UnixNano() // want `call to time.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time.Since`
}

// pacing exercises the escape hatch: an audited wall-clock read with an
// in-tree justification is legal.
func pacing() time.Time {
	//lint:allow framedet audited pacing clock for the host-side scheduler
	return time.Now()
}

func roll() int {
	return rand.Intn(6) // want `global math/rand`
}

// seeded randomness is how campaigns stay reproducible; it is not flagged.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

// runningApps is the collect-then-sort idiom: appending in arbitrary order
// is fine because the sort re-establishes determinism.
func runningApps(m map[string]int) []string {
	var ids []string
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// placedSet builds a set with constant inserts, which commute: iteration
// order cannot reach the result.
func placedSet(m map[string]string) map[string]bool {
	seen := make(map[string]bool, len(m))
	for _, p := range m {
		seen[p] = true
	}
	return seen
}

// anyNegative is the any/all predicate pattern: every return in the body
// yields the same constant, so the early exit is order-independent.
func anyNegative(m map[string]int) bool {
	for _, n := range m {
		if n < 0 {
			return true
		}
	}
	return false
}
