// Fixture for the telemetry package's lint scope. The package is named
// telemetry so both the framedet and nofreegoroutine gates admit it; it
// never builds as part of the module (testdata is invisible to go list).
// The patterns mirror the flight recorder: event records carrying attribute
// maps, a ring buffer, and exporters — all of which must stay deterministic
// and frame-synchronous.
package telemetry

import (
	"sort"
	"time"
)

// Event mirrors the flight recorder's event record: an attribute map whose
// iteration order must never reach the ring, an exporter, or a return value.
type Event struct {
	Frame int64
	Kind  string
	Attrs map[string]int64
}

// Recorder mirrors the bounded ring.
type Recorder struct {
	buf   []Event
	frame int64
}

func (r *Recorder) Record(e Event) { r.buf = append(r.buf, e) }

// stampNow is the tempting bug the scope exists to catch: wall-clock
// timestamps on events. Only frame numbers may stamp the black box.
func stampNow() int64 {
	return time.Now().UnixNano() // want `call to time.Now`
}

// flushAttrs renders an event's attributes by ranging over the map and
// appending through an outer variable: the journal's byte order would then
// depend on map iteration order.
func flushAttrs(e Event) []string {
	var out []string
	for k := range e.Attrs {
		out = append(out, k) // want `writes out declared outside the loop`
	}
	return out
}

// recordEach forwards each attribute as its own event: the mutator call
// inside the map range makes ring order nondeterministic.
func recordEach(r *Recorder, e Event) {
	for k, v := range e.Attrs {
		r.Record(Event{Frame: e.Frame, Kind: k, Attrs: map[string]int64{k: v}}) // want `calls mutator r.Record`
	}
}

// asyncPersist is the concurrency bug the nofreegoroutine scope catches: a
// background flusher would race the frame barrier and could write a ring
// state no frame ever observed.
func asyncPersist(r *Recorder) {
	go func() { // want `go statement in frame-synchronous package "telemetry"`
		r.buf = nil
	}()
}

// sortedAttrs is the required idiom: collect, sort, then emit.
func sortedAttrs(e Event) []string {
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pacedFlush shows the audited escape hatch for host-side pacing code.
func pacedFlush() time.Time {
	//lint:allow framedet audited wall-clock read: host-side export pacing, never stamped into events
	return time.Now()
}
