// Fixture for the nofreegoroutine scope over the live telemetry plane. The
// package is named serve so the frame-synchronous gate admits it: the plane
// is off-path by design, but every goroutine it launches must be audited.
package serve

func listen(accept func()) {
	go accept() // want `go statement in frame-synchronous package .serve.`
}

// audited mirrors the real server's listener launch: off-path, joined via
// Close, and carrying its justification in-tree.
func audited(srv interface{ Serve() }) {
	//lint:allow nofreegoroutine audited listener: serves snapshot copies off the frame path
	go srv.Serve()
}
