// Package allocfree exercises the interprocedural alloc-discipline
// analyzer: the conservative callgraph from the //lint:frame-entry root
// (func-value dispatch to a registered method value, interface dispatch to
// a declared method), every allocation check, the externally-backed append
// exemption, the pointer-shaped boxing exemption, and the allow hatch.
package allocfree

import "fmt"

// sched mimics the frame scheduler: hooks registered at boot and invoked
// through func-typed values each frame.
type sched struct {
	hooks []func(int) error
	keys  []string
}

// ticker is the frame task interface; dispatch through it must reach every
// declared method with the same name and signature, whether or not the
// concrete type is provably bound at the call site.
type ticker interface {
	Tick(n int) error
}

type leaf struct{ hits map[string]int }

// Step is the fixture's frame-synchronous root.
//
//lint:frame-entry fixture root
func (s *sched) Step(t ticker, n int) error {
	for _, h := range s.hooks {
		if err := h(n); err != nil {
			return err
		}
	}
	s.keys = s.direct(n, s.keys)
	return t.Tick(n)
}

// newSched is boot code, unreachable from Step: its allocations are legal,
// but registering the method value makes commitHook an indirect-dispatch
// candidate.
func newSched() *sched {
	s := &sched{}
	s.hooks = append(s.hooks, s.commitHook)
	return s
}

// commitHook is never called directly: only the func-value dispatch in
// Step's hook loop reaches it.
func (s *sched) commitHook(n int) error {
	m := make(map[string]int, n) // want `make in frame-reachable commitHook allocates every call`
	_ = m
	s.keys = append(s.keys, "k") // field-backed: amortized reuse, not flagged
	var fresh []int
	fresh = append(fresh, n) // want `append to a fresh slice in frame-reachable commitHook may grow per call`
	_ = fresh
	return nil
}

// Tick is reached only through the ticker interface dispatch in Step.
func (l *leaf) Tick(n int) error {
	l.hits = map[string]int{"tick": n} // want `map literal in frame-reachable Tick allocates every call`
	msg := fmt.Sprintf("tick %d", n)   // want `fmt.Sprintf in frame-reachable Tick formats through reflection and allocates`
	msg = msg + "!"                    // want `string concatenation in frame-reachable Tick allocates`
	_ = msg
	return nil
}

// record boxes non-pointer-shaped arguments into its any parameter.
func record(v any) { _ = v }

// direct is called directly from Step.
func (s *sched) direct(n int, scratch []string) []string {
	scratch = append(scratch, "x") // parameter-backed: amortized reuse, not flagged
	record(n)                      // want `argument boxes int into interface any in frame-reachable direct`
	record(s)                      // pointer-shaped: stored in the interface word, not flagged
	tags := []string{"a"}          // want `slice literal in frame-reachable direct allocates every call`
	_ = tags
	f := func() int { return n } // want `closure in frame-reachable direct captures n and allocates its environment`
	_ = f
	//lint:allow allocfree fixture: the scratch grows to its high-water mark once
	big := make([]byte, n)
	_ = big
	return scratch
}

// boot is unreachable from the root: its allocations are legal.
func boot() map[string]int {
	out := make(map[string]int)
	out["x"] = 1
	return out
}
