// Package epochguard exercises the epoch discipline on scram.Command
// construction: Epoch must come from the membership view — never implicit
// zero, never a literal, never arithmetic — while the empty zero value and
// view-sourced epochs stay legal.
package epochguard

import (
	"repro/internal/scram"
	"repro/internal/spec"
)

// view stands in for the membership view the kernel plans under.
type view struct{ epoch int64 }

// Epoch returns the view's epoch.
func (v *view) Epoch() int64 { return v.epoch }

// good commands: the zero value (error returns, initialization) and keyed
// literals whose Epoch is carried from the view.
func good(v *view) []scram.Command {
	var out []scram.Command
	out = append(out, scram.Command{})
	out = append(out, scram.Command{Seq: 1, Epoch: v.epoch})
	out = append(out, scram.Command{Seq: 2, Epoch: v.Epoch()})
	return out
}

// bad commands: fabricated or missing membership history.
func bad(v *view, last int64) []scram.Command {
	var out []scram.Command
	out = append(out, scram.Command{Seq: 3})                                     // want `sets fields but not Epoch`
	out = append(out, scram.Command{Seq: 4, Epoch: 7})                           // want `is the literal 7`
	out = append(out, scram.Command{Seq: 5, Epoch: last + 1})                    // want `computed with arithmetic`
	out = append(out, scram.Command{6, spec.PhaseHalt, "t", "c", 0, 0, v.epoch}) // want `built with positional fields`
	return out
}
