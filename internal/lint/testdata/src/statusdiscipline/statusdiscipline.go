// Fixture for the statusdiscipline analyzer: raw writes to the kernel's
// scram/ stable-storage namespace from outside the scram package. The
// package is named app — any name but scram is subject to the discipline.
package app

import "repro/internal/stable"

func forge(st *stable.Store) {
	st.PutString("scram/cmd/nav", "halt") // want `raw PutString of kernel key .scram/cmd/nav.`
	st.Delete("scram/state")              // want `raw Delete of kernel key .scram/state.`
	r := st.Region("scram/")              // want `Region\(.scram/.\) from package .app. grants write access`
	// Writes through an already-obtained region use keys relative to its
	// prefix, which is why the construction above is what gets flagged.
	r.Put("cmd/nav", nil)
	// Keys outside the kernel namespace are the package's own business.
	st.PutString("app/own-key", "ok")
	st.PutInt64("scram-adjacent", 1)
}

const kernelState = "scram/state"

// forgeConst shows the key check is by constant value, not literal syntax.
func forgeConst(st *stable.Store) {
	st.Put(kernelState, nil) // want `raw Put of kernel key .scram/state.`
}

// reads of the kernel namespace stay legal: surviving processors poll a
// failed processor's command variables during recovery.
func poll(st *stable.Store) (int64, error) {
	return st.GetInt64("scram/state")
}

// audited exercises the escape hatch.
func audited(st *stable.Store) {
	//lint:allow statusdiscipline recovery tooling rewrites a failed processor's command outside the kernel
	st.Delete("scram/cmd/nav")
}
