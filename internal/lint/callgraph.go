package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file computes the frame-reachable function set: every function that
// can execute inside a frame-synchronous commit, found by walking a
// conservative callgraph from the functions marked with a
//
//	//lint:frame-entry <reason>
//
// directive in their doc comment (core.System.Step is the canonical root:
// the scheduler runs every commit hook beneath it). Interprocedural
// analyzers — allocfree today — consult the set through Pass.Reach, so their
// diagnostics land only on code whose cost is paid every frame, not on boot,
// recovery, or campaign tooling.
//
// The callgraph is a class-hierarchy-style over-approximation built from
// go/types alone:
//
//   - a direct call to a function or method adds one edge;
//   - a call through an interface method adds an edge to every declared
//     method with the same name and an identical receiver-stripped
//     signature, whether or not the receiver type is provably bound to the
//     interface at that site;
//   - a call through a func-typed value adds an edge to every address-taken
//     function, method value, or function literal with an identical
//     signature (this is how the frame scheduler's `for _, h := range
//     s.commit { h(ctx) }` reaches every registered hook);
//   - a function value passed to a callee outside the analyzed packages
//     (sort.Slice, filepath.Walk) is assumed invoked by it.
//
// Over-approximation is the point: a function the graph cannot prove
// unreachable from a frame entry is treated as frame-reachable, so the
// alloc discipline fails safe. The one known gap is generic functions used
// as values — their uninstantiated signatures do not compare identical to
// instantiated call sites — which today's hot path does not do.

// frameEntryDirective marks a callgraph root in a function's doc comment.
const frameEntryDirective = "//lint:frame-entry"

// cgNode is one callgraph node: a declared function or method (fn) or a
// function literal (lit). Exactly one field is set; the pointer identity of
// that field keys the graph.
type cgNode struct {
	fn  *types.Func
	lit *ast.FuncLit
}

func (n cgNode) key() any {
	if n.fn != nil {
		return n.fn
	}
	return n.lit
}

// Reach is the computed frame-reachable set over one Run's package set.
type Reach struct {
	reachable map[any]bool // keys: *types.Func and *ast.FuncLit
	roots     []*types.Func
}

// Reachable reports whether the declared function or method can execute
// inside a frame-synchronous commit.
func (r *Reach) Reachable(fn *types.Func) bool {
	return r != nil && fn != nil && r.reachable[fn]
}

// ReachableLit reports whether the function literal can execute inside a
// frame-synchronous commit other than through its enclosing declaration.
func (r *Reach) ReachableLit(lit *ast.FuncLit) bool {
	return r != nil && lit != nil && r.reachable[lit]
}

// Roots returns the //lint:frame-entry functions the walk started from.
func (r *Reach) Roots() []*types.Func { return r.roots }

// cgBuilder accumulates the callgraph across every package of one Run.
type cgBuilder struct {
	// decls maps each declared function object to its declaration, so the
	// walk can descend into bodies.
	decls map[*types.Func]*ast.FuncDecl
	// infos maps each declared function and literal to the types.Info of
	// its package (needed to resolve calls inside the body).
	infos map[any]*types.Info
	// addrFuncs and addrLits are the dispatch candidates: functions,
	// method values, and literals whose value is taken somewhere, so an
	// indirect call may land on them.
	addrFuncs map[*types.Func]bool
	addrLits  map[*ast.FuncLit]bool
	// edges is the adjacency list keyed as in Reach.reachable.
	edges map[any][]cgNode
	roots []*types.Func
}

// NewReach builds the callgraph over the given packages and returns the
// frame-reachable set. With no //lint:frame-entry roots in the set, nothing
// is reachable and the interprocedural analyzers stay silent.
func NewReach(pkgs []*Package) *Reach {
	b := &cgBuilder{
		decls:     make(map[*types.Func]*ast.FuncDecl),
		infos:     make(map[any]*types.Info),
		addrFuncs: make(map[*types.Func]bool),
		addrLits:  make(map[*ast.FuncLit]bool),
		edges:     make(map[any][]cgNode),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.decls[fn] = fd
				b.infos[fn] = pkg.TypesInfo
				if isFrameEntry(fd) {
					b.roots = append(b.roots, fn)
				}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			b.scanFile(file, pkg.TypesInfo)
		}
	}
	r := &Reach{reachable: make(map[any]bool), roots: b.roots}
	var queue []cgNode
	for _, root := range b.roots {
		queue = append(queue, cgNode{fn: root})
		r.reachable[root] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, succ := range b.succs(n) {
			if !r.reachable[succ.key()] {
				r.reachable[succ.key()] = true
				queue = append(queue, succ)
			}
		}
	}
	return r
}

// isFrameEntry reports whether the declaration's doc comment carries the
// frame-entry directive.
func isFrameEntry(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == frameEntryDirective || strings.HasPrefix(c.Text, frameEntryDirective+" ") {
			return true
		}
	}
	return false
}

// scanFile records, for every function value mentioned in the file, that its
// address is taken (making it an indirect-dispatch candidate) — unless the
// mention is the callee position of a direct call. Function literals are
// registered the same way.
func (b *cgBuilder) scanFile(file *ast.File, info *types.Info) {
	// callees collects the expressions in direct-callee position, and
	// selSel the idents consumed as the Sel of a selector (so the ident
	// walk below does not double-count them).
	callees := make(map[ast.Expr]bool)
	selSel := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callees[ast.Unparen(n.Fun)] = true
		case *ast.SelectorExpr:
			selSel[n.Sel] = true
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			b.infos[n] = info
			if !callees[n] {
				b.addrLits[n] = true
			}
		case *ast.SelectorExpr:
			if callees[n] {
				return true
			}
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
				b.addrFuncs[fn] = true
			}
		case *ast.Ident:
			if selSel[n] || callees[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				b.addrFuncs[fn] = true
			}
		}
		return true
	})
}

// succs returns the callgraph successors of one node by walking its body.
func (b *cgBuilder) succs(n cgNode) []cgNode {
	var body *ast.BlockStmt
	switch {
	case n.fn != nil:
		fd := b.decls[n.fn]
		if fd == nil || fd.Body == nil {
			return nil
		}
		body = fd.Body
	case n.lit != nil:
		body = n.lit.Body
	}
	info := b.infos[n.key()]
	if info == nil {
		return nil
	}
	var out []cgNode
	ast.Inspect(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		out = append(out, b.callTargets(call, info)...)
		return true
	})
	return out
}

// callTargets resolves one call expression to its possible targets.
func (b *cgBuilder) callTargets(call *ast.CallExpr, info *types.Info) []cgNode {
	fun := ast.Unparen(call.Fun)
	// A type conversion is not a call.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	var callee types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		callee = info.Uses[f]
	case *ast.SelectorExpr:
		callee = info.Uses[f.Sel]
	case *ast.FuncLit:
		// An immediately invoked literal: one direct edge, plus whatever
		// its arguments escape to.
		return append([]cgNode{{lit: f}}, b.escapedArgs(call, info, true)...)
	}
	switch c := callee.(type) {
	case *types.Builtin:
		return nil
	case *types.Func:
		sig, _ := c.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			// Interface dispatch: every declared method with this name and
			// an identical receiver-stripped signature is a candidate.
			return append(b.interfaceTargets(c.Name(), sig), b.escapedArgs(call, info, false)...)
		}
		// Direct call. Arguments passed as function values to a callee
		// outside the analyzed packages are assumed invoked by it.
		_, internal := b.decls[c]
		return append([]cgNode{{fn: c}}, b.escapedArgs(call, info, !internal)...)
	}
	// A call through a func-typed value: any address-taken function or
	// literal with an identical signature is a candidate.
	sig, _ := info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if sig == nil {
		return nil
	}
	return append(b.valueTargets(sig), b.escapedArgs(call, info, false)...)
}

// escapedArgs returns the function values appearing in the call's arguments.
// When assumeInvoked is true (external callee, or an immediately invoked
// literal whose arguments we cannot track), each is added as a direct
// successor: sort.Slice(x, less) really does call less.
func (b *cgBuilder) escapedArgs(call *ast.CallExpr, info *types.Info, assumeInvoked bool) []cgNode {
	if !assumeInvoked {
		// Internal callees receive the value as a parameter; the indirect
		// calls inside them dispatch to it through the address-taken set.
		return nil
	}
	var out []cgNode
	for _, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			out = append(out, cgNode{lit: a})
		case *ast.Ident:
			if fn, ok := info.Uses[a].(*types.Func); ok {
				out = append(out, cgNode{fn: fn})
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
				out = append(out, cgNode{fn: fn})
			}
		}
	}
	return out
}

// interfaceTargets returns every declared method matching an interface
// method's name and receiver-stripped signature.
func (b *cgBuilder) interfaceTargets(name string, sig *types.Signature) []cgNode {
	var out []cgNode
	for fn := range b.decls {
		fsig, _ := fn.Type().(*types.Signature)
		if fsig == nil || fsig.Recv() == nil || fn.Name() != name {
			continue
		}
		if sigEq(fsig, sig) {
			out = append(out, cgNode{fn: fn})
		}
	}
	return out
}

// valueTargets returns every address-taken function, method value, or
// literal whose signature matches a func-typed call.
func (b *cgBuilder) valueTargets(sig *types.Signature) []cgNode {
	var out []cgNode
	for fn := range b.addrFuncs {
		if _, declared := b.decls[fn]; !declared {
			continue
		}
		fsig, _ := fn.Type().(*types.Signature)
		if fsig != nil && sigEq(fsig, sig) {
			out = append(out, cgNode{fn: fn})
		}
	}
	for lit := range b.addrLits {
		info := b.infos[lit]
		lsig, _ := info.TypeOf(lit).(*types.Signature)
		if lsig != nil && sigEq(lsig, sig) {
			out = append(out, cgNode{lit: lit})
		}
	}
	return out
}

// sigEq compares two signatures parameter-by-parameter, ignoring receivers:
// a method value loses its receiver when stored in a func-typed variable,
// so dispatch candidacy must too.
func sigEq(a, b *types.Signature) bool {
	if a.Variadic() != b.Variadic() {
		return false
	}
	ap, bp := a.Params(), b.Params()
	if ap.Len() != bp.Len() {
		return false
	}
	ar, br := a.Results(), b.Results()
	if ar.Len() != br.Len() {
		return false
	}
	for i := 0; i < ap.Len(); i++ {
		if !types.Identical(ap.At(i).Type(), bp.At(i).Type()) {
			return false
		}
	}
	for i := 0; i < ar.Len(); i++ {
		if !types.Identical(ar.At(i).Type(), br.At(i).Type()) {
			return false
		}
	}
	return true
}
