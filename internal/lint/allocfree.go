package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree flags heap allocations in frame-reachable code. The WCET
// argument for the frame-synchronous abstraction assumes every commit hook
// completes within its frame slot; allocation is the main source of
// unbounded jitter (growth copies, GC assists), so the steady-state frame
// path is driven toward zero allocations and every remaining site is either
// annotated with its amortization argument or carried in the committed
// baseline (lint/allocfree.baseline) until it is fixed.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "In functions reachable from a //lint:frame-entry root, flag heap " +
		"allocations: make and map/slice composite literals, appends that may " +
		"grow a fresh slice, fmt formatting and string concatenation, interface " +
		"boxing at call sites, and capturing closures. Pre-size scratch buffers " +
		"(the det.SortedKeysInto idiom), annotate amortized sites with " +
		"//lint:allow allocfree <reason>, or carry them in the baseline.",
	Run:             runAllocFree,
	Interprocedural: true,
}

// fmtAllocFuncs are the fmt package functions that build a fresh string or
// write through an allocating interface walk per call.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Fprintf": true, "Fprint": true, "Fprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func runAllocFree(pass *Pass) error {
	if pass.Reach == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if pass.Reach.Reachable(fn) {
				checkAllocs(pass, fd.Name.Name, fd.Body, fd.Type)
				continue
			}
			// The declaration itself is cold, but a literal inside it may
			// be dispatched onto the frame path (a hook closure registered
			// at boot): scan exactly those.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok || !pass.Reach.ReachableLit(lit) {
					return true
				}
				checkAllocs(pass, fd.Name.Name+" (closure)", lit.Body, lit.Type)
				return false
			})
		}
	}
	return nil
}

// checkAllocs walks one frame-reachable function body and reports each
// allocating construct. Nested literals are scanned as part of the body:
// if the body runs on the frame path, so may its closures.
func checkAllocs(pass *Pass, name string, body *ast.BlockStmt, ftype *ast.FuncType) {
	exempt := exemptSliceRoots(pass, body, ftype)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCallAlloc(pass, name, n, exempt)
		case *ast.CompositeLit:
			checkCompositeAlloc(pass, name, n)
		case *ast.BinaryExpr:
			checkConcatAlloc(pass, name, n)
		case *ast.FuncLit:
			checkClosureAlloc(pass, name, n)
		}
		return true
	})
}

// exemptSliceRoots computes the variables whose backing array is provided
// from outside the function — parameters, struct fields reached through a
// reslice, or locals initialized from such — so appending to them is
// amortized reuse, not a per-call allocation.
func exemptSliceRoots(pass *Pass, body *ast.BlockStmt, ftype *ast.FuncType) map[*types.Var]bool {
	exempt := make(map[*types.Var]bool)
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					exempt[v] = true
				}
			}
		}
	}
	// Two passes reach fixpoints across the common one-step chains
	// (buf := append(r.enc.buf[:0], ...) then keys := buf).
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
				if !ok {
					continue
				}
				if externallyBacked(pass, assign.Rhs[i], exempt) {
					exempt[v] = true
				}
			}
			return true
		})
	}
	return exempt
}

// externallyBacked reports whether the expression's backing storage comes
// from outside the current call: a reslice, a struct field, an exempt
// variable, or an append rooted in one.
func externallyBacked(pass *Pass, e ast.Expr, exempt map[*types.Var]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.SelectorExpr:
		// A field read: the buffer persists in the struct across calls.
		_, isField := pass.TypesInfo.Selections[e]
		return isField
	case *ast.Ident:
		v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var)
		return ok && exempt[v]
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				return externallyBacked(pass, e.Args[0], exempt)
			}
		}
	}
	return false
}

// checkCallAlloc reports the allocating calls: make, growth appends, fmt
// formatting, and interface boxing of arguments at any call site.
func checkCallAlloc(pass *Pass, name string, call *ast.CallExpr, exempt map[*types.Var]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make in frame-reachable %s allocates every call: hoist to a reused scratch buffer", name)
			case "append":
				if len(call.Args) > 0 && !externallyBacked(pass, call.Args[0], exempt) {
					pass.Reportf(call.Pos(), "append to a fresh slice in frame-reachable %s may grow per call: pre-size or reuse scratch (det.SortedKeysInto idiom)", name)
				}
			}
			return
		}
	}
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "fmt.%s in frame-reachable %s formats through reflection and allocates: build bytes by hand or move off the frame path", fn.Name(), name)
			// The boxing of its ...any arguments is implied; one
			// diagnostic per call is enough.
			return
		}
	}
	checkBoxing(pass, name, call)
}

// checkBoxing reports arguments whose concrete value is converted to an
// interface parameter at the call: the conversion heap-allocates whenever
// the value escapes through the interface.
func checkBoxing(pass *Pass, name string, call *ast.CallExpr) {
	sig, _ := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if sig == nil || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a []T... pass-through does not box
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in frame-reachable %s: accept the concrete type or reuse a boxed value", at, pt, name)
	}
}

// pointerShaped reports whether values of the type are stored directly in
// an interface word: pointers, channels, maps, funcs, and unsafe pointers
// convert to interfaces without heap allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// checkCompositeAlloc reports map and slice composite literals, whose
// backing store is freshly allocated each evaluation.
func checkCompositeAlloc(pass *Pass, name string, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in frame-reachable %s allocates every call: hoist to a package-level table or reused scratch", name)
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in frame-reachable %s allocates every call: hoist to a package-level table or reused scratch", name)
	}
}

// checkConcatAlloc reports non-constant string concatenation; each +
// builds a fresh string.
func checkConcatAlloc(pass *Pass, name string, bin *ast.BinaryExpr) {
	if bin.Op != token.ADD {
		return
	}
	tv, ok := pass.TypesInfo.Types[bin]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	pass.Reportf(bin.Pos(), "string concatenation in frame-reachable %s allocates: append into a reused []byte instead", name)
}

// checkClosureAlloc reports capturing literals: a closure over local
// variables allocates its environment when it escapes, and the dispatch
// that makes it frame-reachable is exactly such an escape.
func checkClosureAlloc(pass *Pass, name string, lit *ast.FuncLit) {
	captures := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Pos() == token.NoPos || v.IsField() {
			return true
		}
		// A capture is a variable declared outside the literal but not at
		// package scope (package variables live without an environment).
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if pkgLevel(pass, v) {
			return true
		}
		captures = v.Name()
		return false
	})
	if captures != "" {
		pass.Reportf(lit.Pos(), "closure in frame-reachable %s captures %s and allocates its environment: hoist the state into a method receiver", name, captures)
	}
}

// pkgLevel reports whether the variable is declared at package scope.
func pkgLevel(pass *Pass, v *types.Var) bool {
	return v.Parent() == pass.Pkg.Scope() || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope())
}
