package core

import (
	"errors"
	"testing"

	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/spectest"
)

// validOptions returns options that pass Validate against the canonical
// three-configuration specification.
func validOptions() Options {
	return Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  &testApp{id: spectest.AppAP},
			spectest.AppFCS: &testApp{id: spectest.AppFCS},
		},
		Classifier: powerClassifier(false),
		InitialFactors: map[envmon.Factor]string{
			"alt1": "ok",
			"alt2": "ok",
		},
	}
}

func TestValidateAcceptsCanonicalOptions(t *testing.T) {
	if err := validOptions().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
		want   error
	}{
		{"missing spec", func(o *Options) { o.Spec = nil }, ErrMissingSpec},
		{"missing classifier", func(o *Options) { o.Classifier = nil }, ErrMissingClassifier},
		{"missing app", func(o *Options) { delete(o.Apps, spectest.AppFCS) }, ErrMissingApp},
		{"unknown app", func(o *Options) { o.Apps["ghost"] = &testApp{id: "ghost"} }, ErrUnknownApp},
		{"virtual app", func(o *Options) { o.Apps[spectest.AppMonitor] = &testApp{id: spectest.AppMonitor} }, ErrUnknownApp},
		{"standby for unknown app", func(o *Options) {
			o.HotStandby = map[spec.AppID]spec.ProcID{"ghost": "p1"}
		}, ErrUnknownApp},
		{"standby on unknown proc", func(o *Options) {
			o.HotStandby = map[spec.AppID]spec.ProcID{spectest.AppAP: "p99"}
		}, ErrUnknownProc},
		{"unknown SCRAM proc", func(o *Options) { o.SCRAMProc = "p99" }, ErrUnknownProc},
		{"unknown standby proc", func(o *Options) { o.StandbyProc = "p99" }, ErrUnknownProc},
		{"standby equals default primary", func(o *Options) {
			o.StandbyProc = o.Spec.Platform.Procs[0].ID
		}, ErrStandbyConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := validOptions()
			tc.mutate(&opts)
			err := opts.Validate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want errors.Is(%v)", err, tc.want)
			}
			// NewSystem delegates: the same defect must surface with the
			// same typed error through construction.
			if _, err := NewSystem(opts); !errors.Is(err, tc.want) {
				t.Fatalf("NewSystem = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}
