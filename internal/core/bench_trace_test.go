package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/spectest"
)

// buildTraceBenchSystem wires the canonical steady-state system with full
// telemetry on and the causal-trace layer either enabled (the default) or
// ablated via DisableTracing. Both arms record events, sample frame state
// and persist the journal — the subtraction isolates the span layer itself:
// trace-ID derivation, span open/close bookkeeping, and the span events on
// the ring.
func buildTraceBenchSystem(tb testing.TB, disableTracing bool) *System {
	tb.Helper()
	sys, err := NewSystem(Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  &testApp{id: spectest.AppAP},
			spectest.AppFCS: &testApp{id: spectest.AppFCS},
		},
		Classifier:     powerClassifier(false),
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		TraceSeed:      7,
		DisableTracing: disableTracing,
	})
	if err != nil {
		tb.Fatalf("NewSystem: %v", err)
	}
	tb.Cleanup(sys.Close)
	return sys
}

// TestTraceOverheadBench measures the marginal cost of the causal-trace
// layer on the steady-state frame loop and records it in BENCH_trace.json
// at the repository root. The baseline is telemetry=on (the same baseline
// BENCH_observability.json reports), so the number answers the question the
// span layer raises: what do spans add on top of the journal that was
// already there? The target is within 5% ns/frame of the telemetry=on
// baseline; the assertion leaves CI-jitter headroom at 15%.
func TestTraceOverheadBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness skipped in -short mode")
	}
	const frames = 20_000
	const pairs = 5
	var on, off armSample
	pcts := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		son := measureSystem(t, buildTraceBenchSystem(t, false), frames)
		soff := measureSystem(t, buildTraceBenchSystem(t, true), frames)
		if i == 0 || son.nsPerFrame < on.nsPerFrame {
			on = son
		}
		if i == 0 || soff.nsPerFrame < off.nsPerFrame {
			off = soff
		}
		pcts = append(pcts, (son.nsPerFrame-soff.nsPerFrame)/soff.nsPerFrame*100)
	}
	sort.Float64s(pcts)
	medianPct := pcts[len(pcts)/2]

	out := struct {
		Benchmark   string        `json:"benchmark"`
		Target      string        `json:"target"`
		Results     []benchResult `json:"results"`
		OverheadPct float64       `json:"trace_overhead_pct"`
		Notes       []string      `json:"notes,omitempty"`
	}{
		Benchmark: "causal-trace overhead: canonical three-config frame loop, steady state, spans on vs DisableTracing — telemetry on in both arms",
		Target:    "steady ns/frame within 5% of the telemetry=on baseline",
		Results: []benchResult{
			row("frame/steady/tracing=on", on),
			row("frame/steady/tracing=off", off),
		},
		OverheadPct: medianPct,
		Notes: []string{
			"a quiet steady-state frame opens no spans, so the marginal cost is the span book's per-frame bookkeeping alone — the span events themselves are charged to reconfiguration windows",
			fmt.Sprintf("this run measured allocs/frame on %.2f / off %.2f", on.allocsPerFrame, off.allocsPerFrame),
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_trace.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("steady: tracing on %.0f ns/frame (%.1f allocs) vs off %.0f (%.1f) = %.2f%% median overhead",
		on.nsPerFrame, on.allocsPerFrame, off.nsPerFrame, off.allocsPerFrame, medianPct)
	if medianPct > 15 {
		t.Errorf("steady-state tracing overhead %.2f%% ns/frame exceeds the 15%% ceiling (target < 5%%)", medianPct)
	}
}
