package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bus"

	"repro/internal/envmon"
	"repro/internal/failstop"
	"repro/internal/frame"
	"repro/internal/scram"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/stable"
	"repro/internal/trace"
)

// testApp is a reference reconfigurable application: it counts work units in
// stable storage and completes every phase in one frame. Knobs seed
// deliberate misbehaviour for violation tests.
type testApp struct {
	id spec.AppID

	// breakPrecondition makes Precondition report false, seeding an SP4
	// violation.
	breakPrecondition bool

	steps, halts, preps, inits int
	halted                     bool
}

func (a *testApp) ID() spec.AppID { return a.id }

func (a *testApp) Step(env *FrameEnv) error {
	a.steps++
	a.halted = false
	n, _ := env.Store.GetInt64("count")
	env.Store.PutInt64("count", n+1)
	env.Store.PutString("spec", string(env.Spec))
	return nil
}

func (a *testApp) Halt(env *FrameEnv) (bool, error) {
	a.halts++
	a.halted = true
	env.Store.PutString("post", "established")
	return true, nil
}

func (a *testApp) Prepare(env *FrameEnv, target spec.SpecID) (bool, error) {
	a.preps++
	env.Store.PutString("prepared-for", string(target))
	return true, nil
}

func (a *testApp) Init(env *FrameEnv, target spec.SpecID) (bool, error) {
	a.inits++
	env.Store.PutString("spec", string(target))
	return true, nil
}

func (a *testApp) Postcondition() bool { return a.halted }

func (a *testApp) Precondition(spec.SpecID) bool { return !a.breakPrecondition }

// powerClassifier maps alternator health factors to the canonical power
// states. failedProcMeansReduced additionally treats a p2 failure as a
// reduced-power condition, so processor loss drives reconfiguration in the
// processor-failure tests.
func powerClassifier(failedProcMeansReduced bool) envmon.Classifier {
	return func(f map[envmon.Factor]string) spec.EnvState {
		ok := 0
		for _, alt := range []envmon.Factor{"alt1", "alt2"} {
			if f[alt] == "ok" {
				ok++
			}
		}
		state := spectest.EnvBattery
		switch ok {
		case 2:
			state = spectest.EnvFull
		case 1:
			state = spectest.EnvReduced
		}
		if failedProcMeansReduced && f[ProcHealthFactor("p2")] == ProcFailed && state == spectest.EnvFull {
			state = spectest.EnvReduced
		}
		return state
	}
}

// buildSystem wires the canonical system with test apps.
func buildSystem(t *testing.T, mutate func(*Options)) (*System, *testApp, *testApp) {
	t.Helper()
	ap := &testApp{id: spectest.AppAP}
	fcs := &testApp{id: spectest.AppFCS}
	opts := Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  ap,
			spectest.AppFCS: fcs,
		},
		Classifier: powerClassifier(false),
		InitialFactors: map[envmon.Factor]string{
			"alt1": "ok",
			"alt2": "ok",
		},
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := NewSystem(opts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(s.Close)
	return s, ap, fcs
}

func mustNoViolations(t *testing.T, s *System) {
	t.Helper()
	if vs := s.CheckProperties(); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("violation: %s", v)
		}
		t.Fatal("properties violated")
	}
}

func TestSteadyStateNoReconfiguration(t *testing.T) {
	s, ap, fcs := buildSystem(t, nil)
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if got := s.Kernel().Current(); got != spectest.CfgFull {
		t.Fatalf("current = %s", got)
	}
	if ap.steps != 20 || fcs.steps != 20 {
		t.Errorf("steps = %d/%d, want 20/20", ap.steps, fcs.steps)
	}
	if rcs := s.Trace().Reconfigs(); len(rcs) != 0 {
		t.Errorf("unexpected reconfigurations: %v", rcs)
	}
	mustNoViolations(t, s)
}

// TestAlternatorFailureDrivesReconfiguration is the paper's section 7.1
// scenario: an alternator fails in Full Service, the electrical system
// reports the reduced power state, and the SCRAM commands the change to
// Reduced Service using the Table 1 sequence.
func TestAlternatorFailureDrivesReconfiguration(t *testing.T) {
	s, ap, fcs := buildSystem(t, func(o *Options) {
		o.Script = []envmon.Event{{Frame: 5, Factor: "alt1", Value: "failed"}}
	})
	if err := s.Run(15); err != nil {
		t.Fatal(err)
	}
	if got := s.Kernel().Current(); got != spectest.CfgReduced {
		t.Fatalf("current = %s, want reduced", got)
	}
	rcs := s.Trace().Reconfigs()
	if len(rcs) != 1 {
		t.Fatalf("reconfigurations = %v, want exactly 1", rcs)
	}
	r := rcs[0]
	// Trigger at 5; halt 6; prepare 7; init 8 (fcs) and 9 (autopilot,
	// init dependency); all normal again at 9.
	if r.StartC != 5 || r.EndC != 9 || r.From != spectest.CfgFull || r.To != spectest.CfgReduced {
		t.Errorf("reconfiguration = %+v", r)
	}
	if ap.halts == 0 || ap.preps == 0 || ap.inits == 0 {
		t.Errorf("autopilot phases not exercised: %+v", ap)
	}
	if fcs.inits != 1 {
		t.Errorf("fcs inits = %d, want 1", fcs.inits)
	}
	mustNoViolations(t, s)

	// The trace records the monitor as the interrupted application at
	// start_c.
	st, _ := s.Trace().At(5)
	if st.Apps[spectest.AppMonitor].Status != trace.StatusInterrupted {
		t.Errorf("monitor status at start_c = %v", st.Apps[spectest.AppMonitor].Status)
	}
	// p2 hosts nothing in reduced service: orderly shutdown.
	p2, _ := s.Pool().Proc("p2")
	if p2.State() != failstop.StateOff {
		t.Errorf("p2 state = %v, want off", p2.State())
	}
}

// TestDegradationChain drives Full -> Reduced -> Minimal through two
// alternator losses, then repairs back up to Full, checking configuration,
// power modes, and all four properties along the way.
func TestDegradationChain(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.Spec.DwellFrames = 2
		o.Script = []envmon.Event{
			{Frame: 5, Factor: "alt1", Value: "failed"},
			{Frame: 20, Factor: "alt2", Value: "failed"},
			{Frame: 40, Factor: "alt1", Value: "ok"},
			{Frame: 60, Factor: "alt2", Value: "ok"},
		}
	})
	if err := s.Run(80); err != nil {
		t.Fatal(err)
	}
	if got := s.Kernel().Current(); got != spectest.CfgFull {
		t.Fatalf("final configuration = %s, want full after repairs", got)
	}
	rcs := s.Trace().Reconfigs()
	if len(rcs) != 4 {
		t.Fatalf("reconfigurations = %d, want 4 (%v)", len(rcs), rcs)
	}
	wantSeq := [][2]spec.ConfigID{
		{spectest.CfgFull, spectest.CfgReduced},
		{spectest.CfgReduced, spectest.CfgMinimal},
		{spectest.CfgMinimal, spectest.CfgReduced},
		{spectest.CfgReduced, spectest.CfgFull},
	}
	for i, want := range wantSeq {
		if rcs[i].From != want[0] || rcs[i].To != want[1] {
			t.Errorf("reconfiguration %d = %s->%s, want %s->%s",
				i, rcs[i].From, rcs[i].To, want[0], want[1])
		}
	}
	mustNoViolations(t, s)

	// During minimal service the autopilot was off: find a cycle in
	// minimal and check.
	for _, st := range s.Trace().States {
		if st.Config == spectest.CfgMinimal && st.Apps[spectest.AppAP].Status == trace.StatusNormal {
			if st.Apps[spectest.AppAP].Spec != spec.SpecOff {
				t.Errorf("autopilot spec in minimal = %s, want off", st.Apps[spectest.AppAP].Spec)
			}
			break
		}
	}
}

// TestProcessorFailureMigratesState fails the FCS's processor and checks
// that the application is recorded interrupted, the system reconfigures,
// and the FCS resumes on p1 from the state last committed on p2 — the
// fail-stop stable-storage guarantee end to end.
func TestProcessorFailureMigratesState(t *testing.T) {
	s, _, fcs := buildSystem(t, func(o *Options) {
		o.Classifier = powerClassifier(true)
		o.ProcEvents = []ProcEvent{{Frame: 5, Proc: "p2", Kind: ProcFail}}
	})
	if err := s.Run(15); err != nil {
		t.Fatal(err)
	}
	if got := s.Kernel().Current(); got != spectest.CfgReduced {
		t.Fatalf("current = %s, want reduced", got)
	}
	mustNoViolations(t, s)

	// At the trigger frame the FCS (running on dead p2) is interrupted.
	st, _ := s.Trace().At(5)
	if st.Apps[spectest.AppFCS].Status != trace.StatusInterrupted {
		t.Errorf("fcs status at failure frame = %v", st.Apps[spectest.AppFCS].Status)
	}

	// The FCS stepped frames 0-4 committed (frame 5's write died with
	// p2), so the migrated counter is 5; post-reconfiguration steps
	// resume from there on p1.
	p1, _ := s.Pool().Proc("p1")
	region := p1.Stable().Region("app/" + string(spectest.AppFCS))
	n, err := region.GetInt64("count")
	if err != nil {
		t.Fatalf("migrated count: %v", err)
	}
	postSteps := int64(fcs.steps) - 6 // steps 0-5 ran pre-failure (frame 5 discarded)
	if want := 5 + postSteps; n != want {
		t.Errorf("count = %d, want %d (5 committed pre-failure + %d after)", n, want, postSteps)
	}
	if v, _ := region.GetString("spec"); v != "fcs-direct" {
		t.Errorf("spec on p1 = %q, want fcs-direct", v)
	}
}

// TestSCRAMStandbyTakeover fails the SCRAM's processor in the same frame a
// reconfiguration should trigger: the standby restores the kernel from the
// failed processor's stable storage and completes the protocol.
func TestSCRAMStandbyTakeover(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.Classifier = powerClassifier(true)
		o.SCRAMProc = "p2"
		o.StandbyProc = "p1"
		o.ProcEvents = []ProcEvent{{Frame: 5, Proc: "p2", Kind: ProcFail}}
	})
	if err := s.Run(15); err != nil {
		t.Fatal(err)
	}
	at, ok := s.TookOverAt()
	if !ok || at != 5 {
		t.Fatalf("takeover = %d,%v; want frame 5", at, ok)
	}
	if got := s.Kernel().Current(); got != spectest.CfgReduced {
		t.Fatalf("current = %s, want reduced", got)
	}
	mustNoViolations(t, s)
}

// TestSCRAMDeathWithoutStandbyStallsVisibly removes the standby: the dead
// SCRAM writes no more commands, the interrupted FCS never recovers, and the
// open-window SP3 check reports the stall.
func TestSCRAMDeathWithoutStandbyStallsVisibly(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.Classifier = powerClassifier(true)
		o.SCRAMProc = "p2"
		o.ProcEvents = []ProcEvent{{Frame: 5, Proc: "p2", Kind: ProcFail}}
	})
	if err := s.Run(30); err != nil {
		t.Fatal(err)
	}
	vs := s.CheckProperties()
	found := false
	for _, v := range vs {
		if v.Property == "SP3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stalled reconfiguration not reported; violations = %v", vs)
	}
}

// TestSeededSP4Violation breaks the autopilot's precondition: the
// reconfiguration completes on schedule but SP4 must catch the unsatisfied
// precondition.
func TestSeededSP4Violation(t *testing.T) {
	s, ap, _ := buildSystem(t, func(o *Options) {
		o.Script = []envmon.Event{{Frame: 5, Factor: "alt1", Value: "failed"}}
	})
	ap.breakPrecondition = true
	if err := s.Run(15); err != nil {
		t.Fatal(err)
	}
	vs := s.CheckProperties()
	if len(vs) == 0 {
		t.Fatal("broken precondition not detected")
	}
	for _, v := range vs {
		if v.Property != "SP4" {
			t.Errorf("unexpected violation: %s", v)
		}
	}
}

// TestSeededSP3Violation undersizes a transition bound (bypassing the
// static obligations, as the paper's framework would never allow): the
// runtime window exceeds it and SP3 reports the overrun.
func TestSeededSP3Violation(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.Script = []envmon.Event{{Frame: 5, Factor: "alt1", Value: "failed"}}
		for i := range o.Spec.Transitions {
			tr := &o.Spec.Transitions[i]
			if tr.From == spectest.CfgFull && tr.To == spectest.CfgReduced {
				tr.MaxFrames = 3 // required window is 5
			}
		}
		o.SkipObligations = true
	})
	if err := s.Run(15); err != nil {
		t.Fatal(err)
	}
	vs := s.CheckProperties()
	found := false
	for _, v := range vs {
		if v.Property == "SP3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("undersized bound not detected; violations = %v", vs)
	}
}

func TestObligationFailureRefusesConstruction(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.DwellFrames = 0 // transition graph has cycles: dwell_guard fails
	_, err := NewSystem(Options{
		Spec:       rs,
		Apps:       map[spec.AppID]App{spectest.AppAP: &testApp{id: spectest.AppAP}, spectest.AppFCS: &testApp{id: spectest.AppFCS}},
		Classifier: powerClassifier(false),
	})
	var oe *ObligationError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want ObligationError", err)
	}
	if len(oe.Report.Failures()) == 0 {
		t.Error("ObligationError carries no failures")
	}
}

func TestConstructionValidation(t *testing.T) {
	rs := spectest.ThreeConfig()
	apps := map[spec.AppID]App{
		spectest.AppAP:  &testApp{id: spectest.AppAP},
		spectest.AppFCS: &testApp{id: spectest.AppFCS},
	}
	classifier := powerClassifier(false)

	if _, err := NewSystem(Options{Apps: apps, Classifier: classifier}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := NewSystem(Options{Spec: rs, Apps: apps}); err == nil {
		t.Error("nil classifier accepted")
	}
	missing := map[spec.AppID]App{spectest.AppAP: apps[spectest.AppAP]}
	if _, err := NewSystem(Options{Spec: rs, Apps: missing, Classifier: classifier}); err == nil {
		t.Error("missing app implementation accepted")
	}
	extra := map[spec.AppID]App{
		spectest.AppAP:  apps[spectest.AppAP],
		spectest.AppFCS: apps[spectest.AppFCS],
		"ghost":         &testApp{id: "ghost"},
	}
	if _, err := NewSystem(Options{Spec: rs, Apps: extra, Classifier: classifier}); err == nil {
		t.Error("extra app implementation accepted")
	}
	if _, err := NewSystem(Options{Spec: rs, Apps: apps, Classifier: classifier, SCRAMProc: "ghost"}); err == nil {
		t.Error("unknown SCRAM proc accepted")
	}
	if _, err := NewSystem(Options{Spec: rs, Apps: apps, Classifier: classifier, StandbyProc: "ghost"}); err == nil {
		t.Error("unknown standby proc accepted")
	}
	if _, err := NewSystem(Options{Spec: rs, Apps: apps, Classifier: classifier, SCRAMProc: "p1", StandbyProc: "p1"}); err == nil {
		t.Error("standby == primary accepted")
	}
}

func TestRunUntilAndFrame(t *testing.T) {
	s, _, _ := buildSystem(t, nil)
	fired, err := s.RunUntil(50, func() bool { return s.Frame() >= 7 })
	if err != nil || !fired {
		t.Fatalf("RunUntil = %v, %v", fired, err)
	}
	if s.Frame() != 7 {
		t.Errorf("Frame = %d", s.Frame())
	}
	if s.Report() == nil || !s.Report().AllDischarged() {
		t.Error("report missing or undischarged")
	}
	if s.Env() == nil || s.Pool() == nil || s.Trace() == nil {
		t.Error("accessor returned nil")
	}
}

// TestRepeatedCampaignDeterminism runs the same scripted scenario twice and
// requires identical traces — the determinism the barrier scheduler, the
// hook ordering, and the frame-boundary delivery are designed to give.
func TestRepeatedCampaignDeterminism(t *testing.T) {
	run := func() *trace.Trace {
		s, _, _ := buildSystem(t, func(o *Options) {
			o.Spec.DwellFrames = 2
			o.Script = []envmon.Event{
				{Frame: 4, Factor: "alt1", Value: "failed"},
				{Frame: 12, Factor: "alt2", Value: "failed"},
				{Frame: 25, Factor: "alt1", Value: "ok"},
			}
		})
		if err := s.Run(40); err != nil {
			t.Fatal(err)
		}
		return s.Trace()
	}
	t1, t2 := run(), run()
	if t1.Len() != t2.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", t1.Len(), t2.Len())
	}
	for c := int64(0); c < t1.Len(); c++ {
		s1, _ := t1.At(c)
		s2, _ := t2.At(c)
		if s1.Config != s2.Config || s1.Env != s2.Env {
			t.Fatalf("cycle %d differs: %+v vs %+v", c, s1, s2)
		}
		for id, a1 := range s1.Apps {
			if a2 := s2.Apps[id]; a1 != a2 {
				t.Fatalf("cycle %d app %s differs: %+v vs %+v", c, id, a1, a2)
			}
		}
	}
}

// busApp publishes a heartbeat on the bus each step and counts what it
// hears from its peer.
type busApp struct {
	testApp
	topic    string
	peer     string
	received int
}

func (a *busApp) Step(env *FrameEnv) error {
	if env.Bus != nil {
		if err := env.Bus.Publish(a.topic, []byte("hb")); err != nil {
			return err
		}
		env.Bus.Subscribe(a.peer)
		a.received += len(env.Bus.Receive())
	}
	return a.testApp.Step(env)
}

func TestBusWiredIntoApps(t *testing.T) {
	ap := &busApp{testApp: testApp{id: spectest.AppAP}, topic: "ap/hb", peer: "fcs/hb"}
	fcs := &busApp{testApp: testApp{id: spectest.AppFCS}, topic: "fcs/hb", peer: "ap/hb"}
	s, err := NewSystem(Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  ap,
			spectest.AppFCS: fcs,
		},
		Classifier:     powerClassifier(false),
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		BusSchedule: bus.Schedule{
			{Owner: bus.EndpointID(spectest.AppAP), MaxMessages: 2},
			{Owner: bus.EndpointID(spectest.AppFCS), MaxMessages: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	// One-frame TDMA latency: 10 frames of publishing deliver 9 rounds.
	if ap.received == 0 || fcs.received == 0 {
		t.Errorf("bus traffic not flowing: ap=%d fcs=%d", ap.received, fcs.received)
	}
	if s.Bus() == nil {
		t.Error("Bus() returned nil")
	}
	delivered, _ := s.Bus().Stats()
	if delivered == 0 {
		t.Error("bus delivered nothing")
	}
}

// TestHotStandbyMasksFailure exercises the section 5.1 hybrid: the FCS has a
// hot standby on p1, so losing p2 is masked — no reconfiguration, service
// continues from the last committed state on the spare.
func TestHotStandbyMasksFailure(t *testing.T) {
	s, _, fcs := buildSystem(t, func(o *Options) {
		// The classifier ignores processor health: with masking in
		// place, the failure need not drive a reconfiguration.
		o.ProcEvents = []ProcEvent{{Frame: 5, Proc: "p2", Kind: ProcFail}}
		o.HotStandby = map[spec.AppID]spec.ProcID{spectest.AppFCS: "p1"}
	})
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if got := s.Kernel().Current(); got != spectest.CfgFull {
		t.Fatalf("configuration = %s, want full (failure masked)", got)
	}
	if rcs := s.Trace().Reconfigs(); len(rcs) != 0 {
		t.Fatalf("unexpected reconfigurations: %v", rcs)
	}
	mustNoViolations(t, s)
	// The FCS missed only the failure frame: frames 0-4 committed on p2,
	// frame 5's write died with p2, and work resumed on p1 from frame 6.
	if fcs.steps != 20 {
		t.Errorf("fcs steps = %d, want 20 (it kept running)", fcs.steps)
	}
	p1, _ := s.Pool().Proc("p1")
	n, err := p1.Stable().Region("app/" + string(spectest.AppFCS)).GetInt64("count")
	if err != nil {
		t.Fatal(err)
	}
	// 5 committed before the failure + frames 6..19 on the spare = 19.
	if n != 19 {
		t.Errorf("count = %d, want 19", n)
	}
	// The trace never marks the FCS interrupted (the failover happened
	// within the failure frame).
	for _, st := range s.Trace().States {
		if st.Apps[spectest.AppFCS].Status == trace.StatusInterrupted {
			t.Fatalf("fcs interrupted at cycle %d despite hot standby", st.Cycle)
		}
	}
}

func TestHotStandbyValidation(t *testing.T) {
	_, err := NewSystem(Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  &testApp{id: spectest.AppAP},
			spectest.AppFCS: &testApp{id: spectest.AppFCS},
		},
		Classifier: powerClassifier(false),
		HotStandby: map[spec.AppID]spec.ProcID{"ghost": "p1"},
	})
	if err == nil {
		t.Error("hot standby for unknown app accepted")
	}
	_, err = NewSystem(Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  &testApp{id: spectest.AppAP},
			spectest.AppFCS: &testApp{id: spectest.AppFCS},
		},
		Classifier: powerClassifier(false),
		HotStandby: map[spec.AppID]spec.ProcID{spectest.AppFCS: "ghost-proc"},
	})
	if err == nil {
		t.Error("hot standby on unknown processor accepted")
	}
}

// divergentApp runs a self-checking pair computation at a chosen frame with
// deliberately divergent replicas, halting its own processor — a spontaneous
// fail-stop failure raised inside the frame rather than scheduled from
// outside.
type divergentApp struct {
	testApp
	failAt int64
	pair   *failstop.SelfCheckingPair
}

func (a *divergentApp) Step(env *FrameEnv) error {
	if env.Frame == a.failAt && a.pair != nil {
		_, err := a.pair.Run(env.Frame,
			func() ([]byte, error) { return []byte("replica-a"), nil },
			func() ([]byte, error) { return []byte("replica-b"), nil },
		)
		if err == nil {
			return errors.New("divergent replicas agreed")
		}
		// Fail-stop: the processor has halted; this frame's work is
		// lost with it.
		return nil
	}
	return a.testApp.Step(env)
}

// TestSelfCheckingPairFailureDrivesReconfiguration closes the loop from the
// fail-stop detection mechanism to assured reconfiguration: a divergence
// halts the FCS's processor mid-frame, the hardware fault signal reaches the
// SCRAM in the same frame, and the system reconfigures with all properties
// intact.
func TestSelfCheckingPairFailureDrivesReconfiguration(t *testing.T) {
	ap := &testApp{id: spectest.AppAP}
	fcs := &divergentApp{testApp: testApp{id: spectest.AppFCS}, failAt: 40}
	s, err := NewSystem(Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  ap,
			spectest.AppFCS: fcs,
		},
		Classifier:     powerClassifier(true),
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p2, _ := s.Pool().Proc("p2")
	fcs.pair = failstop.NewSelfCheckingPair(p2)

	if err := s.Run(60); err != nil {
		t.Fatal(err)
	}
	if p2.State() != failstop.StateFailed {
		t.Fatalf("p2 state = %v, want failed from divergence", p2.State())
	}
	if got := s.Kernel().Current(); got != spectest.CfgReduced {
		t.Fatalf("configuration = %s, want reduced", got)
	}
	rcs := s.Trace().Reconfigs()
	if len(rcs) != 1 || rcs[0].StartC != 40 {
		t.Fatalf("reconfigurations = %v, want one starting at the divergence frame", rcs)
	}
	mustNoViolations(t, s)
}

// TestImmediateRetargetEndToEnd drives the full system under the immediate
// retarget policy: a second failure arrives while the first reconfiguration
// is still halting, the SCRAM re-chooses from the source configuration, and
// the single extended window lands directly on minimal service with all
// properties intact.
func TestImmediateRetargetEndToEnd(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.Spec.Retarget = spec.RetargetImmediate
		o.Spec.DwellFrames = 1
		// The canonical spec already declares the self-transition
		// bounds the immediate policy obliges. Immediate policy
		// inflates required windows by the worst prepare; the
		// fixture's bounds of 8 still hold (required 6), so
		// obligations discharge.
		o.Script = []envmon.Event{
			{Frame: 5, Factor: "alt1", Value: "failed"},
			{Frame: 6, Factor: "alt2", Value: "failed"}, // during the halt frame
		}
	})
	if err := s.Run(30); err != nil {
		t.Fatal(err)
	}
	if got := s.Kernel().Current(); got != spectest.CfgMinimal {
		t.Fatalf("configuration = %s, want minimal via retarget", got)
	}
	rcs := s.Trace().Reconfigs()
	if len(rcs) != 1 {
		t.Fatalf("reconfigurations = %v, want exactly one (retargeted) window", rcs)
	}
	if rcs[0].From != spectest.CfgFull || rcs[0].To != spectest.CfgMinimal {
		t.Errorf("window = %s -> %s, want full -> minimal", rcs[0].From, rcs[0].To)
	}
	mustNoViolations(t, s)
	retargeted := false
	for _, e := range s.Kernel().Events() {
		if e.Kind == scram.EventRetarget {
			retargeted = true
		}
	}
	if !retargeted {
		t.Error("no retarget event logged")
	}
}

// TestMultiFramePhasesEndToEnd runs BasicApps whose phases take multiple
// frames, checking that the runtime drives each phase for its declared
// duration and the extended window still satisfies every property.
func TestMultiFramePhasesEndToEnd(t *testing.T) {
	rs := spectest.ThreeConfig()
	for i := range rs.Apps {
		for j := range rs.Apps[i].Specs {
			sp := &rs.Apps[i].Specs[j]
			sp.HaltFrames, sp.PrepareFrames, sp.InitFrames = 2, 2, 2
		}
	}
	// Window: 1 + 2 + 2 + 4 (chained 2-frame inits) = 9; bounds of 8 are
	// too tight, so resize.
	for i := range rs.Transitions {
		rs.Transitions[i].MaxFrames = 12
	}
	apps := map[spec.AppID]App{}
	basics := map[spec.AppID]*BasicApp{}
	for _, decl := range rs.RealApps() {
		decl := decl
		ba := NewBasicApp(&decl)
		apps[decl.ID] = ba
		basics[decl.ID] = ba
	}
	s, err := NewSystem(Options{
		Spec:           rs,
		Apps:           apps,
		Classifier:     powerClassifier(false),
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		Script:         []envmon.Event{{Frame: 5, Factor: "alt1", Value: "failed"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(30); err != nil {
		t.Fatal(err)
	}
	if got := s.Kernel().Current(); got != spectest.CfgReduced {
		t.Fatalf("configuration = %s", got)
	}
	rcs := s.Trace().Reconfigs()
	if len(rcs) != 1 || rcs[0].Frames() != 9 {
		t.Fatalf("reconfigurations = %v, want one 9-frame window", rcs)
	}
	mustNoViolations(t, s)
	// BasicApps kept stepping before and after.
	if basics[spectest.AppAP].Steps() == 0 {
		t.Error("autopilot never stepped")
	}
}

// TestRedundantMonitors declares two monitor virtual-applications watching
// the same environment: duplicated change signals must yield exactly one
// reconfiguration, and both monitors appear (non-normal) in the trace during
// the window.
func TestRedundantMonitors(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.Apps = append(rs.Apps, spec.App{
		ID: "power-monitor-b", Virtual: true,
		Specs: []spec.Specification{{ID: "monitor", HaltFrames: 1, PrepareFrames: 1, InitFrames: 1}},
	})
	ap := &testApp{id: spectest.AppAP}
	fcs := &testApp{id: spectest.AppFCS}
	s, err := NewSystem(Options{
		Spec:           rs,
		Apps:           map[spec.AppID]App{spectest.AppAP: ap, spectest.AppFCS: fcs},
		Classifier:     powerClassifier(false),
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		Script:         []envmon.Event{{Frame: 5, Factor: "alt1", Value: "failed"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	rcs := s.Trace().Reconfigs()
	if len(rcs) != 1 {
		t.Fatalf("reconfigurations = %v, want exactly 1 despite duplicate signals", rcs)
	}
	mustNoViolations(t, s)
	// Both monitors are tracked through the window (interior non-normal).
	mid, _ := s.Trace().At(rcs[0].StartC + 1)
	for _, id := range []spec.AppID{spectest.AppMonitor, "power-monitor-b"} {
		if st, ok := mid.Apps[id]; !ok || st.Status.Normal() {
			t.Errorf("monitor %s interior status = %+v", id, st)
		}
	}
}

// errorApp fails its Step with a simulation-level error at a chosen frame.
type errorApp struct {
	testApp
	errAt int64
}

func (a *errorApp) Step(env *FrameEnv) error {
	if env.Frame == a.errAt {
		return errors.New("injected simulation bug")
	}
	return a.testApp.Step(env)
}

// TestAppErrorSurfacesFromRun: a Tick error is a simulation bug, not a
// modeled failure; it must surface from Run with the app identified.
func TestAppErrorSurfacesFromRun(t *testing.T) {
	ap := &errorApp{testApp: testApp{id: spectest.AppAP}, errAt: 7}
	fcs := &testApp{id: spectest.AppFCS}
	s, err := NewSystem(Options{
		Spec:           spectest.ThreeConfig(),
		Apps:           map[spec.AppID]App{spectest.AppAP: ap, spectest.AppFCS: fcs},
		Classifier:     powerClassifier(false),
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.Run(20)
	if err == nil {
		t.Fatal("app error did not surface")
	}
	if !strings.Contains(err.Error(), "autopilot") || !strings.Contains(err.Error(), "injected simulation bug") {
		t.Errorf("error = %v", err)
	}
	if s.Frame() != 8 {
		t.Errorf("stopped at frame %d, want 8 (error during frame 7)", s.Frame())
	}
}

func TestObligationErrorMessage(t *testing.T) {
	rs := spectest.ThreeConfig()
	rs.DwellFrames = 0
	_, err := NewSystem(Options{
		Spec: rs,
		Apps: map[spec.AppID]App{
			spectest.AppAP:  &testApp{id: spectest.AppAP},
			spectest.AppFCS: &testApp{id: spectest.AppFCS},
		},
		Classifier: powerClassifier(false),
	})
	var oe *ObligationError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(oe.Error(), "dwell_guard") {
		t.Errorf("Error() = %q, want obligation names", oe.Error())
	}
}

func TestStepAndHooks(t *testing.T) {
	s, _, _ := buildSystem(t, nil)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Frame() != 1 {
		t.Errorf("Frame = %d", s.Frame())
	}
	// User hooks run after built-ins, once per frame.
	ran := 0
	s.AddCommitHook(func(frame.Context) error {
		ran++
		return nil
	})
	if err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("user hook ran %d times, want 3", ran)
	}
	// Extra tasks join the frame loop.
	ticked := 0
	if err := s.AddTask(taskFunc2{id: "extra", fn: func(frame.Context) error {
		ticked++
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if ticked != 2 {
		t.Errorf("extra task ticked %d times, want 2", ticked)
	}
}

// taskFunc2 adapts a function to frame.Task for system-level tests.
type taskFunc2 struct {
	id string
	fn func(frame.Context) error
}

func (t taskFunc2) TaskID() string             { return t.id }
func (t taskFunc2) Tick(c frame.Context) error { return t.fn(c) }

func TestUnknownProcEventKind(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.ProcEvents = []ProcEvent{{Frame: 3, Proc: "p2", Kind: ProcEventKind(99)}}
	})
	// The bad event is applied at the end of frame 2 (for frame 3).
	err := s.Run(5)
	if err == nil || !strings.Contains(err.Error(), "unknown processor event") {
		t.Fatalf("err = %v", err)
	}
}

// TestCompressionEndToEnd runs the section 6.3 relaxed protocol through the
// whole system: heterogeneous phase durations, compressed window of 6 frames
// (vs 8 staged), all properties intact.
func TestCompressionEndToEnd(t *testing.T) {
	shape := func(compress bool) int64 {
		rs := spectest.ThreeConfig()
		rs.Deps = nil
		rs.Compression = compress
		for i := range rs.Apps {
			for j := range rs.Apps[i].Specs {
				sp := &rs.Apps[i].Specs[j]
				switch rs.Apps[i].ID {
				case spectest.AppAP:
					sp.HaltFrames, sp.PrepareFrames, sp.InitFrames = 3, 1, 1
				case spectest.AppFCS:
					sp.HaltFrames, sp.PrepareFrames, sp.InitFrames = 1, 3, 1
				}
			}
		}
		for i := range rs.Transitions {
			rs.Transitions[i].MaxFrames = 12
		}
		apps := map[spec.AppID]App{}
		for _, decl := range rs.RealApps() {
			decl := decl
			apps[decl.ID] = NewBasicApp(&decl)
		}
		s, err := NewSystem(Options{
			Spec:           rs,
			Apps:           apps,
			Classifier:     powerClassifier(false),
			InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
			Script:         []envmon.Event{{Frame: 5, Factor: "alt1", Value: "failed"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.Run(25); err != nil {
			t.Fatal(err)
		}
		if got := s.Kernel().Current(); got != spectest.CfgReduced {
			t.Fatalf("configuration = %s (compress=%v)", got, compress)
		}
		if vs := s.CheckProperties(); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("compress=%v: %s", compress, v)
			}
			t.FailNow()
		}
		rcs := s.Trace().Reconfigs()
		if len(rcs) != 1 {
			t.Fatalf("reconfigurations = %v", rcs)
		}
		return rcs[0].Frames()
	}
	staged := shape(false)
	compressed := shape(true)
	if staged != 8 || compressed != 6 {
		t.Errorf("windows staged/compressed = %d/%d, want 8/6", staged, compressed)
	}
}

// TestHardenedStorageTransparent: with fault-free hardened media the system
// behaves exactly like the plain-store build — reconfiguration completes,
// properties hold, and the commit/scrub hooks run.
func TestHardenedStorageTransparent(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.HardenedStorage = &stable.MediaProfile{Replicas: 3, Seed: 1, Oracle: true}
		o.Script = []envmon.Event{{Frame: 5, Factor: "alt1", Value: "failed"}}
	})
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if got := s.Kernel().Current(); got != spectest.CfgReduced {
		t.Fatalf("current = %s, want reduced", got)
	}
	mustNoViolations(t, s)
	if s.StagedHighWater() == 0 {
		t.Error("StagedHighWater = 0; commit hook never saw staged writes")
	}
	for _, p := range s.Pool().Procs() {
		rep := p.Stable().Hardened()
		if rep == nil {
			t.Fatalf("%s: store not hardened", p.ID())
		}
		st := rep.Stats()
		if st.SilentWrongData != 0 || st.Unrecoverable != 0 {
			t.Errorf("%s: stats %+v on perfect media", p.ID(), st)
		}
		if st.ScrubRuns == 0 {
			t.Errorf("%s: scrub never ran", p.ID())
		}
	}
}

// TestHardenedStorageDefeatHaltsProcessor: a single replica under heavy rot
// must fail-stop the hosting processor rather than serve wrong data, and the
// platform reconfigures around the loss.
func TestHardenedStorageDefeatHaltsProcessor(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.HardenedStorage = &stable.MediaProfile{
			Replicas: 1,
			Seed:     3,
			Faults:   stable.FaultProfile{BitRotRate: 1},
			Oracle:   true,
		}
		o.Classifier = powerClassifier(true)
	})
	if err := s.Run(60); err != nil {
		t.Fatal(err)
	}
	p2, err := s.Pool().Proc("p2")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Alive() {
		t.Fatal("p2 survived a defeated single-replica store")
	}
	if p2.StorageFault() == nil {
		t.Fatal("p2 halted without a recorded storage fault")
	}
	// SCRAM hosts run on exempt (fault-free) media and stay up.
	p1, _ := s.Pool().Proc("p1")
	if !p1.Alive() {
		t.Fatal("SCRAM host p1 lost despite media exemption")
	}
	if st := p2.Stable().Hardened().Stats(); st.SilentWrongData != 0 {
		t.Fatalf("silent wrong data = %d", st.SilentWrongData)
	}
	mustNoViolations(t, s)
}
