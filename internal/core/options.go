package core

import (
	"errors"
	"fmt"

	"repro/internal/det"
	"repro/internal/spec"
)

// Typed per-field validation errors. Validate wraps each with the offending
// field's context, so callers test them with errors.Is — a campaign driver
// can validate a whole run matrix up front and report which arm carries
// which defect instead of failing one NewSystem call at a time.
var (
	// ErrMissingSpec reports a nil Options.Spec.
	ErrMissingSpec = errors.New("core: Options.Spec is required")
	// ErrMissingClassifier reports a nil Options.Classifier.
	ErrMissingClassifier = errors.New("core: Options.Classifier is required")
	// ErrMissingApp reports a declared real application with no entry in
	// Options.Apps.
	ErrMissingApp = errors.New("core: no implementation provided for application")
	// ErrUnknownApp reports an Options.Apps or Options.HotStandby entry
	// naming an application the specification does not declare (or declares
	// virtual — monitors take no implementation and no standby).
	ErrUnknownApp = errors.New("core: unknown or virtual application")
	// ErrUnknownProc reports an Options field naming a processor the
	// platform does not declare.
	ErrUnknownProc = errors.New("core: unknown processor")
	// ErrStandbyConflict reports Options.StandbyProc equal to the SCRAM's
	// primary processor: a standby on the same hardware masks nothing.
	ErrStandbyConflict = errors.New("core: SCRAM standby must differ from primary")
)

// hasProc reports whether the platform declares the processor.
func hasProc(rs *spec.ReconfigSpec, id spec.ProcID) bool {
	for _, p := range rs.Platform.Procs {
		if p.ID == id {
			return true
		}
	}
	return false
}

// Validate checks the per-field consistency of the options without building
// anything: required fields are present, every declared real application has
// an implementation, no implementation or hot standby names an undeclared or
// virtual application, and every named processor exists on the platform.
// Each failure wraps one of the exported sentinel errors, so callers can
// dispatch with errors.Is. NewSystem delegates to it; campaign drivers call
// it directly to reject a whole run matrix before spending any frames.
//
// Validate does not discharge the specification's static proof obligations
// (transition coverage, timing, resources); those concern the specification
// rather than the options and remain NewSystem's job, reported via
// ObligationError.
func (o Options) Validate() error {
	if o.Spec == nil {
		return ErrMissingSpec
	}
	if o.Classifier == nil {
		return ErrMissingClassifier
	}
	rs := o.Spec
	for _, a := range rs.RealApps() {
		if _, ok := o.Apps[a.ID]; !ok {
			return fmt.Errorf("%w: %q", ErrMissingApp, a.ID)
		}
	}
	// Sorted iteration keeps the error reported for a bad Options map the
	// same on every run (framedet: map order must not pick the failure).
	for _, id := range det.SortedKeys(o.Apps) {
		if a, ok := rs.AppByID(id); !ok || a.Virtual {
			return fmt.Errorf("%w: implementation provided for %q", ErrUnknownApp, id)
		}
	}
	for _, id := range det.SortedKeys(o.HotStandby) {
		if a, ok := rs.AppByID(id); !ok || a.Virtual {
			return fmt.Errorf("%w: hot standby declared for %q", ErrUnknownApp, id)
		}
		if procID := o.HotStandby[id]; !hasProc(rs, procID) {
			return fmt.Errorf("%w: hot standby for %q names %q", ErrUnknownProc, id, procID)
		}
	}
	scramProc := o.SCRAMProc
	if scramProc == "" && len(rs.Platform.Procs) > 0 {
		scramProc = rs.Platform.Procs[0].ID
	}
	if o.SCRAMProc != "" && !hasProc(rs, o.SCRAMProc) {
		return fmt.Errorf("%w: SCRAM processor %q", ErrUnknownProc, o.SCRAMProc)
	}
	if o.StandbyProc != "" {
		if !hasProc(rs, o.StandbyProc) {
			return fmt.Errorf("%w: SCRAM standby processor %q", ErrUnknownProc, o.StandbyProc)
		}
		if o.StandbyProc == scramProc {
			return ErrStandbyConflict
		}
	}
	return nil
}
