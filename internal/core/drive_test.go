package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/envmon"
	"repro/internal/spectest"
)

// driveArtifacts JSON-encodes every observable artifact of a finished run,
// matching the parity-test idiom.
func driveArtifacts(t *testing.T, s *System) (tr, ring []byte) {
	t.Helper()
	enc := func(v any) []byte {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	_, rec := s.Telemetry()
	return enc(s.Trace()), enc(rec.Events())
}

// TestInjectFactorMatchesScript holds the drive API to its determinism
// contract: InjectFactor called between frames when Frame() == f produces a
// run byte-identical to a scripted envmon.Event{Frame: f}.
func TestInjectFactorMatchesScript(t *testing.T) {
	scripted, _, _ := buildSystem(t, func(o *Options) {
		o.TraceSeed = 77
		o.Script = []envmon.Event{
			{Frame: 10, Factor: "alt1", Value: "failed"},
			{Frame: 40, Factor: "alt1", Value: "ok"},
		}
	})
	if err := scripted.Run(80); err != nil {
		t.Fatal(err)
	}

	driven, _, _ := buildSystem(t, func(o *Options) { o.TraceSeed = 77 })
	for driven.Frame() < 80 {
		switch driven.Frame() {
		case 10:
			driven.InjectFactor("alt1", "failed")
		case 40:
			driven.InjectFactor("alt1", "ok")
		}
		if err := driven.Step(); err != nil {
			t.Fatal(err)
		}
	}

	sTr, sRing := driveArtifacts(t, scripted)
	dTr, dRing := driveArtifacts(t, driven)
	if !bytes.Equal(sTr, dTr) {
		t.Errorf("trace differs between scripted and driven run:\n scripted: %.400s\n driven:   %.400s", sTr, dTr)
	}
	if !bytes.Equal(sRing, dRing) {
		t.Errorf("flight-recorder ring differs between scripted and driven run")
	}
}

// TestScheduleProcEventMatchesOptions proves runtime-scheduled processor
// events replay identically to the same events declared in Options.
func TestScheduleProcEventMatchesOptions(t *testing.T) {
	events := []ProcEvent{
		{Frame: 15, Proc: "p2", Kind: ProcFail},
		{Frame: 35, Proc: "p2", Kind: ProcRepair},
	}
	scripted, _, _ := buildSystem(t, func(o *Options) {
		o.TraceSeed = 5
		o.Classifier = powerClassifier(true)
		o.ProcEvents = events
	})
	if err := scripted.Run(80); err != nil {
		t.Fatal(err)
	}

	driven, _, _ := buildSystem(t, func(o *Options) {
		o.TraceSeed = 5
		o.Classifier = powerClassifier(true)
	})
	for _, ev := range events {
		if err := driven.ScheduleProcEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := driven.Run(80); err != nil {
		t.Fatal(err)
	}

	sTr, sRing := driveArtifacts(t, scripted)
	dTr, dRing := driveArtifacts(t, driven)
	if !bytes.Equal(sTr, dTr) {
		t.Errorf("trace differs between Options events and ScheduleProcEvent:\n scripted: %.400s\n driven:   %.400s", sTr, dTr)
	}
	if !bytes.Equal(sRing, dRing) {
		t.Errorf("flight-recorder ring differs between Options events and ScheduleProcEvent")
	}
}

func TestScheduleProcEventValidation(t *testing.T) {
	s, _, _ := buildSystem(t, nil)
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleProcEvent(ProcEvent{Frame: 20, Proc: "nope", Kind: ProcFail}); err == nil {
		t.Error("unknown processor accepted")
	}
	if err := s.ScheduleProcEvent(ProcEvent{Frame: 5, Proc: "p2", Kind: ProcFail}); err == nil {
		t.Error("past failure accepted")
	}
	if err := s.ScheduleProcEvent(ProcEvent{Frame: 10, Proc: "p2", Kind: ProcRepair}); err == nil {
		t.Error("repair at the next frame accepted (its application point has passed)")
	}
	if err := s.ScheduleProcEvent(ProcEvent{Frame: 20, Proc: "p2", Kind: 0}); err == nil {
		t.Error("unknown event kind accepted")
	}
	if err := s.ScheduleProcEvent(ProcEvent{Frame: 10, Proc: "p2", Kind: ProcFail}); err != nil {
		t.Errorf("failure at the next frame rejected: %v", err)
	}
}

// TestInjectStorageFault verifies the between-frame storage-fault injection:
// the target halts with the injected fault attributed, its committed storage
// stays pollable, and the system reconfigures around the loss.
func TestInjectStorageFault(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.Classifier = powerClassifier(true)
	})
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectStorageFault("p2"); err != nil {
		t.Fatal(err)
	}
	if s.ProcAlive("p2") {
		t.Fatal("p2 alive after injected storage fault")
	}
	p, err := s.Pool().Proc("p2")
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(p.StorageFault(), ErrInjectedStorageFault) {
		t.Errorf("storage fault = %v, want ErrInjectedStorageFault", p.StorageFault())
	}
	// Double injection and unknown processors are rejected.
	if err := s.InjectStorageFault("p2"); err == nil {
		t.Error("second injection on a down processor accepted")
	}
	if err := s.InjectStorageFault("nope"); err == nil {
		t.Error("unknown processor accepted")
	}
	// Committed storage is still pollable after the halt.
	if _, err := s.Pool().PollStable("p2"); err != nil {
		t.Errorf("PollStable after storage fault: %v", err)
	}
	// The system detects the halt and keeps running.
	if err := s.Run(40); err != nil {
		t.Fatal(err)
	}
	mustNoViolations(t, s)
	if got := s.Kernel().Current(); got == spectest.CfgFull {
		t.Errorf("system still in full service after losing p2")
	}
}
