package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/det"
	"repro/internal/envmon"
	"repro/internal/failstop"
	"repro/internal/frame"
	"repro/internal/membership"
	"repro/internal/scram"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/statics"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ObligationError reports that a specification's static proof obligations
// failed, refusing system construction — the analog of a failed PVS type
// check of an instantiation against the abstract architecture.
type ObligationError struct {
	Report *statics.Report
}

// Error lists the failed obligations.
func (e *ObligationError) Error() string {
	return fmt.Sprintf("core: static obligations failed: %v", e.Report.Failures())
}

// ProcEventKind selects a processor fault-injection action.
type ProcEventKind int

// Processor event kinds.
const (
	// ProcFail makes the processor fail with fail-stop semantics during
	// the event's frame: the frame's staged stable writes are lost, the
	// last committed state survives, and monitors observe the failure in
	// the same frame.
	ProcFail ProcEventKind = iota + 1
	// ProcRepair restores the processor between frames: it is alive from
	// the event's frame on.
	ProcRepair
)

// ProcEvent schedules a processor failure or repair.
type ProcEvent struct {
	Frame int64
	Proc  spec.ProcID
	Kind  ProcEventKind
}

// ProcHealthFactor returns the environment factor name carrying a
// processor's health, which classifiers can consult. It delegates to
// envmon.ProcHealth so spec-level packages can name the factor without
// importing the runtime.
func ProcHealthFactor(id spec.ProcID) envmon.Factor {
	return envmon.ProcHealth(id)
}

// Health factor values.
const (
	ProcOK     = envmon.ProcOK
	ProcFailed = envmon.ProcFailed
)

// Options configures NewSystem.
type Options struct {
	// Spec is the reconfiguration specification. Required.
	Spec *spec.ReconfigSpec
	// Apps provides the implementation of every non-virtual application
	// declared in the specification. Required.
	Apps map[spec.AppID]App
	// Classifier abstracts environment factors into the specification's
	// environment states. Required.
	Classifier envmon.Classifier
	// InitialFactors seeds the environment. Processor health factors are
	// added automatically (all "ok").
	InitialFactors map[envmon.Factor]string
	// Script drives deterministic environment evolution.
	Script []envmon.Event
	// ProcEvents schedules processor failures and repairs.
	ProcEvents []ProcEvent
	// BusSchedule, when non-nil, attaches a time-triggered bus with the
	// given TDMA schedule; every application gets an endpoint named by
	// its application ID.
	BusSchedule bus.Schedule
	// SCRAMProc selects the processor hosting the SCRAM kernel; defaults
	// to the first platform processor.
	SCRAMProc spec.ProcID
	// StandbyProc, when set, enables the replicated SCRAM: a standby on
	// this processor takes over if the SCRAM's processor fails.
	StandbyProc spec.ProcID
	// Membership, when non-nil, enables dynamic processor membership: a
	// frame-synchronous membership view with epochs persisted to stable
	// storage, online re-verification of every join and leave against the
	// static obligations, crash-detected eviction, catch-up of joining
	// standbys from the SCRAM's stable state, and the self-stabilization
	// path that converges from a corrupted membership record. The SCRAM's
	// hosts (primary and configured standby) are always required members.
	Membership *MembershipOptions
	// HotStandby maps applications to spare processors, enabling the
	// section 5.1 hybrid: a failure of a hot-standby application's host
	// is masked — the application fails over to the spare within the
	// failure frame, restoring from the failed host's stable storage —
	// while failures of everything else still trigger reconfiguration.
	HotStandby map[spec.AppID]spec.ProcID
	// HardenedStorage, when non-nil, mounts checksummed, replicated stable
	// storage (built from deliberately unreliable media per the profile) on
	// every processor instead of the default perfect in-memory store. The
	// SCRAM's host processors always get fault-free media: the paper
	// assumes a dependable SCRAM, so storage-fault campaigns target the
	// application processors. An unrecoverable storage fault halts the
	// owning processor with fail-stop semantics.
	HardenedStorage *stable.MediaProfile
	// TelemetryCapacity sizes the flight-recorder ring. Zero selects the
	// default capacity; a negative value disables the telemetry layer
	// entirely (no registry, no recorder, no per-frame persistence) —
	// the ablation arm of the observability-overhead benchmark.
	TelemetryCapacity int
	// TraceSeed salts the causal-trace identities: runs with different
	// seeds produce distinct trace IDs, equal seeds reproduce them
	// byte-identically. Campaign drivers pass their per-run seed; zero is
	// a valid (and deterministic) default.
	TraceSeed int64
	// RetainFrames bounds the system's history to a sliding window of
	// frames: the sys_trace drops states and the flight recorder drops
	// journal events (live and persisted chunks alike) older than the
	// horizon, so a tenant's memory and stable-store footprint are flat
	// in frames — the "weeks-long run" mode. Zero (the default) retains
	// everything. Retention is configuration, not runtime state: property
	// checks and flightrec cover the retained window, and a replayed or
	// recovered run must use the same horizon for its journal and trace
	// to stay byte-identical with the original.
	RetainFrames int64
	// DisableTracing turns the causal trace layer off while leaving the
	// rest of the telemetry stack on — the ablation arm of the tracing
	// overhead benchmark.
	DisableTracing bool
	// Paced runs frames against the wall clock (soft real time) instead
	// of as fast as possible.
	Paced bool
	// Sequential runs frame tasks one after another inside the scheduler's
	// goroutine instead of on per-task goroutines — the scheduler ablation
	// mode. Both modes must produce identical traces, reports and
	// telemetry on the same script (the frame barrier already serializes
	// observable effects); the parity tests hold them to that.
	Sequential bool
	// SkipObligations builds the system even if static obligations fail.
	// It exists so tests can execute deliberately broken specifications
	// and watch the runtime property checkers catch them; production
	// callers must not set it.
	SkipObligations bool
}

// MembershipOptions configures the dynamic-membership layer.
type MembershipOptions struct {
	// Events schedules join and leave operations; each one is re-verified
	// online before its epoch commits, and an unverifiable change is
	// rejected with the prior epoch still serving.
	Events []membership.Event
	// CatchUpFrames is the number of catch-up copy frames a joining
	// processor needs before it is takeover-eligible; 0 selects the
	// default of 3.
	CatchUpFrames int
}

// System is a fully wired reconfigurable system.
type System struct {
	rs       *spec.ReconfigSpec
	report   *statics.Report
	sched    *frame.Scheduler
	pool     *failstop.Pool
	env      *envmon.Environment
	bus      *bus.Bus
	manager  *scramManager
	classify envmon.Classifier

	// mem is the dynamic-membership manager, nil unless Options.Membership
	// was set; memOwners is its reused per-frame app-ownership scratch map.
	mem       *membership.Manager
	memOwners map[spec.AppID]spec.ProcID

	runtimes map[spec.AppID]*appRuntime
	monitors []*envmon.Monitor
	script   *envmon.Script
	events   []ProcEvent
	tr       *trace.Trace
	// retain is Options.RetainFrames: the sliding history window recordHook
	// trims the trace behind (0 keeps everything).
	retain int64

	// realApps caches rs.RealApps() (declaration order) and procHealth the
	// per-processor health factor names, so the per-frame hooks do not
	// rebuild the slice or re-concatenate factor strings every frame.
	realApps   []spec.App
	procHealth []envmon.Factor // indexed like pool.Procs()

	// envSeen/envState cache the classified environment keyed on the
	// environment's change version: recordHook and the trace need the
	// classification every frame, but it can only change when some factor
	// changed.
	envSeen  uint64
	envValid bool
	envState spec.EnvState

	// lastApps is the Apps map of the most recently appended trace state
	// (owned by the trace, never mutated in place). On frames whose per-app
	// states all match the previous frame's, recordHook reuses the map
	// instead of allocating an identical one — the steady-state case.
	// appScratch holds the frame's computed per-app states (indexed like
	// rs.Apps) while deciding.
	lastApps   map[spec.AppID]trace.AppState
	appScratch []trace.AppState
	// procScratch and lowScratch are the reused needed/low-power sets of
	// the power hooks, cleared per use so reconfiguration frames apply
	// processor modes without rebuilding maps.
	procScratch map[spec.ProcID]bool
	lowScratch  map[spec.ProcID]bool
	// stateChanged reports whether the state recordHook just appended
	// differs from the previous frame's (config, env, or any app state).
	// telemetryHook keys its run-length-encoded frame-state sampling off
	// this flag instead of re-walking the app maps every frame.
	stateChanged bool
	lastCfgRec   spec.ConfigID
	lastEnvRec   spec.EnvState

	// telReg and telRec are the system's metrics registry and
	// flight-recorder ring; nil when telemetry is disabled. telSink is the
	// always non-nil recording surface (the no-op sink under ablation),
	// selected once at construction. lastFS and lastFSFrame run-length-
	// encode the frame-state samples: a sample is recorded only when the
	// state differs from the previous frame's, and telFrame tracks the
	// last frame the telemetry hook observed so FlushTelemetry can close
	// the final run with one last sample.
	telReg      *telemetry.Registry
	telRec      *telemetry.Recorder
	telSink     telemetry.Sink
	book        *telemetry.SpanBook
	lastFS      *telemetry.FrameState
	lastFSFrame int64
	telFrame    int64

	// lastPowerIsPlan/lastPowerSeq/lastPowerTarget identify the power-mode
	// decision already applied (a plan's transition modes or a completed
	// configuration's steady-state modes), compared field-wise so the
	// per-frame power hook builds no key strings.
	lastPowerIsPlan bool
	lastPowerSeq    int64
	lastPowerTarget spec.ConfigID
	stagedHighWater int
}

// telObserver feeds the frame scheduler's per-frame reports into the
// telemetry layer: it stamps the recorder with the current frame at each
// frame start and counts barrier activity at each frame end. All counts are
// frame-synchronous — no wall-clock quantities cross into telemetry.
type telObserver struct {
	rec      *telemetry.Recorder
	frames   *telemetry.Counter
	taskErrs *telemetry.Counter
	hookErrs *telemetry.Counter
	tasks    *telemetry.Gauge
	hooks    *telemetry.Gauge
}

func newTelObserver(reg *telemetry.Registry, rec *telemetry.Recorder) *telObserver {
	return &telObserver{
		rec:      rec,
		frames:   reg.Counter("frame/frames"),
		taskErrs: reg.Counter("frame/task_errors"),
		hookErrs: reg.Counter("frame/hook_errors"),
		tasks:    reg.Gauge("frame/tasks"),
		hooks:    reg.Gauge("frame/hooks"),
	}
}

func (o *telObserver) BeginFrame(ctx frame.Context) { o.rec.SetFrame(ctx.Frame) }

func (o *telObserver) EndFrame(rep frame.Report) {
	o.frames.Inc()
	o.taskErrs.Add(int64(rep.TaskErrs))
	o.hookErrs.Add(int64(rep.HookErrs))
	o.tasks.Set(int64(rep.Tasks))
	o.hooks.Set(int64(rep.Hooks))
}

// NewSystem validates the specification, discharges its static obligations,
// and wires the full architecture. The returned system has executed no
// frames yet.
func NewSystem(opts Options) (*System, error) {
	// Per-field options validation is delegated to Validate so callers
	// (notably the campaign engine) can run the same checks up front over a
	// whole run matrix and dispatch on the typed errors.
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	report, err := statics.Check(opts.Spec)
	if err != nil {
		return nil, err
	}
	if !report.AllDischarged() && !opts.SkipObligations {
		return nil, &ObligationError{Report: report}
	}
	rs := opts.Spec

	// SCRAM placement is resolved before the pool is built so hardened
	// storage can exempt the kernel's hosts from injected media faults.
	scramProcID := opts.SCRAMProc
	if scramProcID == "" {
		scramProcID = rs.Platform.Procs[0].ID
	}
	var mkStore func(spec.ProcID) *stable.Store
	if opts.HardenedStorage != nil {
		prof := *opts.HardenedStorage
		mkStore = func(id spec.ProcID) *stable.Store {
			p := prof
			if id == scramProcID || (opts.StandbyProc != "" && id == opts.StandbyProc) {
				p.Faults = stable.FaultProfile{}
			}
			return stable.NewHardenedStore(p, string(id))
		}
	}

	s := &System{
		rs:       rs,
		report:   report,
		pool:     failstop.NewPoolWithStores(rs.Platform, mkStore),
		classify: opts.Classifier,
		runtimes: make(map[spec.AppID]*appRuntime),
		events:   append([]ProcEvent(nil), opts.ProcEvents...),
		tr:       &trace.Trace{System: rs.Name, FrameLen: rs.FrameLen},
		retain:   opts.RetainFrames,
		telSink:  telemetry.NopSink{},
	}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Frame < s.events[j].Frame })

	// Environment: user factors plus processor health.
	factors := make(map[envmon.Factor]string, len(opts.InitialFactors)+len(rs.Platform.Procs))
	for _, k := range det.SortedKeys(opts.InitialFactors) {
		factors[k] = opts.InitialFactors[k]
	}
	for _, p := range rs.Platform.Procs {
		factors[ProcHealthFactor(p.ID)] = ProcOK
	}
	s.env = envmon.NewEnvironment(factors)
	s.script = envmon.NewScript(s.env, opts.Script)
	s.script.Init()
	s.realApps = rs.RealApps()
	for _, p := range s.pool.Procs() {
		s.procHealth = append(s.procHealth, ProcHealthFactor(p.ID()))
	}
	s.appScratch = make([]trace.AppState, len(rs.Apps))
	s.procScratch = make(map[spec.ProcID]bool, len(rs.Platform.Procs))
	s.lowScratch = make(map[spec.ProcID]bool, len(rs.Platform.Procs))

	// SCRAM placement.
	primary, err := s.pool.Proc(scramProcID)
	if err != nil {
		return nil, fmt.Errorf("core: SCRAM processor: %w", err)
	}
	var standby *failstop.Processor
	if opts.StandbyProc != "" {
		standby, err = s.pool.Proc(opts.StandbyProc)
		if err != nil {
			return nil, fmt.Errorf("core: SCRAM standby processor: %w", err)
		}
		if standby.ID() == primary.ID() {
			return nil, errors.New("core: SCRAM standby must differ from primary")
		}
	}
	s.manager, err = newSCRAMManager(rs, primary, standby)
	if err != nil {
		return nil, err
	}

	// Dynamic membership.
	if opts.Membership != nil {
		required := []spec.ProcID{primary.ID()}
		if standby != nil {
			required = append(required, standby.ID())
		}
		s.mem, err = membership.NewManager(membership.Config{
			Spec:          rs,
			Pool:          s.pool,
			Auth:          primary.ID(),
			Events:        opts.Membership.Events,
			CatchUpFrames: opts.Membership.CatchUpFrames,
			Required:      required,
		})
		if err != nil {
			return nil, err
		}
		s.memOwners = make(map[spec.AppID]spec.ProcID, len(rs.RealApps()))
		s.manager.pool = s.pool
		s.manager.mem = s.mem
	}

	// Bus.
	if opts.BusSchedule != nil {
		s.bus = bus.New(opts.BusSchedule)
	}

	// Telemetry: one registry and one flight-recorder ring for the whole
	// system, persisted through the SCRAM host's stable storage (which is
	// exempt from injected media faults) so the journal survives any
	// application processor's fail-stop halt — the black box.
	if opts.TelemetryCapacity >= 0 {
		s.telReg = telemetry.NewRegistry()
		s.telRec = telemetry.NewRecorder(opts.TelemetryCapacity)
		if opts.RetainFrames > 0 {
			s.telRec.SetRetention(opts.RetainFrames)
		}
		s.telSink = s.telRec
		s.manager.setTelemetry(s.telReg, s.telRec)
		if !opts.DisableTracing {
			// One span book for the whole system: the kernel, the SCRAM
			// manager, and the membership layer share its deterministic
			// counters, and its events ride the same black-box ring.
			s.book = telemetry.NewSpanBook(opts.TraceSeed, s.telRec)
			s.manager.setTracing(s.book)
			if s.mem != nil {
				s.mem.SetTracing(s.book)
			}
		}
		if s.mem != nil {
			s.mem.SetTelemetry(s.telReg, s.telRec)
		}
		if s.bus != nil {
			s.bus.Instrument(s.telReg, s.telRec)
		}
		for _, p := range s.pool.Procs() {
			p := p
			if h := p.Stable().Hardened(); h != nil {
				h.Instrument(s.telReg, s.telRec, string(p.ID()))
			}
			p.SetFailObserver(func(frameNum int64, storageFault error) {
				e := telemetry.Event{
					Kind:  telemetry.KindProcHalt,
					Host:  string(p.ID()),
					Attrs: map[string]int64{"halt_frame": frameNum},
				}
				if storageFault != nil {
					e.Detail = storageFault.Error()
				}
				s.telRec.Record(e)
				s.telReg.Counter("failstop/halts").Inc()
			})
		}
	}

	// Scheduler, tasks, hooks.
	var schedOpts []frame.Option
	if opts.Paced {
		schedOpts = append(schedOpts, frame.WithPacing())
	}
	if opts.Sequential {
		schedOpts = append(schedOpts, frame.Sequential())
	}
	s.sched, err = frame.NewScheduler(rs.FrameLen, schedOpts...)
	if err != nil {
		return nil, err
	}

	startCfg, _ := rs.Config(rs.StartConfig)
	for _, decl := range rs.RealApps() {
		decl := decl
		rt := &appRuntime{sys: s, app: opts.Apps[decl.ID], decl: &decl, cmdReader: scram.NewCommandReader(decl.ID)}
		// Initial host: the start configuration's placement, or the
		// first processor for applications that start off.
		procID, placed := startCfg.Placement[decl.ID]
		if !placed {
			procID = rs.Platform.Procs[0].ID
		}
		rt.proc, _ = s.pool.Proc(procID)
		if spareID, ok := opts.HotStandby[decl.ID]; ok {
			spare, err := s.pool.Proc(spareID)
			if err != nil {
				return nil, fmt.Errorf("core: hot standby for %q: %w", decl.ID, err)
			}
			rt.spare = spare
		}
		startSpec, _ := startCfg.SpecOf(decl.ID)
		rt.curSpec = startSpec
		if startSpec == spec.SpecOff {
			rt.preOK = true
		} else {
			rt.preOK = rt.app.Precondition(startSpec)
		}
		if s.bus != nil {
			ep, err := s.bus.Attach(bus.EndpointID(decl.ID))
			if err != nil {
				return nil, err
			}
			rt.ep = ep
		}
		s.runtimes[decl.ID] = rt
		if err := s.sched.AddTask(rt); err != nil {
			return nil, err
		}
	}
	for _, decl := range rs.Apps {
		if !decl.Virtual {
			continue
		}
		m := envmon.NewMonitor(decl.ID, s.env, s.classify, s.manager.Signal)
		s.monitors = append(s.monitors, m)
		if err := s.sched.AddTask(m); err != nil {
			return nil, err
		}
	}

	// Hook order matters; see each hook's comment.
	s.sched.AddCommitHook(s.failureHook)    // fail-stop failures of this frame (staged writes must die)
	s.sched.AddCommitHook(s.failoverHook)   // hot-standby failovers mask within the failure frame
	s.sched.AddCommitHook(s.syncProcHealth) // hardware fault signals: health factors + direct SCRAM signal
	if s.mem != nil {
		s.sched.AddCommitHook(s.membershipHook) // membership view advances before the kernel plans
	}
	s.sched.AddCommitHook(s.manager.hook) // SCRAM plans and writes next-frame commands
	if s.bus != nil {
		s.sched.AddCommitHook(func(ctx frame.Context) error {
			s.bus.DeliverFrame(ctx.Frame)
			return nil
		})
	}
	if s.mem != nil {
		s.sched.AddCommitHook(s.membershipFinishHook) // stage the frame's membership record before commits
	}
	s.sched.AddCommitHook(s.commitHook)  // frame-atomic stable-storage commits
	s.sched.AddCommitHook(s.scrubHook)   // hardened-storage scrub + media fault clock
	s.sched.AddCommitHook(s.powerHook)   // apply the new configuration's processor modes
	s.sched.AddCommitHook(s.recordHook)  // append tr(cycle) to the trace
	s.sched.AddCommitHook(s.injectHook)  // stage next frame's env changes and repairs
	s.sched.AddCommitHook(s.script.Hook) // scripted env events for the next frame
	if s.telSink.Enabled() {
		s.sched.AddCommitHook(s.telemetryHook) // sample tr(cycle) into the ring; stage ring + metrics
		s.sched.SetObserver(newTelObserver(s.telReg, s.telRec))
	}

	s.lastPowerIsPlan, s.lastPowerTarget = false, rs.StartConfig
	s.applyProcModes(rs.StartConfig)
	return s, nil
}

// failureHook applies ProcFail events scheduled for the frame that just
// executed: the failing processors' staged writes are discarded before the
// commit hook runs, realizing "stops at the end of the last instruction it
// completed successfully".
func (s *System) failureHook(ctx frame.Context) error {
	for _, ev := range s.events {
		if ev.Frame == ctx.Frame && ev.Kind == ProcFail {
			if err := s.pool.Fail(ev.Proc, ctx.Frame); err != nil {
				return err
			}
		}
	}
	return nil
}

// failoverHook performs hot-standby failovers within the failure frame: the
// application's last committed state is restored onto the spare (staged now,
// committed by this frame's commit hook) and the recorder never observes the
// application interrupted — the failure is masked.
func (s *System) failoverHook(frame.Context) error {
	for _, decl := range s.realApps {
		if rt, ok := s.runtimes[decl.ID]; ok {
			rt.maybeFailover()
		}
	}
	return nil
}

// syncProcHealth is the hardware-fault-signal path of Figure 1: at the end
// of every frame it reconciles the processor-health environment factors with
// the pool's actual state, and delivers a newly detected failure straight to
// the SCRAM within the same frame — covering both scheduled ProcEvents and
// spontaneous failures raised during the frame (for example a self-checking
// pair halting its processor on divergence).
func (s *System) syncProcHealth(ctx frame.Context) error {
	changed := false
	for i, p := range s.pool.Procs() {
		factor := s.procHealth[i]
		want := ProcOK
		if p.State() == failstop.StateFailed {
			want = ProcFailed
		}
		cur, _ := s.env.Get(factor)
		if cur == want {
			continue
		}
		s.env.Set(factor, want)
		if want == ProcFailed {
			changed = true
		}
	}
	if changed {
		s.manager.Signal(envmon.Signal{
			Source: s.failureSignalSource(),
			State:  s.classifyEnv(),
			Frame:  ctx.Frame,
			Urgent: true,
		})
	}
	return nil
}

// classifyEnv returns the classification of the current environment, cached
// on the environment's change version: the classifier is a pure function of
// the factor map, so while no factor changed the previous result stands.
func (s *System) classifyEnv() spec.EnvState {
	ver := s.env.Version()
	if !s.envValid || ver != s.envSeen {
		s.envState = s.classify(s.env.Snapshot())
		s.envSeen = ver
		s.envValid = true
	}
	return s.envState
}

// failureSignalSource picks the application attributed as the source of a
// hardware fault signal: the first virtual (monitor) application, since the
// platform's failure detectors play the monitor role for processor health.
func (s *System) failureSignalSource() spec.AppID {
	for _, a := range s.rs.Apps {
		if a.Virtual {
			return a.ID
		}
	}
	return s.rs.Apps[0].ID
}

// commitHook commits every alive processor's stable storage: the end-of-frame
// commit of section 6.1. Failed processors do not commit (their staged
// writes died with them); powered-off processors have nothing staged.
func (s *System) commitHook(frame.Context) error {
	for _, p := range s.pool.Procs() {
		if p.Alive() {
			if n := p.Stable().StagedLen(); n > s.stagedHighWater {
				s.stagedHighWater = n
			}
			p.Stable().Commit()
		}
	}
	return nil
}

// scrubHook runs the end-of-frame scrub pass over every alive processor's
// hardened storage: latent corruption is found and repaired from healthy
// replicas while enough redundancy remains, and each medium's fault clock
// advances to the next frame. An unrecoverable scrub finding halts the owning
// processor through its fault sink, which syncProcHealth detects next frame
// exactly like any other fail-stop processor failure. Plain stores scrub as
// a no-op.
func (s *System) scrubHook(frame.Context) error {
	for _, p := range s.pool.Procs() {
		if p.Alive() {
			// The error, if any, was already routed to the store's
			// fault sink (halting the processor); the scrub report is
			// for campaigns, which read cumulative stats instead.
			//lint:allow stableerr scrub faults reach the halt path via the store's fault sink
			_, _ = p.Stable().Scrub()
		}
	}
	return nil
}

// powerHook sequences processor power modes around reconfigurations.
// Processors the target configuration needs are powered up as soon as the
// plan starts (the prepare and initialize phases execute on them); the
// orderly shutdown and low-power switches of the new configuration are
// applied only after the window completes, when every application has left
// the old placement.
func (s *System) powerHook(frame.Context) error {
	k := s.manager.kernel()
	if target, seq, ok := k.PlanTarget(); ok {
		if !s.lastPowerIsPlan || seq != s.lastPowerSeq || target != s.lastPowerTarget {
			s.lastPowerIsPlan, s.lastPowerSeq, s.lastPowerTarget = true, seq, target
			s.applyTransitionModes(k.Current(), target)
		}
		return nil
	}
	if cur := k.Current(); s.lastPowerIsPlan || cur != s.lastPowerTarget {
		s.lastPowerIsPlan, s.lastPowerTarget = false, cur
		s.applyProcModes(cur)
	}
	return nil
}

// membershipHook advances the membership view by one frame, before the
// SCRAM manager's hook: a takeover in this frame then draws from the
// updated candidate set and the kernel stamps the frame's epoch into its
// commands. It runs against the active kernel's stable store — during a
// takeover frame still the failed primary's, whose committed state survives
// the halt and stays readable.
func (s *System) membershipHook(ctx frame.Context) error {
	s.mem.Step(ctx.Frame, s.manager.store())
	return nil
}

// membershipFinishHook closes the frame's membership processing after the
// kernel ran and before the stable-storage commits: the frame's (possibly
// converged or takeover-bumped) view is staged onto the active kernel's
// store so the epoch commits at this frame's boundary, and the frame's
// application ownership is appended to the invariant log.
func (s *System) membershipFinishHook(ctx frame.Context) error {
	clear(s.memOwners)
	if cfg, ok := s.rs.Config(s.manager.kernel().Current()); ok {
		for _, decl := range s.realApps {
			if _, placed := cfg.Placement[decl.ID]; !placed {
				continue
			}
			if rt, ok := s.runtimes[decl.ID]; ok {
				s.memOwners[decl.ID] = rt.proc.ID()
			}
		}
	}
	return s.mem.Finish(ctx.Frame, s.manager.store(), s.memOwners)
}

// scramProcs returns the processors that must never be shut down: the
// kernel's hosts, plus — with dynamic membership — every non-down member
// (joining processors need frames to catch up; caught-up standbys must stay
// warm to remain takeover-eligible).
func (s *System) scramProcs(needed map[spec.ProcID]bool) {
	needed[s.manager.primary.ID()] = true
	if s.manager.standby != nil {
		needed[s.manager.standby.ID()] = true
	}
	if s.mem != nil {
		for _, id := range s.mem.StandbyProcs() {
			needed[id] = true
		}
	}
}

// applyTransitionModes powers up (at full capacity) every processor either
// the source or the target configuration places applications on, so entry
// phases can execute. Nothing is shut down mid-transition.
func (s *System) applyTransitionModes(source, target spec.ConfigID) {
	clear(s.procScratch)
	needed := s.procScratch
	for _, id := range [2]spec.ConfigID{source, target} {
		if cfg, ok := s.rs.Config(id); ok {
			for _, p := range cfg.PlacedProcs() {
				needed[p] = true
			}
		}
	}
	s.scramProcs(needed)
	for _, p := range s.pool.Procs() {
		if !needed[p.ID()] || p.State() == failstop.StateFailed {
			continue
		}
		if p.State() == failstop.StateOff {
			p.Repair()
		}
		// SetLowPower cannot fail here: failed and off states are
		// handled above.
		_ = p.SetLowPower(false)
	}
}

// applyProcModes applies a configuration's steady-state power modes:
// low-power processors per the configuration, orderly shutdown of
// processors hosting nothing (excluding the SCRAM's processors), restart of
// previously powered-off processors the configuration needs again.
func (s *System) applyProcModes(cfgID spec.ConfigID) {
	cfg, ok := s.rs.Config(cfgID)
	if !ok {
		return
	}
	clear(s.procScratch)
	needed := s.procScratch
	for _, p := range cfg.PlacedProcs() {
		needed[p] = true
	}
	s.scramProcs(needed)
	clear(s.lowScratch)
	lowPower := s.lowScratch
	for _, p := range cfg.LowPower {
		lowPower[p] = true
	}
	for _, p := range s.pool.Procs() {
		switch {
		case p.State() == failstop.StateFailed:
			// Failed processors stay failed until repaired.
		case !needed[p.ID()]:
			p.PowerOff()
		default:
			if p.State() == failstop.StateOff {
				p.Repair()
			}
			// SetLowPower cannot fail here: failed and off states
			// are handled above.
			_ = p.SetLowPower(lowPower[p.ID()])
		}
	}
}

// storageHaltPending reports a processor halted by a storage fault during
// the current frame's commit or scrub — after its applications completed the
// frame's work and delivered their outputs, but before the health factors
// were reconciled. The frame's service was rendered, so the trace records
// this boundary frame as normal; the interruption (and the SCRAM's reaction
// to it) starts at the next frame, when the failure becomes observable.
func (s *System) storageHaltPending(p *failstop.Processor) bool {
	if p.StorageFault() == nil {
		return false
	}
	cur, _ := s.env.Get(ProcHealthFactor(p.ID()))
	return cur == ProcOK
}

// recordHook appends the frame's system state to the trace: the formal
// model's tr(cycle).
func (s *System) recordHook(ctx frame.Context) error {
	k := s.manager.kernel()
	cur := k.Current()
	st := trace.SysState{
		Cycle:  ctx.Frame,
		Config: cur,
		Env:    s.classifyEnv(),
	}
	// Compute every application's state into the scratch slice first. In the
	// steady state the per-app states match the previous frame's exactly, and
	// the previous frame's Apps map — immutable once appended to the trace —
	// is shared instead of allocating an identical copy every frame.
	unchanged := s.lastApps != nil && len(s.lastApps) == len(s.rs.Apps)
	for i, decl := range s.rs.Apps {
		status := k.StatusOf(decl.ID, ctx.Frame)
		appSpec := k.SpecOf(decl.ID)
		preOK := true
		if !decl.Virtual {
			rt := s.runtimes[decl.ID]
			if appSpec != spec.SpecOff {
				preOK = rt.preOK
			}
			// An application that should be running but whose actual
			// host processor is down is interrupted: its AFTA cannot
			// complete and awaits system recovery. (The runtime's
			// host, not the static placement: a hot-standby failover
			// or a migration may have moved the application.)
			if status == trace.StatusNormal && appSpec != spec.SpecOff && !rt.proc.Alive() &&
				!s.storageHaltPending(rt.proc) {
				status = trace.StatusInterrupted
			}
		}
		as := trace.AppState{Status: status, Spec: appSpec, PreOK: preOK}
		s.appScratch[i] = as
		if unchanged && s.lastApps[decl.ID] != as {
			unchanged = false
		}
	}
	if unchanged {
		st.Apps = s.lastApps
	} else {
		//lint:allow allocfree the trace retains this map forever, so it cannot be scratch; built only on a state change, never in steady state
		st.Apps = make(map[spec.AppID]trace.AppState, len(s.rs.Apps))
		for i, decl := range s.rs.Apps {
			st.Apps[decl.ID] = s.appScratch[i]
		}
		s.lastApps = st.Apps
	}
	s.stateChanged = !unchanged || st.Config != s.lastCfgRec || st.Env != s.lastEnvRec
	s.lastCfgRec, s.lastEnvRec = st.Config, st.Env
	if err := s.tr.Append(st); err != nil {
		return err
	}
	// Retention: once the trace holds two full windows, drop back to one.
	// Trimming in window-sized chunks amortizes the copy to O(1)/frame and
	// the allocation to one slice per window, and the 2x slack means every
	// cycle inside the horizon stays addressable between trims. Driven only
	// by the frame number, so replays trim at exactly the same frames.
	if s.retain > 0 && s.tr.Len() >= 2*s.retain {
		//lint:allow allocfree retention trim: one slice copy per retain-frames window, amortized O(1) per frame
		s.tr.Trim(s.tr.End() - s.retain)
	}
	return nil
}

// metricsPersistEvery is the frame cadence of metrics-snapshot staging. The
// flight-recorder ring is the authoritative black box and is staged every
// frame it changes; the metrics snapshot is a convenience export, so staging
// it every frame would spend a full JSON marshal per frame for freshness
// nobody reads. After a halt the recovered snapshot may trail the ring by up
// to this many frames.
const metricsPersistEvery = 512

// telemetryHook is the last built-in hook: it samples the frame's recorded
// system state into the flight-recorder ring and stages the ring delta
// (plus, periodically, a metrics snapshot) onto the SCRAM host's stable
// storage. Samples are run-length-encoded — recorded only when the state
// differs from the previous frame's — and because the hook runs after
// commitHook, frame k's staging commits with frame k+1: the recovered black
// box trails the live system by at most one frame, exactly matching the
// fail-stop model (writes staged in the halt frame die with the halt).
func (s *System) telemetryHook(ctx frame.Context) error {
	s.telFrame = ctx.Frame
	if n := len(s.tr.States); n > 0 {
		if st := s.tr.States[n-1]; st.Cycle == ctx.Frame {
			// stateChanged chains frame over frame: while it stays false
			// the appended states are all identical, so the last captured
			// sample still describes the current frame.
			if s.lastFS == nil || s.stateChanged {
				fs := telemetry.CaptureState(st)
				s.telRec.Record(telemetry.Event{
					Frame:  ctx.Frame,
					Kind:   telemetry.KindFrameState,
					Config: string(st.Config),
					State:  fs,
				})
				s.lastFS = fs
				s.lastFSFrame = ctx.Frame
			}
		}
	}
	persistMetrics := ctx.Frame%metricsPersistEvery == metricsPersistEvery-1
	return s.persistTelemetry(persistMetrics)
}

// persistTelemetry stages the ring delta (and, when asked, the metrics
// snapshot) onto the active SCRAM host's stable storage. Skipped while no
// SCRAM host is alive: with the kernel gone there is nowhere dependable to
// write, and the last committed journal already records everything up to
// the halt.
func (s *System) persistTelemetry(metrics bool) error {
	if !s.telSink.Enabled() || !s.manager.activeProc.Alive() {
		return nil
	}
	store := s.manager.store()
	if metrics {
		if err := s.telReg.Persist(store); err != nil {
			return err
		}
	}
	return s.telSink.Persist(store)
}

// FlushTelemetry persists any un-staged telemetry and commits the SCRAM
// host's stable storage, making the full journal — including the final
// frame's events, which the one-frame staging lag would otherwise leave
// uncommitted — recoverable via PollStable. It also closes the run-length
// encoding with a final frame-state sample, so the reconstructed trace
// covers every executed frame. Call it after the last frame of a run; it is
// a no-op when telemetry is disabled or the SCRAM host is down.
func (s *System) FlushTelemetry() error {
	if !s.telSink.Enabled() || !s.manager.activeProc.Alive() {
		return nil
	}
	if s.lastFS != nil && s.telFrame > s.lastFSFrame {
		s.telSink.Record(telemetry.Event{
			Frame:  s.telFrame,
			Kind:   telemetry.KindFrameState,
			Config: string(s.lastFS.Config),
			State:  s.lastFS,
		})
		s.lastFSFrame = s.telFrame
	}
	if err := s.persistTelemetry(true); err != nil {
		return err
	}
	s.manager.store().Commit()
	return nil
}

// Telemetry returns the system's metrics registry and flight recorder; both
// are nil when Options.TelemetryCapacity is negative.
func (s *System) Telemetry() (*telemetry.Registry, *telemetry.Recorder) {
	return s.telReg, s.telRec
}

// SpanBook returns the system's causal-trace span book; nil when telemetry
// or tracing is disabled.
func (s *System) SpanBook() *telemetry.SpanBook { return s.book }

// SCRAMProc returns the processor currently hosting the SCRAM kernel (the
// standby after a takeover). Its stable storage holds the black box.
func (s *System) SCRAMProc() spec.ProcID { return s.manager.activeProc.ID() }

// injectHook applies, at the end of frame k, the health-factor changes and
// repairs that must be visible in frame k+1.
func (s *System) injectHook(ctx frame.Context) error {
	next := ctx.Frame + 1
	for _, ev := range s.events {
		if ev.Frame != next {
			continue
		}
		switch ev.Kind {
		case ProcFail:
			// Applied by failureHook during frame k+1; detection is
			// handled uniformly by syncProcHealth.
		case ProcRepair:
			if err := s.pool.Repair(ev.Proc); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: unknown processor event kind %d", ev.Kind)
		}
	}
	return nil
}

// Step executes one frame.
//
// planning, membership, stable-storage commit, telemetry — runs beneath it,
// so the allocfree discipline holds for everything Step can reach.
//
//lint:frame-entry the frame-synchronous root: every commit hook — kernel
func (s *System) Step() error { return s.sched.Step() }

// Run executes n frames, stopping at the first error.
func (s *System) Run(n int) error { return s.sched.Run(n) }

// RunUntil executes frames until stop returns true or maxFrames elapse.
func (s *System) RunUntil(maxFrames int, stop func() bool) (bool, error) {
	return s.sched.RunUntil(maxFrames, stop)
}

// Frame returns the number of executed frames.
func (s *System) Frame() int64 { return s.sched.Frame() }

// Trace returns the recorded system trace. The caller must not mutate it
// while frames are executing.
func (s *System) Trace() *trace.Trace { return s.tr }

// Kernel returns the active SCRAM kernel.
func (s *System) Kernel() *scram.Kernel { return s.manager.kernel() }

// Report returns the static-obligations report computed at construction.
func (s *System) Report() *statics.Report { return s.report }

// Pool returns the processor pool.
func (s *System) Pool() *failstop.Pool { return s.pool }

// StagedHighWater returns the largest number of staged stable-storage writes
// any single processor carried into a frame commit — a sizing diagnostic for
// the commit batch a real stable store would have to make atomic.
func (s *System) StagedHighWater() int { return s.stagedHighWater }

// Env returns the environment.
func (s *System) Env() *envmon.Environment { return s.env }

// Bus returns the time-triggered bus, or nil if none was configured.
func (s *System) Bus() *bus.Bus { return s.bus }

// AddTask registers an extra frame task (for example a sensor interface unit
// or a physics model). Tasks may be added between frames.
func (s *System) AddTask(t frame.Task) error { return s.sched.AddTask(t) }

// AddCommitHook registers an extra frame-end hook. User hooks run after all
// built-in hooks (bus delivery, commits, trace recording, environment
// scripting), so a hook that mutates shared state does so deterministically
// between frames — the right place for physics and plant models.
func (s *System) AddCommitHook(h frame.CommitHook) { s.sched.AddCommitHook(h) }

// TookOverAt reports whether (and when) the standby SCRAM took over.
func (s *System) TookOverAt() (int64, bool) { return s.manager.TookOverAt() }

// CheckProperties runs the SP1-SP4 checkers over the recorded trace.
func (s *System) CheckProperties() []trace.Violation {
	return trace.CheckAll(s.tr, s.rs)
}

// Membership returns the dynamic-membership manager, or nil when the system
// runs with the static processor set.
func (s *System) Membership() *membership.Manager { return s.mem }

// CheckMembership runs the membership invariant checkers (epoch
// monotonicity, no-split-brain, safe handoff) over the per-frame membership
// log; it returns nil when membership is disabled.
func (s *System) CheckMembership() []membership.Violation {
	if s.mem == nil {
		return nil
	}
	return membership.CheckLog(s.mem.Log())
}

// Close releases the scheduler's goroutines. The system cannot run after
// Close.
func (s *System) Close() { s.sched.Close() }
