package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/envmon"
	"repro/internal/spec"
)

// This file is the externally drivable half of the System lifecycle. A
// System was originally a one-shot value: construct it with a full scripted
// schedule (environment events, processor events) and call Run. A fleet host
// instead steps tenants frame by frame and receives fault injections and
// queries over a control plane while the system is live. The functions here
// admit that driving style with one rule: they may only be called BETWEEN
// frames — never concurrently with Step. Callers (the fleet host's per-tenant
// lock, a test's single goroutine) provide that serialization.
//
// Determinism contract: each injection is defined in terms of the scripted
// construct it is equivalent to, so a driven run can be replayed as a
// scripted run with a byte-identical trace. That equivalence is what lets a
// multiplexed fleet tenant's black box be checked against a standalone
// re-execution.

// ErrInjectedStorageFault is the storage fault recorded on a processor
// halted through InjectStorageFault.
var ErrInjectedStorageFault = errors.New("injected storage fault")

// InjectFactor sets an environment factor between frames. Called when
// Frame() == f, it is observably identical to a scripted
// envmon.Event{Frame: f}: monitors see the new value when frame f executes.
func (s *System) InjectFactor(f envmon.Factor, v string) {
	s.env.Set(f, v)
}

// ScheduleProcEvent schedules a processor failure or repair on the live
// system, exactly as if the event had been in Options.ProcEvents from the
// start. Failures must name the next frame to execute or later; repairs must
// be strictly later (a repair at frame f is applied at the end of frame f-1,
// which must not have run yet).
func (s *System) ScheduleProcEvent(ev ProcEvent) error {
	if _, err := s.pool.Proc(ev.Proc); err != nil {
		return fmt.Errorf("core: scheduling proc event: %w", err)
	}
	next := s.Frame()
	switch ev.Kind {
	case ProcFail:
		if ev.Frame < next {
			return fmt.Errorf("core: proc failure at frame %d is in the past (next frame %d)", ev.Frame, next)
		}
	case ProcRepair:
		if ev.Frame <= next {
			return fmt.Errorf("core: proc repair at frame %d cannot apply (next frame %d; repairs need a full preceding frame)", ev.Frame, next)
		}
	default:
		return fmt.Errorf("core: unknown proc event kind %d", ev.Kind)
	}
	s.events = append(s.events, ev)
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Frame < s.events[j].Frame })
	return nil
}

// InjectStorageFault halts a processor between frames as if its stable
// storage had just suffered an unrecoverable fault: staged writes die,
// committed storage stays pollable, and the halt is attributed to
// ErrInjectedStorageFault. The failure is detected (health factor, SCRAM
// signal) when the next frame executes, like any fail-stop halt.
func (s *System) InjectStorageFault(id spec.ProcID) error {
	p, err := s.pool.Proc(id)
	if err != nil {
		return fmt.Errorf("core: injecting storage fault: %w", err)
	}
	if !p.Alive() {
		return fmt.Errorf("core: injecting storage fault: processor %s is already down", id)
	}
	p.FailStorage(s.Frame(), ErrInjectedStorageFault)
	return nil
}

// ProcAlive reports whether a processor is currently alive. Unknown
// processors report false.
func (s *System) ProcAlive(id spec.ProcID) bool {
	p, err := s.pool.Proc(id)
	return err == nil && p.Alive()
}

// StepTo drives the system to the given frame boundary: it steps until
// Frame() == target and stops there, so injections recorded against any
// frame >= target can still be applied between frames. It is the
// checkpoint-resume entry point: a recovering host replays a tenant by
// alternating StepTo with the injections its manifest acked, reproducing
// the pre-crash execution byte-identically from the same deterministic
// inputs. Like every drive call it must not run concurrently with Step.
func (s *System) StepTo(target int64) error {
	if target < s.Frame() {
		return fmt.Errorf("core: StepTo(%d) is in the past (next frame %d)", target, s.Frame())
	}
	for s.Frame() < target {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}
