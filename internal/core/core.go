package core
