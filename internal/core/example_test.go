package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/spectest"
)

// A complete system: reference applications over the canonical
// three-configuration specification, a scripted power loss at frame 10, and
// the SP1-SP4 verdict over the recorded trace.
func ExampleNewSystem() {
	rs := spectest.ThreeConfig()
	apps := map[spec.AppID]core.App{}
	for _, decl := range rs.RealApps() {
		decl := decl
		apps[decl.ID] = core.NewBasicApp(&decl)
	}
	sys, err := core.NewSystem(core.Options{
		Spec: rs,
		Apps: apps,
		Classifier: func(f map[envmon.Factor]string) spec.EnvState {
			return spec.EnvState(f["power"])
		},
		InitialFactors: map[envmon.Factor]string{"power": string(spectest.EnvFull)},
		Script: []envmon.Event{
			{Frame: 10, Factor: "power", Value: string(spectest.EnvReduced)},
		},
	})
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	if err := sys.Run(30); err != nil {
		panic(err)
	}

	fmt.Println("configuration:", sys.Kernel().Current())
	for _, r := range sys.Trace().Reconfigs() {
		fmt.Printf("window [%d,%d]: %s -> %s\n", r.StartC, r.EndC, r.From, r.To)
	}
	fmt.Println("violations:", len(sys.CheckProperties()))
	// Output:
	// configuration: reduced
	// window [10,14]: full -> reduced
	// violations: 0
}
