package core

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/spectest"
)

// buildBenchSystem wires the canonical system for the frame-loop benchmarks.
// churnEvery > 0 scripts an alternator fault/repair cycle at that period, so
// reconfigurations — and the telemetry they generate — are part of the
// measured loop; churnEvery 0 leaves the environment quiet, measuring the
// steady state the system spends almost all of its life in.
func buildBenchSystem(tb testing.TB, telemetryCapacity int, churnEvery int64) *System {
	tb.Helper()
	var script []envmon.Event
	if churnEvery > 0 {
		for f, val := churnEvery/2, "failed"; f < 1_000_000; f += churnEvery {
			script = append(script, envmon.Event{Frame: f, Factor: "alt1", Value: val})
			if val == "failed" {
				val = "ok"
			} else {
				val = "failed"
			}
		}
	}
	sys, err := NewSystem(Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  &testApp{id: spectest.AppAP},
			spectest.AppFCS: &testApp{id: spectest.AppFCS},
		},
		Classifier:        powerClassifier(false),
		InitialFactors:    map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		Script:            script,
		TelemetryCapacity: telemetryCapacity,
	})
	if err != nil {
		tb.Fatalf("NewSystem: %v", err)
	}
	tb.Cleanup(sys.Close)
	return sys
}

func benchFrames(b *testing.B, telemetryCapacity int, churnEvery int64) {
	sys := buildBenchSystem(b, telemetryCapacity, churnEvery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameTelemetryOn measures the steady-state frame loop with the
// default telemetry layer: recorder stamping, run-length-encoded state
// sampling, and the (no-op on quiet frames) ring-persistence check.
func BenchmarkFrameTelemetryOn(b *testing.B) { benchFrames(b, 0, 0) }

// BenchmarkFrameTelemetryOff is the steady-state ablation arm: the identical
// system with the telemetry layer disabled.
func BenchmarkFrameTelemetryOff(b *testing.B) { benchFrames(b, -1, 0) }

// BenchmarkFrameChurnTelemetryOn stresses the expensive path: alternator
// churn every 20 frames keeps the system reconfiguring, so protocol events,
// frame-state samples and the per-frame journal staging are all live.
func BenchmarkFrameChurnTelemetryOn(b *testing.B) { benchFrames(b, 0, 20) }

// BenchmarkFrameChurnTelemetryOff is the churn ablation arm.
func BenchmarkFrameChurnTelemetryOff(b *testing.B) { benchFrames(b, -1, 20) }

// armSample is one fixed-frame measurement of one benchmark arm.
type armSample struct {
	nsPerFrame     float64
	allocsPerFrame float64
	bytesPerFrame  float64
}

// measureArm times exactly `frames` frames of one arm after a short warmup.
// Running a fixed frame count in every arm keeps frame-count-dependent costs
// (notably the live trace's slice growth, which testing.Benchmark's varying
// b.N spreads unevenly across arms) identical on both sides of the
// comparison, so they cancel in the subtraction.
func measureArm(tb testing.TB, frames int, telemetryCapacity int, churnEvery int64) armSample {
	tb.Helper()
	return measureSystem(tb, buildBenchSystem(tb, telemetryCapacity, churnEvery), frames)
}

// measureSystem times exactly `frames` frames of an already-built system
// after a fixed warmup.
func measureSystem(tb testing.TB, sys *System, frames int) armSample {
	tb.Helper()
	for i := 0; i < 1000; i++ {
		if err := sys.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < frames; i++ {
		if err := sys.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return armSample{
		nsPerFrame:     float64(elapsed.Nanoseconds()) / float64(frames),
		allocsPerFrame: float64(after.Mallocs-before.Mallocs) / float64(frames),
		bytesPerFrame:  float64(after.TotalAlloc-before.TotalAlloc) / float64(frames),
	}
}

// measurePair measures the instrumented and ablation arms back to back n
// times and returns the fastest sample of each plus the median of the
// pairwise overheads. Interleaving the arms keeps slow machine drift
// (thermal throttling, noisy CI neighbours) out of the comparison — each
// overhead sample comes from two runs executed moments apart — and the
// median discards the pairs a scheduling hiccup landed in.
func measurePair(tb testing.TB, n, frames int, churnEvery int64) (on, off armSample, medianPct float64) {
	pcts := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		son := measureArm(tb, frames, 0, churnEvery)
		soff := measureArm(tb, frames, -1, churnEvery)
		if i == 0 || son.nsPerFrame < on.nsPerFrame {
			on = son
		}
		if i == 0 || soff.nsPerFrame < off.nsPerFrame {
			off = soff
		}
		pcts = append(pcts, (son.nsPerFrame-soff.nsPerFrame)/soff.nsPerFrame*100)
	}
	sort.Float64s(pcts)
	return on, off, pcts[len(pcts)/2]
}

// benchResult is one row of BENCH_observability.json.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerFrame  float64 `json:"ns_per_frame"`
	AllocsPerOp float64 `json:"allocs_per_frame"`
	BytesPerOp  float64 `json:"bytes_per_frame"`
}

func row(name string, s armSample) benchResult {
	return benchResult{
		Name:        name,
		NsPerFrame:  s.nsPerFrame,
		AllocsPerOp: s.allocsPerFrame,
		BytesPerOp:  s.bytesPerFrame,
	}
}

// TestTelemetryOverheadBench measures both benchmark pairs under plain
// `go test` and records the telemetry overhead in BENCH_observability.json
// at the repository root. The steady-state pair is the headline number — the
// target is < 5% ns/frame there, asserted with CI-jitter headroom at 15%.
// The churn pair documents the cost while the system is actively
// reconfiguring (every 20 frames, far denser than any fault campaign): that
// overhead is real work — journal staging for every protocol event — and is
// recorded, with a loose 75% ceiling so a regression to the pre-ring-buffer
// costs still fails.
func TestTelemetryOverheadBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness skipped in -short mode")
	}
	const frames = 20_000
	steadyOn, steadyOff, steadyPct := measurePair(t, 5, frames, 0)
	// The churn arms are noisier than the steady ones — each sample rides
	// through ~1000 reconfiguration windows' GC and scheduling jitter — so
	// the median needs more pairs to settle.
	churnOn, churnOff, churnPct := measurePair(t, 7, frames, 20)

	out := struct {
		Benchmark        string        `json:"benchmark"`
		Target           string        `json:"target"`
		Results          []benchResult `json:"results"`
		OverheadPct      float64       `json:"telemetry_overhead_pct"`
		ChurnOverheadPct float64       `json:"telemetry_churn_overhead_pct"`
		Notes            []string      `json:"notes,omitempty"`
	}{
		Benchmark: "telemetry overhead: canonical three-config frame loop, steady state (headline) and alternator churn every 20 frames (stress)",
		Target:    "steady-state telemetry overhead < 5% ns/frame",
		Results: []benchResult{
			row("frame/steady/telemetry=on", steadyOn),
			row("frame/steady/telemetry=off", steadyOff),
			row("frame/churn20/telemetry=on", churnOn),
			row("frame/churn20/telemetry=off", churnOff),
		},
		OverheadPct:      steadyPct,
		ChurnOverheadPct: churnPct,
		Notes: []string{
			"allocation trim (pre-sized det.SortedKeys scratch via SortedKeysInto, pre-sized stable Keys/SnapshotPrefix maps, cached app stable regions): steady allocs/frame were on 63.35 / off 63.00 before the change",
			"pooled event staging (size-classed retired-buffer pool in internal/stable, open-chunk journal re-puts in telemetry.Persist): before the change the churn arm measured 42.15% median overhead (on 7764 / off 5462 ns/frame) and the steady arm 4.00 allocs/frame",
			"the residual churn overhead is the journaling itself — per-event chunk encoding, run-length frame-state samples and span events during reconfiguration windows — and is measured against an ablation baseline the same pooling also sped up",
			fmt.Sprintf("after the change this run measured steady allocs/frame on %.2f / off %.2f and churn ns/frame on %.0f / off %.0f", steadyOn.allocsPerFrame, steadyOff.allocsPerFrame, churnOn.nsPerFrame, churnOff.nsPerFrame),
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_observability.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("steady: on %.0f ns/frame (%.1f allocs) vs off %.0f (%.1f) = %.2f%% median overhead",
		steadyOn.nsPerFrame, steadyOn.allocsPerFrame,
		steadyOff.nsPerFrame, steadyOff.allocsPerFrame, steadyPct)
	t.Logf("churn20: on %.0f ns/frame (%.1f allocs) vs off %.0f (%.1f) = %.2f%% median overhead",
		churnOn.nsPerFrame, churnOn.allocsPerFrame,
		churnOff.nsPerFrame, churnOff.allocsPerFrame, churnPct)
	if steadyPct > 15 {
		t.Errorf("steady-state telemetry overhead %.2f%% ns/frame exceeds the 15%% ceiling (target < 5%%)", steadyPct)
	}
	if churnPct > 75 {
		t.Errorf("churn telemetry overhead %.2f%% ns/frame exceeds the 75%% ceiling", churnPct)
	}
}

// TestFrameAllocBudgetBench is the runtime half of the alloc discipline the
// allocfree analyzer enforces statically: the steady-state frame loop, full
// telemetry on, must stay under 10 allocations per frame. The measured
// numbers land in BENCH_frame.json at the repository root. Allocation
// counts, unlike wall-clock times, are nearly deterministic — the best of
// three runs discards only GC-timing noise — so the budget is asserted
// directly, no jitter headroom needed. Churn-frame numbers are recorded for
// visibility but not budgeted: a reconfiguring frame legitimately allocates
// (plans, protocol events, journal staging), and the WCET argument charges
// that cost to the reconfiguration window, not to the steady state.
func TestFrameAllocBudgetBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness skipped in -short mode")
	}
	const frames = 20_000
	var steady, churn armSample
	for i := 0; i < 3; i++ {
		s := measureArm(t, frames, 0, 0)
		c := measureArm(t, frames, 0, 20)
		if i == 0 || s.allocsPerFrame < steady.allocsPerFrame {
			steady = s
		}
		if i == 0 || c.allocsPerFrame < churn.allocsPerFrame {
			churn = c
		}
	}

	out := struct {
		Benchmark string        `json:"benchmark"`
		Budget    string        `json:"budget"`
		Results   []benchResult `json:"results"`
		Steady    float64       `json:"steady_allocs_per_frame"`
		Notes     []string      `json:"notes,omitempty"`
	}{
		Benchmark: "frame alloc budget: canonical three-config frame loop, telemetry on, steady state (budgeted) and alternator churn every 20 frames (recorded)",
		Budget:    "steady-state allocations < 10 per frame",
		Results: []benchResult{
			row("frame/steady/telemetry=on", steady),
			row("frame/churn20/telemetry=on", churn),
		},
		Steady: steady.allocsPerFrame,
		Notes: []string{
			"the static half of this gate is the allocfree analyzer: archlint -baseline lint/allocfree.baseline fails on any new frame-reachable allocation site",
			"remaining steady allocations are the amortized scratch growth and trace bookkeeping annotated with //lint:allow allocfree in source",
			"churn frames allocate by design (plan construction, protocol events, journal staging); their cost is charged to the reconfiguration window's WCET, not the steady state",
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_frame.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("steady: %.0f ns/frame, %.2f allocs/frame (budget < 10)", steady.nsPerFrame, steady.allocsPerFrame)
	t.Logf("churn20: %.0f ns/frame, %.2f allocs/frame (recorded, not budgeted)", churn.nsPerFrame, churn.allocsPerFrame)
	if steady.allocsPerFrame >= 10 {
		t.Errorf("steady-state frame loop allocates %.2f times per frame, budget is < 10", steady.allocsPerFrame)
	}
}
