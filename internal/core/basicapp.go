package core

import (
	"fmt"

	"repro/internal/spec"
)

// BasicApp is a minimal correct reconfigurable application driven entirely
// by its declaration: every phase takes exactly the number of frames the
// relevant functional specification declares, normal operation counts work
// units in stable storage, and the post/preconditions are tracked honestly.
// It is the reference implementation used by randomized campaigns and a
// convenient starting point for real applications.
type BasicApp struct {
	decl *spec.App

	stepCount  int64
	phaseLeft  int
	phaseKey   string
	halted     bool
	readySpecs map[spec.SpecID]bool
}

// NewBasicApp builds a BasicApp from its declaration in the reconfiguration
// specification.
func NewBasicApp(decl *spec.App) *BasicApp {
	return &BasicApp{
		decl:       decl,
		readySpecs: make(map[spec.SpecID]bool),
	}
}

// BasicApps builds a reference BasicApp implementation for every real
// (non-virtual) application a specification declares — the standard Apps
// map for campaigns, preset-driven tools, and the fleet spawn path.
func BasicApps(rs *spec.ReconfigSpec) map[spec.AppID]App {
	apps := make(map[spec.AppID]App)
	for _, decl := range rs.RealApps() {
		decl := decl
		apps[decl.ID] = NewBasicApp(&decl)
	}
	return apps
}

// ID implements App.
func (a *BasicApp) ID() spec.AppID { return a.decl.ID }

// Steps returns the number of normal work units performed.
func (a *BasicApp) Steps() int64 { return a.stepCount }

// Step implements App: one unit of counted work.
func (a *BasicApp) Step(env *FrameEnv) error {
	a.stepCount++
	a.halted = false
	//lint:allow stableerr a missing counter restarts at zero by design; store faults surface at commit
	n, _ := env.Store.GetInt64("work")
	env.Store.PutInt64("work", n+1)
	return nil
}

// phaseFrames returns the declared duration of the phase under sp.
func (a *BasicApp) phaseFrames(phase spec.Phase, sp spec.SpecID) (int, error) {
	s, ok := a.decl.Spec(sp)
	if !ok {
		return 0, fmt.Errorf("core: %q commanded under undeclared specification %q", a.decl.ID, sp)
	}
	switch phase {
	case spec.PhaseHalt:
		return s.HaltFrames, nil
	case spec.PhasePrepare:
		return s.PrepareFrames, nil
	case spec.PhaseInit:
		return s.InitFrames, nil
	default:
		return 0, fmt.Errorf("core: phase %v has no duration", phase)
	}
}

// runPhase consumes one frame of the identified phase, returning done when
// the declared duration has elapsed. The plan sequence number keys the
// progress tracking so a retargeted window restarts the phase cleanly.
func (a *BasicApp) runPhase(seq int64, phase spec.Phase, sp spec.SpecID) (bool, error) {
	key := fmt.Sprintf("%d/%v/%s", seq, phase, sp)
	if a.phaseKey != key {
		frames, err := a.phaseFrames(phase, sp)
		if err != nil {
			return false, err
		}
		a.phaseKey = key
		a.phaseLeft = frames
	}
	a.phaseLeft--
	if a.phaseLeft > 0 {
		return false, nil
	}
	a.phaseKey = ""
	return true, nil
}

// Halt implements App.
func (a *BasicApp) Halt(env *FrameEnv) (bool, error) {
	done, err := a.runPhase(env.Seq, spec.PhaseHalt, env.Spec)
	if err != nil {
		return false, err
	}
	if done {
		a.halted = true
		env.Store.PutString("postcondition", "established")
	}
	return done, nil
}

// Prepare implements App.
func (a *BasicApp) Prepare(env *FrameEnv, target spec.SpecID) (bool, error) {
	return a.runPhase(env.Seq, spec.PhasePrepare, target)
}

// Init implements App.
func (a *BasicApp) Init(env *FrameEnv, target spec.SpecID) (bool, error) {
	done, err := a.runPhase(env.Seq, spec.PhaseInit, target)
	if err != nil {
		return false, err
	}
	if done {
		a.readySpecs[target] = true
		env.Store.PutString("spec", string(target))
	}
	return done, nil
}

// Postcondition implements App.
func (a *BasicApp) Postcondition() bool { return a.halted }

// Precondition implements App: true once Init has completed for the target
// (and for the boot specification, which the platform establishes).
func (a *BasicApp) Precondition(target spec.SpecID) bool {
	if a.readySpecs[target] {
		return true
	}
	// Boot: the platform initializes the starting specification.
	return a.stepCount == 0 && len(a.readySpecs) == 0
}
