package core

import (
	"fmt"
	"sync"

	"repro/internal/envmon"
	"repro/internal/failstop"
	"repro/internal/frame"
	"repro/internal/membership"
	"repro/internal/scram"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/telemetry"
)

// scramManager hosts the SCRAM kernel on a fail-stop processor and,
// optionally, fails over to a standby processor. The paper leaves the
// SCRAM's dependable implementation open ("allocating it to a fail-stop
// processor so that any faults in its hardware will be masked", or
// distribution over several processors); this manager realizes the
// fail-stop-plus-standby variant: the kernel persists its state to its
// processor's stable storage every frame, and on a primary failure the
// standby polls that stable storage — which survives the failure — restores
// the state, and continues the protocol on its own processor.
//
// The manager also buffers monitor signals: signals are delivered to the
// manager (the signal path of Figure 1) and forwarded to the active kernel
// at the commit step, so signals raised during the takeover frame are not
// lost with the primary's volatile memory.
type scramManager struct {
	rs      *spec.ReconfigSpec
	primary *failstop.Processor
	standby *failstop.Processor // nil when not replicated

	mu      sync.Mutex
	pending []envmon.Signal

	active       *scram.Kernel
	activeProc   *failstop.Processor
	tookOver     bool
	takeoverAt   int64
	takeoverSeen bool

	// pool and mem are set when dynamic membership is enabled: the
	// takeover candidates then come from the membership view's caught-up
	// standbys instead of the single configured standby, and every
	// takeover opens a new membership epoch.
	pool *failstop.Pool
	mem  *membership.Manager

	// telReg and telRec are re-attached to the restored kernel on
	// takeover; nil when telemetry is disabled. telSink is the always
	// non-nil recording surface the takeover path itself uses — the no-op
	// sink until setTelemetry, so the hook carries no nil checks.
	telReg  *telemetry.Registry
	telRec  *telemetry.Recorder
	telSink telemetry.Sink

	// book is the system's span book (nil with tracing off). The manager
	// opens the signal-detection span at the frame-commit delivery point —
	// the single-threaded spot where a monitor's concurrent report becomes
	// part of the deterministic frame history — and re-attaches the book
	// to the restored kernel on takeover.
	book *telemetry.SpanBook
}

// newSCRAMManager builds the manager with a fresh kernel on the primary.
func newSCRAMManager(rs *spec.ReconfigSpec, primary, standby *failstop.Processor) (*scramManager, error) {
	k, err := scram.NewKernel(rs, primary.Stable())
	if err != nil {
		return nil, err
	}
	return &scramManager{
		rs:         rs,
		primary:    primary,
		standby:    standby,
		active:     k,
		activeProc: primary,
		telSink:    telemetry.NopSink{},
	}, nil
}

// setTelemetry attaches the telemetry layer to the manager and its active
// kernel. Called once during system construction, before any frame runs.
func (m *scramManager) setTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	m.telReg = reg
	m.telRec = rec
	m.telSink = telemetry.OrNop(rec)
	m.active.SetTelemetry(reg, rec)
}

// setTracing attaches the span book to the manager and its active kernel.
// Called once during system construction, before any frame runs.
func (m *scramManager) setTracing(book *telemetry.SpanBook) {
	m.book = book
	m.active.SetTracing(book)
}

// Signal enqueues a monitor signal for delivery at the commit step. Safe for
// concurrent use by monitor tasks.
func (m *scramManager) Signal(sig envmon.Signal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = append(m.pending, sig)
}

// store returns the active kernel's stable store — where applications read
// their commands.
func (m *scramManager) store() *stable.Store { return m.active.Store() }

// kernel returns the active kernel.
func (m *scramManager) kernel() *scram.Kernel { return m.active }

// hook is the manager's frame-commit step: fail over if needed, deliver the
// frame's signals, and advance the kernel.
func (m *scramManager) hook(ctx frame.Context) error {
	if !m.activeProc.Alive() {
		if !m.takeover(ctx) {
			// The SCRAM is gone. No commands are written; a
			// reconfiguration in progress stalls, which the SP3
			// checker surfaces. This is precisely why the paper
			// requires a dependable SCRAM implementation.
			return nil
		}
	}
	m.mu.Lock()
	sigs := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, sig := range sigs {
		if m.book.Enabled() {
			// The detection span opens here — delivery, not the monitor's
			// concurrent Tick — so span identities are allocated at a
			// deterministic point of the frame's commit step.
			attrs := map[string]int64{"observed_frame": sig.Frame}
			if sig.Urgent {
				attrs["urgent"] = 1
			}
			sig.Span = m.book.OpenPending(ctx.Frame, telemetry.SpanSignal, telemetry.Event{
				App:    string(sig.Source),
				Detail: string(sig.State),
				Attrs:  attrs,
			})
		}
		m.active.Signal(sig)
	}
	if m.mem != nil {
		// The frame's membership epoch (the membership hook ran just
		// before this one) stamps the frame's commands and persisted
		// kernel state.
		m.active.SetEpoch(m.mem.Epoch())
	}
	return m.active.EndOfFrame(ctx)
}

// candidates returns the processors eligible to restore the failed kernel,
// in preference order. With dynamic membership the pool is the view's
// caught-up standbys (the configured standby first, then by processor ID);
// with the static set it is the single configured standby, at most once.
func (m *scramManager) candidates() []*failstop.Processor {
	if m.mem != nil {
		ids := m.mem.TakeoverCandidates()
		out := make([]*failstop.Processor, 0, len(ids))
		if m.standby != nil {
			for _, id := range ids {
				if id == m.standby.ID() {
					out = append(out, m.standby)
					break
				}
			}
		}
		for _, id := range ids {
			if m.standby != nil && id == m.standby.ID() {
				continue
			}
			if p, err := m.pool.Proc(id); err == nil {
				out = append(out, p)
			}
		}
		return out
	}
	if m.standby == nil || m.tookOver || !m.standby.Alive() {
		return nil
	}
	return []*failstop.Processor{m.standby}
}

// takeover tries to restore the kernel on a standby after the active host's
// fail-stop failure, returning whether any candidate succeeded.
//
// A candidate whose restore fails validation — the failed host's snapshot
// holds a corrupt kernel state or command record, and (with membership) the
// candidate's own catch-up copy is no better — must not command applications
// from garbage: it fail-stops itself with a recorded telemetry event, and
// the next candidate is tried. A half-restored kernel never escapes this
// method, and a validation failure is not an error the frame aborts on — the
// system degrades exactly as if no standby existed.
func (m *scramManager) takeover(ctx frame.Context) bool {
	failed := m.activeProc
	snapshot := failed.Stable().Snapshot()
	for _, cand := range m.candidates() {
		k, err := scram.Restore(m.rs, cand.Stable(), snapshot)
		if err != nil && m.mem != nil {
			// The failed host's snapshot is unusable; fall back to the
			// candidate's catch-up copy, which trails it by at most one
			// frame.
			if local := m.mem.CatchUpSnapshot(cand.ID()); local != nil {
				k2, err2 := scram.Restore(m.rs, cand.Stable(), local)
				if err2 == nil {
					k, err = k2, nil
				} else {
					err = fmt.Errorf("%w (catch-up copy: %v)", err, err2)
				}
			}
		}
		if err != nil {
			m.telSink.Record(telemetry.Event{
				Frame:  ctx.Frame,
				Kind:   telemetry.KindTakeoverRefused,
				Host:   string(cand.ID()),
				Detail: fmt.Sprintf("takeover from failed %s refused: %v", failed.ID(), err),
			})
			cand.Fail(ctx.Frame)
			continue
		}
		m.active = k
		m.activeProc = cand
		m.tookOver = true
		m.takeoverAt = ctx.Frame
		m.takeoverSeen = true
		// The new host's stable storage has never held the journal: reset
		// the persistence markers so the next persist rewrites the full
		// ring, then keep recording on the restored kernel. With telemetry
		// disabled every call lands on the no-op sink.
		m.telSink.ResetPersistence()
		m.active.SetTelemetry(m.telReg, m.telRec)
		// The span book lives with the system, not the failed kernel: the
		// restored kernel keeps allocating from the same deterministic
		// counters, so the trace it resumes is the one the primary opened.
		m.active.SetTracing(m.book)
		if m.mem != nil {
			m.mem.OnTakeover(ctx.Frame, cand.ID())
		}
		m.telSink.Record(telemetry.Event{
			Frame: ctx.Frame,
			Kind:  telemetry.KindTakeover,
			Host:  string(cand.ID()),
			Detail: fmt.Sprintf("standby %s restored SCRAM state from failed %s",
				cand.ID(), failed.ID()),
		})
		return true
	}
	return false
}

// TookOverAt reports whether (and at which frame) a standby takeover
// happened.
func (m *scramManager) TookOverAt() (int64, bool) {
	return m.takeoverAt, m.takeoverSeen
}
