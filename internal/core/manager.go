package core

import (
	"fmt"
	"sync"

	"repro/internal/envmon"
	"repro/internal/failstop"
	"repro/internal/frame"
	"repro/internal/scram"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/telemetry"
)

// scramManager hosts the SCRAM kernel on a fail-stop processor and,
// optionally, fails over to a standby processor. The paper leaves the
// SCRAM's dependable implementation open ("allocating it to a fail-stop
// processor so that any faults in its hardware will be masked", or
// distribution over several processors); this manager realizes the
// fail-stop-plus-standby variant: the kernel persists its state to its
// processor's stable storage every frame, and on a primary failure the
// standby polls that stable storage — which survives the failure — restores
// the state, and continues the protocol on its own processor.
//
// The manager also buffers monitor signals: signals are delivered to the
// manager (the signal path of Figure 1) and forwarded to the active kernel
// at the commit step, so signals raised during the takeover frame are not
// lost with the primary's volatile memory.
type scramManager struct {
	rs      *spec.ReconfigSpec
	primary *failstop.Processor
	standby *failstop.Processor // nil when not replicated

	mu      sync.Mutex
	pending []envmon.Signal

	active       *scram.Kernel
	activeProc   *failstop.Processor
	tookOver     bool
	takeoverAt   int64
	takeoverSeen bool

	// telReg and telRec are re-attached to the restored kernel on
	// takeover; nil when telemetry is disabled. telSink is the always
	// non-nil recording surface the takeover path itself uses — the no-op
	// sink until setTelemetry, so the hook carries no nil checks.
	telReg  *telemetry.Registry
	telRec  *telemetry.Recorder
	telSink telemetry.Sink
}

// newSCRAMManager builds the manager with a fresh kernel on the primary.
func newSCRAMManager(rs *spec.ReconfigSpec, primary, standby *failstop.Processor) (*scramManager, error) {
	k, err := scram.NewKernel(rs, primary.Stable())
	if err != nil {
		return nil, err
	}
	return &scramManager{
		rs:         rs,
		primary:    primary,
		standby:    standby,
		active:     k,
		activeProc: primary,
		telSink:    telemetry.NopSink{},
	}, nil
}

// setTelemetry attaches the telemetry layer to the manager and its active
// kernel. Called once during system construction, before any frame runs.
func (m *scramManager) setTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	m.telReg = reg
	m.telRec = rec
	m.telSink = telemetry.OrNop(rec)
	m.active.SetTelemetry(reg, rec)
}

// Signal enqueues a monitor signal for delivery at the commit step. Safe for
// concurrent use by monitor tasks.
func (m *scramManager) Signal(sig envmon.Signal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = append(m.pending, sig)
}

// store returns the active kernel's stable store — where applications read
// their commands.
func (m *scramManager) store() *stable.Store { return m.active.Store() }

// kernel returns the active kernel.
func (m *scramManager) kernel() *scram.Kernel { return m.active }

// hook is the manager's frame-commit step: fail over if needed, deliver the
// frame's signals, and advance the kernel.
func (m *scramManager) hook(ctx frame.Context) error {
	if !m.activeProc.Alive() {
		if m.standby == nil || m.tookOver || !m.standby.Alive() {
			// The SCRAM is gone. No commands are written; a
			// reconfiguration in progress stalls, which the SP3
			// checker surfaces. This is precisely why the paper
			// requires a dependable SCRAM implementation.
			return nil
		}
		snapshot := m.activeProc.Stable().Snapshot()
		k, err := scram.Restore(m.rs, m.standby.Stable(), snapshot)
		if err != nil {
			return fmt.Errorf("core: SCRAM takeover: %w", err)
		}
		m.active = k
		m.activeProc = m.standby
		m.tookOver = true
		m.takeoverAt = ctx.Frame
		m.takeoverSeen = true
		// The standby's stable storage has never held the journal: reset
		// the persistence markers so the next persist rewrites the full
		// ring, then keep recording on the restored kernel. With telemetry
		// disabled every call lands on the no-op sink.
		m.telSink.ResetPersistence()
		m.active.SetTelemetry(m.telReg, m.telRec)
		m.telSink.Record(telemetry.Event{
			Frame: ctx.Frame,
			Kind:  telemetry.KindTakeover,
			Host:  string(m.standby.ID()),
			Detail: fmt.Sprintf("standby %s restored SCRAM state from failed %s",
				m.standby.ID(), m.primary.ID()),
		})
	}
	m.mu.Lock()
	sigs := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, sig := range sigs {
		m.active.Signal(sig)
	}
	return m.active.EndOfFrame(ctx)
}

// TookOverAt reports whether (and at which frame) a standby takeover
// happened.
func (m *scramManager) TookOverAt() (int64, bool) {
	return m.takeoverAt, m.takeoverSeen
}
