package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/envmon"
	"repro/internal/frame"
)

// runParityScenario executes the degradation-chain scenario — two alternator
// losses, two repairs, four reconfigurations — in the given scheduler mode
// and returns every observable artifact, JSON-encoded: the recorded trace,
// the kernel protocol log, the flight-recorder ring, the metrics snapshot,
// and the commit-hook invocation log.
func runParityScenario(t *testing.T, sequential bool) (tr, kernel, ring, metrics, hooks []byte) {
	t.Helper()
	var hookLog []int64
	s, _, _ := buildSystem(t, func(o *Options) {
		o.Sequential = sequential
		o.Spec.DwellFrames = 2
		o.Script = []envmon.Event{
			{Frame: 5, Factor: "alt1", Value: "failed"},
			{Frame: 20, Factor: "alt2", Value: "failed"},
			{Frame: 40, Factor: "alt1", Value: "ok"},
			{Frame: 60, Factor: "alt2", Value: "ok"},
		}
	})
	// User hooks run after every built-in hook; the log pins the frame
	// sequence the hook chain observed in both modes.
	s.AddCommitHook(func(ctx frame.Context) error {
		hookLog = append(hookLog, ctx.Frame)
		return nil
	})
	if err := s.Run(80); err != nil {
		t.Fatal(err)
	}
	mustNoViolations(t, s)

	enc := func(v any) []byte {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	reg, rec := s.Telemetry()
	return enc(s.Trace()), enc(s.Kernel().Events()), enc(rec.Events()), enc(reg.Snapshot()), enc(hookLog)
}

// TestSchedulerModeParity holds the goroutine scheduler and the sequential
// (ablation) scheduler to identical observable behavior on the same script:
// same trace, same kernel protocol log, same flight-recorder ring, same
// metrics, same commit-hook order. The frame barrier serializes all
// observable effects, so per-task goroutines must not be able to leak
// scheduling nondeterminism into any report.
func TestSchedulerModeParity(t *testing.T) {
	gTr, gKernel, gRing, gMetrics, gHooks := runParityScenario(t, false)
	sTr, sKernel, sRing, sMetrics, sHooks := runParityScenario(t, true)

	for _, cmp := range []struct {
		name     string
		gor, seq []byte
	}{
		{"trace", gTr, sTr},
		{"kernel events", gKernel, sKernel},
		{"flight-recorder ring", gRing, sRing},
		{"metrics snapshot", gMetrics, sMetrics},
		{"commit-hook log", gHooks, sHooks},
	} {
		if !bytes.Equal(cmp.gor, cmp.seq) {
			t.Errorf("%s differs between goroutine and sequential mode:\n goroutine:  %.400s\n sequential: %.400s",
				cmp.name, cmp.gor, cmp.seq)
		}
	}
}
