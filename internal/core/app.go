// Package core assembles the complete reconfigurable system architecture of
// Strunk, Knight and Aiello (DSN 2005, Figure 1): reconfigurable
// applications hosted on fail-stop processors, environment monitors, the
// SCRAM kernel (optionally replicated), the time-triggered bus, and the
// synchronous frame scheduler — together with the trace recorder that feeds
// the SP1-SP4 property checkers.
//
// Building a System statically discharges the specification's proof
// obligations first (package statics), mirroring the paper's PVS type check
// of an instantiation against the abstract architecture: a specification
// whose obligations fail does not produce a runnable system.
package core

import (
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/failstop"
	"repro/internal/frame"
	"repro/internal/scram"
	"repro/internal/spec"
	"repro/internal/stable"
)

// FrameEnv is what an application sees during one frame: timing, its
// current (or target) functional specification, its private stable-storage
// region on its current host processor, and its bus endpoint.
//
// The pointer passed to an App method is a per-application buffer reused
// every frame; applications must read what they need during the call and
// must not retain the pointer.
type FrameEnv struct {
	// Frame is the frame number.
	Frame int64
	// VirtualTime is the virtual time at the start of the frame.
	VirtualTime time.Duration
	// FrameLen is the frame length.
	FrameLen time.Duration
	// Seq is the reconfiguration plan sequence number of the governing
	// command (0 during boot); it changes on every new plan and on every
	// retarget, letting applications reset partial phase work.
	Seq int64
	// Spec is the functional specification in effect: the current one
	// during Step and Halt, the target during Prepare and Init.
	Spec spec.SpecID
	// Store is the application's private region of its host processor's
	// stable storage. Writes are staged and committed at the frame
	// boundary.
	Store *stable.Region
	// Bus is the application's bus endpoint, or nil if the system was
	// built without a bus schedule.
	Bus *bus.Endpoint
}

// App is a reconfigurable application: the paper's basic software building
// block (section 5.2). Each method is one unit of work in one frame; the
// three reconfiguration methods realize the bounded-time halt / prepare /
// start responses of section 5.3.
//
// Methods are called from the application's own goroutine, one call per
// frame, never concurrently.
type App interface {
	// ID returns the application identifier, matching the declaration in
	// the reconfiguration specification.
	ID() spec.AppID
	// Step performs one unit of normal work under env.Spec.
	Step(env *FrameEnv) error
	// Halt works toward establishing the application's postcondition and
	// ceasing operation. It returns done=true once the postcondition is
	// established; it is called once per frame of the halt window.
	Halt(env *FrameEnv) (done bool, err error)
	// Prepare works toward establishing the condition needed to
	// transition to target.
	Prepare(env *FrameEnv, target spec.SpecID) (done bool, err error)
	// Init works toward establishing the precondition of target; after
	// done=true the application resumes normal operation under target at
	// the window's end.
	Init(env *FrameEnv, target spec.SpecID) (done bool, err error)
	// Postcondition reports whether the halt postcondition currently
	// holds.
	Postcondition() bool
	// Precondition reports whether the precondition of operating under
	// target currently holds. SP4 is checked against this at the end of
	// every reconfiguration.
	Precondition(target spec.SpecID) bool
}

// appRuntime hosts one App: it reads the application's configuration_status
// command each frame, dispatches the commanded phase, performs
// stable-storage migration when the placement changes, and tracks the
// precondition flag the trace recorder reports for SP4.
type appRuntime struct {
	sys  *System
	app  App
	decl *spec.App

	proc        *failstop.Processor
	spare       *failstop.Processor // hot standby host, nil unless configured
	curSpec     spec.SpecID
	lastSeq     int64
	lastPhase   spec.Phase
	phaseDone   bool
	migratedSeq int64
	preOK       bool
	ep          *bus.Endpoint

	// lastEpoch is the largest membership epoch obeyed so far (always 0
	// without dynamic membership): a command stamped with an older epoch is
	// stale — written before a takeover the application already followed —
	// and is ignored rather than obeyed.
	lastEpoch int64

	// regionProc/regionCache memoize the host's stable-storage region so
	// the per-frame region lookup does not allocate in steady state.
	regionProc  *failstop.Processor
	regionCache *stable.Region

	// cmdReader caches the raw command record and its decode across frames;
	// env is the FrameEnv buffer reused for every phase call. Both keep the
	// steady-state Tick allocation-free.
	cmdReader *scram.CommandReader
	env       FrameEnv
}

// TaskID implements frame.Task.
func (r *appRuntime) TaskID() string { return "app:" + string(r.decl.ID) }

// Tick implements frame.Task: one unit of work per frame, as commanded.
func (r *appRuntime) Tick(ctx frame.Context) error {
	cmd, ok, err := r.cmdReader.Read(r.sys.manager.store())
	if err != nil {
		return err
	}
	if !ok {
		// Boot frame: the kernel has not committed yet; operate
		// normally under the start configuration, in the last obeyed
		// membership epoch (still the boot epoch).
		startCfg, _ := r.sys.rs.Config(r.sys.rs.StartConfig)
		target, _ := startCfg.SpecOf(r.decl.ID)
		cmd = scram.Command{Phase: spec.PhaseNormal, Target: target, Config: r.sys.rs.StartConfig, Epoch: r.lastEpoch}
	} else if cmd.Epoch < r.lastEpoch {
		// The command predates a membership epoch this application has
		// already obeyed; holding the current behavior is safe, obeying
		// a stale command is not.
		return nil
	} else {
		r.lastEpoch = cmd.Epoch
	}
	if cmd.Seq != r.lastSeq || cmd.Phase != r.lastPhase {
		if cmd.Seq != r.lastSeq && cmd.Phase != spec.PhaseNormal {
			// A new reconfiguration begins: the precondition must be
			// re-established by Init before the window ends (SP4).
			r.preOK = false
		}
		r.phaseDone = false
		r.lastSeq, r.lastPhase = cmd.Seq, cmd.Phase
	}

	switch cmd.Phase {
	case spec.PhaseNormal:
		return r.tickNormal(ctx, cmd)
	case spec.PhaseHalt:
		return r.tickHalt(ctx, cmd)
	case spec.PhasePrepare, spec.PhaseInit:
		return r.tickEntry(ctx, cmd)
	default:
		return fmt.Errorf("core: app %q received command with phase %v", r.decl.ID, cmd.Phase)
	}
}

func (r *appRuntime) tickNormal(ctx frame.Context, cmd scram.Command) error {
	r.curSpec = cmd.Target
	if cmd.Target == spec.SpecOff || !r.proc.Alive() {
		return nil
	}
	return r.app.Step(r.frameEnv(ctx, cmd.Target))
}

func (r *appRuntime) tickHalt(ctx frame.Context, cmd scram.Command) error {
	if r.phaseDone || !cmd.Active(ctx.Frame) {
		return nil // ceased execution; awaiting its window or already halted
	}
	if !r.proc.Alive() {
		// Fail-stop: a failed processor's application has trivially
		// ceased operation; its recovery begins from the last
		// committed stable state ("we assume nothing about the state
		// of an application when it fails").
		r.phaseDone = true
		return nil
	}
	done, err := r.app.Halt(r.frameEnv(ctx, r.curSpec))
	if err != nil {
		return fmt.Errorf("core: app %q halt: %w", r.decl.ID, err)
	}
	r.phaseDone = done
	return nil
}

// tickEntry handles the prepare and initialize phases, including
// stable-storage migration to the target configuration's placement.
func (r *appRuntime) tickEntry(ctx frame.Context, cmd scram.Command) error {
	if cmd.Target == spec.SpecOff {
		return nil // off in the target configuration: hold halted
	}
	if err := r.maybeMigrate(cmd); err != nil {
		return err
	}
	if r.phaseDone || !cmd.Active(ctx.Frame) {
		return nil
	}
	if !r.proc.Alive() {
		// The (possibly new) host is down; the phase cannot make
		// progress. The precondition will be unsatisfied at the
		// window's end, which SP4 surfaces.
		return nil
	}
	env := r.frameEnv(ctx, cmd.Target)
	var (
		done bool
		err  error
	)
	if cmd.Phase == spec.PhasePrepare {
		done, err = r.app.Prepare(env, cmd.Target)
	} else {
		done, err = r.app.Init(env, cmd.Target)
	}
	if err != nil {
		return fmt.Errorf("core: app %q %s: %w", r.decl.ID, cmd.Phase, err)
	}
	r.phaseDone = done
	if done && cmd.Phase == spec.PhaseInit {
		r.preOK = r.app.Precondition(cmd.Target)
		r.curSpec = cmd.Target
	}
	return nil
}

// maybeFailover masks a host failure using the application's hot standby
// (the section 5.1 masking/reconfiguration hybrid): if the current host has
// failed and the spare is alive, the application restores its last committed
// state from the failed host's stable storage — readable after a fail-stop
// failure — and continues on the spare within the same frame, with no
// reconfiguration. The spare is consumed by the failover; a subsequent
// failure is handled by reconfiguration like any other.
func (r *appRuntime) maybeFailover() {
	if r.spare == nil || r.proc.Alive() || !r.spare.Alive() || r.spare.ID() == r.proc.ID() {
		return
	}
	r.region(r.spare).Restore(r.region(r.proc).Snapshot())
	r.proc = r.spare
	r.spare = nil
}

// maybeMigrate moves the application's stable-storage region to the target
// configuration's placement, once per plan sequence number. Migration pulls
// a snapshot of the committed region from the old host — which works even if
// the old host has failed, because stable storage survives fail-stop
// failures and remains pollable.
func (r *appRuntime) maybeMigrate(cmd scram.Command) error {
	if r.migratedSeq == cmd.Seq {
		return nil
	}
	r.migratedSeq = cmd.Seq
	cfg, ok := r.sys.rs.Config(cmd.Config)
	if !ok {
		return fmt.Errorf("core: app %q commanded into unknown configuration %q", r.decl.ID, cmd.Config)
	}
	newProcID, ok := cfg.Placement[r.decl.ID]
	if !ok || newProcID == r.proc.ID() {
		return nil
	}
	newProc, err := r.sys.pool.Proc(newProcID)
	if err != nil {
		return err
	}
	oldRegion := r.region(r.proc)
	newRegion := r.region(newProc)
	newRegion.Restore(oldRegion.Snapshot())
	// Reset preOK: it must be re-established by Init on the new host.
	r.preOK = false
	r.proc = newProc
	return nil
}

func (r *appRuntime) region(p *failstop.Processor) *stable.Region {
	if p != r.regionProc {
		r.regionProc = p
		r.regionCache = p.Stable().Region("app/" + string(r.decl.ID))
	}
	return r.regionCache
}

// frameEnv fills the runtime's reusable FrameEnv buffer for one phase call.
// The pointer is valid only for the duration of that call: the next frame
// overwrites it in place, which is why FrameEnv documents that applications
// must not retain it.
func (r *appRuntime) frameEnv(ctx frame.Context, sp spec.SpecID) *FrameEnv {
	r.env = FrameEnv{
		Frame:       ctx.Frame,
		VirtualTime: ctx.VirtualTime(),
		FrameLen:    ctx.Len,
		Seq:         r.lastSeq,
		Spec:        sp,
		Store:       r.region(r.proc),
		Bus:         r.ep,
	}
	return &r.env
}
