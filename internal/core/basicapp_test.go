package core

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/stable"
)

func basicDecl() *spec.App {
	return &spec.App{
		ID: "app",
		Specs: []spec.Specification{
			{ID: "fast", HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
			{ID: "slow", HaltFrames: 3, PrepareFrames: 2, InitFrames: 2},
		},
	}
}

func basicEnv(f int64, seq int64, sp spec.SpecID) (*FrameEnv, *stable.Store) {
	st := stable.NewStore()
	return &FrameEnv{Frame: f, Seq: seq, Spec: sp, Store: st.Region("app")}, st
}

func TestBasicAppStepCountsWork(t *testing.T) {
	a := NewBasicApp(basicDecl())
	env, st := basicEnv(0, 0, "fast")
	// Commit after every step, as the frame runtime does: reads are
	// committed-only, so the counter advances once per frame.
	for i := 0; i < 5; i++ {
		if err := a.Step(env); err != nil {
			t.Fatal(err)
		}
		st.Commit()
	}
	if a.Steps() != 5 {
		t.Errorf("Steps = %d", a.Steps())
	}
	n, err := env.Store.GetInt64("work")
	if err != nil || n != 5 {
		t.Errorf("work = %d, %v", n, err)
	}
	if a.ID() != "app" {
		t.Errorf("ID = %s", a.ID())
	}
}

func TestBasicAppPhaseDurations(t *testing.T) {
	a := NewBasicApp(basicDecl())
	env, _ := basicEnv(0, 1, "slow")

	// Normal work first: the boot precondition no longer applies after
	// this, so Init must genuinely establish preconditions below.
	if err := a.Step(env); err != nil {
		t.Fatal(err)
	}

	// Halt under "slow" takes 3 frames.
	for i := 0; i < 2; i++ {
		done, err := a.Halt(env)
		if err != nil || done {
			t.Fatalf("halt frame %d = %v, %v", i, done, err)
		}
		if a.Postcondition() {
			t.Fatal("postcondition before halt completes")
		}
	}
	done, err := a.Halt(env)
	if err != nil || !done {
		t.Fatalf("final halt frame = %v, %v", done, err)
	}
	if !a.Postcondition() {
		t.Error("postcondition after halt")
	}

	// Prepare toward "fast" takes 1 frame.
	done, err = a.Prepare(env, "fast")
	if err != nil || !done {
		t.Fatalf("prepare = %v, %v", done, err)
	}
	// Init toward "fast" takes 1 frame and establishes the precondition.
	if a.Precondition("fast") {
		t.Error("precondition before init (after work happened)")
	}
	done, err = a.Init(env, "fast")
	if err != nil || !done {
		t.Fatalf("init = %v, %v", done, err)
	}
	if !a.Precondition("fast") {
		t.Error("precondition after init")
	}
}

func TestBasicAppBootPrecondition(t *testing.T) {
	a := NewBasicApp(basicDecl())
	if !a.Precondition("fast") {
		t.Error("fresh app lacks boot precondition")
	}
	env, _ := basicEnv(0, 0, "fast")
	if err := a.Step(env); err != nil {
		t.Fatal(err)
	}
	// After work has happened, only initialized specs hold.
	if a.Precondition("slow") {
		t.Error("uninitialized spec has precondition after work")
	}
}

func TestBasicAppSeqChangeRestartsPhase(t *testing.T) {
	a := NewBasicApp(basicDecl())
	env, _ := basicEnv(0, 1, "slow")
	// One frame of a 2-frame prepare under seq 1...
	if done, _ := a.Prepare(env, "slow"); done {
		t.Fatal("2-frame prepare done in 1 frame")
	}
	// ... then the plan is retargeted (seq 2): the same phase restarts
	// from scratch and again needs its full 2 frames.
	env2, _ := basicEnv(1, 2, "slow")
	if done, _ := a.Prepare(env2, "slow"); done {
		t.Fatal("retargeted prepare completed early")
	}
	if done, _ := a.Prepare(env2, "slow"); !done {
		t.Fatal("retargeted prepare did not complete in its declared frames")
	}
}

func TestBasicAppRejectsUndeclaredSpec(t *testing.T) {
	a := NewBasicApp(basicDecl())
	env, _ := basicEnv(0, 1, "ghost")
	if _, err := a.Halt(env); err == nil {
		t.Error("halt under undeclared spec accepted")
	}
	if _, err := a.Prepare(env, "ghost"); err == nil {
		t.Error("prepare toward undeclared spec accepted")
	}
}
