package core

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/envmon"
	"repro/internal/membership"
	"repro/internal/scram"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/telemetry"
)

// buildMembershipSystem wires the canonical system with a spare processor
// pool and dynamic membership enabled.
func buildMembershipSystem(t *testing.T, spares int, mutate func(*Options)) (*System, *testApp, *testApp) {
	t.Helper()
	ap := &testApp{id: spectest.AppAP}
	fcs := &testApp{id: spectest.AppFCS}
	opts := Options{
		Spec: spectest.ThreeConfigWithSpares(spares),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  ap,
			spectest.AppFCS: fcs,
		},
		Classifier:     powerClassifier(false),
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		Membership:     &MembershipOptions{},
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := NewSystem(opts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(s.Close)
	return s, ap, fcs
}

func mustNoMembershipViolations(t *testing.T, s *System) {
	t.Helper()
	for _, v := range s.CheckMembership() {
		t.Errorf("membership violation: %s", v)
	}
}

func countEvents(s *System, kind telemetry.Kind) int {
	_, rec := s.Telemetry()
	if rec == nil {
		return 0
	}
	n := 0
	for _, e := range rec.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestMembershipEpochStampsCommands runs a quiet membership-enabled system
// and checks the plumbing: the view's epoch reaches the kernel and every
// committed command.
func TestMembershipEpochStampsCommands(t *testing.T) {
	s, _, _ := buildMembershipSystem(t, 0, nil)
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	mem := s.Membership()
	if mem == nil {
		t.Fatal("Membership() = nil with membership enabled")
	}
	if got := s.Kernel().Epoch(); got != mem.Epoch() {
		t.Fatalf("kernel epoch %d != membership epoch %d", got, mem.Epoch())
	}
	cmd, ok, err := scram.ReadCommand(s.Kernel().Store(), spectest.AppAP)
	if err != nil || !ok {
		t.Fatalf("ReadCommand: ok=%v err=%v", ok, err)
	}
	if cmd.Epoch != mem.Epoch() {
		t.Fatalf("command epoch %d != membership epoch %d", cmd.Epoch, mem.Epoch())
	}
	mustNoViolations(t, s)
	mustNoMembershipViolations(t, s)
}

// TestMembershipJoinGrowsPoolAndTakeover grows the standby pool with a
// joining spare, then kills the SCRAM's host: a caught-up member takes over,
// the takeover opens a new epoch, and all membership invariants hold.
func TestMembershipJoinGrowsPoolAndTakeover(t *testing.T) {
	s, _, _ := buildMembershipSystem(t, 1, func(o *Options) {
		o.Classifier = powerClassifier(true)
		o.SCRAMProc = "p2"
		o.Membership.Events = []membership.Event{
			{Frame: 2, Proc: "p3", Op: membership.OpJoin},
		}
		o.ProcEvents = []ProcEvent{{Frame: 10, Proc: "p2", Kind: ProcFail}}
	})
	if err := s.Run(25); err != nil {
		t.Fatal(err)
	}
	at, ok := s.TookOverAt()
	if !ok || at != 10 {
		t.Fatalf("takeover = %d,%v; want frame 10", at, ok)
	}
	// The takeover went to the first caught-up candidate (p1 sorts before
	// the joined spare p3) and moved the authoritative host.
	v := s.Membership().View()
	if v.Auth != s.SCRAMProc() {
		t.Fatalf("view auth %q != active SCRAM host %q", v.Auth, s.SCRAMProc())
	}
	if v.Auth == "p2" {
		t.Fatal("auth still the failed primary")
	}
	// p3 joined, caught up before the failure, and is still a member.
	mem := v.Member("p3")
	if mem == nil || mem.Status != membership.StatusActive || !mem.CaughtUp {
		t.Fatalf("p3 = %+v, want caught-up active member", mem)
	}
	// The failed primary was crash-evicted.
	if m2 := v.Member("p2"); m2 == nil || m2.Status != membership.StatusDown {
		t.Fatalf("p2 = %+v, want down", m2)
	}
	if got := s.Kernel().Current(); got != spectest.CfgReduced {
		t.Fatalf("current = %s, want reduced", got)
	}
	if s.Kernel().Epoch() != s.Membership().Epoch() {
		t.Fatalf("kernel epoch %d != membership epoch %d", s.Kernel().Epoch(), s.Membership().Epoch())
	}
	mustNoViolations(t, s)
	mustNoMembershipViolations(t, s)
}

// TestTakeoverRefusedOnCorruptSnapshot is the corrupted-snapshot regression
// test: when the failed primary's snapshot fails restore validation during
// takeover (scram.Restore rejects both corrupt kernel state and corrupt
// command records; the state record is the one applications never read, so
// it is the corruption a live system first meets at takeover), the standby
// fail-stops with a recorded telemetry event — the frame does not abort, no
// half-restored kernel serves, and the system degrades exactly as if no
// standby existed (the SP3 checker surfaces the stall).
func TestTakeoverRefusedOnCorruptSnapshot(t *testing.T) {
	s, _, _ := buildSystem(t, func(o *Options) {
		o.Classifier = powerClassifier(true)
		o.SCRAMProc = "p2"
		o.StandbyProc = "p1"
	})
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	// Corrupt the committed kernel-state record on the primary's stable
	// storage between frames, then fail the primary: the frame's staged
	// writes die with the halt, so the corrupt committed record is what the
	// snapshot carries into the takeover.
	p2, err := s.Pool().Proc("p2")
	if err != nil {
		t.Fatal(err)
	}
	p2.Stable().Put("scram/state", []byte("{corrupt"))
	p2.Stable().Commit()
	if err := s.Pool().Fail("p2", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatalf("run after corrupt-snapshot failure must not error: %v", err)
	}
	if _, ok := s.TookOverAt(); ok {
		t.Fatal("takeover reported despite corrupt snapshot")
	}
	p1, err := s.Pool().Proc("p1")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Alive() {
		t.Fatal("standby still alive after refusing a corrupt snapshot; must fail-stop")
	}
	if n := countEvents(s, telemetry.KindTakeoverRefused); n != 1 {
		t.Fatalf("takeover-refused events = %d, want 1", n)
	}
}

// TestMembershipTakeoverFallsBackToCatchUpCopy corrupts the primary's
// persisted kernel state, so the takeover's first restore source is
// unusable; the candidate's own catch-up copy — refreshed every frame, at
// most one frame stale — restores the kernel instead of refusing the
// takeover.
func TestMembershipTakeoverFallsBackToCatchUpCopy(t *testing.T) {
	s, _, _ := buildMembershipSystem(t, 0, func(o *Options) {
		o.Classifier = powerClassifier(true)
		o.SCRAMProc = "p2"
	})
	if err := s.Run(8); err != nil {
		t.Fatal(err)
	}
	p2, err := s.Pool().Proc("p2")
	if err != nil {
		t.Fatal(err)
	}
	p2.Stable().Put("scram/state", []byte("{corrupt"))
	p2.Stable().Commit()
	if err := s.Pool().Fail("p2", 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(12); err != nil {
		t.Fatal(err)
	}
	at, ok := s.TookOverAt()
	if !ok {
		t.Fatal("no takeover despite a caught-up candidate with a local copy")
	}
	if at != 8 {
		t.Fatalf("takeover at %d, want 8", at)
	}
	if n := countEvents(s, telemetry.KindTakeoverRefused); n != 0 {
		t.Fatalf("takeover-refused events = %d, want 0 (catch-up fallback)", n)
	}
	if got := s.SCRAMProc(); got != "p1" {
		t.Fatalf("SCRAM host = %s, want p1", got)
	}
	mustNoViolations(t, s)
	mustNoMembershipViolations(t, s)
}

// TestTakeoverUnderBusFaults drives the standby takeover while an
// adversarial fault plan drops and delays every message on the applications'
// topics in the takeover window. The takeover path must be indifferent: it
// runs over stable storage and the direct signal path, not the bus.
func TestTakeoverUnderBusFaults(t *testing.T) {
	ap := &busApp{testApp: testApp{id: spectest.AppAP}, topic: "ap/hb", peer: "fcs/hb"}
	fcs := &busApp{testApp: testApp{id: spectest.AppFCS}, topic: "fcs/hb", peer: "ap/hb"}
	s, err := NewSystem(Options{
		Spec: spectest.ThreeConfig(),
		Apps: map[spec.AppID]App{
			spectest.AppAP:  ap,
			spectest.AppFCS: fcs,
		},
		Classifier:     powerClassifier(true),
		InitialFactors: map[envmon.Factor]string{"alt1": "ok", "alt2": "ok"},
		BusSchedule: bus.Schedule{
			{Owner: bus.EndpointID(spectest.AppAP), MaxMessages: 2},
			{Owner: bus.EndpointID(spectest.AppFCS), MaxMessages: 2},
		},
		SCRAMProc:   "p2",
		StandbyProc: "p1",
		ProcEvents:  []ProcEvent{{Frame: 5, Proc: "p2", Kind: ProcFail}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Drop half and delay the rest on both topics — including the frames
	// around the takeover at frame 5.
	plan := bus.NewFaultPlan(42)
	plan.SetTopic("ap/hb", bus.FaultRates{Drop: 0.5, Delay: 0.5})
	plan.SetTopic("fcs/hb", bus.FaultRates{Drop: 0.5, Delay: 0.5})
	s.Bus().SetFaultPlan(plan)

	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	at, ok := s.TookOverAt()
	if !ok || at != 5 {
		t.Fatalf("takeover = %d,%v; want frame 5 despite bus faults", at, ok)
	}
	if got := s.Kernel().Current(); got != spectest.CfgReduced {
		t.Fatalf("current = %s, want reduced", got)
	}
	stats := plan.Stats()
	if stats.Dropped == 0 || stats.Delayed == 0 {
		t.Fatalf("fault plan injected nothing: %+v", stats)
	}
	mustNoViolations(t, s)
}

// TestMembershipLeaveRejectedThroughSystem schedules an unverifiable leave
// (the FCS's host) through the full system: the change is rejected, the
// prior epoch keeps serving, and operation is undisturbed.
func TestMembershipLeaveRejectedThroughSystem(t *testing.T) {
	s, _, fcs := buildMembershipSystem(t, 0, func(o *Options) {
		o.Membership.Events = []membership.Event{
			{Frame: 4, Proc: "p2", Op: membership.OpLeave},
		}
	})
	if err := s.Run(12); err != nil {
		t.Fatal(err)
	}
	rejs := s.Membership().Rejections()
	if len(rejs) != 1 || rejs[0].Proc != "p2" {
		t.Fatalf("rejections = %+v, want one for p2", rejs)
	}
	if got := s.Membership().Epoch(); got != 1 {
		t.Fatalf("epoch = %d after rejected change, want 1", got)
	}
	if s.Membership().View().Member("p2") == nil {
		t.Fatal("p2 left the view despite rejection")
	}
	if fcs.steps == 0 {
		t.Fatal("FCS did no work")
	}
	if n := countEvents(s, telemetry.KindMembershipReject); n != 1 {
		t.Fatalf("membership-reject events = %d, want 1", n)
	}
	mustNoViolations(t, s)
	mustNoMembershipViolations(t, s)
}
