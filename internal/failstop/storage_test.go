package failstop

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/stable"
)

// corrupt flips a bit in key's record on medium m.
func corrupt(t *testing.T, m stable.Medium, key string) {
	t.Helper()
	raw, ok := m.Read(key)
	if !ok {
		t.Fatalf("key %q absent on medium", key)
	}
	raw[len(raw)-1] ^= 1
	if err := m.Write(key, raw); err != nil {
		t.Fatalf("corrupting write: %v", err)
	}
}

// TestStorageFaultHaltsProcessor checks the derived fail-stop property: when
// the hardened store reports an unrecoverable fault, the processor halts
// rather than continue on wrong data.
func TestStorageFaultHaltsProcessor(t *testing.T) {
	m := stable.NewMemMedium()
	st := stable.NewHardened(stable.NewReplicatedStore(m))
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, st)

	p.Stable().PutString("alt", "1000")
	p.Stable().Commit()
	corrupt(t, m, "alt")

	// The read both fails and halts the processor via the fault sink.
	if _, ok := p.Stable().Get("alt"); ok {
		t.Fatal("corrupt single-replica key readable")
	}
	if p.State() != StateFailed {
		t.Fatalf("state = %v, want StateFailed", p.State())
	}
	if p.StorageFault() == nil {
		t.Fatal("StorageFault() = nil after storage halt")
	}
	if p.FailedAtFrame() != 1 {
		t.Errorf("FailedAtFrame = %d, want store version 1", p.FailedAtFrame())
	}
}

func TestStorageFaultNilOnOrdinaryFailure(t *testing.T) {
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, nil)
	p.Fail(3)
	if p.StorageFault() != nil {
		t.Errorf("ordinary failure reports storage fault %v", p.StorageFault())
	}
}

func TestNewPoolWithStores(t *testing.T) {
	pool := NewPoolWithStores(testPlatform(), func(id spec.ProcID) *stable.Store {
		return stable.NewHardenedStore(stable.MediaProfile{Replicas: 3, Seed: 1}, string(id))
	})
	for _, id := range []spec.ProcID{"p1", "p2"} {
		p, err := pool.Proc(id)
		if err != nil {
			t.Fatalf("Proc(%s): %v", id, err)
		}
		if p.Stable().Hardened() == nil {
			t.Errorf("%s: store not hardened", id)
		}
	}

	// Plain pool keeps plain stores; nil factory likewise.
	plain := NewPool(testPlatform())
	p, _ := plain.Proc("p1")
	if p.Stable().Hardened() != nil {
		t.Error("NewPool produced a hardened store")
	}
}
